// E6 — ablation of the compiler's semantic-preserving reordering (paper §3:
// "reorders the processing after automatically determining that reordering
// preserves semantics. In this example, not compressing the RPC field that
// the following load balancer uses is enough to preserve semantics").
//
// Workload: the fig2 chain with a strict ACL (half the users lack write
// permission), 4 KiB payloads. With drop-early reordering the ACL runs
// before compression, so denied requests never pay the compression cost;
// without it, every request is compressed first and then possibly dropped.
#include <cstdio>

#include "core/network.h"
#include "elements/library.h"

namespace adn {
namespace {

std::vector<std::pair<std::string, std::vector<rpc::Row>>> StrictSeeds() {
  return {{"ac_tab",
           {{rpc::Value("alice"), rpc::Value("W")},
            {rpc::Value("bob"), rpc::Value("R")},     // denied
            {rpc::Value("carol"), rpc::Value("W")},
            {rpc::Value("dave"), rpc::Value("R")}}}};  // denied
}

struct RunResult {
  double rate_krps;
  double latency_us;
  std::string order;
};

RunResult Run(bool reorder, size_t payload_bytes) {
  core::NetworkOptions options;
  options.compile.passes.reorder_drop_early = reorder;
  options.compile.passes.fuse_adjacent = false;  // isolate the reorder effect
  options.state_seeds = StrictSeeds();
  auto network = core::Network::Create(elements::Fig2ProgramSource(), options);
  if (!network.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n",
                 network.status().ToString().c_str());
    std::abort();
  }
  core::WorkloadOptions workload;
  workload.concurrency = 128;
  workload.measured_requests = 12'000;
  workload.warmup_requests = 1'200;
  workload.make_request = core::MakeDefaultRequestFactory(payload_bytes);
  auto rate_run = (*network)->RunWorkload("fig2", workload);
  workload.concurrency = 1;
  auto latency_run = (*network)->RunWorkload("fig2", workload);
  if (!rate_run.ok() || !latency_run.ok()) std::abort();

  RunResult result;
  result.rate_krps = rate_run->stats.throughput_krps;
  result.latency_us = latency_run->stats.mean_latency_us;
  const auto* chain = (*network)->Chain("fig2");
  for (size_t i = 0; i < chain->elements.size(); ++i) {
    if (i > 0) result.order += " -> ";
    result.order += chain->elements[i].ir->name;
  }
  return result;
}

}  // namespace
}  // namespace adn

int main() {
  using namespace adn;
  std::printf(
      "Reordering ablation (E6): fig2 chain, 50%% of requests ACL-denied.\n\n");
  std::printf("%-10s %-14s %12s %14s   %s\n", "payload", "reordering",
              "rate (krps)", "latency (us)", "chain order");
  std::printf("%.*s\n", 100,
              "---------------------------------------------------------------"
              "-------------------------------------");
  for (size_t payload : {size_t{1024}, size_t{4096}, size_t{16384}}) {
    RunResult off = Run(false, payload);
    RunResult on = Run(true, payload);
    std::printf("%-10zu %-14s %12.1f %14.1f   %s\n", payload, "off",
                off.rate_krps, off.latency_us, off.order.c_str());
    std::printf("%-10s %-14s %12.1f %14.1f   %s\n", "", "on", on.rate_krps,
                on.latency_us, on.order.c_str());
    std::printf("%-10s %-14s %11.2fx\n\n", "", "speedup",
                on.rate_krps / off.rate_krps);
  }
  std::printf(
      "Expected shape: the win grows with payload size — dropped requests\n"
      "skip compression entirely once the ACL is hoisted ahead of it.\n");
  return 0;
}
