// E16: reconfiguration blackout. How long does the data plane stop serving
// a key while its shard moves between EnginePool workers?
//
// Two cutover implementations, measured on the same host in the same run
// (so their ratio is immune to runner speed):
//
//  - live      BeginSlotMigration/PumpMigration (docs/RECONFIG.md): the
//              source keeps serving while the slot bulk-copies; only the
//              cutover window — producer holds the moving slot's messages,
//              source diffs its baseline, destination replays the delta —
//              blacks out, and only for that slot. The pool measures this
//              window itself (LiveMigrationStats::blackout_ns).
//  - pause     the classic drain-the-world protocol the live path replaces:
//              stop submitting, Drain() every ring, then copy the FULL
//              state of every element (snapshot + restore; re-sharding is
//              a copy plus bookkeeping). Blackout = drain + copy, for
//              every key, measured wall-clock.
//
// A third section times DSL hot-reload: SwapProgram under load, blackout =
// call to SwapComplete() (the window in which some worker may still run old
// code; messages themselves keep flowing — the swap never drops).
//
// Chain: Logging -> Acl -> Quota (append log, read-only keyed table, keyed
// table mutated per message — the three state shapes the protocol carries).
// Writes BENCH_reconfig.json; tools/check_perf.py gates
// `blackout_improvement` (pause p99 / live p99) >= 10x and live p99 against
// bench/baselines/reconfig_baseline.json.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "compiler/lower.h"
#include "dsl/parser.h"
#include "elements/library.h"
#include "ir/exec.h"
#include "ir/program.h"
#include "mrpc/engine_pool.h"

#ifndef ADN_GIT_SHA
#define ADN_GIT_SHA "unknown"
#endif

namespace adn {
namespace {

constexpr int kUsers = 40'000;       // quota + acl rows: the migrated state
constexpr int kRounds = 15;          // blackout samples per protocol
constexpr int kSwaps = 8;            // hot-reload samples
constexpr uint64_t kWarmup = 20'000;

using Clock = std::chrono::steady_clock;

int64_t ElapsedNs(Clock::time_point from) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              from)
      .count();
}

std::string User(int i) { return "user" + std::to_string(i); }

rpc::Message MakeReq(uint64_t id, int user) {
  Bytes payload(64, 0xAB);
  return rpc::Message::MakeRequest(
      id, "Obj.Put",
      {{"username", rpc::Value(User(user))},
       {"payload", rpc::Value(std::move(payload))}});
}

// Logging + Acl(+variant) + Quota over the shared state tables.
std::string ChainSource(const std::string& acl_body) {
  return std::string(elements::AclTableSql()) +
         std::string(elements::LogTableSql()) +
         std::string(elements::QuotaTableSql()) +
         std::string(elements::LoggingSql()) + acl_body +
         std::string(elements::QuotaSql());
}

std::vector<std::shared_ptr<const ir::ElementIr>> Elements(
    const compiler::ProgramIr& lowered) {
  return {lowered.FindElement("Logging"), lowered.FindElement("Acl"),
          lowered.FindElement("Quota")};
}

double Quantile(std::vector<int64_t> samples, double q) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const size_t idx = std::min(
      samples.size() - 1,
      static_cast<size_t>(q * static_cast<double>(samples.size())));
  return static_cast<double>(samples[idx]);
}

int Run() {
  auto parsed_a = dsl::ParseProgram(ChainSource(std::string(elements::AclSql())));
  auto lowered_a = compiler::LowerProgram(*parsed_a);
  // Same schema, different code object: ON DROP message differs, so the
  // swap is always state-compatible and behaviorally identical.
  auto parsed_b = dsl::ParseProgram(ChainSource(R"(
ELEMENT Acl ON REQUEST {
  INPUT (username TEXT, payload BYTES);
  ON DROP ABORT 'permission denied (v2)';
  SELECT * FROM input JOIN ac_tab ON input.username = ac_tab.username
    WHERE ac_tab.permission = 'W';
}
)"));
  auto lowered_b = compiler::LowerProgram(*parsed_b);
  if (!lowered_a.ok() || !lowered_b.ok()) {
    std::fprintf(stderr, "lowering failed\n");
    return 1;
  }

  mrpc::EnginePool::Config config;
  config.workers = 2;
  config.shard_key_field = "username";
  config.processor = "bench-reconfig";
  // Small rings bound the control-op barrier: each migration phase waits at
  // most one ring backlog, so the blackout reflects the protocol, not queue
  // depth.
  config.ring_capacity = 256;
  mrpc::EnginePool pool(Elements(*lowered_a), {}, config);
  rpc::Table* acl = pool.FindTemplateInstance("Acl")->FindTable("ac_tab");
  rpc::Table* quota = pool.FindTemplateInstance("Quota")->FindTable("quota");
  for (int i = 0; i < kUsers; ++i) {
    (void)acl->Insert({rpc::Value(User(i)), rpc::Value("W")});
    (void)quota->Insert(
        {rpc::Value(User(i)), rpc::Value(static_cast<int64_t>(1'000'000))});
  }
  if (!pool.Start().ok() || !pool.whole_chain_compiled()) {
    std::fprintf(stderr, "pool start failed (whole-chain tier required)\n");
    return 1;
  }

  uint64_t id = 0;
  // Sustained-but-sustainable load: cap the in-flight backlog so the rings
  // stay shallow, and back off with a sleep (not a yield-spin) so workers
  // get the core. A saturating producer would make every control barrier
  // (and every Drain) cost a full ring plus scheduler noise, measuring the
  // host's core count instead of the protocol.
  auto submit = [&] {
    while (id - pool.processed() > 64) {
      std::this_thread::sleep_for(std::chrono::microseconds(20));
    }
    ++id;
    pool.Submit(MakeReq(id, static_cast<int>(id % kUsers)));
  };
  auto clear_logs = [&] {  // drained-pool only; the unbounded log otherwise
    for (int w = 0; w < pool.workers(); ++w) {  // dominates the state copy
      pool.WorkerInstance(w, 0).FindTable("log_tab")->Clear();
    }
  };
  for (uint64_t i = 0; i < kWarmup; ++i) submit();
  pool.Drain();
  clear_logs();

  std::printf("Reconfiguration blackout: %d users, 2 workers, %d rounds each\n"
              "(chain Logging -> Acl -> Quota; see docs/RECONFIG.md)\n\n",
              kUsers, kRounds);

  // --- live slot migration under sustained load ---------------------------
  std::vector<int64_t> live_ns;
  uint64_t delta_replayed = 0;
  for (int round = 0; round < kRounds; ++round) {
    const int slot =
        (round * 7 + 1) % static_cast<int>(mrpc::EnginePool::kRouteSlots);
    const int to = (pool.WorkerOfSlot(slot) + 1) % pool.workers();
    if (!pool.BeginSlotMigration(slot, to).ok()) return 1;
    while (pool.MigrationActive()) {
      // Pump first — during the cutover hold the moving slot's messages sit
      // in the producer's hold buffer and count against the backlog, so only
      // the pump (which flips the route and flushes them) can clear it. Then
      // a burst of traffic, skipping (not blocking) while backlogged, and a
      // short sleep to release the core: every migration phase is a
      // producer->worker handoff, and a producer that never sleeps keeps the
      // worker off the run queue on small hosts, measuring the OS timeslice
      // instead of the protocol.
      pool.PumpMigration();
      for (int i = 0; i < 32 && id - pool.processed() <= 64; ++i) {
        ++id;
        pool.Submit(MakeReq(id, static_cast<int>(id % kUsers)));
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    live_ns.push_back(pool.migration_stats().blackout_ns);
    delta_replayed += pool.migration_stats().delta_upserts +
                      pool.migration_stats().delta_deletes;
    for (int i = 0; i < 2'000; ++i) submit();  // steady traffic between rounds
  }
  pool.Drain();
  clear_logs();

  // --- pause-drain baseline: drain the world, copy all state --------------
  std::vector<int64_t> pause_ns;
  for (int round = 0; round < kRounds; ++round) {
    for (int i = 0; i < 2'000; ++i) submit();
    const Clock::time_point t0 = Clock::now();
    pool.Drain();  // nothing serves from here...
    for (size_t e = 0; e < 3; ++e) {
      // Cost-equivalent full re-shard: snapshot every worker's state and
      // restore/merge it into a fresh instance (scratch, so the live pool's
      // state — and the live rounds above — stay untouched).
      ir::ElementInstance scratch(Elements(*lowered_a)[e], 999);
      for (int w = 0; w < pool.workers(); ++w) {
        const Bytes snapshot = pool.WorkerInstance(w, e).SnapshotState();
        if (!scratch.MergeState(snapshot).ok()) return 1;
      }
    }
    pause_ns.push_back(ElapsedNs(t0));  // ...until here
    clear_logs();
  }

  // --- DSL hot-reload: SwapProgram under load ------------------------------
  std::vector<int64_t> swap_ns;
  for (int round = 0; round < kSwaps; ++round) {
    const auto& next = (round % 2 == 0) ? *lowered_b : *lowered_a;
    for (int i = 0; i < 500; ++i) submit();
    const Clock::time_point t0 = Clock::now();
    if (!pool.SwapProgram(Elements(next)).ok()) return 1;
    while (!pool.SwapComplete()) {  // traffic flows during the swap
      for (int i = 0; i < 32; ++i) submit();
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    swap_ns.push_back(ElapsedNs(t0));
  }
  pool.Drain();
  const uint64_t processed = pool.processed();
  const uint64_t dropped = pool.dropped();
  pool.Stop();

  const double live_p50 = Quantile(live_ns, 0.50);
  const double live_p99 = Quantile(live_ns, 0.99);
  const double pause_p50 = Quantile(pause_ns, 0.50);
  const double pause_p99 = Quantile(pause_ns, 0.99);
  const double swap_p50 = Quantile(swap_ns, 0.50);
  const double swap_p99 = Quantile(swap_ns, 0.99);
  const double improvement = live_p99 > 0 ? pause_p99 / live_p99 : 0;

  std::printf("%-28s %12s %12s\n", "protocol", "p50 us", "p99 us");
  std::printf("%.*s\n", 54, "-----------------------------------------------------");
  std::printf("%-28s %12.1f %12.1f\n", "live slot migration",
              live_p50 / 1e3, live_p99 / 1e3);
  std::printf("%-28s %12.1f %12.1f\n", "pause-drain (full state)",
              pause_p50 / 1e3, pause_p99 / 1e3);
  std::printf("%-28s %12.1f %12.1f\n", "program hot-swap",
              swap_p50 / 1e3, swap_p99 / 1e3);
  std::printf("\nblackout improvement (pause p99 / live p99): %.1fx\n"
              "delta rows replayed across %d migrations: %llu\n"
              "processed %llu, dropped %llu\n",
              improvement, kRounds,
              static_cast<unsigned long long>(delta_replayed),
              static_cast<unsigned long long>(processed),
              static_cast<unsigned long long>(dropped));

  std::FILE* f = std::fopen("BENCH_reconfig.json", "w");
  if (f == nullptr) return 1;
  std::fprintf(f,
               "{\n"
               "  \"schema_version\": 1,\n"
               "  \"git_sha\": \"%s\",\n"
               "  \"chain\": \"Logging -> Acl -> Quota\",\n"
               "  \"users\": %d,\n"
               "  \"workers\": 2,\n"
               "  \"rounds\": %d,\n"
               "  \"live_blackout_p50_ns\": %.0f,\n"
               "  \"live_blackout_p99_ns\": %.0f,\n"
               "  \"pause_drain_blackout_p50_ns\": %.0f,\n"
               "  \"pause_drain_blackout_p99_ns\": %.0f,\n"
               "  \"blackout_improvement\": %.2f,\n"
               "  \"swap_blackout_p50_ns\": %.0f,\n"
               "  \"swap_blackout_p99_ns\": %.0f,\n"
               "  \"delta_replayed\": %llu,\n"
               "  \"processed\": %llu,\n"
               "  \"dropped\": %llu\n"
               "}\n",
               ADN_GIT_SHA, kUsers, kRounds, live_p50, live_p99, pause_p50,
               pause_p99, improvement, swap_p50, swap_p99,
               static_cast<unsigned long long>(delta_replayed),
               static_cast<unsigned long long>(processed),
               static_cast<unsigned long long>(dropped));
  std::fclose(f);
  std::printf("\nwrote BENCH_reconfig.json\n");
  return dropped == 0 ? 0 : 1;
}

}  // namespace
}  // namespace adn

int main() { return adn::Run(); }
