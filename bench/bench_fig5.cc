// E1/E2 — Figure 5: RPC rate (krps) and latency (us) for three element
// chains (Logging, ACL, Fault), comparing:
//   gRPC+Envoy        — the general-purpose service-mesh baseline,
//   ADN+mRPC          — compiler-generated elements on mRPC engines,
//   hand-coded mRPC   — expert-written modules (upper bound).
//
// Methodology mirrors the paper §6: a single-threaded client keeps 128
// concurrent RPCs outstanding; request and response carry a short byte
// string. Rate comes from the closed-loop run; the latency panel reports the
// unloaded round trip (concurrency 1), since at full saturation closed-loop
// latency is queue depth divided by throughput for every system alike.
#include <cstdio>
#include <memory>
#include <string>

#include "compiler/compiler.h"
#include "core/network.h"
#include "dsl/parser.h"
#include "elements/handcoded.h"
#include "elements/library.h"
#include "ir/analysis.h"
#include "mrpc/adn_path.h"
#include "mrpc/engine_pool.h"
#include "stack/mesh_path.h"

namespace adn {
namespace {

constexpr uint64_t kMeasured = 30'000;
constexpr uint64_t kWarmup = 3'000;
constexpr int kRateConcurrency = 128;
constexpr int kLatencyConcurrency = 1;

rpc::Schema RequestSchema() {
  rpc::Schema s;
  (void)s.AddColumn({"username", rpc::ValueType::kText, false});
  (void)s.AddColumn({"object_id", rpc::ValueType::kInt, false});
  (void)s.AddColumn({"payload", rpc::ValueType::kBytes, false});
  return s;
}

// All users have W permission: Figure 5 measures element processing cost,
// not denial rates.
std::vector<std::pair<std::string, std::vector<rpc::Row>>> AclSeeds() {
  std::vector<rpc::Row> rows;
  for (const char* user : {"alice", "bob", "carol", "dave"}) {
    rows.push_back({rpc::Value(std::string(user)), rpc::Value("W")});
  }
  return {{"ac_tab", std::move(rows)}};
}

std::unordered_map<std::string, char> AclRules() {
  return {{"alice", 'W'}, {"bob", 'W'}, {"carol", 'W'}, {"dave", 'W'}};
}

struct Row {
  std::string chain;
  std::string system;
  double rate_krps;
  double latency_us;
  double p99_us;
};

// --- gRPC+Envoy ------------------------------------------------------------
stack::MeshResult RunEnvoy(const std::string& element, int concurrency) {
  stack::MeshConfig config;
  config.label = "gRPC+Envoy/" + element;
  config.concurrency = concurrency;
  config.measured_requests = kMeasured;
  config.warmup_requests = kWarmup;
  config.request_schema = RequestSchema();
  config.make_request = core::MakeDefaultRequestFactory();
  config.field_headers = {{"username", "x-user"},
                          {"object_id", "x-object-id"}};
  if (element == "Logging") {
    config.filters.push_back([] {
      return std::make_unique<stack::AccessLogFilter>(
          "[%DIRECTION%] user=%REQ(x-user)% path=%REQ(:path)% "
          "bytes=%BYTES%");
    });
  } else if (element == "ACL") {
    config.filters.push_back([] {
      std::vector<stack::RbacPolicy> allow;
      for (const char* user : {"alice", "bob", "carol", "dave"}) {
        stack::RbacPolicy policy;
        policy.name = std::string("allow-") + user;
        policy.principals.push_back(
            {"x-user", stack::HeaderMatcher::Kind::kExact, user});
        allow.push_back(std::move(policy));
      }
      return std::make_unique<stack::RbacFilter>(
          std::move(allow), stack::RbacFilter::DefaultAction::kDeny);
    });
  } else {  // Fault
    config.filters.push_back(
        [] { return std::make_unique<stack::FaultFilter>(0.05, 503); });
  }
  return RunMeshExperiment(config);
}

// --- ADN+mRPC (generated) ----------------------------------------------------
std::string ProgramFor(const std::string& element) {
  std::string out;
  out += elements::AclTableSql();
  out += elements::LogTableSql();
  out += elements::LoggingSql();
  out += elements::AclSql();
  out += elements::FaultSql();
  out += "CHAIN only FOR CALLS client -> server { " +
         (element == "ACL" ? std::string("Acl") : element) + " }\n";
  return out;
}

mrpc::AdnPathResult RunAdn(const std::string& element, int concurrency) {
  core::NetworkOptions options;
  options.policy = controller::PlacementPolicy::kNativeOnly;
  options.state_seeds = AclSeeds();
  auto network = core::Network::Create(ProgramFor(element), options);
  if (!network.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 network.status().ToString().c_str());
    std::abort();
  }
  core::WorkloadOptions workload;
  workload.label = "ADN+mRPC/" + element;
  workload.concurrency = concurrency;
  workload.measured_requests = kMeasured;
  workload.warmup_requests = kWarmup;
  workload.make_request = core::MakeDefaultRequestFactory();
  auto result = (*network)->RunWorkload("only", workload);
  if (!result.ok()) {
    std::fprintf(stderr, "workload failed: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

// --- Hand-coded mRPC -----------------------------------------------------------
mrpc::AdnPathResult RunHandCoded(const std::string& element,
                                 int concurrency) {
  mrpc::AdnPathConfig config;
  config.label = "hand-mRPC/" + element;
  config.concurrency = concurrency;
  config.measured_requests = kMeasured;
  config.warmup_requests = kWarmup;
  config.make_request = core::MakeDefaultRequestFactory();
  mrpc::PlacedStage stage;
  stage.site = mrpc::Site::kClientEngine;
  if (element == "Logging") {
    stage.factory = [] { return std::make_unique<elements::HandLogging>(); };
  } else if (element == "ACL") {
    stage.factory = [] {
      return std::make_unique<elements::HandAcl>(AclRules());
    };
  } else {
    stage.factory = [] {
      return std::make_unique<elements::HandFault>(0.05, 42);
    };
  }
  config.stages.push_back(std::move(stage));
  // Same minimal header the compiler would synthesize for this chain.
  config.header.fields = {
      {"username", rpc::ValueType::kText, false},
      {"object_id", rpc::ValueType::kInt, false},
      {"payload", rpc::ValueType::kBytes, false},
  };
  return RunAdnPathExperiment(config);
}

// --- Multi-worker EnginePool (real threads) ----------------------------------
// The single-chain cells above run the simulated single-threaded path; this
// row runs the full fig5 chain on the real-thread EnginePool and reports
// per-worker-CPU capacity (sum over workers of messages per CPU-nanosecond),
// the scaling basis that stays honest on single-core hosts.
double PoolCapacityMrps(int workers) {
  auto parsed = dsl::ParseProgram(elements::Fig5ProgramSource());
  auto lowered = compiler::LowerProgram(*parsed);
  if (!lowered.ok()) return 0;
  std::vector<std::shared_ptr<const ir::ElementIr>> chain = {
      lowered->FindElement("Logging"), lowered->FindElement("Acl"),
      lowered->FindElement("Fault")};
  std::vector<const ir::ElementIr*> raw;
  for (const auto& e : chain) raw.push_back(e.get());

  mrpc::EnginePool::Config config;
  config.workers = workers;
  config.shard_key_field = "username";
  config.processor = "fig5-pool";
  mrpc::EnginePool pool(chain, ir::PartitionIntoParallelGroups(raw), config);
  rpc::Table* acl = pool.FindTemplateInstance("Acl")->FindTable("ac_tab");
  constexpr int kUsers = 1024;  // spread the shard-key routing
  for (int i = 0; i < kUsers; ++i) {
    char name[16];
    std::snprintf(name, sizeof name, "u%04d", i);
    (void)acl->Insert({rpc::Value(std::string(name)), rpc::Value("W")});
  }
  if (!pool.Start().ok()) return 0;

  std::vector<rpc::Message> stream;
  for (uint64_t i = 0; i < 256; ++i) {
    char name[16];
    std::snprintf(name, sizeof name, "u%04llu",
                  static_cast<unsigned long long>(i * 2654435761ULL % kUsers));
    Bytes payload(64, static_cast<uint8_t>(i));
    stream.push_back(rpc::Message::MakeRequest(
        i + 1, "Obj.Put",
        {{"username", rpc::Value(std::string(name))},
         {"payload", rpc::Value(std::move(payload))}}));
  }
  for (uint64_t i = 0; i < 200'000; ++i) {
    pool.Submit(stream[i % stream.size()]);
  }
  pool.Drain();
  pool.Stop();
  double capacity = 0;
  for (int w = 0; w < workers; ++w) {
    const double cpu = static_cast<double>(pool.worker_cpu_ns(w));
    if (cpu > 0) {
      capacity += static_cast<double>(pool.processed_by(w)) / cpu * 1e3;
    }
  }
  return capacity;
}

}  // namespace
}  // namespace adn

int main() {
  using namespace adn;
  std::printf(
      "Figure 5 reproduction: RPC rate (closed loop, %d concurrent) and\n"
      "latency (unloaded, %d concurrent); %llu measured RPCs per cell.\n\n",
      kRateConcurrency, kLatencyConcurrency,
      static_cast<unsigned long long>(kMeasured));

  std::printf("%-10s %-16s %12s %14s %12s\n", "chain", "system",
              "rate (krps)", "latency (us)", "p99 (us)");
  std::printf("%.*s\n", 70,
              "----------------------------------------------------------------------");

  struct Cell {
    double rate, lat, p99;
  };
  for (const std::string element : {"Logging", "ACL", "Fault"}) {
    Cell envoy{}, adn_cell{}, hand{};
    {
      auto rate_run = RunEnvoy(element, kRateConcurrency);
      auto lat_run = RunEnvoy(element, kLatencyConcurrency);
      envoy = {rate_run.stats.throughput_krps, lat_run.stats.mean_latency_us,
               lat_run.stats.p99_latency_us};
    }
    {
      auto rate_run = RunAdn(element, kRateConcurrency);
      auto lat_run = RunAdn(element, kLatencyConcurrency);
      adn_cell = {rate_run.stats.throughput_krps,
                  lat_run.stats.mean_latency_us, lat_run.stats.p99_latency_us};
    }
    {
      auto rate_run = RunHandCoded(element, kRateConcurrency);
      auto lat_run = RunHandCoded(element, kLatencyConcurrency);
      hand = {rate_run.stats.throughput_krps, lat_run.stats.mean_latency_us,
              lat_run.stats.p99_latency_us};
    }
    std::printf("%-10s %-16s %12.1f %14.1f %12.1f\n", element.c_str(),
                "gRPC+Envoy", envoy.rate, envoy.lat, envoy.p99);
    std::printf("%-10s %-16s %12.1f %14.1f %12.1f\n", "",
                "ADN+mRPC", adn_cell.rate, adn_cell.lat, adn_cell.p99);
    std::printf("%-10s %-16s %12.1f %14.1f %12.1f\n", "",
                "hand-coded mRPC", hand.rate, hand.lat, hand.p99);
    std::printf("%-10s %-16s %12s %11.1fx %11.1fx   (ADN vs Envoy)\n\n", "",
                "", "", envoy.lat / adn_cell.lat, adn_cell.rate / envoy.rate);
  }
  std::printf(
      "Paper targets: ADN rate 5-6x Envoy; ADN latency 17-20x lower; "
      "hand-coded within 3-12%% of ADN.\n");

  const double cap1 = PoolCapacityMrps(1);
  const double cap4 = PoolCapacityMrps(4);
  std::printf(
      "\nEnginePool (real threads, full Logging->ACL->Fault chain, capacity "
      "= msgs per worker-CPU-sec):\n");
  std::printf("%-10s %-16s %12.0f krps (capacity)\n", "fig5", "1 worker",
              cap1 * 1e3);
  std::printf("%-10s %-16s %12.0f krps (capacity)   %.1fx\n", "", "4 workers",
              cap4 * 1e3, cap1 > 0 ? cap4 / cap1 : 0.0);
  std::printf(
      "See bench_scaling --threads / BENCH_threads.json for the full "
      "scaling curve.\n");
  return 0;
}
