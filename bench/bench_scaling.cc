// E7 — scaling without disruption (paper §5.2): the controller's feedback
// loop widens/narrows the engine pool as offered load ramps, and state
// migration (split/merge of the stateful LB's tables) is lossless with a
// bounded pause.
//
// Part 1: throughput steps — run the fig2 chain at increasing engine widths
// chosen by AdnController::RecommendEngineWidth from measured utilization.
// Part 2: migration audit — split/merge a populated LB + quota element and
// report state bytes, pause time, and hash equality (zero lost rows).
// Part 3 (`--threads`): real-thread scaling of the EnginePool — N worker
// threads, shard-key routing, per-worker table shards — writing
// BENCH_threads.json (schema in EXPERIMENTS.md). On a single-core host wall
// clock cannot show thread scaling, so the pool reports *capacity*: each
// worker's CLOCK_THREAD_CPUTIME_ID cost per message (workers park when idle,
// so CPU time ~= busy time), summed as the throughput the pool would sustain
// with one core per worker.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "compiler/lower.h"
#include "controller/migration.h"
#include "core/network.h"
#include "dsl/parser.h"
#include "elements/library.h"
#include "ir/analysis.h"
#include "mrpc/engine_pool.h"

#ifndef ADN_GIT_SHA
#define ADN_GIT_SHA "unknown"
#endif

namespace adn {
namespace {

std::vector<std::pair<std::string, std::vector<rpc::Row>>> Seeds() {
  std::vector<rpc::Row> rows;
  for (const char* user : {"alice", "bob", "carol", "dave"}) {
    rows.push_back({rpc::Value(std::string(user)), rpc::Value("W")});
  }
  return {{"ac_tab", std::move(rows)}};
}

struct Phase {
  int offered_concurrency;
  int width;
  double rate_krps;
  double utilization_proxy;  // rate achieved / rate capacity estimate
};

// --- Part 3: real-thread EnginePool scaling (`--threads`) --------------------

constexpr int kThreadUsers = 1024;  // spread shard-key routing across workers

std::string ThreadUser(uint64_t i) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "u%04llu",
                static_cast<unsigned long long>(i % kThreadUsers));
  return buf;
}

std::vector<rpc::Message> ThreadStream(size_t n, bool with_blob) {
  std::vector<rpc::Message> stream;
  stream.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Bytes payload(64, static_cast<uint8_t>(i));
    std::vector<rpc::Field> fields = {
        {"username", rpc::Value(ThreadUser(i * 2654435761ULL))},
        {"payload", rpc::Value(std::move(payload))}};
    if (with_blob) {
      fields.push_back({"blob", rpc::Value(Bytes(64, 0x5A))});
    }
    stream.push_back(
        rpc::Message::MakeRequest(i + 1, "Obj.Put", std::move(fields)));
  }
  return stream;
}

struct PoolRunResult {
  int workers = 0;
  double wall_ns_per_msg = 0;
  double cpu_ns_per_msg = 0;     // total worker CPU / messages
  double exec_ns_per_msg = 0;    // chain executor only (no ring transport)
  double capacity_mrps = 0;      // sum_w processed_w / cpu_ns_w, in Mmsg/s
  std::vector<double> per_worker_cpu_ns_per_msg;
  uint64_t processed = 0;
  uint64_t dropped = 0;
};

PoolRunResult RunPool(
    const std::vector<std::shared_ptr<const ir::ElementIr>>& elements,
    const std::vector<int>& groups, const std::vector<rpc::Message>& stream,
    int workers, uint64_t messages, mrpc::EnginePool::GroupMode mode) {
  mrpc::EnginePool::Config config;
  config.workers = workers;
  config.shard_key_field = "username";
  config.group_mode = mode;
  config.processor = "bench-threads";
  config.measure_exec = true;
  mrpc::EnginePool pool(elements, groups, config);
  if (ir::ElementInstance* acl = pool.FindTemplateInstance("Acl")) {
    rpc::Table* tab = acl->FindTable("ac_tab");
    for (uint64_t i = 0; i < kThreadUsers; ++i) {
      (void)tab->Insert({rpc::Value(ThreadUser(i)), rpc::Value("W")});
    }
  }
  if (!pool.Start().ok()) return {};

  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  for (uint64_t i = 0; i < messages; ++i) {
    pool.Submit(stream[i % stream.size()]);
  }
  pool.Drain();
  const double wall_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start)
          .count());
  pool.Stop();  // finalizes per-worker CPU counters

  PoolRunResult r;
  r.workers = workers;
  r.processed = pool.processed();
  r.dropped = pool.dropped();
  r.wall_ns_per_msg = wall_ns / static_cast<double>(messages);
  double total_cpu = 0;
  double total_exec = 0;
  for (int w = 0; w < workers; ++w) {
    const double cpu = static_cast<double>(pool.worker_cpu_ns(w));
    const double done = static_cast<double>(pool.processed_by(w));
    total_cpu += cpu;
    total_exec += static_cast<double>(pool.worker_exec_ns(w));
    r.per_worker_cpu_ns_per_msg.push_back(done > 0 ? cpu / done : 0.0);
    if (cpu > 0) r.capacity_mrps += done / cpu * 1e3;  // msgs/ns -> Mmsg/s
  }
  r.cpu_ns_per_msg = total_cpu / static_cast<double>(messages);
  r.exec_ns_per_msg = total_exec / static_cast<double>(messages);
  return r;
}

int RunThreadsBench() {
  std::printf(
      "Part 3: EnginePool thread scaling (fig5 chain, %d seeded users,\n"
      "shard-key routing on username; hardware_concurrency=%u).\n\n",
      kThreadUsers, std::thread::hardware_concurrency());

  auto parsed = dsl::ParseProgram(elements::Fig5ProgramSource());
  auto lowered = compiler::LowerProgram(*parsed);
  if (!lowered.ok()) return 1;
  std::vector<std::shared_ptr<const ir::ElementIr>> elements = {
      lowered->FindElement("Logging"), lowered->FindElement("Acl"),
      lowered->FindElement("Fault")};
  std::vector<const ir::ElementIr*> raw;
  for (const auto& e : elements) raw.push_back(e.get());
  const std::vector<int> groups = ir::PartitionIntoParallelGroups(raw);

  constexpr uint64_t kMessages = 400'000;
  // 256 distinct messages, cycled — the same stream shape the exec-tier
  // baseline (bench_breakdown) uses, so the gated number below compares
  // apples to apples.
  const std::vector<rpc::Message> stream = ThreadStream(256, false);
  // Warmup run (also validates the pipeline end to end).
  (void)RunPool(elements, groups, stream, 1, 50'000,
                mrpc::EnginePool::GroupMode::kSequential);

  std::printf("%-8s %13s %12s %12s %15s %s\n", "workers", "wall ns/msg",
              "cpu ns/msg", "exec ns/msg", "capacity(Mrps)",
              "per-worker cpu ns/msg");
  std::printf("%.*s\n", 88,
              "----------------------------------------------------------------------------------------");
  std::vector<PoolRunResult> rows;
  for (int workers : {1, 2, 4}) {
    PoolRunResult r = RunPool(elements, groups, stream, workers, kMessages,
                              mrpc::EnginePool::GroupMode::kSequential);
    std::string per_worker;
    for (double v : r.per_worker_cpu_ns_per_msg) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%s%.0f", per_worker.empty() ? "" : " ",
                    v);
      per_worker += buf;
    }
    std::printf("%-8d %13.1f %12.1f %12.1f %15.2f %s\n", workers,
                r.wall_ns_per_msg, r.cpu_ns_per_msg, r.exec_ns_per_msg,
                r.capacity_mrps, per_worker.c_str());
    rows.push_back(std::move(r));
  }
  // Gate measurement: the 1-worker compiled-chain cost, measured the way
  // the baseline (bench_breakdown) measures it — reps of 100k messages with
  // log_tab cleared between reps (the unbounded log table otherwise
  // dominates with multimap rehash + cache misses as it grows), best rep
  // wins. Clearing the worker's table between reps is safe: the pool is
  // drained and the worker parked, and the next Submit's ring handoff
  // orders the clear before the worker touches the table again.
  double compiled_ns_per_msg = 1e18;
  {
    mrpc::EnginePool::Config config;
    config.workers = 1;
    config.shard_key_field = "username";
    config.processor = "bench-threads-gate";
    config.measure_exec = true;
    mrpc::EnginePool pool(elements, groups, config);
    rpc::Table* acl = pool.FindTemplateInstance("Acl")->FindTable("ac_tab");
    for (uint64_t i = 0; i < kThreadUsers; ++i) {
      (void)acl->Insert({rpc::Value(ThreadUser(i)), rpc::Value("W")});
    }
    if (!pool.Start().ok()) return 1;
    constexpr uint64_t kRepMessages = 100'000;
    int64_t prev_exec = 0;
    uint64_t prev_done = 0;
    for (int rep = 0; rep < 5; ++rep) {
      pool.WorkerInstance(0, 0).FindTable("log_tab")->Clear();
      for (uint64_t i = 0; i < kRepMessages; ++i) {
        pool.Submit(stream[i % stream.size()]);
      }
      pool.Drain();
      const int64_t exec = pool.worker_exec_ns(0);
      const uint64_t done = pool.processed_by(0);
      const double ns = static_cast<double>(exec - prev_exec) /
                        static_cast<double>(done - prev_done);
      compiled_ns_per_msg = std::min(compiled_ns_per_msg, ns);
      prev_exec = exec;
      prev_done = done;
    }
    pool.Stop();
  }
  std::printf(
      "\n1-worker compiled-chain cost (best of 5 x 100k, log cleared per rep,"
      "\nbaseline methodology): %.1f ns/msg\n",
      compiled_ns_per_msg);

  const double speedup_4w = rows.back().capacity_mrps / rows[0].capacity_mrps;
  std::printf(
      "\nCapacity speedup at 4 workers: %.2fx (capacity = sum over workers of\n"
      "msgs per CPU-ns — the throughput the pool sustains with a core per\n"
      "worker; on this %u-CPU host wall clock cannot show the scaling).\n",
      speedup_4w, std::thread::hardware_concurrency());

  // Group-mode ablation on the provably-parallel chain (bench_parallel's
  // field-disjoint transforms -> one group of 3).
  const char* kIndep = R"(
ELEMENT Encrypt ON REQUEST {
  INPUT (payload BYTES);
  SELECT *, encrypt(payload, 'key') AS payload FROM input;
}
ELEMENT CompressBlob ON REQUEST {
  INPUT (blob BYTES);
  SELECT *, compress(blob) AS blob FROM input;
}
ELEMENT UserDigest ON REQUEST {
  INPUT (username TEXT);
  SELECT *, hash(username) AS user_digest FROM input;
}
)";
  auto indep_parsed = dsl::ParseProgram(kIndep);
  auto indep = compiler::LowerProgram(*indep_parsed);
  if (!indep.ok()) return 1;
  std::vector<std::shared_ptr<const ir::ElementIr>> indep_elements = {
      indep->FindElement("Encrypt"), indep->FindElement("CompressBlob"),
      indep->FindElement("UserDigest")};
  std::vector<const ir::ElementIr*> indep_raw;
  for (const auto& e : indep_elements) indep_raw.push_back(e.get());
  const std::vector<int> indep_groups =
      ir::PartitionIntoParallelGroups(indep_raw);

  // Fault-free chain: both modes process every message, so ns/msg compares
  // the execution strategy alone.
  constexpr uint64_t kAblationMessages = 100'000;
  const std::vector<rpc::Message> indep_stream = ThreadStream(4096, true);
  PoolRunResult seq = RunPool(indep_elements, indep_groups, indep_stream, 1,
                              kAblationMessages,
                              mrpc::EnginePool::GroupMode::kSequential);
  PoolRunResult con = RunPool(indep_elements, indep_groups, indep_stream, 1,
                              kAblationMessages,
                              mrpc::EnginePool::GroupMode::kConcurrent);
  std::printf(
      "\nParallel-group execution ablation (1 worker, Encrypt || CompressBlob "
      "|| UserDigest):\n"
      "  sequential-within-worker  %10.1f exec ns/msg\n"
      "  fused concurrent segment  %10.1f exec ns/msg  (%.1fx %s)\n"
      "Fork-join synchronization costs microseconds; these elements cost\n"
      "nanoseconds, so sequential-within-worker wins and stays the default —\n"
      "pool parallelism comes from sharding RPCs across workers instead.\n",
      seq.exec_ns_per_msg, con.exec_ns_per_msg,
      con.exec_ns_per_msg / seq.exec_ns_per_msg,
      con.exec_ns_per_msg > seq.exec_ns_per_msg ? "slower" : "faster");

  // BENCH_threads.json — schema documented in EXPERIMENTS.md.
  // `compiled_ns_per_msg` is the 1-worker chain-executor cost (transport
  // excluded — the same quantity bench_breakdown reports) so
  // tools/check_perf.py gates it against bench/baselines/exec_baseline.json.
  std::FILE* f = std::fopen("BENCH_threads.json", "w");
  if (f == nullptr) return 1;
  std::fprintf(f,
               "{\n"
               "  \"schema_version\": 1,\n"
               "  \"git_sha\": \"%s\",\n"
               "  \"chain\": \"fig5 (Logging -> ACL -> Fault)\",\n"
               "  \"hardware_concurrency\": %u,\n"
               "  \"messages\": %llu,\n"
               "  \"compiled_ns_per_msg\": %.1f,\n"
               "  \"speedup_4w\": %.2f,\n"
               "  \"rows\": [",
               ADN_GIT_SHA, std::thread::hardware_concurrency(),
               static_cast<unsigned long long>(kMessages),
               compiled_ns_per_msg, speedup_4w);
  for (size_t i = 0; i < rows.size(); ++i) {
    const PoolRunResult& r = rows[i];
    std::fprintf(f,
                 "%s\n    {\"workers\": %d, \"wall_ns_per_msg\": %.1f, "
                 "\"cpu_ns_per_msg\": %.1f, \"exec_ns_per_msg\": %.1f, "
                 "\"capacity_mrps\": %.3f, "
                 "\"processed\": %llu, \"dropped\": %llu, "
                 "\"per_worker_cpu_ns_per_msg\": [",
                 i == 0 ? "" : ",", r.workers, r.wall_ns_per_msg,
                 r.cpu_ns_per_msg, r.exec_ns_per_msg, r.capacity_mrps,
                 static_cast<unsigned long long>(r.processed),
                 static_cast<unsigned long long>(r.dropped));
    for (size_t w = 0; w < r.per_worker_cpu_ns_per_msg.size(); ++w) {
      std::fprintf(f, "%s%.1f", w == 0 ? "" : ", ",
                   r.per_worker_cpu_ns_per_msg[w]);
    }
    std::fprintf(f, "]}");
  }
  std::fprintf(f,
               "\n  ],\n"
               "  \"group_ablation\": {\"chain\": \"Encrypt || CompressBlob "
               "|| UserDigest\", \"sequential_exec_ns_per_msg\": %.1f, "
               "\"concurrent_exec_ns_per_msg\": %.1f, \"winner\": \"%s\"}\n"
               "}\n",
               seq.exec_ns_per_msg, con.exec_ns_per_msg,
               con.exec_ns_per_msg > seq.exec_ns_per_msg ? "sequential"
                                                         : "concurrent");
  std::fclose(f);
  std::printf("\nWrote BENCH_threads.json\n");
  return 0;
}

}  // namespace
}  // namespace adn

int main(int argc, char** argv) {
  using namespace adn;
  if (argc > 1 && std::strcmp(argv[1], "--threads") == 0) {
    return RunThreadsBench();
  }
  std::printf(
      "Scaling without disruption (E7).\n\n"
      "Part 1: controller feedback loop widens the engine pool as load "
      "ramps.\n\n");

  core::NetworkOptions options;
  options.state_seeds = Seeds();
  auto network = core::Network::Create(elements::Fig2ProgramSource(), options);
  if (!network.ok()) {
    std::fprintf(stderr, "deploy failed\n");
    return 1;
  }
  controller::ClusterState scratch;
  controller::AdnController advisor(&scratch, {});

  std::printf("%-8s %-14s %-8s %12s %12s %s\n", "phase", "offered(conc)",
              "width", "rate(krps)", "util", "decision");
  std::printf("%.*s\n", 75,
              "---------------------------------------------------------------------------");

  int width = 1;
  const int kOffered[] = {8, 32, 128, 256, 256, 4, 2};
  for (size_t phase = 0; phase < std::size(kOffered); ++phase) {
    core::WorkloadOptions workload;
    workload.concurrency = kOffered[phase];
    workload.measured_requests = 10'000;
    workload.warmup_requests = 1'000;
    workload.make_request = core::MakeDefaultRequestFactory(1024);
    workload.client_engine_width = width;
    workload.server_engine_width = width;
    auto run = (*network)->RunWorkload("fig2", workload);
    if (!run.ok()) {
      std::fprintf(stderr, "phase %zu failed\n", phase);
      return 1;
    }
    // The feedback signal the paper's controller consumes: engine
    // utilization reported by the data plane.
    double utilization = std::max(run->client_engine_utilization,
                                  run->server_engine_utilization);
    int next = advisor.RecommendEngineWidth(utilization, width);
    std::printf("%-8zu %-14d %-8d %12.1f %11.0f%% %s\n", phase,
                kOffered[phase], width, run->stats.throughput_krps,
                utilization * 100.0,
                next > width   ? "scale OUT"
                : next < width ? "scale IN"
                               : "steady");
    width = next;
  }

  std::printf(
      "\nPart 2: state migration audit for the stateful LB (endpoints "
      "table).\n\n");
  auto parsed = dsl::ParseProgram(std::string(elements::EndpointsTableSql()) +
                                  std::string(elements::HashLbSql()));
  auto lowered = compiler::LowerProgram(*parsed);
  if (!lowered.ok()) return 1;

  std::printf("%-12s %-10s %14s %12s %10s\n", "rows", "shards",
              "state bytes", "pause (us)", "lossless");
  std::printf("%.*s\n", 64,
              "----------------------------------------------------------------");
  for (int rows : {16, 256, 4096, 65536}) {
    mrpc::GeneratedStage source(lowered->elements[0], 1);
    for (int i = 0; i < rows; ++i) {
      (void)source.instance().FindTable("endpoints")->Insert(
          {rpc::Value(i), rpc::Value(100 + i % 7)});
    }
    for (size_t shards : {2u, 4u}) {
      auto out = controller::ScaleOutStage(source, shards, 50);
      if (!out.ok()) return 1;
      // Merge back and verify.
      std::vector<const mrpc::GeneratedStage*> instances;
      for (const auto& i : out->instances) instances.push_back(i.get());
      auto merged = controller::ScaleInStages(instances, 99);
      if (!merged.ok()) return 1;
      bool lossless =
          out->report.lossless() && merged->report.lossless() &&
          merged->instance->instance().StateContentHash() ==
              source.instance().StateContentHash();
      std::printf("%-12d %-10zu %14zu %12.1f %10s\n", rows, shards,
                  out->report.state_bytes,
                  static_cast<double>(out->report.pause_ns) / 1000.0,
                  lossless ? "yes" : "NO!");
    }
  }
  std::printf(
      "\nExpected shape: pause grows linearly with state size (50 us floor),"
      "\nand every split+merge round-trips the exact table contents.\n");
  return 0;
}
