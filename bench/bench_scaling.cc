// E7 — scaling without disruption (paper §5.2): the controller's feedback
// loop widens/narrows the engine pool as offered load ramps, and state
// migration (split/merge of the stateful LB's tables) is lossless with a
// bounded pause.
//
// Part 1: throughput steps — run the fig2 chain at increasing engine widths
// chosen by AdnController::RecommendEngineWidth from measured utilization.
// Part 2: migration audit — split/merge a populated LB + quota element and
// report state bytes, pause time, and hash equality (zero lost rows).
#include <cstdio>

#include "controller/migration.h"
#include "core/network.h"
#include "dsl/parser.h"
#include "elements/library.h"

namespace adn {
namespace {

std::vector<std::pair<std::string, std::vector<rpc::Row>>> Seeds() {
  std::vector<rpc::Row> rows;
  for (const char* user : {"alice", "bob", "carol", "dave"}) {
    rows.push_back({rpc::Value(std::string(user)), rpc::Value("W")});
  }
  return {{"ac_tab", std::move(rows)}};
}

struct Phase {
  int offered_concurrency;
  int width;
  double rate_krps;
  double utilization_proxy;  // rate achieved / rate capacity estimate
};

}  // namespace
}  // namespace adn

int main() {
  using namespace adn;
  std::printf(
      "Scaling without disruption (E7).\n\n"
      "Part 1: controller feedback loop widens the engine pool as load "
      "ramps.\n\n");

  core::NetworkOptions options;
  options.state_seeds = Seeds();
  auto network = core::Network::Create(elements::Fig2ProgramSource(), options);
  if (!network.ok()) {
    std::fprintf(stderr, "deploy failed\n");
    return 1;
  }
  controller::ClusterState scratch;
  controller::AdnController advisor(&scratch, {});

  std::printf("%-8s %-14s %-8s %12s %12s %s\n", "phase", "offered(conc)",
              "width", "rate(krps)", "util", "decision");
  std::printf("%.*s\n", 75,
              "---------------------------------------------------------------------------");

  int width = 1;
  const int kOffered[] = {8, 32, 128, 256, 256, 4, 2};
  for (size_t phase = 0; phase < std::size(kOffered); ++phase) {
    core::WorkloadOptions workload;
    workload.concurrency = kOffered[phase];
    workload.measured_requests = 10'000;
    workload.warmup_requests = 1'000;
    workload.make_request = core::MakeDefaultRequestFactory(1024);
    workload.client_engine_width = width;
    workload.server_engine_width = width;
    auto run = (*network)->RunWorkload("fig2", workload);
    if (!run.ok()) {
      std::fprintf(stderr, "phase %zu failed\n", phase);
      return 1;
    }
    // The feedback signal the paper's controller consumes: engine
    // utilization reported by the data plane.
    double utilization = std::max(run->client_engine_utilization,
                                  run->server_engine_utilization);
    int next = advisor.RecommendEngineWidth(utilization, width);
    std::printf("%-8zu %-14d %-8d %12.1f %11.0f%% %s\n", phase,
                kOffered[phase], width, run->stats.throughput_krps,
                utilization * 100.0,
                next > width   ? "scale OUT"
                : next < width ? "scale IN"
                               : "steady");
    width = next;
  }

  std::printf(
      "\nPart 2: state migration audit for the stateful LB (endpoints "
      "table).\n\n");
  auto parsed = dsl::ParseProgram(std::string(elements::EndpointsTableSql()) +
                                  std::string(elements::HashLbSql()));
  auto lowered = compiler::LowerProgram(*parsed);
  if (!lowered.ok()) return 1;

  std::printf("%-12s %-10s %14s %12s %10s\n", "rows", "shards",
              "state bytes", "pause (us)", "lossless");
  std::printf("%.*s\n", 64,
              "----------------------------------------------------------------");
  for (int rows : {16, 256, 4096, 65536}) {
    mrpc::GeneratedStage source(lowered->elements[0], 1);
    for (int i = 0; i < rows; ++i) {
      (void)source.instance().FindTable("endpoints")->Insert(
          {rpc::Value(i), rpc::Value(100 + i % 7)});
    }
    for (size_t shards : {2u, 4u}) {
      auto out = controller::ScaleOutStage(source, shards, 50);
      if (!out.ok()) return 1;
      // Merge back and verify.
      std::vector<const mrpc::GeneratedStage*> instances;
      for (const auto& i : out->instances) instances.push_back(i.get());
      auto merged = controller::ScaleInStages(instances, 99);
      if (!merged.ok()) return 1;
      bool lossless =
          out->report.lossless() && merged->report.lossless() &&
          merged->instance->instance().StateContentHash() ==
              source.instance().StateContentHash();
      std::printf("%-12d %-10zu %14zu %12.1f %10s\n", rows, shards,
                  out->report.state_bytes,
                  static_cast<double>(out->report.pause_ns) / 1000.0,
                  lossless ? "yes" : "NO!");
    }
  }
  std::printf(
      "\nExpected shape: pause grows linearly with state size (50 us floor),"
      "\nand every split+merge round-trips the exact table contents.\n");
  return 0;
}
