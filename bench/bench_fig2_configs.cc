// E5 — Figure 2: four realizations of the same RPC processing chain
// (load balancing, compression, decompression, access control between
// services A and B), produced by the placement solver:
//
//   config 1: in-app           (RPC library, akin to gRPC proxyless)
//   config 2: kernel + SmartNIC offload
//   config 3: switch offload + semantic-preserving reordering
//   config 4: scale-out        (wider engine stations)
//
// The harness deploys each configuration through the controller and reports
// latency, throughput, and host CPU per RPC — the host-CPU column is where
// configs 2/3 win (work leaves the host), and config 4 is where throughput
// scales.
#include <cstdio>

#include "core/network.h"
#include "stack/mesh_path.h"
#include "elements/library.h"

namespace adn {
namespace {

constexpr uint64_t kMeasured = 15'000;
constexpr uint64_t kWarmup = 1'500;

std::vector<std::pair<std::string, std::vector<rpc::Row>>> Seeds() {
  std::vector<rpc::Row> rows;
  for (const char* user : {"alice", "bob", "carol", "dave"}) {
    rows.push_back({rpc::Value(std::string(user)), rpc::Value("W")});
  }
  return {{"ac_tab", std::move(rows)}};
}

struct ConfigResult {
  std::string name;
  std::string placement;
  double rate_krps;
  double latency_us;
  double host_cpu_us;
};

ConfigResult RunConfig(const std::string& name,
                       controller::PlacementPolicy policy,
                       bool rich_hardware, int engine_width) {
  core::NetworkOptions options;
  options.policy = policy;
  options.state_seeds = Seeds();
  if (policy == controller::PlacementPolicy::kInApp) {
    // Figure 2 config 1 runs the whole chain inside the application
    // binaries (the operator accepts the trust tradeoff).
    options.environment.trust_app_binaries = true;
  }
  if (rich_hardware) {
    options.environment.sender_kernel_offload = true;
    options.environment.receiver_kernel_offload = true;
    options.environment.receiver_smartnic = true;
    options.environment.p4_switch_on_path = true;
  }
  auto network = core::Network::Create(elements::Fig2ProgramSource(), options);
  if (!network.ok()) {
    std::fprintf(stderr, "[%s] deploy failed: %s\n", name.c_str(),
                 network.status().ToString().c_str());
    std::abort();
  }

  core::WorkloadOptions workload;
  workload.label = name;
  workload.concurrency = 128;
  workload.measured_requests = kMeasured;
  workload.warmup_requests = kWarmup;
  workload.make_request = core::MakeDefaultRequestFactory(1024);
  workload.client_engine_width = engine_width;
  workload.server_engine_width = engine_width;
  auto rate_run = (*network)->RunWorkload("fig2", workload);

  workload.concurrency = 1;
  auto latency_run = (*network)->RunWorkload("fig2", workload);
  if (!rate_run.ok() || !latency_run.ok()) {
    std::fprintf(stderr, "[%s] run failed\n", name.c_str());
    std::abort();
  }

  ConfigResult result;
  result.name = name;
  const auto* placement = (*network)->PlacementFor("fig2");
  const auto* chain = (*network)->Chain("fig2");
  result.placement = placement->DebugString(*chain);
  result.rate_krps = rate_run->stats.throughput_krps;
  result.latency_us = latency_run->stats.mean_latency_us;
  result.host_cpu_us = rate_run->host_cpu_per_rpc_ns / 1000.0;
  return result;
}

// The service-mesh way to realize the same chain: Envoy sidecars with a
// compressor at the client egress and hash-router + RBAC + decompressor at
// the server ingress — the architecture all four ADN configs replace.
ConfigResult RunMesh() {
  stack::MeshConfig config;
  config.label = "mesh";
  config.concurrency = 128;
  config.measured_requests = kMeasured;
  config.warmup_requests = kWarmup;
  rpc::Schema schema;
  (void)schema.AddColumn({"username", rpc::ValueType::kText, false});
  (void)schema.AddColumn({"object_id", rpc::ValueType::kInt, false});
  (void)schema.AddColumn({"payload", rpc::ValueType::kBytes, false});
  config.request_schema = schema;
  config.make_request = core::MakeDefaultRequestFactory(1024);
  config.field_headers = {{"username", "x-user"},
                          {"object_id", "x-object-id"}};
  config.client_filters.push_back(
      [] { return std::make_unique<stack::CompressorFilter>(true); });
  config.filters.push_back([] {
    return std::make_unique<stack::HashRouterFilter>("x-object-id", 2);
  });
  config.filters.push_back(
      [] { return std::make_unique<stack::CompressorFilter>(false); });
  config.filters.push_back([] {
    std::vector<stack::RbacPolicy> allow;
    for (const char* user : {"alice", "bob", "carol", "dave"}) {
      stack::RbacPolicy policy;
      policy.principals.push_back(
          {"x-user", stack::HeaderMatcher::Kind::kExact, user});
      allow.push_back(std::move(policy));
    }
    return std::make_unique<stack::RbacFilter>(
        std::move(allow), stack::RbacFilter::DefaultAction::kDeny);
  });
  auto rate_run = RunMeshExperiment(config);
  config.concurrency = 1;
  auto latency_run = RunMeshExperiment(config);

  ConfigResult result;
  result.name = "mesh: gRPC+Envoy";
  result.placement = "generic sidecar filters at both proxies";
  result.rate_krps = rate_run.stats.throughput_krps;
  result.latency_us = latency_run.stats.mean_latency_us;
  double host = 0;
  for (const auto& [stage, ns] : rate_run.stage_cpu_ns) host += ns;
  result.host_cpu_us = host / 1000.0;
  return result;
}

}  // namespace
}  // namespace adn

int main() {
  using namespace adn;
  std::printf(
      "Figure 2 reproduction: four realizations of the LB + compression +\n"
      "decompression + access-control chain (1 KiB payloads).\n\n");

  std::vector<ConfigResult> results;
  results.push_back(RunConfig("cfg1: in-app",
                              controller::PlacementPolicy::kInApp,
                              /*rich_hardware=*/false, 1));
  results.push_back(RunConfig("cfg2: kernel+SmartNIC",
                              controller::PlacementPolicy::kMinHostCpu,
                              /*rich_hardware=*/true, 1));
  results.push_back(RunConfig("cfg3: switch+reorder",
                              controller::PlacementPolicy::kMinLatency,
                              /*rich_hardware=*/true, 1));
  results.push_back(RunConfig("cfg4: scale-out x4",
                              controller::PlacementPolicy::kNativeOnly,
                              /*rich_hardware=*/false, 4));
  // Reference: everything on one engine (the paper's prototype baseline).
  results.push_back(RunConfig("ref: engines x1",
                              controller::PlacementPolicy::kNativeOnly,
                              /*rich_hardware=*/false, 1));
  // And the world all of the above replaces.
  results.push_back(RunMesh());

  std::printf("%-22s %12s %14s %16s\n", "configuration", "rate (krps)",
              "latency (us)", "host cpu (us/rpc)");
  std::printf("%.*s\n", 68,
              "--------------------------------------------------------------------");
  for (const auto& r : results) {
    std::printf("%-22s %12.1f %14.1f %16.2f\n", r.name.c_str(), r.rate_krps,
                r.latency_us, r.host_cpu_us);
  }
  std::printf("\nPlacements chosen by the controller:\n");
  for (const auto& r : results) {
    std::printf("  %-22s %s\n", r.name.c_str(), r.placement.c_str());
  }
  std::printf(
      "\nExpected shape: cfg1 lowest latency (no extra hops) but work in the"
      "\napp; cfg2/cfg3 cut host CPU via offload; cfg4 highest rate.\n");
  return 0;
}
