// Allocations-per-message gate for the zero-allocation data plane (E15).
//
// Links adn_alloc_hooks (counting operator-new replacement, alloc_stats.h),
// so every heap allocation in the process is observable. Two phases over the
// same fig5 chain on a 1-worker EnginePool at the default burst size:
//
//  - legacy: pre-built heap messages, Submit() by lvalue (deep copy per
//    message) — the pre-arena data plane. Expected >= 3 allocs/msg (field
//    buffer + payload Bytes on the copy, plus the log INSERT row before the
//    spare-row pool warms).
//  - arena:  each message is built with Message::WithArena(pool) (field
//    buffer and TEXT/BYTES payloads bump-allocated in a leased arena) and
//    moved down the ring. With the arena pool, the table spare-row pool and
//    the interner warmed by a throwaway rep, the steady-state window should
//    allocate NOTHING: allocs_per_msg == 0 is the CI gate
//    (tools/check_perf.py --max-allocs).
//
// Methodology matches bench_burst: log_tab cleared between reps while the
// pool is drained (Clear() also stocks the spare-row pool the measured rep
// draws from), measured window = one rep of kRepMessages.
//
// Writes BENCH_alloc.json (schema in EXPERIMENTS.md).
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/alloc_stats.h"
#include "common/arena.h"
#include "compiler/lower.h"
#include "dsl/parser.h"
#include "elements/library.h"
#include "ir/analysis.h"
#include "mrpc/engine_pool.h"
#include "rpc/intern.h"

#ifndef ADN_GIT_SHA
#define ADN_GIT_SHA "unknown"
#endif

namespace adn {
namespace {

constexpr int kUsers = 1024;
// Must stay under the table spare-row cap (65536) so every measured-rep
// INSERT can reuse a row recycled by the inter-rep Clear().
constexpr uint64_t kRepMessages = 50'000;

std::string User(uint64_t i) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "u%04llu",
                static_cast<unsigned long long>(i % kUsers));
  return buf;
}

struct PhaseResult {
  double allocs_per_msg = 0;
  double ns_per_msg = 0;
};

struct Harness {
  std::unique_ptr<mrpc::EnginePool> pool;

  explicit Harness(
      const std::vector<std::shared_ptr<const ir::ElementIr>>& elements,
      const std::vector<int>& groups) {
    mrpc::EnginePool::Config config;
    config.workers = 1;
    config.shard_key_field = "username";
    config.processor = "bench-alloc";
    config.measure_exec = true;
    pool = std::make_unique<mrpc::EnginePool>(elements, groups, config);
    rpc::Table* acl = pool->FindTemplateInstance("Acl")->FindTable("ac_tab");
    for (uint64_t i = 0; i < kUsers; ++i) {
      (void)acl->Insert({rpc::Value(User(i)), rpc::Value("W")});
    }
  }

  bool Start() { return pool->Start().ok(); }
  void ClearLog() {
    pool->WorkerInstance(0, 0).FindTable("log_tab")->Clear();
  }
};

// One rep: submit kRepMessages via `submit(i)`, drain, return stats over the
// window. The alloc counter is process-global, so the window captures both
// the producer side (message construction + ring push) and the worker side
// (chain execution + table writes).
template <typename SubmitFn>
PhaseResult MeasureRep(Harness& h, SubmitFn&& submit) {
  const int64_t exec0 = h.pool->worker_exec_ns(0);
  const uint64_t done0 = h.pool->processed_by(0);
  const uint64_t allocs0 = common::alloc_stats::TotalAllocs();
  for (uint64_t i = 0; i < kRepMessages; ++i) submit(i);
  h.pool->Drain();
  const uint64_t allocs1 = common::alloc_stats::TotalAllocs();
  PhaseResult r;
  r.allocs_per_msg = static_cast<double>(allocs1 - allocs0) /
                     static_cast<double>(kRepMessages);
  r.ns_per_msg =
      static_cast<double>(h.pool->worker_exec_ns(0) - exec0) /
      static_cast<double>(h.pool->processed_by(0) - done0);
  return r;
}

int Run() {
  if (!common::alloc_stats::Counting()) {
    std::fprintf(stderr,
                 "bench_alloc: alloc hooks not linked — counts would read 0 "
                 "vacuously\n");
    return 1;
  }

  auto parsed = dsl::ParseProgram(elements::Fig5ProgramSource());
  auto lowered = compiler::LowerProgram(*parsed);
  if (!lowered.ok()) {
    std::fprintf(stderr, "lowering failed\n");
    return 1;
  }
  std::vector<std::shared_ptr<const ir::ElementIr>> elements = {
      lowered->FindElement("Logging"), lowered->FindElement("Acl"),
      lowered->FindElement("Fault")};
  std::vector<const ir::ElementIr*> raw;
  for (const auto& e : elements) raw.push_back(e.get());
  const std::vector<int> groups = ir::PartitionIntoParallelGroups(raw);

  // --- Phase 1: legacy heap messages, copy per Submit ----------------------
  std::vector<rpc::Message> stream;
  stream.reserve(256);
  for (uint64_t i = 0; i < 256; ++i) {
    Bytes payload(64, static_cast<uint8_t>(i));
    std::vector<rpc::Field> fields = {
        {"username", rpc::Value(User(i * 2654435761ULL))},
        {"payload", rpc::Value(std::move(payload))}};
    stream.push_back(
        rpc::Message::MakeRequest(i + 1, "Obj.Put", std::move(fields)));
  }

  PhaseResult legacy;
  {
    Harness h(elements, groups);
    if (!h.Start()) return 1;
    auto submit = [&](uint64_t i) {
      h.pool->Submit(stream[i % stream.size()]);  // lvalue: deep copy
    };
    (void)MeasureRep(h, submit);  // warm: spares, ring, interner, counters
    h.ClearLog();
    legacy = MeasureRep(h, submit);
    h.pool->Stop();
  }

  // --- Phase 2: arena-backed messages, moved down the ring -----------------
  const rpc::FieldId username_fid = rpc::InternFieldName("username");
  const rpc::FieldId payload_fid = rpc::InternFieldName("payload");
  // Small slabs: a fig5 message needs ~300B (field buffer + 64B payload +
  // username), and the ring keeps ~1k messages in flight — 64KB default
  // slabs would cycle ~67MB of cold cache through the data plane.
  common::ArenaPool arena_pool(1024);
  PhaseResult arena;
  {
    Harness h(elements, groups);
    if (!h.Start()) return 1;
    uint8_t payload[64];
    auto submit = [&](uint64_t i) {
      rpc::Message m = rpc::Message::WithArena(arena_pool);
      m.set_id(i + 1);
      m.set_method("Obj.Put");
      std::memset(payload, static_cast<uint8_t>(i), sizeof payload);
      m.SetText(username_fid, User(i * 2654435761ULL));
      m.SetBytes(payload_fid, payload);
      h.pool->Submit(std::move(m));
    };
    (void)MeasureRep(h, submit);  // warm: arena pool reaches steady size
    h.ClearLog();
    arena = MeasureRep(h, submit);
    h.pool->Stop();
  }

  std::printf(
      "Allocations per message, fig5 chain, 1-worker EnginePool "
      "(window = %lluk msgs):\n\n",
      static_cast<unsigned long long>(kRepMessages / 1000));
  std::printf("%-28s %14s %12s\n", "phase", "allocs/msg", "ns/msg");
  std::printf("%.*s\n", 56,
              "--------------------------------------------------------");
  std::printf("%-28s %14.4f %12.1f\n", "legacy (copy per Submit)",
              legacy.allocs_per_msg, legacy.ns_per_msg);
  std::printf("%-28s %14.4f %12.1f\n", "arena (zero-alloc path)",
              arena.allocs_per_msg, arena.ns_per_msg);
  std::printf(
      "\nArena pool: %zu arenas created, %zu leases served from the free "
      "list.\n",
      arena_pool.created(), arena_pool.reused());

  std::FILE* f = std::fopen("BENCH_alloc.json", "w");
  if (f == nullptr) return 1;
  std::fprintf(f,
               "{\n"
               "  \"schema_version\": 1,\n"
               "  \"git_sha\": \"%s\",\n"
               "  \"chain\": \"fig5 (Logging -> ACL -> Fault)\",\n"
               "  \"rep_messages\": %llu,\n"
               "  \"legacy_allocs_per_msg\": %.4f,\n"
               "  \"legacy_ns_per_msg\": %.1f,\n"
               "  \"allocs_per_msg\": %.4f,\n"
               "  \"ns_per_msg\": %.1f,\n"
               "  \"arenas_created\": %zu,\n"
               "  \"arenas_reused\": %zu\n"
               "}\n",
               ADN_GIT_SHA, static_cast<unsigned long long>(kRepMessages),
               legacy.allocs_per_msg, legacy.ns_per_msg, arena.allocs_per_msg,
               arena.ns_per_msg, arena_pool.created(), arena_pool.reused());
  std::fclose(f);
  std::printf("\nWrote BENCH_alloc.json\n");
  return 0;
}

}  // namespace
}  // namespace adn

int main() { return adn::Run(); }
