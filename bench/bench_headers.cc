// E8 — minimal headers: bytes on the wire for one RPC under the ADN
// compiler-synthesized header vs the standard layered stack (Ethernet + IP +
// TCP + HTTP/2 + HPACK + gRPC prefix + protobuf tags), plus the P4
// parse-window feasibility check the paper's §2 example motivates ("a
// P4-based programmable switch has access to about the first 200 bytes").
#include <cstdio>

#include "compiler/compiler.h"
#include "core/network.h"
#include "elements/library.h"
#include "stack/http2.h"
#include "stack/proto_codec.h"

namespace adn {
namespace {

rpc::Message SampleRequest(size_t payload_bytes) {
  Bytes payload(payload_bytes, 0x5A);
  return rpc::Message::MakeRequest(
      7, "Store.Get",
      {{"username", rpc::Value("alice")},
       {"object_id", rpc::Value(123456)},
       {"payload", rpc::Value(std::move(payload))}});
}

size_t AdnWireBytes(const rpc::HeaderSpec& spec, const rpc::Message& m) {
  rpc::MethodRegistry methods;
  methods.Intern(m.method());
  rpc::AdnWireCodec codec(spec, &methods);
  Bytes wire;
  Status s = codec.Encode(m, wire);
  if (!s.ok()) std::abort();
  return wire.size();
}

size_t LayeredWireBytes(const rpc::Message& m, const rpc::Schema& schema) {
  stack::ProtoSchema proto(schema);
  auto body = stack::ProtoEncode(m, proto);
  if (!body.ok()) std::abort();
  stack::HpackCodec hpack;
  stack::GrpcHttp2Message h2;
  h2.headers = stack::MakeGrpcRequestHeaders(
      "service-b", "/Store.Get",
      {{"x-user", "alice"}, {"x-object-id", "123456"}});
  h2.grpc_payload = std::move(body).value();
  h2.stream_id = 1;
  Bytes framed = stack::EncodeGrpcMessage(h2, hpack);
  return framed.size() + 66;  // + Ethernet 14 / IPv4 20 / TCP 32
}

}  // namespace
}  // namespace adn

int main() {
  using namespace adn;

  // Compile fig2 to get real synthesized headers per link.
  compiler::Compiler c;
  auto program = c.CompileSource(elements::Fig2ProgramSource(), {});
  if (!program.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 program.status().ToString().c_str());
    return 1;
  }
  const compiler::CompiledChain* chain = program->FindChain("fig2");

  std::printf("Header/wire size comparison (E8), request with 3 fields:\n\n");
  std::printf("%-12s %18s %18s %10s\n", "payload", "layered stack (B)",
              "ADN minimal (B)", "ratio");
  std::printf("%.*s\n", 62,
              "--------------------------------------------------------------");
  for (size_t payload : {size_t{16}, size_t{64}, size_t{512}, size_t{4096}}) {
    rpc::Message m = SampleRequest(payload);
    size_t layered = LayeredWireBytes(m, chain->request_schema);
    size_t adn_bytes = AdnWireBytes(chain->headers.link_specs[0], m);
    std::printf("%-12zu %18zu %18zu %9.1fx\n", payload, layered, adn_bytes,
                static_cast<double>(layered) /
                    static_cast<double>(adn_bytes));
  }

  std::printf("\nPer-link synthesized headers for the fig2 chain:\n");
  for (size_t i = 0; i < chain->headers.link_specs.size(); ++i) {
    std::printf("  link %zu: %s\n", i,
                chain->headers.link_specs[i].DebugString().c_str());
  }

  std::printf("\nHeader-overhead-only comparison (no payload bytes):\n");
  std::printf("  layered L2-L7 framing per message : %zu bytes\n",
              compiler::LayeredStackHeaderBytes(3));
  std::printf("  ADN base header                   : %zu bytes\n",
              rpc::HeaderSpec::kBaseHeaderBytes);

  // P4 parse-window feasibility: HashLb's key must sit within 200 bytes.
  const compiler::CompiledElement* lb = nullptr;
  for (const auto& e : chain->elements) {
    if (e.ir->name == "HashLb") lb = &e;
  }
  if (lb != nullptr) {
    auto depth = compiler::CheckP4ParseDepth(
        *lb->ir, chain->headers.link_specs[0],
        sim::CostModel::Default().p4_parse_depth_bytes);
    std::printf(
        "\nP4 parse-depth check for HashLb on link 0: %s%s\n",
        depth.feasible ? "FITS within 200 B (object_id front-loaded)"
                       : "DOES NOT FIT: ",
        depth.feasible ? "" : depth.reason.c_str());
  }
  return 0;
}
