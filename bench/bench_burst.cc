// Burst-size sweep for the batched data plane: how much does draining the
// SPSC ring in bursts and running the ChainProgram executor in SoA wavefront
// mode (with table-row prefetch) buy over one-message-at-a-time?
//
// Methodology matches the 1-worker gate in bench_scaling --threads so the
// numbers are comparable: fig5 chain (Logging -> ACL -> Fault), 1-worker
// EnginePool with measure_exec, reps of 100k messages with log_tab cleared
// between reps (the unbounded log otherwise dominates with multimap rehash
// as it grows), best rep wins. The only variable is Config::burst_size —
// burst=1 IS the scalar path (ProcessBurst falls back below 2 lanes), so the
// first row doubles as the pre-burst baseline.
//
// A second pass runs 4 workers at the default burst size and reports pool
// capacity (sum over workers of msgs per CPU-ns) — the fig5 scaling headline.
//
// Writes BENCH_burst.json (schema in EXPERIMENTS.md). `compiled_ns_per_msg`
// is the default-burst 1-worker executor cost so tools/check_perf.py can gate
// it against bench/baselines/burst_baseline.json.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "compiler/lower.h"
#include "dsl/parser.h"
#include "elements/library.h"
#include "ir/analysis.h"
#include "ir/program.h"
#include "mrpc/engine_pool.h"

#ifndef ADN_GIT_SHA
#define ADN_GIT_SHA "unknown"
#endif

namespace adn {
namespace {

constexpr int kUsers = 1024;
constexpr uint64_t kRepMessages = 100'000;
constexpr int kReps = 5;

std::string User(uint64_t i) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "u%04llu",
                static_cast<unsigned long long>(i % kUsers));
  return buf;
}

std::vector<rpc::Message> Stream(size_t n) {
  std::vector<rpc::Message> stream;
  stream.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Bytes payload(64, static_cast<uint8_t>(i));
    std::vector<rpc::Field> fields = {
        {"username", rpc::Value(User(i * 2654435761ULL))},
        {"payload", rpc::Value(std::move(payload))}};
    stream.push_back(
        rpc::Message::MakeRequest(i + 1, "Obj.Put", std::move(fields)));
  }
  return stream;
}

struct SweepRow {
  size_t burst = 0;
  double ns_per_msg = 0;  // best-of-kReps 1-worker executor cost
  double mrps = 0;        // 1e3 / ns_per_msg: single-core capacity
};

// Best-of-reps 1-worker executor ns/msg at one burst size (gate methodology:
// log_tab cleared between reps while the pool is drained and parked).
double MeasureBurst(
    const std::vector<std::shared_ptr<const ir::ElementIr>>& elements,
    const std::vector<int>& groups, const std::vector<rpc::Message>& stream,
    size_t burst) {
  mrpc::EnginePool::Config config;
  config.workers = 1;
  config.shard_key_field = "username";
  config.processor = "bench-burst";
  config.measure_exec = true;
  config.burst_size = burst;
  mrpc::EnginePool pool(elements, groups, config);
  rpc::Table* acl = pool.FindTemplateInstance("Acl")->FindTable("ac_tab");
  for (uint64_t i = 0; i < kUsers; ++i) {
    (void)acl->Insert({rpc::Value(User(i)), rpc::Value("W")});
  }
  if (!pool.Start().ok()) return -1;
  double best = 1e18;
  int64_t prev_exec = 0;
  uint64_t prev_done = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    pool.WorkerInstance(0, 0).FindTable("log_tab")->Clear();
    for (uint64_t i = 0; i < kRepMessages; ++i) {
      pool.Submit(stream[i % stream.size()]);
    }
    pool.Drain();
    const int64_t exec = pool.worker_exec_ns(0);
    const uint64_t done = pool.processed_by(0);
    best = std::min(best, static_cast<double>(exec - prev_exec) /
                              static_cast<double>(done - prev_done));
    prev_exec = exec;
    prev_done = done;
  }
  pool.Stop();
  return best;
}

// 4-worker capacity (Mrps) at one burst size: sum over workers of processed
// messages per CPU-ns — the throughput with a core per worker.
double MeasureCapacity(
    const std::vector<std::shared_ptr<const ir::ElementIr>>& elements,
    const std::vector<int>& groups, const std::vector<rpc::Message>& stream,
    size_t burst, int workers, uint64_t messages) {
  mrpc::EnginePool::Config config;
  config.workers = workers;
  config.shard_key_field = "username";
  config.processor = "bench-burst-cap";
  config.measure_exec = true;
  config.burst_size = burst;
  mrpc::EnginePool pool(elements, groups, config);
  rpc::Table* acl = pool.FindTemplateInstance("Acl")->FindTable("ac_tab");
  for (uint64_t i = 0; i < kUsers; ++i) {
    (void)acl->Insert({rpc::Value(User(i)), rpc::Value("W")});
  }
  if (!pool.Start().ok()) return -1;
  for (uint64_t i = 0; i < messages; ++i) {
    pool.Submit(stream[i % stream.size()]);
  }
  pool.Drain();
  pool.Stop();
  double mrps = 0;
  for (int w = 0; w < workers; ++w) {
    const double cpu = static_cast<double>(pool.worker_cpu_ns(w));
    const double done = static_cast<double>(pool.processed_by(w));
    if (cpu > 0) mrps += done / cpu * 1e3;
  }
  return mrps;
}

int Run() {
  auto parsed = dsl::ParseProgram(elements::Fig5ProgramSource());
  auto lowered = compiler::LowerProgram(*parsed);
  if (!lowered.ok()) {
    std::fprintf(stderr, "lowering failed\n");
    return 1;
  }
  std::vector<std::shared_ptr<const ir::ElementIr>> elements = {
      lowered->FindElement("Logging"), lowered->FindElement("Acl"),
      lowered->FindElement("Fault")};
  std::vector<const ir::ElementIr*> raw;
  for (const auto& e : elements) raw.push_back(e.get());
  const std::vector<int> groups = ir::PartitionIntoParallelGroups(raw);

  const std::vector<rpc::Message> stream = Stream(256);
  const size_t default_burst = mrpc::EnginePool::Config{}.burst_size;

  std::printf(
      "Burst-size sweep: fig5 chain, 1-worker EnginePool, best of %d x %lluk\n"
      "messages (log_tab cleared per rep). burst=1 is the scalar path.\n\n",
      kReps, static_cast<unsigned long long>(kRepMessages / 1000));

  // Warmup (also validates the pipeline end to end).
  (void)MeasureBurst(elements, groups, stream, 1);

  std::printf("%-8s %12s %14s %10s\n", "burst", "ns/msg", "1-core Mrps",
              "vs scalar");
  std::printf("%.*s\n", 48,
              "------------------------------------------------");
  std::vector<SweepRow> rows;
  double scalar_ns = 0;
  for (size_t burst : {size_t{1}, size_t{4}, size_t{8}, size_t{16},
                       size_t{32}, size_t{64}}) {
    SweepRow r;
    r.burst = burst;
    r.ns_per_msg = MeasureBurst(elements, groups, stream, burst);
    if (r.ns_per_msg <= 0) return 1;
    r.mrps = 1e3 / r.ns_per_msg;
    if (burst == 1) scalar_ns = r.ns_per_msg;
    std::printf("%-8zu %12.1f %14.2f %9.2fx%s\n", burst, r.ns_per_msg, r.mrps,
                scalar_ns / r.ns_per_msg,
                burst == default_burst ? "  <- default" : "");
    rows.push_back(r);
  }

  double default_ns = 0;
  for (const SweepRow& r : rows) {
    if (r.burst == default_burst) default_ns = r.ns_per_msg;
  }
  const double speedup = scalar_ns / default_ns;

  constexpr int kCapWorkers = 4;
  constexpr uint64_t kCapMessages = 400'000;
  const double cap_mrps = MeasureCapacity(elements, groups, stream,
                                          default_burst, kCapWorkers,
                                          kCapMessages);

  std::printf(
      "\nDefault burst %zu: %.1f ns/msg, %.2fx over scalar.\n"
      "%d-worker capacity at default burst: %.2f Mrps (sum over workers of\n"
      "msgs per CPU-ns; hardware_concurrency=%u so wall clock cannot show\n"
      "the scaling on this host).\n",
      default_burst, default_ns, speedup, kCapWorkers, cap_mrps,
      std::thread::hardware_concurrency());

  std::FILE* f = std::fopen("BENCH_burst.json", "w");
  if (f == nullptr) return 1;
  std::fprintf(f,
               "{\n"
               "  \"schema_version\": 1,\n"
               "  \"git_sha\": \"%s\",\n"
               "  \"chain\": \"fig5 (Logging -> ACL -> Fault)\",\n"
               "  \"hardware_concurrency\": %u,\n"
               "  \"rep_messages\": %llu,\n"
               "  \"reps\": %d,\n"
               "  \"default_burst\": %zu,\n"
               "  \"compiled_ns_per_msg\": %.1f,\n"
               "  \"scalar_ns_per_msg\": %.1f,\n"
               "  \"burst_speedup\": %.2f,\n"
               "  \"capacity_mrps_4w\": %.3f,\n"
               "  \"rows\": [",
               ADN_GIT_SHA, std::thread::hardware_concurrency(),
               static_cast<unsigned long long>(kRepMessages), kReps,
               default_burst, default_ns, scalar_ns, speedup, cap_mrps);
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f,
                 "%s\n    {\"burst\": %zu, \"ns_per_msg\": %.1f, "
                 "\"mrps\": %.3f}",
                 i == 0 ? "" : ",", rows[i].burst, rows[i].ns_per_msg,
                 rows[i].mrps);
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("\nWrote BENCH_burst.json\n");
  return 0;
}

}  // namespace
}  // namespace adn

int main() { return adn::Run(); }
