// E13 — the Figure-3 loop closed *live*: a step/burst offered-load profile
// drives the simulated ADN path while the in-run reporting event feeds the
// controller's Autoscaler; sustained high utilization scales the engine
// pools out through the real pause-drain-resume migration protocol, and the
// post-burst lull scales them back in. Prints the per-window timeline and
// writes BENCH_autoscale.json (offered load, utilization, instance counts,
// window p99, SLO burn, pause windows).
//
// Self-checking: exits non-zero unless the run shows >=1 scale-out,
// >=1 scale-in, zero admitted-message loss, and a final window back under
// the latency objective.
#include <cstdio>
#include <string>
#include <vector>

#include "controller/autoscale.h"
#include "core/network.h"
#include "core/workload.h"
#include "elements/library.h"
#include "obs/metrics.h"

#ifndef ADN_GIT_SHA
#define ADN_GIT_SHA "unknown"
#endif

namespace adn {
namespace {

constexpr sim::SimTime kMs = 1'000'000;
constexpr sim::SimTime kReportInterval = 5 * kMs;
constexpr sim::SimTime kRunFor = 140 * kMs;
constexpr double kLatencyObjectiveNs = 300'000;  // p99 <= 300 us

// Logging + ACL on the engines (the Figure 5 chain minus Fault, whose 5%
// injected drops would drown the loss SLO in by-design noise).
std::string LiveProgram() {
  std::string out;
  out += elements::AclTableSql();
  out += elements::LogTableSql();
  out += elements::LoggingSql();
  out += elements::AclSql();
  out += "CHAIN live FOR CALLS client -> server { Logging, Acl }\n";
  return out;
}

std::vector<std::pair<std::string, std::vector<rpc::Row>>> AclSeeds() {
  std::vector<rpc::Row> rows;
  for (const char* user : {"alice", "bob", "carol", "dave"}) {
    rows.push_back({rpc::Value(std::string(user)), rpc::Value("W")});
  }
  return {{"ac_tab", std::move(rows)}};
}

struct WindowRow {
  mrpc::PathReport report;
  double offered_rps = 0;
  double p99_ns = 0;
  double burn = 0;
  double drop_fraction = 0;
  bool latency_alert = false;
};

}  // namespace
}  // namespace adn

int main() {
  using namespace adn;
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  reg.Reset();
  obs::SetEnabled(true);

  // Offered load: comfortable baseline, a 3-4x step past one engine's
  // capacity, then a lull under the scale-in threshold.
  core::StepRateProfile profile(60'000,
                                {
                                    {30 * kMs, 75 * kMs, 140'000},
                                    {75 * kMs, kRunFor + 10 * kMs, 30'000},
                                });

  controller::AutoscaleOptions opts;
  opts.telemetry.window_reports = 2;  // smooth over 2 ticks, react fast
  opts.slo.latency_objective_ns = kLatencyObjectiveNs;
  opts.sustain_windows = 2;
  opts.cooldown_windows = 2;
  opts.max_width = 8;
  controller::Autoscaler scaler(&reg, opts);

  core::NetworkOptions net_options;
  net_options.policy = controller::PlacementPolicy::kNativeOnly;
  net_options.state_seeds = AclSeeds();
  auto network = core::Network::Create(LiveProgram(), net_options);
  if (!network.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 network.status().ToString().c_str());
    return 1;
  }

  std::vector<WindowRow> timeline;
  core::WorkloadOptions workload;
  workload.label = "autoscale";
  workload.concurrency = 128;  // admission cap for the open loop
  workload.make_request = core::MakeDefaultRequestFactory();
  workload.report_interval_ns = kReportInterval;
  workload.offered_rps = profile.AsFunction();
  workload.run_for_ns = kRunFor;
  workload.on_report = [&](const mrpc::PathReport& report) {
    auto commands = scaler.OnReport(report);
    WindowRow row;
    row.report = report;
    row.offered_rps = profile.RateAt(report.window_start);
    row.p99_ns = scaler.slo().last_quantile_ns();
    row.burn = scaler.slo().last_burn();
    row.drop_fraction = scaler.slo().last_drop_fraction();
    row.latency_alert = scaler.slo().latency_alert();
    timeline.push_back(std::move(row));
    return commands;
  };

  auto result = (*network)->RunWorkload("live", workload);
  if (!result.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  obs::SetEnabled(false);

  std::printf(
      "Live autoscaling (E13): Logging+ACL chain, open-loop step profile,\n"
      "%lld ms run, %lld ms report windows, p99 objective %.0f us.\n\n",
      static_cast<long long>(kRunFor / kMs),
      static_cast<long long>(kReportInterval / kMs),
      kLatencyObjectiveNs / 1000.0);
  std::printf(
      "  t(ms)  offered  done/s   rej/s  cli-eng  srv-eng   p99(us)   burn\n");
  for (const WindowRow& row : timeline) {
    const auto& r = row.report;
    double span_sec =
        static_cast<double>(r.window_end - r.window_start) / 1e9;
    if (span_sec <= 0) span_sec = 1;
    auto site = [&](const char* proc) -> const mrpc::SiteWindow* {
      for (const auto& s : r.sites)
        if (s.processor == proc) return &s;
      return nullptr;
    };
    const mrpc::SiteWindow* cli = site("client-engine");
    const mrpc::SiteWindow* srv = site("server-engine");
    std::printf(
        "  %5lld  %7.0f  %6.0f  %6.0f  %dx %3.0f%%  %dx %3.0f%%  %8.1f  %5.2f%s\n",
        static_cast<long long>(r.window_end / kMs), row.offered_rps,
        static_cast<double>(r.completed) / span_sec,
        static_cast<double>(r.rejected) / span_sec, cli ? cli->width : 0,
        cli ? cli->utilization * 100 : 0, srv ? srv->width : 0,
        srv ? srv->utilization * 100 : 0, row.p99_ns / 1000.0, row.burn,
        row.latency_alert ? "  [SLO]" : "");
  }

  int scale_outs = 0, scale_ins = 0;
  sim::SimTime total_pause = 0;
  std::printf("\nReconfigurations (pause-drain-resume):\n");
  for (const mrpc::ReconfigEvent& e : result->reconfigs) {
    const bool out = e.new_width > e.old_width;
    out ? ++scale_outs : ++scale_ins;
    total_pause += e.pause_ns;
    std::printf(
        "  t=%5.1f ms  %-14s %d -> %d  pause %6.1f us  %llu msg(s) queued\n",
        static_cast<double>(e.at) / kMs, SiteName(e.site).data(), e.old_width,
        e.new_width, static_cast<double>(e.pause_ns) / 1000.0,
        static_cast<unsigned long long>(e.queued_during_pause));
  }

  const uint64_t admitted = result->issued;
  const uint64_t settled = result->stats.completed + result->stats.dropped;
  const bool lossless = admitted == settled;
  const bool recovered =
      !timeline.empty() && timeline.back().p99_ns <= kLatencyObjectiveNs;
  std::printf(
      "\nSummary: %d scale-out(s), %d scale-in(s), %.1f us total pause,\n"
      "%llu msgs queued across pauses, admitted %llu = settled %llu (%s),\n"
      "final-window p99 %.1f us (%s objective).\n",
      scale_outs, scale_ins, static_cast<double>(total_pause) / 1000.0,
      static_cast<unsigned long long>(result->queued_during_pause),
      static_cast<unsigned long long>(admitted),
      static_cast<unsigned long long>(settled),
      lossless ? "lossless" : "LOST MESSAGES",
      timeline.empty() ? 0.0 : timeline.back().p99_ns / 1000.0,
      recovered ? "under" : "OVER");

  // --- BENCH_autoscale.json ------------------------------------------------
  std::FILE* f = std::fopen("BENCH_autoscale.json", "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n"
                 "  \"schema_version\": 1,\n"
                 "  \"git_sha\": \"%s\",\n"
                 "  \"chain\": \"live (Logging -> ACL)\",\n"
                 "  \"report_interval_ms\": %lld,\n"
                 "  \"latency_objective_us\": %.1f,\n"
                 "  \"windows\": [",
                 ADN_GIT_SHA, static_cast<long long>(kReportInterval / kMs),
                 kLatencyObjectiveNs / 1000.0);
    for (size_t i = 0; i < timeline.size(); ++i) {
      const WindowRow& row = timeline[i];
      const auto& r = row.report;
      std::fprintf(f,
                   "%s\n    {\"t_ms\": %.1f, \"offered_rps\": %.0f, "
                   "\"issued\": %llu, \"completed\": %llu, \"dropped\": %llu, "
                   "\"rejected\": %llu, \"p99_us\": %.1f, \"burn\": %.3f, "
                   "\"drop_fraction\": %.4f, \"sites\": [",
                   i == 0 ? "" : ",",
                   static_cast<double>(r.window_end) / kMs, row.offered_rps,
                   static_cast<unsigned long long>(r.issued),
                   static_cast<unsigned long long>(r.completed),
                   static_cast<unsigned long long>(r.dropped),
                   static_cast<unsigned long long>(r.rejected),
                   row.p99_ns / 1000.0, row.burn, row.drop_fraction);
      bool first = true;
      for (const auto& s : r.sites) {
        if (s.processor != "client-engine" && s.processor != "server-engine")
          continue;
        std::fprintf(f,
                     "%s{\"processor\": \"%s\", \"width\": %d, "
                     "\"utilization\": %.3f}",
                     first ? "" : ", ", s.processor.c_str(), s.width,
                     s.utilization);
        first = false;
      }
      std::fprintf(f, "]}");
    }
    std::fprintf(f, "\n  ],\n  \"reconfigs\": [");
    for (size_t i = 0; i < result->reconfigs.size(); ++i) {
      const mrpc::ReconfigEvent& e = result->reconfigs[i];
      std::fprintf(f,
                   "%s\n    {\"t_ms\": %.1f, \"processor\": \"%s\", "
                   "\"old_width\": %d, \"new_width\": %d, \"pause_us\": %.1f, "
                   "\"queued\": %llu}",
                   i == 0 ? "" : ",", static_cast<double>(e.at) / kMs,
                   std::string(SiteName(e.site)).c_str(), e.old_width,
                   e.new_width, static_cast<double>(e.pause_ns) / 1000.0,
                   static_cast<unsigned long long>(e.queued_during_pause));
    }
    std::fprintf(f,
                 "\n  ],\n"
                 "  \"summary\": {\"scale_outs\": %d, \"scale_ins\": %d, "
                 "\"total_pause_us\": %.1f, \"queued_during_pause\": %llu, "
                 "\"admitted\": %llu, \"settled\": %llu, \"lossless\": %s, "
                 "\"p99_recovered\": %s}\n}\n",
                 scale_outs, scale_ins,
                 static_cast<double>(total_pause) / 1000.0,
                 static_cast<unsigned long long>(result->queued_during_pause),
                 static_cast<unsigned long long>(admitted),
                 static_cast<unsigned long long>(settled),
                 lossless ? "true" : "false", recovered ? "true" : "false");
    std::fclose(f);
    std::printf("\nWrote BENCH_autoscale.json\n");
  }

  if (scale_outs < 1 || scale_ins < 1 || !lossless || !recovered) {
    std::fprintf(stderr,
                 "\nFAILED: closed loop not demonstrated (outs=%d ins=%d "
                 "lossless=%d recovered=%d)\n",
                 scale_outs, scale_ins, lossless, recovered);
    return 1;
  }
  return 0;
}
