// E9 — stage-by-stage CPU breakdown of one RPC on the gRPC+Envoy path vs
// the ADN+mRPC path (the paper's §2 argument made quantitative: where do
// the cycles go on the general-purpose stack?).
#include <chrono>
#include <cstdio>

#include "compiler/chain_compile.h"
#include "compiler/lower.h"
#include "core/network.h"
#include "dsl/parser.h"
#include "elements/library.h"
#include "ir/program.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/window.h"
#include "stack/mesh_path.h"

#ifndef ADN_GIT_SHA
#define ADN_GIT_SHA "unknown"
#endif

namespace adn {
namespace {

rpc::Schema RequestSchema() {
  rpc::Schema s;
  (void)s.AddColumn({"username", rpc::ValueType::kText, false});
  (void)s.AddColumn({"object_id", rpc::ValueType::kInt, false});
  (void)s.AddColumn({"payload", rpc::ValueType::kBytes, false});
  return s;
}

void PrintBreakdown(const std::string& title,
                    const std::vector<std::pair<std::string, double>>& stages,
                    double wire_bytes) {
  double total = 0;
  for (const auto& [stage, ns] : stages) total += ns;
  std::printf("%s (total %.1f us CPU/RPC, %.0f B/request on the wire):\n",
              title.c_str(), total / 1000.0, wire_bytes);
  for (const auto& [stage, ns] : stages) {
    std::printf("  %-24s %8.1f us  %5.1f%%\n", stage.c_str(), ns / 1000.0,
                100.0 * ns / total);
  }
  std::printf("\n");
}

// --- Interpreter vs compiled ChainProgram (wall clock) -----------------------
//
// The Fig. 5 chain run on real CPU: once through the tree-walking
// interpreter (the reference semantics), once through the flat ChainProgram
// executor the data plane actually deploys. This is the §4 Q2 claim made
// measurable: compiling the chain removes the per-message interpretation
// overhead.
struct ExecTierResult {
  double interpreter_ns_per_msg = 0;
  double compiled_ns_per_msg = 0;
  uint64_t messages = 0;
  // Per-element medians from the obs plane (adn_element_latency_ns), taken
  // in a separate instrumented pass so the timed reps above stay clean.
  std::vector<std::pair<std::string, double>> element_p50_ns;
  std::string obs_metrics_json;  // obs::ExportMetricsJson of that pass
};

ExecTierResult RunExecTierBench() {
  ExecTierResult out;
  auto parsed = dsl::ParseProgram(elements::Fig5ProgramSource());
  auto lowered = compiler::LowerProgram(*parsed);
  std::vector<std::shared_ptr<const ir::ElementIr>> elements = {
      lowered->FindElement("Logging"), lowered->FindElement("Acl"),
      lowered->FindElement("Fault")};
  auto program = compiler::CompileChainProgram(elements, {});

  auto make_instances = [&] {
    std::vector<std::unique_ptr<ir::ElementInstance>> set;
    for (size_t i = 0; i < elements.size(); ++i) {
      set.push_back(std::make_unique<ir::ElementInstance>(elements[i], i + 1));
    }
    rpc::Table* acl = set[1]->FindTable("ac_tab");
    for (const char* user : {"alice", "bob", "carol", "dave"}) {
      (void)acl->Insert({rpc::Value(std::string(user)), rpc::Value("W")});
    }
    return set;
  };

  constexpr uint64_t kWarmup = 10'000;
  constexpr uint64_t kMeasured = 100'000;
  out.messages = kMeasured;
  Rng rng(1);
  auto factory = core::MakeDefaultRequestFactory();
  std::vector<rpc::Message> stream;
  stream.reserve(256);
  for (uint64_t i = 0; i < 256; ++i) stream.push_back(factory(i, rng));

  using Clock = std::chrono::steady_clock;
  // Both tiers run the same messages in place (fig5 never mutates the
  // message: Logging writes to its table, Acl/Fault pass or drop). Reps are
  // interleaved so frequency/thermal drift lands on both tiers equally, and
  // each tier reports its best rep.
  auto interp_set = make_instances();
  auto compiled_set = make_instances();
  std::vector<ir::ElementInstance*> raw;
  for (auto& inst : compiled_set) raw.push_back(inst.get());
  ir::ChainExecutor exec(*program, std::move(raw));

  auto run_interp = [&](uint64_t n) {
    for (uint64_t i = 0; i < n; ++i) {
      rpc::Message& m = stream[i % stream.size()];
      for (auto& inst : interp_set) {
        if (!inst->AppliesTo(m.kind())) continue;
        if (inst->Process(m, 0).outcome != ir::ProcessOutcome::kPass) break;
      }
    }
  };
  auto run_compiled = [&](uint64_t n) {
    for (uint64_t i = 0; i < n; ++i) {
      (void)exec.Process(stream[i % stream.size()], 0);
    }
  };
  auto timed = [&](auto& run) {
    auto start = Clock::now();
    run(kMeasured);
    return static_cast<double>(
               std::chrono::duration_cast<std::chrono::nanoseconds>(
                   Clock::now() - start)
                   .count()) /
           static_cast<double>(kMeasured);
  };

  run_interp(kWarmup);
  run_compiled(kWarmup);
  out.interpreter_ns_per_msg = 1e18;
  out.compiled_ns_per_msg = 1e18;
  for (int rep = 0; rep < 5; ++rep) {
    interp_set[0]->FindTable("log_tab")->Clear();
    out.interpreter_ns_per_msg =
        std::min(out.interpreter_ns_per_msg, timed(run_interp));
    compiled_set[0]->FindTable("log_tab")->Clear();
    out.compiled_ns_per_msg =
        std::min(out.compiled_ns_per_msg, timed(run_compiled));
  }

  // --- obs-driven per-element breakdown ------------------------------------
  // A separate instrumented pass over a fresh executor: Reset() drops every
  // instrument (stale cached pointers), so the executor must be built after
  // it to re-resolve its histograms.
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  reg.Reset();
  obs::SetEnabled(true);
  auto obs_set = make_instances();
  std::vector<ir::ElementInstance*> obs_raw;
  for (auto& inst : obs_set) obs_raw.push_back(inst.get());
  ir::ChainExecutor obs_exec(*program, std::move(obs_raw));
  for (uint64_t i = 0; i < 10'000; ++i) {
    (void)obs_exec.Process(stream[i % stream.size()], 0);
  }
  obs::SetEnabled(false);
  // Quantiles from the exported snapshot through the shared bucket math
  // (obs::SnapshotHistogram) — the same path adntop and the telemetry hub
  // read, so the number printed here is the number a consumer would derive.
  const obs::MetricsSnapshot snap = reg.Snapshot();
  for (const auto& element : elements) {
    const std::string label = "element=\"" + element->name + "\"";
    double p50 = 0;
    for (const obs::MetricSample& s : snap.samples) {
      if (s.name == "adn_element_latency_ns" && s.labels == label) {
        p50 = obs::SnapshotHistogram::FromSample(s).Quantile(0.50);
      }
    }
    out.element_p50_ns.emplace_back(element->name, p50);
  }
  out.obs_metrics_json = obs::ExportMetricsJson(snap);
  return out;
}

// Format documented in docs/OBSERVABILITY.md ("BENCH_exec.json"). Bump
// schema_version on any shape change.
void WriteBenchExecJson(const ExecTierResult& r) {
  std::FILE* f = std::fopen("BENCH_exec.json", "w");
  if (f == nullptr) return;
  std::fprintf(f,
               "{\n"
               "  \"schema_version\": 2,\n"
               "  \"git_sha\": \"%s\",\n"
               "  \"chain\": \"fig5 (Logging -> ACL -> Fault)\",\n"
               "  \"messages\": %llu,\n"
               "  \"interpreter_ns_per_msg\": %.1f,\n"
               "  \"compiled_ns_per_msg\": %.1f,\n"
               "  \"speedup\": %.2f,\n"
               "  \"element_p50_ns\": {",
               ADN_GIT_SHA, static_cast<unsigned long long>(r.messages),
               r.interpreter_ns_per_msg, r.compiled_ns_per_msg,
               r.interpreter_ns_per_msg / r.compiled_ns_per_msg);
  for (size_t i = 0; i < r.element_p50_ns.size(); ++i) {
    std::fprintf(f, "%s\"%s\": %.1f", i == 0 ? "" : ", ",
                 r.element_p50_ns[i].first.c_str(),
                 r.element_p50_ns[i].second);
  }
  std::fprintf(f,
               "},\n"
               "  \"obs\": %s\n"
               "}\n",
               r.obs_metrics_json.c_str());
  std::fclose(f);
}

}  // namespace
}  // namespace adn

int main() {
  using namespace adn;
  std::printf(
      "Per-RPC CPU breakdown (E9): Logging+ACL+Fault chain, 64 B payloads.\n\n");

  // --- gRPC+Envoy -----------------------------------------------------------
  stack::MeshConfig mesh;
  mesh.concurrency = 8;
  mesh.measured_requests = 8'000;
  mesh.warmup_requests = 800;
  mesh.request_schema = RequestSchema();
  mesh.make_request = core::MakeDefaultRequestFactory();
  mesh.field_headers = {{"username", "x-user"}, {"object_id", "x-object-id"}};
  mesh.filters.push_back([] {
    return std::make_unique<stack::AccessLogFilter>(
        "user=%REQ(x-user)% bytes=%BYTES%");
  });
  mesh.filters.push_back([] {
    std::vector<stack::RbacPolicy> allow;
    for (const char* user : {"alice", "bob", "carol", "dave"}) {
      stack::RbacPolicy policy;
      policy.principals.push_back(
          {"x-user", stack::HeaderMatcher::Kind::kExact, user});
      allow.push_back(std::move(policy));
    }
    return std::make_unique<stack::RbacFilter>(
        std::move(allow), stack::RbacFilter::DefaultAction::kDeny);
  });
  mesh.filters.push_back(
      [] { return std::make_unique<stack::FaultFilter>(0.05, 503); });
  auto mesh_result = RunMeshExperiment(mesh);
  PrintBreakdown("gRPC+Envoy", mesh_result.stage_cpu_ns,
                 mesh_result.wire_bytes_per_request);

  // --- ADN+mRPC ---------------------------------------------------------------
  core::NetworkOptions options;
  options.state_seeds = {
      {"ac_tab",
       {{rpc::Value("alice"), rpc::Value("W")},
        {rpc::Value("bob"), rpc::Value("W")},
        {rpc::Value("carol"), rpc::Value("W")},
        {rpc::Value("dave"), rpc::Value("W")}}},
  };
  auto network = core::Network::Create(elements::Fig5ProgramSource(), options);
  if (!network.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n",
                 network.status().ToString().c_str());
    return 1;
  }
  core::WorkloadOptions workload;
  workload.concurrency = 8;
  workload.measured_requests = 8'000;
  workload.warmup_requests = 800;
  workload.make_request = core::MakeDefaultRequestFactory();
  auto adn_result = (*network)->RunWorkload("fig5", workload);
  if (!adn_result.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 adn_result.status().ToString().c_str());
    return 1;
  }
  PrintBreakdown("ADN+mRPC", adn_result->stage_cpu_ns,
                 adn_result->wire_bytes_per_request);

  double mesh_total = 0, adn_total = 0;
  for (const auto& [stage, ns] : mesh_result.stage_cpu_ns) mesh_total += ns;
  for (const auto& [stage, ns] : adn_result->stage_cpu_ns) adn_total += ns;
  std::printf("CPU-per-RPC ratio (Envoy / ADN): %.1fx\n",
              mesh_total / adn_total);
  std::printf("Wire-bytes ratio   (Envoy / ADN): %.1fx\n",
              mesh_result.wire_bytes_per_request /
                  adn_result->wire_bytes_per_request);
  std::printf(
      "\nPaper context (§2): meshes increase CPU usage 1.6-7x; the dominant\n"
      "component is protocol parsing at the proxies [66].\n");

  // --- Execution tiers (wall clock) -----------------------------------------
  ExecTierResult exec = RunExecTierBench();
  std::printf(
      "\nExecution tiers, fig5 chain on real CPU (%llu messages):\n"
      "  interpreter (tree walk)   %8.1f ns/msg\n"
      "  compiled (ChainProgram)   %8.1f ns/msg\n"
      "  speedup                   %8.2fx\n",
      static_cast<unsigned long long>(exec.messages),
      exec.interpreter_ns_per_msg, exec.compiled_ns_per_msg,
      exec.interpreter_ns_per_msg / exec.compiled_ns_per_msg);
  std::printf("  per-element p50 (obs plane, instrumented pass):\n");
  for (const auto& [name, p50] : exec.element_p50_ns) {
    std::printf("    %-24s %8.1f ns\n", name.c_str(), p50);
  }
  WriteBenchExecJson(exec);
  std::printf("Wrote BENCH_exec.json\n");
  return 0;
}
