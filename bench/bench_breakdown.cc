// E9 — stage-by-stage CPU breakdown of one RPC on the gRPC+Envoy path vs
// the ADN+mRPC path (the paper's §2 argument made quantitative: where do
// the cycles go on the general-purpose stack?).
#include <cstdio>

#include "core/network.h"
#include "elements/library.h"
#include "stack/mesh_path.h"

namespace adn {
namespace {

rpc::Schema RequestSchema() {
  rpc::Schema s;
  (void)s.AddColumn({"username", rpc::ValueType::kText, false});
  (void)s.AddColumn({"object_id", rpc::ValueType::kInt, false});
  (void)s.AddColumn({"payload", rpc::ValueType::kBytes, false});
  return s;
}

void PrintBreakdown(const std::string& title,
                    const std::vector<std::pair<std::string, double>>& stages,
                    double wire_bytes) {
  double total = 0;
  for (const auto& [stage, ns] : stages) total += ns;
  std::printf("%s (total %.1f us CPU/RPC, %.0f B/request on the wire):\n",
              title.c_str(), total / 1000.0, wire_bytes);
  for (const auto& [stage, ns] : stages) {
    std::printf("  %-24s %8.1f us  %5.1f%%\n", stage.c_str(), ns / 1000.0,
                100.0 * ns / total);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace adn

int main() {
  using namespace adn;
  std::printf(
      "Per-RPC CPU breakdown (E9): Logging+ACL+Fault chain, 64 B payloads.\n\n");

  // --- gRPC+Envoy -----------------------------------------------------------
  stack::MeshConfig mesh;
  mesh.concurrency = 8;
  mesh.measured_requests = 8'000;
  mesh.warmup_requests = 800;
  mesh.request_schema = RequestSchema();
  mesh.make_request = core::MakeDefaultRequestFactory();
  mesh.field_headers = {{"username", "x-user"}, {"object_id", "x-object-id"}};
  mesh.filters.push_back([] {
    return std::make_unique<stack::AccessLogFilter>(
        "user=%REQ(x-user)% bytes=%BYTES%");
  });
  mesh.filters.push_back([] {
    std::vector<stack::RbacPolicy> allow;
    for (const char* user : {"alice", "bob", "carol", "dave"}) {
      stack::RbacPolicy policy;
      policy.principals.push_back(
          {"x-user", stack::HeaderMatcher::Kind::kExact, user});
      allow.push_back(std::move(policy));
    }
    return std::make_unique<stack::RbacFilter>(
        std::move(allow), stack::RbacFilter::DefaultAction::kDeny);
  });
  mesh.filters.push_back(
      [] { return std::make_unique<stack::FaultFilter>(0.05, 503); });
  auto mesh_result = RunMeshExperiment(mesh);
  PrintBreakdown("gRPC+Envoy", mesh_result.stage_cpu_ns,
                 mesh_result.wire_bytes_per_request);

  // --- ADN+mRPC ---------------------------------------------------------------
  core::NetworkOptions options;
  options.state_seeds = {
      {"ac_tab",
       {{rpc::Value("alice"), rpc::Value("W")},
        {rpc::Value("bob"), rpc::Value("W")},
        {rpc::Value("carol"), rpc::Value("W")},
        {rpc::Value("dave"), rpc::Value("W")}}},
  };
  auto network = core::Network::Create(elements::Fig5ProgramSource(), options);
  if (!network.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n",
                 network.status().ToString().c_str());
    return 1;
  }
  core::WorkloadOptions workload;
  workload.concurrency = 8;
  workload.measured_requests = 8'000;
  workload.warmup_requests = 800;
  workload.make_request = core::MakeDefaultRequestFactory();
  auto adn_result = (*network)->RunWorkload("fig5", workload);
  if (!adn_result.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 adn_result.status().ToString().c_str());
    return 1;
  }
  PrintBreakdown("ADN+mRPC", adn_result->stage_cpu_ns,
                 adn_result->wire_bytes_per_request);

  double mesh_total = 0, adn_total = 0;
  for (const auto& [stage, ns] : mesh_result.stage_cpu_ns) mesh_total += ns;
  for (const auto& [stage, ns] : adn_result->stage_cpu_ns) adn_total += ns;
  std::printf("CPU-per-RPC ratio (Envoy / ADN): %.1fx\n",
              mesh_total / adn_total);
  std::printf("Wire-bytes ratio   (Envoy / ADN): %.1fx\n",
              mesh_result.wire_bytes_per_request /
                  adn_result->wire_bytes_per_request);
  std::printf(
      "\nPaper context (§2): meshes increase CPU usage 1.6-7x; the dominant\n"
      "component is protocol parsing at the proxies [66].\n");
  return 0;
}
