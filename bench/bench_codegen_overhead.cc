// E3 — generated-vs-hand-coded overhead, measured on the WALL CLOCK.
//
// The paper (§6) reports ADN's compiler-generated mRPC modules run within
// 3-12% of hand-optimized ones. Here both variants execute for real on this
// machine: the generated element is the interpreted op-plan produced by the
// ADN compiler; the hand-coded twin is direct C++ from elements/handcoded.h.
// google-benchmark measures per-message processing time for each.
#include <benchmark/benchmark.h>

#include "compiler/lower.h"
#include "core/network.h"
#include "dsl/parser.h"
#include "elements/handcoded.h"
#include "elements/library.h"
#include "mrpc/engine.h"

namespace adn {
namespace {

using rpc::Message;
using rpc::Value;

std::shared_ptr<const ir::ElementIr> LowerNamed(const std::string& source,
                                                const std::string& name) {
  auto parsed = dsl::ParseProgram(source);
  auto program = compiler::LowerProgram(*parsed);
  return program->FindElement(name);
}

Message MakeMessage(uint64_t id, size_t payload_bytes) {
  static const char* kUsers[] = {"alice", "bob", "carol", "dave"};
  Bytes payload(payload_bytes, static_cast<uint8_t>(id));
  return Message::MakeRequest(
      id, "Echo.Call",
      {{"username", Value(std::string(kUsers[id % 4]))},
       {"object_id", Value(static_cast<int64_t>(id * 2654435761ULL))},
       {"payload", Value(std::move(payload))}});
}

void SeedAcl(mrpc::GeneratedStage& stage) {
  for (const char* user : {"alice", "bob", "carol", "dave"}) {
    (void)stage.instance().FindTable("ac_tab")->Insert(
        {Value(std::string(user)), Value("W")});
  }
}

void SeedLb(mrpc::GeneratedStage& stage) {
  for (int shard = 0; shard < elements::kLbShards; ++shard) {
    (void)stage.instance().FindTable("endpoints")->Insert(
        {Value(shard), Value(100 + shard % 2)});
  }
}

// --- Generated ---------------------------------------------------------------

void BM_Generated_Acl(benchmark::State& state) {
  mrpc::GeneratedStage stage(
      LowerNamed(std::string(elements::AclTableSql()) +
                     std::string(elements::AclSql()),
                 "Acl"),
      1);
  SeedAcl(stage);
  uint64_t id = 0;
  for (auto _ : state) {
    Message m = MakeMessage(id++, 64);
    benchmark::DoNotOptimize(stage.Process(m, 0));
  }
}
BENCHMARK(BM_Generated_Acl);

void BM_HandCoded_Acl(benchmark::State& state) {
  elements::HandAcl stage(
      {{"alice", 'W'}, {"bob", 'W'}, {"carol", 'W'}, {"dave", 'W'}});
  uint64_t id = 0;
  for (auto _ : state) {
    Message m = MakeMessage(id++, 64);
    benchmark::DoNotOptimize(stage.Process(m, 0));
  }
}
BENCHMARK(BM_HandCoded_Acl);

void BM_Generated_Logging(benchmark::State& state) {
  mrpc::GeneratedStage stage(
      LowerNamed(std::string(elements::LogTableSql()) +
                     std::string(elements::LoggingSql()),
                 "Logging"),
      1);
  uint64_t id = 0;
  for (auto _ : state) {
    Message m = MakeMessage(id++, 64);
    benchmark::DoNotOptimize(stage.Process(m, 0));
    if (id % 65536 == 0) {
      stage.instance().FindTable("log_tab")->Clear();
    }
  }
}
BENCHMARK(BM_Generated_Logging);

void BM_HandCoded_Logging(benchmark::State& state) {
  auto stage = std::make_unique<elements::HandLogging>();
  uint64_t id = 0;
  for (auto _ : state) {
    Message m = MakeMessage(id++, 64);
    benchmark::DoNotOptimize(stage->Process(m, 0));
    if (id % 65536 == 0) stage = std::make_unique<elements::HandLogging>();
  }
}
BENCHMARK(BM_HandCoded_Logging);

void BM_Generated_Fault(benchmark::State& state) {
  mrpc::GeneratedStage stage(
      LowerNamed(std::string(elements::FaultSql()), "Fault"), 1);
  uint64_t id = 0;
  for (auto _ : state) {
    Message m = MakeMessage(id++, 64);
    benchmark::DoNotOptimize(stage.Process(m, 0));
  }
}
BENCHMARK(BM_Generated_Fault);

void BM_HandCoded_Fault(benchmark::State& state) {
  elements::HandFault stage(0.05, 42);
  uint64_t id = 0;
  for (auto _ : state) {
    Message m = MakeMessage(id++, 64);
    benchmark::DoNotOptimize(stage.Process(m, 0));
  }
}
BENCHMARK(BM_HandCoded_Fault);

void BM_Generated_HashLb(benchmark::State& state) {
  mrpc::GeneratedStage stage(
      LowerNamed(std::string(elements::EndpointsTableSql()) +
                     std::string(elements::HashLbSql()),
                 "HashLb"),
      1);
  SeedLb(stage);
  uint64_t id = 0;
  for (auto _ : state) {
    Message m = MakeMessage(id++, 64);
    benchmark::DoNotOptimize(stage.Process(m, 0));
  }
}
BENCHMARK(BM_Generated_HashLb);

void BM_HandCoded_HashLb(benchmark::State& state) {
  std::vector<rpc::EndpointId> shard_map;
  for (int shard = 0; shard < elements::kLbShards; ++shard) {
    shard_map.push_back(100 + shard % 2);
  }
  elements::HandHashLb stage(std::move(shard_map));
  uint64_t id = 0;
  for (auto _ : state) {
    Message m = MakeMessage(id++, 64);
    benchmark::DoNotOptimize(stage.Process(m, 0));
  }
}
BENCHMARK(BM_HandCoded_HashLb);

// Payload-dominated pair: overheads shrink as the UDF dominates.
void BM_Generated_Compress(benchmark::State& state) {
  mrpc::GeneratedStage stage(
      LowerNamed(std::string(elements::CompressSql()), "Compress"), 1);
  uint64_t id = 0;
  const size_t payload = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    Message m = MakeMessage(id++, payload);
    benchmark::DoNotOptimize(stage.Process(m, 0));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(payload));
}
BENCHMARK(BM_Generated_Compress)->Arg(64)->Arg(4096);

void BM_HandCoded_Compress(benchmark::State& state) {
  elements::HandCompress stage(true);
  uint64_t id = 0;
  const size_t payload = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    Message m = MakeMessage(id++, payload);
    benchmark::DoNotOptimize(stage.Process(m, 0));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(payload));
}
BENCHMARK(BM_HandCoded_Compress)->Arg(64)->Arg(4096);

// Full Fig. 5 chain, both variants.
void BM_Generated_Fig5Chain(benchmark::State& state) {
  mrpc::EngineChain chain;
  auto logging = std::make_unique<mrpc::GeneratedStage>(
      LowerNamed(std::string(elements::LogTableSql()) +
                     std::string(elements::LoggingSql()),
                 "Logging"),
      1);
  auto acl = std::make_unique<mrpc::GeneratedStage>(
      LowerNamed(std::string(elements::AclTableSql()) +
                     std::string(elements::AclSql()),
                 "Acl"),
      2);
  SeedAcl(*acl);
  auto fault = std::make_unique<mrpc::GeneratedStage>(
      LowerNamed(std::string(elements::FaultSql()), "Fault"), 3);
  auto* logging_raw = logging.get();
  chain.AddStage(std::move(logging));
  chain.AddStage(std::move(acl));
  chain.AddStage(std::move(fault));
  uint64_t id = 0;
  for (auto _ : state) {
    Message m = MakeMessage(id++, 64);
    benchmark::DoNotOptimize(chain.Process(m, 0));
    if (id % 65536 == 0) {
      logging_raw->instance().FindTable("log_tab")->Clear();
    }
  }
}
BENCHMARK(BM_Generated_Fig5Chain);

void BM_HandCoded_Fig5Chain(benchmark::State& state) {
  mrpc::EngineChain chain;
  chain.AddStage(std::make_unique<elements::HandLogging>());
  chain.AddStage(std::make_unique<elements::HandAcl>(
      std::unordered_map<std::string, char>{
          {"alice", 'W'}, {"bob", 'W'}, {"carol", 'W'}, {"dave", 'W'}}));
  chain.AddStage(std::make_unique<elements::HandFault>(0.05, 42));
  auto* logging =
      dynamic_cast<elements::HandLogging*>(&chain.stage(0));
  (void)logging;
  uint64_t id = 0;
  for (auto _ : state) {
    Message m = MakeMessage(id++, 64);
    benchmark::DoNotOptimize(chain.Process(m, 0));
  }
}
BENCHMARK(BM_HandCoded_Fig5Chain);

}  // namespace
}  // namespace adn

BENCHMARK_MAIN();
