// E12 — ablation of cross-element fusion (paper §4 Q2: "When multiple
// elements run on the same device, we should be able to do cross-element
// optimizations"). Four small stamp elements with identical constraints
// fuse into one; fusion removes per-element dispatch both in the simulated
// engine and at real wall clock.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "compiler/compiler.h"
#include "core/network.h"
#include "mrpc/engine.h"

namespace adn {
namespace {

const char* kProgram = R"(
ELEMENT S1 ON REQUEST { INPUT (a INT); SELECT *, a + 1 AS a FROM input; }
ELEMENT S2 ON REQUEST { INPUT (a INT); SELECT *, a * 2 AS a FROM input; }
ELEMENT S3 ON REQUEST { INPUT (a INT); SELECT *, a + 3 AS a FROM input; }
ELEMENT S4 ON REQUEST { INPUT (a INT); SELECT *, a % 1000 AS a FROM input; }
CHAIN stamps FOR CALLS a -> b { S1, S2, S3, S4 }
)";

rpc::Message MakeRequest(uint64_t id, Rng& rng) {
  (void)rng;
  return rpc::Message::MakeRequest(
      id, "Stamp.Call",
      {{"a", rpc::Value(static_cast<int64_t>(id % 977))},
       {"payload", rpc::Value(Bytes(64, 1))}});
}

double RunRate(bool fuse) {
  core::NetworkOptions options;
  options.compile.passes.fuse_adjacent = fuse;
  rpc::Schema schema;
  (void)schema.AddColumn({"a", rpc::ValueType::kInt, false});
  (void)schema.AddColumn({"payload", rpc::ValueType::kBytes, false});
  options.compile.request_schema = schema;
  auto network = core::Network::Create(kProgram, options);
  if (!network.ok()) std::abort();
  core::WorkloadOptions workload;
  workload.concurrency = 128;
  workload.measured_requests = 15'000;
  workload.warmup_requests = 1'500;
  workload.make_request = MakeRequest;
  auto result = (*network)->RunWorkload("stamps", workload);
  if (!result.ok()) std::abort();
  return result->stats.throughput_krps;
}

// Wall-clock twin: run the same chain through an EngineChain, fused vs not.
void BM_Chain(benchmark::State& state) {
  const bool fuse = state.range(0) != 0;
  compiler::Compiler c;
  compiler::CompileOptions options;
  options.passes.fuse_adjacent = fuse;
  auto program = c.CompileSource(kProgram, options);
  if (!program.ok()) std::abort();
  mrpc::EngineChain chain;
  for (const auto& element : program->chains[0].elements) {
    chain.AddStage(std::make_unique<mrpc::GeneratedStage>(element.ir, 1));
  }
  state.SetLabel(fuse ? "fused: 1 stage" : "unfused: 4 stages");
  uint64_t id = 0;
  Rng rng(1);
  for (auto _ : state) {
    rpc::Message m = MakeRequest(id++, rng);
    benchmark::DoNotOptimize(chain.Process(m, 0));
  }
}
BENCHMARK(BM_Chain)->Arg(0)->Arg(1);

}  // namespace
}  // namespace adn

int main(int argc, char** argv) {
  using namespace adn;
  std::printf("Fusion ablation (E12): four same-placement stamp elements.\n\n");
  double unfused = RunRate(false);
  double fused = RunRate(true);
  std::printf("simulated rate, unfused (4 elements): %8.1f krps\n", unfused);
  std::printf("simulated rate, fused   (1 element) : %8.1f krps\n", fused);
  std::printf("fusion speedup                      : %8.2fx\n\n", fused / unfused);
  std::printf("wall-clock per-message (google-benchmark):\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
