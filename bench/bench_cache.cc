// Response-cache sweep (E18): how much does memoizing idempotent RPCs at the
// head of the chain buy, and where should the cache live?
//
// Chain: RespCache -> Logging -> Acl -> HashLb -> Compress
// (elements::CacheChainSource(); capacity 1024, TTL 5 s, KEY (object_id)).
// A hit at RespCache rewrites the request in place into the cached response
// and stops the chain (ProcessOutcome::kReply — docs/ARCHITECTURE.md
// "Reply-path short-circuit"); a miss runs the full chain, and the synthetic
// server response is routed back through the chain so the fill happens on
// the response path, exactly as deployed.
//
// Three phases:
//
//  1. Zipf sweep: skews {0.8, 0.99, 1.1, 1.3} over 10k objects, arena-backed
//     requests, per-message wall-clock sampling. Reports hit rate and
//     p50/p99 of the local processing latency, split hit vs miss — the miss
//     number IS the full-chain cost (request stages + response stages +
//     fill), so hit_p50 vs miss_p50 at the gate skew (1.1) is the
//     cached-hit speedup CI gates at >= 5x.
//  2. Alloc gate: warm a resident working set, then 50k hit-only arena
//     requests under the counting operator-new hooks. A hit decodes the
//     cached flat blob straight into the message arena (rpc/flat_wire.h),
//     so allocs/msg must be exactly 0 (tools/check_perf.py --max-allocs 0).
//  3. Placement ablation: place the compiled chain under kMinLatency (the
//     hit-rate-aware cost in controller/placement.cc pulls the cache toward
//     the client), then replay the recorded skew-1.1 hit/miss stream
//     through the planner's own analytic path model with the cache forced
//     to the client engine vs the server engine. The p50 delta is the
//     paper-shaped result: once hits dominate, placement decides whether
//     p50 is a local bounce or a full round trip.
//
// Writes BENCH_cache.json (schema in EXPERIMENTS.md E18), gated against
// bench/baselines/cache_baseline.json by tools/check_perf.py.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/alloc_stats.h"
#include "common/arena.h"
#include "common/rng.h"
#include "compiler/compiler.h"
#include "compiler/lower.h"
#include "controller/placement.h"
#include "core/workload.h"
#include "dsl/parser.h"
#include "elements/library.h"
#include "ir/exec.h"
#include "mrpc/engine.h"
#include "rpc/intern.h"
#include "sim/cost_model.h"

#ifndef ADN_GIT_SHA
#define ADN_GIT_SHA "unknown"
#endif

namespace adn {
namespace {

constexpr size_t kObjects = 10'000;
constexpr size_t kUsers = 256;
constexpr size_t kPayloadBytes = 64;
constexpr uint64_t kWarmMessages = 30'000;
constexpr uint64_t kSweepMessages = 120'000;
constexpr uint64_t kAllocMessages = 50'000;
constexpr double kGateSkew = 1.1;
constexpr double kSkews[] = {0.8, 0.99, 1.1, 1.3};

std::string User(uint64_t i) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "u%04llu",
                static_cast<unsigned long long>(i % kUsers));
  return buf;
}

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// The cached chain on one engine: per-element GeneratedStage over seeded
// state tables. The cache stage stays on the interpreter tier (caches
// decline the compiled tier); the SQL elements run the ChainExecutor.
struct Harness {
  mrpc::EngineChain chain;
  ir::ElementInstance* cache = nullptr;
  rpc::Table* log_tab = nullptr;
  bool ok = false;

  template <typename Lowered>
  explicit Harness(const Lowered& lowered) {
    static constexpr const char* kOrder[] = {"RespCache", "Logging", "Acl",
                                             "HashLb", "Compress"};
    for (const char* name : kOrder) {
      auto code = lowered.FindElement(name);
      if (code == nullptr) return;
      auto stage = std::make_unique<mrpc::GeneratedStage>(code, /*seed=*/7);
      ir::ElementInstance& inst = stage->instance();
      if (code->IsCache()) cache = &inst;
      if (std::string_view(name) == "Logging") {
        log_tab = inst.FindTable("log_tab");
      }
      if (std::string_view(name) == "Acl") {
        rpc::Table* acl = inst.FindTable("ac_tab");
        for (uint64_t u = 0; u < kUsers; ++u) {
          (void)acl->Insert({rpc::Value(User(u)), rpc::Value("W")});
        }
      }
      if (std::string_view(name) == "HashLb") {
        rpc::Table* endpoints = inst.FindTable("endpoints");
        for (int64_t shard = 0; shard < elements::kLbShards; ++shard) {
          (void)endpoints->Insert({rpc::Value(shard), rpc::Value(100 + shard)});
        }
      }
      chain.AddStage(std::move(stage));
    }
    ok = cache != nullptr && log_tab != nullptr;
  }
};

struct Fids {
  rpc::FieldId username = rpc::InternFieldName("username");
  rpc::FieldId object_id = rpc::InternFieldName("object_id");
  rpc::FieldId payload = rpc::InternFieldName("payload");
  rpc::FieldId result = rpc::InternFieldName("result");
};

// Interned once at startup; the hot loops only touch FieldIds.
Fids fids_;

rpc::Message MakeArenaRequest(common::ArenaPool& pool, const Fids& fids,
                              uint64_t id, uint64_t object,
                              const uint8_t* payload) {
  rpc::Message m = rpc::Message::WithArena(pool);
  m.set_id(id);
  m.set_method("Obj.Get");
  m.SetText(fids.username, User(object));
  m.SetField(fids.object_id, rpc::Value(static_cast<int64_t>(object)));
  m.SetBytes(fids.payload, std::span<const uint8_t>(payload, kPayloadBytes));
  return m;
}

// The server's reply for a miss: result text + payload, plus the username so
// Logging's response-path INSERT logs a real row.
rpc::Message ServerResponse(const rpc::Message& request, uint64_t object,
                            const uint8_t* payload) {
  return rpc::Message::MakeResponse(
      request,
      {{"username", rpc::Value(User(object))},
       {"result", rpc::Value("v" + std::to_string(object))},
       {"payload", rpc::Value(Bytes(payload, payload + kPayloadBytes))}});
}

int64_t Percentile(std::vector<int64_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  size_t idx = static_cast<size_t>(q * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

struct SweepRow {
  double skew = 0;
  double hit_rate = 0;
  int64_t p50_ns = 0;
  int64_t p99_ns = 0;
  int64_t hit_p50_ns = 0;
  int64_t miss_p50_ns = 0;
};

// One skew: fresh chain, zipf-driven warm, then a measured window with
// per-message timing. `hit_stream` (when non-null) records the measured
// window's hit/miss sequence for the placement replay.
SweepRow MeasureSkew(const compiler::ProgramIr& lowered, double skew,
                     std::vector<uint8_t>* hit_stream) {
  Harness h(lowered);
  if (!h.ok) return {};
  core::ZipfSampler zipf(kObjects, skew);
  Rng rng(static_cast<uint64_t>(skew * 1000) + 17);
  common::ArenaPool arena_pool(2048);
  uint8_t payload[kPayloadBytes];
  std::memset(payload, 0x5a, sizeof payload);

  uint64_t next_id = 1;
  // Simulated TTL clock: 1 us per message keeps the whole window far under
  // the 5 s TTL, so this phase measures capacity behavior, not expiry.
  auto run_one = [&](int64_t now, bool* hit) {
    const uint64_t object = zipf.Sample(rng);
    rpc::Message m =
        MakeArenaRequest(arena_pool, fids_, next_id++, object, payload);
    const int64_t t0 = NowNs();
    ir::ProcessResult r = h.chain.Process(m, now);
    if (r.outcome == ir::ProcessOutcome::kReply) {
      *hit = true;
      return NowNs() - t0;
    }
    *hit = false;
    rpc::Message resp = ServerResponse(m, object, payload);
    (void)h.chain.Process(resp, now);
    return NowNs() - t0;
  };

  bool hit = false;
  for (uint64_t i = 0; i < kWarmMessages; ++i) {
    (void)run_one(static_cast<int64_t>(i) * 1000, &hit);
  }
  h.log_tab->Clear();

  std::vector<int64_t> all, hits, misses;
  all.reserve(kSweepMessages);
  const uint64_t hits0 = h.cache->cache_hits();
  const uint64_t misses0 = h.cache->cache_misses();
  for (uint64_t i = 0; i < kSweepMessages; ++i) {
    const int64_t now = static_cast<int64_t>(kWarmMessages + i) * 1000;
    const int64_t ns = run_one(now, &hit);
    all.push_back(ns);
    (hit ? hits : misses).push_back(ns);
    if (hit_stream != nullptr) hit_stream->push_back(hit ? 1 : 0);
  }

  SweepRow row;
  row.skew = skew;
  const uint64_t seen = (h.cache->cache_hits() - hits0) +
                        (h.cache->cache_misses() - misses0);
  row.hit_rate = seen == 0 ? 0
                           : static_cast<double>(h.cache->cache_hits() - hits0) /
                                 static_cast<double>(seen);
  std::sort(all.begin(), all.end());
  std::sort(hits.begin(), hits.end());
  std::sort(misses.begin(), misses.end());
  row.p50_ns = Percentile(all, 0.50);
  row.p99_ns = Percentile(all, 0.99);
  row.hit_p50_ns = Percentile(hits, 0.50);
  row.miss_p50_ns = Percentile(misses, 0.50);
  return row;
}

// Allocations per message on the hit path: a resident working set smaller
// than capacity, arena-backed requests, counting hooks on. Also yields the
// tightest cached-hit ns/msg (no percentile sampling overhead in the loop).
struct AllocResult {
  double allocs_per_msg = -1;
  double hit_ns_per_msg = 0;
  uint64_t non_hits = 0;
};

AllocResult MeasureHitAllocs(const compiler::ProgramIr& lowered) {
  constexpr uint64_t kHotKeys = 512;  // < capacity: everything stays resident
  Harness h(lowered);
  AllocResult out;
  if (!h.ok) return out;
  common::ArenaPool arena_pool(2048);
  uint8_t payload[kPayloadBytes];
  std::memset(payload, 0x5a, sizeof payload);

  uint64_t next_id = 1;
  for (uint64_t k = 0; k < kHotKeys; ++k) {  // fill: one miss + fill per key
    rpc::Message m = MakeArenaRequest(arena_pool, fids_, next_id++, k, payload);
    if (h.chain.Process(m, 0).outcome != ir::ProcessOutcome::kPass) {
      ++out.non_hits;
    }
    rpc::Message resp = ServerResponse(m, k, payload);
    (void)h.chain.Process(resp, 0);
  }
  auto hit_loop = [&](uint64_t n) {
    for (uint64_t i = 0; i < n; ++i) {
      rpc::Message m = MakeArenaRequest(arena_pool, fids_, next_id++,
                                        i % kHotKeys, payload);
      if (h.chain.Process(m, 0).outcome != ir::ProcessOutcome::kReply) {
        ++out.non_hits;
      }
    }
  };
  hit_loop(20'000);  // warm: arena pool and interner reach steady state
  const uint64_t allocs0 = common::alloc_stats::TotalAllocs();
  const int64_t t0 = NowNs();
  hit_loop(kAllocMessages);
  out.hit_ns_per_msg = static_cast<double>(NowNs() - t0) /
                       static_cast<double>(kAllocMessages);
  out.allocs_per_msg =
      static_cast<double>(common::alloc_stats::TotalAllocs() - allocs0) /
      static_cast<double>(kAllocMessages);
  return out;
}

// --- Placement ablation ------------------------------------------------------
//
// The planner's own path model (controller/placement.cc): replying at site
// `idx` on the 8-site client-app -> ... -> server-app path saves the
// remaining kernel crossings, the wire (when the cache sits client-side of
// it) and the server handler. Replayed over the measured skew-1.1 hit/miss
// stream, it turns the hit rate into end-to-end percentiles per cache site.
double HitSavingNs(int idx, const sim::CostModel& model) {
  constexpr int kLast = 7;
  double saving = static_cast<double>(kLast - idx) * 2.0 *
                  static_cast<double>(model.kernel_crossing_ns);
  if (idx <= 2) {
    saving += 2.0 * static_cast<double>(model.wire_propagation_ns) +
              static_cast<double>(model.mrpc_tcp_tx_ns) +
              static_cast<double>(model.mrpc_tcp_rx_ns);
  }
  saving += static_cast<double>(model.app_handler_ns);
  return saving;
}

struct PlacementRow {
  int64_t p50_ns = 0;
  int64_t p99_ns = 0;
};

PlacementRow ReplayPlacement(const std::vector<uint8_t>& hit_stream, int idx,
                             const sim::CostModel& model) {
  const double full_trip = HitSavingNs(0, model);  // client-app round trip
  const double miss_ns = full_trip +
                         static_cast<double>(model.cache_lookup_ns) +
                         static_cast<double>(model.cache_fill_ns);
  const double hit_ns = full_trip - HitSavingNs(idx, model) +
                        static_cast<double>(model.cache_lookup_ns);
  std::vector<int64_t> lat;
  lat.reserve(hit_stream.size());
  for (uint8_t hit : hit_stream) {
    lat.push_back(static_cast<int64_t>(hit != 0 ? hit_ns : miss_ns));
  }
  std::sort(lat.begin(), lat.end());
  return {Percentile(lat, 0.50), Percentile(lat, 0.99)};
}

int Run() {
  if (!common::alloc_stats::Counting()) {
    std::fprintf(stderr,
                 "bench_cache: alloc hooks not linked — counts would read 0 "
                 "vacuously\n");
    return 1;
  }

  auto parsed = dsl::ParseProgram(elements::CacheChainSource());
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse failed: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }
  auto lowered = compiler::LowerProgram(*parsed);
  if (!lowered.ok()) {
    std::fprintf(stderr, "lowering failed: %s\n",
                 lowered.status().ToString().c_str());
    return 1;
  }

  std::printf(
      "Response-cache sweep: RespCache(1024, 5s) -> Logging -> Acl -> HashLb\n"
      "-> Compress, %zu objects, %lluk msgs/skew after %lluk warm.\n"
      "Miss latency includes the response pass (fill) — it is the full-chain\n"
      "cost a hit short-circuits.\n\n",
      kObjects, static_cast<unsigned long long>(kSweepMessages / 1000),
      static_cast<unsigned long long>(kWarmMessages / 1000));

  std::printf("%-8s %10s %10s %10s %12s %12s\n", "skew", "hit-rate", "p50 ns",
              "p99 ns", "hit p50 ns", "miss p50 ns");
  std::printf("%.*s\n", 68,
              "--------------------------------------------------------------"
              "------");
  std::vector<SweepRow> rows;
  std::vector<uint8_t> gate_stream;
  SweepRow gate_row;
  for (double skew : kSkews) {
    const bool is_gate = skew == kGateSkew;
    SweepRow row =
        MeasureSkew(*lowered, skew, is_gate ? &gate_stream : nullptr);
    if (is_gate) gate_row = row;
    std::printf("%-8.2f %9.1f%% %10lld %10lld %12lld %12lld\n", row.skew,
                row.hit_rate * 100, static_cast<long long>(row.p50_ns),
                static_cast<long long>(row.p99_ns),
                static_cast<long long>(row.hit_p50_ns),
                static_cast<long long>(row.miss_p50_ns));
    rows.push_back(row);
  }

  const double speedup =
      gate_row.hit_p50_ns > 0
          ? static_cast<double>(gate_row.miss_p50_ns) /
                static_cast<double>(gate_row.hit_p50_ns)
          : 0;

  const AllocResult alloc = MeasureHitAllocs(*lowered);
  std::printf(
      "\nGate skew %.1f: hit rate %.1f%%, cached hit %.2fx faster than the\n"
      "full chain (%lld ns vs %lld ns at p50).\n"
      "Hit-only arena loop: %.1f ns/msg, %.4f allocs/msg (%llu unexpected\n"
      "non-hit outcomes).\n",
      kGateSkew, gate_row.hit_rate * 100, speedup,
      static_cast<long long>(gate_row.hit_p50_ns),
      static_cast<long long>(gate_row.miss_p50_ns), alloc.hit_ns_per_msg,
      alloc.allocs_per_msg, static_cast<unsigned long long>(alloc.non_hits));

  // Placement: what the solver picks, and what the pick is worth.
  compiler::Compiler compiler;
  auto compiled = compiler.CompileSource(elements::CacheChainSource(), {});
  if (!compiled.ok() || compiled->chains.empty()) {
    std::fprintf(stderr, "compile failed\n");
    return 1;
  }
  const compiler::CompiledChain& chain = compiled->chains[0];
  controller::PathEnvironment env_default;
  controller::PathEnvironment env_no_app;
  env_no_app.allow_in_app = false;
  auto place_default = controller::PlaceChain(
      chain, env_default, controller::PlacementPolicy::kMinLatency);
  auto place_no_app = controller::PlaceChain(
      chain, env_no_app, controller::PlacementPolicy::kMinLatency);
  if (!place_default.ok() || !place_no_app.ok()) {
    std::fprintf(stderr, "placement failed\n");
    return 1;
  }
  const std::string site_default(
      mrpc::SiteName(place_default->sites[0]));
  const std::string site_no_app(mrpc::SiteName(place_no_app->sites[0]));

  const sim::CostModel& model = sim::CostModel::Default();
  const PlacementRow client_engine =
      ReplayPlacement(gate_stream, /*idx=kClientEngine*/ 1, model);
  const PlacementRow server_engine =
      ReplayPlacement(gate_stream, /*idx=kServerEngine*/ 6, model);
  const double p50_delta_us =
      static_cast<double>(server_engine.p50_ns - client_engine.p50_ns) / 1e3;

  std::printf(
      "\nPlacement (kMinLatency): cache lands on %s (default env), %s with\n"
      "in-app processing disallowed. Replaying the skew-%.1f hit stream\n"
      "through the planner's path model:\n\n"
      "%-16s %12s %12s\n", site_default.c_str(), site_no_app.c_str(),
      kGateSkew, "cache site", "p50 us", "p99 us");
  std::printf("%-16s %12.1f %12.1f\n", "client-engine",
              static_cast<double>(client_engine.p50_ns) / 1e3,
              static_cast<double>(client_engine.p99_ns) / 1e3);
  std::printf("%-16s %12.1f %12.1f\n", "server-engine",
              static_cast<double>(server_engine.p50_ns) / 1e3,
              static_cast<double>(server_engine.p99_ns) / 1e3);
  std::printf("\np50 delta: %.1f us — at %.0f%% hit rate the cache site "
              "decides whether\nthe median request crosses the wire.\n",
              p50_delta_us, gate_row.hit_rate * 100);

  std::FILE* f = std::fopen("BENCH_cache.json", "w");
  if (f == nullptr) return 1;
  std::fprintf(
      f,
      "{\n"
      "  \"schema_version\": 1,\n"
      "  \"git_sha\": \"%s\",\n"
      "  \"chain\": \"cached (RespCache -> Logging -> Acl -> HashLb -> "
      "Compress)\",\n"
      "  \"objects\": %zu,\n"
      "  \"capacity\": 1024,\n"
      "  \"messages_per_skew\": %llu,\n"
      "  \"gate_skew\": %.2f,\n"
      "  \"hit_rate\": %.4f,\n"
      "  \"cached_hit_ns_per_msg\": %.1f,\n"
      "  \"full_chain_ns_per_msg\": %.1f,\n"
      "  \"cached_hit_speedup\": %.2f,\n"
      "  \"allocs_per_msg\": %.4f,\n"
      "  \"placement\": {\n"
      "    \"min_latency_site\": \"%s\",\n"
      "    \"min_latency_site_no_app\": \"%s\",\n"
      "    \"client_engine_p50_us\": %.1f,\n"
      "    \"client_engine_p99_us\": %.1f,\n"
      "    \"server_engine_p50_us\": %.1f,\n"
      "    \"server_engine_p99_us\": %.1f,\n"
      "    \"p50_delta_us\": %.1f\n"
      "  },\n"
      "  \"rows\": [",
      ADN_GIT_SHA, kObjects,
      static_cast<unsigned long long>(kSweepMessages), kGateSkew,
      gate_row.hit_rate, alloc.hit_ns_per_msg,
      static_cast<double>(gate_row.miss_p50_ns), speedup,
      alloc.allocs_per_msg, site_default.c_str(), site_no_app.c_str(),
      static_cast<double>(client_engine.p50_ns) / 1e3,
      static_cast<double>(client_engine.p99_ns) / 1e3,
      static_cast<double>(server_engine.p50_ns) / 1e3,
      static_cast<double>(server_engine.p99_ns) / 1e3, p50_delta_us);
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f,
                 "%s\n    {\"skew\": %.2f, \"hit_rate\": %.4f, "
                 "\"p50_ns\": %lld, \"p99_ns\": %lld, \"hit_p50_ns\": %lld, "
                 "\"miss_p50_ns\": %lld}",
                 i == 0 ? "" : ",", rows[i].skew, rows[i].hit_rate,
                 static_cast<long long>(rows[i].p50_ns),
                 static_cast<long long>(rows[i].p99_ns),
                 static_cast<long long>(rows[i].hit_p50_ns),
                 static_cast<long long>(rows[i].miss_p50_ns));
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("\nWrote BENCH_cache.json\n");
  return alloc.non_hits == 0 ? 0 : 1;
}

}  // namespace
}  // namespace adn

int main() { return adn::Run(); }
