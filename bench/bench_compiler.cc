// E10 — compiler performance: parse / lower / optimize / full-compile wall
// times for the element corpus, plus the wire codecs the data plane runs on
// every message. google-benchmark microbenches.
#include <benchmark/benchmark.h>

#include "compiler/compiler.h"
#include "dsl/lexer.h"
#include "dsl/parser.h"
#include "elements/library.h"
#include "stack/http2.h"
#include "stack/proto_codec.h"

namespace adn {
namespace {

void BM_Lex_FullLibrary(benchmark::State& state) {
  std::string source = elements::FullLibrarySource();
  for (auto _ : state) {
    auto tokens = dsl::Tokenize(source);
    benchmark::DoNotOptimize(tokens);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(source.size()));
}
BENCHMARK(BM_Lex_FullLibrary);

void BM_Parse_FullLibrary(benchmark::State& state) {
  std::string source = elements::FullLibrarySource();
  for (auto _ : state) {
    auto program = dsl::ParseProgram(source);
    benchmark::DoNotOptimize(program);
  }
}
BENCHMARK(BM_Parse_FullLibrary);

void BM_Lower_FullLibrary(benchmark::State& state) {
  auto parsed = dsl::ParseProgram(elements::FullLibrarySource());
  for (auto _ : state) {
    auto program = compiler::LowerProgram(*parsed);
    benchmark::DoNotOptimize(program);
  }
}
BENCHMARK(BM_Lower_FullLibrary);

void BM_Compile_Fig5(benchmark::State& state) {
  compiler::Compiler c;
  std::string source = elements::Fig5ProgramSource();
  for (auto _ : state) {
    auto program = c.CompileSource(source, {});
    benchmark::DoNotOptimize(program);
  }
}
BENCHMARK(BM_Compile_Fig5);

void BM_Compile_FullLibrary(benchmark::State& state) {
  compiler::Compiler c;
  std::string source = elements::FullLibrarySource();
  for (auto _ : state) {
    auto program = c.CompileSource(source, {});
    benchmark::DoNotOptimize(program);
  }
}
BENCHMARK(BM_Compile_FullLibrary);

// --- Wire codecs ---------------------------------------------------------------

rpc::Message SampleMessage(size_t payload) {
  return rpc::Message::MakeRequest(
      1, "Store.Get",
      {{"username", rpc::Value("alice")},
       {"object_id", rpc::Value(123456)},
       {"payload", rpc::Value(Bytes(payload, 0x42))}});
}

void BM_AdnWire_EncodeDecode(benchmark::State& state) {
  rpc::HeaderSpec spec;
  spec.fields = {{"username", rpc::ValueType::kText, false},
                 {"object_id", rpc::ValueType::kInt, false},
                 {"payload", rpc::ValueType::kBytes, false}};
  rpc::MethodRegistry methods;
  methods.Intern("Store.Get");
  rpc::AdnWireCodec codec(spec, &methods);
  rpc::Message m = SampleMessage(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    Bytes wire;
    Status s = codec.Encode(m, wire);
    benchmark::DoNotOptimize(s);
    auto decoded = codec.Decode(wire);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_AdnWire_EncodeDecode)->Arg(64)->Arg(1024);

void BM_LayeredStack_EncodeDecode(benchmark::State& state) {
  rpc::Schema schema;
  (void)schema.AddColumn({"username", rpc::ValueType::kText, false});
  (void)schema.AddColumn({"object_id", rpc::ValueType::kInt, false});
  (void)schema.AddColumn({"payload", rpc::ValueType::kBytes, false});
  stack::ProtoSchema proto(schema);
  rpc::Message m = SampleMessage(static_cast<size_t>(state.range(0)));
  stack::HpackCodec enc, dec;
  for (auto _ : state) {
    auto body = stack::ProtoEncode(m, proto);
    stack::GrpcHttp2Message h2;
    h2.headers = stack::MakeGrpcRequestHeaders("b", "/Store.Get",
                                               {{"x-user", "alice"}});
    h2.grpc_payload = std::move(body).value();
    Bytes framed = stack::EncodeGrpcMessage(h2, enc);
    auto parsed = stack::ParseGrpcMessage(framed, dec);
    auto decoded = stack::ProtoDecode(parsed->grpc_payload, proto);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_LayeredStack_EncodeDecode)->Arg(64)->Arg(1024);

}  // namespace
}  // namespace adn

BENCHMARK_MAIN();
