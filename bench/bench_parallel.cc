// E11 — ablation of the parallelization pass (paper §5.2: "if two elements
// do not operate on the same RPC fields, they can be executed in parallel").
//
// Chain: three independent transforms — payload encryption, a user digest,
// and a shard hint — whose effect summaries are pairwise disjoint, so the
// compiler places them in one parallel group. With the pass on, a message's
// critical path through the engine is the slowest member instead of the sum
// (total CPU is unchanged; the engine runs the group across its cores).
#include <cstdio>

#include "core/network.h"

namespace adn {
namespace {

// Two payload-heavy transforms over *different* byte fields plus one cheap
// digest: pairwise field-disjoint, hence one parallel group.
const char* kProgram = R"(
ELEMENT Encrypt ON REQUEST {
  INPUT (payload BYTES);
  SELECT *, encrypt(payload, 'key') AS payload FROM input;
}
ELEMENT CompressBlob ON REQUEST {
  INPUT (blob BYTES);
  SELECT *, compress(blob) AS blob FROM input;
}
ELEMENT UserDigest ON REQUEST {
  INPUT (username TEXT);
  SELECT *, hash(username) AS user_digest FROM input;
}
CHAIN indep FOR CALLS a -> b { Encrypt, CompressBlob, UserDigest }
)";

rpc::Message MakeRequest(uint64_t id, Rng& rng, size_t bytes) {
  Bytes payload(bytes), blob(bytes);
  for (auto& b : payload) b = static_cast<uint8_t>(rng.NextBelow(256));
  for (auto& b : blob) b = static_cast<uint8_t>(rng.NextBelow(16));
  return rpc::Message::MakeRequest(
      id, "Indep.Call",
      {{"username", rpc::Value("alice")},
       {"payload", rpc::Value(std::move(payload))},
       {"blob", rpc::Value(std::move(blob))}});
}

struct RunOut {
  double latency_us;
  double rate_krps;
  int groups;
};

RunOut Run(bool parallelize, size_t payload) {
  core::NetworkOptions options;
  options.compile.passes.parallelize = parallelize;
  options.compile.passes.fuse_adjacent = false;  // isolate the effect
  auto network = core::Network::Create(kProgram, options);
  if (!network.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n",
                 network.status().ToString().c_str());
    std::abort();
  }
  const auto* chain = (*network)->Chain("indep");
  int groups = 0;
  for (int g : chain->parallel_groups) groups = std::max(groups, g + 1);

  core::WorkloadOptions workload;
  workload.concurrency = 1;
  workload.measured_requests = 8'000;
  workload.warmup_requests = 800;
  workload.make_request = [payload](uint64_t id, Rng& rng) {
    return MakeRequest(id, rng, payload);
  };
  // Engines wide enough to actually overlap group members.
  workload.client_engine_width = 4;
  auto latency_run = (*network)->RunWorkload("indep", workload);
  workload.concurrency = 128;
  auto rate_run = (*network)->RunWorkload("indep", workload);
  if (!latency_run.ok() || !rate_run.ok()) std::abort();
  return {latency_run->stats.mean_latency_us,
          rate_run->stats.throughput_krps, groups};
}

}  // namespace
}  // namespace adn

int main() {
  using namespace adn;
  std::printf(
      "Parallelization ablation (E11): three field-disjoint elements.\n\n");
  std::printf("%-10s %-14s %8s %14s %12s\n", "payload", "parallelize",
              "groups", "latency (us)", "rate (krps)");
  std::printf("%.*s\n", 64,
              "----------------------------------------------------------------");
  for (size_t payload : {size_t{1024}, size_t{8192}, size_t{65536}}) {
    RunOut off = Run(false, payload);
    RunOut on = Run(true, payload);
    std::printf("%-10zu %-14s %8d %14.1f %12.1f\n", payload, "off",
                off.groups, off.latency_us, off.rate_krps);
    std::printf("%-10s %-14s %8d %14.1f %12.1f\n", "", "on", on.groups,
                on.latency_us, on.rate_krps);
    std::printf("%-10s %-14s %8s %13.2fx\n\n", "", "latency win", "",
                off.latency_us / on.latency_us);
  }
  std::printf(
      "Expected shape: with the pass on, the chain collapses to one group\n"
      "and per-message latency approaches the slowest group member;\n"
      "throughput is CPU-bound either way, so it barely moves.\n");
  return 0;
}
