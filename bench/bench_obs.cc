// Telemetry-on gate for the burst/zero-alloc hot path (E17).
//
// The burst-mode telemetry contract (docs/OBSERVABILITY.md "Burst-mode
// telemetry") promises observability is *always on*: enabling metrics plus
// sampled tracing must not push the data plane off the SoA burst executor,
// must cost <= 10% over obs-off, and must not allocate on the steady-state
// arena path. This bench measures all three on the fig5 chain with a
// 1-worker EnginePool (methodology of bench_burst / bench_alloc):
//
//  - obs-off burst:   the uninstrumented baseline (denominator for the
//                     overhead fraction).
//  - obs-on burst:    metrics + tracing at 1-in-kSampleEvery, default burst.
//                     This is `compiled_ns_per_msg`, gated by CI against
//                     bench/baselines/obs_baseline.json.
//  - obs-on scalar:   burst_size=1 with the same telemetry. burst_speedup =
//                     scalar / burst proves telemetry did not collapse the
//                     burst win (tools/check_perf.py --min-speedup).
//  - obs-on arena:    bench_alloc's arena-backed submit path with telemetry
//                     on; the measured window must allocate NOTHING
//                     (tools/check_perf.py --max-allocs 0). Span records are
//                     fixed-size PODs pushed into per-worker SPSC event
//                     rings, metric deltas are batched counter/histogram
//                     adds — none of it touches the heap.
//
// Event rings are drained (Tracer::Clear) between reps while the pool is
// parked, so no rep's emit cost is silently discounted by a full ring
// dropping events; TotalDropped is checked to be 0 after the timed phases.
//
// Writes BENCH_obs.json (schema in EXPERIMENTS.md). Links adn_alloc_hooks
// so the alloc phase counts real heap traffic.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/alloc_stats.h"
#include "common/arena.h"
#include "compiler/lower.h"
#include "dsl/parser.h"
#include "elements/library.h"
#include "ir/analysis.h"
#include "mrpc/engine_pool.h"
#include "obs/event_ring.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rpc/intern.h"

#ifndef ADN_GIT_SHA
#define ADN_GIT_SHA "unknown"
#endif

namespace adn {
namespace {

constexpr int kUsers = 1024;
constexpr uint64_t kRepMessages = 100'000;
constexpr int kReps = 5;
constexpr uint64_t kSampleEvery = 100;
// Alloc window must stay under the table spare-row cap (65536) so every
// measured INSERT reuses a row recycled by the inter-rep Clear().
constexpr uint64_t kAllocRepMessages = 50'000;

std::string User(uint64_t i) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "u%04llu",
                static_cast<unsigned long long>(i % kUsers));
  return buf;
}

std::vector<rpc::Message> Stream(size_t n) {
  std::vector<rpc::Message> stream;
  stream.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Bytes payload(64, static_cast<uint8_t>(i));
    std::vector<rpc::Field> fields = {
        {"username", rpc::Value(User(i * 2654435761ULL))},
        {"payload", rpc::Value(std::move(payload))}};
    stream.push_back(
        rpc::Message::MakeRequest(i + 1, "Obj.Put", std::move(fields)));
  }
  return stream;
}

void SetObs(bool on) {
  obs::SetEnabled(on);
  obs::Tracer::Default().SetTracingEnabled(on);
  if (on) obs::Tracer::Default().SetSampleEvery(kSampleEvery);
}

// Best-of-reps 1-worker executor ns/msg (bench_burst methodology: log_tab
// cleared and event rings drained between reps while the pool is parked).
double Measure(const std::vector<std::shared_ptr<const ir::ElementIr>>& elements,
               const std::vector<int>& groups,
               const std::vector<rpc::Message>& stream, size_t burst,
               bool obs_on) {
  SetObs(obs_on);
  mrpc::EnginePool::Config config;
  config.workers = 1;
  config.shard_key_field = "username";
  config.processor = "bench-obs";
  config.measure_exec = true;
  config.burst_size = burst;
  mrpc::EnginePool pool(elements, groups, config);
  rpc::Table* acl = pool.FindTemplateInstance("Acl")->FindTable("ac_tab");
  for (uint64_t i = 0; i < kUsers; ++i) {
    (void)acl->Insert({rpc::Value(User(i)), rpc::Value("W")});
  }
  if (!pool.Start().ok()) return -1;
  double best = 1e18;
  int64_t prev_exec = 0;
  uint64_t prev_done = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    pool.WorkerInstance(0, 0).FindTable("log_tab")->Clear();
    obs::Tracer::Default().Clear();  // drain rings: no mid-rep eviction
    for (uint64_t i = 0; i < kRepMessages; ++i) {
      pool.Submit(stream[i % stream.size()]);
    }
    pool.Drain();
    const int64_t exec = pool.worker_exec_ns(0);
    const uint64_t done = pool.processed_by(0);
    best = std::min(best, static_cast<double>(exec - prev_exec) /
                              static_cast<double>(done - prev_done));
    prev_exec = exec;
    prev_done = done;
  }
  pool.Stop();
  return best;
}

// Allocations per message over one obs-on rep on the arena submit path
// (bench_alloc methodology; counter is process-global so the window covers
// producer, worker, and every telemetry emission in between).
double MeasureAllocs(
    const std::vector<std::shared_ptr<const ir::ElementIr>>& elements,
    const std::vector<int>& groups) {
  SetObs(true);
  mrpc::EnginePool::Config config;
  config.workers = 1;
  config.shard_key_field = "username";
  config.processor = "bench-obs";
  config.measure_exec = true;
  mrpc::EnginePool pool(elements, groups, config);
  rpc::Table* acl = pool.FindTemplateInstance("Acl")->FindTable("ac_tab");
  for (uint64_t i = 0; i < kUsers; ++i) {
    (void)acl->Insert({rpc::Value(User(i)), rpc::Value("W")});
  }
  if (!pool.Start().ok()) return -1;

  const rpc::FieldId username_fid = rpc::InternFieldName("username");
  const rpc::FieldId payload_fid = rpc::InternFieldName("payload");
  common::ArenaPool arena_pool(1024);  // small slabs: see bench_alloc
  uint8_t payload[64];
  auto submit = [&](uint64_t i) {
    rpc::Message m = rpc::Message::WithArena(arena_pool);
    m.set_id(i + 1);
    m.set_method("Obj.Put");
    std::memset(payload, static_cast<uint8_t>(i), sizeof payload);
    m.SetText(username_fid, User(i * 2654435761ULL));
    m.SetBytes(payload_fid, payload);
    pool.Submit(std::move(m));
  };

  // Warm rep: arena pool reaches steady size, spare rows stocked, counters
  // and the worker's event ring registered, interner populated.
  for (uint64_t i = 0; i < kAllocRepMessages; ++i) submit(i);
  pool.Drain();
  pool.WorkerInstance(0, 0).FindTable("log_tab")->Clear();
  obs::Tracer::Default().Clear();

  const uint64_t allocs0 = common::alloc_stats::TotalAllocs();
  for (uint64_t i = 0; i < kAllocRepMessages; ++i) submit(i);
  pool.Drain();
  const uint64_t allocs1 = common::alloc_stats::TotalAllocs();
  pool.Stop();
  return static_cast<double>(allocs1 - allocs0) /
         static_cast<double>(kAllocRepMessages);
}

int Run() {
  if (!common::alloc_stats::Counting()) {
    std::fprintf(stderr,
                 "bench_obs: alloc hooks not linked — counts would read 0 "
                 "vacuously\n");
    return 1;
  }

  auto parsed = dsl::ParseProgram(elements::Fig5ProgramSource());
  auto lowered = compiler::LowerProgram(*parsed);
  if (!lowered.ok()) {
    std::fprintf(stderr, "lowering failed\n");
    return 1;
  }
  std::vector<std::shared_ptr<const ir::ElementIr>> elements = {
      lowered->FindElement("Logging"), lowered->FindElement("Acl"),
      lowered->FindElement("Fault")};
  std::vector<const ir::ElementIr*> raw;
  for (const auto& e : elements) raw.push_back(e.get());
  const std::vector<int> groups = ir::PartitionIntoParallelGroups(raw);

  const std::vector<rpc::Message> stream = Stream(256);
  const size_t default_burst = mrpc::EnginePool::Config{}.burst_size;

  std::printf(
      "Telemetry-on burst gate: fig5 chain, 1-worker EnginePool, best of "
      "%d x %lluk\nmessages, tracing 1-in-%llu. burst=1 is the scalar "
      "path.\n\n",
      kReps, static_cast<unsigned long long>(kRepMessages / 1000),
      static_cast<unsigned long long>(kSampleEvery));

  // Warmup (also validates the pipeline end to end).
  (void)Measure(elements, groups, stream, default_burst, false);

  const double off_ns =
      Measure(elements, groups, stream, default_burst, false);
  const double on_ns = Measure(elements, groups, stream, default_burst, true);
  const double scalar_on_ns = Measure(elements, groups, stream, 1, true);
  if (off_ns <= 0 || on_ns <= 0 || scalar_on_ns <= 0) return 1;

  const uint64_t ring_dropped = obs::EventRingRegistry::Default().TotalDropped();
  const double obs_overhead = on_ns / off_ns - 1.0;
  const double speedup = scalar_on_ns / on_ns;

  const double allocs_per_msg = MeasureAllocs(elements, groups);
  if (allocs_per_msg < 0) return 1;
  SetObs(false);

  std::printf("%-28s %12s %14s\n", "phase", "ns/msg", "1-core Mrps");
  std::printf("%.*s\n", 56,
              "--------------------------------------------------------");
  std::printf("%-28s %12.1f %14.2f\n", "obs-off burst", off_ns, 1e3 / off_ns);
  std::printf("%-28s %12.1f %14.2f\n", "obs-on burst", on_ns, 1e3 / on_ns);
  std::printf("%-28s %12.1f %14.2f\n", "obs-on scalar", scalar_on_ns,
              1e3 / scalar_on_ns);
  std::printf(
      "\nTelemetry overhead on the burst path: %+.1f%%  (gate: <= 10%%)\n"
      "Burst speedup with telemetry on:      %.2fx   (gate: >= 1.6x)\n"
      "Allocations/msg, arena path, obs on:  %.4f   (gate: 0)\n"
      "Events dropped by full rings:         %llu\n",
      obs_overhead * 100, speedup, allocs_per_msg,
      static_cast<unsigned long long>(ring_dropped));
  if (ring_dropped != 0) {
    std::fprintf(stderr,
                 "bench_obs: WARNING — %llu events evicted during timed "
                 "phases; emit cost under-measured\n",
                 static_cast<unsigned long long>(ring_dropped));
  }

  std::FILE* f = std::fopen("BENCH_obs.json", "w");
  if (f == nullptr) return 1;
  std::fprintf(f,
               "{\n"
               "  \"schema_version\": 1,\n"
               "  \"git_sha\": \"%s\",\n"
               "  \"chain\": \"fig5 (Logging -> ACL -> Fault)\",\n"
               "  \"rep_messages\": %llu,\n"
               "  \"reps\": %d,\n"
               "  \"default_burst\": %zu,\n"
               "  \"sample_every\": %llu,\n"
               "  \"obs_off_ns_per_msg\": %.1f,\n"
               "  \"compiled_ns_per_msg\": %.1f,\n"
               "  \"scalar_ns_per_msg\": %.1f,\n"
               "  \"burst_speedup\": %.2f,\n"
               "  \"obs_overhead_frac\": %.4f,\n"
               "  \"allocs_per_msg\": %.4f,\n"
               "  \"events_dropped\": %llu\n"
               "}\n",
               ADN_GIT_SHA, static_cast<unsigned long long>(kRepMessages),
               kReps, default_burst,
               static_cast<unsigned long long>(kSampleEvery), off_ns, on_ns,
               scalar_on_ns, speedup, obs_overhead, allocs_per_msg,
               static_cast<unsigned long long>(ring_dropped));
  std::fclose(f);
  std::printf("\nWrote BENCH_obs.json\n");
  return 0;
}

}  // namespace
}  // namespace adn

int main() { return adn::Run(); }
