# Empty dependencies file for adnc.
# This may be replaced when dependencies are built.
