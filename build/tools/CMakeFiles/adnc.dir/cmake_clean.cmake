file(REMOVE_RECURSE
  "CMakeFiles/adnc.dir/adnc.cc.o"
  "CMakeFiles/adnc.dir/adnc.cc.o.d"
  "adnc"
  "adnc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adnc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
