file(REMOVE_RECURSE
  "CMakeFiles/bench_codegen_overhead.dir/bench_codegen_overhead.cc.o"
  "CMakeFiles/bench_codegen_overhead.dir/bench_codegen_overhead.cc.o.d"
  "bench_codegen_overhead"
  "bench_codegen_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_codegen_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
