
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_headers.cc" "bench/CMakeFiles/bench_headers.dir/bench_headers.cc.o" "gcc" "bench/CMakeFiles/bench_headers.dir/bench_headers.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/adn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/controller/CMakeFiles/adn_controller.dir/DependInfo.cmake"
  "/root/repo/build/src/elements/CMakeFiles/adn_elements.dir/DependInfo.cmake"
  "/root/repo/build/src/mrpc/CMakeFiles/adn_mrpc.dir/DependInfo.cmake"
  "/root/repo/build/src/stack/CMakeFiles/adn_stack.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/adn_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/adn_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/dsl/CMakeFiles/adn_dsl.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/adn_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/adn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/adn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
