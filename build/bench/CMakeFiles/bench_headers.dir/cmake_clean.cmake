file(REMOVE_RECURSE
  "CMakeFiles/bench_headers.dir/bench_headers.cc.o"
  "CMakeFiles/bench_headers.dir/bench_headers.cc.o.d"
  "bench_headers"
  "bench_headers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_headers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
