# Empty compiler generated dependencies file for bench_headers.
# This may be replaced when dependencies are built.
