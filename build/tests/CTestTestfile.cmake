# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_rpc[1]_include.cmake")
include("/root/repo/build/tests/test_table[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_dsl[1]_include.cmake")
include("/root/repo/build/tests/test_ir[1]_include.cmake")
include("/root/repo/build/tests/test_compiler[1]_include.cmake")
include("/root/repo/build/tests/test_stack[1]_include.cmake")
include("/root/repo/build/tests/test_mrpc[1]_include.cmake")
include("/root/repo/build/tests/test_controller[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_parity[1]_include.cmake")
include("/root/repo/build/tests/test_gateway[1]_include.cmake")
include("/root/repo/build/tests/test_e2e[1]_include.cmake")
include("/root/repo/build/tests/test_telemetry[1]_include.cmake")
include("/root/repo/build/tests/test_exec_edge[1]_include.cmake")
include("/root/repo/build/tests/test_placement_property[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
