add_test([=[Smoke.Fig5EndToEnd]=]  /root/repo/build/tests/test_smoke [==[--gtest_filter=Smoke.Fig5EndToEnd]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[Smoke.Fig5EndToEnd]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  test_smoke_TESTS Smoke.Fig5EndToEnd)
