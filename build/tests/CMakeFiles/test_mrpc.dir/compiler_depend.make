# Empty compiler generated dependencies file for test_mrpc.
# This may be replaced when dependencies are built.
