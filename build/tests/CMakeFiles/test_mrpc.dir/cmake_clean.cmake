file(REMOVE_RECURSE
  "CMakeFiles/test_mrpc.dir/test_mrpc.cc.o"
  "CMakeFiles/test_mrpc.dir/test_mrpc.cc.o.d"
  "test_mrpc"
  "test_mrpc.pdb"
  "test_mrpc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mrpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
