# Empty compiler generated dependencies file for test_exec_edge.
# This may be replaced when dependencies are built.
