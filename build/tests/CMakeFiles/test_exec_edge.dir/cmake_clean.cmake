file(REMOVE_RECURSE
  "CMakeFiles/test_exec_edge.dir/test_exec_edge.cc.o"
  "CMakeFiles/test_exec_edge.dir/test_exec_edge.cc.o.d"
  "test_exec_edge"
  "test_exec_edge.pdb"
  "test_exec_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exec_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
