file(REMOVE_RECURSE
  "CMakeFiles/test_placement_property.dir/test_placement_property.cc.o"
  "CMakeFiles/test_placement_property.dir/test_placement_property.cc.o.d"
  "test_placement_property"
  "test_placement_property.pdb"
  "test_placement_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_placement_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
