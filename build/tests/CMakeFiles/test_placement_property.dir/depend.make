# Empty dependencies file for test_placement_property.
# This may be replaced when dependencies are built.
