file(REMOVE_RECURSE
  "CMakeFiles/analytics_pushdown.dir/analytics_pushdown.cpp.o"
  "CMakeFiles/analytics_pushdown.dir/analytics_pushdown.cpp.o.d"
  "analytics_pushdown"
  "analytics_pushdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytics_pushdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
