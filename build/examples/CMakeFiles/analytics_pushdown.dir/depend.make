# Empty dependencies file for analytics_pushdown.
# This may be replaced when dependencies are built.
