# Empty compiler generated dependencies file for object_store.
# This may be replaced when dependencies are built.
