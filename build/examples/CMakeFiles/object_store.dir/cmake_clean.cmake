file(REMOVE_RECURSE
  "CMakeFiles/object_store.dir/object_store.cpp.o"
  "CMakeFiles/object_store.dir/object_store.cpp.o.d"
  "object_store"
  "object_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/object_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
