file(REMOVE_RECURSE
  "CMakeFiles/secure_pipeline.dir/secure_pipeline.cpp.o"
  "CMakeFiles/secure_pipeline.dir/secure_pipeline.cpp.o.d"
  "secure_pipeline"
  "secure_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
