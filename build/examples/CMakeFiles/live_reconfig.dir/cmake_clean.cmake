file(REMOVE_RECURSE
  "CMakeFiles/live_reconfig.dir/live_reconfig.cpp.o"
  "CMakeFiles/live_reconfig.dir/live_reconfig.cpp.o.d"
  "live_reconfig"
  "live_reconfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_reconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
