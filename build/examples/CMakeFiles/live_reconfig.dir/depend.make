# Empty dependencies file for live_reconfig.
# This may be replaced when dependencies are built.
