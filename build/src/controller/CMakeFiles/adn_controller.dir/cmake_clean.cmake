file(REMOVE_RECURSE
  "CMakeFiles/adn_controller.dir/cluster.cc.o"
  "CMakeFiles/adn_controller.dir/cluster.cc.o.d"
  "CMakeFiles/adn_controller.dir/controller.cc.o"
  "CMakeFiles/adn_controller.dir/controller.cc.o.d"
  "CMakeFiles/adn_controller.dir/migration.cc.o"
  "CMakeFiles/adn_controller.dir/migration.cc.o.d"
  "CMakeFiles/adn_controller.dir/placement.cc.o"
  "CMakeFiles/adn_controller.dir/placement.cc.o.d"
  "CMakeFiles/adn_controller.dir/telemetry.cc.o"
  "CMakeFiles/adn_controller.dir/telemetry.cc.o.d"
  "libadn_controller.a"
  "libadn_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adn_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
