file(REMOVE_RECURSE
  "libadn_controller.a"
)
