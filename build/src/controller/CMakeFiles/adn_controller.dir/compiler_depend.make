# Empty compiler generated dependencies file for adn_controller.
# This may be replaced when dependencies are built.
