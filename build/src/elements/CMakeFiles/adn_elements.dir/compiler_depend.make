# Empty compiler generated dependencies file for adn_elements.
# This may be replaced when dependencies are built.
