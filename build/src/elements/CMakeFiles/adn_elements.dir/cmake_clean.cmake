file(REMOVE_RECURSE
  "CMakeFiles/adn_elements.dir/filter_ops.cc.o"
  "CMakeFiles/adn_elements.dir/filter_ops.cc.o.d"
  "CMakeFiles/adn_elements.dir/handcoded.cc.o"
  "CMakeFiles/adn_elements.dir/handcoded.cc.o.d"
  "CMakeFiles/adn_elements.dir/library.cc.o"
  "CMakeFiles/adn_elements.dir/library.cc.o.d"
  "libadn_elements.a"
  "libadn_elements.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adn_elements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
