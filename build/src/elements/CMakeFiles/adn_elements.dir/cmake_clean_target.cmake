file(REMOVE_RECURSE
  "libadn_elements.a"
)
