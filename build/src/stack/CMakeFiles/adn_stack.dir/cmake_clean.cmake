file(REMOVE_RECURSE
  "CMakeFiles/adn_stack.dir/envoy.cc.o"
  "CMakeFiles/adn_stack.dir/envoy.cc.o.d"
  "CMakeFiles/adn_stack.dir/http2.cc.o"
  "CMakeFiles/adn_stack.dir/http2.cc.o.d"
  "CMakeFiles/adn_stack.dir/mesh_path.cc.o"
  "CMakeFiles/adn_stack.dir/mesh_path.cc.o.d"
  "CMakeFiles/adn_stack.dir/proto_codec.cc.o"
  "CMakeFiles/adn_stack.dir/proto_codec.cc.o.d"
  "libadn_stack.a"
  "libadn_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adn_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
