# Empty compiler generated dependencies file for adn_stack.
# This may be replaced when dependencies are built.
