file(REMOVE_RECURSE
  "libadn_stack.a"
)
