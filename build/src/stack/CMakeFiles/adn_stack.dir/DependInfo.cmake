
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stack/envoy.cc" "src/stack/CMakeFiles/adn_stack.dir/envoy.cc.o" "gcc" "src/stack/CMakeFiles/adn_stack.dir/envoy.cc.o.d"
  "/root/repo/src/stack/http2.cc" "src/stack/CMakeFiles/adn_stack.dir/http2.cc.o" "gcc" "src/stack/CMakeFiles/adn_stack.dir/http2.cc.o.d"
  "/root/repo/src/stack/mesh_path.cc" "src/stack/CMakeFiles/adn_stack.dir/mesh_path.cc.o" "gcc" "src/stack/CMakeFiles/adn_stack.dir/mesh_path.cc.o.d"
  "/root/repo/src/stack/proto_codec.cc" "src/stack/CMakeFiles/adn_stack.dir/proto_codec.cc.o" "gcc" "src/stack/CMakeFiles/adn_stack.dir/proto_codec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/adn_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/adn_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/adn_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
