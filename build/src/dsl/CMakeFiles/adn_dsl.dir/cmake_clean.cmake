file(REMOVE_RECURSE
  "CMakeFiles/adn_dsl.dir/ast.cc.o"
  "CMakeFiles/adn_dsl.dir/ast.cc.o.d"
  "CMakeFiles/adn_dsl.dir/lexer.cc.o"
  "CMakeFiles/adn_dsl.dir/lexer.cc.o.d"
  "CMakeFiles/adn_dsl.dir/parser.cc.o"
  "CMakeFiles/adn_dsl.dir/parser.cc.o.d"
  "CMakeFiles/adn_dsl.dir/token.cc.o"
  "CMakeFiles/adn_dsl.dir/token.cc.o.d"
  "libadn_dsl.a"
  "libadn_dsl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adn_dsl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
