file(REMOVE_RECURSE
  "libadn_dsl.a"
)
