# Empty compiler generated dependencies file for adn_dsl.
# This may be replaced when dependencies are built.
