file(REMOVE_RECURSE
  "CMakeFiles/adn_sim.dir/cost_model.cc.o"
  "CMakeFiles/adn_sim.dir/cost_model.cc.o.d"
  "CMakeFiles/adn_sim.dir/simulator.cc.o"
  "CMakeFiles/adn_sim.dir/simulator.cc.o.d"
  "CMakeFiles/adn_sim.dir/station.cc.o"
  "CMakeFiles/adn_sim.dir/station.cc.o.d"
  "CMakeFiles/adn_sim.dir/stats.cc.o"
  "CMakeFiles/adn_sim.dir/stats.cc.o.d"
  "libadn_sim.a"
  "libadn_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adn_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
