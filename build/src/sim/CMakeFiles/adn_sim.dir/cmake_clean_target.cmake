file(REMOVE_RECURSE
  "libadn_sim.a"
)
