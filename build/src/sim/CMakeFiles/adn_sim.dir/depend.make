# Empty dependencies file for adn_sim.
# This may be replaced when dependencies are built.
