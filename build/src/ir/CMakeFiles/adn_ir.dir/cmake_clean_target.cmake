file(REMOVE_RECURSE
  "libadn_ir.a"
)
