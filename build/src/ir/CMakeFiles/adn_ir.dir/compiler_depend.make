# Empty compiler generated dependencies file for adn_ir.
# This may be replaced when dependencies are built.
