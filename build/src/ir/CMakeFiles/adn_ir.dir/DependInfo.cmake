
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/analysis.cc" "src/ir/CMakeFiles/adn_ir.dir/analysis.cc.o" "gcc" "src/ir/CMakeFiles/adn_ir.dir/analysis.cc.o.d"
  "/root/repo/src/ir/element_ir.cc" "src/ir/CMakeFiles/adn_ir.dir/element_ir.cc.o" "gcc" "src/ir/CMakeFiles/adn_ir.dir/element_ir.cc.o.d"
  "/root/repo/src/ir/exec.cc" "src/ir/CMakeFiles/adn_ir.dir/exec.cc.o" "gcc" "src/ir/CMakeFiles/adn_ir.dir/exec.cc.o.d"
  "/root/repo/src/ir/expr.cc" "src/ir/CMakeFiles/adn_ir.dir/expr.cc.o" "gcc" "src/ir/CMakeFiles/adn_ir.dir/expr.cc.o.d"
  "/root/repo/src/ir/functions.cc" "src/ir/CMakeFiles/adn_ir.dir/functions.cc.o" "gcc" "src/ir/CMakeFiles/adn_ir.dir/functions.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/adn_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/adn_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/dsl/CMakeFiles/adn_dsl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
