file(REMOVE_RECURSE
  "CMakeFiles/adn_ir.dir/analysis.cc.o"
  "CMakeFiles/adn_ir.dir/analysis.cc.o.d"
  "CMakeFiles/adn_ir.dir/element_ir.cc.o"
  "CMakeFiles/adn_ir.dir/element_ir.cc.o.d"
  "CMakeFiles/adn_ir.dir/exec.cc.o"
  "CMakeFiles/adn_ir.dir/exec.cc.o.d"
  "CMakeFiles/adn_ir.dir/expr.cc.o"
  "CMakeFiles/adn_ir.dir/expr.cc.o.d"
  "CMakeFiles/adn_ir.dir/functions.cc.o"
  "CMakeFiles/adn_ir.dir/functions.cc.o.d"
  "libadn_ir.a"
  "libadn_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adn_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
