
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/backend.cc" "src/compiler/CMakeFiles/adn_compiler.dir/backend.cc.o" "gcc" "src/compiler/CMakeFiles/adn_compiler.dir/backend.cc.o.d"
  "/root/repo/src/compiler/compiler.cc" "src/compiler/CMakeFiles/adn_compiler.dir/compiler.cc.o" "gcc" "src/compiler/CMakeFiles/adn_compiler.dir/compiler.cc.o.d"
  "/root/repo/src/compiler/header_gen.cc" "src/compiler/CMakeFiles/adn_compiler.dir/header_gen.cc.o" "gcc" "src/compiler/CMakeFiles/adn_compiler.dir/header_gen.cc.o.d"
  "/root/repo/src/compiler/lower.cc" "src/compiler/CMakeFiles/adn_compiler.dir/lower.cc.o" "gcc" "src/compiler/CMakeFiles/adn_compiler.dir/lower.cc.o.d"
  "/root/repo/src/compiler/passes.cc" "src/compiler/CMakeFiles/adn_compiler.dir/passes.cc.o" "gcc" "src/compiler/CMakeFiles/adn_compiler.dir/passes.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/adn_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/dsl/CMakeFiles/adn_dsl.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/adn_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/adn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/adn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
