# Empty compiler generated dependencies file for adn_compiler.
# This may be replaced when dependencies are built.
