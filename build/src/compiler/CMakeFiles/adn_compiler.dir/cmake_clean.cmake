file(REMOVE_RECURSE
  "CMakeFiles/adn_compiler.dir/backend.cc.o"
  "CMakeFiles/adn_compiler.dir/backend.cc.o.d"
  "CMakeFiles/adn_compiler.dir/compiler.cc.o"
  "CMakeFiles/adn_compiler.dir/compiler.cc.o.d"
  "CMakeFiles/adn_compiler.dir/header_gen.cc.o"
  "CMakeFiles/adn_compiler.dir/header_gen.cc.o.d"
  "CMakeFiles/adn_compiler.dir/lower.cc.o"
  "CMakeFiles/adn_compiler.dir/lower.cc.o.d"
  "CMakeFiles/adn_compiler.dir/passes.cc.o"
  "CMakeFiles/adn_compiler.dir/passes.cc.o.d"
  "libadn_compiler.a"
  "libadn_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adn_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
