file(REMOVE_RECURSE
  "libadn_compiler.a"
)
