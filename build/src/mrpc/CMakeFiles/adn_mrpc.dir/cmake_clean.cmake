file(REMOVE_RECURSE
  "CMakeFiles/adn_mrpc.dir/adn_path.cc.o"
  "CMakeFiles/adn_mrpc.dir/adn_path.cc.o.d"
  "CMakeFiles/adn_mrpc.dir/engine.cc.o"
  "CMakeFiles/adn_mrpc.dir/engine.cc.o.d"
  "libadn_mrpc.a"
  "libadn_mrpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adn_mrpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
