file(REMOVE_RECURSE
  "libadn_mrpc.a"
)
