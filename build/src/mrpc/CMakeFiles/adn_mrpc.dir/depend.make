# Empty dependencies file for adn_mrpc.
# This may be replaced when dependencies are built.
