
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rpc/message.cc" "src/rpc/CMakeFiles/adn_rpc.dir/message.cc.o" "gcc" "src/rpc/CMakeFiles/adn_rpc.dir/message.cc.o.d"
  "/root/repo/src/rpc/schema.cc" "src/rpc/CMakeFiles/adn_rpc.dir/schema.cc.o" "gcc" "src/rpc/CMakeFiles/adn_rpc.dir/schema.cc.o.d"
  "/root/repo/src/rpc/table.cc" "src/rpc/CMakeFiles/adn_rpc.dir/table.cc.o" "gcc" "src/rpc/CMakeFiles/adn_rpc.dir/table.cc.o.d"
  "/root/repo/src/rpc/value.cc" "src/rpc/CMakeFiles/adn_rpc.dir/value.cc.o" "gcc" "src/rpc/CMakeFiles/adn_rpc.dir/value.cc.o.d"
  "/root/repo/src/rpc/wire.cc" "src/rpc/CMakeFiles/adn_rpc.dir/wire.cc.o" "gcc" "src/rpc/CMakeFiles/adn_rpc.dir/wire.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/adn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
