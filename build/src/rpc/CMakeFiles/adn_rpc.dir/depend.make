# Empty dependencies file for adn_rpc.
# This may be replaced when dependencies are built.
