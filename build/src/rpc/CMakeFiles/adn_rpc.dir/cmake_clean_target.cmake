file(REMOVE_RECURSE
  "libadn_rpc.a"
)
