file(REMOVE_RECURSE
  "CMakeFiles/adn_rpc.dir/message.cc.o"
  "CMakeFiles/adn_rpc.dir/message.cc.o.d"
  "CMakeFiles/adn_rpc.dir/schema.cc.o"
  "CMakeFiles/adn_rpc.dir/schema.cc.o.d"
  "CMakeFiles/adn_rpc.dir/table.cc.o"
  "CMakeFiles/adn_rpc.dir/table.cc.o.d"
  "CMakeFiles/adn_rpc.dir/value.cc.o"
  "CMakeFiles/adn_rpc.dir/value.cc.o.d"
  "CMakeFiles/adn_rpc.dir/wire.cc.o"
  "CMakeFiles/adn_rpc.dir/wire.cc.o.d"
  "libadn_rpc.a"
  "libadn_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adn_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
