file(REMOVE_RECURSE
  "libadn_core.a"
)
