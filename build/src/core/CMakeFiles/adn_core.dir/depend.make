# Empty dependencies file for adn_core.
# This may be replaced when dependencies are built.
