file(REMOVE_RECURSE
  "CMakeFiles/adn_core.dir/client_policy.cc.o"
  "CMakeFiles/adn_core.dir/client_policy.cc.o.d"
  "CMakeFiles/adn_core.dir/gateway.cc.o"
  "CMakeFiles/adn_core.dir/gateway.cc.o.d"
  "CMakeFiles/adn_core.dir/network.cc.o"
  "CMakeFiles/adn_core.dir/network.cc.o.d"
  "CMakeFiles/adn_core.dir/workload.cc.o"
  "CMakeFiles/adn_core.dir/workload.cc.o.d"
  "libadn_core.a"
  "libadn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
