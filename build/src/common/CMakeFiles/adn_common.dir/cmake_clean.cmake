file(REMOVE_RECURSE
  "CMakeFiles/adn_common.dir/codec.cc.o"
  "CMakeFiles/adn_common.dir/codec.cc.o.d"
  "CMakeFiles/adn_common.dir/rng.cc.o"
  "CMakeFiles/adn_common.dir/rng.cc.o.d"
  "CMakeFiles/adn_common.dir/status.cc.o"
  "CMakeFiles/adn_common.dir/status.cc.o.d"
  "CMakeFiles/adn_common.dir/strings.cc.o"
  "CMakeFiles/adn_common.dir/strings.cc.o.d"
  "libadn_common.a"
  "libadn_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adn_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
