# Empty dependencies file for adn_common.
# This may be replaced when dependencies are built.
