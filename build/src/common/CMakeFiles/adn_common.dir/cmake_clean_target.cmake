file(REMOVE_RECURSE
  "libadn_common.a"
)
