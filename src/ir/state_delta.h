// Reconfiguration toolkit: mutation deltas, key-slot slices and hot-swap
// compatibility checks over element state (paper §5.2).
//
// Live migration moves a shard of tabular state from a running source to a
// destination WITHOUT stopping the source: the bulk of the state is copied
// while the source keeps serving (and keeps mutating its tables), then the
// mutations that happened during the copy window — the delta — are replayed
// at the destination before traffic flips over. The blackout is proportional
// to the delta, not to the state size. This header holds the pieces every
// cutover implementation shares:
//
//  - StateBaseline / StateDelta: capture a per-row fingerprint of an
//    instance's keyed tables, then diff the live instance against it to
//    produce a compact, serializable upsert+delete log that ApplyTo replays
//    on the destination. Keyless tables (append-only logs) are excluded by
//    design: their rows are location-independent — the merged state hash is
//    an XOR over shards, so a log row is correct wherever it was written —
//    and new rows simply accumulate at the destination after the flip.
//  - CheckStateCompatible: the DSL hot-reload gate. New element code may
//    change logic freely but must keep the state-table layout (names and
//    schemas, in order) so the running tables carry over without copying.
//
// See docs/RECONFIG.md for the cutover state machine and the compatibility
// matrix these primitives enforce.
#pragma once

#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "ir/element_ir.h"
#include "ir/exec.h"

namespace adn::ir {

// Hot-reload gate: `next` may replace `running` on a live chain only when
// every state table matches by position, name and schema (so the running
// table vector binds to the new code unchanged). Logic, direction and even
// the element name may differ. Errors carry the first mismatch.
Status CheckStateCompatible(const ElementIr& running, const ElementIr& next);

// The serialized mutation log of one instance between a baseline capture and
// a diff: per keyed table, the rows inserted or changed since the baseline
// (upserts) and the primary keys that vanished (deletes). Replayed in table
// order by ApplyTo; replay is idempotent (upserts overwrite by key).
struct StateDelta {
  Bytes blob;
  uint64_t upserts = 0;
  uint64_t deletes = 0;

  uint64_t replayed() const { return upserts + deletes; }
  size_t bytes() const { return blob.size(); }
  bool empty() const { return upserts == 0 && deletes == 0; }

  // Replay onto `instance` (same element layout as the diffed source).
  Status ApplyTo(ElementInstance& instance) const;
};

// Per-row fingerprint of an instance's keyed tables at one instant,
// optionally restricted to one key slot (see Table::SliceByKeySlot). Diffing
// the live instance later yields exactly the mutations the copy window saw.
// Row identity is the 64-bit key hash (the same hash the shard router and
// the table index use); a hash collision would fold two keys into one delta
// entry, which at 2^-64 per pair is below the error floor of everything
// else in the system.
class StateBaseline {
 public:
  // `slot` < 0 captures every keyed row; otherwise only rows whose key hash
  // lands in `slot` of `num_slots` (the moving slice).
  static StateBaseline Capture(const ElementInstance& instance, int slot = -1,
                               size_t num_slots = 0);

  // Mutations of `instance`'s keyed tables since the capture, restricted to
  // the captured slot. Fails when the table layout changed underneath.
  Result<StateDelta> Diff(const ElementInstance& instance) const;

  size_t tracked_rows() const;

 private:
  struct RowMark {
    uint64_t row_hash = 0;
    rpc::Row key;  // PK values, in PK-column order (delete replay probe)
  };

  int slot_ = -1;
  size_t num_slots_ = 0;
  // Index-aligned with the instance's table vector; keyless tables hold an
  // empty map and never contribute entries.
  std::vector<std::unordered_map<uint64_t, RowMark>> tables_;
};

}  // namespace adn::ir
