// Burst (struct-of-arrays) execution tier for ChainProgram.
//
// High-speed packet stacks get their throughput from burst processing: the
// NDN-DPDK RX loop drains its rings in bursts, prefetches the PCCT entries
// every packet in the burst will touch, and only then processes them, so all
// per-packet control overhead is amortized across the burst. This file
// applies the same shape to compiled chain execution. ProcessBurst runs one
// *wavefront* over the instruction stream: the instruction pointer sweeps
// forward once, and at each instruction every live lane (message) that has
// reached it executes together. The opcode switch is therefore dispatched
// once per instruction per burst instead of once per instruction per
// message, and the branch predictor sees a stable opcode stream.
//
// Why a single forward sweep is legal: the compiler emits forward-only
// control flow (every jump target is a later ip; subprograms are inlined and
// jumped over), so per-lane instruction pointers only move forward and the
// global sweep ip = min over lanes never skips work. Lanes that diverge
// (kind guards, ACL misses, drops) simply carry a larger lane ip until the
// sweep catches up — SIMT-style reconvergence without a mask stack.
//
// Exact parity with the scalar tier is the contract (burst ≡ scalar ≡
// interpreter, enforced by tests/test_burst.cc including table state
// hashes). Message-local effects are trivially order-independent across
// lanes; the cross-lane shared state is tables, per-instance RNG streams and
// the nonce/processed/dropped counters. AnalyzeBurst proves at construction
// that executing instruction-major in lane order produces exactly the
// scalar message-major effect order:
//   - each element is entered (kBeginElement) at most once, so its
//     nonce/processed sequence is assigned in lane order = message order;
//   - each table is either read-only or mutated at exactly one site with no
//     lookups, so its row sequence is written in lane order = message order
//     (and every joined-row borrow stays stable for the whole burst);
//   - each element has at most one non-deterministic call site, so RNG
//     draws happen in lane order = message order.
// Programs that violate any rule fall back to the scalar loop — semantics
// never depend on which path ran.
//
// Observability does NOT force the scalar tier (the "Burst-mode telemetry"
// contract, docs/OBSERVABILITY.md): when obs::Enabled(), the wavefront
// batches its telemetry instead. One NowNs() pair is stamped per element
// segment per burst (kBeginElement fires once per element, proven by the
// analysis above), the entering-lane count is recorded, and after the
// wavefront each segment posts ONE Histogram::ObserveN delta — count
// parity with n scalar runs, values amortized to burst granularity. When
// tracing samples a lane, fixed-size POD span events (one root "rpc" span
// + one span per segment the lane entered, sharing the segment's burst
// timestamps) are written to this worker's SPSC event ring
// (obs/event_ring.h) — no strings, no allocation, no locks.
#include <algorithm>
#include <unordered_map>

#include "ir/expr.h"
#include "ir/program.h"

namespace adn::ir {

using rpc::Message;
using rpc::Row;
using rpc::Table;
using rpc::Value;
using rpc::ValueType;

namespace {
// Lane ip value meaning "lane finished" — larger than any real ip, so it
// never wins the min-sweep.
constexpr uint32_t kLaneDone = 0xFFFFFFFFu;
}  // namespace

// Defined in program.cc (anonymous there would not link); redeclared here to
// share the scalar comparison fast path.
bool FastCompare(dsl::BinaryOp op, const Value& a, const Value& b, bool* out);

void ChainExecutor::AnalyzeBurst() {
  const ChainProgram& p = *program_;
  burst_safe_ = true;
  prefetch_sites_.clear();

  // Tables are deduplicated by identity (element, table_idx), not by handle,
  // so two handles to one physical table share one mutation/lookup budget.
  auto table_key = [&](uint16_t handle) -> uint32_t {
    const ChainProgram::TableRef& ref = p.tables[handle];
    return (static_cast<uint32_t>(ref.element) << 16) | ref.table_idx;
  };
  std::unordered_map<uint32_t, std::pair<int, int>> tables;  // {mut, lookup}
  std::vector<int> nondet_sites(instances_.size(), 0);
  std::vector<int> begin_sites(instances_.size(), 0);
  std::vector<char> jump_target(p.code.size(), 0);
  int cur_elem = -1;  // last kBeginElement in code order; subprograms are
                      // emitted inline inside their element's range.

  for (size_t i = 0; i < p.code.size(); ++i) {
    const Instr& in = p.code[i];
    switch (in.op) {
      case Instr::Op::kJump:
      case Instr::Op::kJumpIfFalse:
      case Instr::Op::kJumpIfTrue:
      case Instr::Op::kLookupPk:
      case Instr::Op::kLookupScan:
      case Instr::Op::kSkipUnlessKind:
        if (in.d <= i) burst_safe_ = false;  // backward jump: no wavefront
        if (in.d < p.code.size()) jump_target[in.d] = 1;
        break;
      default:
        break;
    }
    switch (in.op) {
      case Instr::Op::kBeginElement:
        cur_elem = in.b;
        if (in.b >= begin_sites.size() || ++begin_sites[in.b] > 1) {
          burst_safe_ = false;
        }
        break;
      case Instr::Op::kLookupPk:
      case Instr::Op::kLookupScan:
        tables[table_key(in.b)].second++;
        break;
      case Instr::Op::kInsertRow:
        tables[table_key(in.b)].first++;
        break;
      case Instr::Op::kUpdateRows:
        tables[table_key(p.update_specs[in.b].table)].first++;
        break;
      case Instr::Op::kDeleteRows:
        tables[table_key(p.delete_specs[in.b].table)].first++;
        break;
      case Instr::Op::kCall:
        if (!p.functions[in.b]->deterministic) {
          if (cur_elem < 0 ||
              static_cast<size_t>(cur_elem) >= nondet_sites.size() ||
              ++nondet_sites[cur_elem] > 1) {
            burst_safe_ = false;
          }
        }
        break;
      default:
        break;
    }
  }
  for (const auto& [key, counts] : tables) {
    (void)key;
    const auto [mutations, lookups] = counts;
    if (mutations == 0) continue;               // read-only: any order
    if (mutations == 1 && lookups == 0) continue;  // one write site, no reads
    burst_safe_ = false;
  }
  if (!burst_safe_) return;

  // Prefetch plan: a kLoadField feeding a kLookupPk directly (the shape the
  // compiler emits for `JOIN t ON input.f = t.pk`) lets the burst resolve
  // and prefetch every lane's row before the wavefront starts. The cached
  // row may *replace* the lookup (consume) only when the key field provably
  // still holds its burst-start value at the lookup — no earlier store to
  // that field, no earlier projection that could remove it — and no jump
  // lands on the lookup ip (every lane arrives via the adjacent load).
  // Looked-up tables have no mutation sites (rule above), so the cached
  // Row* itself cannot dangle.
  for (size_t i = 1; i < p.code.size(); ++i) {
    const Instr& lookup = p.code[i];
    if (lookup.op != Instr::Op::kLookupPk) continue;
    const Instr& load = p.code[i - 1];
    if (load.op != Instr::Op::kLoadField || load.a != lookup.a) continue;
    bool consume = jump_target[i] == 0;
    for (size_t j = 0; j < i && consume; ++j) {
      const Instr& prior = p.code[j];
      if (prior.op == Instr::Op::kProject) consume = false;
      if (prior.op == Instr::Op::kStoreField && prior.b == load.b) {
        consume = false;
      }
    }
    PrefetchSite site;
    site.lookup_ip = static_cast<uint32_t>(i);
    site.field_id = load.b;
    site.table = lookup.b;
    site.consume = consume;
    prefetch_sites_.push_back(site);
  }

  // Size the SoA register file and lane state once; RunBurst only rebinds
  // slots. bregs_ never resizes afterwards, so &bregs_[i] is stable.
  bregs_.resize(static_cast<size_t>(program_->num_registers) *
                kMaxBurstLanes);
  bslot_.resize(bregs_.size());
  lane_ip_.resize(kMaxBurstLanes);
  lane_join_.resize(kMaxBurstLanes);
  lane_cur_.resize(kMaxBurstLanes);
  lane_ctx_.resize(kMaxBurstLanes);
  // Burst-mode telemetry scratch: one slot per element segment (timestamps,
  // entering-lane counts, entry order) + one seg-entry bitmask per lane.
  bseg_start_.resize(instances_.size());
  bseg_end_.resize(instances_.size());
  bseg_lanes_.resize(instances_.size());
  bseg_order_.resize(instances_.size());
  lane_seg_mask_.resize(kMaxBurstLanes);
}

Value ChainExecutor::TakeBurstReg(uint16_t r, size_t lane, size_t stride) {
  const size_t idx = static_cast<size_t>(r) * stride + lane;
  if (bslot_[idx] == &bregs_[idx]) return std::move(bregs_[idx]);
  return *bslot_[idx];
}

void ChainExecutor::ProcessBurst(Message* msgs, size_t n, int64_t now_ns,
                                 ProcessResult* results) {
  // Scalar fallback: analysis said no, or a single message (nothing to
  // amortize). Identical outcomes either way. Observability is NOT a
  // fallback condition — the wavefront batches its telemetry (header
  // comment / docs/OBSERVABILITY.md "Burst-mode telemetry").
  if (!burst_safe_ || n < 2) {
    for (size_t i = 0; i < n; ++i) results[i] = Process(msgs[i], now_ns);
    return;
  }
  size_t off = 0;
  while (off < n) {
    const size_t k = std::min(n - off, kMaxBurstLanes);
    if (k < 2) {
      results[off] = Process(msgs[off], now_ns);
    } else {
      RunBurst(msgs + off, k, now_ns, results + off);
    }
    off += k;
  }
}

void ChainExecutor::RunBurst(Message* msgs, size_t k, int64_t now_ns,
                             ProcessResult* results) {
  const ChainProgram& p = *program_;
  const Instr* code = p.code.data();

  // Registers index as [r * k + lane]: a narrow burst keeps its SoA working
  // set dense instead of striding at kMaxBurstLanes.
  const size_t w = k;
  for (size_t r = 0; r < p.num_registers; ++r) {
    for (size_t l = 0; l < k; ++l) {
      bslot_[r * w + l] = &bregs_[r * w + l];
    }
  }
  for (size_t l = 0; l < k; ++l) {
    lane_ip_[l] = 0;
    lane_join_[l] = nullptr;
    lane_cur_[l] = -1;
    lane_ctx_[l] = FunctionContext{};
    lane_ctx_[l].message = &msgs[l];
    lane_ctx_[l].now_ns = now_ns;
    results[l] = ProcessResult::Pass();
  }

  // Prefetch stage (NDN-DPDK PCCT shape): resolve every lane's join row for
  // every prefetch site before executing anything, issuing a read prefetch
  // for each row's storage. By the time the wavefront reaches the lookup the
  // lines are warm; at consume-eligible sites the cached row also replaces
  // the second hash probe entirely.
  if (!prefetch_sites_.empty()) {
    pf_rows_.assign(prefetch_sites_.size() * k, nullptr);
    for (size_t s = 0; s < prefetch_sites_.size(); ++s) {
      const Table* table = TableAt(prefetch_sites_[s].table);
      const uint16_t fid = prefetch_sites_[s].field_id;
      for (size_t l = 0; l < k; ++l) {
        pf_rows_[s * k + l] =
            table->PrefetchSingleKey(FieldOrNull(msgs[l], fid));
      }
    }
  }

  // Burst-mode telemetry state: the wavefront stamps one clock pair per
  // element segment (at its single kBeginElement) and counts entering
  // lanes; FinishBurstTelemetry turns those into batched histogram deltas
  // and sampled span events after the wavefront. One Enabled() load per
  // burst, not per message.
  const bool timing = obs::Enabled();
  int64_t burst_start = 0;
  int cur_seg = -1;
  size_t entered_segs = 0;
  if (timing) {
    burst_start = obs::NowNs();
    for (size_t l = 0; l < k; ++l) lane_seg_mask_[l] = 0;
  }

  // Drop/abort bookkeeping identical to the scalar tier: any non-pass
  // outcome counts as a drop on the element that produced it.
  auto abort_lane = [&](size_t l, std::string message) {
    if (lane_cur_[l] >= 0) instances_[lane_cur_[l]]->NoteDropped();
    results[l].outcome = ProcessOutcome::kDropAbort;
    results[l].abort_message = std::move(message);
    lane_ip_[l] = kLaneDone;
  };

  // The wavefront: ip sweeps forward; at each step every lane that has
  // reached ip executes the instruction (in lane order — this is what makes
  // cross-lane effect order equal scalar message order), then ip advances to
  // the minimum lane ip. Forward-only jumps guarantee progress; kLaneDone
  // falls out of the min when every lane has returned.
  uint32_t ip = 0;
  while (ip != kLaneDone) {
    const Instr& in = code[ip];
    const uint32_t next = ip + 1;
    switch (in.op) {
      case Instr::Op::kLoadConst:
        for (size_t l = 0; l < k; ++l) {
          if (lane_ip_[l] != ip) continue;
          bslot_[in.a * w + l] = &p.consts[in.b];
          lane_ip_[l] = next;
        }
        break;
      case Instr::Op::kLoadField:
        for (size_t l = 0; l < k; ++l) {
          if (lane_ip_[l] != ip) continue;
          bslot_[in.a * w + l] = &FieldOrNull(msgs[l], in.b);
          lane_ip_[l] = next;
        }
        break;
      case Instr::Op::kLoadJoin:
        for (size_t l = 0; l < k; ++l) {
          if (lane_ip_[l] != ip) continue;
          if (lane_join_[l] == nullptr) {
            abort_lane(l, Status(ErrorCode::kFailedPrecondition,
                                 "join field read outside a JOIN context")
                              .ToString());
            continue;
          }
          if (in.b >= lane_join_[l]->size()) {
            abort_lane(l, Status(ErrorCode::kInternal,
                                 "join column out of range")
                              .ToString());
            continue;
          }
          bslot_[in.a * w + l] = &(*lane_join_[l])[in.b];
          lane_ip_[l] = next;
        }
        break;
      case Instr::Op::kMaterialize:
        for (size_t l = 0; l < k; ++l) {
          if (lane_ip_[l] != ip) continue;
          const size_t idx = in.a * w + l;
          if (bslot_[idx] != &bregs_[idx]) {
            bregs_[idx] = *bslot_[idx];
            bslot_[idx] = &bregs_[idx];
          }
          lane_ip_[l] = next;
        }
        break;
      case Instr::Op::kCoerceBool:
        for (size_t l = 0; l < k; ++l) {
          if (lane_ip_[l] != ip) continue;
          const size_t idx = in.a * w + l;
          bregs_[idx] = Value(ValueTruthy(*bslot_[idx]));
          bslot_[idx] = &bregs_[idx];
          lane_ip_[l] = next;
        }
        break;
      case Instr::Op::kUnary:
        for (size_t l = 0; l < k; ++l) {
          if (lane_ip_[l] != ip) continue;
          auto v = EvalUnaryValue(static_cast<dsl::UnaryOp>(in.aux),
                                  *bslot_[in.b * w + l]);
          if (!v.ok()) {
            abort_lane(l, v.error().ToString());
            continue;
          }
          const size_t idx = in.a * w + l;
          bregs_[idx] = std::move(v).value();
          bslot_[idx] = &bregs_[idx];
          lane_ip_[l] = next;
        }
        break;
      case Instr::Op::kBinary: {
        const dsl::BinaryOp op = static_cast<dsl::BinaryOp>(in.aux);
        for (size_t l = 0; l < k; ++l) {
          if (lane_ip_[l] != ip) continue;
          const size_t idx = in.a * w + l;
          bool fast = false;
          if (FastCompare(op, *bslot_[in.b * w + l], *bslot_[in.c * w + l],
                          &fast)) {
            bregs_[idx] = Value(fast);
            bslot_[idx] = &bregs_[idx];
            lane_ip_[l] = next;
            continue;
          }
          auto v = EvalBinaryValue(op, *bslot_[in.b * w + l],
                                   *bslot_[in.c * w + l]);
          if (!v.ok()) {
            abort_lane(l, v.error().ToString());
            continue;
          }
          bregs_[idx] = std::move(v).value();
          bslot_[idx] = &bregs_[idx];
          lane_ip_[l] = next;
        }
        break;
      }
      case Instr::Op::kCall:
        for (size_t l = 0; l < k; ++l) {
          if (lane_ip_[l] != ip) continue;
          if (in.aux != 0) {  // len() reads the size in place
            const Value& v0 = *bslot_[in.c * w + l];
            if (v0.type() == ValueType::kText) {
              const size_t idx = in.a * w + l;
              bregs_[idx] = Value(static_cast<int64_t>(v0.AsText().size()));
              bslot_[idx] = &bregs_[idx];
              lane_ip_[l] = next;
              continue;
            }
            if (v0.type() == ValueType::kBytes) {
              const size_t idx = in.a * w + l;
              bregs_[idx] = Value(static_cast<int64_t>(v0.AsBytes().size()));
              bslot_[idx] = &bregs_[idx];
              lane_ip_[l] = next;
              continue;
            }
          }
          call_args_.clear();
          for (uint32_t i = 0; i < in.d; ++i) {
            call_args_.push_back(
                TakeBurstReg(static_cast<uint16_t>(in.c + i), l, w));
          }
          auto v = p.functions[in.b]->eval(lane_ctx_[l], call_args_);
          if (!v.ok()) {
            abort_lane(l, v.error().ToString());
            continue;
          }
          const size_t idx = in.a * w + l;
          bregs_[idx] = std::move(v).value();
          bslot_[idx] = &bregs_[idx];
          lane_ip_[l] = next;
        }
        break;
      case Instr::Op::kJump:
        for (size_t l = 0; l < k; ++l) {
          if (lane_ip_[l] == ip) lane_ip_[l] = in.d;
        }
        break;
      case Instr::Op::kJumpIfFalse:
        for (size_t l = 0; l < k; ++l) {
          if (lane_ip_[l] != ip) continue;
          lane_ip_[l] = ValueTruthy(*bslot_[in.a * w + l]) ? next : in.d;
        }
        break;
      case Instr::Op::kJumpIfTrue:
        for (size_t l = 0; l < k; ++l) {
          if (lane_ip_[l] != ip) continue;
          lane_ip_[l] = ValueTruthy(*bslot_[in.a * w + l]) ? in.d : next;
        }
        break;
      case Instr::Op::kLookupPk: {
        // Consume-eligible prefetch site: the cached row IS the lookup
        // result (key unchanged since the prefetch stage, table immutable
        // for the burst). Otherwise probe normally — rows are still warm
        // from the prefetch stage.
        const PrefetchSite* site = nullptr;
        size_t site_idx = 0;
        for (size_t s = 0; s < prefetch_sites_.size(); ++s) {
          if (prefetch_sites_[s].lookup_ip == ip) {
            site = &prefetch_sites_[s];
            site_idx = s;
            break;
          }
        }
        Table* table = TableAt(in.b);
        for (size_t l = 0; l < k; ++l) {
          if (lane_ip_[l] != ip) continue;
          const Row* match =
              (site != nullptr && site->consume)
                  ? pf_rows_[site_idx * k + l]
                  : table->LookupSingleKey(*bslot_[in.a * w + l]);
          if (match == nullptr) {
            lane_ip_[l] = in.d;
          } else {
            lane_join_[l] = match;
            lane_ip_[l] = next;
          }
        }
        break;
      }
      case Instr::Op::kLookupScan: {
        Table* table = TableAt(in.b);
        const size_t col = in.c;
        for (size_t l = 0; l < k; ++l) {
          if (lane_ip_[l] != ip) continue;
          const Value& key = *bslot_[in.a * w + l];
          const Row* match = table->FindFirst(
              [&](const Row& row) { return row[col].EqualsValue(key); });
          if (match == nullptr) {
            lane_ip_[l] = in.d;
          } else {
            lane_join_[l] = match;
            lane_ip_[l] = next;
          }
        }
        break;
      }
      case Instr::Op::kClearJoin:
        for (size_t l = 0; l < k; ++l) {
          if (lane_ip_[l] != ip) continue;
          lane_join_[l] = nullptr;
          lane_ip_[l] = next;
        }
        break;
      case Instr::Op::kStoreField:
        for (size_t l = 0; l < k; ++l) {
          if (lane_ip_[l] != ip) continue;
          msgs[l].SetField(field_gids_[in.b], TakeBurstReg(in.a, l, w));
          lane_ip_[l] = next;
        }
        break;
      case Instr::Op::kProject: {
        const std::vector<rpc::FieldId>& keep = keep_gids_[in.b];
        for (size_t l = 0; l < k; ++l) {
          if (lane_ip_[l] != ip) continue;
          msgs[l].ProjectFields(keep);
          lane_ip_[l] = next;
        }
        break;
      }
      case Instr::Op::kRouteDest:
        for (size_t l = 0; l < k; ++l) {
          if (lane_ip_[l] != ip) continue;
          if (const Value* dest = msgs[l].FindField(dest_fid_);
              dest != nullptr && dest->type() == ValueType::kInt) {
            msgs[l].set_destination(
                static_cast<rpc::EndpointId>(dest->AsInt()));
          }
          lane_ip_[l] = next;
        }
        break;
      case Instr::Op::kInsertRow: {
        // Lanes insert in lane order == the order scalar execution would
        // have visited the messages: identical row sequence.
        Table* table = TableAt(in.b);
        for (size_t l = 0; l < k; ++l) {
          if (lane_ip_[l] != ip) continue;
          Row row = table->TakeSpareRow();
          row.reserve(in.d);
          for (uint32_t i = 0; i < in.d; ++i) {
            row.push_back(TakeBurstReg(static_cast<uint16_t>(in.a + i), l, w));
          }
          if (Status s = table->Insert(std::move(row)); !s.ok()) {
            abort_lane(l, s.ToString());
            continue;
          }
          lane_ip_[l] = next;
        }
        break;
      }
      case Instr::Op::kUpdateRows:
        // Row-loop subprograms run per lane (in lane order) on the scalar
        // register file — exactly one mutation site per table, so lane
        // order here is scalar message order for that table.
        for (size_t l = 0; l < k; ++l) {
          if (lane_ip_[l] != ip) continue;
          RunState rs;
          rs.msg = &msgs[l];
          rs.fn_ctx = lane_ctx_[l];
          rs.cur = lane_cur_[l];
          if (Status s = ExecUpdate(p.update_specs[in.b], rs); !s.ok()) {
            abort_lane(l, s.ToString());
            continue;
          }
          lane_ip_[l] = next;
        }
        break;
      case Instr::Op::kDeleteRows:
        for (size_t l = 0; l < k; ++l) {
          if (lane_ip_[l] != ip) continue;
          RunState rs;
          rs.msg = &msgs[l];
          rs.fn_ctx = lane_ctx_[l];
          rs.cur = lane_cur_[l];
          if (Status s = ExecDelete(p.delete_specs[in.b], rs); !s.ok()) {
            abort_lane(l, s.ToString());
            continue;
          }
          lane_ip_[l] = next;
        }
        break;
      case Instr::Op::kDrop:
        for (size_t l = 0; l < k; ++l) {
          if (lane_ip_[l] != ip) continue;
          if (lane_cur_[l] >= 0) instances_[lane_cur_[l]]->NoteDropped();
          results[l].outcome = in.aux != 0 ? ProcessOutcome::kDropSilent
                                           : ProcessOutcome::kDropAbort;
          results[l].abort_message = p.strings[in.b];
          lane_ip_[l] = kLaneDone;
        }
        break;
      case Instr::Op::kBeginElement: {
        // Lane order == message order, so this element's processed count
        // and nonce sequence advance exactly as n scalar calls would.
        ElementInstance* inst = instances_[in.b];
        if (timing) {
          // Segment boundary: close the previous segment's window, open
          // this one — one clock read per element per burst, amortized
          // over every lane (the burst-granularity guarantee).
          const int64_t now = obs::NowNs();
          if (cur_seg >= 0) bseg_end_[cur_seg] = now;
          cur_seg = in.b;
          bseg_start_[in.b] = now;
          bseg_lanes_[in.b] = 0;
          bseg_order_[entered_segs++] = in.b;
          const uint64_t bit = in.b < 64 ? (1ull << in.b) : 0;
          for (size_t l = 0; l < k; ++l) {
            if (lane_ip_[l] != ip) continue;
            inst->NoteProcessed();
            lane_ctx_[l].rng = &inst->rng();
            lane_ctx_[l].nonce = inst->BumpNonce();
            lane_cur_[l] = in.b;
            lane_join_[l] = nullptr;
            lane_ip_[l] = next;
            ++bseg_lanes_[in.b];
            lane_seg_mask_[l] |= bit;
          }
        } else {
          for (size_t l = 0; l < k; ++l) {
            if (lane_ip_[l] != ip) continue;
            inst->NoteProcessed();
            lane_ctx_[l].rng = &inst->rng();
            lane_ctx_[l].nonce = inst->BumpNonce();
            lane_cur_[l] = in.b;
            lane_join_[l] = nullptr;
            lane_ip_[l] = next;
          }
        }
        break;
      }
      case Instr::Op::kSkipUnlessKind:
        for (size_t l = 0; l < k; ++l) {
          if (lane_ip_[l] != ip) continue;
          const bool hit =
              (in.aux & (1u << static_cast<uint8_t>(msgs[l].kind()))) != 0;
          lane_ip_[l] = hit ? next : in.d;
        }
        break;
      case Instr::Op::kReturnPass:
        for (size_t l = 0; l < k; ++l) {
          if (lane_ip_[l] != ip) continue;
          results[l] = ProcessResult::Pass();
          lane_ip_[l] = kLaneDone;
        }
        break;
      case Instr::Op::kReturnValue:
        for (size_t l = 0; l < k; ++l) {
          if (lane_ip_[l] != ip) continue;
          abort_lane(l, Status(ErrorCode::kInternal,
                               "return_value reached outside a subprogram")
                            .ToString());
        }
        break;
    }
    uint32_t min_ip = kLaneDone;
    for (size_t l = 0; l < k; ++l) min_ip = std::min(min_ip, lane_ip_[l]);
    ip = min_ip;
  }

  if (timing && cur_seg >= 0) {
    FinishBurstTelemetry(msgs, k, burst_start, cur_seg, entered_segs);
  }
}

void ChainExecutor::FinishBurstTelemetry(Message* msgs, size_t k,
                                         int64_t burst_start, int cur_seg,
                                         size_t entered_segs) {
  const int64_t burst_end = obs::NowNs();
  bseg_end_[cur_seg] = burst_end;
  // One batched histogram delta per element segment: count advances by the
  // number of lanes that entered (exact parity with n scalar runs, enforced
  // by test_burst), the observed value is the segment's wavefront window
  // amortized over those lanes — burst-granularity timing by contract.
  for (size_t s = 0; s < entered_segs; ++s) {
    const uint16_t e = bseg_order_[s];
    const uint32_t lanes = bseg_lanes_[e];
    if (lanes == 0) continue;
    const double mean = static_cast<double>(bseg_end_[e] - bseg_start_[e]) /
                        static_cast<double>(lanes);
    elem_hist_[e]->ObserveN(mean, lanes);
  }
  obs::Tracer& tracer = obs::Tracer::Default();
  if (!tracer.tracing_enabled()) return;
  // POD trace records straight into this worker's SPSC ring: one burst
  // marker, then for each sampled lane a root "rpc" span (the whole burst
  // window) with one child span per segment the lane entered, sharing the
  // segment's burst timestamps. No strings, no allocation, no locks.
  obs::TraceEvent burst_ev;
  burst_ev.kind = obs::EventKind::kBurst;
  burst_ev.name_id = burst_name_id_;
  burst_ev.processor_id = proc_name_id_;
  burst_ev.tier = static_cast<uint8_t>(trace_tier_);
  burst_ev.start_ns = burst_start;
  burst_ev.end_ns = burst_end;
  burst_ev.arg = k;
  obs::EmitEvent(burst_ev);
  uint32_t sampled = 0;
  uint64_t spans_emitted = 0;
  for (size_t l = 0; l < k; ++l) {
    const uint64_t id = msgs[l].id();
    if (!tracer.ShouldSample(id)) continue;
    ++sampled;
    obs::TraceEvent root;
    root.kind = obs::EventKind::kSpan;
    root.trace_id = id;
    root.span_id = obs::NextSpanId();
    root.name_id = rpc_name_id_;
    root.processor_id = proc_name_id_;
    root.tier = static_cast<uint8_t>(trace_tier_);
    root.start_ns = burst_start;
    root.end_ns = burst_end;
    root.arg = k;
    obs::EmitEvent(root);
    ++spans_emitted;
    for (size_t s = 0; s < entered_segs; ++s) {
      const uint16_t e = bseg_order_[s];
      // Skip segments this lane never entered (tracked exactly for the
      // first 64 segments; beyond that the span is included).
      if (e < 64 && (lane_seg_mask_[l] & (1ull << e)) == 0) continue;
      obs::TraceEvent child = root;
      child.span_id = obs::NextSpanId();
      child.parent_id = root.span_id;
      child.name_id = elem_name_ids_[e];
      child.start_ns = bseg_start_[e];
      child.end_ns = bseg_end_[e];
      child.arg = bseg_lanes_[e];
      obs::EmitEvent(child);
      ++spans_emitted;
    }
  }
  if (sampled > 0) {
    traces_sampled_->Inc(sampled);
    spans_total_->Inc(spans_emitted);
  }
}

}  // namespace adn::ir
