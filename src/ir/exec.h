// ElementInstance: a deployed, stateful instance of a compiled element.
//
// This is the "generated implementation" the data-plane processors execute
// per message. The code (ElementIr) is immutable and shared; the state
// (tables, RNG, nonce counter) is instance-local and fully serializable,
// which is what lets the controller migrate, split and merge instances
// without disrupting the application (paper §5.2).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "ir/element_ir.h"
#include "rpc/message.h"
#include "rpc/table.h"

namespace adn::obs {
class Histogram;
}

namespace adn::ir {

enum class ProcessOutcome : uint8_t {
  kPass,        // message continues down the chain (possibly modified)
  kDropAbort,   // message dropped; network must answer the caller with error
  kDropSilent,  // message dropped silently
  kReply,       // message rewritten in place into a response (cache hit);
                // the chain stops and the runtime routes it back to the
                // caller as a SUCCESS, never as a drop
};

struct ProcessResult {
  ProcessOutcome outcome = ProcessOutcome::kPass;
  std::string abort_message;  // set when kDropAbort

  static ProcessResult Pass() { return {}; }
};

class ElementInstance {
 public:
  // `seed` drives random() and encryption nonces for this instance.
  ElementInstance(std::shared_ptr<const ElementIr> code, uint64_t seed);
  ~ElementInstance();

  ElementInstance(const ElementInstance&) = delete;
  ElementInstance& operator=(const ElementInstance&) = delete;

  const ElementIr& code() const { return *code_; }
  const std::string& name() const { return code_->name; }

  // Execute the element's statements on `m` in place. `now_ns` is the
  // processor's clock (simulated or wall), exposed to now().
  ProcessResult Process(rpc::Message& m, int64_t now_ns);

  // Does this element run for the given message kind?
  bool AppliesTo(rpc::MessageKind kind) const;

  // --- State access (controller populates rule tables etc.) ---------------
  rpc::Table* FindTable(std::string_view name);
  const rpc::Table* FindTable(std::string_view name) const;
  const std::vector<rpc::Table>& tables() const { return tables_; }

  // --- Compiled-executor API ----------------------------------------------
  // The ChainProgram executor (ir/program.h) runs against this instance's
  // state through index-based handles — resolved per call, so RestoreState
  // swapping the table vector never leaves a dangling handle — and drives
  // the same counters/streams Process would, keeping the two tiers
  // observably identical.
  rpc::Table& TableAt(size_t idx) { return tables_[idx]; }
  Rng& rng() { return rng_; }
  uint64_t BumpNonce() { return ++nonce_counter_; }
  void NoteProcessed() { ++processed_; }
  void NoteDropped() { ++dropped_; }

  // --- Migration support ----------------------------------------------------
  // Snapshot/restore every table (format: varint count, then table snaps).
  Bytes SnapshotState() const;
  Status RestoreState(std::span<const uint8_t> snapshot);
  // Shard every table by key hash into `n` snapshots for scale-out.
  Result<std::vector<Bytes>> SplitState(size_t n) const;
  // Merge a peer's snapshot into this instance (scale-in).
  Status MergeState(std::span<const uint8_t> snapshot);
  uint64_t StateContentHash() const;

  // --- Live reconfiguration (see docs/RECONFIG.md) --------------------------
  // Snapshot only key slot `slot`'s keyed rows, in the SnapshotState format
  // (keyless tables serialize empty — append-log rows never move with a
  // slice). The destination absorbs it with MergeState.
  Bytes SnapshotSlice(size_t slot, size_t num_slots) const;
  // Drop the slice locally after handoff; returns rows erased.
  size_t EraseSlice(size_t slot, size_t num_slots);
  // SplitState under the two-level slot partition ((key hash % num_slots)
  // % n) — the same function EnginePool's slot router applies to messages.
  Result<std::vector<Bytes>> SplitStateSlotted(size_t n,
                                               size_t num_slots) const;
  // DSL hot-reload: swap in new element code, keeping the live tables, RNG
  // and counters. Fails (kFailedPrecondition, via CheckStateCompatible)
  // unless the new code declares the same state tables.
  Status ReplaceCode(std::shared_ptr<const ElementIr> new_code);

  // Statistics.
  uint64_t processed() const { return processed_; }
  uint64_t dropped() const { return dropped_; }

  // --- Cache elements (code().IsCache()) ------------------------------------
  // Hit/miss/fill counters for benches and tests; zero for non-cache
  // elements. `cache_hits` counts request-path kReply short-circuits.
  uint64_t cache_hits() const;
  uint64_t cache_misses() const;
  uint64_t cache_fills() const;
  uint64_t cache_expired() const;
  uint64_t cache_evicted() const;

 private:
  struct CacheRuntime;

  ProcessResult RunStatement(const StmtIr& stmt, rpc::Message& m,
                             EvalContext& ctx);
  // Per-message entry point for cache elements: request-path lookup
  // (kReply on hit, pending record on miss) and response-path fill with
  // ARC admission/eviction. See docs/ARCHITECTURE.md "Reply-path
  // short-circuit".
  ProcessResult RunCache(rpc::Message& m, int64_t now_ns);
  // ARC recency/frequency metadata lives outside the state table and is
  // rebuilt lazily from the rows after anything replaces or merges the
  // tables (restore/merge/slice-erase/hot-reload) — the table alone is the
  // durable state, which is what keeps StateContentHash migration-invariant.
  void InvalidateCacheRuntime();
  CacheRuntime& EnsureCacheRuntime();
  // Resolve the interned span-name id and the element-latency histogram
  // once (construction / ReplaceCode), so Process never builds a label
  // string or takes the registry mutex per message.
  void ResolveObsInstruments();

  std::shared_ptr<const ElementIr> code_;
  uint32_t obs_name_id_ = 0;  // obs::NameId of code_->name
  obs::Histogram* obs_hist_ = nullptr;
  std::vector<rpc::Table> tables_;
  Rng rng_;
  uint64_t nonce_counter_;
  uint64_t processed_ = 0;
  uint64_t dropped_ = 0;
  std::unique_ptr<CacheRuntime> cache_rt_;  // null unless code().IsCache()
};

}  // namespace adn::ir
