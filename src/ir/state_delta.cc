#include "ir/state_delta.h"

#include "rpc/wire.h"

namespace adn::ir {

using rpc::Row;
using rpc::Table;
using rpc::Value;

Status CheckStateCompatible(const ElementIr& running, const ElementIr& next) {
  if (next.state_tables.size() != running.state_tables.size()) {
    return Status(ErrorCode::kFailedPrecondition,
                  "hot swap of '" + running.name + "' -> '" + next.name +
                      "' changes the number of state tables (" +
                      std::to_string(running.state_tables.size()) + " -> " +
                      std::to_string(next.state_tables.size()) +
                      "); drain and redeploy instead");
  }
  for (size_t i = 0; i < next.state_tables.size(); ++i) {
    if (next.state_tables[i].first != running.state_tables[i].first) {
      return Status(ErrorCode::kFailedPrecondition,
                    "hot swap of '" + running.name + "' -> '" + next.name +
                        "' renames state table '" +
                        running.state_tables[i].first + "' to '" +
                        next.state_tables[i].first +
                        "'; drain and redeploy instead");
    }
    if (!(next.state_tables[i].second == running.state_tables[i].second)) {
      return Status(ErrorCode::kFailedPrecondition,
                    "hot swap of '" + running.name + "' -> '" + next.name +
                        "' changes the schema of state table '" +
                        running.state_tables[i].first +
                        "'; drain and redeploy instead");
    }
  }
  return Status::Ok();
}

StateBaseline StateBaseline::Capture(const ElementInstance& instance, int slot,
                                     size_t num_slots) {
  StateBaseline b;
  b.slot_ = slot;
  b.num_slots_ = num_slots;
  b.tables_.resize(instance.tables().size());
  for (size_t t = 0; t < instance.tables().size(); ++t) {
    const Table& table = instance.tables()[t];
    if (!table.HasPrimaryKey()) continue;
    auto& marks = b.tables_[t];
    if (slot >= 0) {
      // Slot-scoped baseline (live migration): index walk — the table's
      // cached key hashes are filtered by one integer mod per row, so the
      // capture touches only the moving slot's rows.
      table.ForEachKeySlotRow(
          static_cast<size_t>(slot), num_slots, [&](const Row& row) {
            marks.emplace(table.RowKeyHash(row),
                          RowMark{rpc::HashRow(row), table.KeyOf(row)});
          });
    } else {
      marks.reserve(table.RowCount());
      for (const Row& row : table.rows()) {
        marks.emplace(table.RowKeyHash(row),
                      RowMark{rpc::HashRow(row), table.KeyOf(row)});
      }
    }
  }
  return b;
}

Result<StateDelta> StateBaseline::Diff(const ElementInstance& instance) const {
  if (instance.tables().size() != tables_.size()) {
    return Error(ErrorCode::kFailedPrecondition,
                 "table layout of '" + instance.name() +
                     "' changed since the baseline capture");
  }
  StateDelta delta;
  ByteWriter w(delta.blob);
  w.WriteVarint(tables_.size());
  for (size_t t = 0; t < tables_.size(); ++t) {
    const Table& table = instance.tables()[t];
    const auto& marks = tables_[t];
    std::vector<const Row*> upserts;
    size_t seen = 0;
    const auto classify = [&](const Row& row) {
      auto it = marks.find(table.RowKeyHash(row));
      if (it == marks.end()) {
        upserts.push_back(&row);  // inserted since the baseline
      } else {
        ++seen;
        if (it->second.row_hash != rpc::HashRow(row)) {
          upserts.push_back(&row);  // updated in place (by key)
        }
      }
    };
    if (table.HasPrimaryKey()) {
      if (slot_ >= 0) {
        // Cutover-window diff (live migration): index walk over the cached
        // key hashes — work scales with the moving slot, not the table, so
        // the blackout stays delta-sized no matter how much state the
        // element carries.
        table.ForEachKeySlotRow(static_cast<size_t>(slot_), num_slots_,
                                classify);
      } else {
        for (const Row& row : table.rows()) classify(row);
      }
    }
    std::vector<const RowMark*> deletes;
    if (seen < marks.size()) {
      // Some baseline keys vanished; name them for replay.
      for (const auto& [kh, mark] : marks) {
        if (table.LookupByKey(mark.key).empty()) deletes.push_back(&mark);
      }
    }
    w.WriteVarint(upserts.size());
    for (const Row* row : upserts) {
      for (const Value& v : *row) rpc::EncodeValue(v, w);
    }
    w.WriteVarint(deletes.size());
    for (const RowMark* mark : deletes) {
      for (const Value& v : mark->key) rpc::EncodeValue(v, w);
    }
    delta.upserts += upserts.size();
    delta.deletes += deletes.size();
  }
  return delta;
}

size_t StateBaseline::tracked_rows() const {
  size_t n = 0;
  for (const auto& marks : tables_) n += marks.size();
  return n;
}

Status StateDelta::ApplyTo(ElementInstance& instance) const {
  ByteReader r(blob);
  ADN_ASSIGN_OR_RETURN(uint64_t count, r.ReadVarint());
  if (count != instance.tables().size()) {
    return Status(ErrorCode::kInvalidArgument,
                  "delta has " + std::to_string(count) + " tables, element " +
                      instance.name() + " expects " +
                      std::to_string(instance.tables().size()));
  }
  for (uint64_t t = 0; t < count; ++t) {
    Table& table = instance.TableAt(t);
    const auto& cols = table.schema().columns();
    const std::vector<size_t> pk = table.schema().PrimaryKeyIndexes();
    ADN_ASSIGN_OR_RETURN(uint64_t nups, r.ReadVarint());
    for (uint64_t i = 0; i < nups; ++i) {
      Row row;
      row.reserve(cols.size());
      for (const auto& col : cols) {
        ADN_ASSIGN_OR_RETURN(Value v, rpc::DecodeValue(col.type, r));
        row.push_back(std::move(v));
      }
      ADN_RETURN_IF_ERROR(table.Insert(std::move(row)));
    }
    ADN_ASSIGN_OR_RETURN(uint64_t ndel, r.ReadVarint());
    for (uint64_t i = 0; i < ndel; ++i) {
      Row key;
      key.reserve(pk.size());
      for (size_t idx : pk) {
        ADN_ASSIGN_OR_RETURN(Value v, rpc::DecodeValue(cols[idx].type, r));
        key.push_back(std::move(v));
      }
      table.EraseByKey(key);
    }
  }
  return Status::Ok();
}

}  // namespace adn::ir
