// Function registry for the DSL: built-ins plus user-defined functions.
//
// Paper §5.1: operations SQL cannot express (compression, encryption) are
// "user-defined functions for which developers provide platform-specific
// implementations". Each FunctionDef therefore carries, besides its type
// signature and host evaluation callback, the platform capability bits the
// backends consult: can the verifier-constrained eBPF target run it? can a
// P4 match-action pipeline? The effect bits (deterministic, reads metadata)
// feed the reordering analysis.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "rpc/message.h"
#include "rpc/value.h"

namespace adn::ir {

// Everything a function evaluation may touch besides its arguments.
struct FunctionContext {
  const rpc::Message* message = nullptr;  // metadata builtins (rpc_id(), ...)
  Rng* rng = nullptr;                     // random()
  int64_t now_ns = 0;                     // now()
  uint64_t nonce = 0;                     // encrypt() nonce source
};

using EvalCallback =
    std::function<Result<rpc::Value>(const FunctionContext&,
                                     std::vector<rpc::Value>&)>;

struct FunctionDef {
  std::string name;
  std::vector<rpc::ValueType> arg_types;
  rpc::ValueType result_type = rpc::ValueType::kNull;
  bool variadic_numeric = false;  // min/max/abs accept INT or FLOAT

  // Effect bits (drive reorder/parallelize analysis):
  bool deterministic = true;      // false: random(), now()
  bool reads_metadata = false;    // rpc_id(), method(), source(), ...

  // Platform capability bits (drive backend feasibility):
  bool ebpf_ok = false;   // expressible under verifier limits
  bool p4_ok = false;     // expressible as match-action + hash units
  double per_byte_cost_ns = 0.0;  // payload-size-dependent simulated cost

  EvalCallback eval;
};

class FunctionRegistry {
 public:
  // Registry with every built-in: hash, len, min, max, abs, to_text, to_int,
  // random, now, rpc_id, method, source, destination, compress, decompress,
  // encrypt, decrypt, crc32.
  static std::shared_ptr<const FunctionRegistry> Builtins();

  Status Register(FunctionDef def);
  const FunctionDef* Find(std::string_view name) const;
  std::vector<std::string> Names() const;

 private:
  std::vector<FunctionDef> functions_;
};

}  // namespace adn::ir
