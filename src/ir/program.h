// ChainProgram: the compiled execution tier (paper §4 Q2).
//
// The reference semantics of an element live in the StmtIr tree that
// ElementInstance::Process interprets per message — with a recursive
// expression walk, string-compared field lookups and by-name table lookups
// on every access. The paper's performance claim (Figure 5) rests on the
// compiler lowering the whole chain to platform-native code, so this file
// defines what the native software tier executes: one flat, register-based
// instruction stream for an entire optimized chain, with
//
//   - a constant pool (literals materialized once at compile time),
//   - interned field IDs (field-name resolution done once by the compiler,
//     down to the process-global ids of rpc/intern.h — the executor reads
//     message fields by integer compare, never by string scan),
//   - table handles (element index, table index) bound to the deployed
//     ElementInstances at deploy time — by index, so a state restore that
//     swaps the table vector never invalidates the program.
//
// Deliberately NOT in the program: element state. Tables, RNG streams and
// nonce counters stay inside ElementInstance, which is what keeps
// SnapshotState/SplitState/MergeState and controller migration working
// unchanged whichever tier executes (the program is immutable shared code;
// instances are the movable state).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/element_ir.h"
#include "ir/exec.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rpc/message.h"

namespace adn::ir {

// One fixed-width instruction. `a`, `b`, `c` are register/pool operands,
// `d` doubles as a jump target or an argument count, `aux` carries small
// immediates (binary operator, drop kind, message-kind mask).
struct Instr {
  enum class Op : uint8_t {
    kLoadConst,      // r[a] = consts[b]
    kLoadField,      // r[a] = message[field b] (NULL when absent)
    kLoadJoin,       // r[a] = joined_row[b]; error when no row is bound
    kMaterialize,    // pin r[a]: copy a borrowed value into the register
    kCoerceBool,     // r[a] = BOOL(truthy(r[a]))
    kUnary,          // r[a] = aux(UnaryOp) r[b]
    kBinary,         // r[a] = r[b] aux(BinaryOp) r[c]   (not AND/OR)
    kCall,           // r[a] = functions[b](r[c] .. r[c+d-1])
    kJump,           // ip = d
    kJumpIfFalse,    // if !truthy(r[a]) ip = d
    kJumpIfTrue,     // if truthy(r[a]) ip = d
    kLookupPk,       // bind join row: tables[b] PK lookup of r[a]; miss: ip=d
    kLookupScan,     // bind join row: scan tables[b] column c == r[a]; miss: d
    kClearJoin,      // unbind the join row
    kStoreField,     // message[field b] = move(r[a])
    kProject,        // drop every message field not in keep_lists[b]
    kRouteDest,      // steer on __destination (after every SELECT)
    kInsertRow,      // tables[b].Insert({r[a] .. r[a+d-1]})
    kUpdateRows,     // run update_specs[b] (row loop with subprograms)
    kDeleteRows,     // run delete_specs[b]
    kDrop,           // stop: aux!=0 silent else abort, message strings[b]
    kBeginElement,   // enter elements[b]: bump processed/nonce, bind state
    kSkipUnlessKind, // if !(aux & (1 << message kind)) ip = d  (chain mode)
    kReturnPass,     // end of chain: ProcessResult::Pass()
    kReturnValue,    // end of subprogram: value is r[a]
  };

  Op op;
  uint8_t aux = 0;
  uint16_t a = 0;
  uint16_t b = 0;
  uint16_t c = 0;
  uint32_t d = 0;
};

std::string_view OpName(Instr::Op op);

// Compiled form of one whole chain (or one element when the engine compiles
// stages individually). Immutable and shareable across deployments.
struct ChainProgram {
  // Subprogram entry point meaning "no subprogram" (absent WHERE).
  static constexpr uint32_t kNoSub = 0xFFFFFFFF;

  struct TableRef {
    uint16_t element = 0;    // index into the bound instance vector
    uint16_t table_idx = 0;  // index into that instance's table vector
    std::string name;        // diagnostics only
  };

  struct UpdateSpec {
    uint16_t table = 0;
    uint32_t where_entry = kNoSub;
    // Point-update fast path (ir::PointUpdateKeyExpr): subprogram computing
    // the primary-key value from the message alone. When set, where_entry is
    // kNoSub and ExecUpdate does one index lookup instead of a table scan.
    uint32_t key_entry = kNoSub;
    // column index -> subprogram entry evaluating the new value.
    std::vector<std::pair<uint16_t, uint32_t>> assignments;
  };

  struct DeleteSpec {
    uint16_t table = 0;
    uint32_t where_entry = kNoSub;
  };

  // Per-element segment metadata: the simulator's cost model keys compiled
  // execution cost off `instr_count` (instructions in the segment, including
  // its subprograms) instead of the interpreter's IR op count.
  struct ElementSeg {
    std::string name;
    dsl::Direction direction = dsl::Direction::kRequest;
    uint32_t entry_ip = 0;
    uint32_t instr_count = 0;
    double per_byte_cost_ns = 0.0;  // summed UDF per-byte costs (compress...)
  };

  std::vector<Instr> code;
  std::vector<rpc::Value> consts;
  std::vector<std::string> strings;      // drop/abort messages
  std::vector<std::string> field_names;  // program-local field-ID table
  // Global interned id (rpc/intern.h) for each program-local field id,
  // resolved by the compiler so executors access message fields with an
  // integer compare instead of a string scan. Parallel to field_names;
  // ChainExecutor re-derives it when a hand-built program leaves it empty.
  std::vector<rpc::FieldId> field_gids;
  std::vector<const FunctionDef*> functions;
  std::vector<TableRef> tables;
  std::vector<std::vector<uint16_t>> keep_lists;  // projection keep sets
  std::vector<UpdateSpec> update_specs;
  std::vector<DeleteSpec> delete_specs;
  std::vector<ElementSeg> elements;
  uint16_t num_registers = 0;
  // Monotonic compile generation (process-wide), stamped by the compiler.
  // Hot-reload swaps are audited by version: a running pool reports the
  // version it executes, and a swap must install a NEWER program (see
  // EnginePool::SwapProgram / docs/RECONFIG.md). 0 = hand-built program.
  uint64_t version = 0;

  uint32_t TotalInstrCount() const;
  double TotalPerByteCostNs() const;
  // Disassembly for tests/tools (one instruction per line).
  std::string DebugString() const;
};

// Executes a ChainProgram against the tabular state of the deployed
// ElementInstances. The executor owns only transient run state (register
// file, field-index cache); everything durable stays in the instances, so
// snapshot/restore/split/merge and stage migration behave identically under
// either tier.
class ChainExecutor {
 public:
  // `instances[i]` backs the program's element segment i. Pointers are
  // borrowed; the caller keeps them alive across Process calls.
  ChainExecutor(std::shared_ptr<const ChainProgram> program,
                std::vector<ElementInstance*> instances);

  // Run the whole program on `m` in place. Mirrors the interpreter contract:
  // per-element processed/dropped counters and the nonce/RNG streams advance
  // exactly as ElementInstance::Process would.
  ProcessResult Process(rpc::Message& m, int64_t now_ns);

  // Maximum lanes one burst wavefront processes at a time; larger bursts are
  // chunked. Sized so the SoA register file for a typical chain stays within
  // L2 while still amortizing dispatch ~64x.
  static constexpr size_t kMaxBurstLanes = 64;

  // Burst execution: process msgs[0..n) and fill results[0..n) with exactly
  // the outcomes n sequential Process() calls would produce — same message
  // mutations, same per-element processed/dropped counters, same nonce/RNG
  // streams, same table contents (burst ≡ scalar, proven by test_burst).
  //
  // When the program is burst-vectorizable (see burst_vectorizable()) this
  // runs the struct-of-arrays wavefront in program_burst.cc: one opcode
  // dispatch per instruction for the whole burst, a live-lane mask for
  // mid-burst drop/abort, and a table-row prefetch stage ahead of the
  // wavefront. Otherwise it degrades to the scalar loop — semantics never
  // depend on which path ran. Observability stays ON either way: the burst
  // path batches its telemetry (one histogram delta per element per burst,
  // span events at burst granularity — the "Burst-mode telemetry" contract
  // in docs/OBSERVABILITY.md) instead of falling back to scalar.
  void ProcessBurst(rpc::Message* msgs, size_t n, int64_t now_ns,
                    ProcessResult* results);

  // Observability identity stamped on the burst path's span events (the
  // scalar path takes its identity from the enclosing RpcTraceScope).
  // `processor_id` is an obs::InternName id, interned once at registration.
  void set_trace_identity(obs::Tier tier, obs::NameId processor_id) {
    trace_tier_ = tier;
    proc_name_id_ = processor_id;
  }

  // True when static analysis proved instruction-major (SoA) execution
  // reorders no observable effect relative to message-major execution:
  // forward-only control flow, each element entered at most once, per table
  // either read-only or exactly one mutation site with no lookups, and at
  // most one non-deterministic call site per element (RNG draw order).
  bool burst_vectorizable() const { return burst_safe_; }
  // Number of kLookupPk sites the prefetch stage covers (fig5: the ACL
  // join). Exposed for tests/benchmarks.
  size_t burst_prefetch_site_count() const { return prefetch_sites_.size(); }

  const ChainProgram& program() const { return *program_; }

 private:
  struct RunState {
    rpc::Message* msg = nullptr;
    const rpc::Row* joined_row = nullptr;
    FunctionContext fn_ctx;
    int cur = -1;  // current element segment (index into instances_)
  };
  // One kLoadField+kLookupPk pair the burst prefetch stage resolves up
  // front. `consume` means the cached row may legally substitute for the
  // lookup (key field provably unmodified between burst start and the
  // lookup, and no jump lands on the lookup ip).
  struct PrefetchSite {
    uint32_t lookup_ip = 0;
    uint16_t field_id = 0;
    uint16_t table = 0;
    bool consume = false;
  };
  Result<rpc::Value> RunSub(uint32_t entry, RunState& rs);
  Status ExecUpdate(const ChainProgram::UpdateSpec& spec, RunState& rs);
  Status ExecDelete(const ChainProgram::DeleteSpec& spec, RunState& rs);
  rpc::Table* TableAt(uint16_t handle);
  const rpc::Value& FieldOrNull(const rpc::Message& m, uint16_t fid) const {
    return m.GetFieldOrNull(field_gids_[fid]);
  }
  // Take ownership of register r: move when the register owns its value,
  // copy when it borrows (const pool / message field / join column).
  rpc::Value TakeReg(uint16_t r);

  // --- Burst path (program_burst.cc) --------------------------------------
  // Static legality analysis + prefetch-site discovery, run at construction.
  void AnalyzeBurst();
  // One SoA wavefront over msgs[0..k), k <= kMaxBurstLanes.
  void RunBurst(rpc::Message* msgs, size_t k, int64_t now_ns,
                ProcessResult* results);
  rpc::Value TakeBurstReg(uint16_t r, size_t lane, size_t stride);
  // Post-wavefront telemetry: batched histogram deltas + sampled POD span
  // events from the per-segment timestamps the wavefront staged.
  void FinishBurstTelemetry(rpc::Message* msgs, size_t k, int64_t burst_start,
                            int cur_seg, size_t entered_segs);

  std::shared_ptr<const ChainProgram> program_;
  std::vector<ElementInstance*> instances_;
  // Borrow-aware register file. Reads always go through slot_[r]; loads set
  // the slot to point at the source in place (no copy), computed results
  // land in regs_[r] with slot_[r] == &regs_[r]. Borrowed pointers never
  // outlive their source: const-pool and join-row borrows are stable for the
  // statement that created them, and the compiler emits kMaterialize to pin
  // message-field borrows before any store/projection can move the field
  // vector. regs_ never resizes after construction, so &regs_[r] is stable.
  std::vector<rpc::Value> regs_;
  std::vector<const rpc::Value*> slot_;
  // Program-local field id -> global interned FieldId (from the program's
  // field_gids, re-interned from field_names when a hand-built program
  // leaves them empty). Field access is then an integer scan of the
  // message's flat field buffer — no string compares on the hot path.
  std::vector<rpc::FieldId> field_gids_;
  // kProject keep set per keep_list, as global ids (allocation-free
  // in-place projection).
  std::vector<std::vector<rpc::FieldId>> keep_gids_;
  rpc::FieldId dest_fid_ = 0;  // interned __destination
  // UPDATE row scratch, reused across calls so the row loop never grows a
  // fresh vector per message.
  std::vector<rpc::Row> upd_scratch_;
  // Reused across calls/messages so the hot loop never reallocates. Safe to
  // share between the main loop and subprograms: each kCall fills and
  // consumes it within one instruction.
  std::vector<rpc::Value> call_args_;
  // Per-segment adn_element_latency_ns{element=...} instruments, resolved at
  // construction so the hot path never builds a label string. Only touched
  // when obs::Enabled().
  std::vector<obs::Histogram*> elem_hist_;
  // Interned element names (span event name ids) + the executor's trace
  // identity and obs self-metric counters, all resolved at construction /
  // registration so the burst path emits telemetry without a single string
  // or registry lookup.
  std::vector<obs::NameId> elem_name_ids_;
  obs::Tier trace_tier_ = obs::Tier::kEngine;
  obs::NameId proc_name_id_ = 0;
  obs::NameId rpc_name_id_ = 0;
  obs::NameId burst_name_id_ = 0;
  obs::Counter* spans_total_ = nullptr;
  obs::Counter* traces_sampled_ = nullptr;

  // --- Burst (SoA) state. Sized once at construction; RunBurst indexes
  // registers as [r * k + lane] with k = the live chunk width, so a burst
  // narrower than kMaxBurstLanes keeps its working set dense. bregs_ never
  // resizes after construction, so &bregs_[i] is stable (same borrow
  // contract as regs_). The scalar regs_/slot_ file stays untouched by the
  // wavefront — subprogram execution (ExecUpdate/ExecDelete/RunSub) uses it
  // per lane without conflicting with the SoA file.
  bool burst_safe_ = false;
  std::vector<PrefetchSite> prefetch_sites_;
  std::vector<rpc::Value> bregs_;
  std::vector<const rpc::Value*> bslot_;
  // Per-lane wavefront state: next instruction pointer (kLaneDone when the
  // lane has returned), bound join row, current element segment, and the
  // function-call context (rng/nonce rebound at each kBeginElement).
  std::vector<uint32_t> lane_ip_;
  std::vector<const rpc::Row*> lane_join_;
  std::vector<int> lane_cur_;
  std::vector<FunctionContext> lane_ctx_;
  // Prefetch stage results: [site * k + lane] resolved Row* (or nullptr).
  std::vector<const rpc::Row*> pf_rows_;
  // Burst-mode telemetry scratch (only touched when obs::Enabled()): the
  // wavefront stamps one NowNs() pair per element segment per burst and
  // counts entering lanes; after the wavefront those become one ObserveN
  // histogram delta per segment and (for sampled lanes) span events at
  // burst granularity. lane_seg_mask_ tracks which of the first 64 segments
  // each lane actually entered, so a sampled lane's span tree only lists
  // segments it executed.
  std::vector<int64_t> bseg_start_;
  std::vector<int64_t> bseg_end_;
  std::vector<uint32_t> bseg_lanes_;
  std::vector<uint16_t> bseg_order_;
  std::vector<uint64_t> lane_seg_mask_;
};

}  // namespace adn::ir
