#include "ir/functions.h"

#include <cmath>
#include <cstdlib>

#include "common/codec.h"
#include "common/rng.h"
#include "common/strings.h"

namespace adn::ir {

namespace {

using rpc::Value;
using rpc::ValueType;

Error WrongType(std::string_view fn, std::string_view what) {
  return Error(ErrorCode::kTypeError,
               std::string(fn) + ": unexpected argument type (" +
                   std::string(what) + ")");
}

// Canonical byte image of a value for hashing (stable across runs/platforms).
uint64_t HashValueCanonical(const Value& v) {
  switch (v.type()) {
    case ValueType::kText: return Fnv1a64(v.AsText());
    case ValueType::kBytes:
      return Fnv1a64(v.AsBytes().data(), v.AsBytes().size());
    case ValueType::kInt: {
      int64_t x = v.AsInt();
      return Fnv1a64(&x, sizeof(x));
    }
    case ValueType::kBool: {
      uint8_t b = v.AsBool() ? 1 : 0;
      return Fnv1a64(&b, 1);
    }
    case ValueType::kFloat: {
      double d = v.AsFloat();
      return Fnv1a64(&d, sizeof(d));
    }
    case ValueType::kNull: return 0;
  }
  return 0;
}

FunctionDef Simple(std::string name, std::vector<ValueType> args,
                   ValueType result, EvalCallback eval) {
  FunctionDef def;
  def.name = std::move(name);
  def.arg_types = std::move(args);
  def.result_type = result;
  def.eval = std::move(eval);
  return def;
}

std::shared_ptr<FunctionRegistry> BuildBuiltins() {
  auto reg = std::make_shared<FunctionRegistry>();
  auto add = [&](FunctionDef def) {
    Status s = reg->Register(std::move(def));
    (void)s;  // built-in names are unique by construction
  };

  // hash(any) -> INT. Offloadable everywhere: eBPF helpers and P4 hash units
  // both provide hashing, which is what makes LB-on-switch possible (§2).
  {
    auto def = Simple("hash", {ValueType::kNull}, ValueType::kInt,
                      [](const FunctionContext&, std::vector<Value>& args)
                          -> Result<Value> {
                        return Value(static_cast<int64_t>(
                            HashValueCanonical(args[0]) >> 1));
                      });
    def.arg_types[0] = ValueType::kNull;  // NULL spec slot = any type
    def.ebpf_ok = true;
    def.p4_ok = true;
    add(std::move(def));
  }

  // len(TEXT|BYTES) -> INT
  {
    auto def = Simple("len", {ValueType::kNull}, ValueType::kInt,
                      [](const FunctionContext&, std::vector<Value>& args)
                          -> Result<Value> {
                        const Value& v = args[0];
                        if (v.type() == ValueType::kText) {
                          return Value(static_cast<int64_t>(v.AsText().size()));
                        }
                        if (v.type() == ValueType::kBytes) {
                          return Value(
                              static_cast<int64_t>(v.AsBytes().size()));
                        }
                        return WrongType("len", "want TEXT or BYTES");
                      });
    def.ebpf_ok = true;
    def.p4_ok = true;
    add(std::move(def));
  }

  // min/max/abs over numerics.
  {
    auto def = Simple("min", {ValueType::kNull, ValueType::kNull},
                      ValueType::kNull,
                      [](const FunctionContext&, std::vector<Value>& args)
                          -> Result<Value> {
                        if (!args[0].IsNumeric() || !args[1].IsNumeric()) {
                          return WrongType("min", "want numeric");
                        }
                        return args[0].CompareTo(args[1]) <= 0
                                   ? std::move(args[0])
                                   : std::move(args[1]);
                      });
    def.variadic_numeric = true;
    def.ebpf_ok = true;
    add(std::move(def));
  }
  {
    auto def = Simple("max", {ValueType::kNull, ValueType::kNull},
                      ValueType::kNull,
                      [](const FunctionContext&, std::vector<Value>& args)
                          -> Result<Value> {
                        if (!args[0].IsNumeric() || !args[1].IsNumeric()) {
                          return WrongType("max", "want numeric");
                        }
                        return args[0].CompareTo(args[1]) >= 0
                                   ? std::move(args[0])
                                   : std::move(args[1]);
                      });
    def.variadic_numeric = true;
    def.ebpf_ok = true;
    add(std::move(def));
  }
  {
    auto def = Simple("abs", {ValueType::kNull}, ValueType::kNull,
                      [](const FunctionContext&, std::vector<Value>& args)
                          -> Result<Value> {
                        if (args[0].type() == ValueType::kInt) {
                          return Value(std::abs(args[0].AsInt()));
                        }
                        if (args[0].type() == ValueType::kFloat) {
                          return Value(std::fabs(args[0].AsFloat()));
                        }
                        return WrongType("abs", "want numeric");
                      });
    def.variadic_numeric = true;
    def.ebpf_ok = true;
    add(std::move(def));
  }

  // Conversions.
  add(Simple("to_text", {ValueType::kNull}, ValueType::kText,
             [](const FunctionContext&, std::vector<Value>& args)
                 -> Result<Value> {
               switch (args[0].type()) {
                 case ValueType::kText: return std::move(args[0]);
                 case ValueType::kInt:
                   return Value(std::to_string(args[0].AsInt()));
                 case ValueType::kFloat:
                   return Value(std::to_string(args[0].AsFloat()));
                 case ValueType::kBool:
                   return Value(args[0].AsBool() ? std::string("true")
                                                 : std::string("false"));
                 case ValueType::kBytes:
                   return Value(std::string(AsStringView(args[0].AsBytes())));
                 case ValueType::kNull: return Value(std::string("NULL"));
               }
               return WrongType("to_text", "?");
             }));
  add(Simple("to_int", {ValueType::kNull}, ValueType::kInt,
             [](const FunctionContext&, std::vector<Value>& args)
                 -> Result<Value> {
               switch (args[0].type()) {
                 case ValueType::kInt: return std::move(args[0]);
                 case ValueType::kFloat:
                   return Value(static_cast<int64_t>(args[0].AsFloat()));
                 case ValueType::kBool:
                   return Value(static_cast<int64_t>(args[0].AsBool()));
                 case ValueType::kText: {
                   errno = 0;
                   char* end = nullptr;
                   const std::string s(args[0].AsText());
                   long long v = std::strtoll(s.c_str(), &end, 10);
                   if (end != s.c_str() + s.size() || errno != 0) {
                     return Error(ErrorCode::kInvalidArgument,
                                  "to_int: '" + s + "' is not an integer");
                   }
                   return Value(static_cast<int64_t>(v));
                 }
                 default:
                   return WrongType("to_int", "want scalar");
               }
             }));

  // Nondeterministic builtins.
  {
    auto def = Simple("random", {}, ValueType::kFloat,
                      [](const FunctionContext& ctx, std::vector<Value>&)
                          -> Result<Value> {
                        if (ctx.rng == nullptr) {
                          return Error(ErrorCode::kFailedPrecondition,
                                       "random(): no RNG in context");
                        }
                        return Value(ctx.rng->NextDouble());
                      });
    def.deterministic = false;
    def.ebpf_ok = true;  // bpf_get_prandom_u32
    def.p4_ok = true;    // RNG externs exist on Tofino-class switches
    add(std::move(def));
  }
  {
    auto def = Simple("now", {}, ValueType::kInt,
                      [](const FunctionContext& ctx, std::vector<Value>&)
                          -> Result<Value> { return Value(ctx.now_ns); });
    def.deterministic = false;
    def.ebpf_ok = true;  // bpf_ktime_get_ns
    def.p4_ok = true;
    add(std::move(def));
  }

  // Metadata readers.
  auto add_meta = [&](std::string name, ValueType type, auto getter,
                      bool p4_ok) {
    auto def = Simple(std::move(name), {}, type,
                      [getter](const FunctionContext& ctx,
                               std::vector<Value>&) -> Result<Value> {
                        if (ctx.message == nullptr) {
                          return Error(ErrorCode::kFailedPrecondition,
                                       "metadata builtin: no message bound");
                        }
                        return getter(*ctx.message);
                      });
    def.reads_metadata = true;
    def.ebpf_ok = true;
    def.p4_ok = p4_ok;
    add(std::move(def));
  };
  add_meta("rpc_id", ValueType::kInt,
           [](const rpc::Message& m) {
             return Value(static_cast<int64_t>(m.id()));
           },
           true);
  add_meta("method", ValueType::kText,
           [](const rpc::Message& m) { return Value(m.method()); }, false);
  add_meta("source", ValueType::kInt,
           [](const rpc::Message& m) {
             return Value(static_cast<int64_t>(m.source()));
           },
           true);
  add_meta("destination", ValueType::kInt,
           [](const rpc::Message& m) {
             return Value(static_cast<int64_t>(m.destination()));
           },
           true);

  // Payload UDFs — real byte transforms from common/codec.h. Not offloadable
  // to P4 (arbitrary payload rewriting exceeds match-action), compression is
  // too stateful for the eBPF verifier model we target; encryption is allowed
  // on eBPF (fixed-round block cipher, bounded loops).
  {
    auto def = Simple("compress", {ValueType::kBytes}, ValueType::kBytes,
                      [](const FunctionContext&, std::vector<Value>& args)
                          -> Result<Value> {
                        return Value(CompressBytes(args[0].AsBytes()));
                      });
    def.per_byte_cost_ns = 1.9;
    add(std::move(def));
  }
  {
    auto def = Simple("decompress", {ValueType::kBytes}, ValueType::kBytes,
                      [](const FunctionContext&, std::vector<Value>& args)
                          -> Result<Value> {
                        ADN_ASSIGN_OR_RETURN(
                            Bytes plain, DecompressBytes(args[0].AsBytes()));
                        return Value(std::move(plain));
                      });
    def.per_byte_cost_ns = 0.9;
    add(std::move(def));
  }
  {
    auto def = Simple("encrypt", {ValueType::kBytes, ValueType::kText},
                      ValueType::kBytes,
                      [](const FunctionContext& ctx, std::vector<Value>& args)
                          -> Result<Value> {
                        return Value(EncryptBytes(args[0].AsBytes(),
                                                  args[1].AsText(),
                                                  ctx.nonce));
                      });
    def.per_byte_cost_ns = 2.4;
    def.deterministic = false;  // fresh nonce per message
    def.ebpf_ok = true;
    add(std::move(def));
  }
  {
    auto def = Simple("decrypt", {ValueType::kBytes, ValueType::kText},
                      ValueType::kBytes,
                      [](const FunctionContext&, std::vector<Value>& args)
                          -> Result<Value> {
                        ADN_ASSIGN_OR_RETURN(
                            Bytes plain,
                            DecryptBytes(args[0].AsBytes(), args[1].AsText()));
                        return Value(std::move(plain));
                      });
    def.per_byte_cost_ns = 2.4;
    def.ebpf_ok = true;
    add(std::move(def));
  }
  {
    auto def = Simple("crc32", {ValueType::kBytes}, ValueType::kInt,
                      [](const FunctionContext&, std::vector<Value>& args)
                          -> Result<Value> {
                        return Value(static_cast<int64_t>(
                            Crc32c(args[0].AsBytes())));
                      });
    def.per_byte_cost_ns = 0.3;
    def.ebpf_ok = true;
    def.p4_ok = true;  // checksum units
    add(std::move(def));
  }

  return reg;
}

}  // namespace

std::shared_ptr<const FunctionRegistry> FunctionRegistry::Builtins() {
  static const std::shared_ptr<const FunctionRegistry> kRegistry =
      BuildBuiltins();
  return kRegistry;
}

Status FunctionRegistry::Register(FunctionDef def) {
  if (Find(def.name) != nullptr) {
    return Status(ErrorCode::kAlreadyExists,
                  "function '" + def.name + "' already registered");
  }
  functions_.push_back(std::move(def));
  return Status::Ok();
}

const FunctionDef* FunctionRegistry::Find(std::string_view name) const {
  for (const auto& f : functions_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

std::vector<std::string> FunctionRegistry::Names() const {
  std::vector<std::string> out;
  out.reserve(functions_.size());
  for (const auto& f : functions_) out.push_back(f.name);
  return out;
}

}  // namespace adn::ir
