#include "ir/exec.h"

#include <algorithm>
#include <list>
#include <unordered_map>

#include "common/strings.h"
#include "ir/state_delta.h"
#include "obs/intern.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rpc/flat_wire.h"

namespace adn::ir {

using rpc::Message;
using rpc::Row;
using rpc::Table;
using rpc::Value;

// ARC (adaptive replacement cache) bookkeeping for a cache element. Only the
// response rows live in the state table; this recency/frequency metadata is
// derived, rebuilt from the rows whenever migration machinery replaces them
// (InvalidateCacheRuntime), so the table alone defines the element's
// migratable state. Counters survive rebuilds — they describe the instance,
// not the current rows.
struct ElementInstance::CacheRuntime {
  using LruList = std::list<uint64_t>;
  // Which of the four ARC lists a key is on: T1/T2 hold resident entries
  // (recency / frequency), B1/B2 are ghosts (recently evicted keys, no row).
  enum : uint8_t { kT1 = 0, kT2 = 1, kB1 = 2, kB2 = 3 };
  struct Loc {
    uint8_t list;
    LruList::iterator it;
  };

  LruList t1, t2, b1, b2;
  std::unordered_map<uint64_t, Loc> index;
  size_t p = 0;  // adaptive target size for T1
  // rpc id -> cache key for in-flight misses awaiting their response.
  std::unordered_map<uint64_t, uint64_t> pending;
  std::vector<rpc::FieldId> key_fids;
  bool built = false;
  Bytes scratch;  // fill-path encode buffer, reused across fills

  uint64_t hits = 0, misses = 0, fills = 0, expired = 0, evicted = 0;

  LruList& ListOf(uint8_t which) {
    switch (which) {
      case kT1: return t1;
      case kT2: return t2;
      case kB1: return b1;
      default: return b2;
    }
  }

  bool Resident(const Loc& loc) const {
    return loc.list == kT1 || loc.list == kT2;
  }

  // Unlink `key` from whatever list holds it.
  void Unlink(uint64_t key) {
    auto it = index.find(key);
    if (it == index.end()) return;
    ListOf(it->second.list).erase(it->second.it);
    index.erase(it);
  }

  void PushMru(uint8_t list, uint64_t key) {
    LruList& l = ListOf(list);
    l.push_front(key);
    index[key] = Loc{list, l.begin()};
  }

  // Move a resident entry to the MRU end of T2 (a hit proves frequency).
  void PromoteToT2(uint64_t key) {
    auto it = index.find(key);
    if (it == index.end()) return;
    t2.splice(t2.begin(), ListOf(it->second.list), it->second.it);
    it->second.list = kT2;
    it->second.it = t2.begin();
  }

  // ARC REPLACE: evict one resident entry to its ghost list and drop the
  // backing row. `in_b2` is whether the incoming key was a B2 ghost.
  void Replace(Table& table, bool in_b2) {
    uint64_t victim;
    uint8_t ghost;
    if (!t1.empty() && (t1.size() > p || (in_b2 && t1.size() == p))) {
      victim = t1.back();
      t1.pop_back();
      ghost = kB1;
    } else if (!t2.empty()) {
      victim = t2.back();
      t2.pop_back();
      ghost = kB2;
    } else {
      return;
    }
    index.erase(victim);
    PushMru(ghost, victim);
    Row key_row;
    key_row.push_back(Value(static_cast<int64_t>(victim)));
    table.EraseByKey(key_row);
    ++evicted;
  }

  void DropLru(uint8_t list) {
    LruList& l = ListOf(list);
    if (l.empty()) return;
    index.erase(l.back());
    l.pop_back();
  }
};

ElementInstance::ElementInstance(std::shared_ptr<const ElementIr> code,
                                 uint64_t seed)
    : code_(std::move(code)), rng_(seed), nonce_counter_(seed) {
  tables_.reserve(code_->state_tables.size());
  for (const auto& [name, schema] : code_->state_tables) {
    tables_.emplace_back(name, schema);
  }
  ResolveObsInstruments();
}

ElementInstance::~ElementInstance() = default;

void ElementInstance::ResolveObsInstruments() {
  obs_name_id_ = obs::InternName(code_->name);
  obs_hist_ = &obs::MetricsRegistry::Default().GetHistogram(
      "adn_element_latency_ns", "element=\"" + code_->name + "\"");
}

bool ElementInstance::AppliesTo(rpc::MessageKind kind) const {
  switch (code_->direction) {
    case dsl::Direction::kRequest:
      return kind == rpc::MessageKind::kRequest;
    case dsl::Direction::kResponse:
      return kind == rpc::MessageKind::kResponse;
    case dsl::Direction::kBoth:
      return kind != rpc::MessageKind::kError;
  }
  return false;
}

Table* ElementInstance::FindTable(std::string_view name) {
  for (Table& t : tables_) {
    if (t.name() == name) return &t;
  }
  return nullptr;
}

const Table* ElementInstance::FindTable(std::string_view name) const {
  for (const Table& t : tables_) {
    if (t.name() == name) return &t;
  }
  return nullptr;
}

ProcessResult ElementInstance::Process(Message& m, int64_t now_ns) {
  ++processed_;
  // Same instrumentation boundary as a compiled element segment
  // (ChainExecutor), so either tier yields the same span tree and feeds the
  // same adn_element_latency_ns series.
  const bool timing = obs::Enabled();
  obs::TraceContext* trace = timing ? obs::CurrentTrace() : nullptr;
  const int64_t seg_start = timing ? obs::NowNs() : 0;
  size_t span = 0;
  if (trace != nullptr) span = trace->OpenSpan(obs_name_id_);
  auto finish = [&] {
    if (timing) {
      obs_hist_->Observe(static_cast<double>(obs::NowNs() - seg_start));
    }
    if (trace != nullptr) trace->CloseSpan(span);
  };
  if (code_->IsCache()) {
    ProcessResult r = RunCache(m, now_ns);
    finish();
    return r;
  }
  EvalContext ctx;
  ctx.message = &m;
  ctx.fn_ctx.message = &m;
  ctx.fn_ctx.rng = &rng_;
  ctx.fn_ctx.now_ns = now_ns;
  ctx.fn_ctx.nonce = ++nonce_counter_;
  for (const StmtIr& stmt : code_->statements) {
    ProcessResult r = RunStatement(stmt, m, ctx);
    if (r.outcome != ProcessOutcome::kPass) {
      // kReply is a short-circuit success (the message became the response),
      // not a drop; only true drops count.
      if (r.outcome != ProcessOutcome::kReply) ++dropped_;
      finish();
      return r;
    }
  }
  finish();
  return ProcessResult::Pass();
}

namespace {

ProcessResult DropFor(const SelectIr& sel) {
  ProcessResult r;
  r.outcome = sel.on_drop == dsl::DropBehavior::kAbort
                  ? ProcessOutcome::kDropAbort
                  : ProcessOutcome::kDropSilent;
  r.abort_message = sel.abort_message;
  return r;
}

ProcessResult AbortWith(std::string message) {
  ProcessResult r;
  r.outcome = ProcessOutcome::kDropAbort;
  r.abort_message = std::move(message);
  return r;
}

}  // namespace

ProcessResult ElementInstance::RunStatement(const StmtIr& stmt, Message& m,
                                            EvalContext& ctx) {
  switch (stmt.kind) {
    case StmtIr::Kind::kSelect: {
      const SelectIr& sel = *stmt.select;
      ctx.joined_row = nullptr;
      // 1. Join: find the matching state row (or drop).
      if (sel.join.has_value()) {
        Table* table = FindTable(sel.join->table);
        if (table == nullptr) {
          return AbortWith("internal: missing state table " +
                           sel.join->table);
        }
        const Row* match = nullptr;
        if (sel.join->key_is_primary &&
            sel.join->probe.kind == ExprNode::Kind::kInputField) {
          // Fast path: a bare-field probe against a single-column primary
          // key needs no Value copies and no temporary rows.
          match =
              table->LookupSingleKey(m.GetFieldOrNull(sel.join->probe.field));
        } else {
          auto probe = EvaluateExpr(sel.join->probe, ctx);
          if (!probe.ok()) return AbortWith(probe.error().ToString());
          if (sel.join->key_is_primary) {
            match = table->LookupSingleKey(probe.value());
          } else {
            size_t col = sel.join->table_key_col;
            const Value& key = probe.value();
            match = table->FindFirst([&](const Row& row) {
              return row[col].EqualsValue(key);
            });
          }
        }
        if (match == nullptr) return DropFor(sel);
        ctx.joined_row = match;
      }
      // 2. WHERE.
      if (sel.where.has_value()) {
        auto pass = EvaluatePredicate(*sel.where, ctx);
        if (!pass.ok()) return AbortWith(pass.error().ToString());
        if (!pass.value()) return DropFor(sel);
      }
      // 3. Projection. Evaluate outputs against the *input* tuple before
      // mutating anything (SQL snapshot semantics).
      std::vector<std::pair<std::string, Value>> computed;
      computed.reserve(sel.outputs.size());
      for (const auto& out : sel.outputs) {
        if (out.identity) continue;  // plain pass-through of same-named field
        auto v = EvaluateExpr(out.expr, ctx);
        if (!v.ok()) return AbortWith(v.error().ToString());
        computed.emplace_back(out.name, std::move(v).value());
      }
      if (!sel.passthrough) {
        // Strict projection: keep only the listed output fields.
        std::vector<rpc::FieldId> keep;
        keep.reserve(sel.outputs.size());
        for (const auto& out : sel.outputs) {
          keep.push_back(rpc::InternFieldName(out.name));
        }
        m.ProjectFields(keep);
      }
      for (auto& [name, value] : computed) {
        m.SetField(name, std::move(value));
      }
      // Routing: honor __destination if the element set it.
      if (const Value* dest = m.FindField(kDestinationField);
          dest != nullptr && dest->type() == rpc::ValueType::kInt) {
        m.set_destination(static_cast<rpc::EndpointId>(dest->AsInt()));
      }
      ctx.joined_row = nullptr;
      return ProcessResult::Pass();
    }

    case StmtIr::Kind::kInsert: {
      const InsertIr& ins = *stmt.insert;
      Table* table = FindTable(ins.table);
      if (table == nullptr) {
        return AbortWith("internal: missing state table " + ins.table);
      }
      Row row;
      row.reserve(ins.values.size());
      for (const ExprNode& e : ins.values) {
        auto v = EvaluateExpr(e, ctx);
        if (!v.ok()) return AbortWith(v.error().ToString());
        row.push_back(std::move(v).value());
      }
      if (Status s = table->Insert(std::move(row)); !s.ok()) {
        return AbortWith(s.ToString());
      }
      return ProcessResult::Pass();
    }

    case StmtIr::Kind::kUpdate: {
      const UpdateIr& upd = *stmt.update;
      Table* table = FindTable(upd.table);
      if (table == nullptr) {
        return AbortWith("internal: missing state table " + upd.table);
      }
      // Point update (WHERE pk = message expr): one index lookup, no scan.
      if (const ExprNode* key_expr = PointUpdateKeyExpr(upd, table->schema());
          key_expr != nullptr) {
        ctx.joined_row = nullptr;
        auto key = EvaluateExpr(*key_expr, ctx);
        if (!key.ok()) return AbortWith(key.error().ToString());
        if (key.value().is_null()) return ProcessResult::Pass();
        const Row* hit = table->LookupSingleKey(key.value());
        if (hit == nullptr) return ProcessResult::Pass();
        Row next = *hit;
        ctx.joined_row = hit;
        for (const auto& [col, expr] : upd.assignments) {
          auto v = EvaluateExpr(expr, ctx);
          if (!v.ok()) {
            ctx.joined_row = nullptr;
            return AbortWith(v.error().ToString());
          }
          next[col] = std::move(v).value();
        }
        ctx.joined_row = nullptr;
        if (Status s = table->Insert(std::move(next)); !s.ok()) {
          return AbortWith(s.ToString());
        }
        return ProcessResult::Pass();
      }
      // Two-phase: collect new rows, then re-insert (upsert keeps PK index
      // coherent). Collect first to avoid iterator invalidation.
      std::vector<Row> updated;
      for (const Row& row : table->rows()) {
        ctx.joined_row = &row;
        bool hit = true;
        if (upd.where.has_value()) {
          auto pass = EvaluatePredicate(*upd.where, ctx);
          if (!pass.ok()) {
            ctx.joined_row = nullptr;
            return AbortWith(pass.error().ToString());
          }
          hit = pass.value();
        }
        if (!hit) continue;
        Row next = row;
        for (const auto& [col, expr] : upd.assignments) {
          auto v = EvaluateExpr(expr, ctx);
          if (!v.ok()) {
            ctx.joined_row = nullptr;
            return AbortWith(v.error().ToString());
          }
          next[col] = std::move(v).value();
        }
        updated.push_back(std::move(next));
      }
      ctx.joined_row = nullptr;
      for (Row& row : updated) {
        if (Status s = table->Insert(std::move(row)); !s.ok()) {
          return AbortWith(s.ToString());
        }
      }
      return ProcessResult::Pass();
    }

    case StmtIr::Kind::kDelete: {
      const DeleteIr& d = *stmt.del;
      Table* table = FindTable(d.table);
      if (table == nullptr) {
        return AbortWith("internal: missing state table " + d.table);
      }
      if (!d.where.has_value()) {
        table->Clear();
        return ProcessResult::Pass();
      }
      // Evaluate predicates up front (EraseWhere's callback cannot
      // propagate errors).
      std::vector<char> doomed(table->RowCount(), 0);
      size_t i = 0;
      for (const Row& row : table->rows()) {
        ctx.joined_row = &row;
        auto pass = EvaluatePredicate(*d.where, ctx);
        if (!pass.ok()) {
          ctx.joined_row = nullptr;
          return AbortWith(pass.error().ToString());
        }
        doomed[i++] = pass.value() ? 1 : 0;
      }
      ctx.joined_row = nullptr;
      size_t idx = 0;
      table->EraseWhere([&](const Row&) { return doomed[idx++] != 0; });
      return ProcessResult::Pass();
    }
  }
  return AbortWith("internal: unhandled statement kind");
}

void ElementInstance::InvalidateCacheRuntime() {
  if (cache_rt_ != nullptr) cache_rt_->built = false;
}

ElementInstance::CacheRuntime& ElementInstance::EnsureCacheRuntime() {
  if (cache_rt_ == nullptr) cache_rt_ = std::make_unique<CacheRuntime>();
  CacheRuntime& rt = *cache_rt_;
  if (!rt.built) {
    rt.t1.clear();
    rt.t2.clear();
    rt.b1.clear();
    rt.b2.clear();
    rt.index.clear();
    rt.pending.clear();
    rt.p = 0;
    rt.key_fids.clear();
    for (const std::string& f : code_->cache_op->key_fields) {
      rt.key_fids.push_back(rpc::InternFieldName(f));
    }
    // Rebuild residency from the rows. Recency order did not survive the
    // migration (it is not state), so every key starts on T1; the adaptive
    // policy re-learns frequency from the traffic. Crucially this reads the
    // table without modifying it, keeping StateContentHash invariant across
    // snapshot/restore/split/merge.
    if (const Table* table = FindTable(code_->cache_op->table);
        table != nullptr) {
      for (const Row& row : table->rows()) {
        rt.PushMru(CacheRuntime::kT1,
                   static_cast<uint64_t>(row[0].AsInt()));
      }
    }
    rt.built = true;
  }
  return rt;
}

uint64_t ElementInstance::cache_hits() const {
  return cache_rt_ != nullptr ? cache_rt_->hits : 0;
}
uint64_t ElementInstance::cache_misses() const {
  return cache_rt_ != nullptr ? cache_rt_->misses : 0;
}
uint64_t ElementInstance::cache_fills() const {
  return cache_rt_ != nullptr ? cache_rt_->fills : 0;
}
uint64_t ElementInstance::cache_expired() const {
  return cache_rt_ != nullptr ? cache_rt_->expired : 0;
}
uint64_t ElementInstance::cache_evicted() const {
  return cache_rt_ != nullptr ? cache_rt_->evicted : 0;
}

ProcessResult ElementInstance::RunCache(Message& m, int64_t now_ns) {
  const CacheIr& cfg = *code_->cache_op;
  CacheRuntime& rt = EnsureCacheRuntime();
  Table* table = FindTable(cfg.table);
  if (table == nullptr) {
    return AbortWith("internal: missing cache table " + cfg.table);
  }

  // Cache key: method name mixed with the interned key fields' values.
  // GetFieldOrNull gives absent fields SQL NULL semantics, so requests
  // missing a key field still key consistently.
  uint64_t key = Fnv1a64(m.method());
  for (rpc::FieldId fid : rt.key_fids) {
    key = (key ^ rpc::HashValue(m.GetFieldOrNull(fid))) * 0x100000001B3ULL;
  }
  const Value key_value(static_cast<int64_t>(key));

  if (m.kind() == rpc::MessageKind::kRequest) {
    auto it = rt.index.find(key);
    if (it != rt.index.end() && rt.Resident(it->second)) {
      const Row* row = table->LookupSingleKey(key_value);
      bool stale = row == nullptr;
      if (!stale && cfg.ttl_ns > 0 &&
          now_ns - (*row)[2].AsInt() >= cfg.ttl_ns) {
        ++rt.expired;
        stale = true;
      }
      if (!stale) {
        BytesView blob = (*row)[1].AsBytes();
        Status decoded = rpc::DecodeFieldsFlatInto(
            std::span<const uint8_t>(blob.data(), blob.size()), m);
        if (decoded.ok()) {
          // The request is now the response: flip the kind, bump the entry
          // to the frequency list, stop the chain. Zero heap allocations on
          // arena-backed messages — the decode binds arena slices.
          m.set_kind(rpc::MessageKind::kResponse);
          rt.PromoteToT2(key);
          ++rt.hits;
          ProcessResult r;
          r.outcome = ProcessOutcome::kReply;
          return r;
        }
        stale = true;  // unreadable blob: drop the entry, treat as miss
      }
      // Expired or unreadable: remove row + residency (no ghost — the entry
      // did not lose a capacity contest, it timed out).
      rt.Unlink(key);
      Row key_row;
      key_row.push_back(key_value);
      table->EraseByKey(key_row);
    }
    ++rt.misses;
    rt.pending[m.id()] = key;
    // In-flight misses are bounded; drop the oldest hash-order entry if an
    // unresponsive downstream lets them pile up.
    if (rt.pending.size() > cfg.capacity * 4 + 64) {
      rt.pending.erase(rt.pending.begin());
    }
    return ProcessResult::Pass();
  }

  // Response path: fill the pending entry for this rpc id, if any.
  auto pit = rt.pending.find(m.id());
  if (pit == rt.pending.end()) return ProcessResult::Pass();
  const uint64_t fill_key = pit->second;
  rt.pending.erase(pit);
  const Value fill_key_value(static_cast<int64_t>(fill_key));

  rt.scratch.clear();
  if (!rpc::EncodeFieldsFlat(m, rt.scratch).ok()) return ProcessResult::Pass();
  Row row;
  row.reserve(3);
  row.push_back(fill_key_value);
  row.push_back(Value(Bytes(rt.scratch)));
  row.push_back(Value(now_ns));

  const size_t c = cfg.capacity;
  auto it = rt.index.find(fill_key);
  if (it != rt.index.end() && rt.Resident(it->second)) {
    // A concurrent request already filled it; refresh the row in place.
    (void)table->Insert(std::move(row));
    rt.PromoteToT2(fill_key);
    ++rt.fills;
    return ProcessResult::Pass();
  }
  if (it != rt.index.end() && it->second.list == CacheRuntime::kB1) {
    // Recency ghost hit: T1 was too small — grow its target.
    const size_t delta =
        rt.b1.empty() ? 1 : std::max<size_t>(1, rt.b2.size() / rt.b1.size());
    rt.p = std::min(c, rt.p + delta);
    rt.Replace(*table, /*in_b2=*/false);
    rt.Unlink(fill_key);
    rt.PushMru(CacheRuntime::kT2, fill_key);
  } else if (it != rt.index.end() && it->second.list == CacheRuntime::kB2) {
    // Frequency ghost hit: shrink T1's target.
    const size_t delta =
        rt.b2.empty() ? 1 : std::max<size_t>(1, rt.b1.size() / rt.b2.size());
    rt.p = rt.p > delta ? rt.p - delta : 0;
    rt.Replace(*table, /*in_b2=*/true);
    rt.Unlink(fill_key);
    rt.PushMru(CacheRuntime::kT2, fill_key);
  } else {
    // Brand-new key.
    const size_t l1 = rt.t1.size() + rt.b1.size();
    if (l1 >= c) {
      if (rt.t1.size() < c) {
        rt.DropLru(CacheRuntime::kB1);
        rt.Replace(*table, /*in_b2=*/false);
      } else {
        // T1 itself is full: evict its LRU row outright.
        uint64_t victim = rt.t1.back();
        rt.Unlink(victim);
        Row victim_row;
        victim_row.push_back(Value(static_cast<int64_t>(victim)));
        table->EraseByKey(victim_row);
        ++rt.evicted;
      }
    } else {
      const size_t total =
          l1 + rt.t2.size() + rt.b2.size();
      if (total >= c) {
        if (total >= 2 * c) rt.DropLru(CacheRuntime::kB2);
        rt.Replace(*table, /*in_b2=*/false);
      }
    }
    rt.PushMru(CacheRuntime::kT1, fill_key);
  }
  (void)table->Insert(std::move(row));
  ++rt.fills;
  return ProcessResult::Pass();
}

Bytes ElementInstance::SnapshotState() const {
  Bytes out;
  ByteWriter w(out);
  w.WriteVarint(tables_.size());
  for (const Table& t : tables_) {
    Bytes snap = t.Snapshot();
    w.WriteLengthPrefixed(snap);
  }
  return out;
}

Status ElementInstance::RestoreState(std::span<const uint8_t> snapshot) {
  ByteReader r(snapshot);
  auto count = r.ReadVarint();
  if (!count.ok()) return count.status();
  if (count.value() != tables_.size()) {
    return Status(ErrorCode::kInvalidArgument,
                  "snapshot has " + std::to_string(count.value()) +
                      " tables, element " + name() + " expects " +
                      std::to_string(tables_.size()));
  }
  std::vector<Table> restored;
  for (uint64_t i = 0; i < count.value(); ++i) {
    auto blob = r.ReadLengthPrefixed();
    if (!blob.ok()) return blob.status();
    auto table = Table::Restore(blob.value());
    if (!table.ok()) return table.status();
    if (!(table->schema() == tables_[i].schema())) {
      return Status(ErrorCode::kInvalidArgument,
                    "snapshot table " + table->name() +
                        " schema mismatch for element " + name());
    }
    restored.push_back(std::move(table).value());
  }
  tables_ = std::move(restored);
  InvalidateCacheRuntime();
  return Status::Ok();
}

Result<std::vector<Bytes>> ElementInstance::SplitState(size_t n) const {
  // Shard each table, then assemble per-shard snapshots.
  std::vector<std::vector<Table>> per_table_shards;
  for (const Table& t : tables_) {
    ADN_ASSIGN_OR_RETURN(std::vector<Table> shards, t.SplitByKeyHash(n));
    per_table_shards.push_back(std::move(shards));
  }
  std::vector<Bytes> out;
  out.reserve(n);
  for (size_t shard = 0; shard < n; ++shard) {
    Bytes snap;
    ByteWriter w(snap);
    w.WriteVarint(tables_.size());
    for (size_t t = 0; t < tables_.size(); ++t) {
      Bytes ts = per_table_shards[t][shard].Snapshot();
      w.WriteLengthPrefixed(ts);
    }
    out.push_back(std::move(snap));
  }
  return out;
}

Status ElementInstance::MergeState(std::span<const uint8_t> snapshot) {
  ByteReader r(snapshot);
  auto count = r.ReadVarint();
  if (!count.ok()) return count.status();
  if (count.value() != tables_.size()) {
    return Status(ErrorCode::kInvalidArgument,
                  "cannot merge: table count mismatch for " + name());
  }
  for (uint64_t i = 0; i < count.value(); ++i) {
    auto blob = r.ReadLengthPrefixed();
    if (!blob.ok()) return blob.status();
    auto table = Table::Restore(blob.value());
    if (!table.ok()) return table.status();
    ADN_RETURN_IF_ERROR(tables_[i].MergeFrom(table.value()));
  }
  InvalidateCacheRuntime();
  return Status::Ok();
}

Bytes ElementInstance::SnapshotSlice(size_t slot, size_t num_slots) const {
  Bytes out;
  ByteWriter w(out);
  w.WriteVarint(tables_.size());
  for (const Table& t : tables_) {
    Bytes snap = t.SliceByKeySlot(slot, num_slots).Snapshot();
    w.WriteLengthPrefixed(snap);
  }
  return out;
}

size_t ElementInstance::EraseSlice(size_t slot, size_t num_slots) {
  size_t erased = 0;
  for (Table& t : tables_) erased += t.EraseKeySlot(slot, num_slots);
  InvalidateCacheRuntime();
  return erased;
}

Result<std::vector<Bytes>> ElementInstance::SplitStateSlotted(
    size_t n, size_t num_slots) const {
  std::vector<std::vector<Table>> per_table_shards;
  for (const Table& t : tables_) {
    ADN_ASSIGN_OR_RETURN(std::vector<Table> shards,
                         t.SplitByKeySlot(n, num_slots));
    per_table_shards.push_back(std::move(shards));
  }
  std::vector<Bytes> out;
  out.reserve(n);
  for (size_t shard = 0; shard < n; ++shard) {
    Bytes snap;
    ByteWriter w(snap);
    w.WriteVarint(tables_.size());
    for (size_t t = 0; t < tables_.size(); ++t) {
      Bytes ts = per_table_shards[t][shard].Snapshot();
      w.WriteLengthPrefixed(ts);
    }
    out.push_back(std::move(snap));
  }
  return out;
}

Status ElementInstance::ReplaceCode(std::shared_ptr<const ElementIr> new_code) {
  ADN_RETURN_IF_ERROR(CheckStateCompatible(*code_, *new_code));
  code_ = std::move(new_code);
  ResolveObsInstruments();
  InvalidateCacheRuntime();
  return Status::Ok();
}

uint64_t ElementInstance::StateContentHash() const {
  // Plain XOR over table hashes: decomposable across shards, so that the
  // XOR of the shard instances' hashes equals the source instance's hash
  // when (and only when) the rows partition exactly.
  uint64_t h = 0;
  for (const Table& t : tables_) h ^= t.ContentHash();
  return h;
}

}  // namespace adn::ir
