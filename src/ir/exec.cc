#include "ir/exec.h"

#include "ir/state_delta.h"
#include "obs/intern.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace adn::ir {

using rpc::Message;
using rpc::Row;
using rpc::Table;
using rpc::Value;

ElementInstance::ElementInstance(std::shared_ptr<const ElementIr> code,
                                 uint64_t seed)
    : code_(std::move(code)), rng_(seed), nonce_counter_(seed) {
  tables_.reserve(code_->state_tables.size());
  for (const auto& [name, schema] : code_->state_tables) {
    tables_.emplace_back(name, schema);
  }
  ResolveObsInstruments();
}

void ElementInstance::ResolveObsInstruments() {
  obs_name_id_ = obs::InternName(code_->name);
  obs_hist_ = &obs::MetricsRegistry::Default().GetHistogram(
      "adn_element_latency_ns", "element=\"" + code_->name + "\"");
}

bool ElementInstance::AppliesTo(rpc::MessageKind kind) const {
  switch (code_->direction) {
    case dsl::Direction::kRequest:
      return kind == rpc::MessageKind::kRequest;
    case dsl::Direction::kResponse:
      return kind == rpc::MessageKind::kResponse;
    case dsl::Direction::kBoth:
      return kind != rpc::MessageKind::kError;
  }
  return false;
}

Table* ElementInstance::FindTable(std::string_view name) {
  for (Table& t : tables_) {
    if (t.name() == name) return &t;
  }
  return nullptr;
}

const Table* ElementInstance::FindTable(std::string_view name) const {
  for (const Table& t : tables_) {
    if (t.name() == name) return &t;
  }
  return nullptr;
}

ProcessResult ElementInstance::Process(Message& m, int64_t now_ns) {
  ++processed_;
  // Same instrumentation boundary as a compiled element segment
  // (ChainExecutor), so either tier yields the same span tree and feeds the
  // same adn_element_latency_ns series.
  const bool timing = obs::Enabled();
  obs::TraceContext* trace = timing ? obs::CurrentTrace() : nullptr;
  const int64_t seg_start = timing ? obs::NowNs() : 0;
  size_t span = 0;
  if (trace != nullptr) span = trace->OpenSpan(obs_name_id_);
  auto finish = [&] {
    if (timing) {
      obs_hist_->Observe(static_cast<double>(obs::NowNs() - seg_start));
    }
    if (trace != nullptr) trace->CloseSpan(span);
  };
  EvalContext ctx;
  ctx.message = &m;
  ctx.fn_ctx.message = &m;
  ctx.fn_ctx.rng = &rng_;
  ctx.fn_ctx.now_ns = now_ns;
  ctx.fn_ctx.nonce = ++nonce_counter_;
  for (const StmtIr& stmt : code_->statements) {
    ProcessResult r = RunStatement(stmt, m, ctx);
    if (r.outcome != ProcessOutcome::kPass) {
      ++dropped_;
      finish();
      return r;
    }
  }
  finish();
  return ProcessResult::Pass();
}

namespace {

ProcessResult DropFor(const SelectIr& sel) {
  ProcessResult r;
  r.outcome = sel.on_drop == dsl::DropBehavior::kAbort
                  ? ProcessOutcome::kDropAbort
                  : ProcessOutcome::kDropSilent;
  r.abort_message = sel.abort_message;
  return r;
}

ProcessResult AbortWith(std::string message) {
  ProcessResult r;
  r.outcome = ProcessOutcome::kDropAbort;
  r.abort_message = std::move(message);
  return r;
}

}  // namespace

ProcessResult ElementInstance::RunStatement(const StmtIr& stmt, Message& m,
                                            EvalContext& ctx) {
  switch (stmt.kind) {
    case StmtIr::Kind::kSelect: {
      const SelectIr& sel = *stmt.select;
      ctx.joined_row = nullptr;
      // 1. Join: find the matching state row (or drop).
      if (sel.join.has_value()) {
        Table* table = FindTable(sel.join->table);
        if (table == nullptr) {
          return AbortWith("internal: missing state table " +
                           sel.join->table);
        }
        const Row* match = nullptr;
        if (sel.join->key_is_primary &&
            sel.join->probe.kind == ExprNode::Kind::kInputField) {
          // Fast path: a bare-field probe against a single-column primary
          // key needs no Value copies and no temporary rows.
          match =
              table->LookupSingleKey(m.GetFieldOrNull(sel.join->probe.field));
        } else {
          auto probe = EvaluateExpr(sel.join->probe, ctx);
          if (!probe.ok()) return AbortWith(probe.error().ToString());
          if (sel.join->key_is_primary) {
            match = table->LookupSingleKey(probe.value());
          } else {
            size_t col = sel.join->table_key_col;
            const Value& key = probe.value();
            match = table->FindFirst([&](const Row& row) {
              return row[col].EqualsValue(key);
            });
          }
        }
        if (match == nullptr) return DropFor(sel);
        ctx.joined_row = match;
      }
      // 2. WHERE.
      if (sel.where.has_value()) {
        auto pass = EvaluatePredicate(*sel.where, ctx);
        if (!pass.ok()) return AbortWith(pass.error().ToString());
        if (!pass.value()) return DropFor(sel);
      }
      // 3. Projection. Evaluate outputs against the *input* tuple before
      // mutating anything (SQL snapshot semantics).
      std::vector<std::pair<std::string, Value>> computed;
      computed.reserve(sel.outputs.size());
      for (const auto& out : sel.outputs) {
        if (out.identity) continue;  // plain pass-through of same-named field
        auto v = EvaluateExpr(out.expr, ctx);
        if (!v.ok()) return AbortWith(v.error().ToString());
        computed.emplace_back(out.name, std::move(v).value());
      }
      if (!sel.passthrough) {
        // Strict projection: keep only the listed output fields.
        std::vector<rpc::FieldId> keep;
        keep.reserve(sel.outputs.size());
        for (const auto& out : sel.outputs) {
          keep.push_back(rpc::InternFieldName(out.name));
        }
        m.ProjectFields(keep);
      }
      for (auto& [name, value] : computed) {
        m.SetField(name, std::move(value));
      }
      // Routing: honor __destination if the element set it.
      if (const Value* dest = m.FindField(kDestinationField);
          dest != nullptr && dest->type() == rpc::ValueType::kInt) {
        m.set_destination(static_cast<rpc::EndpointId>(dest->AsInt()));
      }
      ctx.joined_row = nullptr;
      return ProcessResult::Pass();
    }

    case StmtIr::Kind::kInsert: {
      const InsertIr& ins = *stmt.insert;
      Table* table = FindTable(ins.table);
      if (table == nullptr) {
        return AbortWith("internal: missing state table " + ins.table);
      }
      Row row;
      row.reserve(ins.values.size());
      for (const ExprNode& e : ins.values) {
        auto v = EvaluateExpr(e, ctx);
        if (!v.ok()) return AbortWith(v.error().ToString());
        row.push_back(std::move(v).value());
      }
      if (Status s = table->Insert(std::move(row)); !s.ok()) {
        return AbortWith(s.ToString());
      }
      return ProcessResult::Pass();
    }

    case StmtIr::Kind::kUpdate: {
      const UpdateIr& upd = *stmt.update;
      Table* table = FindTable(upd.table);
      if (table == nullptr) {
        return AbortWith("internal: missing state table " + upd.table);
      }
      // Point update (WHERE pk = message expr): one index lookup, no scan.
      if (const ExprNode* key_expr = PointUpdateKeyExpr(upd, table->schema());
          key_expr != nullptr) {
        ctx.joined_row = nullptr;
        auto key = EvaluateExpr(*key_expr, ctx);
        if (!key.ok()) return AbortWith(key.error().ToString());
        if (key.value().is_null()) return ProcessResult::Pass();
        const Row* hit = table->LookupSingleKey(key.value());
        if (hit == nullptr) return ProcessResult::Pass();
        Row next = *hit;
        ctx.joined_row = hit;
        for (const auto& [col, expr] : upd.assignments) {
          auto v = EvaluateExpr(expr, ctx);
          if (!v.ok()) {
            ctx.joined_row = nullptr;
            return AbortWith(v.error().ToString());
          }
          next[col] = std::move(v).value();
        }
        ctx.joined_row = nullptr;
        if (Status s = table->Insert(std::move(next)); !s.ok()) {
          return AbortWith(s.ToString());
        }
        return ProcessResult::Pass();
      }
      // Two-phase: collect new rows, then re-insert (upsert keeps PK index
      // coherent). Collect first to avoid iterator invalidation.
      std::vector<Row> updated;
      for (const Row& row : table->rows()) {
        ctx.joined_row = &row;
        bool hit = true;
        if (upd.where.has_value()) {
          auto pass = EvaluatePredicate(*upd.where, ctx);
          if (!pass.ok()) {
            ctx.joined_row = nullptr;
            return AbortWith(pass.error().ToString());
          }
          hit = pass.value();
        }
        if (!hit) continue;
        Row next = row;
        for (const auto& [col, expr] : upd.assignments) {
          auto v = EvaluateExpr(expr, ctx);
          if (!v.ok()) {
            ctx.joined_row = nullptr;
            return AbortWith(v.error().ToString());
          }
          next[col] = std::move(v).value();
        }
        updated.push_back(std::move(next));
      }
      ctx.joined_row = nullptr;
      for (Row& row : updated) {
        if (Status s = table->Insert(std::move(row)); !s.ok()) {
          return AbortWith(s.ToString());
        }
      }
      return ProcessResult::Pass();
    }

    case StmtIr::Kind::kDelete: {
      const DeleteIr& d = *stmt.del;
      Table* table = FindTable(d.table);
      if (table == nullptr) {
        return AbortWith("internal: missing state table " + d.table);
      }
      if (!d.where.has_value()) {
        table->Clear();
        return ProcessResult::Pass();
      }
      // Evaluate predicates up front (EraseWhere's callback cannot
      // propagate errors).
      std::vector<char> doomed(table->RowCount(), 0);
      size_t i = 0;
      for (const Row& row : table->rows()) {
        ctx.joined_row = &row;
        auto pass = EvaluatePredicate(*d.where, ctx);
        if (!pass.ok()) {
          ctx.joined_row = nullptr;
          return AbortWith(pass.error().ToString());
        }
        doomed[i++] = pass.value() ? 1 : 0;
      }
      ctx.joined_row = nullptr;
      size_t idx = 0;
      table->EraseWhere([&](const Row&) { return doomed[idx++] != 0; });
      return ProcessResult::Pass();
    }
  }
  return AbortWith("internal: unhandled statement kind");
}

Bytes ElementInstance::SnapshotState() const {
  Bytes out;
  ByteWriter w(out);
  w.WriteVarint(tables_.size());
  for (const Table& t : tables_) {
    Bytes snap = t.Snapshot();
    w.WriteLengthPrefixed(snap);
  }
  return out;
}

Status ElementInstance::RestoreState(std::span<const uint8_t> snapshot) {
  ByteReader r(snapshot);
  auto count = r.ReadVarint();
  if (!count.ok()) return count.status();
  if (count.value() != tables_.size()) {
    return Status(ErrorCode::kInvalidArgument,
                  "snapshot has " + std::to_string(count.value()) +
                      " tables, element " + name() + " expects " +
                      std::to_string(tables_.size()));
  }
  std::vector<Table> restored;
  for (uint64_t i = 0; i < count.value(); ++i) {
    auto blob = r.ReadLengthPrefixed();
    if (!blob.ok()) return blob.status();
    auto table = Table::Restore(blob.value());
    if (!table.ok()) return table.status();
    if (!(table->schema() == tables_[i].schema())) {
      return Status(ErrorCode::kInvalidArgument,
                    "snapshot table " + table->name() +
                        " schema mismatch for element " + name());
    }
    restored.push_back(std::move(table).value());
  }
  tables_ = std::move(restored);
  return Status::Ok();
}

Result<std::vector<Bytes>> ElementInstance::SplitState(size_t n) const {
  // Shard each table, then assemble per-shard snapshots.
  std::vector<std::vector<Table>> per_table_shards;
  for (const Table& t : tables_) {
    ADN_ASSIGN_OR_RETURN(std::vector<Table> shards, t.SplitByKeyHash(n));
    per_table_shards.push_back(std::move(shards));
  }
  std::vector<Bytes> out;
  out.reserve(n);
  for (size_t shard = 0; shard < n; ++shard) {
    Bytes snap;
    ByteWriter w(snap);
    w.WriteVarint(tables_.size());
    for (size_t t = 0; t < tables_.size(); ++t) {
      Bytes ts = per_table_shards[t][shard].Snapshot();
      w.WriteLengthPrefixed(ts);
    }
    out.push_back(std::move(snap));
  }
  return out;
}

Status ElementInstance::MergeState(std::span<const uint8_t> snapshot) {
  ByteReader r(snapshot);
  auto count = r.ReadVarint();
  if (!count.ok()) return count.status();
  if (count.value() != tables_.size()) {
    return Status(ErrorCode::kInvalidArgument,
                  "cannot merge: table count mismatch for " + name());
  }
  for (uint64_t i = 0; i < count.value(); ++i) {
    auto blob = r.ReadLengthPrefixed();
    if (!blob.ok()) return blob.status();
    auto table = Table::Restore(blob.value());
    if (!table.ok()) return table.status();
    ADN_RETURN_IF_ERROR(tables_[i].MergeFrom(table.value()));
  }
  return Status::Ok();
}

Bytes ElementInstance::SnapshotSlice(size_t slot, size_t num_slots) const {
  Bytes out;
  ByteWriter w(out);
  w.WriteVarint(tables_.size());
  for (const Table& t : tables_) {
    Bytes snap = t.SliceByKeySlot(slot, num_slots).Snapshot();
    w.WriteLengthPrefixed(snap);
  }
  return out;
}

size_t ElementInstance::EraseSlice(size_t slot, size_t num_slots) {
  size_t erased = 0;
  for (Table& t : tables_) erased += t.EraseKeySlot(slot, num_slots);
  return erased;
}

Result<std::vector<Bytes>> ElementInstance::SplitStateSlotted(
    size_t n, size_t num_slots) const {
  std::vector<std::vector<Table>> per_table_shards;
  for (const Table& t : tables_) {
    ADN_ASSIGN_OR_RETURN(std::vector<Table> shards,
                         t.SplitByKeySlot(n, num_slots));
    per_table_shards.push_back(std::move(shards));
  }
  std::vector<Bytes> out;
  out.reserve(n);
  for (size_t shard = 0; shard < n; ++shard) {
    Bytes snap;
    ByteWriter w(snap);
    w.WriteVarint(tables_.size());
    for (size_t t = 0; t < tables_.size(); ++t) {
      Bytes ts = per_table_shards[t][shard].Snapshot();
      w.WriteLengthPrefixed(ts);
    }
    out.push_back(std::move(snap));
  }
  return out;
}

Status ElementInstance::ReplaceCode(std::shared_ptr<const ElementIr> new_code) {
  ADN_RETURN_IF_ERROR(CheckStateCompatible(*code_, *new_code));
  code_ = std::move(new_code);
  ResolveObsInstruments();
  return Status::Ok();
}

uint64_t ElementInstance::StateContentHash() const {
  // Plain XOR over table hashes: decomposable across shards, so that the
  // XOR of the shard instances' hashes equals the source instance's hash
  // when (and only when) the rows partition exactly.
  uint64_t h = 0;
  for (const Table& t : tables_) h ^= t.ContentHash();
  return h;
}

}  // namespace adn::ir
