// Statement- and element-level IR.
//
// An ElementIr is the compiler's view of one DSL element: resolved, typed
// statements plus an EffectSummary. The summary is what makes the paper's
// optimizations possible — "A SQL-like language provides a foundation for the
// compiler to infer which fields are read or written by an element, when it
// is safe to re-order elements, and what information needs to be communicated
// between elements (headers)" (§5.1).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dsl/ast.h"
#include "ir/expr.h"
#include "rpc/schema.h"

namespace adn::ir {

// Special output field: when a SELECT writes `__destination` (INT), the
// processor routes the message to that endpoint (how load balancers steer).
inline constexpr std::string_view kDestinationField = "__destination";

struct SelectIr {
  // Drop disposition when the join misses or WHERE rejects. Carried per
  // statement (not per element) so the fusion pass can merge elements while
  // preserving each original element's abort semantics.
  dsl::DropBehavior on_drop = dsl::DropBehavior::kAbort;
  std::string abort_message;

  // Pass all input fields through (a `*` item was present).
  bool passthrough = false;
  // Computed/overriding output fields, applied after passthrough. An entry
  // whose name matches an existing field replaces it.
  struct OutputField {
    std::string name;
    rpc::ValueType type;
    ExprNode expr;
    // True when this output is a plain copy of the same-named input field
    // (projection without modification) — such writes don't count as
    // modifications in the effect analysis.
    bool identity = false;
  };
  std::vector<OutputField> outputs;

  // Optional equijoin against a state table.
  struct JoinIr {
    std::string table;
    ExprNode probe;          // evaluated against the input tuple
    size_t table_key_col = 0;  // column of `table` compared against probe
    // Whether table_key_col is the table's (single-column) primary key —
    // enables O(1) lookup; otherwise a scan.
    bool key_is_primary = false;
  };
  std::optional<JoinIr> join;

  std::optional<ExprNode> where;  // references input and joined columns
};

struct InsertIr {
  std::string table;
  // One expression per table column, in schema order (lowering reorders and
  // fills NULLs for unnamed columns).
  std::vector<ExprNode> values;
};

struct UpdateIr {
  std::string table;
  std::vector<std::pair<size_t, ExprNode>> assignments;  // column idx -> expr
  std::optional<ExprNode> where;  // references table columns + input fields
};

// Point-update detection: when an UPDATE's WHERE clause pins the table's
// single-column primary key to a message-derived value (`WHERE pk = expr`
// with no other table-column references and matching static type), both
// execution tiers replace the whole-table scan with one key-index lookup —
// the difference between O(rows) and O(1) per message for counters like the
// Quota element. Returns the key-value expression, or nullptr when the
// statement needs the general scan.
const ExprNode* PointUpdateKeyExpr(const UpdateIr& upd,
                                   const rpc::Schema& schema);

struct DeleteIr {
  std::string table;
  std::optional<ExprNode> where;
};

struct StmtIr {
  enum class Kind { kSelect, kInsert, kUpdate, kDelete };
  Kind kind;
  // Exactly one is populated, matching `kind`.
  std::optional<SelectIr> select;
  std::optional<InsertIr> insert;
  std::optional<UpdateIr> update;
  std::optional<DeleteIr> del;

  int OpCount() const;
};

// What an element reads, writes and may do to the message stream. Field sets
// are sorted & deduplicated name lists.
struct EffectSummary {
  std::vector<std::string> fields_read;
  std::vector<std::string> fields_written;   // modified or created
  std::vector<std::string> tables_read;
  std::vector<std::string> tables_written;
  bool may_drop = false;           // a SELECT can eliminate the message
  bool nondeterministic = false;   // uses random()/now()/encrypt()
  bool reads_metadata = false;
  bool sets_destination = false;   // writes __destination

  bool ReadsField(std::string_view f) const;
  bool WritesField(std::string_view f) const;
  std::string DebugString() const;
};

// A "filter" element (retry/timeout/rate-limit/...) carries its operator
// name and arguments instead of SQL statements; the data-plane binds it to a
// platform-specific FilterOp implementation (elements/filter_ops.h).
struct FilterIr {
  std::string op;
  std::vector<std::pair<std::string, rpc::Value>> args;
};

// A cache element (CACHE decl): memoizes responses of idempotent RPCs keyed
// on `key_fields`. The runtime keeps ARC recency/frequency metadata outside
// the state table (ir/exec.cc); only the cached rows themselves are durable
// state, so instances migrate like any other element.
struct CacheIr {
  size_t capacity = 0;     // max resident entries (>=1)
  int64_t ttl_ns = 0;      // entry lifetime; 0 => never expires
  std::vector<std::string> key_fields;  // request fields forming the key
  std::string table;       // backing state table ("__cache_<name>")
};

struct ElementIr {
  std::string name;
  dsl::Direction direction = dsl::Direction::kRequest;
  dsl::DropBehavior on_drop = dsl::DropBehavior::kAbort;
  std::string abort_message;

  // SQL elements have statements; filter elements have filter_op instead;
  // cache elements have cache_op (and a synthesized backing state table).
  std::vector<StmtIr> statements;
  std::optional<FilterIr> filter_op;
  std::optional<CacheIr> cache_op;
  bool IsFilter() const { return filter_op.has_value(); }
  bool IsCache() const { return cache_op.has_value(); }

  // Schemas of every state table the statements reference (copied from the
  // program so each compiled element is self-contained).
  std::vector<std::pair<std::string, rpc::Schema>> state_tables;

  // Input fields the element declared (arrival schema expectation).
  rpc::Schema input;

  EffectSummary effects;

  // Static cost in interpreter ops (sum over statements + dispatch).
  int OpCount() const;

  const rpc::Schema* FindStateSchema(std::string_view table) const;
};

}  // namespace adn::ir
