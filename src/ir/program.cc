#include "ir/program.h"

#include <string>

#include "ir/expr.h"
#include "obs/trace.h"

namespace adn::ir {

using rpc::Message;
using rpc::Row;
using rpc::Table;
using rpc::Value;
using rpc::ValueType;

std::string_view OpName(Instr::Op op) {
  switch (op) {
    case Instr::Op::kLoadConst: return "load_const";
    case Instr::Op::kLoadField: return "load_field";
    case Instr::Op::kLoadJoin: return "load_join";
    case Instr::Op::kMaterialize: return "materialize";
    case Instr::Op::kCoerceBool: return "coerce_bool";
    case Instr::Op::kUnary: return "unary";
    case Instr::Op::kBinary: return "binary";
    case Instr::Op::kCall: return "call";
    case Instr::Op::kJump: return "jump";
    case Instr::Op::kJumpIfFalse: return "jump_if_false";
    case Instr::Op::kJumpIfTrue: return "jump_if_true";
    case Instr::Op::kLookupPk: return "lookup_pk";
    case Instr::Op::kLookupScan: return "lookup_scan";
    case Instr::Op::kClearJoin: return "clear_join";
    case Instr::Op::kStoreField: return "store_field";
    case Instr::Op::kProject: return "project";
    case Instr::Op::kRouteDest: return "route_dest";
    case Instr::Op::kInsertRow: return "insert_row";
    case Instr::Op::kUpdateRows: return "update_rows";
    case Instr::Op::kDeleteRows: return "delete_rows";
    case Instr::Op::kDrop: return "drop";
    case Instr::Op::kBeginElement: return "begin_element";
    case Instr::Op::kSkipUnlessKind: return "skip_unless_kind";
    case Instr::Op::kReturnPass: return "return_pass";
    case Instr::Op::kReturnValue: return "return_value";
  }
  return "?";
}

uint32_t ChainProgram::TotalInstrCount() const {
  return static_cast<uint32_t>(code.size());
}

double ChainProgram::TotalPerByteCostNs() const {
  double total = 0.0;
  for (const ElementSeg& e : elements) total += e.per_byte_cost_ns;
  return total;
}

std::string ChainProgram::DebugString() const {
  std::string out;
  out += "ChainProgram: " + std::to_string(code.size()) + " instrs, " +
         std::to_string(num_registers) + " regs, " +
         std::to_string(elements.size()) + " elements\n";
  for (size_t i = 0; i < code.size(); ++i) {
    for (const ElementSeg& e : elements) {
      if (e.entry_ip == i) out += "-- element " + e.name + ":\n";
    }
    const Instr& in = code[i];
    out += "  " + std::to_string(i) + ": " + std::string(OpName(in.op));
    switch (in.op) {
      case Instr::Op::kLoadConst:
        out += " r" + std::to_string(in.a) + " <- " +
               consts[in.b].ToDisplayString();
        break;
      case Instr::Op::kLoadField:
      case Instr::Op::kStoreField:
        out += " r" + std::to_string(in.a) + " '" + field_names[in.b] + "'";
        break;
      case Instr::Op::kLoadJoin:
        out += " r" + std::to_string(in.a) + " col" + std::to_string(in.b);
        break;
      case Instr::Op::kUnary:
        out += " r" + std::to_string(in.a) + " r" + std::to_string(in.b);
        break;
      case Instr::Op::kBinary:
        out += " r" + std::to_string(in.a) + " <- r" + std::to_string(in.b) +
               " " + std::string(dsl::BinaryOpName(
                         static_cast<dsl::BinaryOp>(in.aux))) +
               " r" + std::to_string(in.c);
        break;
      case Instr::Op::kCall:
        out += " r" + std::to_string(in.a) + " <- " + functions[in.b]->name +
               "(r" + std::to_string(in.c) + "..+" + std::to_string(in.d) +
               ")";
        break;
      case Instr::Op::kJump:
        out += " -> " + std::to_string(in.d);
        break;
      case Instr::Op::kJumpIfFalse:
      case Instr::Op::kJumpIfTrue:
        out += " r" + std::to_string(in.a) + " -> " + std::to_string(in.d);
        break;
      case Instr::Op::kLookupPk:
      case Instr::Op::kLookupScan:
        out += " key=r" + std::to_string(in.a) + " " + tables[in.b].name +
               " miss-> " + std::to_string(in.d);
        break;
      case Instr::Op::kInsertRow:
        out += " " + tables[in.b].name + " r" + std::to_string(in.a) + "..+" +
               std::to_string(in.d);
        break;
      case Instr::Op::kUpdateRows:
      case Instr::Op::kDeleteRows:
        out += " spec" + std::to_string(in.b);
        break;
      case Instr::Op::kDrop:
        out += in.aux != 0 ? " silent" : " abort";
        out += " '" + strings[in.b] + "'";
        break;
      case Instr::Op::kBeginElement:
        out += " " + elements[in.b].name;
        break;
      case Instr::Op::kSkipUnlessKind:
        out += " mask=" + std::to_string(in.aux) + " -> " +
               std::to_string(in.d);
        break;
      case Instr::Op::kMaterialize:
      case Instr::Op::kReturnValue:
        out += " r" + std::to_string(in.a);
        break;
      default:
        break;
    }
    out += "\n";
  }
  return out;
}

// Same-concrete-type comparison fast path, mirroring EvalComparison exactly:
// kEq/kNe follow EqualsValue (IEEE == for floats, so NaN != NaN), the
// relational ops derive from CompareTo's three-way result (NaN yields 0, so
// <= and >= both hold against NaN). Nulls, mixed types, and every other
// value type fall back to EvalBinaryValue.
// External (not inline/static): program_burst.cc shares this fast path.
bool FastCompare(dsl::BinaryOp op, const Value& a, const Value& b,
                 bool* out) {
  const ValueType t = a.type();
  if (t != b.type()) return false;
  int c = 0;
  switch (t) {
    case ValueType::kInt: {
      const int64_t x = a.AsInt(), y = b.AsInt();
      if (op == dsl::BinaryOp::kEq) { *out = x == y; return true; }
      if (op == dsl::BinaryOp::kNe) { *out = x != y; return true; }
      c = x < y ? -1 : (x > y ? 1 : 0);
      break;
    }
    case ValueType::kFloat: {
      const double x = a.AsFloat(), y = b.AsFloat();
      if (op == dsl::BinaryOp::kEq) { *out = x == y; return true; }
      if (op == dsl::BinaryOp::kNe) { *out = x != y; return true; }
      c = x < y ? -1 : (x > y ? 1 : 0);
      break;
    }
    case ValueType::kText: {
      const std::string_view x = a.AsText();
      const std::string_view y = b.AsText();
      if (op == dsl::BinaryOp::kEq) { *out = x == y; return true; }
      if (op == dsl::BinaryOp::kNe) { *out = x != y; return true; }
      const int r = x.compare(y);
      c = r < 0 ? -1 : (r > 0 ? 1 : 0);
      break;
    }
    default:
      return false;
  }
  switch (op) {
    case dsl::BinaryOp::kLt: *out = c < 0; return true;
    case dsl::BinaryOp::kLe: *out = c <= 0; return true;
    case dsl::BinaryOp::kGt: *out = c > 0; return true;
    case dsl::BinaryOp::kGe: *out = c >= 0; return true;
    default: return false;  // arithmetic/logical op: generic path
  }
}

ChainExecutor::ChainExecutor(std::shared_ptr<const ChainProgram> program,
                             std::vector<ElementInstance*> instances)
    : program_(std::move(program)), instances_(std::move(instances)) {
  regs_.resize(program_->num_registers);
  slot_.resize(program_->num_registers);
  for (size_t i = 0; i < regs_.size(); ++i) slot_[i] = &regs_[i];
  // Field-name resolution happens here, once: compiled programs carry their
  // global ids; hand-built programs get them interned now.
  if (program_->field_gids.size() == program_->field_names.size()) {
    field_gids_ = program_->field_gids;
  } else {
    field_gids_.reserve(program_->field_names.size());
    for (const std::string& name : program_->field_names) {
      field_gids_.push_back(rpc::InternFieldName(name));
    }
  }
  keep_gids_.reserve(program_->keep_lists.size());
  for (const std::vector<uint16_t>& keep : program_->keep_lists) {
    std::vector<rpc::FieldId> gids;
    gids.reserve(keep.size());
    for (uint16_t fid : keep) gids.push_back(field_gids_[fid]);
    keep_gids_.push_back(std::move(gids));
  }
  dest_fid_ = rpc::InternFieldName(kDestinationField);
  elem_hist_.reserve(instances_.size());
  elem_name_ids_.reserve(instances_.size());
  for (const ElementInstance* inst : instances_) {
    elem_hist_.push_back(&obs::MetricsRegistry::Default().GetHistogram(
        "adn_element_latency_ns", "element=\"" + inst->name() + "\""));
    elem_name_ids_.push_back(obs::InternName(inst->name()));
  }
  // Trace identity and obs self-metrics, resolved once so the burst path
  // emits span events with zero string work or registry lookups.
  rpc_name_id_ = obs::InternName("rpc");
  burst_name_id_ = obs::InternName("burst");
  proc_name_id_ = obs::InternName("engine");
  spans_total_ =
      &obs::MetricsRegistry::Default().GetCounter("adn_obs_spans_total");
  traces_sampled_ = &obs::MetricsRegistry::Default().GetCounter(
      "adn_obs_traces_sampled_total");
  AnalyzeBurst();
}

Value ChainExecutor::TakeReg(uint16_t r) {
  if (slot_[r] == &regs_[r]) return std::move(regs_[r]);
  return *slot_[r];
}

Table* ChainExecutor::TableAt(uint16_t handle) {
  const ChainProgram::TableRef& ref = program_->tables[handle];
  return &instances_[ref.element]->TableAt(ref.table_idx);
}

// Evaluate a subprogram (an UPDATE/DELETE WHERE clause or assignment value)
// starting at `entry` until kReturnValue. Subprograms contain only
// expression-level opcodes — the compiler never emits table/message mutation
// inside them.
Result<Value> ChainExecutor::RunSub(uint32_t entry, RunState& rs) {
  const ChainProgram& p = *program_;
  const Instr* code = p.code.data();
  uint32_t ip = entry;
  for (;;) {
    const Instr& in = code[ip++];
    switch (in.op) {
      case Instr::Op::kLoadConst:
        slot_[in.a] = &p.consts[in.b];
        break;
      case Instr::Op::kLoadField:
        slot_[in.a] = &FieldOrNull(*rs.msg, in.b);
        break;
      case Instr::Op::kLoadJoin: {
        if (rs.joined_row == nullptr) {
          return Error(ErrorCode::kFailedPrecondition,
                       "join field read outside a JOIN context");
        }
        if (in.b >= rs.joined_row->size()) {
          return Error(ErrorCode::kInternal, "join column out of range");
        }
        slot_[in.a] = &(*rs.joined_row)[in.b];
        break;
      }
      case Instr::Op::kMaterialize:
        if (slot_[in.a] != &regs_[in.a]) {
          regs_[in.a] = *slot_[in.a];
          slot_[in.a] = &regs_[in.a];
        }
        break;
      case Instr::Op::kCoerceBool: {
        const bool t = ValueTruthy(*slot_[in.a]);
        regs_[in.a] = Value(t);
        slot_[in.a] = &regs_[in.a];
        break;
      }
      case Instr::Op::kUnary: {
        ADN_ASSIGN_OR_RETURN(
            Value v, EvalUnaryValue(static_cast<dsl::UnaryOp>(in.aux),
                                    *slot_[in.b]));
        regs_[in.a] = std::move(v);
        slot_[in.a] = &regs_[in.a];
        break;
      }
      case Instr::Op::kBinary: {
        bool fast = false;
        if (FastCompare(static_cast<dsl::BinaryOp>(in.aux), *slot_[in.b],
                        *slot_[in.c], &fast)) {
          regs_[in.a] = Value(fast);
          slot_[in.a] = &regs_[in.a];
          break;
        }
        ADN_ASSIGN_OR_RETURN(
            Value v, EvalBinaryValue(static_cast<dsl::BinaryOp>(in.aux),
                                     *slot_[in.b], *slot_[in.c]));
        regs_[in.a] = std::move(v);
        slot_[in.a] = &regs_[in.a];
        break;
      }
      case Instr::Op::kCall: {
        // len() on a borrowed register reads the size in place (same fast
        // path as the interpreter); the generic path moves owned arguments
        // and copies borrowed ones.
        if (in.aux != 0) {
          const Value& v0 = *slot_[in.c];
          if (v0.type() == ValueType::kText) {
            regs_[in.a] = Value(static_cast<int64_t>(v0.AsText().size()));
            slot_[in.a] = &regs_[in.a];
            break;
          }
          if (v0.type() == ValueType::kBytes) {
            regs_[in.a] = Value(static_cast<int64_t>(v0.AsBytes().size()));
            slot_[in.a] = &regs_[in.a];
            break;
          }
        }
        call_args_.clear();
        for (uint32_t i = 0; i < in.d; ++i) {
          call_args_.push_back(TakeReg(static_cast<uint16_t>(in.c + i)));
        }
        ADN_ASSIGN_OR_RETURN(Value v,
                             p.functions[in.b]->eval(rs.fn_ctx, call_args_));
        regs_[in.a] = std::move(v);
        slot_[in.a] = &regs_[in.a];
        break;
      }
      case Instr::Op::kJump:
        ip = in.d;
        break;
      case Instr::Op::kJumpIfFalse:
        if (!ValueTruthy(*slot_[in.a])) ip = in.d;
        break;
      case Instr::Op::kJumpIfTrue:
        if (ValueTruthy(*slot_[in.a])) ip = in.d;
        break;
      case Instr::Op::kReturnValue:
        return *slot_[in.a];
      default:
        return Error(ErrorCode::kInternal,
                     "opcode not allowed in subprogram: " +
                         std::string(OpName(in.op)));
    }
  }
}

// Mirrors ElementInstance::RunStatement's kUpdate: two-phase row collection
// with the row bound as the join context, then upsert re-insertion.
Status ChainExecutor::ExecUpdate(const ChainProgram::UpdateSpec& spec,
                                 RunState& rs) {
  Table* table = TableAt(spec.table);
  if (spec.key_entry != ChainProgram::kNoSub) {
    // Point update (WHERE pk = message expr): one index lookup, no scan.
    rs.joined_row = nullptr;
    auto key = RunSub(spec.key_entry, rs);
    if (!key.ok()) return key.status();
    if (key.value().is_null()) return Status::Ok();  // SQL: NULL never matches
    const Row* hit = table->LookupSingleKey(key.value());
    if (hit == nullptr) return Status::Ok();
    Row next = table->TakeSpareRow();
    next.assign(hit->begin(), hit->end());
    rs.joined_row = hit;
    for (const auto& [col, entry] : spec.assignments) {
      auto v = RunSub(entry, rs);
      if (!v.ok()) {
        rs.joined_row = nullptr;
        return v.status();
      }
      next[col] = std::move(v).value();
    }
    rs.joined_row = nullptr;
    return table->Insert(std::move(next));
  }
  std::vector<Row>& updated = upd_scratch_;
  updated.clear();
  for (const Row& row : table->rows()) {
    rs.joined_row = &row;
    bool hit = true;
    if (spec.where_entry != ChainProgram::kNoSub) {
      auto pass = RunSub(spec.where_entry, rs);
      if (!pass.ok()) {
        rs.joined_row = nullptr;
        return pass.status();
      }
      hit = ValueTruthy(pass.value());
    }
    if (!hit) continue;
    // Copy into a recycled row (capacity from an earlier upsert
    // displacement) so steady-state UPDATE allocates nothing.
    Row next = table->TakeSpareRow();
    next.assign(row.begin(), row.end());
    for (const auto& [col, entry] : spec.assignments) {
      auto v = RunSub(entry, rs);
      if (!v.ok()) {
        rs.joined_row = nullptr;
        return v.status();
      }
      next[col] = std::move(v).value();
    }
    updated.push_back(std::move(next));
  }
  rs.joined_row = nullptr;
  for (Row& row : updated) {
    ADN_RETURN_IF_ERROR(table->Insert(std::move(row)));
  }
  updated.clear();
  return Status::Ok();
}

Status ChainExecutor::ExecDelete(const ChainProgram::DeleteSpec& spec,
                                 RunState& rs) {
  Table* table = TableAt(spec.table);
  if (spec.where_entry == ChainProgram::kNoSub) {
    table->Clear();
    return Status::Ok();
  }
  std::vector<char> doomed(table->RowCount(), 0);
  size_t i = 0;
  for (const Row& row : table->rows()) {
    rs.joined_row = &row;
    auto pass = RunSub(spec.where_entry, rs);
    if (!pass.ok()) {
      rs.joined_row = nullptr;
      return pass.status();
    }
    doomed[i++] = ValueTruthy(pass.value()) ? 1 : 0;
  }
  rs.joined_row = nullptr;
  size_t idx = 0;
  table->EraseWhere([&](const Row&) { return doomed[idx++] != 0; });
  return Status::Ok();
}

ProcessResult ChainExecutor::Process(Message& m, int64_t now_ns) {
  const ChainProgram& p = *program_;
  RunState rs;
  rs.msg = &m;
  rs.fn_ctx.message = &m;
  rs.fn_ctx.now_ns = now_ns;

  // Per-element-segment observability. `timing` is the master-switch load
  // (once per message, not per instruction); `trace` is non-null only when
  // this RPC is inside a sampled RpcTraceScope. Both off = dead branches.
  const bool timing = obs::Enabled();
  obs::TraceContext* trace = timing ? obs::CurrentTrace() : nullptr;
  constexpr size_t kNoSpan = static_cast<size_t>(-1);
  size_t open_span = kNoSpan;
  int64_t seg_start = 0;
  auto end_segment = [&] {
    if (!timing) return;
    if (rs.cur >= 0) {
      elem_hist_[static_cast<size_t>(rs.cur)]->Observe(
          static_cast<double>(obs::NowNs() - seg_start));
    }
    if (trace != nullptr && open_span != kNoSpan) {
      trace->CloseSpan(open_span);
      open_span = kNoSpan;
    }
  };

  // Matches the interpreter's contract: any non-pass outcome (drops and
  // runtime errors alike) counts as a drop on the element that produced it.
  auto abort_with = [&](std::string message) {
    end_segment();
    if (rs.cur >= 0) instances_[rs.cur]->NoteDropped();
    ProcessResult r;
    r.outcome = ProcessOutcome::kDropAbort;
    r.abort_message = std::move(message);
    return r;
  };

  const Instr* code = p.code.data();
  uint32_t ip = 0;
  for (;;) {
    const Instr& in = code[ip++];
    switch (in.op) {
      case Instr::Op::kLoadConst:
        slot_[in.a] = &p.consts[in.b];
        break;
      case Instr::Op::kLoadField:
        slot_[in.a] = &FieldOrNull(m, in.b);
        break;
      case Instr::Op::kLoadJoin: {
        if (rs.joined_row == nullptr) {
          return abort_with(
              Status(ErrorCode::kFailedPrecondition,
                     "join field read outside a JOIN context")
                  .ToString());
        }
        if (in.b >= rs.joined_row->size()) {
          return abort_with(
              Status(ErrorCode::kInternal, "join column out of range")
                  .ToString());
        }
        slot_[in.a] = &(*rs.joined_row)[in.b];
        break;
      }
      case Instr::Op::kMaterialize:
        if (slot_[in.a] != &regs_[in.a]) {
          regs_[in.a] = *slot_[in.a];
          slot_[in.a] = &regs_[in.a];
        }
        break;
      case Instr::Op::kCoerceBool: {
        const bool t = ValueTruthy(*slot_[in.a]);
        regs_[in.a] = Value(t);
        slot_[in.a] = &regs_[in.a];
        break;
      }
      case Instr::Op::kUnary: {
        auto v = EvalUnaryValue(static_cast<dsl::UnaryOp>(in.aux),
                                *slot_[in.b]);
        if (!v.ok()) return abort_with(v.error().ToString());
        regs_[in.a] = std::move(v).value();
        slot_[in.a] = &regs_[in.a];
        break;
      }
      case Instr::Op::kBinary: {
        bool fast = false;
        if (FastCompare(static_cast<dsl::BinaryOp>(in.aux), *slot_[in.b],
                        *slot_[in.c], &fast)) {
          regs_[in.a] = Value(fast);
          slot_[in.a] = &regs_[in.a];
          break;
        }
        auto v = EvalBinaryValue(static_cast<dsl::BinaryOp>(in.aux),
                                 *slot_[in.b], *slot_[in.c]);
        if (!v.ok()) return abort_with(v.error().ToString());
        regs_[in.a] = std::move(v).value();
        slot_[in.a] = &regs_[in.a];
        break;
      }
      case Instr::Op::kCall: {
        if (in.aux != 0) {
          const Value& v0 = *slot_[in.c];
          if (v0.type() == ValueType::kText) {
            regs_[in.a] = Value(static_cast<int64_t>(v0.AsText().size()));
            slot_[in.a] = &regs_[in.a];
            break;
          }
          if (v0.type() == ValueType::kBytes) {
            regs_[in.a] = Value(static_cast<int64_t>(v0.AsBytes().size()));
            slot_[in.a] = &regs_[in.a];
            break;
          }
        }
        call_args_.clear();
        for (uint32_t i = 0; i < in.d; ++i) {
          call_args_.push_back(TakeReg(static_cast<uint16_t>(in.c + i)));
        }
        auto v = p.functions[in.b]->eval(rs.fn_ctx, call_args_);
        if (!v.ok()) return abort_with(v.error().ToString());
        regs_[in.a] = std::move(v).value();
        slot_[in.a] = &regs_[in.a];
        break;
      }
      case Instr::Op::kJump:
        ip = in.d;
        break;
      case Instr::Op::kJumpIfFalse:
        if (!ValueTruthy(*slot_[in.a])) ip = in.d;
        break;
      case Instr::Op::kJumpIfTrue:
        if (ValueTruthy(*slot_[in.a])) ip = in.d;
        break;
      case Instr::Op::kLookupPk: {
        const Row* match = TableAt(in.b)->LookupSingleKey(*slot_[in.a]);
        if (match == nullptr) {
          ip = in.d;
        } else {
          rs.joined_row = match;
        }
        break;
      }
      case Instr::Op::kLookupScan: {
        const Value& key = *slot_[in.a];
        const size_t col = in.c;
        const Row* match = TableAt(in.b)->FindFirst(
            [&](const Row& row) { return row[col].EqualsValue(key); });
        if (match == nullptr) {
          ip = in.d;
        } else {
          rs.joined_row = match;
        }
        break;
      }
      case Instr::Op::kClearJoin:
        rs.joined_row = nullptr;
        break;
      case Instr::Op::kStoreField:
        m.SetField(field_gids_[in.b], TakeReg(in.a));
        break;
      case Instr::Op::kProject:
        m.ProjectFields(keep_gids_[in.b]);
        break;
      case Instr::Op::kRouteDest: {
        if (const Value* dest = m.FindField(dest_fid_);
            dest != nullptr && dest->type() == ValueType::kInt) {
          m.set_destination(static_cast<rpc::EndpointId>(dest->AsInt()));
        }
        break;
      }
      case Instr::Op::kInsertRow: {
        Table* table = TableAt(in.b);
        Row row = table->TakeSpareRow();
        row.reserve(in.d);
        for (uint32_t i = 0; i < in.d; ++i) {
          row.push_back(TakeReg(static_cast<uint16_t>(in.a + i)));
        }
        if (Status s = table->Insert(std::move(row)); !s.ok()) {
          return abort_with(s.ToString());
        }
        break;
      }
      case Instr::Op::kUpdateRows: {
        if (Status s = ExecUpdate(p.update_specs[in.b], rs); !s.ok()) {
          return abort_with(s.ToString());
        }
        break;
      }
      case Instr::Op::kDeleteRows: {
        if (Status s = ExecDelete(p.delete_specs[in.b], rs); !s.ok()) {
          return abort_with(s.ToString());
        }
        break;
      }
      case Instr::Op::kDrop: {
        end_segment();
        if (rs.cur >= 0) instances_[rs.cur]->NoteDropped();
        ProcessResult r;
        r.outcome = in.aux != 0 ? ProcessOutcome::kDropSilent
                                : ProcessOutcome::kDropAbort;
        r.abort_message = p.strings[in.b];
        return r;
      }
      case Instr::Op::kBeginElement: {
        end_segment();
        ElementInstance* inst = instances_[in.b];
        inst->NoteProcessed();
        rs.fn_ctx.rng = &inst->rng();
        rs.fn_ctx.nonce = inst->BumpNonce();
        rs.cur = in.b;
        rs.joined_row = nullptr;
        if (timing) {
          seg_start = obs::NowNs();
          if (trace != nullptr) {
            open_span = trace->OpenSpan(elem_name_ids_[in.b]);
          }
        }
        break;
      }
      case Instr::Op::kSkipUnlessKind:
        if ((in.aux & (1u << static_cast<uint8_t>(m.kind()))) == 0) {
          ip = in.d;
        }
        break;
      case Instr::Op::kReturnPass:
        end_segment();
        return ProcessResult::Pass();
      case Instr::Op::kReturnValue:
        return abort_with(
            Status(ErrorCode::kInternal,
                   "return_value reached outside a subprogram")
                .ToString());
    }
  }
}

}  // namespace adn::ir
