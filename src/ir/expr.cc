#include "ir/expr.h"

#include <algorithm>

namespace adn::ir {

using dsl::BinaryOp;
using dsl::UnaryOp;
using rpc::Value;
using rpc::ValueType;

int ExprNode::OpCount() const {
  int total = 1;
  for (const ExprNode& c : children) total += c.OpCount();
  return total;
}

void ExprNode::CollectInputFields(std::vector<std::string>& out) const {
  if (kind == Kind::kInputField) {
    if (std::find(out.begin(), out.end(), field) == out.end()) {
      out.push_back(field);
    }
  }
  for (const ExprNode& c : children) c.CollectInputFields(out);
}

bool ExprNode::IsNondeterministic() const {
  if (kind == Kind::kCall && fn != nullptr && !fn->deterministic) return true;
  for (const ExprNode& c : children) {
    if (c.IsNondeterministic()) return true;
  }
  return false;
}

bool ExprNode::ReadsMetadata() const {
  if (kind == Kind::kCall && fn != nullptr && fn->reads_metadata) return true;
  for (const ExprNode& c : children) {
    if (c.ReadsMetadata()) return true;
  }
  return false;
}

bool ExprNode::AllFunctions(
    const std::function<bool(const FunctionDef&)>& pred) const {
  if (kind == Kind::kCall && fn != nullptr && !pred(*fn)) return false;
  for (const ExprNode& c : children) {
    if (!c.AllFunctions(pred)) return false;
  }
  return true;
}

std::string ExprNode::ToString() const {
  switch (kind) {
    case Kind::kLiteral:
      return literal.ToDisplayString();
    case Kind::kInputField:
      return "input." + field;
    case Kind::kJoinField:
      return "join[" + std::to_string(join_col) + "]";
    case Kind::kCall: {
      std::string out = (fn != nullptr ? fn->name : "?") + "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += ", ";
        out += children[i].ToString();
      }
      return out + ")";
    }
    case Kind::kUnary:
      return std::string(unary_op == UnaryOp::kNegate ? "-" : "NOT ") +
             children[0].ToString();
    case Kind::kBinary:
      return "(" + children[0].ToString() + " " +
             std::string(dsl::BinaryOpName(binary_op)) + " " +
             children[1].ToString() + ")";
  }
  return "?";
}

namespace {

Result<Value> EvalArithmetic(BinaryOp op, const Value& a, const Value& b) {
  if (op == BinaryOp::kConcat) {
    if (a.type() == ValueType::kText && b.type() == ValueType::kText) {
      std::string out;
      out.reserve(a.AsText().size() + b.AsText().size());
      out.append(a.AsText());
      out.append(b.AsText());
      return Value(std::move(out));
    }
    if (a.type() == ValueType::kBytes && b.type() == ValueType::kBytes) {
      const BytesView av = a.AsBytes();
      const BytesView bv = b.AsBytes();
      Bytes out;
      out.reserve(av.size() + bv.size());
      out.insert(out.end(), av.begin(), av.end());
      out.insert(out.end(), bv.begin(), bv.end());
      return Value(std::move(out));
    }
    return Error(ErrorCode::kTypeError, "'||' wants TEXT or BYTES operands");
  }
  if (!a.IsNumeric() || !b.IsNumeric()) {
    return Error(ErrorCode::kTypeError,
                 "arithmetic on non-numeric values");
  }
  const bool both_int =
      a.type() == ValueType::kInt && b.type() == ValueType::kInt;
  if (both_int) {
    int64_t x = a.AsInt();
    int64_t y = b.AsInt();
    switch (op) {
      case BinaryOp::kAdd: return Value(x + y);
      case BinaryOp::kSub: return Value(x - y);
      case BinaryOp::kMul: return Value(x * y);
      case BinaryOp::kDiv:
        if (y == 0) return Value::Null();  // SQL: division by zero => NULL
        return Value(x / y);
      case BinaryOp::kMod:
        if (y == 0) return Value::Null();
        // Euclidean-style: result has the sign of the divisor's magnitude,
        // always non-negative for positive divisors (hash % n stays valid).
        {
          int64_t r = x % y;
          if (r < 0) r += (y < 0 ? -y : y);
          return Value(r);
        }
      default: break;
    }
  } else {
    double x = a.NumericAsDouble();
    double y = b.NumericAsDouble();
    switch (op) {
      case BinaryOp::kAdd: return Value(x + y);
      case BinaryOp::kSub: return Value(x - y);
      case BinaryOp::kMul: return Value(x * y);
      case BinaryOp::kDiv:
        if (y == 0.0) return Value::Null();
        return Value(x / y);
      case BinaryOp::kMod:
        return Error(ErrorCode::kTypeError, "'%' wants integer operands");
      default: break;
    }
  }
  return Error(ErrorCode::kInternal, "unhandled arithmetic operator");
}

Result<Value> EvalComparison(BinaryOp op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (op == BinaryOp::kEq) return Value(a.EqualsValue(b));
  if (op == BinaryOp::kNe) return Value(!a.EqualsValue(b));
  int c = a.CompareTo(b);
  switch (op) {
    case BinaryOp::kLt: return Value(c < 0);
    case BinaryOp::kLe: return Value(c <= 0);
    case BinaryOp::kGt: return Value(c > 0);
    case BinaryOp::kGe: return Value(c >= 0);
    default: break;
  }
  return Error(ErrorCode::kInternal, "unhandled comparison operator");
}

// Borrow the expression's value without copying when it is a literal or a
// direct field/column reference — the operands of virtually every WHERE
// clause and join predicate. Returns nullptr when the expression computes.
const Value* TryBorrow(const ExprNode& expr, const EvalContext& ctx) {
  switch (expr.kind) {
    case ExprNode::Kind::kLiteral:
      return &expr.literal;
    case ExprNode::Kind::kInputField:
      return ctx.message != nullptr ? &ctx.message->GetFieldOrNull(expr.field)
                                    : nullptr;
    case ExprNode::Kind::kJoinField:
      return ctx.joined_row != nullptr &&
                     expr.join_col < ctx.joined_row->size()
                 ? &(*ctx.joined_row)[expr.join_col]
                 : nullptr;
    default:
      return nullptr;
  }
}

}  // namespace

bool ValueTruthy(const Value& v) {
  return v.type() == ValueType::kBool && v.AsBool();
}

Result<Value> EvalBinaryValue(BinaryOp op, const Value& a, const Value& b) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return EvalComparison(op, a, b);
    case BinaryOp::kAnd:
    case BinaryOp::kOr:
      return Error(ErrorCode::kInternal,
                   "AND/OR must be lowered to control flow");
    default:
      if (a.is_null() || b.is_null()) return Value::Null();
      return EvalArithmetic(op, a, b);
  }
}

Result<Value> EvalUnaryValue(UnaryOp op, const Value& v) {
  if (v.is_null()) return Value::Null();
  if (op == UnaryOp::kNegate) {
    if (v.type() == ValueType::kInt) return Value(-v.AsInt());
    if (v.type() == ValueType::kFloat) return Value(-v.AsFloat());
    return Error(ErrorCode::kTypeError, "unary '-' wants numeric");
  }
  if (v.type() != ValueType::kBool) {
    return Error(ErrorCode::kTypeError, "NOT wants BOOL");
  }
  return Value(!v.AsBool());
}

Result<Value> EvaluateExpr(const ExprNode& expr, EvalContext& ctx) {
  switch (expr.kind) {
    case ExprNode::Kind::kLiteral:
      return expr.literal;
    case ExprNode::Kind::kInputField: {
      if (ctx.message == nullptr) {
        return Error(ErrorCode::kFailedPrecondition,
                     "no message bound while reading input." + expr.field);
      }
      return ctx.message->GetFieldOrNull(expr.field);
    }
    case ExprNode::Kind::kJoinField: {
      if (ctx.joined_row == nullptr) {
        return Error(ErrorCode::kFailedPrecondition,
                     "join field read outside a JOIN context");
      }
      if (expr.join_col >= ctx.joined_row->size()) {
        return Error(ErrorCode::kInternal, "join column out of range");
      }
      return (*ctx.joined_row)[expr.join_col];
    }
    case ExprNode::Kind::kCall: {
      // len() on a direct field reference is a hot path (logging, quotas):
      // read the size in place instead of copying the payload into an
      // argument vector.
      if (expr.fn->name == "len" && expr.children.size() == 1) {
        if (const Value* v = TryBorrow(expr.children[0], ctx)) {
          if (v->type() == ValueType::kText) {
            return Value(static_cast<int64_t>(v->AsText().size()));
          }
          if (v->type() == ValueType::kBytes) {
            return Value(static_cast<int64_t>(v->AsBytes().size()));
          }
        }
      }
      std::vector<Value> args;
      args.reserve(expr.children.size());
      for (const ExprNode& c : expr.children) {
        ADN_ASSIGN_OR_RETURN(Value v, EvaluateExpr(c, ctx));
        args.push_back(std::move(v));
      }
      return expr.fn->eval(ctx.fn_ctx, args);
    }
    case ExprNode::Kind::kUnary: {
      ADN_ASSIGN_OR_RETURN(Value v, EvaluateExpr(expr.children[0], ctx));
      return EvalUnaryValue(expr.unary_op, v);
    }
    case ExprNode::Kind::kBinary: {
      const BinaryOp op = expr.binary_op;
      if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
        // Short-circuit; NULL treated as false at this boundary.
        ADN_ASSIGN_OR_RETURN(Value lhs, EvaluateExpr(expr.children[0], ctx));
        bool l = ValueTruthy(lhs);
        if (op == BinaryOp::kAnd && !l) return Value(false);
        if (op == BinaryOp::kOr && l) return Value(true);
        ADN_ASSIGN_OR_RETURN(Value rhs, EvaluateExpr(expr.children[1], ctx));
        return Value(ValueTruthy(rhs));
      }
      // Comparisons over borrowable operands (field vs literal, field vs
      // joined column) evaluate copy-free — the WHERE-clause hot path.
      const bool is_comparison =
          op == BinaryOp::kEq || op == BinaryOp::kNe || op == BinaryOp::kLt ||
          op == BinaryOp::kLe || op == BinaryOp::kGt || op == BinaryOp::kGe;
      if (is_comparison) {
        const Value* l = TryBorrow(expr.children[0], ctx);
        const Value* r = TryBorrow(expr.children[1], ctx);
        if (l != nullptr && r != nullptr) return EvalComparison(op, *l, *r);
      }
      ADN_ASSIGN_OR_RETURN(Value lhs, EvaluateExpr(expr.children[0], ctx));
      ADN_ASSIGN_OR_RETURN(Value rhs, EvaluateExpr(expr.children[1], ctx));
      if (is_comparison) return EvalComparison(op, lhs, rhs);
      if (lhs.is_null() || rhs.is_null()) return Value::Null();
      return EvalArithmetic(op, lhs, rhs);
    }
  }
  return Error(ErrorCode::kInternal, "unhandled expression kind");
}

Result<bool> EvaluatePredicate(const ExprNode& expr, EvalContext& ctx) {
  ADN_ASSIGN_OR_RETURN(Value v, EvaluateExpr(expr, ctx));
  return ValueTruthy(v);
}

}  // namespace adn::ir
