#include "ir/element_ir.h"

#include <algorithm>

namespace adn::ir {

int StmtIr::OpCount() const {
  int total = 1;  // statement dispatch
  switch (kind) {
    case Kind::kSelect: {
      const SelectIr& s = *select;
      for (const auto& out : s.outputs) total += out.expr.OpCount();
      if (s.join.has_value()) total += 2 + s.join->probe.OpCount();
      if (s.where.has_value()) total += s.where->OpCount();
      break;
    }
    case Kind::kInsert: {
      for (const auto& v : insert->values) total += v.OpCount();
      break;
    }
    case Kind::kUpdate: {
      for (const auto& [idx, e] : update->assignments) {
        (void)idx;
        total += e.OpCount();
      }
      if (update->where.has_value()) total += update->where->OpCount();
      total += 2;  // scan bookkeeping
      break;
    }
    case Kind::kDelete: {
      if (del->where.has_value()) total += del->where->OpCount();
      total += 2;
      break;
    }
  }
  return total;
}

bool EffectSummary::ReadsField(std::string_view f) const {
  return std::find(fields_read.begin(), fields_read.end(), f) !=
         fields_read.end();
}

bool EffectSummary::WritesField(std::string_view f) const {
  return std::find(fields_written.begin(), fields_written.end(), f) !=
         fields_written.end();
}

std::string EffectSummary::DebugString() const {
  auto join = [](const std::vector<std::string>& v) {
    std::string out;
    for (size_t i = 0; i < v.size(); ++i) {
      if (i > 0) out += ",";
      out += v[i];
    }
    return out.empty() ? std::string("-") : out;
  };
  std::string out = "reads{" + join(fields_read) + "} writes{" +
                    join(fields_written) + "} state_r{" + join(tables_read) +
                    "} state_w{" + join(tables_written) + "}";
  if (may_drop) out += " drops";
  if (nondeterministic) out += " nondet";
  if (sets_destination) out += " routes";
  return out;
}

int ElementIr::OpCount() const {
  int total = 2;  // element dispatch + result handling
  for (const StmtIr& s : statements) total += s.OpCount();
  if (IsFilter()) total += 4;  // operator invocation scaffolding
  return total;
}

const rpc::Schema* ElementIr::FindStateSchema(std::string_view table) const {
  for (const auto& [name, schema] : state_tables) {
    if (name == table) return &schema;
  }
  return nullptr;
}

}  // namespace adn::ir
