#include "ir/element_ir.h"

#include <algorithm>

namespace adn::ir {

int StmtIr::OpCount() const {
  int total = 1;  // statement dispatch
  switch (kind) {
    case Kind::kSelect: {
      const SelectIr& s = *select;
      for (const auto& out : s.outputs) total += out.expr.OpCount();
      if (s.join.has_value()) total += 2 + s.join->probe.OpCount();
      if (s.where.has_value()) total += s.where->OpCount();
      break;
    }
    case Kind::kInsert: {
      for (const auto& v : insert->values) total += v.OpCount();
      break;
    }
    case Kind::kUpdate: {
      for (const auto& [idx, e] : update->assignments) {
        (void)idx;
        total += e.OpCount();
      }
      if (update->where.has_value()) total += update->where->OpCount();
      total += 2;  // scan bookkeeping
      break;
    }
    case Kind::kDelete: {
      if (del->where.has_value()) total += del->where->OpCount();
      total += 2;
      break;
    }
  }
  return total;
}

bool EffectSummary::ReadsField(std::string_view f) const {
  return std::find(fields_read.begin(), fields_read.end(), f) !=
         fields_read.end();
}

bool EffectSummary::WritesField(std::string_view f) const {
  return std::find(fields_written.begin(), fields_written.end(), f) !=
         fields_written.end();
}

std::string EffectSummary::DebugString() const {
  auto join = [](const std::vector<std::string>& v) {
    std::string out;
    for (size_t i = 0; i < v.size(); ++i) {
      if (i > 0) out += ",";
      out += v[i];
    }
    return out.empty() ? std::string("-") : out;
  };
  std::string out = "reads{" + join(fields_read) + "} writes{" +
                    join(fields_written) + "} state_r{" + join(tables_read) +
                    "} state_w{" + join(tables_written) + "}";
  if (may_drop) out += " drops";
  if (nondeterministic) out += " nondet";
  if (sets_destination) out += " routes";
  return out;
}

int ElementIr::OpCount() const {
  int total = 2;  // element dispatch + result handling
  for (const StmtIr& s : statements) total += s.OpCount();
  if (IsFilter()) total += 4;  // operator invocation scaffolding
  // Cache lookup: key hash + index probe + (hit) in-place rewrite,
  // amortized. Small and constant — the point of the element.
  if (IsCache()) total += 6;
  return total;
}

const rpc::Schema* ElementIr::FindStateSchema(std::string_view table) const {
  for (const auto& [name, schema] : state_tables) {
    if (name == table) return &schema;
  }
  return nullptr;
}

namespace {

bool ReadsTableColumn(const ExprNode& e) {
  if (e.kind == ExprNode::Kind::kJoinField) return true;
  for (const ExprNode& c : e.children) {
    if (ReadsTableColumn(c)) return true;
  }
  return false;
}

}  // namespace

const ExprNode* PointUpdateKeyExpr(const UpdateIr& upd,
                                   const rpc::Schema& schema) {
  if (!upd.where.has_value()) return nullptr;
  const ExprNode& w = *upd.where;
  if (w.kind != ExprNode::Kind::kBinary ||
      w.binary_op != dsl::BinaryOp::kEq || w.children.size() != 2) {
    return nullptr;
  }
  const std::vector<size_t> pk = schema.PrimaryKeyIndexes();
  if (pk.size() != 1) return nullptr;
  for (int side = 0; side < 2; ++side) {
    const ExprNode& col = w.children[static_cast<size_t>(side)];
    const ExprNode& key = w.children[static_cast<size_t>(1 - side)];
    // One side must be exactly the PK column; the other must not touch the
    // table at all and must already have the PK's static type (so the index
    // lookup's exact-value equality agrees with SQL `=` on every row).
    if (col.kind == ExprNode::Kind::kJoinField && col.join_col == pk[0] &&
        !ReadsTableColumn(key) && key.type == schema.columns()[pk[0]].type) {
      return &key;
    }
  }
  return nullptr;
}

}  // namespace adn::ir
