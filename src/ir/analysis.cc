#include "ir/analysis.h"

#include <algorithm>

namespace adn::ir {

namespace {

// First common element of two sorted-or-not name lists, or empty.
std::string FirstIntersection(const std::vector<std::string>& a,
                              const std::vector<std::string>& b) {
  for (const std::string& x : a) {
    if (std::find(b.begin(), b.end(), x) != b.end()) return x;
  }
  return {};
}

bool HasStateWrites(const EffectSummary& e) {
  return !e.tables_written.empty();
}

}  // namespace

std::string_view ConflictKindName(ConflictKind kind) {
  switch (kind) {
    case ConflictKind::kNone: return "none";
    case ConflictKind::kFieldReadWrite: return "field-read-write";
    case ConflictKind::kFieldWriteWrite: return "field-write-write";
    case ConflictKind::kStateConflict: return "state-conflict";
    case ConflictKind::kDropVsStateWrite: return "drop-vs-state-write";
    case ConflictKind::kDropVsRoute: return "drop-vs-route";
    case ConflictKind::kOrderSensitiveMeta: return "order-sensitive";
  }
  return "?";
}

ConflictReport CheckCommutes(const EffectSummary& a, const EffectSummary& b) {
  // Field-level write/read hazards in either direction.
  if (std::string f = FirstIntersection(a.fields_written, b.fields_read);
      !f.empty()) {
    return {ConflictKind::kFieldReadWrite, "field '" + f + "'"};
  }
  if (std::string f = FirstIntersection(b.fields_written, a.fields_read);
      !f.empty()) {
    return {ConflictKind::kFieldReadWrite, "field '" + f + "'"};
  }
  if (std::string f = FirstIntersection(a.fields_written, b.fields_written);
      !f.empty()) {
    return {ConflictKind::kFieldWriteWrite, "field '" + f + "'"};
  }
  // State tables: RW or WW on the same table is order-sensitive.
  if (std::string t = FirstIntersection(a.tables_written, b.tables_read);
      !t.empty()) {
    return {ConflictKind::kStateConflict, "table '" + t + "'"};
  }
  if (std::string t = FirstIntersection(b.tables_written, a.tables_read);
      !t.empty()) {
    return {ConflictKind::kStateConflict, "table '" + t + "'"};
  }
  if (std::string t = FirstIntersection(a.tables_written, b.tables_written);
      !t.empty()) {
    return {ConflictKind::kStateConflict, "table '" + t + "'"};
  }
  // A drop on one side makes the other's state writes observable-order
  // dependent: "log then maybe-drop" differs from "maybe-drop then log".
  if (a.may_drop && HasStateWrites(b)) {
    return {ConflictKind::kDropVsStateWrite,
            "a drops while b writes state"};
  }
  if (b.may_drop && HasStateWrites(a)) {
    return {ConflictKind::kDropVsStateWrite,
            "b drops while a writes state"};
  }
  // Dropping around a routing decision is fine for correctness (the message
  // dies either way), but routing around a *stateful* LB would already be a
  // state conflict; pure-hash routing commutes with drops. No conflict here.
  return {ConflictKind::kNone, ""};
}

ConflictReport CheckParallelizable(const EffectSummary& a,
                                   const EffectSummary& b) {
  ConflictReport ordered = CheckCommutes(a, b);
  if (!ordered.Commutes()) return ordered;
  // Parallel execution additionally forbids both dropping (ambiguous abort
  // message / double error) — we conservatively allow at most one dropper.
  if (a.may_drop && b.may_drop) {
    return {ConflictKind::kDropVsRoute, "both sides may drop"};
  }
  // Two routing decisions in parallel would race on __destination, but that
  // is already a write-write conflict on the field; nothing more to check.
  return {ConflictKind::kNone, ""};
}

std::vector<int> PartitionIntoParallelGroups(
    const std::vector<const ElementIr*>& chain) {
  std::vector<int> groups(chain.size(), 0);
  int current = 0;
  for (size_t i = 1; i < chain.size(); ++i) {
    // Joinable into the current group only if parallelizable with EVERY
    // member of the group.
    bool ok = true;
    for (size_t j = i; j-- > 0;) {
      if (groups[j] != current) break;
      if (!CheckParallelizable(chain[j]->effects, chain[i]->effects)
               .Commutes()) {
        ok = false;
        break;
      }
    }
    if (!ok) ++current;
    groups[i] = current;
  }
  return groups;
}

namespace {

// Relative per-message cost for reorder profitability. OpCount covers the
// interpreter work; payload-transforming UDFs (compress, encrypt, ...) cost
// orders of magnitude more than any op, so weigh them heavily.
int RelativeCost(const ElementIr& element) {
  int cost = element.OpCount();
  for (const StmtIr& stmt : element.statements) {
    if (stmt.kind != StmtIr::Kind::kSelect) continue;
    for (const auto& out : stmt.select->outputs) {
      bool ok = out.expr.AllFunctions(
          [](const FunctionDef& f) { return f.per_byte_cost_ns == 0.0; });
      if (!ok) cost += 100;
    }
  }
  return cost;
}

}  // namespace

std::vector<size_t> ComputeDropEarlyOrder(
    const std::vector<const ElementIr*>& chain) {
  // Bubble drop-capable elements toward the front, one adjacent swap at a
  // time, only when the pair commutes and the move is profitable: the
  // dropper is cheaper than the element it hops over (we save the hopped
  // element's cost on dropped messages and pay nothing extra otherwise).
  std::vector<size_t> order(chain.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 1; i < order.size(); ++i) {
      const ElementIr* prev = chain[order[i - 1]];
      const ElementIr* cur = chain[order[i]];
      if (!cur->effects.may_drop || prev->effects.may_drop) continue;
      if (RelativeCost(*cur) > RelativeCost(*prev)) continue;  // not profitable
      if (!CheckCommutes(prev->effects, cur->effects).Commutes()) continue;
      std::swap(order[i - 1], order[i]);
      changed = true;
    }
  }
  return order;
}

}  // namespace adn::ir
