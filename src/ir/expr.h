// Resolved, typed expression trees — the expression layer of the ADN IR.
//
// Produced from dsl::Expr by compiler/lower.cc: column references are
// resolved against the element's input schema or the joined state table,
// function calls are bound to FunctionDef entries, and a static result type
// is attached. Evaluation is a recursive walk; OpCount() feeds both the
// simulated per-element cost and the generated-vs-hand-coded comparisons.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "dsl/ast.h"
#include "ir/functions.h"
#include "rpc/message.h"
#include "rpc/table.h"

namespace adn::ir {

struct ExprNode {
  enum class Kind : uint8_t {
    kLiteral,     // constant
    kInputField,  // field of the RPC tuple, by name
    kJoinField,   // column of the joined state-table row, by index
    kCall,        // bound function
    kUnary,
    kBinary,
  };

  Kind kind = Kind::kLiteral;
  // Static result type; kNull means "depends on runtime input" (only for a
  // handful of polymorphic builtins — the type checker narrows where it can).
  rpc::ValueType type = rpc::ValueType::kNull;

  rpc::Value literal;                    // kLiteral
  std::string field;                     // kInputField
  size_t join_col = 0;                   // kJoinField
  const FunctionDef* fn = nullptr;       // kCall (owned by the registry)
  dsl::UnaryOp unary_op = dsl::UnaryOp::kNot;
  dsl::BinaryOp binary_op = dsl::BinaryOp::kAnd;
  std::vector<ExprNode> children;

  // Number of evaluation steps (nodes); the backends' cost unit.
  int OpCount() const;

  // Field names of the RPC tuple this expression reads.
  void CollectInputFields(std::vector<std::string>& out) const;

  // True if any node calls a non-deterministic function.
  bool IsNondeterministic() const;
  // True if any node reads message metadata (rpc_id(), method(), ...).
  bool ReadsMetadata() const;
  // True if every function used is available on the given target.
  bool AllFunctions(const std::function<bool(const FunctionDef&)>& pred) const;

  std::string ToString() const;
};

// Runtime context for expression evaluation.
struct EvalContext {
  const rpc::Message* message = nullptr;
  const rpc::Row* joined_row = nullptr;  // when inside a JOIN match
  FunctionContext fn_ctx;
};

// Evaluate the expression. SQL NULL semantics: any NULL operand of an
// arithmetic/comparison/concat operator yields NULL; AND/OR use Kleene logic
// flattened to two values at the predicate boundary (NULL => false).
Result<rpc::Value> EvaluateExpr(const ExprNode& expr, EvalContext& ctx);

// Evaluate as a predicate: NULL and non-BOOL are false.
Result<bool> EvaluatePredicate(const ExprNode& expr, EvalContext& ctx);

// --- Operator semantics shared with the compiled tier ----------------------
// The ChainProgram executor (ir/program.h) must agree with the interpreter
// bit-for-bit, including NULL propagation and error messages, so both tiers
// evaluate operators through these helpers.

// Predicate truthiness: only a BOOL true is true (NULL and non-BOOL false).
bool ValueTruthy(const rpc::Value& v);

// Any binary operator except AND/OR (those short-circuit and are lowered to
// jumps by the compiler). Comparisons yield NULL on a NULL operand;
// arithmetic/concat propagate NULL before type checks.
Result<rpc::Value> EvalBinaryValue(dsl::BinaryOp op, const rpc::Value& a,
                                   const rpc::Value& b);

// NOT / unary minus, NULL-propagating.
Result<rpc::Value> EvalUnaryValue(dsl::UnaryOp op, const rpc::Value& v);

}  // namespace adn::ir
