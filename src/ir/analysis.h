// Chain-level analysis: when may two elements be reordered or run in
// parallel? (paper §3: "parallelizing or reordering them while preserving
// semantics"; §5.2: "if two elements do not operate on the same RPC fields,
// they can be executed in parallel").
#pragma once

#include <string>
#include <vector>

#include "ir/element_ir.h"

namespace adn::ir {

// Why two elements conflict; kNone means they commute.
enum class ConflictKind {
  kNone,
  kFieldReadWrite,   // one writes a field the other reads
  kFieldWriteWrite,  // both write the same field
  kStateConflict,    // shared state table with at least one writer
  kDropVsStateWrite, // one may drop; the other records state (observable)
  kDropVsRoute,      // one may drop; the other picks the destination — a
                     // dropped message must not count against a backend
  kOrderSensitiveMeta,  // both nondeterministic over shared resources
};

std::string_view ConflictKindName(ConflictKind kind);

struct ConflictReport {
  ConflictKind kind = ConflictKind::kNone;
  std::string detail;  // e.g. the offending field name
  bool Commutes() const { return kind == ConflictKind::kNone; }
};

// Can `a` and `b`, adjacent in a chain (a before b), be swapped without
// changing observable behaviour (final delivered messages, state contents,
// abort/drop decisions)?
ConflictReport CheckCommutes(const EffectSummary& a, const EffectSummary& b);

// Can they run in parallel on the same message? Stricter than commuting:
// both see the same input snapshot, so neither may write a field or state
// table the other touches, and at most one may drop.
ConflictReport CheckParallelizable(const EffectSummary& a,
                                   const EffectSummary& b);

// Greedy chain partition into parallel groups: each group is a maximal run
// of consecutive elements that are pairwise parallelizable. Returns the
// group index per element position.
std::vector<int> PartitionIntoParallelGroups(
    const std::vector<const ElementIr*>& chain);

// "Drop early" reordering: move drop-capable cheap elements as early as the
// commutativity relation allows, so work isn't spent on messages that will
// be discarded. Returns the new order as indexes into `chain`. Stable for
// non-movable elements.
std::vector<size_t> ComputeDropEarlyOrder(
    const std::vector<const ElementIr*>& chain);

}  // namespace adn::ir
