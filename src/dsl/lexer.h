// Hand-written lexer for the ADN DSL.
#pragma once

#include <string_view>
#include <vector>

#include "common/status.h"
#include "dsl/token.h"

namespace adn::dsl {

// Tokenize a whole program. Comments: `-- to end of line` and `/* ... */`.
// String literals use single quotes with '' as the escaped quote (SQL style).
Result<std::vector<Token>> Tokenize(std::string_view source);

}  // namespace adn::dsl
