// Abstract syntax tree for ADN programs.
//
// A program consists of:
//   STATE TABLE decls  — relational element state (paper Figure 4),
//   ELEMENT decls      — SQL processing over the `input` RPC stream,
//   FILTER decls       — stream-shaping elements using platform-specific
//                        operators (timeouts, retries, rate limits; §5.1),
//   CHAIN decls        — the element chain between two services, with
//                        optional per-element location constraints (§4 Q1).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "dsl/token.h"
#include "rpc/schema.h"
#include "rpc/value.h"

namespace adn::dsl {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class BinaryOp {
  kAdd, kSub, kMul, kDiv, kMod, kConcat,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};
enum class UnaryOp { kNegate, kNot };

std::string_view BinaryOpName(BinaryOp op);

struct LiteralExpr {
  rpc::Value value;
};

// `input.username`, `ac_tab.permission`, or bare `username` (resolved by the
// type checker against the input schema first, then any joined table).
struct ColumnRefExpr {
  std::string table;  // empty when unqualified
  std::string column;
};

// Built-in or user-defined function call: hash(x), compress(payload), ...
struct CallExpr {
  std::string function;
  std::vector<ExprPtr> args;
};

struct UnaryExpr {
  UnaryOp op;
  ExprPtr operand;
};

struct BinaryExpr {
  BinaryOp op;
  ExprPtr lhs;
  ExprPtr rhs;
};

struct Expr {
  SourceLocation location;
  std::variant<LiteralExpr, ColumnRefExpr, CallExpr, UnaryExpr, BinaryExpr>
      node;

  template <typename T>
  const T* As() const {
    return std::get_if<T>(&node);
  }
  std::string ToString() const;
};

ExprPtr MakeExpr(SourceLocation loc,
                 std::variant<LiteralExpr, ColumnRefExpr, CallExpr, UnaryExpr,
                              BinaryExpr>
                     node);

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

// One output column of a SELECT: either `*` (all input fields) or
// `expr [AS alias]`. With both `*` and a named expr of an existing field
// name, the named expr replaces that field (documented DSL extension that
// makes `SELECT *, compress(payload) AS payload` natural).
struct SelectItem {
  bool is_star = false;
  ExprPtr expr;               // null when is_star
  std::string alias;          // empty => derived from expr
  SourceLocation location;
};

// `JOIN table ON left = right` — equijoin of the RPC tuple against a state
// table. `left`/`right` are arbitrary expressions; the type checker requires
// exactly one side to reference the joined table.
struct JoinClause {
  std::string table;
  ExprPtr left;
  ExprPtr right;
  SourceLocation location;
};

struct SelectStmt {
  std::vector<SelectItem> items;
  std::string from;  // must be "input" in element bodies
  std::optional<JoinClause> join;
  ExprPtr where;     // null => no predicate
  SourceLocation location;
};

struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;           // empty => schema order
  // Either literal VALUES (...) or INSERT INTO t SELECT ...
  std::vector<ExprPtr> values;                // used when !from_select
  std::unique_ptr<SelectStmt> from_select;    // used when set
  SourceLocation location;
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;  // null => all rows
  SourceLocation location;
};

struct DeleteStmt {
  std::string table;
  ExprPtr where;  // null => all rows
  SourceLocation location;
};

using Statement = std::variant<SelectStmt, InsertStmt, UpdateStmt, DeleteStmt>;

// ---------------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------------

// Which direction of the RPC stream the element processes.
enum class Direction { kRequest, kResponse, kBoth };
std::string_view DirectionName(Direction d);

// What happens to the RPC when an element's SELECT eliminates it.
enum class DropBehavior {
  kAbort,   // network generates an error response to the caller (ACL deny)
  kSilent,  // message vanishes (e.g. dedup, sampling)
};

struct TableDecl {
  std::string name;
  rpc::Schema schema;
  SourceLocation location;
};

struct ElementDecl {
  std::string name;
  Direction direction = Direction::kRequest;
  rpc::Schema input;  // declared RPC fields this element touches
  DropBehavior on_drop = DropBehavior::kAbort;
  std::string abort_message;  // used when on_drop == kAbort
  std::vector<Statement> body;
  SourceLocation location;
};

// FILTER name ON dir USING op(key => literal, ...);
// Stream-shaping elements whose operator bodies are platform-specific
// implementations registered in elements/filter_ops.h (paper §5.1: "complex
// ones will use operators with platform-specific implementations").
struct FilterDecl {
  std::string name;
  Direction direction = Direction::kRequest;
  std::string op;  // "retry", "timeout", "rate_limit", ...
  std::vector<std::pair<std::string, rpc::Value>> args;
  SourceLocation location;
};

// CACHE name (capacity => N, ttl_ms => N) KEY (field, ...);
// A memoizing response cache for idempotent RPCs. On the request path a hit
// rewrites the message into the cached response in place and short-circuits
// the rest of the chain (ProcessOutcome::kReply); a miss records a pending
// entry that the response path fills. Always bidirectional — the lookup and
// the fill are two halves of one element.
struct CacheDecl {
  std::string name;
  std::vector<std::pair<std::string, rpc::Value>> args;  // capacity, ttl_ms
  std::vector<std::string> key_fields;  // request fields forming the cache key
  SourceLocation location;
};

// Placement constraint for one chain position (§4 Q1: "element location
// constraints (e.g., the encryption element must be co-located with the
// sender)").
enum class LocationConstraint {
  kAny,
  kSender,    // must run on the caller's machine
  kReceiver,  // must run on the callee's machine
  kTrusted,   // must NOT run inside the application binary (security model)
};
std::string_view LocationConstraintName(LocationConstraint c);

struct ChainElementRef {
  std::string element;
  LocationConstraint location = LocationConstraint::kAny;
  SourceLocation source_location;
};

struct ChainDecl {
  std::string name;
  std::string caller_service;
  std::string callee_service;
  std::vector<ChainElementRef> elements;
  SourceLocation location;
};

struct Program {
  std::vector<TableDecl> tables;
  std::vector<ElementDecl> elements;
  std::vector<FilterDecl> filters;
  std::vector<CacheDecl> caches;
  std::vector<ChainDecl> chains;

  const TableDecl* FindTable(std::string_view name) const;
  const ElementDecl* FindElement(std::string_view name) const;
  const FilterDecl* FindFilter(std::string_view name) const;
  const CacheDecl* FindCache(std::string_view name) const;
  const ChainDecl* FindChain(std::string_view name) const;
};

}  // namespace adn::dsl
