// Token stream for the ADN DSL.
//
// The DSL is the paper's §5.1 programming abstraction: SQL-like element
// bodies (Figure 4), plus declarations for state tables, elements, filter
// elements with platform-specific operators, and chains with location
// constraints (§4 Q1). Keywords are case-insensitive; identifiers are not.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace adn::dsl {

enum class TokenKind : uint8_t {
  kEnd,
  kIdentifier,   // foo, ac_tab, input
  kKeyword,      // SELECT, ELEMENT, ... (normalized to upper case in text)
  kIntLiteral,   // 42
  kFloatLiteral, // 0.05
  kStringLiteral,// 'W'  (text holds the unquoted value)
  // Punctuation / operators:
  kLParen, kRParen, kLBrace, kRBrace, kComma, kSemicolon, kDot,
  kStar, kPlus, kMinus, kSlash, kPercent,
  kEq,        // =
  kNe,        // != or <>
  kLt, kLe, kGt, kGe,
  kConcat,    // ||
  kArrow,     // ->
};

std::string_view TokenKindName(TokenKind kind);

struct SourceLocation {
  int line = 1;
  int column = 1;

  std::string ToString() const {
    return "line " + std::to_string(line) + ":" + std::to_string(column);
  }
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;       // identifier/keyword/literal spelling
  int64_t int_value = 0;  // kIntLiteral
  double float_value = 0; // kFloatLiteral
  SourceLocation location;

  bool IsKeyword(std::string_view kw) const {
    return kind == TokenKind::kKeyword && text == kw;
  }
  std::string Describe() const;
};

// True if `upper` (an upper-cased identifier) is a reserved DSL keyword.
bool IsDslKeyword(std::string_view upper);

}  // namespace adn::dsl
