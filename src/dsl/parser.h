// Recursive-descent parser for the ADN DSL.
//
// Grammar sketch (keywords case-insensitive):
//
//   program      := (table_decl | element_decl | filter_decl | chain_decl)*
//   table_decl   := STATE TABLE ident '(' column (',' column)* ')' ';'
//   column       := ident type [PRIMARY KEY]
//   element_decl := ELEMENT ident [ON direction] '{' input_decl? drop_decl?
//                   statement* '}'
//   input_decl   := INPUT '(' column (',' column)* ')' ';'
//   drop_decl    := ON DROP (ABORT [string] | SILENT) ';'
//   statement    := (select | insert | update | delete) ';'
//   select       := SELECT select_item (',' select_item)* FROM ident
//                   [JOIN ident ON expr '=' expr] [WHERE expr]
//   insert       := INSERT INTO ident ['(' ident,* ')']
//                   (VALUES '(' expr,* ')' | select)
//   update       := UPDATE ident SET ident '=' expr (',' ...)* [WHERE expr]
//   delete       := DELETE FROM ident [WHERE expr]
//   filter_decl  := FILTER ident [ON direction] USING ident
//                   '(' [ident '=' literal (',' ...)*] ')' ';'
//   chain_decl   := CHAIN ident FOR CALLS ident '->' ident
//                   '{' chain_elem (',' chain_elem)* '}'
//   chain_elem   := ident [AT (ANY|SENDER|RECEIVER|TRUSTED)]
//
// Expression precedence (loosest to tightest):
//   OR < AND < NOT < comparison (= != < <= > >=) < additive (+ - ||)
//      < multiplicative (* / %) < unary - < primary
#pragma once

#include <string_view>

#include "common/status.h"
#include "dsl/ast.h"

namespace adn::dsl {

Result<Program> ParseProgram(std::string_view source);

// Parse a standalone expression (used by tests and the REPL-ish tools).
Result<ExprPtr> ParseExpression(std::string_view source);

}  // namespace adn::dsl
