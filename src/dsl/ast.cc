#include "dsl/ast.h"

namespace adn::dsl {

std::string_view BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kConcat: return "||";
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "!=";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
  }
  return "?";
}

std::string_view DirectionName(Direction d) {
  switch (d) {
    case Direction::kRequest: return "REQUEST";
    case Direction::kResponse: return "RESPONSE";
    case Direction::kBoth: return "BOTH";
  }
  return "?";
}

std::string_view LocationConstraintName(LocationConstraint c) {
  switch (c) {
    case LocationConstraint::kAny: return "ANY";
    case LocationConstraint::kSender: return "SENDER";
    case LocationConstraint::kReceiver: return "RECEIVER";
    case LocationConstraint::kTrusted: return "TRUSTED";
  }
  return "?";
}

ExprPtr MakeExpr(SourceLocation loc,
                 std::variant<LiteralExpr, ColumnRefExpr, CallExpr, UnaryExpr,
                              BinaryExpr>
                     node) {
  auto e = std::make_unique<Expr>();
  e->location = loc;
  e->node = std::move(node);
  return e;
}

std::string Expr::ToString() const {
  struct Printer {
    std::string operator()(const LiteralExpr& e) const {
      return e.value.ToDisplayString();
    }
    std::string operator()(const ColumnRefExpr& e) const {
      return e.table.empty() ? e.column : e.table + "." + e.column;
    }
    std::string operator()(const CallExpr& e) const {
      std::string out = e.function + "(";
      for (size_t i = 0; i < e.args.size(); ++i) {
        if (i > 0) out += ", ";
        out += e.args[i]->ToString();
      }
      return out + ")";
    }
    std::string operator()(const UnaryExpr& e) const {
      return std::string(e.op == UnaryOp::kNegate ? "-" : "NOT ") +
             e.operand->ToString();
    }
    std::string operator()(const BinaryExpr& e) const {
      return "(" + e.lhs->ToString() + " " +
             std::string(BinaryOpName(e.op)) + " " + e.rhs->ToString() + ")";
    }
  };
  return std::visit(Printer{}, node);
}

const TableDecl* Program::FindTable(std::string_view name) const {
  for (const auto& t : tables) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

const ElementDecl* Program::FindElement(std::string_view name) const {
  for (const auto& e : elements) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

const FilterDecl* Program::FindFilter(std::string_view name) const {
  for (const auto& f : filters) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

const CacheDecl* Program::FindCache(std::string_view name) const {
  for (const auto& c : caches) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const ChainDecl* Program::FindChain(std::string_view name) const {
  for (const auto& c : chains) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

}  // namespace adn::dsl
