#include "dsl/token.h"

#include <array>

namespace adn::dsl {

std::string_view TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEnd: return "end of input";
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kKeyword: return "keyword";
    case TokenKind::kIntLiteral: return "integer literal";
    case TokenKind::kFloatLiteral: return "float literal";
    case TokenKind::kStringLiteral: return "string literal";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kComma: return "','";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kPercent: return "'%'";
    case TokenKind::kEq: return "'='";
    case TokenKind::kNe: return "'!='";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kConcat: return "'||'";
    case TokenKind::kArrow: return "'->'";
  }
  return "?";
}

std::string Token::Describe() const {
  switch (kind) {
    case TokenKind::kIdentifier:
      return "identifier '" + text + "'";
    case TokenKind::kKeyword:
      return "keyword " + text;
    case TokenKind::kIntLiteral:
    case TokenKind::kFloatLiteral:
      return "number " + text;
    case TokenKind::kStringLiteral:
      return "string '" + text + "'";
    default:
      return std::string(TokenKindName(kind));
  }
}

bool IsDslKeyword(std::string_view upper) {
  static constexpr std::array kKeywords = {
      // Declarations.
      "STATE", "TABLE", "ELEMENT", "FILTER", "CACHE", "CHAIN",
      // Element modifiers.
      "ON", "REQUEST", "RESPONSE", "BOTH", "DROP", "ABORT", "SILENT",
      // SQL statements.
      "SELECT", "FROM", "JOIN", "WHERE", "INSERT", "INTO", "VALUES",
      "UPDATE", "SET", "DELETE", "AS",
      // Expressions.
      "AND", "OR", "NOT", "NULL", "TRUE", "FALSE",
      // Schema.
      "PRIMARY", "KEY",
      // Filters and chains.
      "USING", "FOR", "CALLS", "AT", "ANY", "SENDER", "RECEIVER", "TRUSTED",
  };
  for (std::string_view kw : kKeywords) {
    if (kw == upper) return true;
  }
  return false;
}

}  // namespace adn::dsl
