#include "dsl/lexer.h"

#include <cctype>
#include <charconv>

#include "common/strings.h"

namespace adn::dsl {

namespace {

class Lexer {
 public:
  explicit Lexer(std::string_view source) : source_(source) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> tokens;
    while (true) {
      ADN_RETURN_IF_ERROR(SkipWhitespaceAndComments());
      SourceLocation loc = location_;
      if (AtEnd()) {
        tokens.push_back(Token{TokenKind::kEnd, "", 0, 0, loc});
        return tokens;
      }
      char c = Peek();
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        tokens.push_back(LexWord(loc));
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        ADN_ASSIGN_OR_RETURN(Token t, LexNumber(loc));
        tokens.push_back(std::move(t));
      } else if (c == '\'') {
        ADN_ASSIGN_OR_RETURN(Token t, LexString(loc));
        tokens.push_back(std::move(t));
      } else {
        ADN_ASSIGN_OR_RETURN(Token t, LexOperator(loc));
        tokens.push_back(std::move(t));
      }
    }
  }

 private:
  bool AtEnd() const { return pos_ >= source_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < source_.size() ? source_[pos_ + ahead] : '\0';
  }
  char Advance() {
    char c = source_[pos_++];
    if (c == '\n') {
      ++location_.line;
      location_.column = 1;
    } else {
      ++location_.column;
    }
    return c;
  }

  Status SkipWhitespaceAndComments() {
    while (!AtEnd()) {
      char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '-' && Peek(1) == '-') {
        while (!AtEnd() && Peek() != '\n') Advance();
      } else if (c == '/' && Peek(1) == '*') {
        SourceLocation start = location_;
        Advance();
        Advance();
        while (!(AtEnd() || (Peek() == '*' && Peek(1) == '/'))) Advance();
        if (AtEnd()) {
          return Status(ErrorCode::kParseError,
                        "unterminated block comment starting at " +
                            start.ToString());
        }
        Advance();
        Advance();
      } else {
        break;
      }
    }
    return Status::Ok();
  }

  Token LexWord(SourceLocation loc) {
    size_t start = pos_;
    while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                        Peek() == '_')) {
      Advance();
    }
    std::string word(source_.substr(start, pos_ - start));
    std::string upper = ToUpperAscii(word);
    if (IsDslKeyword(upper)) {
      return Token{TokenKind::kKeyword, std::move(upper), 0, 0, loc};
    }
    return Token{TokenKind::kIdentifier, std::move(word), 0, 0, loc};
  }

  Result<Token> LexNumber(SourceLocation loc) {
    size_t start = pos_;
    bool is_float = false;
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
    if (Peek() == '.' && std::isdigit(static_cast<unsigned char>(Peek(1)))) {
      is_float = true;
      Advance();
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        Advance();
      }
    }
    if (Peek() == 'e' || Peek() == 'E') {
      size_t mark = pos_;
      Advance();
      if (Peek() == '+' || Peek() == '-') Advance();
      if (std::isdigit(static_cast<unsigned char>(Peek()))) {
        is_float = true;
        while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
          Advance();
        }
      } else {
        pos_ = mark;  // 'e' belongs to a following identifier, not the number
      }
    }
    std::string text(source_.substr(start, pos_ - start));
    Token t;
    t.location = loc;
    t.text = text;
    if (is_float) {
      t.kind = TokenKind::kFloatLiteral;
      t.float_value = std::stod(text);
    } else {
      t.kind = TokenKind::kIntLiteral;
      auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(),
                                       t.int_value);
      if (ec != std::errc()) {
        return Error(ErrorCode::kParseError,
                     "integer literal out of range at " + loc.ToString());
      }
    }
    return t;
  }

  Result<Token> LexString(SourceLocation loc) {
    Advance();  // opening quote
    std::string value;
    while (true) {
      if (AtEnd()) {
        return Error(ErrorCode::kParseError,
                     "unterminated string literal starting at " +
                         loc.ToString());
      }
      char c = Advance();
      if (c == '\'') {
        if (Peek() == '\'') {  // escaped quote
          value.push_back('\'');
          Advance();
        } else {
          break;
        }
      } else {
        value.push_back(c);
      }
    }
    return Token{TokenKind::kStringLiteral, std::move(value), 0, 0, loc};
  }

  Result<Token> LexOperator(SourceLocation loc) {
    char c = Advance();
    auto make = [&](TokenKind kind, std::string text) {
      return Token{kind, std::move(text), 0, 0, loc};
    };
    switch (c) {
      case '(': return make(TokenKind::kLParen, "(");
      case ')': return make(TokenKind::kRParen, ")");
      case '{': return make(TokenKind::kLBrace, "{");
      case '}': return make(TokenKind::kRBrace, "}");
      case ',': return make(TokenKind::kComma, ",");
      case ';': return make(TokenKind::kSemicolon, ";");
      case '.': return make(TokenKind::kDot, ".");
      case '*': return make(TokenKind::kStar, "*");
      case '+': return make(TokenKind::kPlus, "+");
      case '/': return make(TokenKind::kSlash, "/");
      case '%': return make(TokenKind::kPercent, "%");
      case '=': return make(TokenKind::kEq, "=");
      case '-':
        if (Peek() == '>') {
          Advance();
          return make(TokenKind::kArrow, "->");
        }
        return make(TokenKind::kMinus, "-");
      case '!':
        if (Peek() == '=') {
          Advance();
          return make(TokenKind::kNe, "!=");
        }
        return Error(ErrorCode::kParseError,
                     "unexpected '!' at " + loc.ToString() +
                         " (did you mean '!=' ?)");
      case '<':
        if (Peek() == '=') {
          Advance();
          return make(TokenKind::kLe, "<=");
        }
        if (Peek() == '>') {
          Advance();
          return make(TokenKind::kNe, "<>");
        }
        return make(TokenKind::kLt, "<");
      case '>':
        if (Peek() == '=') {
          Advance();
          return make(TokenKind::kGe, ">=");
        }
        return make(TokenKind::kGt, ">");
      case '|':
        if (Peek() == '|') {
          Advance();
          return make(TokenKind::kConcat, "||");
        }
        return Error(ErrorCode::kParseError,
                     "unexpected '|' at " + loc.ToString() +
                         " (did you mean '||' ?)");
      default:
        return Error(ErrorCode::kParseError,
                     std::string("unexpected character '") + c + "' at " +
                         loc.ToString());
    }
  }

  std::string_view source_;
  size_t pos_ = 0;
  SourceLocation location_;
};

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view source) {
  return Lexer(source).Run();
}

}  // namespace adn::dsl
