#include "dsl/parser.h"

#include <utility>

#include "common/strings.h"
#include "dsl/lexer.h"

namespace adn::dsl {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Program> ParseProgram() {
    Program program;
    while (!Check(TokenKind::kEnd)) {
      if (CheckKeyword("STATE")) {
        ADN_ASSIGN_OR_RETURN(TableDecl t, ParseTableDecl());
        if (program.FindTable(t.name) != nullptr) {
          return DuplicateError("table", t.name, t.location);
        }
        program.tables.push_back(std::move(t));
      } else if (CheckKeyword("ELEMENT")) {
        ADN_ASSIGN_OR_RETURN(ElementDecl e, ParseElementDecl());
        if (program.FindElement(e.name) != nullptr ||
            program.FindFilter(e.name) != nullptr) {
          return DuplicateError("element", e.name, e.location);
        }
        program.elements.push_back(std::move(e));
      } else if (CheckKeyword("FILTER")) {
        ADN_ASSIGN_OR_RETURN(FilterDecl f, ParseFilterDecl());
        if (program.FindElement(f.name) != nullptr ||
            program.FindFilter(f.name) != nullptr ||
            program.FindCache(f.name) != nullptr) {
          return DuplicateError("filter", f.name, f.location);
        }
        program.filters.push_back(std::move(f));
      } else if (CheckKeyword("CACHE")) {
        ADN_ASSIGN_OR_RETURN(CacheDecl c, ParseCacheDecl());
        if (program.FindElement(c.name) != nullptr ||
            program.FindFilter(c.name) != nullptr ||
            program.FindCache(c.name) != nullptr) {
          return DuplicateError("cache", c.name, c.location);
        }
        program.caches.push_back(std::move(c));
      } else if (CheckKeyword("CHAIN")) {
        ADN_ASSIGN_OR_RETURN(ChainDecl c, ParseChainDecl());
        if (program.FindChain(c.name) != nullptr) {
          return DuplicateError("chain", c.name, c.location);
        }
        program.chains.push_back(std::move(c));
      } else {
        return Error(ErrorCode::kParseError,
                     "expected STATE, ELEMENT, FILTER, CACHE or CHAIN, got " +
                         Peek().Describe() + " at " +
                         Peek().location.ToString());
      }
    }
    return program;
  }

  Result<ExprPtr> ParseStandaloneExpression() {
    ADN_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    ADN_RETURN_IF_ERROR(Expect(TokenKind::kEnd));
    return e;
  }

 private:
  // --- Token plumbing -------------------------------------------------------
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool Check(TokenKind kind) const { return Peek().kind == kind; }
  bool CheckKeyword(std::string_view kw) const { return Peek().IsKeyword(kw); }

  bool Match(TokenKind kind) {
    if (!Check(kind)) return false;
    Advance();
    return true;
  }
  bool MatchKeyword(std::string_view kw) {
    if (!CheckKeyword(kw)) return false;
    Advance();
    return true;
  }

  Status Expect(TokenKind kind) {
    if (Match(kind)) return Status::Ok();
    return Status(ErrorCode::kParseError,
                  "expected " + std::string(TokenKindName(kind)) + ", got " +
                      Peek().Describe() + " at " + Peek().location.ToString());
  }
  Status ExpectKeyword(std::string_view kw) {
    if (MatchKeyword(kw)) return Status::Ok();
    return Status(ErrorCode::kParseError,
                  "expected " + std::string(kw) + ", got " +
                      Peek().Describe() + " at " + Peek().location.ToString());
  }
  Result<std::string> ExpectIdentifier(std::string_view what) {
    if (!Check(TokenKind::kIdentifier)) {
      return Error(ErrorCode::kParseError,
                   "expected " + std::string(what) + " name, got " +
                       Peek().Describe() + " at " +
                       Peek().location.ToString());
    }
    return Advance().text;
  }

  Error DuplicateError(std::string_view what, const std::string& name,
                       SourceLocation loc) const {
    return Error(ErrorCode::kAlreadyExists,
                 "duplicate " + std::string(what) + " '" + name + "' at " +
                     loc.ToString());
  }

  // --- Declarations ---------------------------------------------------------
  Result<TableDecl> ParseTableDecl() {
    TableDecl decl;
    decl.location = Peek().location;
    ADN_RETURN_IF_ERROR(ExpectKeyword("STATE"));
    ADN_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    ADN_ASSIGN_OR_RETURN(decl.name, ExpectIdentifier("table"));
    ADN_ASSIGN_OR_RETURN(decl.schema, ParseColumnList());
    ADN_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon));
    return decl;
  }

  Result<rpc::Schema> ParseColumnList() {
    ADN_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    rpc::Schema schema;
    do {
      rpc::Column col;
      ADN_ASSIGN_OR_RETURN(col.name, ExpectIdentifier("column"));
      if (!Check(TokenKind::kIdentifier) && !Check(TokenKind::kKeyword)) {
        return Error(ErrorCode::kParseError,
                     "expected a type after column '" + col.name + "' at " +
                         Peek().location.ToString());
      }
      std::string type_name = Advance().text;
      ADN_ASSIGN_OR_RETURN(col.type, rpc::ParseValueType(type_name));
      if (MatchKeyword("PRIMARY")) {
        ADN_RETURN_IF_ERROR(ExpectKeyword("KEY"));
        col.primary_key = true;
      }
      ADN_RETURN_IF_ERROR(schema.AddColumn(std::move(col)));
    } while (Match(TokenKind::kComma));
    ADN_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    return schema;
  }

  Result<Direction> ParseDirection() {
    if (MatchKeyword("REQUEST")) return Direction::kRequest;
    if (MatchKeyword("RESPONSE")) return Direction::kResponse;
    if (MatchKeyword("BOTH")) return Direction::kBoth;
    return Error(ErrorCode::kParseError,
                 "expected REQUEST, RESPONSE or BOTH at " +
                     Peek().location.ToString());
  }

  Result<ElementDecl> ParseElementDecl() {
    ElementDecl decl;
    decl.location = Peek().location;
    ADN_RETURN_IF_ERROR(ExpectKeyword("ELEMENT"));
    ADN_ASSIGN_OR_RETURN(decl.name, ExpectIdentifier("element"));
    if (MatchKeyword("ON")) {
      ADN_ASSIGN_OR_RETURN(decl.direction, ParseDirection());
    }
    ADN_RETURN_IF_ERROR(Expect(TokenKind::kLBrace));
    // `input` is not reserved (it also names the SELECT source); the INPUT
    // declaration is recognized contextually: identifier "input" + '('.
    if (Check(TokenKind::kIdentifier) &&
        EqualsIgnoreAsciiCase(Peek().text, "input") &&
        Peek(1).kind == TokenKind::kLParen) {
      Advance();
      ADN_ASSIGN_OR_RETURN(decl.input, ParseColumnList());
      ADN_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon));
    }
    if (CheckKeyword("ON") && Peek(1).IsKeyword("DROP")) {
      Advance();
      Advance();
      if (MatchKeyword("ABORT")) {
        decl.on_drop = DropBehavior::kAbort;
        if (Check(TokenKind::kStringLiteral)) {
          decl.abort_message = Advance().text;
        }
      } else if (MatchKeyword("SILENT")) {
        decl.on_drop = DropBehavior::kSilent;
      } else {
        return Error(ErrorCode::kParseError,
                     "expected ABORT or SILENT after ON DROP at " +
                         Peek().location.ToString());
      }
      ADN_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon));
    }
    while (!Check(TokenKind::kRBrace)) {
      ADN_ASSIGN_OR_RETURN(Statement stmt, ParseStatement());
      decl.body.push_back(std::move(stmt));
      ADN_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon));
    }
    ADN_RETURN_IF_ERROR(Expect(TokenKind::kRBrace));
    if (decl.body.empty()) {
      return Error(ErrorCode::kParseError,
                   "element '" + decl.name + "' has an empty body at " +
                       decl.location.ToString());
    }
    if (decl.abort_message.empty()) {
      decl.abort_message = "dropped by element " + decl.name;
    }
    return decl;
  }

  Result<FilterDecl> ParseFilterDecl() {
    FilterDecl decl;
    decl.location = Peek().location;
    ADN_RETURN_IF_ERROR(ExpectKeyword("FILTER"));
    ADN_ASSIGN_OR_RETURN(decl.name, ExpectIdentifier("filter"));
    if (MatchKeyword("ON")) {
      ADN_ASSIGN_OR_RETURN(decl.direction, ParseDirection());
    }
    ADN_RETURN_IF_ERROR(ExpectKeyword("USING"));
    ADN_ASSIGN_OR_RETURN(decl.op, ExpectIdentifier("operator"));
    ADN_ASSIGN_OR_RETURN(decl.args, ParseArgList());
    ADN_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon));
    return decl;
  }

  // `name => literal` argument lists shared by FILTER and CACHE decls.
  Result<std::vector<std::pair<std::string, rpc::Value>>> ParseArgList() {
    std::vector<std::pair<std::string, rpc::Value>> args;
    ADN_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    if (!Check(TokenKind::kRParen)) {
      do {
        // Argument names may collide with DSL keywords (`key` for the agg
        // ops), so accept either token kind and lowercase for lookup.
        if (!Check(TokenKind::kIdentifier) && !Check(TokenKind::kKeyword)) {
          return Error(ErrorCode::kParseError,
                       "expected argument name, got " + Peek().Describe() +
                           " at " + Peek().location.ToString());
        }
        std::string key = ToLowerAscii(Advance().text);
        // Arguments use `name => literal`; the lexer splits '=>' into '='
        // followed by '>'. Plain '=' is accepted too.
        ADN_RETURN_IF_ERROR(Expect(TokenKind::kEq));
        (void)Match(TokenKind::kGt);
        // A bare identifier names an RPC field (agg key/value selectors);
        // it becomes a text value.
        rpc::Value v;
        if (Check(TokenKind::kIdentifier)) {
          v = rpc::Value(Advance().text);
        } else {
          ADN_ASSIGN_OR_RETURN(v, ParseLiteralValue());
        }
        args.emplace_back(std::move(key), std::move(v));
      } while (Match(TokenKind::kComma));
    }
    ADN_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    return args;
  }

  Result<CacheDecl> ParseCacheDecl() {
    CacheDecl decl;
    decl.location = Peek().location;
    ADN_RETURN_IF_ERROR(ExpectKeyword("CACHE"));
    ADN_ASSIGN_OR_RETURN(decl.name, ExpectIdentifier("cache"));
    ADN_ASSIGN_OR_RETURN(decl.args, ParseArgList());
    ADN_RETURN_IF_ERROR(ExpectKeyword("KEY"));
    ADN_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    do {
      ADN_ASSIGN_OR_RETURN(std::string f, ExpectIdentifier("key field"));
      decl.key_fields.push_back(std::move(f));
    } while (Match(TokenKind::kComma));
    ADN_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    ADN_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon));
    return decl;
  }

  Result<rpc::Value> ParseLiteralValue() {
    bool negate = Match(TokenKind::kMinus);
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kIntLiteral:
        Advance();
        return rpc::Value(negate ? -t.int_value : t.int_value);
      case TokenKind::kFloatLiteral:
        Advance();
        return rpc::Value(negate ? -t.float_value : t.float_value);
      case TokenKind::kStringLiteral:
        if (negate) break;
        Advance();
        return rpc::Value(t.text);
      case TokenKind::kKeyword:
        if (negate) break;
        if (MatchKeyword("TRUE")) return rpc::Value(true);
        if (MatchKeyword("FALSE")) return rpc::Value(false);
        if (MatchKeyword("NULL")) return rpc::Value::Null();
        break;
      default:
        break;
    }
    return Error(ErrorCode::kParseError,
                 "expected a literal, got " + Peek().Describe() + " at " +
                     Peek().location.ToString());
  }

  Result<ChainDecl> ParseChainDecl() {
    ChainDecl decl;
    decl.location = Peek().location;
    ADN_RETURN_IF_ERROR(ExpectKeyword("CHAIN"));
    ADN_ASSIGN_OR_RETURN(decl.name, ExpectIdentifier("chain"));
    ADN_RETURN_IF_ERROR(ExpectKeyword("FOR"));
    ADN_RETURN_IF_ERROR(ExpectKeyword("CALLS"));
    ADN_ASSIGN_OR_RETURN(decl.caller_service, ExpectIdentifier("service"));
    ADN_RETURN_IF_ERROR(Expect(TokenKind::kArrow));
    ADN_ASSIGN_OR_RETURN(decl.callee_service, ExpectIdentifier("service"));
    ADN_RETURN_IF_ERROR(Expect(TokenKind::kLBrace));
    do {
      ChainElementRef ref;
      ref.source_location = Peek().location;
      ADN_ASSIGN_OR_RETURN(ref.element, ExpectIdentifier("element"));
      if (MatchKeyword("AT")) {
        if (MatchKeyword("ANY")) {
          ref.location = LocationConstraint::kAny;
        } else if (MatchKeyword("SENDER")) {
          ref.location = LocationConstraint::kSender;
        } else if (MatchKeyword("RECEIVER")) {
          ref.location = LocationConstraint::kReceiver;
        } else if (MatchKeyword("TRUSTED")) {
          ref.location = LocationConstraint::kTrusted;
        } else {
          return Error(ErrorCode::kParseError,
                       "expected ANY, SENDER, RECEIVER or TRUSTED at " +
                           Peek().location.ToString());
        }
      }
      decl.elements.push_back(std::move(ref));
    } while (Match(TokenKind::kComma));
    ADN_RETURN_IF_ERROR(Expect(TokenKind::kRBrace));
    return decl;
  }

  // --- Statements -----------------------------------------------------------
  Result<Statement> ParseStatement() {
    if (CheckKeyword("SELECT")) {
      ADN_ASSIGN_OR_RETURN(SelectStmt s, ParseSelect());
      return Statement(std::move(s));
    }
    if (CheckKeyword("INSERT")) {
      ADN_ASSIGN_OR_RETURN(InsertStmt s, ParseInsert());
      return Statement(std::move(s));
    }
    if (CheckKeyword("UPDATE")) {
      ADN_ASSIGN_OR_RETURN(UpdateStmt s, ParseUpdate());
      return Statement(std::move(s));
    }
    if (CheckKeyword("DELETE")) {
      ADN_ASSIGN_OR_RETURN(DeleteStmt s, ParseDelete());
      return Statement(std::move(s));
    }
    return Error(ErrorCode::kParseError,
                 "expected SELECT, INSERT, UPDATE or DELETE, got " +
                     Peek().Describe() + " at " + Peek().location.ToString());
  }

  Result<SelectStmt> ParseSelect() {
    SelectStmt stmt;
    stmt.location = Peek().location;
    ADN_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    // Figure 4 of the paper writes `SELECT FROM ...` (empty select list) to
    // mean pass-through of all fields; accept it as `SELECT *`.
    if (CheckKeyword("FROM")) {
      SelectItem star;
      star.is_star = true;
      star.location = Peek().location;
      stmt.items.push_back(std::move(star));
    } else {
      do {
        ADN_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
        stmt.items.push_back(std::move(item));
      } while (Match(TokenKind::kComma));
    }
    ADN_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    ADN_ASSIGN_OR_RETURN(stmt.from, ExpectIdentifier("source"));
    if (MatchKeyword("JOIN")) {
      JoinClause join;
      join.location = Peek().location;
      ADN_ASSIGN_OR_RETURN(join.table, ExpectIdentifier("table"));
      ADN_RETURN_IF_ERROR(ExpectKeyword("ON"));
      // The condition parses as one comparison expression; require a
      // top-level equality and split it into probe sides.
      ADN_ASSIGN_OR_RETURN(ExprPtr condition, ParseExpr());
      auto* eq = std::get_if<BinaryExpr>(&condition->node);
      if (eq == nullptr || eq->op != BinaryOp::kEq) {
        return Error(ErrorCode::kParseError,
                     "JOIN ON wants an equality condition at " +
                         join.location.ToString());
      }
      join.left = std::move(eq->lhs);
      join.right = std::move(eq->rhs);
      stmt.join = std::move(join);
    }
    if (MatchKeyword("WHERE")) {
      ADN_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    return stmt;
  }

  Result<SelectItem> ParseSelectItem() {
    SelectItem item;
    item.location = Peek().location;
    if (Match(TokenKind::kStar)) {
      item.is_star = true;
      return item;
    }
    // `table.*` is also a star over the input.
    if (Check(TokenKind::kIdentifier) && Peek(1).kind == TokenKind::kDot &&
        Peek(2).kind == TokenKind::kStar) {
      item.is_star = true;
      Advance();
      Advance();
      Advance();
      return item;
    }
    ADN_ASSIGN_OR_RETURN(item.expr, ParseExpr());
    if (MatchKeyword("AS")) {
      ADN_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier("alias"));
    } else if (const auto* col = item.expr->As<ColumnRefExpr>()) {
      item.alias = col->column;
    } else {
      return Error(ErrorCode::kParseError,
                   "computed select item needs AS <name> at " +
                       item.location.ToString());
    }
    return item;
  }

  Result<InsertStmt> ParseInsert() {
    InsertStmt stmt;
    stmt.location = Peek().location;
    ADN_RETURN_IF_ERROR(ExpectKeyword("INSERT"));
    ADN_RETURN_IF_ERROR(ExpectKeyword("INTO"));
    ADN_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table"));
    if (Match(TokenKind::kLParen)) {
      do {
        ADN_ASSIGN_OR_RETURN(std::string c, ExpectIdentifier("column"));
        stmt.columns.push_back(std::move(c));
      } while (Match(TokenKind::kComma));
      ADN_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    }
    if (MatchKeyword("VALUES")) {
      ADN_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
      do {
        ADN_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        stmt.values.push_back(std::move(e));
      } while (Match(TokenKind::kComma));
      ADN_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    } else if (CheckKeyword("SELECT")) {
      ADN_ASSIGN_OR_RETURN(SelectStmt sel, ParseSelect());
      stmt.from_select = std::make_unique<SelectStmt>(std::move(sel));
    } else {
      return Error(ErrorCode::kParseError,
                   "expected VALUES or SELECT after INSERT INTO at " +
                       Peek().location.ToString());
    }
    return stmt;
  }

  Result<UpdateStmt> ParseUpdate() {
    UpdateStmt stmt;
    stmt.location = Peek().location;
    ADN_RETURN_IF_ERROR(ExpectKeyword("UPDATE"));
    ADN_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table"));
    ADN_RETURN_IF_ERROR(ExpectKeyword("SET"));
    do {
      ADN_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column"));
      ADN_RETURN_IF_ERROR(Expect(TokenKind::kEq));
      ADN_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      stmt.assignments.emplace_back(std::move(col), std::move(e));
    } while (Match(TokenKind::kComma));
    if (MatchKeyword("WHERE")) {
      ADN_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    return stmt;
  }

  Result<DeleteStmt> ParseDelete() {
    DeleteStmt stmt;
    stmt.location = Peek().location;
    ADN_RETURN_IF_ERROR(ExpectKeyword("DELETE"));
    ADN_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    ADN_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table"));
    if (MatchKeyword("WHERE")) {
      ADN_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    return stmt;
  }

  // --- Expressions ----------------------------------------------------------
  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    ADN_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (CheckKeyword("OR")) {
      SourceLocation loc = Advance().location;
      ADN_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = MakeExpr(loc,
                     BinaryExpr{BinaryOp::kOr, std::move(lhs), std::move(rhs)});
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    ADN_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (CheckKeyword("AND")) {
      SourceLocation loc = Advance().location;
      ADN_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = MakeExpr(
          loc, BinaryExpr{BinaryOp::kAnd, std::move(lhs), std::move(rhs)});
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (CheckKeyword("NOT")) {
      SourceLocation loc = Advance().location;
      ADN_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      return MakeExpr(loc, UnaryExpr{UnaryOp::kNot, std::move(operand)});
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    ADN_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    BinaryOp op;
    switch (Peek().kind) {
      case TokenKind::kEq: op = BinaryOp::kEq; break;
      case TokenKind::kNe: op = BinaryOp::kNe; break;
      case TokenKind::kLt: op = BinaryOp::kLt; break;
      case TokenKind::kLe: op = BinaryOp::kLe; break;
      case TokenKind::kGt: op = BinaryOp::kGt; break;
      case TokenKind::kGe: op = BinaryOp::kGe; break;
      default: return lhs;
    }
    SourceLocation loc = Advance().location;
    ADN_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
    return MakeExpr(loc, BinaryExpr{op, std::move(lhs), std::move(rhs)});
  }

  Result<ExprPtr> ParseAdditive() {
    ADN_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    while (true) {
      BinaryOp op;
      if (Check(TokenKind::kPlus)) {
        op = BinaryOp::kAdd;
      } else if (Check(TokenKind::kMinus)) {
        op = BinaryOp::kSub;
      } else if (Check(TokenKind::kConcat)) {
        op = BinaryOp::kConcat;
      } else {
        return lhs;
      }
      SourceLocation loc = Advance().location;
      ADN_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = MakeExpr(loc, BinaryExpr{op, std::move(lhs), std::move(rhs)});
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    ADN_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (true) {
      BinaryOp op;
      if (Check(TokenKind::kStar)) {
        op = BinaryOp::kMul;
      } else if (Check(TokenKind::kSlash)) {
        op = BinaryOp::kDiv;
      } else if (Check(TokenKind::kPercent)) {
        op = BinaryOp::kMod;
      } else {
        return lhs;
      }
      SourceLocation loc = Advance().location;
      ADN_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = MakeExpr(loc, BinaryExpr{op, std::move(lhs), std::move(rhs)});
    }
  }

  Result<ExprPtr> ParseUnary() {
    if (Check(TokenKind::kMinus)) {
      SourceLocation loc = Advance().location;
      ADN_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      return MakeExpr(loc, UnaryExpr{UnaryOp::kNegate, std::move(operand)});
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    SourceLocation loc = Peek().location;
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kIntLiteral: {
        int64_t v = t.int_value;
        Advance();
        return MakeExpr(loc, LiteralExpr{rpc::Value(v)});
      }
      case TokenKind::kFloatLiteral: {
        double v = t.float_value;
        Advance();
        return MakeExpr(loc, LiteralExpr{rpc::Value(v)});
      }
      case TokenKind::kStringLiteral: {
        std::string v = t.text;
        Advance();
        return MakeExpr(loc, LiteralExpr{rpc::Value(std::move(v))});
      }
      case TokenKind::kKeyword: {
        if (MatchKeyword("TRUE")) return MakeExpr(loc, LiteralExpr{rpc::Value(true)});
        if (MatchKeyword("FALSE")) return MakeExpr(loc, LiteralExpr{rpc::Value(false)});
        if (MatchKeyword("NULL")) return MakeExpr(loc, LiteralExpr{rpc::Value::Null()});
        return Error(ErrorCode::kParseError,
                     "unexpected " + t.Describe() + " in expression at " +
                         loc.ToString());
      }
      case TokenKind::kLParen: {
        Advance();
        ADN_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
        ADN_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        return inner;
      }
      case TokenKind::kIdentifier: {
        std::string first = Advance().text;
        if (Match(TokenKind::kLParen)) {  // function call
          CallExpr call;
          call.function = std::move(first);
          if (!Check(TokenKind::kRParen)) {
            do {
              ADN_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
              call.args.push_back(std::move(arg));
            } while (Match(TokenKind::kComma));
          }
          ADN_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
          return MakeExpr(loc, std::move(call));
        }
        if (Match(TokenKind::kDot)) {  // qualified column
          ADN_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column"));
          return MakeExpr(loc, ColumnRefExpr{std::move(first), std::move(col)});
        }
        return MakeExpr(loc, ColumnRefExpr{"", std::move(first)});
      }
      default:
        return Error(ErrorCode::kParseError,
                     "unexpected " + t.Describe() + " in expression at " +
                         loc.ToString());
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Program> ParseProgram(std::string_view source) {
  ADN_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  return Parser(std::move(tokens)).ParseProgram();
}

Result<ExprPtr> ParseExpression(std::string_view source) {
  ADN_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  return Parser(std::move(tokens)).ParseStandaloneExpression();
}

}  // namespace adn::dsl
