// Protobuf-style serialization of RPC messages — the first layer of the
// general-purpose stack the paper's baseline uses (gRPC payload encoding).
//
// This is a real tag/length/value codec operating on real bytes: varint keys
// (field_number << 3 | wire_type), varint ints, length-delimited strings and
// bytes, little-endian doubles. The simulated Envoy path encodes and decodes
// through it on every hop, exactly the repeated marshalling the paper
// blames for service-mesh overhead (§2, [66]).
#pragma once

#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "rpc/message.h"
#include "rpc/schema.h"

namespace adn::stack {

// A .proto-like message schema: maps field names to numbers and types.
class ProtoSchema {
 public:
  ProtoSchema() = default;
  // Field numbers are assigned 1..N in the given order.
  explicit ProtoSchema(const rpc::Schema& schema);

  struct ProtoField {
    std::string name;
    uint32_t number;
    rpc::ValueType type;
  };

  const std::vector<ProtoField>& fields() const { return fields_; }
  const ProtoField* FindByNumber(uint32_t number) const;
  const ProtoField* FindByName(std::string_view name) const;

 private:
  std::vector<ProtoField> fields_;
};

// Encode the message's schema fields (payload only; RPC metadata travels in
// HTTP/2 headers on this stack).
Result<Bytes> ProtoEncode(const rpc::Message& message,
                          const ProtoSchema& schema);

// Decode into a fresh message (metadata left default). Unknown fields are
// skipped, as protobuf requires.
Result<rpc::Message> ProtoDecode(std::span<const uint8_t> wire,
                                 const ProtoSchema& schema);

}  // namespace adn::stack
