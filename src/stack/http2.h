// HTTP/2-style framing + HPACK-lite header compression — the second layer of
// the general-purpose baseline (gRPC rides on HTTP/2).
//
// We implement the parts a gRPC hop actually exercises per message:
//   - HEADERS frame carrying pseudo-headers (:method :scheme :path
//     :authority) and grpc-*/custom metadata, HPACK-encoded against a static
//     table plus a per-connection dynamic table with incremental indexing;
//   - DATA frame carrying the 5-byte gRPC message prefix + protobuf payload;
//   - 9-byte frame headers with stream ids, END_STREAM/END_HEADERS flags.
//
// Every proxy hop in the simulated mesh *really* parses and re-encodes these
// bytes — the mechanical cost the paper's §2 decries.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace adn::stack {

using HeaderList = std::vector<std::pair<std::string, std::string>>;

enum class FrameType : uint8_t {
  kData = 0x0,
  kHeaders = 0x1,
  kRstStream = 0x3,
  kSettings = 0x4,
  kPing = 0x6,
  kGoaway = 0x7,
  kWindowUpdate = 0x8,
};

constexpr uint8_t kFlagEndStream = 0x1;
constexpr uint8_t kFlagEndHeaders = 0x4;

struct Frame {
  FrameType type = FrameType::kData;
  uint8_t flags = 0;
  uint32_t stream_id = 0;
  Bytes payload;
};

// HPACK-lite codec. Stateful per connection direction: maintains a dynamic
// table with incremental indexing (encoder and decoder must stay in sync,
// like the real thing).
class HpackCodec {
 public:
  HpackCodec();

  // Appends the encoded header block to `out`.
  void EncodeHeaderBlock(const HeaderList& headers, Bytes& out);
  Result<HeaderList> DecodeHeaderBlock(std::span<const uint8_t> block);

  size_t dynamic_table_size() const { return dynamic_.size(); }

 private:
  // Returns 1-based index into static+dynamic table, or 0.
  size_t FindIndexed(const std::string& name, const std::string& value) const;
  size_t FindName(const std::string& name) const;
  void InsertDynamic(std::string name, std::string value);

  std::vector<std::pair<std::string, std::string>> dynamic_;
};

// Serialize one frame (9-byte header + payload).
void EncodeFrame(const Frame& frame, Bytes& out);

// Parse all frames in a buffer.
Result<std::vector<Frame>> ParseFrames(std::span<const uint8_t> wire);

// --- gRPC-over-HTTP/2 message helpers ---------------------------------------

struct GrpcHttp2Message {
  HeaderList headers;
  Bytes grpc_payload;  // protobuf bytes (without the 5-byte gRPC prefix)
  uint32_t stream_id = 0;
  bool end_stream = false;
};

// Encode a full gRPC message exchange unit: HEADERS + DATA frames.
// `hpack` is the sending connection's encoder state.
Bytes EncodeGrpcMessage(const GrpcHttp2Message& msg, HpackCodec& hpack);

// Parse HEADERS+DATA back out (expects exactly one logical message).
Result<GrpcHttp2Message> ParseGrpcMessage(std::span<const uint8_t> wire,
                                          HpackCodec& hpack);

// The standard header set a gRPC request carries.
HeaderList MakeGrpcRequestHeaders(std::string_view authority,
                                  std::string_view path,
                                  const HeaderList& custom);
HeaderList MakeGrpcResponseHeaders(int grpc_status, const HeaderList& custom);

}  // namespace adn::stack
