#include "stack/proto_codec.h"

namespace adn::stack {

namespace {
// Protobuf wire types.
constexpr uint32_t kVarint = 0;
constexpr uint32_t kFixed64 = 1;
constexpr uint32_t kLengthDelimited = 2;

uint32_t WireTypeFor(rpc::ValueType type) {
  switch (type) {
    case rpc::ValueType::kBool:
    case rpc::ValueType::kInt:
      return kVarint;
    case rpc::ValueType::kFloat:
      return kFixed64;
    default:
      return kLengthDelimited;
  }
}
}  // namespace

ProtoSchema::ProtoSchema(const rpc::Schema& schema) {
  uint32_t number = 1;
  for (const rpc::Column& c : schema.columns()) {
    fields_.push_back(ProtoField{c.name, number++, c.type});
  }
}

const ProtoSchema::ProtoField* ProtoSchema::FindByNumber(
    uint32_t number) const {
  for (const auto& f : fields_) {
    if (f.number == number) return &f;
  }
  return nullptr;
}

const ProtoSchema::ProtoField* ProtoSchema::FindByName(
    std::string_view name) const {
  for (const auto& f : fields_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

Result<Bytes> ProtoEncode(const rpc::Message& message,
                          const ProtoSchema& schema) {
  Bytes out;
  ByteWriter w(out);
  for (const auto& field : schema.fields()) {
    const rpc::Value* v = message.FindField(field.name);
    if (v == nullptr || v->is_null()) continue;  // proto3: absent = default
    if (v->type() != field.type) {
      return Error(ErrorCode::kTypeError,
                   "proto field '" + field.name + "' expects " +
                       std::string(rpc::ValueTypeName(field.type)) +
                       ", message has " +
                       std::string(rpc::ValueTypeName(v->type())));
    }
    w.WriteVarint((field.number << 3) | WireTypeFor(field.type));
    switch (field.type) {
      case rpc::ValueType::kBool:
        w.WriteVarint(v->AsBool() ? 1 : 0);
        break;
      case rpc::ValueType::kInt:
        // proto int64: two's complement varint (10 bytes when negative).
        w.WriteVarint(static_cast<uint64_t>(v->AsInt()));
        break;
      case rpc::ValueType::kFloat:
        w.WriteF64(v->AsFloat());
        break;
      case rpc::ValueType::kText:
        w.WriteString(v->AsText());
        break;
      case rpc::ValueType::kBytes:
        w.WriteLengthPrefixed(v->AsBytes());
        break;
      case rpc::ValueType::kNull:
        break;
    }
  }
  return out;
}

Result<rpc::Message> ProtoDecode(std::span<const uint8_t> wire,
                                 const ProtoSchema& schema) {
  rpc::Message out;
  ByteReader r(wire);
  while (!r.AtEnd()) {
    ADN_ASSIGN_OR_RETURN(uint64_t key, r.ReadVarint());
    uint32_t number = static_cast<uint32_t>(key >> 3);
    uint32_t wire_type = static_cast<uint32_t>(key & 7);
    const ProtoSchema::ProtoField* field = schema.FindByNumber(number);
    if (field == nullptr) {
      // Unknown field: skip per wire type.
      switch (wire_type) {
        case kVarint: {
          ADN_ASSIGN_OR_RETURN(uint64_t ignored, r.ReadVarint());
          (void)ignored;
          break;
        }
        case kFixed64:
          ADN_RETURN_IF_ERROR(r.Skip(8));
          break;
        case kLengthDelimited: {
          ADN_ASSIGN_OR_RETURN(uint64_t len, r.ReadVarint());
          ADN_RETURN_IF_ERROR(r.Skip(len));
          break;
        }
        default:
          return Error(ErrorCode::kParseError,
                       "unsupported proto wire type " +
                           std::to_string(wire_type));
      }
      continue;
    }
    if (wire_type != WireTypeFor(field->type)) {
      return Error(ErrorCode::kParseError,
                   "proto field '" + field->name + "' has wire type " +
                       std::to_string(wire_type) + ", expected " +
                       std::to_string(WireTypeFor(field->type)));
    }
    switch (field->type) {
      case rpc::ValueType::kBool: {
        ADN_ASSIGN_OR_RETURN(uint64_t v, r.ReadVarint());
        out.SetField(field->name, rpc::Value(v != 0));
        break;
      }
      case rpc::ValueType::kInt: {
        ADN_ASSIGN_OR_RETURN(uint64_t v, r.ReadVarint());
        out.SetField(field->name, rpc::Value(static_cast<int64_t>(v)));
        break;
      }
      case rpc::ValueType::kFloat: {
        ADN_ASSIGN_OR_RETURN(double v, r.ReadF64());
        out.SetField(field->name, rpc::Value(v));
        break;
      }
      case rpc::ValueType::kText: {
        ADN_ASSIGN_OR_RETURN(std::string v, r.ReadString());
        out.SetField(field->name, rpc::Value(std::move(v)));
        break;
      }
      case rpc::ValueType::kBytes: {
        ADN_ASSIGN_OR_RETURN(auto v, r.ReadLengthPrefixed());
        out.SetField(field->name, rpc::Value(Bytes(v.begin(), v.end())));
        break;
      }
      case rpc::ValueType::kNull:
        break;
    }
  }
  return out;
}

}  // namespace adn::stack
