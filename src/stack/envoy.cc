#include "stack/envoy.h"

#include "common/codec.h"
#include "common/strings.h"
#include "obs/metrics.h"

namespace adn::stack {

namespace {

const std::string* FindHeader(const HeaderList& headers,
                              std::string_view name) {
  for (const auto& [k, v] : headers) {
    if (k == name) return &v;
  }
  return nullptr;
}

void SetHeader(HeaderList& headers, std::string_view name,
               std::string value) {
  for (auto& [k, v] : headers) {
    if (k == name) {
      v = std::move(value);
      return;
    }
  }
  headers.emplace_back(std::string(name), std::move(value));
}

}  // namespace

// --- AccessLogFilter ----------------------------------------------------------

AccessLogFilter::AccessLogFilter(std::string format)
    : format_(std::move(format)) {}

FilterResult AccessLogFilter::OnMessage(FilterContext& ctx) {
  // Interpret the format string per message — the "generic with more knobs
  // than our application needs" work a reusable proxy does.
  std::string line;
  line.reserve(format_.size() + 64);
  size_t i = 0;
  while (i < format_.size()) {
    if (format_[i] != '%') {
      line.push_back(format_[i++]);
      continue;
    }
    size_t end = format_.find('%', i + 1);
    if (end == std::string::npos) {
      line.push_back(format_[i++]);
      continue;
    }
    std::string_view op(format_.data() + i + 1, end - i - 1);
    if (StartsWith(op, "REQ(") && EndsWith(op, ")")) {
      std::string_view header = op.substr(4, op.size() - 5);
      const std::string* v = FindHeader(*ctx.headers, header);
      line += v != nullptr ? *v : "-";
    } else if (op == "BYTES") {
      line += std::to_string(ctx.body->size());
    } else if (op == "DIRECTION") {
      line += ctx.is_request ? "request" : "response";
    } else {
      line += "-";
    }
    i = end + 1;
  }
  if (ctx.access_log != nullptr) ctx.access_log->push_back(std::move(line));
  return {};
}

// --- RbacFilter -----------------------------------------------------------------

bool HeaderMatcher::Matches(const HeaderList& headers) const {
  const std::string* v = FindHeader(headers, header);
  if (v == nullptr) return false;
  switch (kind) {
    case Kind::kExact: return *v == value;
    case Kind::kPrefix: return StartsWith(*v, value);
    case Kind::kPresent: return true;
  }
  return false;
}

RbacFilter::RbacFilter(std::vector<RbacPolicy> allow_policies,
                       DefaultAction fallback)
    : policies_(std::move(allow_policies)), fallback_(fallback) {}

FilterResult RbacFilter::OnMessage(FilterContext& ctx) {
  if (!ctx.is_request) return {};  // RBAC applies to requests
  for (const RbacPolicy& policy : policies_) {
    bool all = true;
    for (const HeaderMatcher& m : policy.principals) {
      if (!m.Matches(*ctx.headers)) {
        all = false;
        break;
      }
    }
    if (all) {
      for (const HeaderMatcher& m : policy.permissions) {
        if (!m.Matches(*ctx.headers)) {
          all = false;
          break;
        }
      }
    }
    if (all) return {};  // allowed
  }
  if (fallback_ == DefaultAction::kAllow) return {};
  return {FilterAction::kAbort, 403, "RBAC: access denied"};
}

// --- FaultFilter ----------------------------------------------------------------

FaultFilter::FaultFilter(double abort_fraction, int abort_http_status)
    : abort_fraction_(abort_fraction), abort_status_(abort_http_status) {}

FilterResult FaultFilter::OnMessage(FilterContext& ctx) {
  if (!ctx.is_request) return {};
  if (ctx.rng != nullptr && ctx.rng->NextBool(abort_fraction_)) {
    return {FilterAction::kAbort, abort_status_, "fault filter abort"};
  }
  return {};
}

// --- HashRouterFilter -----------------------------------------------------------

HashRouterFilter::HashRouterFilter(std::string hash_header,
                                   size_t upstream_count)
    : hash_header_(std::move(hash_header)), upstream_count_(upstream_count) {}

FilterResult HashRouterFilter::OnMessage(FilterContext& ctx) {
  if (!ctx.is_request || upstream_count_ == 0) return {};
  const std::string* v = FindHeader(*ctx.headers, hash_header_);
  uint64_t h = v != nullptr ? Fnv1a64(*v) : 0;
  last_pick_ = h % upstream_count_;
  SetHeader(*ctx.headers, "x-adn-upstream", std::to_string(last_pick_));
  return {};
}

// --- CompressorFilter -----------------------------------------------------------

CompressorFilter::CompressorFilter(bool compress) : compress_(compress) {}

FilterResult CompressorFilter::OnMessage(FilterContext& ctx) {
  if (compress_) {
    Bytes out = CompressBytes(*ctx.body);
    *ctx.body = std::move(out);
    SetHeader(*ctx.headers, "content-encoding", "adn-lz");
    return {};
  }
  const std::string* enc = FindHeader(*ctx.headers, "content-encoding");
  if (enc == nullptr || *enc != "adn-lz") return {};
  auto out = DecompressBytes(*ctx.body);
  if (!out.ok()) {
    return {FilterAction::kAbort, 400, "decompression failed"};
  }
  *ctx.body = std::move(out).value();
  SetHeader(*ctx.headers, "content-encoding", "identity");
  return {};
}

sim::SimTime CompressorFilter::CostNs(const sim::CostModel& m) const {
  // Charged per byte at the call site; fixed setup here.
  (void)m;
  return 8'000;
}

// --- EnvoySidecar ---------------------------------------------------------------

EnvoySidecar::EnvoySidecar(std::string name, uint64_t seed)
    : name_(std::move(name)), rng_(seed) {}

void EnvoySidecar::AddFilter(std::unique_ptr<EnvoyFilter> filter) {
  filters_.push_back(std::move(filter));
}

Result<EnvoySidecar::Output> EnvoySidecar::ProcessMessage(
    std::span<const uint8_t> wire, bool is_request, HpackCodec& inbound_hpack,
    HpackCodec& outbound_hpack) {
  ++processed_;
  const bool timing = obs::Enabled();
  if (timing) {
    obs::MetricsRegistry::Default()
        .GetCounter("adn_envoy_messages_total", "sidecar=\"" + name_ + "\"")
        .Inc();
  }
  // 1. Real parse of the inbound bytes.
  ADN_ASSIGN_OR_RETURN(GrpcHttp2Message msg,
                       ParseGrpcMessage(wire, inbound_hpack));
  // 2. Filter chain over the decoded header map + body.
  FilterContext ctx;
  ctx.headers = &msg.headers;
  ctx.body = &msg.grpc_payload;
  ctx.is_request = is_request;
  ctx.stream_id = msg.stream_id;
  ctx.rng = &rng_;
  ctx.access_log = &access_log_;
  for (const auto& filter : filters_) {
    FilterResult r = filter->OnMessage(ctx);
    if (r.action == FilterAction::kAbort) {
      ++aborted_;
      if (timing) {
        obs::MetricsRegistry::Default()
            .GetCounter("adn_envoy_aborts_total", "sidecar=\"" + name_ + "\"")
            .Inc();
      }
      Output out;
      out.aborted = true;
      out.http_status = r.http_status;
      out.detail = std::move(r.detail);
      return out;
    }
  }
  // 3. Real re-encode toward the upstream connection.
  Output out;
  out.wire = EncodeGrpcMessage(msg, outbound_hpack);
  return out;
}

sim::SimTime EnvoySidecar::MessageCostNs(const sim::CostModel& model,
                                         size_t wire_bytes,
                                         bool is_request) const {
  double total = static_cast<double>(model.envoy_base_ns) +
                 model.envoy_per_byte_ns * static_cast<double>(wire_bytes);
  for (const auto& filter : filters_) {
    // Response passes skip request-only filters' heavy path but still pay
    // the dispatch + config check (~1/4 of the request cost).
    sim::SimTime c = filter->CostNs(model);
    total += is_request ? static_cast<double>(c)
                        : static_cast<double>(c) / 4.0;
  }
  return static_cast<sim::SimTime>(total);
}

}  // namespace adn::stack
