#include "stack/mesh_path.h"

#include <cassert>

namespace adn::stack {

namespace {

using sim::CpuStation;
using sim::Link;
using sim::SimTime;
using sim::Simulator;

// Per-connection HPACK state: the encoder lives at the sender, the decoder
// at the receiver; they stay in sync because they see the same header
// sequence.
struct ConnCodecs {
  HpackCodec encoder;
  HpackCodec decoder;
};

struct Experiment {
  explicit Experiment(const MeshConfig& config)
      : cfg(config),
        rng(config.seed),
        proto_schema(config.request_schema),
        client_app(&sim, "client-app", 1),
        client_kernel(&sim, "client-kernel", 2),
        client_sidecar_cpu(&sim, "client-sidecar", config.model.envoy_workers),
        server_kernel(&sim, "server-kernel", 2),
        server_sidecar_cpu(&sim, "server-sidecar", config.model.envoy_workers),
        server_app(&sim, "server-app", 2),
        wire(&sim, "wire", config.model.wire_propagation_ns,
             config.model.wire_bandwidth_gbps),
        client_sidecar("client-sidecar", config.seed * 7919 + 1),
        server_sidecar("server-sidecar", config.seed * 104729 + 2) {
    for (const auto& factory : cfg.client_filters) {
      client_sidecar.AddFilter(factory());
    }
    for (const auto& factory : cfg.filters) {
      server_sidecar.AddFilter(factory());
    }
    if (cfg.adn_chain.has_value()) {
      auto filter = std::make_unique<AdnChainFilter>(
          cfg.adn_chain->program, cfg.adn_chain->elements,
          cfg.request_schema, cfg.adn_chain->seed);
      if (cfg.adn_chain->seed_state) cfg.adn_chain->seed_state(*filter);
      server_sidecar.AddFilter(std::move(filter));
    }
  }

  const MeshConfig& cfg;
  Simulator sim;
  Rng rng;
  ProtoSchema proto_schema;

  CpuStation client_app;
  CpuStation client_kernel;
  CpuStation client_sidecar_cpu;
  CpuStation server_kernel;
  CpuStation server_sidecar_cpu;
  CpuStation server_app;
  Link wire;

  EnvoySidecar client_sidecar;
  EnvoySidecar server_sidecar;

  // Connections: app->scA, scA->scB, scB->server (x2 directions).
  ConnCodecs app_to_sca, sca_to_scb, scb_to_server;
  ConnCodecs server_to_scb, scb_to_sca, sca_to_app;

  // Workload bookkeeping.
  uint64_t next_id = 0;
  uint64_t completed = 0;
  uint64_t dropped = 0;
  uint64_t measured_done = 0;
  int in_flight = 0;
  sim::LatencyRecorder latencies;
  std::vector<std::pair<std::string, double>> stage_cpu;
  uint64_t wire_requests = 0;
  SimTime measure_start_time = 0;
  SimTime measure_end_time = 0;
  bool warmed_up = false;

  void ChargeStage(const std::string& stage, SimTime cost) {
    for (auto& [name, total] : stage_cpu) {
      if (name == stage) {
        total += static_cast<double>(cost);
        return;
      }
    }
    stage_cpu.emplace_back(stage, static_cast<double>(cost));
  }

  SimTime Charge(CpuStation& station, const std::string& stage, SimTime cost,
                 std::function<void()> done) {
    ChargeStage(stage, cost);
    return station.Submit(cost, std::move(done));
  }

  bool AllIssued() const {
    return next_id >= cfg.warmup_requests + cfg.measured_requests;
  }

  int WindowLimit() const {
    return std::min(cfg.concurrency, cfg.model.grpc_channel_window);
  }

  void MaybeIssue() {
    while (!AllIssued() && in_flight < WindowLimit()) {
      IssueOne();
    }
  }

  void IssueOne() {
    uint64_t id = next_id++;
    ++in_flight;
    if (!warmed_up && id >= cfg.warmup_requests) {
      warmed_up = true;
      measure_start_time = sim.now();
      ResetStationStats();
    }
    SimTime start = sim.now();

    rpc::Message request = cfg.make_request(id, rng);
    request.set_id(id);

    // --- Stage 1: client app serializes (real proto + HTTP/2 encode) ------
    auto proto = ProtoEncode(request, proto_schema);
    assert(proto.ok());
    GrpcHttp2Message h2;
    HeaderList custom;
    for (const auto& [field, header] : cfg.field_headers) {
      const rpc::Value* v = request.FindField(field);
      if (v != nullptr && !v->is_null()) {
        custom.emplace_back(header, v->type() == rpc::ValueType::kText
                                        ? v->AsText()
                                        : v->ToDisplayString());
      }
    }
    h2.headers = MakeGrpcRequestHeaders("service-b", "/" + request.method(),
                                        custom);
    h2.grpc_payload = std::move(proto).value();
    h2.stream_id = static_cast<uint32_t>(2 * id + 1);
    h2.end_stream = true;
    Bytes wire_bytes = EncodeGrpcMessage(h2, app_to_sca.encoder);

    SimTime serialize_cost =
        cfg.model.grpc_serialize_ns +
        static_cast<SimTime>(cfg.model.grpc_per_byte_ns *
                             static_cast<double>(wire_bytes.size()));
    auto payload = std::make_shared<Bytes>(std::move(wire_bytes));
    Charge(client_app, "client-grpc-serialize", serialize_cost,
           [this, payload, start] { ClientKernelOut(payload, start); });
  }

  void ResetStationStats() {
    client_app.ResetStats();
    client_kernel.ResetStats();
    client_sidecar_cpu.ResetStats();
    server_kernel.ResetStats();
    server_sidecar_cpu.ResetStats();
    server_app.ResetStats();
    stage_cpu.clear();
  }

  // --- Stage 2: kernel + iptables redirect into the sidecar ----------------
  void ClientKernelOut(std::shared_ptr<Bytes> wire_bytes, SimTime start) {
    SimTime cost =
        cfg.model.kernel_crossing_ns + cfg.model.iptables_redirect_ns;
    Charge(client_kernel, "client-kernel", cost, [this, wire_bytes, start] {
      ClientSidecarRequest(wire_bytes, start);
    });
  }

  // --- Stage 3: client sidecar: parse, filters, re-encode ------------------
  void ClientSidecarRequest(std::shared_ptr<Bytes> wire_bytes, SimTime start) {
    SimTime cost = client_sidecar.MessageCostNs(cfg.model, wire_bytes->size(),
                                                /*is_request=*/true);
    Charge(client_sidecar_cpu, "client-sidecar", cost,
           [this, wire_bytes, start] {
             auto out = client_sidecar.ProcessMessage(
                 *wire_bytes, /*is_request=*/true, app_to_sca.decoder,
                 sca_to_scb.encoder);
             assert(out.ok());
             if (out->aborted) {
               // Error response generated at the proxy, straight back.
               SimTime cost_back = cfg.model.kernel_crossing_ns;
               Charge(client_kernel, "client-kernel", cost_back,
                      [this, start] { Complete(start, /*success=*/false); });
               return;
             }
             auto fwd = std::make_shared<Bytes>(std::move(out->wire));
             SimTime k = cfg.model.kernel_crossing_ns;
             Charge(client_kernel, "client-kernel", k, [this, fwd, start] {
               ++wire_requests;
               wire.Send(fwd->size(), [this, fwd, start] {
                 ServerKernelIn(fwd, start);
               });
             });
           });
  }

  // --- Stage 4: server-side kernel + sidecar -------------------------------
  void ServerKernelIn(std::shared_ptr<Bytes> wire_bytes, SimTime start) {
    SimTime cost =
        cfg.model.kernel_crossing_ns + cfg.model.iptables_redirect_ns;
    Charge(server_kernel, "server-kernel", cost, [this, wire_bytes, start] {
      SimTime c = server_sidecar.MessageCostNs(cfg.model, wire_bytes->size(),
                                               /*is_request=*/true);
      Charge(server_sidecar_cpu, "server-sidecar", c,
             [this, wire_bytes, start] {
               auto out = server_sidecar.ProcessMessage(
                   *wire_bytes, /*is_request=*/true, sca_to_scb.decoder,
                   scb_to_server.encoder);
               assert(out.ok());
               if (out->aborted) {
                 // Abort travels back over the wire as a small error reply.
                 wire.Send(64, [this, start] {
                   SimTime k = cfg.model.kernel_crossing_ns;
                   Charge(client_kernel, "client-kernel", k, [this, start] {
                     Complete(start, /*success=*/false);
                   });
                 });
                 return;
               }
               auto fwd = std::make_shared<Bytes>(std::move(out->wire));
               SimTime k = cfg.model.kernel_crossing_ns;
               Charge(server_kernel, "server-kernel", k,
                      [this, fwd, start] { ServerApp(fwd, start); });
             });
    });
  }

  // --- Stage 5: server app: deserialize, handle, respond -------------------
  void ServerApp(std::shared_ptr<Bytes> wire_bytes, SimTime start) {
    SimTime cost =
        cfg.model.grpc_deserialize_ns + cfg.model.app_handler_ns +
        cfg.model.grpc_serialize_ns +
        static_cast<SimTime>(cfg.model.grpc_per_byte_ns *
                             static_cast<double>(wire_bytes->size()));
    Charge(server_app, "server-app", cost, [this, wire_bytes, start] {
      // Real parse + echo + re-encode.
      auto parsed =
          ParseGrpcMessage(*wire_bytes, scb_to_server.decoder);
      assert(parsed.ok());
      auto decoded = ProtoDecode(parsed->grpc_payload, proto_schema);
      assert(decoded.ok());
      // Echo response: same payload back.
      GrpcHttp2Message resp;
      resp.headers = MakeGrpcResponseHeaders(0, {});
      auto proto = ProtoEncode(decoded.value(), proto_schema);
      assert(proto.ok());
      resp.grpc_payload = std::move(proto).value();
      resp.stream_id = parsed->stream_id;
      resp.end_stream = true;
      auto back =
          std::make_shared<Bytes>(EncodeGrpcMessage(resp, server_to_scb.encoder));
      SimTime k = cfg.model.kernel_crossing_ns +
                  cfg.model.iptables_redirect_ns;
      Charge(server_kernel, "server-kernel", k,
             [this, back, start] { ServerSidecarResponse(back, start); });
    });
  }

  // --- Stage 6: response path back through both sidecars -------------------
  void ServerSidecarResponse(std::shared_ptr<Bytes> wire_bytes,
                             SimTime start) {
    SimTime cost = server_sidecar.MessageCostNs(cfg.model, wire_bytes->size(),
                                                /*is_request=*/false);
    Charge(server_sidecar_cpu, "server-sidecar", cost,
           [this, wire_bytes, start] {
             auto out = server_sidecar.ProcessMessage(
                 *wire_bytes, /*is_request=*/false, server_to_scb.decoder,
                 scb_to_sca.encoder);
             assert(out.ok() && !out->aborted);
             auto fwd = std::make_shared<Bytes>(std::move(out->wire));
             SimTime k = cfg.model.kernel_crossing_ns;
             Charge(server_kernel, "server-kernel", k, [this, fwd, start] {
               wire.Send(fwd->size(),
                         [this, fwd, start] { ClientSidecarResponse(fwd, start); });
             });
           });
  }

  void ClientSidecarResponse(std::shared_ptr<Bytes> wire_bytes,
                             SimTime start) {
    SimTime k_in =
        cfg.model.kernel_crossing_ns + cfg.model.iptables_redirect_ns;
    Charge(client_kernel, "client-kernel", k_in, [this, wire_bytes, start] {
      SimTime cost = client_sidecar.MessageCostNs(
          cfg.model, wire_bytes->size(), /*is_request=*/false);
      Charge(client_sidecar_cpu, "client-sidecar", cost,
             [this, wire_bytes, start] {
               auto out = client_sidecar.ProcessMessage(
                   *wire_bytes, /*is_request=*/false, scb_to_sca.decoder,
                   sca_to_app.encoder);
               assert(out.ok() && !out->aborted);
               auto fwd = std::make_shared<Bytes>(std::move(out->wire));
               SimTime k = cfg.model.kernel_crossing_ns;
               Charge(client_kernel, "client-kernel", k, [this, fwd, start] {
                 // Client app deserializes the response.
                 SimTime cost2 =
                     cfg.model.grpc_deserialize_ns +
                     static_cast<SimTime>(
                         cfg.model.grpc_per_byte_ns *
                         static_cast<double>(fwd->size()));
                 Charge(client_app, "client-grpc-deserialize", cost2,
                        [this, fwd, start] {
                          auto parsed =
                              ParseGrpcMessage(*fwd, sca_to_app.decoder);
                          assert(parsed.ok());
                          Complete(start, /*success=*/true);
                        });
               });
             });
    });
  }

  void Complete(SimTime start, bool success) {
    --in_flight;
    if (success) {
      ++completed;
    } else {
      ++dropped;
    }
    if (warmed_up) {
      ++measured_done;
      if (success) latencies.Record(sim.now() - start);
      measure_end_time = sim.now();
    }
    MaybeIssue();
  }

  MeshResult Run() {
    MaybeIssue();
    sim.Run();

    MeshResult result;
    result.stats.label = cfg.label;
    result.stats.completed = completed;
    result.stats.dropped = dropped;
    SimTime span = measure_end_time - measure_start_time;
    result.stats.duration_us = sim::ToMicros(span);
    if (span > 0) {
      result.stats.throughput_krps =
          static_cast<double>(measured_done) /
          (static_cast<double>(span) / sim::kNanosPerSecond) / 1000.0;
    }
    result.stats.mean_latency_us = latencies.MeanMicros();
    result.stats.p50_latency_us = latencies.PercentileMicros(0.50);
    result.stats.p99_latency_us = latencies.PercentileMicros(0.99);
    double denom = std::max<double>(1.0, static_cast<double>(measured_done));
    for (auto& [stage, total] : stage_cpu) {
      result.stage_cpu_ns.emplace_back(stage, total / denom);
    }
    double host_cpu = 0;
    for (const auto& [stage, per_rpc] : result.stage_cpu_ns) {
      host_cpu += per_rpc;
    }
    result.stats.host_cpu_per_rpc_ns = host_cpu;
    result.wire_bytes_per_request =
        wire_requests > 0 ? static_cast<double>(wire.bytes_sent()) /
                                static_cast<double>(wire_requests)
                          : 0.0;
    result.client_sidecar_log = client_sidecar.access_log();
    return result;
  }
};

}  // namespace

MeshResult RunMeshExperiment(const MeshConfig& config) {
  Experiment experiment(config);
  return experiment.Run();
}

}  // namespace adn::stack
