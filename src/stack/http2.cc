#include "stack/http2.h"

#include <array>

namespace adn::stack {

namespace {

// A slice of the RFC 7541 static table — the entries gRPC traffic hits.
const std::vector<std::pair<std::string, std::string>>& StaticTable() {
  static const std::vector<std::pair<std::string, std::string>> kTable = {
      {":authority", ""},
      {":method", "GET"},
      {":method", "POST"},
      {":path", "/"},
      {":scheme", "http"},
      {":scheme", "https"},
      {":status", "200"},
      {"content-type", ""},
      {"te", ""},
      {"user-agent", ""},
      {"grpc-status", ""},
      {"grpc-encoding", ""},
      {"grpc-accept-encoding", ""},
      {"grpc-timeout", ""},
  };
  return kTable;
}

// HPACK integer encoding with an n-bit prefix.
void EncodeHpackInt(uint64_t value, int prefix_bits, uint8_t prefix_byte,
                    Bytes& out) {
  const uint64_t max_prefix = (1u << prefix_bits) - 1;
  if (value < max_prefix) {
    out.push_back(prefix_byte | static_cast<uint8_t>(value));
    return;
  }
  out.push_back(prefix_byte | static_cast<uint8_t>(max_prefix));
  value -= max_prefix;
  while (value >= 128) {
    out.push_back(static_cast<uint8_t>(value % 128 + 128));
    value /= 128;
  }
  out.push_back(static_cast<uint8_t>(value));
}

Result<uint64_t> DecodeHpackInt(ByteReader& r, int prefix_bits,
                                uint8_t first) {
  const uint64_t max_prefix = (1u << prefix_bits) - 1;
  uint64_t value = first & max_prefix;
  if (value < max_prefix) return value;
  uint64_t m = 0;
  while (true) {
    ADN_ASSIGN_OR_RETURN(uint8_t b, r.ReadU8());
    value += static_cast<uint64_t>(b & 0x7F) << m;
    if ((b & 0x80) == 0) return value;
    m += 7;
    if (m > 56) {
      return Error(ErrorCode::kParseError, "HPACK integer overflow");
    }
  }
}

void EncodeHpackString(const std::string& s, Bytes& out) {
  // No Huffman (H bit 0) — length then literal octets.
  EncodeHpackInt(s.size(), 7, 0x00, out);
  out.insert(out.end(), s.begin(), s.end());
}

Result<std::string> DecodeHpackString(ByteReader& r) {
  ADN_ASSIGN_OR_RETURN(uint8_t first, r.ReadU8());
  if ((first & 0x80) != 0) {
    return Error(ErrorCode::kUnsupported,
                 "Huffman-coded HPACK strings not supported");
  }
  ADN_ASSIGN_OR_RETURN(uint64_t len, DecodeHpackInt(r, 7, first));
  ADN_ASSIGN_OR_RETURN(auto bytes, r.ReadBytes(len));
  return std::string(AsStringView(bytes));
}

}  // namespace

HpackCodec::HpackCodec() = default;

size_t HpackCodec::FindIndexed(const std::string& name,
                               const std::string& value) const {
  const auto& st = StaticTable();
  for (size_t i = 0; i < st.size(); ++i) {
    if (st[i].first == name && st[i].second == value && !value.empty()) {
      return i + 1;
    }
  }
  for (size_t i = 0; i < dynamic_.size(); ++i) {
    if (dynamic_[i].first == name && dynamic_[i].second == value) {
      return st.size() + i + 1;
    }
  }
  return 0;
}

size_t HpackCodec::FindName(const std::string& name) const {
  const auto& st = StaticTable();
  for (size_t i = 0; i < st.size(); ++i) {
    if (st[i].first == name) return i + 1;
  }
  for (size_t i = 0; i < dynamic_.size(); ++i) {
    if (dynamic_[i].first == name) return st.size() + i + 1;
  }
  return 0;
}

void HpackCodec::InsertDynamic(std::string name, std::string value) {
  // Bounded table (64 entries) with FIFO eviction, like a small
  // SETTINGS_HEADER_TABLE_SIZE.
  dynamic_.insert(dynamic_.begin(), {std::move(name), std::move(value)});
  if (dynamic_.size() > 64) dynamic_.pop_back();
}

void HpackCodec::EncodeHeaderBlock(const HeaderList& headers, Bytes& out) {
  for (const auto& [name, value] : headers) {
    if (size_t idx = FindIndexed(name, value); idx != 0) {
      // Indexed header field: 1xxxxxxx.
      EncodeHpackInt(idx, 7, 0x80, out);
      continue;
    }
    if (size_t name_idx = FindName(name); name_idx != 0) {
      // Literal with incremental indexing, indexed name: 01xxxxxx.
      EncodeHpackInt(name_idx, 6, 0x40, out);
      EncodeHpackString(value, out);
    } else {
      // Literal with incremental indexing, new name.
      out.push_back(0x40);
      EncodeHpackString(name, out);
      EncodeHpackString(value, out);
    }
    InsertDynamic(name, value);
  }
}

Result<HeaderList> HpackCodec::DecodeHeaderBlock(
    std::span<const uint8_t> block) {
  HeaderList out;
  const auto& st = StaticTable();
  ByteReader r(block);
  while (!r.AtEnd()) {
    ADN_ASSIGN_OR_RETURN(uint8_t first, r.ReadU8());
    if ((first & 0x80) != 0) {
      ADN_ASSIGN_OR_RETURN(uint64_t idx, DecodeHpackInt(r, 7, first));
      if (idx == 0 || idx > st.size() + dynamic_.size()) {
        return Error(ErrorCode::kParseError,
                     "HPACK index " + std::to_string(idx) + " out of range");
      }
      const auto& entry =
          idx <= st.size() ? st[idx - 1] : dynamic_[idx - st.size() - 1];
      out.push_back(entry);
      continue;
    }
    if ((first & 0x40) != 0) {
      ADN_ASSIGN_OR_RETURN(uint64_t name_idx, DecodeHpackInt(r, 6, first));
      std::string name;
      if (name_idx == 0) {
        ADN_ASSIGN_OR_RETURN(name, DecodeHpackString(r));
      } else if (name_idx <= st.size() + dynamic_.size()) {
        name = name_idx <= st.size() ? st[name_idx - 1].first
                                     : dynamic_[name_idx - st.size() - 1].first;
      } else {
        return Error(ErrorCode::kParseError, "HPACK name index out of range");
      }
      ADN_ASSIGN_OR_RETURN(std::string value, DecodeHpackString(r));
      out.emplace_back(name, value);
      InsertDynamic(std::move(name), std::move(value));
      continue;
    }
    return Error(ErrorCode::kUnsupported,
                 "HPACK representation 0x" + std::to_string(first) +
                     " not supported");
  }
  return out;
}

void EncodeFrame(const Frame& frame, Bytes& out) {
  uint32_t len = static_cast<uint32_t>(frame.payload.size());
  out.push_back(static_cast<uint8_t>(len >> 16));
  out.push_back(static_cast<uint8_t>(len >> 8));
  out.push_back(static_cast<uint8_t>(len));
  out.push_back(static_cast<uint8_t>(frame.type));
  out.push_back(frame.flags);
  out.push_back(static_cast<uint8_t>(frame.stream_id >> 24) & 0x7F);
  out.push_back(static_cast<uint8_t>(frame.stream_id >> 16));
  out.push_back(static_cast<uint8_t>(frame.stream_id >> 8));
  out.push_back(static_cast<uint8_t>(frame.stream_id));
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
}

Result<std::vector<Frame>> ParseFrames(std::span<const uint8_t> wire) {
  std::vector<Frame> out;
  ByteReader r(wire);
  while (!r.AtEnd()) {
    if (r.remaining() < 9) {
      return Error(ErrorCode::kParseError, "truncated HTTP/2 frame header");
    }
    ADN_ASSIGN_OR_RETURN(uint8_t l2, r.ReadU8());
    ADN_ASSIGN_OR_RETURN(uint8_t l1, r.ReadU8());
    ADN_ASSIGN_OR_RETURN(uint8_t l0, r.ReadU8());
    uint32_t len = (static_cast<uint32_t>(l2) << 16) |
                   (static_cast<uint32_t>(l1) << 8) | l0;
    Frame frame;
    ADN_ASSIGN_OR_RETURN(uint8_t type, r.ReadU8());
    frame.type = static_cast<FrameType>(type);
    ADN_ASSIGN_OR_RETURN(frame.flags, r.ReadU8());
    uint32_t sid = 0;
    for (int i = 0; i < 4; ++i) {
      ADN_ASSIGN_OR_RETURN(uint8_t b, r.ReadU8());
      sid = (sid << 8) | b;
    }
    frame.stream_id = sid & 0x7FFFFFFF;
    ADN_ASSIGN_OR_RETURN(auto payload, r.ReadBytes(len));
    frame.payload.assign(payload.begin(), payload.end());
    out.push_back(std::move(frame));
  }
  return out;
}

Bytes EncodeGrpcMessage(const GrpcHttp2Message& msg, HpackCodec& hpack) {
  Bytes out;
  Frame headers;
  headers.type = FrameType::kHeaders;
  headers.flags = kFlagEndHeaders;
  headers.stream_id = msg.stream_id;
  hpack.EncodeHeaderBlock(msg.headers, headers.payload);
  EncodeFrame(headers, out);

  Frame data;
  data.type = FrameType::kData;
  data.flags = msg.end_stream ? kFlagEndStream : 0;
  data.stream_id = msg.stream_id;
  // gRPC 5-byte message prefix: compressed flag + u32 length (big endian).
  data.payload.push_back(0);
  uint32_t plen = static_cast<uint32_t>(msg.grpc_payload.size());
  data.payload.push_back(static_cast<uint8_t>(plen >> 24));
  data.payload.push_back(static_cast<uint8_t>(plen >> 16));
  data.payload.push_back(static_cast<uint8_t>(plen >> 8));
  data.payload.push_back(static_cast<uint8_t>(plen));
  data.payload.insert(data.payload.end(), msg.grpc_payload.begin(),
                      msg.grpc_payload.end());
  EncodeFrame(data, out);
  return out;
}

Result<GrpcHttp2Message> ParseGrpcMessage(std::span<const uint8_t> wire,
                                          HpackCodec& hpack) {
  ADN_ASSIGN_OR_RETURN(std::vector<Frame> frames, ParseFrames(wire));
  GrpcHttp2Message out;
  bool saw_headers = false;
  bool saw_data = false;
  for (Frame& f : frames) {
    if (f.type == FrameType::kHeaders) {
      ADN_ASSIGN_OR_RETURN(out.headers, hpack.DecodeHeaderBlock(f.payload));
      out.stream_id = f.stream_id;
      saw_headers = true;
    } else if (f.type == FrameType::kData) {
      if (f.payload.size() < 5) {
        return Error(ErrorCode::kParseError, "gRPC DATA frame too short");
      }
      uint32_t plen = (static_cast<uint32_t>(f.payload[1]) << 24) |
                      (static_cast<uint32_t>(f.payload[2]) << 16) |
                      (static_cast<uint32_t>(f.payload[3]) << 8) |
                      f.payload[4];
      if (plen + 5 != f.payload.size()) {
        return Error(ErrorCode::kParseError,
                     "gRPC length prefix mismatch");
      }
      out.grpc_payload.assign(f.payload.begin() + 5, f.payload.end());
      out.end_stream = (f.flags & kFlagEndStream) != 0;
      saw_data = true;
    }
  }
  if (!saw_headers || !saw_data) {
    return Error(ErrorCode::kParseError,
                 "expected HEADERS + DATA in gRPC message");
  }
  return out;
}

HeaderList MakeGrpcRequestHeaders(std::string_view authority,
                                  std::string_view path,
                                  const HeaderList& custom) {
  HeaderList h = {
      {":method", "POST"},
      {":scheme", "http"},
      {":path", std::string(path)},
      {":authority", std::string(authority)},
      {"content-type", "application/grpc"},
      {"te", "trailers"},
      {"grpc-encoding", "identity"},
      {"grpc-accept-encoding", "identity,deflate,gzip"},
      {"user-agent", "adn-bench-grpc/1.0"},
  };
  h.insert(h.end(), custom.begin(), custom.end());
  return h;
}

HeaderList MakeGrpcResponseHeaders(int grpc_status, const HeaderList& custom) {
  HeaderList h = {
      {":status", "200"},
      {"content-type", "application/grpc"},
      {"grpc-status", std::to_string(grpc_status)},
  };
  h.insert(h.end(), custom.begin(), custom.end());
  return h;
}

}  // namespace adn::stack
