// End-to-end simulated gRPC + Envoy service-mesh path (Figure 1 of the
// paper): client app -> kernel (iptables redirect) -> client sidecar ->
// kernel -> wire -> kernel -> server sidecar -> kernel -> server app, and
// the mirror path for responses.
//
// Every hop does the real byte work (protobuf encode/decode, HTTP/2 framing,
// HPACK, filter evaluation); the discrete-event simulator charges each hop's
// CPU station with calibrated costs so latency/throughput reflect the
// two-Xeon testbed the paper used. The client issues a closed loop of
// `concurrency` RPCs through a gRPC channel whose HTTP/2 flow-control window
// caps the in-flight count (CostModel::grpc_channel_window).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>

#include "common/rng.h"
#include "rpc/message.h"
#include "rpc/schema.h"
#include "sim/cost_model.h"
#include "sim/simulator.h"
#include "sim/station.h"
#include "sim/stats.h"
#include "stack/adn_filter.h"
#include "stack/envoy.h"
#include "stack/proto_codec.h"

namespace adn::stack {

// Deploy a compiled ADN chain at the server sidecar (the "ADN inside the
// mesh" configuration): the whole chain executes as one ChainProgram over
// the typed message instead of a list of generic Envoy filters.
struct AdnChainConfig {
  std::shared_ptr<const ir::ChainProgram> program;
  std::vector<std::shared_ptr<const ir::ElementIr>> elements;
  uint64_t seed = 1;
  // Called once after the filter is built, to populate rule tables.
  std::function<void(AdnChainFilter&)> seed_state;
};

struct MeshConfig {
  std::string label = "gRPC+Envoy";
  int concurrency = 128;
  uint64_t measured_requests = 20'000;
  uint64_t warmup_requests = 2'000;
  uint64_t seed = 1;
  sim::CostModel model = sim::CostModel::Default();

  // Application message factory (fields must fit request_schema).
  rpc::Schema request_schema;
  std::function<rpc::Message(uint64_t id, Rng& rng)> make_request;

  // Headers the app copies out of the RPC so the proxy can see them
  // (field name -> header name), e.g. {"username", "x-user"}.
  std::vector<std::pair<std::string, std::string>> field_headers;

  // Filter factories applied to the SERVER (destination) sidecar, in order —
  // meshes enforce policy at the workload's own proxy. `client_filters`
  // optionally adds egress processing at the caller's sidecar.
  std::vector<std::function<std::unique_ptr<EnvoyFilter>()>> filters;
  std::vector<std::function<std::unique_ptr<EnvoyFilter>()>> client_filters;

  // When set, the compiled chain is installed at the server sidecar after
  // any `filters` above (ADN-over-mesh hybrid deployment).
  std::optional<AdnChainConfig> adn_chain;
};

struct MeshResult {
  sim::RunStats stats;
  // Per-stage CPU time for one average RPC (ns) — the E9 breakdown.
  std::vector<std::pair<std::string, double>> stage_cpu_ns;
  // Mean bytes on the inter-machine wire per request.
  double wire_bytes_per_request = 0.0;
  std::vector<std::string> client_sidecar_log;
};

MeshResult RunMeshExperiment(const MeshConfig& config);

}  // namespace adn::stack
