// AdnChainFilter: a compiled ADN chain hosted inside the sidecar proxy.
//
// This is the mesh-path deployment of the ChainProgram tier: instead of a
// list of generic Envoy filters each re-matching header maps, the whole ADN
// chain runs as one flat program over the *typed* message decoded from the
// gRPC payload. It pays the proxy's parse/re-encode boundary once (the
// layering the mesh imposes) but the element logic itself executes exactly
// as it does on an mRPC engine — same ChainExecutor, same ElementInstance
// state, so the differential harness can compare tiers end to end.
#pragma once

#include <memory>
#include <vector>

#include "ir/exec.h"
#include "ir/program.h"
#include "stack/envoy.h"
#include "stack/proto_codec.h"

namespace adn::stack {

class AdnChainFilter : public EnvoyFilter {
 public:
  // `program` must have been compiled from `elements` (one segment each,
  // kind guards on, since one sidecar filter sees both directions).
  // `request_schema` defines the proto layout of the gRPC payload.
  AdnChainFilter(std::shared_ptr<const ir::ChainProgram> program,
                 std::vector<std::shared_ptr<const ir::ElementIr>> elements,
                 const rpc::Schema& request_schema, uint64_t seed);

  std::string_view name() const override { return "adn.chain"; }
  FilterResult OnMessage(FilterContext& ctx) override;
  sim::SimTime CostNs(const sim::CostModel& model) const override;

  // State access for controller-style seeding (rule tables etc.).
  ir::ElementInstance& instance(size_t i) { return *instances_[i]; }
  size_t instance_count() const { return instances_.size(); }
  const ir::ChainProgram& program() const { return *program_; }

 private:
  std::shared_ptr<const ir::ChainProgram> program_;
  ProtoSchema proto_schema_;
  std::vector<std::unique_ptr<ir::ElementInstance>> instances_;
  std::unique_ptr<ir::ChainExecutor> executor_;
};

}  // namespace adn::stack
