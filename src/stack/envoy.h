// Envoy-like L7 sidecar proxy — the baseline the paper compares against.
//
// Faithful to the architecture §2 criticizes: the proxy intercepts the
// byte stream, parses HTTP/2 frames, HPACK-decodes the header map, runs a
// chain of *generic* filters (each consulting its own configuration with
// many knobs — matchers, format strings, runtime fractions), then re-encodes
// everything and forwards. Application data the filters need (user, object
// id) must have been copied into HTTP headers by the application, because
// the proxy cannot see RPC-level fields — exactly the "layering hides
// information" problem.
//
// Filters implemented (modeled on envoy.filters.http.*):
//   AccessLogFilter  — access_log with a format string (logging)
//   RbacFilter       — role-based access control over header matchers (ACL)
//   FaultFilter      — fault injection with runtime fraction (fault)
//   HashRouterFilter — route + hash-policy load balancing (LB)
//   CompressorFilter — gzip-style body (de)compression
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "sim/cost_model.h"
#include "stack/http2.h"

namespace adn::stack {

enum class FilterAction : uint8_t {
  kContinue,
  kAbort,  // respond to caller with an error (e.g. 403 / fault 503)
};

struct FilterResult {
  FilterAction action = FilterAction::kContinue;
  int http_status = 200;
  std::string detail;
};

struct FilterContext {
  HeaderList* headers = nullptr;
  Bytes* body = nullptr;  // gRPC payload (proto bytes)
  bool is_request = true;
  uint32_t stream_id = 0;  // HTTP/2 stream carrying this message
  Rng* rng = nullptr;
  std::vector<std::string>* access_log = nullptr;
};

class EnvoyFilter {
 public:
  virtual ~EnvoyFilter() = default;
  virtual std::string_view name() const = 0;
  virtual FilterResult OnMessage(FilterContext& ctx) = 0;
  // Simulated CPU charged per message on top of the real work done here.
  virtual sim::SimTime CostNs(const sim::CostModel& model) const = 0;
};

// --- Access log ---------------------------------------------------------------
// Format operators: %REQ(name)% (header value), %STREAM_ID%, %BYTES%.
class AccessLogFilter : public EnvoyFilter {
 public:
  explicit AccessLogFilter(std::string format);
  std::string_view name() const override { return "envoy.access_log"; }
  FilterResult OnMessage(FilterContext& ctx) override;
  sim::SimTime CostNs(const sim::CostModel& m) const override {
    return m.envoy_filter_logging_ns;
  }

 private:
  std::string format_;
};

// --- RBAC ---------------------------------------------------------------------
struct HeaderMatcher {
  std::string header;
  enum class Kind { kExact, kPrefix, kPresent } kind = Kind::kExact;
  std::string value;

  bool Matches(const HeaderList& headers) const;
};

struct RbacPolicy {
  std::string name;
  std::vector<HeaderMatcher> principals;   // all must match
  std::vector<HeaderMatcher> permissions;  // all must match
};

class RbacFilter : public EnvoyFilter {
 public:
  enum class DefaultAction { kAllow, kDeny };
  RbacFilter(std::vector<RbacPolicy> allow_policies, DefaultAction fallback);
  std::string_view name() const override { return "envoy.rbac"; }
  FilterResult OnMessage(FilterContext& ctx) override;
  sim::SimTime CostNs(const sim::CostModel& m) const override {
    return m.envoy_filter_acl_ns;
  }

 private:
  std::vector<RbacPolicy> policies_;
  DefaultAction fallback_;
};

// --- Fault injection ------------------------------------------------------------
class FaultFilter : public EnvoyFilter {
 public:
  FaultFilter(double abort_fraction, int abort_http_status);
  std::string_view name() const override { return "envoy.fault"; }
  FilterResult OnMessage(FilterContext& ctx) override;
  sim::SimTime CostNs(const sim::CostModel& m) const override {
    return m.envoy_filter_fault_ns;
  }

 private:
  double abort_fraction_;
  int abort_status_;
};

// --- Router with hash-policy LB -------------------------------------------------
class HashRouterFilter : public EnvoyFilter {
 public:
  // Routes on the named header's hash across `upstream_count` endpoints;
  // records the pick in the "x-adn-upstream" header.
  HashRouterFilter(std::string hash_header, size_t upstream_count);
  std::string_view name() const override { return "envoy.router"; }
  FilterResult OnMessage(FilterContext& ctx) override;
  sim::SimTime CostNs(const sim::CostModel& m) const override {
    return m.envoy_filter_lb_ns;
  }
  size_t last_pick() const { return last_pick_; }

 private:
  std::string hash_header_;
  size_t upstream_count_;
  size_t last_pick_ = 0;
};

// --- Compressor -------------------------------------------------------------------
class CompressorFilter : public EnvoyFilter {
 public:
  explicit CompressorFilter(bool compress);  // false = decompressor
  std::string_view name() const override {
    return compress_ ? "envoy.compressor" : "envoy.decompressor";
  }
  FilterResult OnMessage(FilterContext& ctx) override;
  sim::SimTime CostNs(const sim::CostModel& m) const override;

 private:
  bool compress_;
};

// --- The sidecar ---------------------------------------------------------------
// One proxy instance with separate HPACK state per direction, a filter
// chain, and an access log. ProcessMessage does the real byte work:
// parse -> decode -> filters -> re-encode.
class EnvoySidecar {
 public:
  EnvoySidecar(std::string name, uint64_t seed);

  void AddFilter(std::unique_ptr<EnvoyFilter> filter);

  struct Output {
    bool aborted = false;
    int http_status = 200;
    std::string detail;
    Bytes wire;  // re-encoded frames when not aborted
  };

  // `inbound_hpack`/`outbound_hpack`: connection codec states for the two
  // hops this proxy bridges (real Envoy keeps per-connection HPACK too).
  Result<Output> ProcessMessage(std::span<const uint8_t> wire,
                                bool is_request, HpackCodec& inbound_hpack,
                                HpackCodec& outbound_hpack);

  // Simulated CPU for one message of `wire_bytes` length.
  sim::SimTime MessageCostNs(const sim::CostModel& model, size_t wire_bytes,
                             bool is_request) const;

  const std::vector<std::string>& access_log() const { return access_log_; }
  const std::string& name() const { return name_; }
  uint64_t messages_processed() const { return processed_; }
  uint64_t messages_aborted() const { return aborted_; }

 private:
  std::string name_;
  std::vector<std::unique_ptr<EnvoyFilter>> filters_;
  std::vector<std::string> access_log_;
  Rng rng_;
  uint64_t processed_ = 0;
  uint64_t aborted_ = 0;
};

}  // namespace adn::stack
