#include "stack/adn_filter.h"

#include <optional>

#include "obs/intern.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace adn::stack {

namespace {
// Span identities interned once per process — the filter hot path only
// touches ids (satisfies the zero-alloc tracing contract on the mesh tier).
struct FilterSpanIds {
  obs::NameId sidecar = obs::InternName("sidecar");
  obs::NameId rpc = obs::InternName("rpc");
  obs::NameId decode = obs::InternName("proto-decode");
  obs::NameId encode = obs::InternName("proto-encode");
};
const FilterSpanIds& SpanIds() {
  static const FilterSpanIds ids;
  return ids;
}
}  // namespace

AdnChainFilter::AdnChainFilter(
    std::shared_ptr<const ir::ChainProgram> program,
    std::vector<std::shared_ptr<const ir::ElementIr>> elements,
    const rpc::Schema& request_schema, uint64_t seed)
    : program_(std::move(program)), proto_schema_(request_schema) {
  instances_.reserve(elements.size());
  for (size_t i = 0; i < elements.size(); ++i) {
    instances_.push_back(
        std::make_unique<ir::ElementInstance>(elements[i], seed + i));
  }
  std::vector<ir::ElementInstance*> raw;
  raw.reserve(instances_.size());
  for (auto& inst : instances_) raw.push_back(inst.get());
  executor_ = std::make_unique<ir::ChainExecutor>(program_, std::move(raw));
  executor_->set_trace_identity(obs::Tier::kMesh, SpanIds().sidecar);
}

FilterResult AdnChainFilter::OnMessage(FilterContext& ctx) {
  const bool timing = obs::Enabled();
  std::optional<obs::RpcTraceScope> scope;
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  if (timing) {
    reg.GetCounter("adn_mesh_messages_total").Inc();
    // Same trace_id as the engine tiers (stream id is 2*rpc_id+1), so the
    // mesh span tree is comparable to theirs for the same workload.
    scope.emplace(ctx.stream_id / 2, obs::Tier::kMesh, SpanIds().sidecar,
                  SpanIds().rpc);
  }
  obs::TraceContext* trace = scope && scope->active() ? obs::CurrentTrace()
                                                      : nullptr;
  auto abort_with = [&](int status, std::string message) -> FilterResult {
    if (timing) reg.GetCounter("adn_mesh_aborts_total").Inc();
    return {FilterAction::kAbort, status, std::move(message)};
  };

  // The proxy boundary forces a decode: elements operate on typed tuples,
  // the mesh delivers proto bytes.
  size_t decode_span = 0;
  if (trace != nullptr) decode_span = trace->OpenSpan(SpanIds().decode);
  auto decoded = ProtoDecode(*ctx.body, proto_schema_);
  if (trace != nullptr) trace->CloseSpan(decode_span);
  if (!decoded.ok()) {
    return abort_with(400, decoded.error().ToString());
  }
  rpc::Message m = std::move(decoded).value();
  m.set_kind(ctx.is_request ? rpc::MessageKind::kRequest
                            : rpc::MessageKind::kResponse);
  // gRPC stream ids are 2*rpc_id+1 on this path; recover the id so rpc_id()
  // agrees with the engine tiers.
  m.set_id(ctx.stream_id / 2);

  ir::ProcessResult r = executor_->Process(m, /*now_ns=*/0);
  if (r.outcome == ir::ProcessOutcome::kDropAbort) {
    return abort_with(403, std::move(r.abort_message));
  }
  if (r.outcome == ir::ProcessOutcome::kDropSilent) {
    // A proxy cannot truly vanish an in-stream request; closest mesh
    // behavior is a 503 with no detail.
    return abort_with(503, std::move(r.abort_message));
  }
  // kReply (cache hit) rewrote `m` into the response in place. The generic
  // proxy has no direct-response primitive, so the rewritten body continues
  // down the stream and the upstream echoes it — the hit still saves the
  // handler work, but not the mesh hops. This layering cost is exactly what
  // the engine tiers avoid (they turn the message around at the hit site).

  size_t encode_span = 0;
  if (trace != nullptr) encode_span = trace->OpenSpan(SpanIds().encode);
  auto encoded = ProtoEncode(m, proto_schema_);
  if (trace != nullptr) trace->CloseSpan(encode_span);
  if (!encoded.ok()) {
    return abort_with(500, encoded.error().ToString());
  }
  *ctx.body = std::move(encoded).value();
  return {};
}

sim::SimTime AdnChainFilter::CostNs(const sim::CostModel& model) const {
  // Compiled-tier execution cost (instruction counts) plus the typed
  // decode/encode the proxy boundary forces on the chain.
  double total = 2.0 * static_cast<double>(model.adn_codec_ns);
  for (const auto& seg : program_->elements) {
    total += model.CompiledElementCostNs(seg.instr_count,
                                         /*per_byte_ns=*/0.0,
                                         /*payload_bytes=*/0);
  }
  return static_cast<sim::SimTime>(total);
}

}  // namespace adn::stack
