// The ADN element library: canonical DSL sources for the elements the paper
// uses (§6: Logging, ACL, Fault) plus the §2 example chain (load balancing
// by object id, compression/decompression, access control) and a set of
// extras (quota, telemetry, encryption, rate limiting).
//
// These are the "tens of lines of SQL" the paper contrasts with hundreds of
// lines of hand-written Rust; the hand-written counterparts live in
// elements/handcoded.h.
#pragma once

#include <string>
#include <string_view>

namespace adn::elements {

// --- State tables ------------------------------------------------------------
std::string_view AclTableSql();        // ac_tab(username PK, permission)
std::string_view LogTableSql();        // log_tab(rpc, who, bytes)
std::string_view EndpointsTableSql();  // endpoints(shard PK, endpoint)
std::string_view QuotaTableSql();      // quota(username PK, remaining)
std::string_view TelemetryTableSql();  // telemetry(method PK, count)

// --- Elements (paper §6 evaluation set) ---------------------------------------
std::string_view LoggingSql();  // records rpc id, user, payload size
std::string_view AclSql();      // Figure 4: block users without 'W'
std::string_view FaultSql();    // abort with probability 0.05

// --- Elements (paper §2 example chain) ------------------------------------------
// Load-balance requests to one of the backends by hash(object_id) over 16
// shards; the controller owns the endpoints table.
inline constexpr int kLbShards = 16;
std::string_view HashLbSql();
std::string_view CompressSql();
std::string_view DecompressSql();

// --- Extras ---------------------------------------------------------------------
std::string_view EncryptSql();
std::string_view DecryptSql();
std::string_view QuotaSql();
std::string_view TelemetrySql();
std::string_view RateLimitFilterSql();  // FILTER ... USING rate_limit(...)
std::string_view DedupFilterSql();
std::string_view AggTopkFilterSql();   // FILTER ... USING agg_topk(...)
std::string_view ResponseCacheSql();   // CACHE RespCache ... KEY (object_id)

// Full program sources used across tests/benches/examples.

// Fig. 5 workload: Logging, Acl, Fault between client and server.
std::string Fig5ProgramSource();

// §2 chain: HashLb, Compress (sender side) ... Decompress, Acl (receiver).
std::string Fig2ProgramSource();

// Everything in the library, one chain each (for compiler stress tests).
std::string FullLibrarySource();

// Memoization chain: RespCache in front of Logging -> Acl -> Compress. The
// bench_cache workload and EXPERIMENTS.md E18 run this program; a hit at
// RespCache short-circuits everything behind it.
std::string CacheChainSource();

}  // namespace adn::elements
