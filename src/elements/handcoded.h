// Hand-written element implementations — the counterpart of the paper's
// "hand-optimized mRPC modules written by mRPC developers".
//
// Each stage implements exactly the same observable behaviour as its
// DSL-generated twin (tests assert parity) but as direct C++ with
// purpose-built state structures instead of an interpreted plan over
// relational tables. The generated-vs-hand-coded comparison (paper §6:
// 3-12% overhead, ~100x less user code) runs these against GeneratedStage.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "mrpc/engine.h"

namespace adn::elements {

struct LogRecord {
  int64_t rpc_id;
  std::string who;
  int64_t bytes;
};

class HandLogging : public mrpc::EngineStage {
 public:
  std::string_view name() const override { return "hand.Logging"; }
  bool AppliesTo(rpc::MessageKind kind) const override {
    return kind != rpc::MessageKind::kError;
  }
  ir::ProcessResult Process(rpc::Message& m, int64_t now_ns) override;
  double CostNs(const sim::CostModel& model,
                size_t payload_bytes) const override;

  const std::vector<LogRecord>& records() const { return records_; }

 private:
  std::vector<LogRecord> records_;
};

class HandAcl : public mrpc::EngineStage {
 public:
  // username -> permission ('R'/'W').
  explicit HandAcl(std::unordered_map<std::string, char> rules)
      : rules_(std::move(rules)) {}

  std::string_view name() const override { return "hand.Acl"; }
  bool AppliesTo(rpc::MessageKind kind) const override {
    return kind == rpc::MessageKind::kRequest;
  }
  ir::ProcessResult Process(rpc::Message& m, int64_t now_ns) override;
  double CostNs(const sim::CostModel& model,
                size_t payload_bytes) const override;

 private:
  std::unordered_map<std::string, char> rules_;
};

class HandFault : public mrpc::EngineStage {
 public:
  HandFault(double abort_probability, uint64_t seed)
      : probability_(abort_probability), rng_(seed) {}

  std::string_view name() const override { return "hand.Fault"; }
  bool AppliesTo(rpc::MessageKind kind) const override {
    return kind == rpc::MessageKind::kRequest;
  }
  ir::ProcessResult Process(rpc::Message& m, int64_t now_ns) override;
  double CostNs(const sim::CostModel& model,
                size_t payload_bytes) const override;

 private:
  double probability_;
  Rng rng_;
};

class HandHashLb : public mrpc::EngineStage {
 public:
  // shard -> endpoint, dense over [0, shards).
  explicit HandHashLb(std::vector<rpc::EndpointId> shard_to_endpoint)
      : shard_to_endpoint_(std::move(shard_to_endpoint)) {}

  std::string_view name() const override { return "hand.HashLb"; }
  bool AppliesTo(rpc::MessageKind kind) const override {
    return kind == rpc::MessageKind::kRequest;
  }
  ir::ProcessResult Process(rpc::Message& m, int64_t now_ns) override;
  double CostNs(const sim::CostModel& model,
                size_t payload_bytes) const override;

 private:
  std::vector<rpc::EndpointId> shard_to_endpoint_;
};

class HandCompress : public mrpc::EngineStage {
 public:
  explicit HandCompress(bool compress) : compress_(compress) {}
  std::string_view name() const override {
    return compress_ ? "hand.Compress" : "hand.Decompress";
  }
  bool AppliesTo(rpc::MessageKind kind) const override {
    return kind == rpc::MessageKind::kRequest;
  }
  ir::ProcessResult Process(rpc::Message& m, int64_t now_ns) override;
  double CostNs(const sim::CostModel& model,
                size_t payload_bytes) const override;

 private:
  bool compress_;
};

}  // namespace adn::elements
