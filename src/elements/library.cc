#include "elements/library.h"

namespace adn::elements {

std::string_view AclTableSql() {
  return "STATE TABLE ac_tab (username TEXT PRIMARY KEY, permission TEXT);\n";
}

std::string_view LogTableSql() {
  return "STATE TABLE log_tab (rpc INT, who TEXT, bytes INT);\n";
}

std::string_view EndpointsTableSql() {
  return "STATE TABLE endpoints (shard INT PRIMARY KEY, endpoint INT);\n";
}

std::string_view QuotaTableSql() {
  return "STATE TABLE quota (username TEXT PRIMARY KEY, remaining INT);\n";
}

std::string_view TelemetryTableSql() {
  return "STATE TABLE telemetry (method TEXT PRIMARY KEY, count INT);\n";
}

std::string_view LoggingSql() {
  return R"(
-- Record both requests and responses to the log table.
ELEMENT Logging ON BOTH {
  INPUT (username TEXT, payload BYTES);
  INSERT INTO log_tab VALUES (rpc_id(), username, len(payload));
}
)";
}

std::string_view AclSql() {
  return R"(
-- Paper Figure 4: block users that do not have write permission.
ELEMENT Acl ON REQUEST {
  INPUT (username TEXT, payload BYTES);
  ON DROP ABORT 'permission denied';
  SELECT * FROM input JOIN ac_tab ON input.username = ac_tab.username
    WHERE ac_tab.permission = 'W';
}
)";
}

std::string_view FaultSql() {
  return R"(
-- Abort requests with a configured probability (5%).
ELEMENT Fault ON REQUEST {
  INPUT (payload BYTES);
  ON DROP ABORT 'fault injected';
  SELECT * FROM input WHERE random() >= 0.05;
}
)";
}

std::string_view HashLbSql() {
  return R"(
-- Route to the replica owning the object's shard. The controller keeps the
-- endpoints table in sync with the deployment (adds/removes replicas).
ELEMENT HashLb ON REQUEST {
  INPUT (object_id INT, payload BYTES);
  ON DROP ABORT 'no backend for shard';
  SELECT *, endpoints.endpoint AS __destination
    FROM input JOIN endpoints ON hash(object_id) % 16 = endpoints.shard;
}
)";
}

std::string_view CompressSql() {
  return R"(
ELEMENT Compress ON REQUEST {
  INPUT (payload BYTES);
  SELECT *, compress(payload) AS payload FROM input;
}
)";
}

std::string_view DecompressSql() {
  return R"(
ELEMENT Decompress ON REQUEST {
  INPUT (payload BYTES);
  SELECT *, decompress(payload) AS payload FROM input;
}
)";
}

std::string_view EncryptSql() {
  return R"(
ELEMENT Encrypt ON REQUEST {
  INPUT (payload BYTES);
  SELECT *, encrypt(payload, 'adn-demo-key') AS payload FROM input;
}
)";
}

std::string_view DecryptSql() {
  return R"(
ELEMENT Decrypt ON REQUEST {
  INPUT (payload BYTES);
  SELECT *, decrypt(payload, 'adn-demo-key') AS payload FROM input;
}
)";
}

std::string_view QuotaSql() {
  return R"(
-- Per-user admission: require remaining quota, then decrement it.
ELEMENT Quota ON REQUEST {
  INPUT (username TEXT);
  ON DROP ABORT 'quota exceeded';
  SELECT * FROM input JOIN quota ON input.username = quota.username
    WHERE quota.remaining > 0;
  UPDATE quota SET remaining = remaining - 1 WHERE username = input.username;
}
)";
}

std::string_view TelemetrySql() {
  return R"(
-- Per-method request counters, scraped by the controller.
ELEMENT Telemetry ON REQUEST {
  INPUT (payload BYTES);
  UPDATE telemetry SET count = count + 1 WHERE method = method();
}
)";
}

std::string_view RateLimitFilterSql() {
  return "FILTER Limiter ON REQUEST USING rate_limit(rps => 50000, "
         "burst => 128);\n";
}

std::string_view DedupFilterSql() {
  return "FILTER Dedup ON REQUEST USING dedup(window => 4096);\n";
}

std::string_view AggTopkFilterSql() {
  return "FILTER HotKeys ON REQUEST USING agg_topk(key => username, "
         "k => 4);\n";
}

std::string_view ResponseCacheSql() {
  return "CACHE RespCache (capacity => 1024, ttl_ms => 5000) "
         "KEY (object_id);\n";
}

std::string Fig5ProgramSource() {
  std::string out;
  out += AclTableSql();
  out += LogTableSql();
  out += LoggingSql();
  out += AclSql();
  out += FaultSql();
  out += R"(
CHAIN fig5 FOR CALLS client -> server {
  Logging,
  Acl AT TRUSTED,
  Fault
}
)";
  return out;
}

std::string Fig2ProgramSource() {
  std::string out;
  out += AclTableSql();
  out += EndpointsTableSql();
  out += HashLbSql();
  out += CompressSql();
  out += DecompressSql();
  out += AclSql();
  out += R"(
CHAIN fig2 FOR CALLS service_a -> service_b {
  HashLb,
  Compress AT SENDER,
  Decompress AT RECEIVER,
  Acl AT TRUSTED
}
)";
  return out;
}

std::string CacheChainSource() {
  std::string out;
  out += AclTableSql();
  out += LogTableSql();
  out += EndpointsTableSql();
  out += ResponseCacheSql();
  out += LoggingSql();
  out += AclSql();
  out += HashLbSql();
  out += CompressSql();
  // HashLb's INPUT declares object_id, which is also the cache key — the
  // schema-evolution check requires some element to put the key field on
  // the wire (the deploy-time "app emits what the chain needs" contract).
  out += R"(
CHAIN cached FOR CALLS client -> server {
  RespCache,
  Logging,
  Acl AT TRUSTED,
  HashLb,
  Compress
}
)";
  return out;
}

std::string FullLibrarySource() {
  std::string out;
  out += AclTableSql();
  out += LogTableSql();
  out += EndpointsTableSql();
  out += QuotaTableSql();
  out += TelemetryTableSql();
  out += LoggingSql();
  out += AclSql();
  out += FaultSql();
  out += HashLbSql();
  out += CompressSql();
  out += DecompressSql();
  out += EncryptSql();
  out += DecryptSql();
  out += QuotaSql();
  out += TelemetrySql();
  out += RateLimitFilterSql();
  out += DedupFilterSql();
  out += R"(
CHAIN everything FOR CALLS frontend -> backend {
  Dedup,
  Limiter,
  Quota,
  Telemetry,
  Logging,
  HashLb,
  Compress AT SENDER,
  Encrypt AT SENDER,
  Decrypt AT RECEIVER,
  Decompress AT RECEIVER,
  Acl AT TRUSTED,
  Fault
}
)";
  return out;
}

}  // namespace adn::elements
