#include "elements/handcoded.h"

#include "common/codec.h"
#include "common/strings.h"
#include "ir/element_ir.h"

namespace adn::elements {

using ir::ProcessOutcome;
using ir::ProcessResult;
using rpc::Message;
using rpc::Value;
using rpc::ValueType;

namespace {

ProcessResult Abort(std::string message) {
  ProcessResult r;
  r.outcome = ProcessOutcome::kDropAbort;
  r.abort_message = std::move(message);
  return r;
}

// The hand-coded twins model their simulated cost as the generated cost
// scaled by the hand-coding discount (paper §6 measures 3-12%); the *real*
// CPU difference is measured by bench_codegen_overhead on wall clock.
double Discounted(double generated_ns, const sim::CostModel& model) {
  return generated_ns * static_cast<double>(model.adn_handcoded_discount_num) /
         100.0;
}

}  // namespace

ProcessResult HandLogging::Process(Message& m, int64_t) {
  const Value& user = m.GetFieldOrNull("username");
  const Value& payload = m.GetFieldOrNull("payload");
  records_.push_back(LogRecord{
      static_cast<int64_t>(m.id()),
      user.type() == ValueType::kText ? std::string(user.AsText())
                                      : std::string(),
      payload.type() == ValueType::kBytes
          ? static_cast<int64_t>(payload.AsBytes().size())
          : 0,
  });
  return ProcessResult::Pass();
}

double HandLogging::CostNs(const sim::CostModel& model, size_t) const {
  // Twin of Logging (INSERT of 3 exprs): 6 compiled instructions generated.
  return Discounted(6.0 * model.adn_compiled_instr_ns, model);
}

ProcessResult HandAcl::Process(Message& m, int64_t) {
  const Value& user = m.GetFieldOrNull("username");
  if (user.type() != ValueType::kText) {
    return Abort("permission denied");
  }
  auto it = rules_.find(std::string(user.AsText()));
  if (it == rules_.end() || it->second != 'W') {
    return Abort("permission denied");
  }
  return ProcessResult::Pass();
}

double HandAcl::CostNs(const sim::CostModel& model, size_t) const {
  // Twin of Acl (join + where): 11 compiled instructions generated.
  return Discounted(11.0 * model.adn_compiled_instr_ns, model);
}

ProcessResult HandFault::Process(Message&, int64_t) {
  if (rng_.NextDouble() < probability_) {
    return Abort("fault injected");
  }
  return ProcessResult::Pass();
}

double HandFault::CostNs(const sim::CostModel& model, size_t) const {
  // Twin of Fault (where random() >= p): 9 compiled instructions generated.
  return Discounted(9.0 * model.adn_compiled_instr_ns, model);
}

ProcessResult HandHashLb::Process(Message& m, int64_t) {
  const Value& oid = m.GetFieldOrNull("object_id");
  if (oid.type() != ValueType::kInt || shard_to_endpoint_.empty()) {
    return Abort("no backend for shard");
  }
  // Same canonical hash the DSL hash() builtin uses.
  int64_t raw = oid.AsInt();
  uint64_t h = Fnv1a64(&raw, sizeof(raw)) >> 1;
  size_t shard = h % shard_to_endpoint_.size();
  rpc::EndpointId endpoint = shard_to_endpoint_[shard];
  m.SetField(std::string(ir::kDestinationField),
             Value(static_cast<int64_t>(endpoint)));
  m.set_destination(endpoint);
  return ProcessResult::Pass();
}

double HandHashLb::CostNs(const sim::CostModel& model, size_t) const {
  // Twin of HashLb (join on hash-derived shard + route): 12 instructions.
  return Discounted(12.0 * model.adn_compiled_instr_ns, model);
}

ProcessResult HandCompress::Process(Message& m, int64_t) {
  const Value* payload = m.FindField("payload");
  if (payload == nullptr || payload->type() != ValueType::kBytes) {
    return ProcessResult::Pass();
  }
  if (compress_) {
    m.SetField("payload", Value(CompressBytes(payload->AsBytes())));
    return ProcessResult::Pass();
  }
  auto plain = DecompressBytes(payload->AsBytes());
  if (!plain.ok()) return Abort("decompression failed");
  m.SetField("payload", Value(std::move(plain).value()));
  return ProcessResult::Pass();
}

double HandCompress::CostNs(const sim::CostModel& model,
                            size_t payload_bytes) const {
  // Twin of Compress/Decompress: 6 instructions + the codec's per-byte work.
  double per_byte = compress_ ? model.udf_compress_per_byte_ns
                              : model.udf_decompress_per_byte_ns;
  return Discounted(6.0 * model.adn_compiled_instr_ns +
                        per_byte * static_cast<double>(payload_bytes),
                    model);
}

}  // namespace adn::elements
