// Stream-shaping filter operators (paper §5.1: "'shaping' the RPC stream via
// mechanisms such as timeouts, retries, and congestion control ... complex
// ones will use operators with platform-specific implementations").
//
// These are the host implementations the data plane binds when a chain
// references a FILTER element. Each consults only message metadata and its
// own state — never RPC fields — matching the effect summary the compiler
// assigns to filters.
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "ir/element_ir.h"
#include "mrpc/engine.h"

namespace adn::elements {

// Token-bucket rate limiter: `rps` sustained, `burst` bucket depth.
class RateLimitOp : public mrpc::EngineStage {
 public:
  RateLimitOp(int64_t rps, int64_t burst);

  std::string_view name() const override { return "filter.rate_limit"; }
  bool AppliesTo(rpc::MessageKind kind) const override {
    return kind == rpc::MessageKind::kRequest;
  }
  ir::ProcessResult Process(rpc::Message& m, int64_t now_ns) override;
  double CostNs(const sim::CostModel& model, size_t) const override {
    return 5.0 * model.adn_op_ns;
  }

  double tokens() const { return tokens_; }

 private:
  double rps_;
  double burst_;
  double tokens_;
  int64_t last_refill_ns_ = 0;
  bool started_ = false;
};

// Sliding-window duplicate suppression keyed on RPC id.
class DedupOp : public mrpc::EngineStage {
 public:
  explicit DedupOp(size_t window);

  std::string_view name() const override { return "filter.dedup"; }
  bool AppliesTo(rpc::MessageKind kind) const override {
    return kind == rpc::MessageKind::kRequest;
  }
  ir::ProcessResult Process(rpc::Message& m, int64_t now_ns) override;
  double CostNs(const sim::CostModel& model, size_t) const override {
    return 4.0 * model.adn_op_ns;
  }

 private:
  size_t window_;
  std::unordered_set<uint64_t> seen_;
  std::deque<uint64_t> order_;
};

// Error-rate circuit breaker: opens when the error fraction over the last
// `window` outcomes exceeds `threshold`; closes after `cooldown_ns`.
class CircuitBreakerOp : public mrpc::EngineStage {
 public:
  CircuitBreakerOp(double error_threshold, size_t window,
                   int64_t cooldown_ns);

  std::string_view name() const override { return "filter.circuit_breaker"; }
  bool AppliesTo(rpc::MessageKind kind) const override {
    return kind != rpc::MessageKind::kError;  // observes responses too
  }
  ir::ProcessResult Process(rpc::Message& m, int64_t now_ns) override;
  double CostNs(const sim::CostModel& model, size_t) const override {
    return 6.0 * model.adn_op_ns;
  }

  bool open() const { return open_; }
  // Outcome feedback (the engine reports response status here).
  void RecordOutcome(bool error, int64_t now_ns);

 private:
  double threshold_;
  size_t window_;
  int64_t cooldown_ns_;
  std::deque<bool> outcomes_;  // true = error
  size_t errors_ = 0;
  bool open_ = false;
  int64_t open_until_ns_ = 0;
};

// --- Aggregation observers ---------------------------------------------------
// agg_count / agg_sum / agg_topk: pass-through telemetry primitives cheap
// enough for constrained processors — bounded state, no drops, no field
// writes, and a key/field set small enough for the backend's parse-depth
// window. Unlike the shaping filters above they DO read RPC fields; their
// effect summaries say so, which is what lets the compiler prioritize those
// fields into the front of the wire header for in-network placement.

// agg_count(key => field?): request counter, optionally grouped by a field.
// Groups are keyed by the field value's hash so per-message work is
// allocation-free; the group map is bounded and spill beyond it is counted.
class AggCountOp : public mrpc::EngineStage {
 public:
  AggCountOp(std::optional<rpc::FieldId> key, size_t max_groups);

  std::string_view name() const override { return "filter.agg_count"; }
  bool AppliesTo(rpc::MessageKind kind) const override {
    return kind == rpc::MessageKind::kRequest;
  }
  ir::ProcessResult Process(rpc::Message& m, int64_t now_ns) override;
  double CostNs(const sim::CostModel& model, size_t) const override {
    return 2.0 * model.adn_op_ns;
  }

  uint64_t total() const { return total_; }
  uint64_t CountFor(const rpc::Value& key) const;
  uint64_t overflow() const { return overflow_; }

 private:
  std::optional<rpc::FieldId> key_;
  size_t max_groups_;
  uint64_t total_ = 0;
  uint64_t overflow_ = 0;  // arrivals whose new group missed the bounded map
  std::unordered_map<uint64_t, uint64_t> groups_;  // HashValue(key) -> count
};

// agg_sum(field => f, key => g?): running sum of a numeric field, optionally
// grouped. Messages without the field (or with a non-numeric value) are
// passed through uncounted.
class AggSumOp : public mrpc::EngineStage {
 public:
  AggSumOp(rpc::FieldId field, std::optional<rpc::FieldId> key,
           size_t max_groups);

  std::string_view name() const override { return "filter.agg_sum"; }
  bool AppliesTo(rpc::MessageKind kind) const override {
    return kind == rpc::MessageKind::kRequest;
  }
  ir::ProcessResult Process(rpc::Message& m, int64_t now_ns) override;
  double CostNs(const sim::CostModel& model, size_t) const override {
    return 3.0 * model.adn_op_ns;
  }

  double total() const { return total_; }
  uint64_t samples() const { return samples_; }
  double SumFor(const rpc::Value& key) const;

 private:
  rpc::FieldId field_;
  std::optional<rpc::FieldId> key_;
  size_t max_groups_;
  double total_ = 0;
  uint64_t samples_ = 0;
  uint64_t overflow_ = 0;
  std::unordered_map<uint64_t, double> groups_;
};

// agg_topk(key => f, k => N?): space-saving heavy hitters over a field's
// values. At most k tracked entries; a new value evicts the current minimum
// and inherits its count as overestimation error (the classic bound:
// reported count - err <= true count <= reported count).
class AggTopkOp : public mrpc::EngineStage {
 public:
  AggTopkOp(rpc::FieldId key, size_t k);

  std::string_view name() const override { return "filter.agg_topk"; }
  bool AppliesTo(rpc::MessageKind kind) const override {
    return kind == rpc::MessageKind::kRequest;
  }
  ir::ProcessResult Process(rpc::Message& m, int64_t now_ns) override;
  double CostNs(const sim::CostModel& model, size_t) const override {
    return static_cast<double>(4 + k_) * model.adn_op_ns;
  }

  struct Hitter {
    std::string key;
    uint64_t count = 0;
    uint64_t err = 0;  // max overcount inherited from evicted entries
  };
  // Tracked entries, highest count first.
  std::vector<Hitter> TopK() const;

 private:
  rpc::FieldId key_;
  size_t k_;
  std::unordered_map<std::string, std::pair<uint64_t, uint64_t>>
      counts_;  // key -> (count, err)
};

// Bind a FilterIr (from the compiler) to its host implementation.
Result<std::unique_ptr<mrpc::EngineStage>> MakeFilterStage(
    const ir::FilterIr& filter);

}  // namespace adn::elements
