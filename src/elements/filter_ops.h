// Stream-shaping filter operators (paper §5.1: "'shaping' the RPC stream via
// mechanisms such as timeouts, retries, and congestion control ... complex
// ones will use operators with platform-specific implementations").
//
// These are the host implementations the data plane binds when a chain
// references a FILTER element. Each consults only message metadata and its
// own state — never RPC fields — matching the effect summary the compiler
// assigns to filters.
#pragma once

#include <deque>
#include <memory>
#include <unordered_set>

#include "ir/element_ir.h"
#include "mrpc/engine.h"

namespace adn::elements {

// Token-bucket rate limiter: `rps` sustained, `burst` bucket depth.
class RateLimitOp : public mrpc::EngineStage {
 public:
  RateLimitOp(int64_t rps, int64_t burst);

  std::string_view name() const override { return "filter.rate_limit"; }
  bool AppliesTo(rpc::MessageKind kind) const override {
    return kind == rpc::MessageKind::kRequest;
  }
  ir::ProcessResult Process(rpc::Message& m, int64_t now_ns) override;
  double CostNs(const sim::CostModel& model, size_t) const override {
    return 5.0 * model.adn_op_ns;
  }

  double tokens() const { return tokens_; }

 private:
  double rps_;
  double burst_;
  double tokens_;
  int64_t last_refill_ns_ = 0;
  bool started_ = false;
};

// Sliding-window duplicate suppression keyed on RPC id.
class DedupOp : public mrpc::EngineStage {
 public:
  explicit DedupOp(size_t window);

  std::string_view name() const override { return "filter.dedup"; }
  bool AppliesTo(rpc::MessageKind kind) const override {
    return kind == rpc::MessageKind::kRequest;
  }
  ir::ProcessResult Process(rpc::Message& m, int64_t now_ns) override;
  double CostNs(const sim::CostModel& model, size_t) const override {
    return 4.0 * model.adn_op_ns;
  }

 private:
  size_t window_;
  std::unordered_set<uint64_t> seen_;
  std::deque<uint64_t> order_;
};

// Error-rate circuit breaker: opens when the error fraction over the last
// `window` outcomes exceeds `threshold`; closes after `cooldown_ns`.
class CircuitBreakerOp : public mrpc::EngineStage {
 public:
  CircuitBreakerOp(double error_threshold, size_t window,
                   int64_t cooldown_ns);

  std::string_view name() const override { return "filter.circuit_breaker"; }
  bool AppliesTo(rpc::MessageKind kind) const override {
    return kind != rpc::MessageKind::kError;  // observes responses too
  }
  ir::ProcessResult Process(rpc::Message& m, int64_t now_ns) override;
  double CostNs(const sim::CostModel& model, size_t) const override {
    return 6.0 * model.adn_op_ns;
  }

  bool open() const { return open_; }
  // Outcome feedback (the engine reports response status here).
  void RecordOutcome(bool error, int64_t now_ns);

 private:
  double threshold_;
  size_t window_;
  int64_t cooldown_ns_;
  std::deque<bool> outcomes_;  // true = error
  size_t errors_ = 0;
  bool open_ = false;
  int64_t open_until_ns_ = 0;
};

// Bind a FilterIr (from the compiler) to its host implementation.
Result<std::unique_ptr<mrpc::EngineStage>> MakeFilterStage(
    const ir::FilterIr& filter);

}  // namespace adn::elements
