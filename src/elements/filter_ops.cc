#include "elements/filter_ops.h"

#include <algorithm>

namespace adn::elements {

using ir::ProcessOutcome;
using ir::ProcessResult;

namespace {

ProcessResult Abort(std::string message) {
  ProcessResult r;
  r.outcome = ProcessOutcome::kDropAbort;
  r.abort_message = std::move(message);
  return r;
}

const rpc::Value* FindArg(const ir::FilterIr& filter, std::string_view name) {
  for (const auto& [k, v] : filter.args) {
    if (k == name) return &v;
  }
  return nullptr;
}

int64_t IntArg(const ir::FilterIr& filter, std::string_view name,
               int64_t fallback) {
  const rpc::Value* v = FindArg(filter, name);
  return v != nullptr && v->type() == rpc::ValueType::kInt ? v->AsInt()
                                                           : fallback;
}

}  // namespace

// --- RateLimitOp -------------------------------------------------------------

RateLimitOp::RateLimitOp(int64_t rps, int64_t burst)
    : rps_(static_cast<double>(rps)),
      burst_(static_cast<double>(std::max<int64_t>(burst, 1))),
      tokens_(burst_) {}

ProcessResult RateLimitOp::Process(rpc::Message&, int64_t now_ns) {
  if (!started_) {
    started_ = true;
    last_refill_ns_ = now_ns;
  }
  double elapsed_s =
      static_cast<double>(now_ns - last_refill_ns_) / 1e9;
  if (elapsed_s > 0) {
    tokens_ = std::min(burst_, tokens_ + elapsed_s * rps_);
    last_refill_ns_ = now_ns;
  }
  if (tokens_ < 1.0) {
    return Abort("rate limit exceeded");
  }
  tokens_ -= 1.0;
  return ProcessResult::Pass();
}

// --- DedupOp -------------------------------------------------------------------

DedupOp::DedupOp(size_t window) : window_(std::max<size_t>(window, 1)) {}

ProcessResult DedupOp::Process(rpc::Message& m, int64_t) {
  if (seen_.count(m.id()) != 0) {
    ProcessResult r;
    r.outcome = ProcessOutcome::kDropSilent;
    return r;
  }
  seen_.insert(m.id());
  order_.push_back(m.id());
  if (order_.size() > window_) {
    seen_.erase(order_.front());
    order_.pop_front();
  }
  return ProcessResult::Pass();
}

// --- CircuitBreakerOp ------------------------------------------------------------

CircuitBreakerOp::CircuitBreakerOp(double error_threshold, size_t window,
                                   int64_t cooldown_ns)
    : threshold_(error_threshold),
      window_(std::max<size_t>(window, 1)),
      cooldown_ns_(cooldown_ns) {}

void CircuitBreakerOp::RecordOutcome(bool error, int64_t now_ns) {
  outcomes_.push_back(error);
  if (error) ++errors_;
  if (outcomes_.size() > window_) {
    if (outcomes_.front()) --errors_;
    outcomes_.pop_front();
  }
  if (outcomes_.size() == window_ &&
      static_cast<double>(errors_) / static_cast<double>(window_) >
          threshold_) {
    open_ = true;
    open_until_ns_ = now_ns + cooldown_ns_;
    outcomes_.clear();
    errors_ = 0;
  }
}

ProcessResult CircuitBreakerOp::Process(rpc::Message& m, int64_t now_ns) {
  if (m.kind() == rpc::MessageKind::kResponse) {
    RecordOutcome(/*error=*/false, now_ns);
    return ProcessResult::Pass();
  }
  if (open_) {
    if (now_ns < open_until_ns_) {
      return Abort("circuit open");
    }
    open_ = false;  // half-open: let traffic probe again
  }
  return ProcessResult::Pass();
}

// --- AggCountOp --------------------------------------------------------------

AggCountOp::AggCountOp(std::optional<rpc::FieldId> key, size_t max_groups)
    : key_(key), max_groups_(std::max<size_t>(max_groups, 1)) {}

ProcessResult AggCountOp::Process(rpc::Message& m, int64_t) {
  ++total_;
  if (key_.has_value()) {
    uint64_t group = rpc::HashValue(m.GetFieldOrNull(*key_));
    auto it = groups_.find(group);
    if (it != groups_.end()) {
      ++it->second;
    } else if (groups_.size() < max_groups_) {
      groups_.emplace(group, 1);
    } else {
      ++overflow_;
    }
  }
  return ProcessResult::Pass();
}

uint64_t AggCountOp::CountFor(const rpc::Value& key) const {
  auto it = groups_.find(rpc::HashValue(key));
  return it != groups_.end() ? it->second : 0;
}

// --- AggSumOp ----------------------------------------------------------------

AggSumOp::AggSumOp(rpc::FieldId field, std::optional<rpc::FieldId> key,
                   size_t max_groups)
    : field_(field), key_(key), max_groups_(std::max<size_t>(max_groups, 1)) {}

ProcessResult AggSumOp::Process(rpc::Message& m, int64_t) {
  const rpc::Value* v = m.FindField(field_);
  if (v == nullptr || !v->IsNumeric()) return ProcessResult::Pass();
  double x = v->NumericAsDouble();
  total_ += x;
  ++samples_;
  if (key_.has_value()) {
    uint64_t group = rpc::HashValue(m.GetFieldOrNull(*key_));
    auto it = groups_.find(group);
    if (it != groups_.end()) {
      it->second += x;
    } else if (groups_.size() < max_groups_) {
      groups_.emplace(group, x);
    } else {
      ++overflow_;
    }
  }
  return ProcessResult::Pass();
}

double AggSumOp::SumFor(const rpc::Value& key) const {
  auto it = groups_.find(rpc::HashValue(key));
  return it != groups_.end() ? it->second : 0;
}

// --- AggTopkOp ---------------------------------------------------------------

AggTopkOp::AggTopkOp(rpc::FieldId key, size_t k)
    : key_(key), k_(std::max<size_t>(k, 1)) {}

ProcessResult AggTopkOp::Process(rpc::Message& m, int64_t) {
  const rpc::Value* v = m.FindField(key_);
  if (v == nullptr) return ProcessResult::Pass();
  std::string key = v->type() == rpc::ValueType::kText
                        ? std::string(v->AsText())
                        : v->ToDisplayString();
  auto it = counts_.find(key);
  if (it != counts_.end()) {
    ++it->second.first;
    return ProcessResult::Pass();
  }
  if (counts_.size() < k_) {
    counts_.emplace(std::move(key), std::make_pair(uint64_t{1}, uint64_t{0}));
    return ProcessResult::Pass();
  }
  // Space-saving eviction: the minimum-count entry yields its slot, and the
  // newcomer inherits min as both base count and error bound.
  auto min_it = counts_.begin();
  for (auto cur = counts_.begin(); cur != counts_.end(); ++cur) {
    if (cur->second.first < min_it->second.first) min_it = cur;
  }
  uint64_t floor = min_it->second.first;
  counts_.erase(min_it);
  counts_.emplace(std::move(key), std::make_pair(floor + 1, floor));
  return ProcessResult::Pass();
}

std::vector<AggTopkOp::Hitter> AggTopkOp::TopK() const {
  std::vector<Hitter> out;
  out.reserve(counts_.size());
  for (const auto& [key, ce] : counts_) {
    out.push_back({key, ce.first, ce.second});
  }
  std::sort(out.begin(), out.end(), [](const Hitter& a, const Hitter& b) {
    return a.count != b.count ? a.count > b.count : a.key < b.key;
  });
  return out;
}

// --- Factory ----------------------------------------------------------------------

Result<std::unique_ptr<mrpc::EngineStage>> MakeFilterStage(
    const ir::FilterIr& filter) {
  if (filter.op == "rate_limit") {
    return std::unique_ptr<mrpc::EngineStage>(std::make_unique<RateLimitOp>(
        IntArg(filter, "rps", 1000), IntArg(filter, "burst", 16)));
  }
  if (filter.op == "dedup") {
    return std::unique_ptr<mrpc::EngineStage>(std::make_unique<DedupOp>(
        static_cast<size_t>(IntArg(filter, "window", 1024))));
  }
  if (filter.op == "circuit_breaker") {
    const rpc::Value* t = FindArg(filter, "error_threshold");
    double threshold =
        t != nullptr && t->IsNumeric() ? t->NumericAsDouble() : 0.5;
    return std::unique_ptr<mrpc::EngineStage>(
        std::make_unique<CircuitBreakerOp>(
            threshold, static_cast<size_t>(IntArg(filter, "window", 64)),
            IntArg(filter, "cooldown_ms", 100) * 1'000'000));
  }
  // Aggregation args name RPC fields as TEXT values; intern at bind time so
  // the hot path touches only FieldIds.
  auto field_arg =
      [&filter](std::string_view name) -> std::optional<rpc::FieldId> {
    const rpc::Value* v = FindArg(filter, name);
    if (v == nullptr || v->type() != rpc::ValueType::kText) return std::nullopt;
    return rpc::InternFieldName(v->AsText());
  };
  if (filter.op == "agg_count") {
    return std::unique_ptr<mrpc::EngineStage>(std::make_unique<AggCountOp>(
        field_arg("key"), static_cast<size_t>(IntArg(filter, "groups", 1024))));
  }
  if (filter.op == "agg_sum") {
    std::optional<rpc::FieldId> field = field_arg("field");
    if (!field.has_value()) {
      return Error(ErrorCode::kInvalidArgument,
                   "agg_sum requires field => <rpc field name>");
    }
    return std::unique_ptr<mrpc::EngineStage>(std::make_unique<AggSumOp>(
        *field, field_arg("key"),
        static_cast<size_t>(IntArg(filter, "groups", 1024))));
  }
  if (filter.op == "agg_topk") {
    std::optional<rpc::FieldId> key = field_arg("key");
    if (!key.has_value()) {
      return Error(ErrorCode::kInvalidArgument,
                   "agg_topk requires key => <rpc field name>");
    }
    return std::unique_ptr<mrpc::EngineStage>(std::make_unique<AggTopkOp>(
        *key, static_cast<size_t>(IntArg(filter, "k", 8))));
  }
  if (filter.op == "retry" || filter.op == "timeout") {
    return Error(ErrorCode::kUnsupported,
                 "filter operator '" + filter.op +
                     "' runs in the client library (see RetryPolicy in "
                     "core/client_policy.h), not as an engine stage");
  }
  return Error(ErrorCode::kNotFound,
               "no host implementation for filter operator '" + filter.op +
                   "'");
}

}  // namespace adn::elements
