#include "compiler/compiler.h"

#include "dsl/parser.h"

namespace adn::compiler {

const CompiledChain* CompiledProgram::FindChain(std::string_view name) const {
  for (const auto& c : chains) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

rpc::Schema DeriveRequestSchema(const ChainIr& chain) {
  rpc::Schema schema;
  for (const auto& element : chain.elements) {
    for (const rpc::Column& c : element->input.columns()) {
      if (schema.FindColumn(c.name) == nullptr) {
        (void)schema.AddColumn({c.name, c.type, false});
      }
    }
  }
  return schema;
}

Result<CompiledProgram> Compiler::CompileSource(
    std::string_view source, const CompileOptions& options) const {
  ADN_ASSIGN_OR_RETURN(dsl::Program program, dsl::ParseProgram(source));
  return CompileProgram(program, options);
}

Result<CompiledProgram> Compiler::CompileProgram(
    const dsl::Program& program, const CompileOptions& options) const {
  ADN_ASSIGN_OR_RETURN(ProgramIr ir, LowerProgram(program, functions_));
  CompiledProgram out;
  out.functions = functions_;
  for (const ChainIr& chain : ir.chains) {
    ADN_ASSIGN_OR_RETURN(CompiledChain compiled,
                         CompileChain(chain, options));
    out.chains.push_back(std::move(compiled));
  }
  return out;
}

Result<CompiledChain> Compiler::CompileChain(
    const ChainIr& chain, const CompileOptions& options) const {
  ADN_ASSIGN_OR_RETURN(OptimizedChain optimized,
                       RunPasses(chain, options.passes));

  CompiledChain out;
  out.name = chain.name;
  out.caller_service = chain.caller_service;
  out.callee_service = chain.callee_service;
  out.constraints = optimized.chain.constraints;
  out.parallel_groups = optimized.parallel_groups;
  out.pass_reports = std::move(optimized.reports);

  out.request_schema = options.request_schema.empty()
                           ? DeriveRequestSchema(optimized.chain)
                           : options.request_schema;

  // Front-load hardware-offloadable elements' read sets in header layouts so
  // switch/NIC parse windows can reach them.
  std::vector<std::string> priority_fields;
  for (const auto& element : optimized.chain.elements) {
    if (CheckFeasible(*element, TargetPlatform::kP4Switch).feasible) {
      for (const std::string& f : element->effects.fields_read) {
        priority_fields.push_back(f);
      }
    }
  }

  ADN_ASSIGN_OR_RETURN(
      out.headers,
      ComputeChainHeaders(optimized.chain, out.request_schema,
                          options.app_reads, priority_fields));

  // Lower the whole optimized chain to one flat ChainProgram, with field IDs
  // following the wire-header field order just synthesized. Chains with
  // filter elements keep per-stage execution (program stays null).
  bool all_sql = !optimized.chain.elements.empty();
  for (const auto& element : optimized.chain.elements) {
    if (element->IsFilter() || element->IsCache()) all_sql = false;
  }
  if (all_sql) {
    ChainCompileOptions cc_options;
    if (!out.headers.schemas.empty()) {
      for (const rpc::Column& c : out.headers.schemas[0].columns()) {
        cc_options.field_order_hint.push_back(c.name);
      }
    }
    ADN_ASSIGN_OR_RETURN(
        out.program,
        CompileChainProgram(optimized.chain.elements, cc_options));
  }

  for (size_t i = 0; i < optimized.chain.elements.size(); ++i) {
    const auto& element = optimized.chain.elements[i];
    CompiledElement ce;
    ce.ir = element;
    ce.ebpf = CheckFeasible(*element, TargetPlatform::kEbpf);
    ce.p4 = CheckFeasible(*element, TargetPlatform::kP4Switch);
    if (ce.p4.feasible) {
      // Parse-depth check against the element's inbound link header.
      FeasibilityReport depth = CheckP4ParseDepth(
          *element, out.headers.link_specs[i],
          sim::CostModel::Default().p4_parse_depth_bytes);
      if (!depth.feasible) ce.p4 = depth;
    }
    if (ce.ebpf.feasible) ce.ebpf_code = EmitEbpfC(*element);
    if (ce.p4.feasible) {
      ce.p4_code = EmitP4(*element, out.headers.link_specs[i]);
    }
    out.elements.push_back(std::move(ce));
  }
  return out;
}

}  // namespace adn::compiler
