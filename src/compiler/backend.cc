#include "compiler/backend.h"

#include <cmath>

namespace adn::compiler {

using ir::ElementIr;
using ir::ExprNode;
using ir::StmtIr;
using rpc::ValueType;

std::string_view TargetPlatformName(TargetPlatform target) {
  switch (target) {
    case TargetPlatform::kNative: return "native";
    case TargetPlatform::kEbpf: return "ebpf";
    case TargetPlatform::kSmartNic: return "smartnic";
    case TargetPlatform::kP4Switch: return "p4";
  }
  return "?";
}

namespace {

// Does the expression keep floats confined to compare-against-literal form?
// (The eBPF lowering turns `random() < 0.05` into an integer threshold test;
// any other float use would need FPU, which BPF lacks.)
bool FloatsAreCompareOnly(const ExprNode& e) {
  if (e.kind == ExprNode::Kind::kBinary) {
    switch (e.binary_op) {
      case dsl::BinaryOp::kEq:
      case dsl::BinaryOp::kNe:
      case dsl::BinaryOp::kLt:
      case dsl::BinaryOp::kLe:
      case dsl::BinaryOp::kGt:
      case dsl::BinaryOp::kGe: {
        const ExprNode& l = e.children[0];
        const ExprNode& r = e.children[1];
        bool l_float = l.type == ValueType::kFloat;
        bool r_float = r.type == ValueType::kFloat;
        if (l_float || r_float) {
          // One side must be a literal; both subtrees must be shallow-clean.
          bool ok = (l.kind == ExprNode::Kind::kLiteral ||
                     r.kind == ExprNode::Kind::kLiteral);
          if (!ok) return false;
        }
        return FloatsAreCompareOnly(l) && FloatsAreCompareOnly(r);
      }
      default:
        if (e.type == ValueType::kFloat) return false;
        break;
    }
  } else if (e.kind != ExprNode::Kind::kLiteral &&
             e.kind != ExprNode::Kind::kCall &&
             e.type == ValueType::kFloat) {
    return false;
  }
  for (const ExprNode& c : e.children) {
    if (!FloatsAreCompareOnly(c)) return false;
  }
  return true;
}

template <typename Fn>
bool ForEachExpr(const ElementIr& element, Fn&& fn) {
  for (const StmtIr& stmt : element.statements) {
    switch (stmt.kind) {
      case StmtIr::Kind::kSelect: {
        const ir::SelectIr& s = *stmt.select;
        if (s.join.has_value() && !fn(s.join->probe)) return false;
        if (s.where.has_value() && !fn(*s.where)) return false;
        for (const auto& o : s.outputs) {
          if (!fn(o.expr)) return false;
        }
        break;
      }
      case StmtIr::Kind::kInsert:
        for (const auto& v : stmt.insert->values) {
          if (!fn(v)) return false;
        }
        break;
      case StmtIr::Kind::kUpdate:
        for (const auto& [idx, e] : stmt.update->assignments) {
          (void)idx;
          if (!fn(e)) return false;
        }
        if (stmt.update->where.has_value() && !fn(*stmt.update->where)) {
          return false;
        }
        break;
      case StmtIr::Kind::kDelete:
        if (stmt.del->where.has_value() && !fn(*stmt.del->where)) {
          return false;
        }
        break;
    }
  }
  return true;
}

// Aggregation observers (agg_count / agg_sum / agg_topk) are the filter ops
// constrained processors CAN host: bounded map/register state, no drops.
bool IsAggFilterOp(std::string_view op) { return op.substr(0, 4) == "agg_"; }

FeasibilityReport CheckEbpf(const ElementIr& element) {
  if (element.IsCache()) {
    return FeasibilityReport::No(
        "cache element stores variable-size response blobs; BPF map values "
        "are fixed-size, so the cache runs on general cores");
  }
  if (element.IsFilter()) {
    // Timer-based stream shaping needs user-space cooperation; only the
    // stateless-ish ones run in kernel. Aggregations are bounded per-CPU
    // map updates — exactly the workload BPF maps exist for.
    if (element.filter_op->op == "rate_limit" ||
        element.filter_op->op == "dedup" ||
        IsAggFilterOp(element.filter_op->op)) {
      return FeasibilityReport::Yes();
    }
    return FeasibilityReport::No(
        "filter operator '" + element.filter_op->op +
        "' needs timers/retransmit buffers not available in-kernel");
  }
  // Every function must have an eBPF helper equivalent.
  std::string bad_fn;
  ForEachExpr(element, [&](const ExprNode& e) {
    bool ok = e.AllFunctions([&](const ir::FunctionDef& f) {
      if (!f.ebpf_ok) bad_fn = f.name;
      return f.ebpf_ok;
    });
    return ok;
  });
  if (!bad_fn.empty()) {
    return FeasibilityReport::No("function '" + bad_fn +
                                 "()' has no eBPF helper equivalent");
  }
  // Floats only in compare-with-literal position (no FPU in BPF).
  bool floats_ok = ForEachExpr(
      element, [](const ExprNode& e) { return FloatsAreCompareOnly(e); });
  if (!floats_ok) {
    return FeasibilityReport::No(
        "floating-point computation beyond literal-threshold compares");
  }
  // Joins must be map lookups, not scans (verifier: bounded loops only).
  for (const StmtIr& stmt : element.statements) {
    if (stmt.kind == StmtIr::Kind::kSelect && stmt.select->join.has_value() &&
        !stmt.select->join->key_is_primary) {
      return FeasibilityReport::No(
          "join against table '" + stmt.select->join->table +
          "' is a scan (non-primary-key); BPF maps need key lookups");
    }
    if (stmt.kind == StmtIr::Kind::kUpdate ||
        stmt.kind == StmtIr::Kind::kDelete) {
      return FeasibilityReport::No(
          "table scans (UPDATE/DELETE) exceed verifier loop bounds");
    }
  }
  return FeasibilityReport::Yes();
}

FeasibilityReport CheckP4(const ElementIr& element) {
  if (element.IsCache()) {
    return FeasibilityReport::No(
        "cache fills happen on the data path; P4 tables are "
        "control-plane-written only");
  }
  if (element.IsFilter()) {
    if (IsAggFilterOp(element.filter_op->op)) {
      // Counters, register sums and HashPipe-style heavy hitters are native
      // match-action constructs. Whether a given placement works then hinges
      // on CheckP4ParseDepth over the fields the aggregation keys on.
      return FeasibilityReport::Yes();
    }
    return FeasibilityReport::No("stream-shaping filters do not map to "
                                 "match-action pipelines");
  }
  if (!element.effects.tables_written.empty()) {
    return FeasibilityReport::No(
        "element writes state table '" + element.effects.tables_written[0] +
        "'; P4 tables are control-plane-written only");
  }
  std::string bad_fn;
  ForEachExpr(element, [&](const ExprNode& e) {
    bool ok = e.AllFunctions([&](const ir::FunctionDef& f) {
      if (!f.p4_ok) bad_fn = f.name;
      return f.p4_ok;
    });
    return ok;
  });
  if (!bad_fn.empty()) {
    return FeasibilityReport::No("function '" + bad_fn +
                                 "()' is not realizable in match-action");
  }
  bool floats_ok = ForEachExpr(
      element, [](const ExprNode& e) { return FloatsAreCompareOnly(e); });
  if (!floats_ok) {
    return FeasibilityReport::No("floating-point computation");
  }
  // Payload-typed outputs (BYTES writes) can't happen on a switch.
  for (const StmtIr& stmt : element.statements) {
    if (stmt.kind != StmtIr::Kind::kSelect) continue;
    for (const auto& o : stmt.select->outputs) {
      if (!o.identity && o.type == ValueType::kBytes) {
        return FeasibilityReport::No("writes BYTES field '" + o.name +
                                     "' (payload transform)");
      }
    }
    if (stmt.select->join.has_value() &&
        !stmt.select->join->key_is_primary) {
      return FeasibilityReport::No("non-exact-match join against '" +
                                   stmt.select->join->table + "'");
    }
  }
  return FeasibilityReport::Yes();
}

}  // namespace

FeasibilityReport CheckFeasible(const ElementIr& element,
                                TargetPlatform target) {
  switch (target) {
    case TargetPlatform::kNative:
    case TargetPlatform::kSmartNic:
      return FeasibilityReport::Yes();
    case TargetPlatform::kEbpf:
      return CheckEbpf(element);
    case TargetPlatform::kP4Switch:
      return CheckP4(element);
  }
  return FeasibilityReport::No("unknown target");
}

FeasibilityReport CheckP4ParseDepth(const ElementIr& element,
                                    const rpc::HeaderSpec& link_header,
                                    size_t parse_depth_bytes) {
  // Walk the header layout; every field the element reads must END within
  // the parse window, and every field BEFORE it must be fixed-size (else its
  // offset is unknowable to the parser).
  size_t offset = rpc::HeaderSpec::kBaseHeaderBytes;
  for (const rpc::Column& c : link_header.fields) {
    size_t max_size;
    bool fixed;
    switch (c.type) {
      case ValueType::kBool: max_size = 2; fixed = true; break;
      case ValueType::kInt: max_size = 11; fixed = true; break;
      case ValueType::kFloat: max_size = 9; fixed = true; break;
      default: max_size = 0; fixed = false; break;
    }
    const bool read_here = element.effects.ReadsField(c.name);
    if (read_here) {
      if (!fixed) {
        return FeasibilityReport::No(
            "field '" + c.name + "' is variable-length; switch parsers need "
            "fixed offsets");
      }
      if (offset + max_size > parse_depth_bytes) {
        return FeasibilityReport::No(
            "field '" + c.name + "' ends at byte " +
            std::to_string(offset + max_size) + ", beyond the " +
            std::to_string(parse_depth_bytes) + "-byte parse window");
      }
    }
    if (!fixed) {
      // Everything after a variable-length field is unparseable on-switch.
      // If the element reads any later field, fail.
      bool later_reads = false;
      bool seen = false;
      for (const rpc::Column& c2 : link_header.fields) {
        if (seen && element.effects.ReadsField(c2.name)) later_reads = true;
        if (c2.name == c.name) seen = true;
      }
      if (later_reads) {
        return FeasibilityReport::No(
            "a field the element reads sits after variable-length field '" +
            c.name + "' (reorder headers to front-load switch fields)");
      }
      break;
    }
    offset += max_size;
  }
  return FeasibilityReport::Yes();
}

double EstimateCostNs(const ElementIr& element, TargetPlatform target,
                      const sim::CostModel& model, size_t payload_bytes) {
  // Base: interpreter ops.
  double ops_cost =
      static_cast<double>(element.OpCount()) * model.adn_op_ns;
  // Per-byte UDF costs.
  double byte_cost = 0.0;
  ForEachExpr(element, [&](const ExprNode& e) {
    // Walk for calls with per-byte cost.
    std::function<void(const ExprNode&)> walk = [&](const ExprNode& n) {
      if (n.kind == ExprNode::Kind::kCall && n.fn != nullptr) {
        byte_cost += n.fn->per_byte_cost_ns * static_cast<double>(payload_bytes);
      }
      for (const ExprNode& c : n.children) walk(c);
    };
    walk(e);
    return true;
  });
  double total = ops_cost + byte_cost;
  switch (target) {
    case TargetPlatform::kNative:
      return total;
    case TargetPlatform::kEbpf:
      return total * model.ebpf_op_scale;
    case TargetPlatform::kSmartNic:
      return total * model.smartnic_op_scale;
    case TargetPlatform::kP4Switch:
      // Pipeline: fixed latency regardless of op count.
      return static_cast<double>(model.p4_pipeline_ns);
  }
  return total;
}

// ---------------------------------------------------------------------------
// Code emission
// ---------------------------------------------------------------------------

namespace {

std::string CIdent(std::string s) {
  for (char& c : s) {
    if (!isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return s;
}

std::string EmitExprC(const ExprNode& e) {
  switch (e.kind) {
    case ExprNode::Kind::kLiteral:
      if (e.literal.type() == ValueType::kFloat) {
        // Lowered to a 32-bit fixed-point threshold at emission time.
        return std::to_string(static_cast<uint64_t>(
                   e.literal.AsFloat() * 4294967296.0)) +
               "u /* " + e.literal.ToDisplayString() + " * 2^32 */";
      }
      return e.literal.ToDisplayString();
    case ExprNode::Kind::kInputField:
      return "msg->" + CIdent(e.field);
    case ExprNode::Kind::kJoinField:
      return "entry->col" + std::to_string(e.join_col);
    case ExprNode::Kind::kCall: {
      std::string name = e.fn->name;
      if (name == "random") name = "bpf_get_prandom_u32";
      if (name == "now") name = "bpf_ktime_get_ns";
      if (name == "hash") name = "adn_fnv1a64";
      std::string out = name + "(";
      for (size_t i = 0; i < e.children.size(); ++i) {
        if (i > 0) out += ", ";
        out += EmitExprC(e.children[i]);
      }
      return out + ")";
    }
    case ExprNode::Kind::kUnary:
      return std::string(e.unary_op == dsl::UnaryOp::kNegate ? "-" : "!") +
             "(" + EmitExprC(e.children[0]) + ")";
    case ExprNode::Kind::kBinary: {
      std::string op(dsl::BinaryOpName(e.binary_op));
      if (op == "=") op = "==";
      if (op == "AND") op = "&&";
      if (op == "OR") op = "||";
      return "(" + EmitExprC(e.children[0]) + " " + op + " " +
             EmitExprC(e.children[1]) + ")";
    }
  }
  return "?";
}

}  // namespace

std::string EmitEbpfC(const ElementIr& element) {
  std::string out;
  out += "// Auto-generated by the ADN compiler — eBPF lowering of element '" +
         element.name + "'.\n";
  out += "// Attach point: tc egress (sender) / XDP (receiver).\n";
  out += "#include <linux/bpf.h>\n#include \"adn_bpf_helpers.h\"\n\n";

  // Map declarations for state tables.
  for (const auto& [name, schema] : element.state_tables) {
    out += "struct " + CIdent(name) + "_entry {";
    for (size_t i = 0; i < schema.columns().size(); ++i) {
      out += " u64 col" + std::to_string(i) + ";";
    }
    out += " };\n";
    out += "BPF_HASH_MAP(" + CIdent(name) + ", u64, struct " + CIdent(name) +
           "_entry, 65536);\n";
  }
  out += "\nSEC(\"adn/" + CIdent(element.name) + "\")\n";
  out += "int " + CIdent(element.name) +
         "_prog(struct adn_msg_ctx *ctx) {\n";
  out += "  struct adn_msg *msg = ctx->msg;\n";

  int stmt_idx = 0;
  for (const StmtIr& stmt : element.statements) {
    ++stmt_idx;
    switch (stmt.kind) {
      case StmtIr::Kind::kSelect: {
        const ir::SelectIr& s = *stmt.select;
        if (s.join.has_value()) {
          out += "  // stmt " + std::to_string(stmt_idx) + ": JOIN " +
                 s.join->table + "\n";
          out += "  u64 key" + std::to_string(stmt_idx) + " = " +
                 EmitExprC(s.join->probe) + ";\n";
          out += "  struct " + CIdent(s.join->table) + "_entry *entry = " +
                 "bpf_map_lookup_elem(&" + CIdent(s.join->table) + ", &key" +
                 std::to_string(stmt_idx) + ");\n";
          out += "  if (!entry) return ADN_DROP;\n";
        }
        if (s.where.has_value()) {
          out += "  if (!" + EmitExprC(*s.where) + ") return ADN_DROP;\n";
        }
        for (const auto& o : s.outputs) {
          if (o.identity) continue;
          out += "  msg->" + CIdent(o.name) + " = " + EmitExprC(o.expr) +
                 ";\n";
        }
        break;
      }
      case StmtIr::Kind::kInsert: {
        out += "  // stmt " + std::to_string(stmt_idx) + ": INSERT INTO " +
               stmt.insert->table + " (ring-buffer export to user space)\n";
        out += "  struct " + CIdent(stmt.insert->table) +
               "_entry row" + std::to_string(stmt_idx) + " = {";
        for (size_t i = 0; i < stmt.insert->values.size(); ++i) {
          if (i > 0) out += ", ";
          out += EmitExprC(stmt.insert->values[i]);
        }
        out += "};\n";
        out += "  adn_state_append(&" + CIdent(stmt.insert->table) + ", &row" +
               std::to_string(stmt_idx) + ");\n";
        break;
      }
      default:
        out += "  // stmt " + std::to_string(stmt_idx) +
               ": (unsupported on this target)\n";
        break;
    }
  }
  out += "  return ADN_PASS;\n}\n";
  return out;
}

std::string EmitP4(const ElementIr& element,
                   const rpc::HeaderSpec& link_header) {
  std::string out;
  out += "// Auto-generated by the ADN compiler — P4 lowering of element '" +
         element.name + "'.\n";
  out += "header adn_h {\n  bit<8> kind;\n  bit<64> id;\n"
         "  bit<32> method;\n  bit<32> src;\n  bit<32> dst;\n";
  for (const rpc::Column& c : link_header.fields) {
    if (!element.effects.ReadsField(c.name) &&
        !element.effects.WritesField(c.name)) {
      continue;  // parser skips fields this element doesn't touch
    }
    int bits = c.type == ValueType::kBool ? 8 : 64;
    out += "  bit<" + std::to_string(bits) + "> " + CIdent(c.name) + ";\n";
  }
  out += "}\n\n";

  for (const auto& [name, schema] : element.state_tables) {
    out += "table " + CIdent(name) + "_t {\n";
    out += "  key = { meta.key: exact; }\n";
    out += "  actions = { load_" + CIdent(name) + "; miss_drop; }\n";
    out += "  size = 65536; // populated by the ADN controller\n";
    out += "}\n";
  }

  out += "\ncontrol " + CIdent(element.name) +
         "(inout adn_h hdr, inout metadata meta) {\n  apply {\n";
  for (const StmtIr& stmt : element.statements) {
    if (stmt.kind != StmtIr::Kind::kSelect) continue;
    const ir::SelectIr& s = *stmt.select;
    if (s.join.has_value()) {
      out += "    meta.key = " + EmitExprC(s.join->probe) + ";\n";
      out += "    " + CIdent(s.join->table) + "_t.apply();\n";
    }
    if (s.where.has_value()) {
      out += "    if (!" + EmitExprC(*s.where) +
             ") { mark_to_drop(); return; }\n";
    }
    for (const auto& o : s.outputs) {
      if (o.identity) continue;
      if (o.name == std::string(ir::kDestinationField)) {
        out += "    hdr.dst = (bit<32>)" + EmitExprC(o.expr) + ";\n";
      } else {
        out += "    hdr." + CIdent(o.name) + " = " + EmitExprC(o.expr) +
               ";\n";
      }
    }
  }
  out += "  }\n}\n";
  return out;
}

}  // namespace adn::compiler
