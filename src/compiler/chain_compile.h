// Chain -> ChainProgram lowering: the last stage of the compiler.
//
// After the optimization passes (reorder, fusion) and header synthesis have
// fixed the element order and the minimal wire schemas, this pass flattens
// the whole chain into one register-based instruction stream
// (ir/program.h): expressions become straight-line register code, AND/OR
// become jumps, join probes become indexed table lookups, and every field
// name is interned to an ID once — the per-message string comparisons the
// tree-walking interpreter pays disappear at compile time.
//
// Field-ID assignment is seeded from the chain's header schemas so that the
// program's IDs enumerate the minimal header layout in wire order; IDs for
// fields that exist only mid-chain (computed outputs) follow after.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "ir/element_ir.h"
#include "ir/program.h"

namespace adn::compiler {

struct ChainCompileOptions {
  // Interning seed: field IDs 0..n-1 are assigned to these names in order
  // (the chain's wire-header field order from header_gen). Names the chain
  // touches beyond the seed get fresh IDs after it.
  std::vector<std::string> field_order_hint;
  // Emit a per-element message-kind guard so one program serves requests and
  // responses (the mesh-path tier runs whole chains this way). Engine stages
  // check AppliesTo() before dispatching, so single-element programs skip
  // the guard to keep Process() semantics identical to the interpreter's.
  bool kind_guards = true;
};

// Lower an ordered element list (an optimized chain) into one ChainProgram.
// Elements must be SQL elements — filter elements (retry/timeout/...) carry
// opaque operators and stay on their FilterOp implementations; passing one
// is an error and callers fall back to the interpreter tier.
Result<std::shared_ptr<const ir::ChainProgram>> CompileChainProgram(
    const std::vector<std::shared_ptr<const ir::ElementIr>>& elements,
    const ChainCompileOptions& options = {});

// Single-element convenience used by the engine's GeneratedStage: no kind
// guards, element index 0.
Result<std::shared_ptr<const ir::ChainProgram>> CompileElementProgram(
    const ir::ElementIr& element);

}  // namespace adn::compiler
