// IR optimization passes (paper §5.2: "It then applies a set of
// optimizations on the IR. For example, if two elements do not operate on
// the same RPC fields, they can be executed in parallel.").
//
// Implemented passes:
//   - drop-early reordering: move drop-capable cheap elements (ACL, fault
//     injection) ahead of expensive ones when the effect summaries commute,
//     so discarded messages don't pay for processing they'll never use;
//   - adjacent fusion: merge consecutive SQL elements with identical
//     placement constraints into one element, eliminating per-element
//     dispatch (cross-element optimization);
//   - parallel grouping: annotate maximal runs of pairwise-independent
//     elements that a processor may execute concurrently.
// Every transformation is recorded in a PassReport for inspection.
#pragma once

#include <string>
#include <vector>

#include "compiler/lower.h"

namespace adn::compiler {

// How the reorder pass arranges commuting elements.
enum class OrderStrategy {
  // Hoist cheap drop-capable elements ahead of expensive ones: discarded
  // messages skip work. Best when everything runs on the same processor.
  kDropEarly,
  // Sink hardware-offloadable and receiver-bound elements late, float
  // sender-bound ones early, so the placement solver can push work onto the
  // switch/NIC without violating path monotonicity. This realizes the
  // paper's Figure 2 config 3: compression runs first at the sender, and
  // the load balancer (whose key field stays uncompressed in the header)
  // moves to the programmable switch.
  kOffloadSink,
};

struct PassOptions {
  bool reorder_drop_early = true;  // applies under kDropEarly
  OrderStrategy order_strategy = OrderStrategy::kDropEarly;
  bool fuse_adjacent = true;
  bool parallelize = true;
};

struct PassReport {
  std::string pass;
  std::string detail;
};

struct OptimizedChain {
  ChainIr chain;  // transformed copy
  // Parallel group id per element position (equal ids may run concurrently).
  std::vector<int> parallel_groups;
  std::vector<PassReport> reports;
};

Result<OptimizedChain> RunPasses(const ChainIr& chain,
                                 const PassOptions& options);

// Fuse two adjacent SQL elements into one (exposed for tests). Fails if
// either is a filter element or directions differ.
Result<ir::ElementIr> FuseElements(const ir::ElementIr& a,
                                   const ir::ElementIr& b);

}  // namespace adn::compiler
