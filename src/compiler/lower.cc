#include "compiler/lower.h"

#include <algorithm>
#include <set>

namespace adn::compiler {

using dsl::BinaryOp;
using dsl::UnaryOp;
using ir::ElementIr;
using ir::ExprNode;
using rpc::Schema;
using rpc::ValueType;

namespace {

Error At(dsl::SourceLocation loc, ErrorCode code, std::string message) {
  return Error(code, std::move(message) + " at " + loc.ToString());
}

// Name resolution scope for one statement.
struct Scope {
  // The evolving RPC tuple schema at this point of the element body.
  const Schema* input = nullptr;
  // Joined table (SELECT ... JOIN t) or scanned table (UPDATE/DELETE).
  const Schema* table = nullptr;
  std::string table_name;
  // In UPDATE/DELETE, bare names prefer table columns; in SELECT they prefer
  // input fields.
  bool prefer_table = false;
};

class ElementLowerer {
 public:
  ElementLowerer(const dsl::ElementDecl& decl, const dsl::Program& program,
                 const ir::FunctionRegistry& functions)
      : decl_(decl), program_(program), functions_(functions) {}

  Result<ElementIr> Run() {
    ElementIr out;
    out.name = decl_.name;
    out.direction = decl_.direction;
    out.on_drop = decl_.on_drop;
    out.abort_message = decl_.abort_message;
    out.input = decl_.input;
    current_schema_ = decl_.input;

    for (const dsl::Statement& stmt : decl_.body) {
      if (const auto* sel = std::get_if<dsl::SelectStmt>(&stmt)) {
        ADN_ASSIGN_OR_RETURN(ir::StmtIr s, LowerSelect(*sel));
        out.statements.push_back(std::move(s));
      } else if (const auto* ins = std::get_if<dsl::InsertStmt>(&stmt)) {
        ADN_ASSIGN_OR_RETURN(ir::StmtIr s, LowerInsert(*ins));
        out.statements.push_back(std::move(s));
      } else if (const auto* upd = std::get_if<dsl::UpdateStmt>(&stmt)) {
        ADN_ASSIGN_OR_RETURN(ir::StmtIr s, LowerUpdate(*upd));
        out.statements.push_back(std::move(s));
      } else if (const auto* del = std::get_if<dsl::DeleteStmt>(&stmt)) {
        ADN_ASSIGN_OR_RETURN(ir::StmtIr s, LowerDelete(*del));
        out.statements.push_back(std::move(s));
      }
    }

    // Attach the schemas of every referenced state table.
    for (const std::string& t : used_tables_) {
      const dsl::TableDecl* td = program_.FindTable(t);
      out.state_tables.emplace_back(t, td->schema);
    }

    ComputeEffects(out);
    return out;
  }

 private:
  // --- Expression lowering --------------------------------------------------
  Result<ExprNode> LowerExpr(const dsl::Expr& expr, const Scope& scope) {
    if (const auto* lit = expr.As<dsl::LiteralExpr>()) {
      ExprNode node;
      node.kind = ExprNode::Kind::kLiteral;
      node.literal = lit->value;
      node.type = lit->value.type();
      return node;
    }
    if (const auto* col = expr.As<dsl::ColumnRefExpr>()) {
      return ResolveColumn(*col, expr.location, scope);
    }
    if (const auto* call = expr.As<dsl::CallExpr>()) {
      return LowerCall(*call, expr.location, scope);
    }
    if (const auto* un = expr.As<dsl::UnaryExpr>()) {
      ADN_ASSIGN_OR_RETURN(ExprNode operand, LowerExpr(*un->operand, scope));
      ExprNode node;
      node.kind = ExprNode::Kind::kUnary;
      node.unary_op = un->op;
      if (un->op == UnaryOp::kNegate) {
        if (operand.type != ValueType::kInt &&
            operand.type != ValueType::kFloat &&
            operand.type != ValueType::kNull) {
          return At(expr.location, ErrorCode::kTypeError,
                    "unary '-' wants a numeric operand, got " +
                        std::string(ValueTypeName(operand.type)));
        }
        node.type = operand.type;
      } else {
        if (operand.type != ValueType::kBool &&
            operand.type != ValueType::kNull) {
          return At(expr.location, ErrorCode::kTypeError,
                    "NOT wants a BOOL operand, got " +
                        std::string(ValueTypeName(operand.type)));
        }
        node.type = ValueType::kBool;
      }
      node.children.push_back(std::move(operand));
      return node;
    }
    const auto* bin = expr.As<dsl::BinaryExpr>();
    ADN_ASSIGN_OR_RETURN(ExprNode lhs, LowerExpr(*bin->lhs, scope));
    ADN_ASSIGN_OR_RETURN(ExprNode rhs, LowerExpr(*bin->rhs, scope));
    ExprNode node;
    node.kind = ExprNode::Kind::kBinary;
    node.binary_op = bin->op;
    ADN_ASSIGN_OR_RETURN(
        node.type, InferBinaryType(bin->op, lhs.type, rhs.type, expr.location));
    node.children.push_back(std::move(lhs));
    node.children.push_back(std::move(rhs));
    return node;
  }

  Result<ExprNode> ResolveColumn(const dsl::ColumnRefExpr& col,
                                 dsl::SourceLocation loc, const Scope& scope) {
    auto input_field = [&](const rpc::Column& c) {
      ExprNode node;
      node.kind = ExprNode::Kind::kInputField;
      node.field = c.name;
      node.type = c.type;
      return node;
    };
    auto table_field = [&](size_t idx, const rpc::Column& c) {
      ExprNode node;
      node.kind = ExprNode::Kind::kJoinField;
      node.join_col = idx;
      node.type = c.type;
      return node;
    };

    if (col.table == "input") {
      const rpc::Column* c = scope.input->FindColumn(col.column);
      if (c == nullptr) {
        return At(loc, ErrorCode::kNotFound,
                  "input has no field '" + col.column +
                      "' (declare it in INPUT)");
      }
      return input_field(*c);
    }
    if (!col.table.empty()) {
      if (scope.table == nullptr || scope.table_name != col.table) {
        return At(loc, ErrorCode::kNotFound,
                  "table '" + col.table + "' is not in scope here");
      }
      auto idx = scope.table->IndexOf(col.column);
      if (!idx.has_value()) {
        return At(loc, ErrorCode::kNotFound,
                  "table '" + col.table + "' has no column '" + col.column +
                      "'");
      }
      return table_field(*idx, scope.table->columns()[*idx]);
    }
    // Bare name: resolution order depends on statement kind.
    const rpc::Column* in_input = scope.input->FindColumn(col.column);
    std::optional<size_t> in_table =
        scope.table != nullptr ? scope.table->IndexOf(col.column)
                               : std::nullopt;
    // In UPDATE/DELETE the scanned table's columns shadow same-named input
    // fields (qualify with input.* to reach the RPC field); in SELECT a
    // bare name present on both sides is an error.
    if (scope.prefer_table && in_table.has_value()) {
      return table_field(*in_table, scope.table->columns()[*in_table]);
    }
    if (in_input != nullptr && in_table.has_value()) {
      return At(loc, ErrorCode::kTypeError,
                "ambiguous name '" + col.column +
                    "': qualify as input." + col.column + " or " +
                    scope.table_name + "." + col.column);
    }
    if (in_input != nullptr) return input_field(*in_input);
    if (in_table.has_value()) {
      return table_field(*in_table, scope.table->columns()[*in_table]);
    }
    return At(loc, ErrorCode::kNotFound,
              "unknown name '" + col.column + "'");
  }

  Result<ExprNode> LowerCall(const dsl::CallExpr& call,
                             dsl::SourceLocation loc, const Scope& scope) {
    const ir::FunctionDef* fn = functions_.Find(call.function);
    if (fn == nullptr) {
      return At(loc, ErrorCode::kNotFound,
                "unknown function '" + call.function + "'");
    }
    if (call.args.size() != fn->arg_types.size()) {
      return At(loc, ErrorCode::kTypeError,
                call.function + "() takes " +
                    std::to_string(fn->arg_types.size()) + " argument(s), " +
                    std::to_string(call.args.size()) + " given");
    }
    ExprNode node;
    node.kind = ExprNode::Kind::kCall;
    node.fn = fn;
    for (size_t i = 0; i < call.args.size(); ++i) {
      ADN_ASSIGN_OR_RETURN(ExprNode arg, LowerExpr(*call.args[i], scope));
      ValueType want = fn->arg_types[i];
      if (fn->variadic_numeric) {
        if (arg.type != ValueType::kInt && arg.type != ValueType::kFloat &&
            arg.type != ValueType::kNull) {
          return At(loc, ErrorCode::kTypeError,
                    call.function + "(): argument " + std::to_string(i + 1) +
                        " must be numeric, got " +
                        std::string(ValueTypeName(arg.type)));
        }
      } else if (want != ValueType::kNull && arg.type != ValueType::kNull &&
                 arg.type != want) {
        return At(loc, ErrorCode::kTypeError,
                  call.function + "(): argument " + std::to_string(i + 1) +
                      " must be " + std::string(ValueTypeName(want)) +
                      ", got " + std::string(ValueTypeName(arg.type)));
      }
      node.children.push_back(std::move(arg));
    }
    // Result type: polymorphic numerics take their argument type.
    if (fn->result_type == ValueType::kNull && fn->variadic_numeric &&
        !node.children.empty()) {
      ValueType t = node.children[0].type;
      for (const ExprNode& c : node.children) {
        if (c.type == ValueType::kFloat) t = ValueType::kFloat;
      }
      node.type = t;
    } else {
      node.type = fn->result_type;
    }
    return node;
  }

  Result<ValueType> InferBinaryType(BinaryOp op, ValueType lhs, ValueType rhs,
                                    dsl::SourceLocation loc) {
    auto numeric = [](ValueType t) {
      return t == ValueType::kInt || t == ValueType::kFloat ||
             t == ValueType::kNull;
    };
    switch (op) {
      case BinaryOp::kAnd:
      case BinaryOp::kOr:
        if ((lhs != ValueType::kBool && lhs != ValueType::kNull) ||
            (rhs != ValueType::kBool && rhs != ValueType::kNull)) {
          return At(loc, ErrorCode::kTypeError,
                    "AND/OR want BOOL operands");
        }
        return ValueType::kBool;
      case BinaryOp::kEq:
      case BinaryOp::kNe:
      case BinaryOp::kLt:
      case BinaryOp::kLe:
      case BinaryOp::kGt:
      case BinaryOp::kGe:
        // Comparable: same type, or numeric-numeric, or either unknown.
        if (lhs != ValueType::kNull && rhs != ValueType::kNull &&
            lhs != rhs && !(numeric(lhs) && numeric(rhs))) {
          return At(loc, ErrorCode::kTypeError,
                    "cannot compare " + std::string(ValueTypeName(lhs)) +
                        " with " + std::string(ValueTypeName(rhs)));
        }
        return ValueType::kBool;
      case BinaryOp::kConcat:
        if ((lhs == ValueType::kText || lhs == ValueType::kNull) &&
            (rhs == ValueType::kText || rhs == ValueType::kNull)) {
          return ValueType::kText;
        }
        if (lhs == ValueType::kBytes && rhs == ValueType::kBytes) {
          return ValueType::kBytes;
        }
        return At(loc, ErrorCode::kTypeError,
                  "'||' wants TEXT or BYTES operands");
      case BinaryOp::kMod:
        if ((lhs != ValueType::kInt && lhs != ValueType::kNull) ||
            (rhs != ValueType::kInt && rhs != ValueType::kNull)) {
          return At(loc, ErrorCode::kTypeError, "'%' wants INT operands");
        }
        return ValueType::kInt;
      default:
        if (!numeric(lhs) || !numeric(rhs)) {
          return At(loc, ErrorCode::kTypeError,
                    "arithmetic wants numeric operands, got " +
                        std::string(ValueTypeName(lhs)) + " and " +
                        std::string(ValueTypeName(rhs)));
        }
        if (lhs == ValueType::kFloat || rhs == ValueType::kFloat) {
          return ValueType::kFloat;
        }
        if (lhs == ValueType::kNull || rhs == ValueType::kNull) {
          return ValueType::kNull;
        }
        return ValueType::kInt;
    }
  }

  // --- Statement lowering ---------------------------------------------------
  Result<const dsl::TableDecl*> RequireTable(const std::string& name,
                                             dsl::SourceLocation loc) {
    const dsl::TableDecl* td = program_.FindTable(name);
    if (td == nullptr) {
      return At(loc, ErrorCode::kNotFound,
                "unknown state table '" + name + "'");
    }
    if (std::find(used_tables_.begin(), used_tables_.end(), name) ==
        used_tables_.end()) {
      used_tables_.push_back(name);
    }
    return td;
  }

  Result<ir::StmtIr> LowerSelect(const dsl::SelectStmt& sel) {
    if (sel.from != "input") {
      return At(sel.location, ErrorCode::kTypeError,
                "element SELECT must read FROM input (got '" + sel.from +
                    "')");
    }
    ir::SelectIr out;
    out.on_drop = decl_.on_drop;
    out.abort_message = decl_.abort_message;

    Scope scope;
    scope.input = &current_schema_;

    if (sel.join.has_value()) {
      ADN_ASSIGN_OR_RETURN(const dsl::TableDecl* td,
                           RequireTable(sel.join->table, sel.join->location));
      scope.table = &td->schema;
      scope.table_name = td->name;

      // Normalize: exactly one side references the table with a bare column.
      ADN_ASSIGN_OR_RETURN(ir::SelectIr::JoinIr join,
                           LowerJoin(*sel.join, scope, *td));
      out.join = std::move(join);
    }

    if (sel.where != nullptr) {
      ADN_ASSIGN_OR_RETURN(ExprNode where, LowerExpr(*sel.where, scope));
      if (where.type != ValueType::kBool && where.type != ValueType::kNull) {
        return At(sel.location, ErrorCode::kTypeError,
                  "WHERE must be BOOL, got " +
                      std::string(ValueTypeName(where.type)));
      }
      out.where = std::move(where);
    }

    // Projection items.
    Schema next_schema;
    for (const dsl::SelectItem& item : sel.items) {
      if (item.is_star) {
        out.passthrough = true;
        continue;
      }
      ADN_ASSIGN_OR_RETURN(ExprNode e, LowerExpr(*item.expr, scope));
      ir::SelectIr::OutputField field;
      field.name = item.alias;
      field.type = e.type;
      // Identity projection: `x` or `input.x` kept under its own name.
      field.identity = e.kind == ExprNode::Kind::kInputField &&
                       e.field == item.alias;
      field.expr = std::move(e);
      if (field.name == ir::kDestinationField &&
          field.type != ValueType::kInt && field.type != ValueType::kNull) {
        return At(item.location, ErrorCode::kTypeError,
                  "__destination must be INT");
      }
      out.outputs.push_back(std::move(field));
    }
    if (!out.passthrough && out.outputs.empty()) {
      return At(sel.location, ErrorCode::kTypeError,
                "SELECT must output at least one field");
    }

    // Compute the post-statement tuple schema.
    if (out.passthrough) {
      next_schema = current_schema_;
      for (const auto& f : out.outputs) {
        if (auto idx = next_schema.IndexOf(f.name); idx.has_value()) {
          // Replacement: type may change (e.g. payload BYTES stays BYTES).
          Schema rebuilt;
          for (size_t i = 0; i < next_schema.columns().size(); ++i) {
            rpc::Column c = next_schema.columns()[i];
            if (i == *idx) c.type = f.type;
            (void)rebuilt.AddColumn(std::move(c));
          }
          next_schema = std::move(rebuilt);
        } else {
          (void)next_schema.AddColumn({f.name, f.type, false});
        }
      }
    } else {
      for (const auto& f : out.outputs) {
        ADN_RETURN_IF_ERROR(next_schema.AddColumn({f.name, f.type, false}));
      }
    }
    current_schema_ = std::move(next_schema);

    ir::StmtIr stmt;
    stmt.kind = ir::StmtIr::Kind::kSelect;
    stmt.select = std::move(out);
    return stmt;
  }

  Result<ir::SelectIr::JoinIr> LowerJoin(const dsl::JoinClause& join,
                                         const Scope& scope,
                                         const dsl::TableDecl& td) {
    // Decide which side is the table column. A side counts as "table" if it
    // is a bare/qualified column resolving to the joined table.
    auto side_as_table_col =
        [&](const dsl::Expr& e) -> std::optional<size_t> {
      const auto* col = e.As<dsl::ColumnRefExpr>();
      if (col == nullptr) return std::nullopt;
      if (!col->table.empty() && col->table != td.name) return std::nullopt;
      if (col->table.empty() &&
          scope.input->FindColumn(col->column) != nullptr) {
        return std::nullopt;  // bare name that is an input field
      }
      return td.schema.IndexOf(col->column);
    };

    std::optional<size_t> left_col = side_as_table_col(*join.left);
    std::optional<size_t> right_col = side_as_table_col(*join.right);
    if (left_col.has_value() == right_col.has_value()) {
      return At(join.location, ErrorCode::kTypeError,
                "JOIN ON must compare one input-side expression with one "
                "column of '" + td.name + "'");
    }
    size_t key_col = left_col.has_value() ? *left_col : *right_col;
    const dsl::Expr& probe_ast = left_col.has_value() ? *join.right : *join.left;

    Scope probe_scope;
    probe_scope.input = scope.input;  // probe may not read the table
    ADN_ASSIGN_OR_RETURN(ExprNode probe, LowerExpr(probe_ast, probe_scope));

    ValueType key_type = td.schema.columns()[key_col].type;
    if (probe.type != ValueType::kNull && probe.type != key_type &&
        !(probe.type == ValueType::kInt && key_type == ValueType::kFloat) &&
        !(probe.type == ValueType::kFloat && key_type == ValueType::kInt)) {
      return At(join.location, ErrorCode::kTypeError,
                "join key type mismatch: probe is " +
                    std::string(ValueTypeName(probe.type)) + ", column '" +
                    td.schema.columns()[key_col].name + "' is " +
                    std::string(ValueTypeName(key_type)));
    }

    ir::SelectIr::JoinIr out;
    out.table = td.name;
    out.probe = std::move(probe);
    out.table_key_col = key_col;
    auto pk = td.schema.PrimaryKeyIndexes();
    out.key_is_primary = pk.size() == 1 && pk[0] == key_col;
    return out;
  }

  Result<ir::StmtIr> LowerInsert(const dsl::InsertStmt& ins) {
    ADN_ASSIGN_OR_RETURN(const dsl::TableDecl* td,
                         RequireTable(ins.table, ins.location));
    const Schema& schema = td->schema;

    // Column mapping: named columns or full schema order.
    std::vector<size_t> target_cols;
    if (ins.columns.empty()) {
      for (size_t i = 0; i < schema.size(); ++i) target_cols.push_back(i);
    } else {
      for (const std::string& c : ins.columns) {
        auto idx = schema.IndexOf(c);
        if (!idx.has_value()) {
          return At(ins.location, ErrorCode::kNotFound,
                    "table '" + ins.table + "' has no column '" + c + "'");
        }
        target_cols.push_back(*idx);
      }
    }

    Scope scope;
    scope.input = &current_schema_;

    std::vector<ExprNode> per_target;
    if (ins.from_select != nullptr) {
      const dsl::SelectStmt& sel = *ins.from_select;
      if (sel.from != "input") {
        return At(sel.location, ErrorCode::kTypeError,
                  "INSERT ... SELECT must read FROM input");
      }
      if (sel.join.has_value() || sel.where != nullptr) {
        return At(sel.location, ErrorCode::kUnsupported,
                  "INSERT ... SELECT does not support JOIN/WHERE (filter "
                  "with a preceding SELECT statement instead)");
      }
      for (const dsl::SelectItem& item : sel.items) {
        if (item.is_star) {
          return At(item.location, ErrorCode::kUnsupported,
                    "INSERT ... SELECT * is not supported; list columns");
        }
        ADN_ASSIGN_OR_RETURN(ExprNode e, LowerExpr(*item.expr, scope));
        per_target.push_back(std::move(e));
      }
    } else {
      for (const dsl::ExprPtr& e : ins.values) {
        ADN_ASSIGN_OR_RETURN(ExprNode node, LowerExpr(*e, scope));
        per_target.push_back(std::move(node));
      }
    }
    if (per_target.size() != target_cols.size()) {
      return At(ins.location, ErrorCode::kTypeError,
                "INSERT provides " + std::to_string(per_target.size()) +
                    " value(s) for " + std::to_string(target_cols.size()) +
                    " column(s)");
    }

    // Build full-row expressions in schema order; unnamed columns get NULL.
    ir::InsertIr out;
    out.table = ins.table;
    out.values.resize(schema.size());
    for (auto& v : out.values) {
      v.kind = ExprNode::Kind::kLiteral;
      v.literal = rpc::Value::Null();
      v.type = ValueType::kNull;
    }
    for (size_t i = 0; i < target_cols.size(); ++i) {
      ValueType want = schema.columns()[target_cols[i]].type;
      ValueType got = per_target[i].type;
      if (got != ValueType::kNull && got != want) {
        return At(ins.location, ErrorCode::kTypeError,
                  "column '" + schema.columns()[target_cols[i]].name +
                      "' wants " + std::string(ValueTypeName(want)) +
                      ", got " + std::string(ValueTypeName(got)));
      }
      out.values[target_cols[i]] = std::move(per_target[i]);
    }

    ir::StmtIr stmt;
    stmt.kind = ir::StmtIr::Kind::kInsert;
    stmt.insert = std::move(out);
    return stmt;
  }

  Result<ir::StmtIr> LowerUpdate(const dsl::UpdateStmt& upd) {
    ADN_ASSIGN_OR_RETURN(const dsl::TableDecl* td,
                         RequireTable(upd.table, upd.location));
    Scope scope;
    scope.input = &current_schema_;
    scope.table = &td->schema;
    scope.table_name = td->name;
    scope.prefer_table = true;

    ir::UpdateIr out;
    out.table = upd.table;
    for (const auto& [col, expr] : upd.assignments) {
      auto idx = td->schema.IndexOf(col);
      if (!idx.has_value()) {
        return At(upd.location, ErrorCode::kNotFound,
                  "table '" + upd.table + "' has no column '" + col + "'");
      }
      ADN_ASSIGN_OR_RETURN(ExprNode e, LowerExpr(*expr, scope));
      ValueType want = td->schema.columns()[*idx].type;
      if (e.type != ValueType::kNull && e.type != want) {
        return At(upd.location, ErrorCode::kTypeError,
                  "column '" + col + "' wants " +
                      std::string(ValueTypeName(want)) + ", got " +
                      std::string(ValueTypeName(e.type)));
      }
      out.assignments.emplace_back(*idx, std::move(e));
    }
    if (upd.where != nullptr) {
      ADN_ASSIGN_OR_RETURN(ExprNode where, LowerExpr(*upd.where, scope));
      out.where = std::move(where);
    }

    ir::StmtIr stmt;
    stmt.kind = ir::StmtIr::Kind::kUpdate;
    stmt.update = std::move(out);
    return stmt;
  }

  Result<ir::StmtIr> LowerDelete(const dsl::DeleteStmt& del) {
    ADN_ASSIGN_OR_RETURN(const dsl::TableDecl* td,
                         RequireTable(del.table, del.location));
    Scope scope;
    scope.input = &current_schema_;
    scope.table = &td->schema;
    scope.table_name = td->name;
    scope.prefer_table = true;

    ir::DeleteIr out;
    out.table = del.table;
    if (del.where != nullptr) {
      ADN_ASSIGN_OR_RETURN(ExprNode where, LowerExpr(*del.where, scope));
      out.where = std::move(where);
    }

    ir::StmtIr stmt;
    stmt.kind = ir::StmtIr::Kind::kDelete;
    stmt.del = std::move(out);
    return stmt;
  }

  // --- Effects ---------------------------------------------------------------
  void ComputeEffects(ElementIr& element) {
    ir::EffectSummary& eff = element.effects;
    auto add_unique = [](std::vector<std::string>& v, const std::string& s) {
      if (std::find(v.begin(), v.end(), s) == v.end()) v.push_back(s);
    };

    for (const ir::StmtIr& stmt : element.statements) {
      auto note_expr = [&](const ExprNode& e) {
        std::vector<std::string> reads;
        e.CollectInputFields(reads);
        for (auto& f : reads) add_unique(eff.fields_read, f);
        if (e.IsNondeterministic()) eff.nondeterministic = true;
        if (e.ReadsMetadata()) eff.reads_metadata = true;
      };

      switch (stmt.kind) {
        case ir::StmtIr::Kind::kSelect: {
          const ir::SelectIr& sel = *stmt.select;
          if (sel.join.has_value()) {
            eff.may_drop = true;
            add_unique(eff.tables_read, sel.join->table);
            note_expr(sel.join->probe);
          }
          if (sel.where.has_value()) {
            eff.may_drop = true;
            note_expr(*sel.where);
          }
          for (const auto& out : sel.outputs) {
            note_expr(out.expr);
            if (!out.identity) {
              add_unique(eff.fields_written, out.name);
              if (out.name == ir::kDestinationField) {
                eff.sets_destination = true;
              }
            }
          }
          break;
        }
        case ir::StmtIr::Kind::kInsert: {
          add_unique(eff.tables_written, stmt.insert->table);
          for (const ExprNode& e : stmt.insert->values) note_expr(e);
          break;
        }
        case ir::StmtIr::Kind::kUpdate: {
          add_unique(eff.tables_read, stmt.update->table);
          add_unique(eff.tables_written, stmt.update->table);
          for (const auto& [idx, e] : stmt.update->assignments) {
            (void)idx;
            note_expr(e);
          }
          if (stmt.update->where.has_value()) note_expr(*stmt.update->where);
          break;
        }
        case ir::StmtIr::Kind::kDelete: {
          add_unique(eff.tables_read, stmt.del->table);
          add_unique(eff.tables_written, stmt.del->table);
          if (stmt.del->where.has_value()) note_expr(*stmt.del->where);
          break;
        }
      }
    }
    std::sort(eff.fields_read.begin(), eff.fields_read.end());
    std::sort(eff.fields_written.begin(), eff.fields_written.end());
    std::sort(eff.tables_read.begin(), eff.tables_read.end());
    std::sort(eff.tables_written.begin(), eff.tables_written.end());
  }

  const dsl::ElementDecl& decl_;
  const dsl::Program& program_;
  const ir::FunctionRegistry& functions_;
  Schema current_schema_;
  std::vector<std::string> used_tables_;
};

// Filter operator contracts: name -> (required args, optional args).
struct FilterOpSpec {
  std::string_view name;
  std::vector<std::pair<std::string_view, ValueType>> required;
  std::vector<std::pair<std::string_view, ValueType>> optional;
};

const std::vector<FilterOpSpec>& FilterOpSpecs() {
  static const std::vector<FilterOpSpec> kSpecs = {
      {"retry",
       {{"max_attempts", ValueType::kInt}},
       {{"timeout_ms", ValueType::kInt}}},
      {"timeout", {{"timeout_ms", ValueType::kInt}}, {}},
      {"rate_limit",
       {{"rps", ValueType::kInt}},
       {{"burst", ValueType::kInt}}},
      {"circuit_breaker",
       {{"error_threshold", ValueType::kFloat}},
       {{"window", ValueType::kInt}, {"cooldown_ms", ValueType::kInt}}},
      {"dedup", {}, {{"window", ValueType::kInt}}},
      // Aggregation primitives (paper §5.1 "telemetry in the network"):
      // pass-through observers that fold a stream statistic into local
      // state. Field-name arguments are TEXT (the parser turns bare
      // identifiers into text values); they feed fields_read so the P4
      // parse-depth check and header prioritization see exactly which
      // bytes a constrained processor must parse.
      {"agg_count",
       {},
       {{"key", ValueType::kText}, {"groups", ValueType::kInt}}},
      {"agg_sum",
       {{"field", ValueType::kText}},
       {{"key", ValueType::kText}, {"groups", ValueType::kInt}}},
      {"agg_topk",
       {{"key", ValueType::kText}},
       {{"k", ValueType::kInt}}},
  };
  return kSpecs;
}

bool IsAggOp(std::string_view op) {
  return op == "agg_count" || op == "agg_sum" || op == "agg_topk";
}

Result<ElementIr> LowerFilter(const dsl::FilterDecl& decl) {
  const FilterOpSpec* spec = nullptr;
  for (const auto& s : FilterOpSpecs()) {
    if (s.name == decl.op) {
      spec = &s;
      break;
    }
  }
  if (spec == nullptr) {
    return At(decl.location, ErrorCode::kNotFound,
              "unknown filter operator '" + decl.op + "'");
  }
  // Validate arguments.
  auto find_arg = [&](std::string_view name) -> const rpc::Value* {
    for (const auto& [k, v] : decl.args) {
      if (k == name) return &v;
    }
    return nullptr;
  };
  for (const auto& [name, type] : spec->required) {
    const rpc::Value* v = find_arg(name);
    if (v == nullptr) {
      return At(decl.location, ErrorCode::kInvalidArgument,
                decl.op + " requires argument '" + std::string(name) + "'");
    }
    if (v->type() != type &&
        !(type == ValueType::kFloat && v->type() == ValueType::kInt)) {
      return At(decl.location, ErrorCode::kTypeError,
                "argument '" + std::string(name) + "' of " + decl.op +
                    " must be " + std::string(ValueTypeName(type)));
    }
  }
  for (const auto& [k, v] : decl.args) {
    (void)v;
    bool known = false;
    for (const auto& [name, type] : spec->required) {
      (void)type;
      if (name == k) known = true;
    }
    for (const auto& [name, type] : spec->optional) {
      (void)type;
      if (name == k) known = true;
    }
    if (!known) {
      return At(decl.location, ErrorCode::kInvalidArgument,
                decl.op + " has no argument '" + k + "'");
    }
  }

  ElementIr out;
  out.name = decl.name;
  out.direction = decl.direction;
  out.abort_message = decl.name + ": rejected";
  out.filter_op = ir::FilterIr{decl.op, decl.args};
  if (IsAggOp(decl.op)) {
    // Aggregations never drop and read only their named fields — precise
    // effects are what lets the placement pass put them on constrained
    // processors (the parse-depth check needs the exact field set).
    out.effects.may_drop = false;
    out.effects.nondeterministic = false;
    out.effects.reads_metadata = true;
    for (const auto& [k, v] : decl.args) {
      if ((k == "key" || k == "field") && v.type() == ValueType::kText) {
        out.effects.fields_read.push_back(std::string(v.AsText()));
      }
    }
    std::sort(out.effects.fields_read.begin(), out.effects.fields_read.end());
    out.effects.fields_read.erase(
        std::unique(out.effects.fields_read.begin(),
                    out.effects.fields_read.end()),
        out.effects.fields_read.end());
  } else {
    // Conservative effects: stream-shaping operators may drop/delay messages
    // and are timing-dependent; they read/write no RPC fields.
    out.effects.may_drop = true;
    out.effects.nondeterministic = true;
    out.effects.reads_metadata = true;
  }
  return out;
}

// CACHE decl -> ElementIr with cache_op and a synthesized backing table
// `__cache_<name>` (ckey INT PRIMARY KEY, resp BYTES, stored_at INT). The
// rows are ordinary relational state, so snapshot/split/merge/migration all
// work unchanged; the ARC recency metadata is runtime-only (ir/exec.cc).
Result<ElementIr> LowerCache(const dsl::CacheDecl& decl) {
  auto find_arg = [&](std::string_view name) -> const rpc::Value* {
    for (const auto& [k, v] : decl.args) {
      if (k == name) return &v;
    }
    return nullptr;
  };
  for (const auto& [k, v] : decl.args) {
    (void)v;
    if (k != "capacity" && k != "ttl_ms") {
      return At(decl.location, ErrorCode::kInvalidArgument,
                "CACHE has no argument '" + k + "'");
    }
  }
  const rpc::Value* cap = find_arg("capacity");
  if (cap == nullptr || cap->type() != ValueType::kInt) {
    return At(decl.location, ErrorCode::kInvalidArgument,
              "CACHE requires capacity => <int>");
  }
  if (cap->AsInt() <= 0) {
    return At(decl.location, ErrorCode::kInvalidArgument,
              "CACHE capacity must be positive, got " +
                  std::to_string(cap->AsInt()));
  }
  ir::CacheIr cache;
  cache.capacity = static_cast<size_t>(cap->AsInt());
  if (const rpc::Value* ttl = find_arg("ttl_ms"); ttl != nullptr) {
    if (ttl->type() != ValueType::kInt || ttl->AsInt() < 0) {
      return At(decl.location, ErrorCode::kInvalidArgument,
                "CACHE ttl_ms must be a non-negative integer");
    }
    cache.ttl_ns = ttl->AsInt() * 1'000'000;
  }
  if (decl.key_fields.empty()) {
    return At(decl.location, ErrorCode::kInvalidArgument,
              "CACHE needs at least one KEY field");
  }
  cache.key_fields = decl.key_fields;
  cache.table = "__cache_" + decl.name;

  ElementIr out;
  out.name = decl.name;
  out.direction = dsl::Direction::kBoth;  // lookup on request, fill on response
  out.abort_message = decl.name + ": cache";
  Schema schema;
  (void)schema.AddColumn({"ckey", ValueType::kInt, /*primary_key=*/true});
  (void)schema.AddColumn({"resp", ValueType::kBytes, false});
  (void)schema.AddColumn({"stored_at", ValueType::kInt, false});
  out.state_tables.emplace_back(cache.table, std::move(schema));
  // Effects: reads the key fields on requests, rewrites the whole message on
  // a hit (conservatively: no fields_written claim — the hit replaces the
  // message rather than editing fields, and the chain stops there). TTL makes
  // it timing-dependent.
  out.effects.fields_read = decl.key_fields;
  std::sort(out.effects.fields_read.begin(), out.effects.fields_read.end());
  out.effects.fields_read.erase(
      std::unique(out.effects.fields_read.begin(),
                  out.effects.fields_read.end()),
      out.effects.fields_read.end());
  out.effects.tables_read.push_back(cache.table);
  out.effects.tables_written.push_back(cache.table);
  out.effects.nondeterministic = true;
  out.effects.reads_metadata = true;
  out.cache_op = std::move(cache);
  return out;
}

}  // namespace

bool IsKnownFilterOp(std::string_view op) {
  for (const auto& s : FilterOpSpecs()) {
    if (s.name == op) return true;
  }
  return false;
}

Result<ir::ElementIr> LowerElement(const dsl::ElementDecl& decl,
                                   const dsl::Program& program,
                                   const ir::FunctionRegistry& functions) {
  return ElementLowerer(decl, program, functions).Run();
}

std::shared_ptr<const ir::ElementIr> ProgramIr::FindElement(
    std::string_view name) const {
  for (const auto& e : elements) {
    if (e->name == name) return e;
  }
  return nullptr;
}

const ChainIr* ProgramIr::FindChain(std::string_view name) const {
  for (const auto& c : chains) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

Result<ProgramIr> LowerProgram(
    const dsl::Program& program,
    std::shared_ptr<const ir::FunctionRegistry> functions) {
  ProgramIr out;
  out.functions = functions;

  for (const dsl::ElementDecl& decl : program.elements) {
    ADN_ASSIGN_OR_RETURN(ir::ElementIr e,
                         LowerElement(decl, program, *functions));
    out.elements.push_back(std::make_shared<ir::ElementIr>(std::move(e)));
  }
  for (const dsl::FilterDecl& decl : program.filters) {
    ADN_ASSIGN_OR_RETURN(ir::ElementIr e, LowerFilter(decl));
    out.elements.push_back(std::make_shared<ir::ElementIr>(std::move(e)));
  }
  for (const dsl::CacheDecl& decl : program.caches) {
    ADN_ASSIGN_OR_RETURN(ir::ElementIr e, LowerCache(decl));
    out.elements.push_back(std::make_shared<ir::ElementIr>(std::move(e)));
  }

  for (const dsl::ChainDecl& decl : program.chains) {
    ChainIr chain;
    chain.name = decl.name;
    chain.caller_service = decl.caller_service;
    chain.callee_service = decl.callee_service;
    for (const dsl::ChainElementRef& ref : decl.elements) {
      auto element = out.FindElement(ref.element);
      if (element == nullptr) {
        return Error(ErrorCode::kNotFound,
                     "chain '" + decl.name + "' references unknown element '" +
                         ref.element + "' at " +
                         ref.source_location.ToString());
      }
      chain.elements.push_back(std::move(element));
      chain.constraints.push_back(ref.location);
    }
    if (chain.elements.empty()) {
      return Error(ErrorCode::kInvalidArgument,
                   "chain '" + decl.name + "' is empty");
    }
    out.chains.push_back(std::move(chain));
  }
  return out;
}

}  // namespace adn::compiler
