#include "compiler/chain_compile.h"

#include <atomic>
#include <utility>

#include "rpc/intern.h"

namespace adn::compiler {

using ir::ChainProgram;
using ir::ElementIr;
using ir::ExprNode;
using ir::Instr;
using ir::SelectIr;
using ir::StmtIr;
using rpc::Value;

namespace {

// Message-kind bitmask matching ElementInstance::AppliesTo (kError never
// enters a chain element).
uint8_t KindMask(dsl::Direction d) {
  switch (d) {
    case dsl::Direction::kRequest:
      return 1u << static_cast<uint8_t>(rpc::MessageKind::kRequest);
    case dsl::Direction::kResponse:
      return 1u << static_cast<uint8_t>(rpc::MessageKind::kResponse);
    case dsl::Direction::kBoth:
      return (1u << static_cast<uint8_t>(rpc::MessageKind::kRequest)) |
             (1u << static_cast<uint8_t>(rpc::MessageKind::kResponse));
  }
  return 0;
}

class ProgramBuilder {
 public:
  explicit ProgramBuilder(const ChainCompileOptions& options) {
    for (const std::string& f : options.field_order_hint) InternField(f);
  }

  Status AddElement(const ElementIr& element, uint16_t elem_idx,
                    bool kind_guard);

  std::shared_ptr<const ChainProgram> Finish() {
    Emit({Instr::Op::kReturnPass});
    // Process-wide compile generation: every compiled program gets a fresh,
    // strictly increasing version so hot-reload can order old vs new.
    static std::atomic<uint64_t> next_version{1};
    p_.version = next_version.fetch_add(1, std::memory_order_relaxed);
    return std::make_shared<const ChainProgram>(std::move(p_));
  }

 private:
  uint32_t Emit(Instr in) {
    p_.code.push_back(in);
    return static_cast<uint32_t>(p_.code.size() - 1);
  }
  uint32_t Here() const { return static_cast<uint32_t>(p_.code.size()); }
  void PatchJump(uint32_t ip) { p_.code[ip].d = Here(); }

  void Touch(uint16_t reg) {
    if (reg >= p_.num_registers) p_.num_registers = reg + 1;
  }

  uint16_t InternField(const std::string& name) {
    for (size_t i = 0; i < p_.field_names.size(); ++i) {
      if (p_.field_names[i] == name) return static_cast<uint16_t>(i);
    }
    p_.field_names.push_back(name);
    // Resolve the process-global id now so ChainExecutor never has to scan
    // names at run time (field_gids stays parallel to field_names).
    p_.field_gids.push_back(rpc::InternFieldName(name));
    return static_cast<uint16_t>(p_.field_names.size() - 1);
  }

  uint16_t InternConst(const Value& v) {
    for (size_t i = 0; i < p_.consts.size(); ++i) {
      if (p_.consts[i].type() == v.type() && p_.consts[i].EqualsValue(v)) {
        return static_cast<uint16_t>(i);
      }
    }
    p_.consts.push_back(v);
    return static_cast<uint16_t>(p_.consts.size() - 1);
  }

  uint16_t InternString(const std::string& s) {
    for (size_t i = 0; i < p_.strings.size(); ++i) {
      if (p_.strings[i] == s) return static_cast<uint16_t>(i);
    }
    p_.strings.push_back(s);
    return static_cast<uint16_t>(p_.strings.size() - 1);
  }

  uint16_t InternFunction(const ir::FunctionDef* fn) {
    for (size_t i = 0; i < p_.functions.size(); ++i) {
      if (p_.functions[i] == fn) return static_cast<uint16_t>(i);
    }
    p_.functions.push_back(fn);
    return static_cast<uint16_t>(p_.functions.size() - 1);
  }

  // Table handle: (element, position in that element's state_tables) —
  // ElementInstance builds its table vector in state_tables order.
  Result<uint16_t> InternTable(const ElementIr& element, uint16_t elem_idx,
                               const std::string& name) {
    uint16_t table_idx = 0;
    bool found = false;
    for (size_t i = 0; i < element.state_tables.size(); ++i) {
      if (element.state_tables[i].first == name) {
        table_idx = static_cast<uint16_t>(i);
        found = true;
        break;
      }
    }
    if (!found) {
      return Error(ErrorCode::kInternal,
                   "element " + element.name + " has no state table " + name);
    }
    for (size_t i = 0; i < p_.tables.size(); ++i) {
      if (p_.tables[i].element == elem_idx &&
          p_.tables[i].table_idx == table_idx) {
        return static_cast<uint16_t>(i);
      }
    }
    p_.tables.push_back({elem_idx, table_idx, name});
    return static_cast<uint16_t>(p_.tables.size() - 1);
  }

  // Compile `expr` so its value lands in r[dst]; registers >= scratch are
  // free for intermediates. Evaluation order is strictly left-to-right to
  // match the interpreter (first error wins).
  void CompileExpr(const ExprNode& expr, uint16_t dst, uint16_t scratch);

  Result<uint32_t> CompileSub(const ExprNode& expr);

  Status AddStatement(const ElementIr& element, uint16_t elem_idx,
                      const StmtIr& stmt);

  ChainProgram p_;
  double current_per_byte_ = 0.0;
};

void ProgramBuilder::CompileExpr(const ExprNode& expr, uint16_t dst,
                                 uint16_t scratch) {
  Touch(dst);
  switch (expr.kind) {
    case ExprNode::Kind::kLiteral:
      Emit({Instr::Op::kLoadConst, 0, dst, InternConst(expr.literal)});
      return;
    case ExprNode::Kind::kInputField:
      Emit({Instr::Op::kLoadField, 0, dst, InternField(expr.field)});
      return;
    case ExprNode::Kind::kJoinField:
      Emit({Instr::Op::kLoadJoin, 0, dst,
            static_cast<uint16_t>(expr.join_col)});
      return;
    case ExprNode::Kind::kCall: {
      const uint16_t nargs = static_cast<uint16_t>(expr.children.size());
      // Arguments in consecutive registers; each argument may use scratch
      // above the whole window (arguments evaluate sequentially).
      for (uint16_t i = 0; i < nargs; ++i) {
        CompileExpr(expr.children[i], static_cast<uint16_t>(scratch + i),
                    static_cast<uint16_t>(scratch + nargs));
      }
      current_per_byte_ += expr.fn->per_byte_cost_ns;
      // aux=1 marks len(x): the executor reads the size through the
      // argument's borrowed register instead of copying it into the call.
      const uint8_t fast_len =
          (expr.fn->name == "len" && nargs == 1) ? uint8_t{1} : uint8_t{0};
      Instr in{Instr::Op::kCall, fast_len, dst, InternFunction(expr.fn),
               scratch};
      in.d = nargs;
      Emit(in);
      return;
    }
    case ExprNode::Kind::kUnary:
      CompileExpr(expr.children[0], dst, scratch);
      Emit({Instr::Op::kUnary, static_cast<uint8_t>(expr.unary_op), dst,
            dst});
      return;
    case ExprNode::Kind::kBinary: {
      const dsl::BinaryOp op = expr.binary_op;
      if (op == dsl::BinaryOp::kAnd || op == dsl::BinaryOp::kOr) {
        // Short-circuit lowering; the result is always a plain BOOL, like
        // the interpreter's Truthy flattening.
        CompileExpr(expr.children[0], dst, scratch);
        Emit({Instr::Op::kCoerceBool, 0, dst});
        uint32_t skip = Emit({op == dsl::BinaryOp::kAnd
                                  ? Instr::Op::kJumpIfFalse
                                  : Instr::Op::kJumpIfTrue,
                              0, dst});
        CompileExpr(expr.children[1], dst, scratch);
        Emit({Instr::Op::kCoerceBool, 0, dst});
        PatchJump(skip);
        return;
      }
      CompileExpr(expr.children[0], dst, scratch);
      CompileExpr(expr.children[1], scratch,
                  static_cast<uint16_t>(scratch + 1));
      Emit({Instr::Op::kBinary, static_cast<uint8_t>(op), dst, dst,
            scratch});
      return;
    }
  }
}

// Emit a WHERE/assignment expression as a subprogram ending in
// kReturnValue, jumped over by the main stream. Returns its entry ip.
Result<uint32_t> ProgramBuilder::CompileSub(const ExprNode& expr) {
  uint32_t jump_over = Emit({Instr::Op::kJump});
  uint32_t entry = Here();
  CompileExpr(expr, 0, 1);
  Emit({Instr::Op::kReturnValue, 0, 0});
  PatchJump(jump_over);
  return entry;
}

Status ProgramBuilder::AddStatement(const ElementIr& element,
                                    uint16_t elem_idx, const StmtIr& stmt) {
  switch (stmt.kind) {
    case StmtIr::Kind::kSelect: {
      const SelectIr& sel = *stmt.select;
      // Jumps to the statement's drop block (join miss, WHERE false).
      std::vector<uint32_t> drop_jumps;

      if (sel.join.has_value()) {
        ADN_ASSIGN_OR_RETURN(
            uint16_t table, InternTable(element, elem_idx, sel.join->table));
        CompileExpr(sel.join->probe, 0, 1);
        Instr lookup{sel.join->key_is_primary ? Instr::Op::kLookupPk
                                              : Instr::Op::kLookupScan,
                     0, 0, table,
                     static_cast<uint16_t>(sel.join->table_key_col)};
        drop_jumps.push_back(Emit(lookup));
      }
      if (sel.where.has_value()) {
        CompileExpr(*sel.where, 0, 1);
        drop_jumps.push_back(Emit({Instr::Op::kJumpIfFalse, 0, 0}));
      }

      // Computed outputs, evaluated against the pre-mutation tuple into
      // consecutive registers (SQL snapshot semantics), stores afterwards.
      std::vector<std::pair<uint16_t, uint16_t>> stores;  // reg -> field id
      uint16_t out_reg = 0;
      for (const auto& out : sel.outputs) {
        if (out.identity) continue;
        CompileExpr(out.expr, out_reg,
                    static_cast<uint16_t>(out_reg + 1));
        // A bare field reference leaves the register borrowing message
        // storage; the projection/stores below may move the field vector,
        // so pin it into the register first.
        if (out.expr.kind == ExprNode::Kind::kInputField) {
          Emit({Instr::Op::kMaterialize, 0, out_reg});
        }
        stores.emplace_back(out_reg, InternField(out.name));
        ++out_reg;
      }
      if (!sel.passthrough) {
        std::vector<uint16_t> keep;
        for (const auto& out : sel.outputs) {
          keep.push_back(InternField(out.name));
        }
        p_.keep_lists.push_back(std::move(keep));
        Emit({Instr::Op::kProject, 0, 0,
              static_cast<uint16_t>(p_.keep_lists.size() - 1)});
      }
      for (const auto& [reg, fid] : stores) {
        Emit({Instr::Op::kStoreField, 0, reg, fid});
      }
      Emit({Instr::Op::kRouteDest});
      Emit({Instr::Op::kClearJoin});

      if (!drop_jumps.empty()) {
        uint32_t over = Emit({Instr::Op::kJump});
        for (uint32_t ip : drop_jumps) PatchJump(ip);
        Emit({Instr::Op::kDrop,
              sel.on_drop == dsl::DropBehavior::kSilent ? uint8_t{1}
                                                        : uint8_t{0},
              0, InternString(sel.abort_message)});
        PatchJump(over);
      }
      return Status::Ok();
    }

    case StmtIr::Kind::kInsert: {
      const ir::InsertIr& ins = *stmt.insert;
      ADN_ASSIGN_OR_RETURN(uint16_t table,
                           InternTable(element, elem_idx, ins.table));
      const uint16_t n = static_cast<uint16_t>(ins.values.size());
      for (uint16_t i = 0; i < n; ++i) {
        CompileExpr(ins.values[i], i, n);
      }
      Instr in{Instr::Op::kInsertRow, 0, 0, table};
      in.d = n;
      Emit(in);
      return Status::Ok();
    }

    case StmtIr::Kind::kUpdate: {
      const ir::UpdateIr& upd = *stmt.update;
      ADN_ASSIGN_OR_RETURN(uint16_t table,
                           InternTable(element, elem_idx, upd.table));
      ChainProgram::UpdateSpec spec;
      spec.table = table;
      const rpc::Schema* schema = element.FindStateSchema(upd.table);
      const ir::ExprNode* key_expr =
          schema != nullptr ? ir::PointUpdateKeyExpr(upd, *schema) : nullptr;
      if (key_expr != nullptr) {
        // WHERE pk = <message expr>: the equality is fully captured by the
        // key lookup, so no residual predicate is compiled.
        ADN_ASSIGN_OR_RETURN(spec.key_entry, CompileSub(*key_expr));
      } else if (upd.where.has_value()) {
        ADN_ASSIGN_OR_RETURN(spec.where_entry, CompileSub(*upd.where));
      }
      for (const auto& [col, expr] : upd.assignments) {
        ADN_ASSIGN_OR_RETURN(uint32_t entry, CompileSub(expr));
        spec.assignments.emplace_back(static_cast<uint16_t>(col), entry);
      }
      p_.update_specs.push_back(std::move(spec));
      Emit({Instr::Op::kUpdateRows, 0, 0,
            static_cast<uint16_t>(p_.update_specs.size() - 1)});
      return Status::Ok();
    }

    case StmtIr::Kind::kDelete: {
      const ir::DeleteIr& del = *stmt.del;
      ADN_ASSIGN_OR_RETURN(uint16_t table,
                           InternTable(element, elem_idx, del.table));
      ChainProgram::DeleteSpec spec;
      spec.table = table;
      if (del.where.has_value()) {
        ADN_ASSIGN_OR_RETURN(spec.where_entry, CompileSub(*del.where));
      }
      p_.delete_specs.push_back(spec);
      Emit({Instr::Op::kDeleteRows, 0, 0,
            static_cast<uint16_t>(p_.delete_specs.size() - 1)});
      return Status::Ok();
    }
  }
  return Error(ErrorCode::kInternal, "unhandled statement kind");
}

Status ProgramBuilder::AddElement(const ElementIr& element, uint16_t elem_idx,
                                  bool kind_guard) {
  if (element.IsFilter()) {
    return Error(ErrorCode::kUnsupported,
                 "filter element " + element.name +
                     " has no SQL body to compile; use its FilterOp stage");
  }
  if (element.IsCache()) {
    return Error(ErrorCode::kUnsupported,
                 "cache element " + element.name +
                     " has no SQL body to compile; it runs through the "
                     "interpreter's dedicated cache path");
  }
  ChainProgram::ElementSeg seg;
  seg.name = element.name;
  seg.direction = element.direction;
  seg.entry_ip = Here();
  current_per_byte_ = 0.0;

  uint32_t guard_ip = 0;
  if (kind_guard) {
    guard_ip = Emit(
        {Instr::Op::kSkipUnlessKind, KindMask(element.direction)});
  }
  Emit({Instr::Op::kBeginElement, 0, 0, elem_idx});
  for (const StmtIr& stmt : element.statements) {
    ADN_RETURN_IF_ERROR(AddStatement(element, elem_idx, stmt));
  }
  if (kind_guard) PatchJump(guard_ip);

  seg.instr_count = Here() - seg.entry_ip;
  seg.per_byte_cost_ns = current_per_byte_;
  p_.elements.push_back(std::move(seg));
  return Status::Ok();
}

}  // namespace

Result<std::shared_ptr<const ir::ChainProgram>> CompileChainProgram(
    const std::vector<std::shared_ptr<const ir::ElementIr>>& elements,
    const ChainCompileOptions& options) {
  ProgramBuilder builder(options);
  for (size_t i = 0; i < elements.size(); ++i) {
    ADN_RETURN_IF_ERROR(builder.AddElement(
        *elements[i], static_cast<uint16_t>(i), options.kind_guards));
  }
  return builder.Finish();
}

Result<std::shared_ptr<const ir::ChainProgram>> CompileElementProgram(
    const ir::ElementIr& element) {
  ChainCompileOptions options;
  options.kind_guards = false;
  ProgramBuilder builder(options);
  ADN_RETURN_IF_ERROR(builder.AddElement(element, 0, /*kind_guard=*/false));
  return builder.Finish();
}

}  // namespace adn::compiler
