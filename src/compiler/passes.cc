#include "compiler/passes.h"

#include <algorithm>

#include "compiler/backend.h"
#include "ir/analysis.h"

namespace adn::compiler {

namespace {

// Rank for the offload-sink order: sender-bound first, receiver-bound last,
// hardware-offloadable unconstrained elements after plain ones so they can
// land on the switch/NIC side of the path.
int OffloadRank(const ir::ElementIr& element,
                dsl::LocationConstraint constraint) {
  switch (constraint) {
    case dsl::LocationConstraint::kSender: return 0;
    case dsl::LocationConstraint::kReceiver: return 3;
    default: break;
  }
  return CheckFeasible(element, TargetPlatform::kP4Switch).feasible ? 2 : 1;
}

// Deep-copy an ExprNode tree (ElementIr holds them by value, but StmtIr
// contains optionals of structs with vectors — default copy works; this
// helper exists for clarity at call sites).
ir::ElementIr CopyElement(const ir::ElementIr& e) { return e; }

}  // namespace

Result<ir::ElementIr> FuseElements(const ir::ElementIr& a,
                                   const ir::ElementIr& b) {
  if (a.IsFilter() || b.IsFilter() || a.IsCache() || b.IsCache()) {
    return Error(ErrorCode::kUnsupported,
                 "cannot fuse filter or cache elements ('" + a.name + "' + '" +
                     b.name + "')");
  }
  if (a.direction != b.direction) {
    return Error(ErrorCode::kUnsupported,
                 "cannot fuse elements with different directions ('" +
                     a.name + "' is " + std::string(DirectionName(a.direction)) +
                     ", '" + b.name + "' is " +
                     std::string(DirectionName(b.direction)) + ")");
  }
  ir::ElementIr fused = CopyElement(a);
  fused.name = a.name + "+" + b.name;
  for (const ir::StmtIr& s : b.statements) fused.statements.push_back(s);

  // Union of state tables.
  for (const auto& [name, schema] : b.state_tables) {
    if (fused.FindStateSchema(name) == nullptr) {
      fused.state_tables.emplace_back(name, schema);
    }
  }
  // Union of input schemas (b's inputs may be produced by a; only add the
  // ones a doesn't already declare).
  for (const rpc::Column& c : b.input.columns()) {
    if (fused.input.FindColumn(c.name) == nullptr) {
      (void)fused.input.AddColumn(c);
    }
  }
  // Merge effects.
  auto merge = [](std::vector<std::string>& into,
                  const std::vector<std::string>& from) {
    for (const auto& s : from) {
      if (std::find(into.begin(), into.end(), s) == into.end()) {
        into.push_back(s);
      }
    }
    std::sort(into.begin(), into.end());
  };
  merge(fused.effects.fields_read, b.effects.fields_read);
  merge(fused.effects.fields_written, b.effects.fields_written);
  merge(fused.effects.tables_read, b.effects.tables_read);
  merge(fused.effects.tables_written, b.effects.tables_written);
  fused.effects.may_drop |= b.effects.may_drop;
  fused.effects.nondeterministic |= b.effects.nondeterministic;
  fused.effects.reads_metadata |= b.effects.reads_metadata;
  fused.effects.sets_destination |= b.effects.sets_destination;
  return fused;
}

Result<OptimizedChain> RunPasses(const ChainIr& chain,
                                 const PassOptions& options) {
  OptimizedChain out;
  out.chain = chain;

  // --- Pass 1: reordering ----------------------------------------------------
  std::vector<size_t> order(out.chain.elements.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  if (options.order_strategy == OrderStrategy::kOffloadSink) {
    // Bubble sort by OffloadRank with commutativity as the swap guard.
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t i = 1; i < order.size(); ++i) {
        const auto& prev = *out.chain.elements[order[i - 1]];
        const auto& cur = *out.chain.elements[order[i]];
        int prev_rank = OffloadRank(prev, out.chain.constraints[order[i - 1]]);
        int cur_rank = OffloadRank(cur, out.chain.constraints[order[i]]);
        if (prev_rank <= cur_rank) continue;
        if (!ir::CheckCommutes(prev.effects, cur.effects).Commutes()) continue;
        std::swap(order[i - 1], order[i]);
        changed = true;
      }
    }
  } else if (options.reorder_drop_early) {
    std::vector<const ir::ElementIr*> view;
    view.reserve(out.chain.elements.size());
    for (const auto& e : out.chain.elements) view.push_back(e.get());
    order = ir::ComputeDropEarlyOrder(view);
  }
  {
    bool changed = false;
    for (size_t i = 0; i < order.size(); ++i) {
      if (order[i] != i) changed = true;
    }
    if (changed) {
      // Reordering must not separate an element from its constraint; the
      // constraint travels with the element.
      std::vector<std::shared_ptr<const ir::ElementIr>> elements;
      std::vector<dsl::LocationConstraint> constraints;
      std::string detail = "new order:";
      for (size_t idx : order) {
        elements.push_back(out.chain.elements[idx]);
        constraints.push_back(out.chain.constraints[idx]);
        detail += " " + out.chain.elements[idx]->name;
      }
      out.chain.elements = std::move(elements);
      out.chain.constraints = std::move(constraints);
      out.reports.push_back(
          {options.order_strategy == OrderStrategy::kOffloadSink
               ? "reorder-offload-sink"
               : "reorder-drop-early",
           detail});
    }
  }

  // --- Pass 2: adjacent fusion ----------------------------------------------
  if (options.fuse_adjacent) {
    std::vector<std::shared_ptr<const ir::ElementIr>> elements;
    std::vector<dsl::LocationConstraint> constraints;
    size_t i = 0;
    while (i < out.chain.elements.size()) {
      auto current = out.chain.elements[i];
      dsl::LocationConstraint constraint = out.chain.constraints[i];
      size_t j = i + 1;
      while (j < out.chain.elements.size() &&
             !current->IsFilter() && !out.chain.elements[j]->IsFilter() &&
             !current->IsCache() && !out.chain.elements[j]->IsCache() &&
             out.chain.constraints[j] == constraint &&
             out.chain.elements[j]->direction == current->direction) {
        auto fused = FuseElements(*current, *out.chain.elements[j]);
        if (!fused.ok()) break;
        out.reports.push_back(
            {"fuse-adjacent", current->name + " + " +
                                  out.chain.elements[j]->name + " -> " +
                                  fused->name});
        current = std::make_shared<const ir::ElementIr>(
            std::move(fused).value());
        ++j;
      }
      elements.push_back(std::move(current));
      constraints.push_back(constraint);
      i = j;
    }
    out.chain.elements = std::move(elements);
    out.chain.constraints = std::move(constraints);
  }

  // --- Pass 3: parallel grouping --------------------------------------------
  if (options.parallelize) {
    std::vector<const ir::ElementIr*> view;
    for (const auto& e : out.chain.elements) view.push_back(e.get());
    out.parallel_groups = ir::PartitionIntoParallelGroups(view);
    int max_group = out.parallel_groups.empty()
                        ? -1
                        : *std::max_element(out.parallel_groups.begin(),
                                            out.parallel_groups.end());
    if (max_group + 1 < static_cast<int>(out.chain.elements.size())) {
      out.reports.push_back(
          {"parallelize",
           std::to_string(out.chain.elements.size()) + " elements in " +
               std::to_string(max_group + 1) + " sequential group(s)"});
    }
  } else {
    out.parallel_groups.resize(out.chain.elements.size());
    for (size_t i = 0; i < out.parallel_groups.size(); ++i) {
      out.parallel_groups[i] = static_cast<int>(i);
    }
  }

  return out;
}

}  // namespace adn::compiler
