// Backends: lower an ElementIr onto a target platform (paper §4 Q2: "How to
// translate the high-level specifications to efficient distributed
// implementation across a range of hardware and software platforms? This
// includes both the low-level code (e.g., eBPF, P4) ...").
//
// Three targets beyond the native in-process engine:
//   - eBPF: in-kernel execution. Feasibility mirrors verifier reality: only
//     helper-backed functions, no unbounded state scans, floats only as
//     compare-with-literal (lowered to integer thresholds), map-backed
//     tables with key lookups.
//   - SmartNIC: general cores, anything native runs (at a clock scale).
//   - P4 switch: match-action only — read-only tables populated from the
//     control plane, no payload transforms, and every field the program
//     touches must sit inside the parse window (~200 B).
//
// EmitEbpfC / EmitP4 produce inspectable program text; execution in the
// simulator reuses the portable ElementInstance with the platform's cost
// scale (we do not ship a BPF JIT — the text is the artifact, the semantics
// are shared).
#pragma once

#include <string>

#include "ir/element_ir.h"
#include "rpc/wire.h"
#include "sim/cost_model.h"

namespace adn::compiler {

enum class TargetPlatform : uint8_t {
  kNative,    // RPC library / mRPC engine / user-space proxy
  kEbpf,      // sender/receiver kernel
  kSmartNic,  // NIC cores
  kP4Switch,  // programmable switch pipeline
};

std::string_view TargetPlatformName(TargetPlatform target);

struct FeasibilityReport {
  bool feasible = true;
  std::string reason;  // first blocking constraint when infeasible

  static FeasibilityReport Yes() { return {}; }
  static FeasibilityReport No(std::string why) {
    return {false, std::move(why)};
  }
};

FeasibilityReport CheckFeasible(const ir::ElementIr& element,
                                TargetPlatform target);

// For P4, additionally verify the fields the element reads fall within the
// switch parse window given the link's header layout.
FeasibilityReport CheckP4ParseDepth(const ir::ElementIr& element,
                                    const rpc::HeaderSpec& link_header,
                                    size_t parse_depth_bytes);

// Per-message execution cost of the element on the target, in simulated ns.
// `payload_bytes` sizes the per-byte UDF costs (compression etc.).
double EstimateCostNs(const ir::ElementIr& element, TargetPlatform target,
                      const sim::CostModel& model, size_t payload_bytes);

// Generated-code artifacts (text). Deterministic given the IR.
std::string EmitEbpfC(const ir::ElementIr& element);
std::string EmitP4(const ir::ElementIr& element,
                   const rpc::HeaderSpec& link_header);

}  // namespace adn::compiler
