// Top-level ADN compiler: DSL source -> optimized, deployable chains.
//
// Mirrors the paper's Figure 3 control-plane split: Compile() is the pure
// code path (parse, lower, optimize, synthesize headers, check platform
// feasibility); the runtime controller (src/controller) consumes the result
// to place processors and manage state.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "compiler/backend.h"
#include "compiler/chain_compile.h"
#include "compiler/header_gen.h"
#include "compiler/lower.h"
#include "compiler/passes.h"
#include "ir/program.h"

namespace adn::compiler {

struct CompileOptions {
  PassOptions passes;
  // Fields the caller application emits for this chain's RPCs. Used for
  // schema validation and header minimization. Empty => derive from the
  // union of element input schemas (permissive mode for tests/tools).
  rpc::Schema request_schema;
  // Fields the callee application reads; empty => all delivered fields.
  std::vector<std::string> app_reads;
};

struct CompiledElement {
  std::shared_ptr<const ir::ElementIr> ir;
  // Feasibility per target, precomputed for the controller's placement.
  FeasibilityReport ebpf;
  FeasibilityReport p4;
  // Emitted artifacts (only for feasible targets; native needs none).
  std::string ebpf_code;
  std::string p4_code;
};

struct CompiledChain {
  std::string name;
  std::string caller_service;
  std::string callee_service;
  std::vector<CompiledElement> elements;
  std::vector<dsl::LocationConstraint> constraints;
  std::vector<int> parallel_groups;
  ChainHeaders headers;
  std::vector<PassReport> pass_reports;

  // Schema the caller must emit (request_schema or the derived union).
  rpc::Schema request_schema;

  // Whole-chain compiled program (ir/program.h), field IDs seeded from the
  // wire-header field order. Null when any element is a filter (those run on
  // FilterOp stages, so the chain stays on per-stage execution).
  std::shared_ptr<const ir::ChainProgram> program;
};

struct CompiledProgram {
  std::vector<CompiledChain> chains;
  std::shared_ptr<const ir::FunctionRegistry> functions;

  const CompiledChain* FindChain(std::string_view name) const;
};

class Compiler {
 public:
  explicit Compiler(std::shared_ptr<const ir::FunctionRegistry> functions =
                        ir::FunctionRegistry::Builtins())
      : functions_(std::move(functions)) {}

  // Parse + lower + optimize + synthesize every chain in `source`.
  Result<CompiledProgram> CompileSource(std::string_view source,
                                        const CompileOptions& options) const;

  // Same, starting from an already-parsed program.
  Result<CompiledProgram> CompileProgram(const dsl::Program& program,
                                         const CompileOptions& options) const;

 private:
  Result<CompiledChain> CompileChain(const ChainIr& chain,
                                     const CompileOptions& options) const;

  std::shared_ptr<const ir::FunctionRegistry> functions_;
};

// Derive a permissive request schema: the union of all element input
// schemas of the chain (what the chain's first consumer could need).
rpc::Schema DeriveRequestSchema(const ChainIr& chain);

}  // namespace adn::compiler
