// Header synthesis: "we need to determine the minimum set of headers needed
// to satisfy the network requirements" (paper §4 Q2).
//
// For every cut point of a chain (between element i and i+1, or between the
// last element and the destination application) the minimal header is the
// set of RPC fields some downstream consumer still reads: later elements'
// read sets plus the fields the application itself consumes. Everything else
// is dead on that link and is not carried.
//
// Field order inside the spec is significant for hardware targets: fields
// read by switch/NIC-offloaded elements are placed first so they fall inside
// the device's parse window (the paper's 200-byte P4 example).
#pragma once

#include <vector>

#include "compiler/lower.h"
#include "rpc/wire.h"

namespace adn::compiler {

// Evolve the tuple schema across one element (what fields exist after it).
// Fails if the element reads a field the schema does not provide — this is
// the deploy-time check that an application actually emits what the chain
// needs.
Result<rpc::Schema> EvolveSchema(const rpc::Schema& in,
                                 const ir::ElementIr& element);

struct ChainHeaders {
  // link_specs[i] = header on the link after element i-1 and before element
  // i; link_specs[0] is app->first element; link_specs[n] is last->app.
  std::vector<rpc::HeaderSpec> link_specs;
  // Tuple schema at each position (schemas[0] = app request schema).
  std::vector<rpc::Schema> schemas;
};

// `app_request_schema`: fields the caller emits. `app_reads`: fields the
// callee consumes (defaults to everything that survives the chain).
// `priority_fields`: field names to front-load in every spec (offload
// targets' read sets); may be empty.
Result<ChainHeaders> ComputeChainHeaders(
    const ChainIr& chain, const rpc::Schema& app_request_schema,
    const std::vector<std::string>& app_reads = {},
    const std::vector<std::string>& priority_fields = {});

// Bytes of header+field metadata the standard layered stack (Ethernet + IP +
// TCP + HTTP/2 + gRPC framing + protobuf tags) spends for a message with the
// given field count — used by the header-size comparison experiment.
size_t LayeredStackHeaderBytes(size_t field_count);

}  // namespace adn::compiler
