// Lowering: dsl::Program (AST) -> typed IR with effect summaries.
//
// This is the front half of the ADN compiler (paper §5.2: "the compiler
// first converts the program into an intermediate representation"). Lowering
// resolves names, type-checks every expression, normalizes joins into
// probe/key form, computes each element's EffectSummary, and validates
// chains (referenced elements exist, directions are sane, filter operators
// are known).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "dsl/ast.h"
#include "ir/element_ir.h"
#include "ir/functions.h"

namespace adn::compiler {

struct ChainIr {
  std::string name;
  std::string caller_service;
  std::string callee_service;
  std::vector<std::shared_ptr<const ir::ElementIr>> elements;
  std::vector<dsl::LocationConstraint> constraints;  // parallel to elements
};

struct ProgramIr {
  std::vector<std::shared_ptr<const ir::ElementIr>> elements;
  std::vector<ChainIr> chains;
  std::shared_ptr<const ir::FunctionRegistry> functions;

  std::shared_ptr<const ir::ElementIr> FindElement(
      std::string_view name) const;
  const ChainIr* FindChain(std::string_view name) const;
};

// Filter operators the data plane implements (elements/filter_ops.h keeps
// the implementations; this list is the compile-time contract).
bool IsKnownFilterOp(std::string_view op);

Result<ProgramIr> LowerProgram(
    const dsl::Program& program,
    std::shared_ptr<const ir::FunctionRegistry> functions =
        ir::FunctionRegistry::Builtins());

// Lower a single element declaration (exposed for tests and tooling).
Result<ir::ElementIr> LowerElement(
    const dsl::ElementDecl& decl, const dsl::Program& program,
    const ir::FunctionRegistry& functions);

}  // namespace adn::compiler
