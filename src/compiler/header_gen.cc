#include "compiler/header_gen.h"

#include <algorithm>
#include <set>

namespace adn::compiler {

using rpc::Column;
using rpc::Schema;

Result<Schema> EvolveSchema(const Schema& in, const ir::ElementIr& element) {
  // Check the element's reads are satisfied.
  for (const std::string& f : element.effects.fields_read) {
    if (in.FindColumn(f) == nullptr) {
      return Error(ErrorCode::kNotFound,
                   "element '" + element.name + "' reads field '" + f +
                       "' which is not present at its position in the chain");
    }
  }
  if (element.IsFilter()) return in;  // filters don't alter the tuple

  Schema schema = in;
  for (const ir::StmtIr& stmt : element.statements) {
    if (stmt.kind != ir::StmtIr::Kind::kSelect) continue;
    const ir::SelectIr& sel = *stmt.select;
    Schema next;
    if (sel.passthrough) {
      next = schema;
      for (const auto& out : sel.outputs) {
        if (auto idx = next.IndexOf(out.name); idx.has_value()) {
          Schema rebuilt;
          for (size_t i = 0; i < next.columns().size(); ++i) {
            Column c = next.columns()[i];
            if (i == *idx) c.type = out.type;
            (void)rebuilt.AddColumn(std::move(c));
          }
          next = std::move(rebuilt);
        } else {
          (void)next.AddColumn({out.name, out.type, false});
        }
      }
    } else {
      for (const auto& out : sel.outputs) {
        if (next.FindColumn(out.name) == nullptr) {
          (void)next.AddColumn({out.name, out.type, false});
        }
      }
    }
    schema = std::move(next);
  }
  return schema;
}

Result<ChainHeaders> ComputeChainHeaders(
    const ChainIr& chain, const Schema& app_request_schema,
    const std::vector<std::string>& app_reads,
    const std::vector<std::string>& priority_fields) {
  ChainHeaders out;
  const size_t n = chain.elements.size();

  // Forward pass: schema at each position.
  out.schemas.push_back(app_request_schema);
  for (size_t i = 0; i < n; ++i) {
    ADN_ASSIGN_OR_RETURN(
        Schema next, EvolveSchema(out.schemas.back(), *chain.elements[i]));
    out.schemas.push_back(std::move(next));
  }

  // Application consumption set: explicit, or everything the chain delivers.
  std::set<std::string> final_needs;
  if (app_reads.empty()) {
    for (const Column& c : out.schemas.back().columns()) {
      if (c.name != std::string(ir::kDestinationField)) {
        final_needs.insert(c.name);
      }
    }
  } else {
    final_needs.insert(app_reads.begin(), app_reads.end());
  }

  // Backward pass: needed-fields set per link.
  // needs[i] = fields required on the link *into* element i (or into the app
  // for i == n).
  std::vector<std::set<std::string>> needs(n + 1);
  needs[n] = final_needs;
  for (size_t i = n; i-- > 0;) {
    needs[i] = needs[i + 1];
    const ir::ElementIr& e = *chain.elements[i];
    // Fields the element writes are produced here, not required upstream —
    // unless the write is a modification that also reads the field (the
    // read set captures that).
    for (const std::string& w : e.effects.fields_written) {
      needs[i].erase(w);
    }
    for (const std::string& r : e.effects.fields_read) {
      needs[i].insert(r);
    }
  }

  // Build a HeaderSpec per link, front-loading priority fields.
  out.link_specs.resize(n + 1);
  for (size_t i = 0; i <= n; ++i) {
    const Schema& schema = out.schemas[i];
    std::vector<Column> fields;
    auto add_if_needed = [&](const Column& c) {
      if (needs[i].count(c.name) == 0) return;
      for (const Column& existing : fields) {
        if (existing.name == c.name) return;
      }
      fields.push_back({c.name, c.type, false});
    };
    // Priority fields first (in given order), then schema order.
    for (const std::string& p : priority_fields) {
      if (const Column* c = schema.FindColumn(p); c != nullptr) {
        add_if_needed(*c);
      }
    }
    for (const Column& c : schema.columns()) add_if_needed(c);
    out.link_specs[i].fields = std::move(fields);
    // Pin the interned ids at generation time so codecs built from this spec
    // never intern (or scan) on the wire path.
    out.link_specs[i].ResolveFieldIds();
  }
  return out;
}

size_t LayeredStackHeaderBytes(size_t field_count) {
  // Ethernet 14 + IPv4 20 + TCP 32 (with timestamps) = 66 bytes of L2-L4.
  // HTTP/2: 9-byte frame header for HEADERS + 9 for DATA; HPACK-encoded
  // pseudo-headers and the grpc-* metadata set run ~120 bytes even when
  // indexed; gRPC message prefix 5 bytes; protobuf tag+len ~2 bytes/field.
  return 66 + 18 + 120 + 5 + 2 * field_count;
}

}  // namespace adn::compiler
