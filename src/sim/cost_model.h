// Calibrated per-stage cost table for the simulated testbed.
//
// The paper evaluates on two 10-core Xeon Gold 5215 machines (Ubuntu 20.04,
// Envoy v1.20, gRPC, mRPC over TCP). We do not have that testbed; we have a
// discrete-event simulator. Every constant below is the simulated CPU time a
// message spends in one stage, chosen from published measurements so that the
// *shape* of the results (who wins, by what rough factor) is inherited from
// the literature rather than invented:
//
//  - Service meshes add 2.7-7.1x latency and 1.6-7x CPU (paper §2, citing
//    SPRIGHT [52], Istio benchmarks [3,9,12], mesh dissection [66]).
//  - A dominant mesh cost is protocol parsing / (de)serialization at the
//    proxy, done twice per hop (paper §2, [66]).
//  - mRPC (NSDI '23 [25]) reaches ~10x lower RPC latency than gRPC+Envoy by
//    eliminating (un)marshalling between app and proxy.
//  - Unloaded gRPC+Envoy round trips on datacenter hardware are O(1 ms) once
//    multiple L7 filters are configured; bare kernel TCP RTT is O(25 us).
//
// Anything that can run for real does (serialization code in src/stack runs
// on actual bytes in the microbenches); this table only covers what a
// simulator must abstract: cycles on machines we do not have.
#pragma once

#include <cstdint>

#include "sim/simulator.h"

namespace adn::sim {

struct CostModel {
  // --- Application / RPC library (gRPC-like baseline) ----------------------
  // Client-side cost to serialize a small request into protobuf wire format,
  // frame it into HTTP/2 DATA+HEADERS, and issue the socket write.
  SimTime grpc_serialize_ns = 30'000;
  // Matching deserialize on receipt (HTTP/2 parse + proto decode).
  SimTime grpc_deserialize_ns = 25'000;
  // Per-byte cost of proto encode/decode (payload-size dependent part).
  double grpc_per_byte_ns = 2.0;
  // Application handler think time (echo server body).
  SimTime app_handler_ns = 2'000;

  // --- Kernel network stack -------------------------------------------------
  // One traversal of the kernel TCP/IP stack (syscall, skb alloc, qdisc,
  // iptables REDIRECT rules that divert traffic into the sidecar).
  SimTime kernel_crossing_ns = 9'000;
  // Loopback hop between an app and its colocated sidecar (two crossings
  // collapsed; iptables redirect is charged on top).
  SimTime iptables_redirect_ns = 2'500;

  // --- Envoy-like sidecar proxy ---------------------------------------------
  // Fixed per-message proxy overhead: accept from kernel, HTTP/2 frame
  // parse, header decode into a header map, route match, stats update,
  // re-encode, write back to kernel.
  SimTime envoy_base_ns = 170'000;
  // Per-byte payload copy/inspection inside the proxy.
  double envoy_per_byte_ns = 1.5;
  // Generic (knob-heavy) filter costs per message. These are deliberately
  // larger than ADN's compiled elements: Envoy filters evaluate config,
  // match rules expressed over generic header maps, and format strings.
  SimTime envoy_filter_logging_ns = 60'000;
  SimTime envoy_filter_acl_ns = 40'000;
  SimTime envoy_filter_fault_ns = 25'000;
  SimTime envoy_filter_lb_ns = 30'000;
  SimTime envoy_filter_compress_per_byte_x10 = 28;  // 2.8 ns/byte
  // Envoy worker pool width per sidecar (Envoy defaults to one worker per
  // core; the paper's machines have 10 physical cores/socket, but sidecar
  // deployments cap workers — we model 8, one per physical core granted to the sidecar).
  int envoy_workers = 8;

  // HTTP/2 flow control: the gRPC channel through two proxies sustains only
  // a bounded number of in-flight RPCs before the connection window stalls
  // the sender (observed in mesh benchmarks as in-flight far below the
  // client's nominal concurrency).
  int grpc_channel_window = 24;

  // --- mRPC-like managed RPC service ---------------------------------------
  // App <-> mRPC service hop over a shared-memory ring (enqueue+dequeue).
  SimTime shm_hop_ns = 600;
  // Engine dispatch: pick up a typed message, walk the engine chain
  // scaffolding (excludes per-element processing, charged separately).
  SimTime mrpc_engine_dispatch_ns = 3'200;
  // TCP transport used by mRPC between machines (paper §6): one kernel
  // crossing each side, but no HTTP/2/proto re-parse.
  SimTime mrpc_tcp_tx_ns = 5'000;
  SimTime mrpc_tcp_rx_ns = 5'000;
  // mRPC service worker width (one service runtime core per machine in the
  // paper's deployment).
  int mrpc_workers = 1;
  // Encoding/decoding the minimal ADN wire format (compiler-synthesized
  // headers; a fraction of full protocol marshalling).
  SimTime adn_codec_ns = 800;

  // --- Compiled ADN element execution (on a software processor) ------------
  // Per-IR-op cost when a generated plan is tree-walked by the reference
  // interpreter (string-compared field lookups, recursive expression walk).
  SimTime adn_op_ns = 400;
  // Per-instruction cost of the flat ChainProgram bytecode tier (interned
  // field IDs, indexed table handles, no per-node dispatch): cheaper than an
  // interpreter op, which is the compiled tier's whole point.
  SimTime adn_compiled_instr_ns = 300;
  SimTime adn_handcoded_discount_num = 89;  // hand-coded = op cost * 0.89
  // Per-byte UDF costs (compression modeled after LZ4-class codecs).
  double udf_compress_per_byte_ns = 1.9;
  double udf_decompress_per_byte_ns = 0.9;
  double udf_encrypt_per_byte_ns = 2.4;

  // --- Response cache (cache element) ---------------------------------------
  // Hit-path work: key hash, residency lookup, field graft from the stored
  // flat blob. The real number comes from bench_cache on actual hardware;
  // this constant only feeds the simulated tiers and the placement planner.
  SimTime cache_lookup_ns = 900;
  // Fill on the response path: flat-encode the response, ARC bookkeeping,
  // table insert.
  SimTime cache_fill_ns = 2'500;
  // Planning-time hit-rate prior the placement pass uses before live
  // counters exist (zipf-ish request mixes land around here; the controller
  // can re-plan once cache_hits()/cache_misses() report reality).
  double cache_default_hit_rate = 0.6;

  // --- Alternative processors (paper §3, Figure 2) --------------------------
  // eBPF in-kernel execution: cheaper per op (no user crossing) but verifier
  // constraints apply (compiler/ebpf_backend.h).
  double ebpf_op_scale = 0.75;
  // SmartNIC cores: slower clock than host cores.
  double smartnic_op_scale = 1.6;
  int smartnic_cores = 4;
  // Programmable switch: fixed pipeline latency, match-action only; parse
  // depth limit checked by the P4 backend (first ~200B of each packet).
  SimTime p4_pipeline_ns = 900;
  size_t p4_parse_depth_bytes = 200;

  // --- Wire ------------------------------------------------------------------
  SimTime wire_propagation_ns = 3'000;  // same-rack RTT/2 ~ 3us
  double wire_bandwidth_gbps = 25.0;

  // Cost of one message through a compiled element segment: instruction
  // count times the bytecode step cost, plus the segment's payload-size-
  // dependent UDF work. All three execution layers (mRPC engine stages, the
  // mesh-path ADN filter, simulator stations) key compiled cost off this.
  double CompiledElementCostNs(uint32_t instr_count, double per_byte_ns,
                               size_t payload_bytes) const;

  static const CostModel& Default();
};

}  // namespace adn::sim
