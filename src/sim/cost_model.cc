#include "sim/cost_model.h"

namespace adn::sim {

const CostModel& CostModel::Default() {
  static const CostModel model;
  return model;
}

}  // namespace adn::sim
