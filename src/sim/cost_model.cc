#include "sim/cost_model.h"

namespace adn::sim {

double CostModel::CompiledElementCostNs(uint32_t instr_count,
                                        double per_byte_ns,
                                        size_t payload_bytes) const {
  return static_cast<double>(instr_count) *
             static_cast<double>(adn_compiled_instr_ns) +
         per_byte_ns * static_cast<double>(payload_bytes);
}

const CostModel& CostModel::Default() {
  static const CostModel model;
  return model;
}

}  // namespace adn::sim
