#include "sim/simulator.h"

#include <cassert>

namespace adn::sim {

void Simulator::At(SimTime t, std::function<void()> fn) {
  assert(t >= now_ && "cannot schedule into the past");
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

bool Simulator::RunOne() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; the handler may schedule new events,
  // so copy out before popping.
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.time;
  ++executed_;
  ev.fn();
  return true;
}

void Simulator::Run() {
  while (RunOne()) {
  }
}

void Simulator::RunUntil(SimTime t) {
  while (!queue_.empty() && queue_.top().time <= t) {
    RunOne();
  }
  if (now_ < t) now_ = t;
}

}  // namespace adn::sim
