// Single-threaded discrete-event simulator.
//
// All end-to-end experiments (Figure 5, Figure 2 configurations, scaling)
// run on this substrate: hosts, kernels, proxies, NICs and switches are
// modeled as CPU stations and links whose per-message costs come from the
// calibrated table in cost_model.h. Determinism: ties are broken by a
// monotonically increasing sequence number, so a given seed always produces
// the same event order.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace adn::sim {

// Simulated time in nanoseconds since simulation start.
using SimTime = int64_t;

inline constexpr SimTime kNanosPerMicro = 1'000;
inline constexpr SimTime kNanosPerMilli = 1'000'000;
inline constexpr SimTime kNanosPerSecond = 1'000'000'000;

inline constexpr double ToMicros(SimTime t) {
  return static_cast<double>(t) / kNanosPerMicro;
}

class Simulator {
 public:
  SimTime now() const { return now_; }

  // Schedule fn at absolute simulated time t (>= now).
  void At(SimTime t, std::function<void()> fn);
  // Schedule fn after a delay.
  void After(SimTime delay, std::function<void()> fn) {
    At(now_ + delay, std::move(fn));
  }

  // Execute the next event. Returns false if none remain.
  bool RunOne();
  // Run until the event queue is empty.
  void Run();
  // Run events with time <= t, then set now to t.
  void RunUntil(SimTime t);

  size_t pending_events() const { return queue_.size(); }
  uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace adn::sim
