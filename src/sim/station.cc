#include "sim/station.h"

#include <algorithm>
#include <cassert>

#include "obs/metrics.h"

namespace adn::sim {

CpuStation::CpuStation(Simulator* sim, std::string name, int width)
    : sim_(sim), name_(std::move(name)), width_(width) {
  assert(width >= 1);
  server_free_.assign(static_cast<size_t>(width), 0);
}

SimTime CpuStation::Submit(SimTime cost, std::function<void()> done) {
  assert(cost >= 0);
  // Pick the server that frees up earliest.
  auto it = std::min_element(server_free_.begin(), server_free_.end());
  SimTime start = std::max(sim_->now(), *it);
  SimTime end = start + cost;
  *it = end;
  ++jobs_;
  busy_ += cost;
  max_queue_delay_ = std::max(max_queue_delay_, start - sim_->now());
  if (obs::Enabled()) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
    const std::string label = "station=\"" + name_ + "\"";
    reg.GetCounter("adn_sim_jobs_total", label).Inc();
    reg.GetCounter("adn_sim_busy_ns_total", label)
        .Inc(static_cast<uint64_t>(cost));
    reg.GetHistogram("adn_sim_queue_delay_ns", label)
        .Observe(static_cast<double>(start - sim_->now()));
  }
  if (done) {
    sim_->At(end, std::move(done));
  }
  return end;
}

void CpuStation::SetWidth(int width) {
  assert(width >= 1);
  if (width == width_) return;
  if (width > width_) {
    server_free_.resize(static_cast<size_t>(width), sim_->now());
  } else {
    std::sort(server_free_.begin(), server_free_.end());
    server_free_.resize(static_cast<size_t>(width));
  }
  width_ = width;
}

double CpuStation::Utilization(SimTime horizon) const {
  if (horizon <= 0) return 0.0;
  return static_cast<double>(busy_) /
         (static_cast<double>(horizon) * width_);
}

void CpuStation::ResetStats() {
  jobs_ = 0;
  busy_ = 0;
  max_queue_delay_ = 0;
}

Link::Link(Simulator* sim, std::string name, SimTime propagation_ns,
           double bandwidth_gbps)
    : sim_(sim),
      name_(std::move(name)),
      propagation_(propagation_ns),
      ns_per_byte_(bandwidth_gbps > 0 ? 8.0 / bandwidth_gbps : 0.0) {}

SimTime Link::Send(size_t bytes, std::function<void()> deliver) {
  SimTime tx_cost =
      static_cast<SimTime>(ns_per_byte_ * static_cast<double>(bytes));
  SimTime start = std::max(sim_->now(), free_at_);
  SimTime tx_done = start + tx_cost;
  free_at_ = tx_done;
  SimTime arrival = tx_done + propagation_;
  ++messages_;
  bytes_total_ += bytes;
  if (obs::Enabled()) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
    const std::string label = "link=\"" + name_ + "\"";
    reg.GetCounter("adn_sim_link_messages_total", label).Inc();
    reg.GetCounter("adn_sim_link_bytes_total", label).Inc(bytes);
  }
  if (deliver) {
    sim_->At(arrival, std::move(deliver));
  }
  return arrival;
}

}  // namespace adn::sim
