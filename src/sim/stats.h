// Latency/throughput accounting shared by all end-to-end experiments.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulator.h"

namespace adn::sim {

// Not thread-safe: each run records from one driver thread (multi-worker
// benches keep one recorder per worker and merge at report time).
class LatencyRecorder {
 public:
  void Record(SimTime latency_ns) {
    samples_.push_back(latency_ns);
    sorted_valid_ = false;
  }

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double MeanMicros() const;
  // q in [0,1]; linear interpolation between order statistics. The sorted
  // sample vector is cached across calls (every run asks for at least p50
  // and p99), so only the first call after a Record pays the sort.
  double PercentileMicros(double q) const;
  double MinMicros() const;
  double MaxMicros() const;

  void Clear() {
    samples_.clear();
    sorted_.clear();
    sorted_valid_ = true;
  }

 private:
  const std::vector<SimTime>& Sorted() const;

  std::vector<SimTime> samples_;
  // Sort-once cache for the percentile family; rebuilt lazily after Record.
  mutable std::vector<SimTime> sorted_;
  mutable bool sorted_valid_ = true;
};

struct RunStats {
  std::string label;
  uint64_t completed = 0;
  uint64_t dropped = 0;        // e.g. ACL denies, fault injections
  double duration_us = 0.0;
  double throughput_krps = 0.0;
  double mean_latency_us = 0.0;
  double p50_latency_us = 0.0;
  double p99_latency_us = 0.0;
  // Host CPU consumed per successful RPC (ns) — captures the offload wins of
  // Figure 2 configurations 2/3 where processing leaves the host.
  double host_cpu_per_rpc_ns = 0.0;

  std::string ToString() const;
};

}  // namespace adn::sim
