// Latency/throughput accounting shared by all end-to-end experiments.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulator.h"

namespace adn::sim {

class LatencyRecorder {
 public:
  void Record(SimTime latency_ns) { samples_.push_back(latency_ns); }

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double MeanMicros() const;
  // q in [0,1]; nearest-rank on a sorted copy.
  double PercentileMicros(double q) const;
  double MinMicros() const;
  double MaxMicros() const;

  void Clear() { samples_.clear(); }

 private:
  std::vector<SimTime> samples_;
};

struct RunStats {
  std::string label;
  uint64_t completed = 0;
  uint64_t dropped = 0;        // e.g. ACL denies, fault injections
  double duration_us = 0.0;
  double throughput_krps = 0.0;
  double mean_latency_us = 0.0;
  double p50_latency_us = 0.0;
  double p99_latency_us = 0.0;
  // Host CPU consumed per successful RPC (ns) — captures the offload wins of
  // Figure 2 configurations 2/3 where processing leaves the host.
  double host_cpu_per_rpc_ns = 0.0;

  std::string ToString() const;
};

}  // namespace adn::sim
