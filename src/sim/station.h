// CpuStation and Link: the two queueing resources of the simulated testbed.
//
// A CpuStation models a compute context with `width` parallel servers — one
// application thread (width 1), an Envoy worker pool (width = nproc), a
// SmartNIC core group, or a switch pipeline (effectively infinite width with
// a fixed pipeline delay). Work is FIFO, non-preemptive.
//
// A Link models a wire: serialization delay (bytes / bandwidth) occupies the
// link FIFO; propagation delay is added after transmission completes.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.h"

namespace adn::sim {

class CpuStation {
 public:
  CpuStation(Simulator* sim, std::string name, int width);

  // Enqueue a job costing `cost` ns of one server's time; `done` runs at
  // completion time. Returns the completion time.
  SimTime Submit(SimTime cost, std::function<void()> done);

  const std::string& name() const { return name_; }
  int width() const { return width_; }

  // Resize the server pool in place (the controller's scale-out/in acting
  // on a live station). Growing adds servers that are idle from now on;
  // shrinking keeps the servers that free up earliest, so work already
  // accepted still completes (jobs are never lost, matching the
  // pause-drain-resume migration model that brackets a resize).
  void SetWidth(int width);

  // --- Statistics -----------------------------------------------------------
  uint64_t jobs_completed_submitted() const { return jobs_; }
  SimTime busy_time() const { return busy_; }
  // Utilization over [0, horizon] given `width` servers.
  double Utilization(SimTime horizon) const;
  // Largest backlog (jobs waiting beyond server availability) seen.
  SimTime max_queue_delay() const { return max_queue_delay_; }

  void ResetStats();

 private:
  Simulator* sim_;
  std::string name_;
  int width_;
  std::vector<SimTime> server_free_;  // earliest idle time per server
  uint64_t jobs_ = 0;
  SimTime busy_ = 0;
  SimTime max_queue_delay_ = 0;
};

class Link {
 public:
  // bandwidth_gbps <= 0 means infinite bandwidth (no serialization delay).
  Link(Simulator* sim, std::string name, SimTime propagation_ns,
       double bandwidth_gbps);

  // Transmit `bytes`; `deliver` runs at the receiver when the last byte
  // arrives. Returns delivery time.
  SimTime Send(size_t bytes, std::function<void()> deliver);

  const std::string& name() const { return name_; }
  uint64_t messages_sent() const { return messages_; }
  uint64_t bytes_sent() const { return bytes_total_; }

 private:
  Simulator* sim_;
  std::string name_;
  SimTime propagation_;
  double ns_per_byte_;  // 0 => infinite bandwidth
  SimTime free_at_ = 0;
  uint64_t messages_ = 0;
  uint64_t bytes_total_ = 0;
};

}  // namespace adn::sim
