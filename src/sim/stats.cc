#include "sim/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace adn::sim {

double LatencyRecorder::MeanMicros() const {
  if (samples_.empty()) return 0.0;
  double total = 0.0;
  for (SimTime s : samples_) total += static_cast<double>(s);
  return total / static_cast<double>(samples_.size()) / kNanosPerMicro;
}

double LatencyRecorder::PercentileMicros(double q) const {
  if (samples_.empty()) return 0.0;
  std::vector<SimTime> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  double rank = q * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = rank - static_cast<double>(lo);
  double v = static_cast<double>(sorted[lo]) * (1.0 - frac) +
             static_cast<double>(sorted[hi]) * frac;
  return v / kNanosPerMicro;
}

double LatencyRecorder::MinMicros() const {
  if (samples_.empty()) return 0.0;
  return ToMicros(*std::min_element(samples_.begin(), samples_.end()));
}

double LatencyRecorder::MaxMicros() const {
  if (samples_.empty()) return 0.0;
  return ToMicros(*std::max_element(samples_.begin(), samples_.end()));
}

std::string RunStats::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%-28s rate=%8.1f krps  mean=%9.1f us  p50=%9.1f us  "
                "p99=%9.1f us  ok=%llu drop=%llu",
                label.c_str(), throughput_krps, mean_latency_us,
                p50_latency_us, p99_latency_us,
                static_cast<unsigned long long>(completed),
                static_cast<unsigned long long>(dropped));
  return buf;
}

}  // namespace adn::sim
