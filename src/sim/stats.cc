#include "sim/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace adn::sim {

double LatencyRecorder::MeanMicros() const {
  if (samples_.empty()) return 0.0;
  double total = 0.0;
  for (SimTime s : samples_) total += static_cast<double>(s);
  return total / static_cast<double>(samples_.size()) / kNanosPerMicro;
}

const std::vector<SimTime>& LatencyRecorder::Sorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
  return sorted_;
}

double LatencyRecorder::PercentileMicros(double q) const {
  if (samples_.empty()) return 0.0;
  const std::vector<SimTime>& sorted = Sorted();
  double rank = q * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = rank - static_cast<double>(lo);
  double v = static_cast<double>(sorted[lo]) * (1.0 - frac) +
             static_cast<double>(sorted[hi]) * frac;
  return v / kNanosPerMicro;
}

double LatencyRecorder::MinMicros() const {
  if (samples_.empty()) return 0.0;
  return ToMicros(*std::min_element(samples_.begin(), samples_.end()));
}

double LatencyRecorder::MaxMicros() const {
  if (samples_.empty()) return 0.0;
  return ToMicros(*std::max_element(samples_.begin(), samples_.end()));
}

std::string RunStats::ToString() const {
  // Sized snprintf: measure first, then format into an exactly-sized string,
  // so arbitrarily long labels (e.g. multi-worker bench labels) never
  // truncate.
  constexpr char kFormat[] =
      "%-28s rate=%8.1f krps  mean=%9.1f us  p50=%9.1f us  "
      "p99=%9.1f us  ok=%llu drop=%llu";
  const auto format = [&](char* buf, size_t size) {
    return std::snprintf(buf, size, kFormat, label.c_str(), throughput_krps,
                         mean_latency_us, p50_latency_us, p99_latency_us,
                         static_cast<unsigned long long>(completed),
                         static_cast<unsigned long long>(dropped));
  };
  const int needed = format(nullptr, 0);
  if (needed <= 0) return label;
  std::string out(static_cast<size_t>(needed), '\0');
  format(out.data(), out.size() + 1);
  return out;
}

}  // namespace adn::sim
