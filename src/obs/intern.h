// Observability name interning: the tracing half of the zero-allocation
// story (same pattern as rpc/intern.h, which interns message field names).
//
// Span names, processor names and event names recur millions of times on a
// hot data plane; carrying them as std::string per record is what broke the
// allocs/msg == 0 invariant when tracing was on. Each distinct name is
// interned to a small dense NameId once — at registration/deploy time — and
// every trace record (obs::Span, obs::TraceEvent) carries ids only.
//
// Lifetime and concurrency mirror rpc::FieldInterner:
//  - The table is process-global and append-only; ids are stable for the
//    life of the process and never reused. Id 0 is always the empty name.
//  - InternName() takes a mutex (registration-time paths only).
//  - NameOfId() is lock-free: slots are fully written before the size
//    counter is released, so any id an observer legitimately holds resolves
//    without synchronization and the returned view never dangles.
#pragma once

#include <cstdint>
#include <string_view>

namespace adn::obs {

using NameId = uint32_t;

// Distinct names a process may intern (span names, processor names, event
// names). Generous: real deployments use a few dozen; hitting this cap
// aborts with a diagnostic.
inline constexpr size_t kMaxInternedNames = 4096;

// Id for `name`, interning it on first sight. Thread-safe; registration-time
// only (takes a mutex).
NameId InternName(std::string_view name);

// Name for an id previously returned by InternName(). Lock-free; safe on the
// hot path and from any thread.
std::string_view NameOfId(NameId id);

// Number of interned names (monotonic snapshot). Lock-free.
size_t InternedNameCount();

}  // namespace adn::obs
