#include "obs/window.h"

namespace adn::obs {

namespace {

std::string Key(std::string_view name, std::string_view labels) {
  std::string key(name);
  key += '|';
  key += labels;
  return key;
}

}  // namespace

SnapshotHistogram SnapshotHistogram::FromSample(const MetricSample& sample) {
  SnapshotHistogram h;
  h.upper_bounds = sample.upper_bounds;
  h.bucket_counts = sample.bucket_counts;
  h.count = sample.count;
  h.sum = sample.value;
  return h;
}

SnapshotHistogram SnapshotHistogram::DeltaSince(
    const SnapshotHistogram& earlier) const {
  if (earlier.bucket_counts.empty()) return *this;
  if (earlier.bucket_counts.size() != bucket_counts.size() ||
      earlier.upper_bounds != upper_bounds) {
    return *this;
  }
  SnapshotHistogram d;
  d.upper_bounds = upper_bounds;
  d.bucket_counts.reserve(bucket_counts.size());
  for (size_t i = 0; i < bucket_counts.size(); ++i) {
    d.bucket_counts.push_back(bucket_counts[i] - earlier.bucket_counts[i]);
  }
  d.count = count - earlier.count;
  d.sum = sum - earlier.sum;
  return d;
}

double SnapshotHistogram::Quantile(double q) const {
  return BucketQuantile(upper_bounds, bucket_counts, count, q);
}

void WindowedSeries::Ingest(const MetricsSnapshot& snapshot,
                            int64_t window_start, int64_t window_end) {
  SeriesWindow window;
  window.start = window_start;
  window.end = window_end;
  for (const MetricSample& s : snapshot.samples) {
    const std::string key = Key(s.name, s.labels);
    switch (s.kind) {
      case MetricKind::kCounter: {
        const uint64_t cur = static_cast<uint64_t>(s.value);
        auto [it, fresh] = last_counter_.try_emplace(key, cur);
        // First observation seeds the baseline; unsigned subtraction stays
        // correct across one 2^64 wrap (the Counter contract).
        window.counter_deltas[key] = fresh ? 0 : cur - it->second;
        it->second = cur;
        break;
      }
      case MetricKind::kGauge:
        window.gauges[key] = s.value;
        break;
      case MetricKind::kHistogram: {
        SnapshotHistogram cur = SnapshotHistogram::FromSample(s);
        auto [it, fresh] = last_histogram_.try_emplace(key, cur);
        if (fresh) {
          window.histogram_deltas[key] = cur.DeltaSince(cur);  // zero delta
        } else {
          window.histogram_deltas[key] = cur.DeltaSince(it->second);
          it->second = std::move(cur);
        }
        break;
      }
    }
  }
  windows_.push_back(std::move(window));
  while (windows_.size() > keep_windows_) windows_.pop_front();
}

uint64_t WindowedSeries::CounterDelta(std::string_view name,
                                      std::string_view labels) const {
  if (windows_.empty()) return 0;
  const auto& deltas = windows_.back().counter_deltas;
  auto it = deltas.find(Key(name, labels));
  return it == deltas.end() ? 0 : it->second;
}

double WindowedSeries::CounterRatePerSec(std::string_view name,
                                         std::string_view labels) const {
  if (windows_.empty()) return 0.0;
  const SeriesWindow& w = windows_.back();
  const int64_t span = w.end - w.start;
  if (span <= 0) return 0.0;
  return static_cast<double>(CounterDelta(name, labels)) /
         (static_cast<double>(span) / 1e9);
}

double WindowedSeries::GaugeValue(std::string_view name,
                                  std::string_view labels) const {
  if (windows_.empty()) return 0.0;
  const auto& gauges = windows_.back().gauges;
  auto it = gauges.find(Key(name, labels));
  return it == gauges.end() ? 0.0 : it->second;
}

const SnapshotHistogram* WindowedSeries::HistogramDelta(
    std::string_view name, std::string_view labels) const {
  if (windows_.empty()) return nullptr;
  const auto& hists = windows_.back().histogram_deltas;
  auto it = hists.find(Key(name, labels));
  return it == hists.end() ? nullptr : &it->second;
}

std::string WindowedSeries::FirstLabels(std::string_view name) const {
  if (windows_.empty()) return "";
  const SeriesWindow& w = windows_.back();
  const std::string prefix = std::string(name) + "|";
  auto scan = [&](const auto& map) -> const std::string* {
    for (const auto& [key, value] : map) {
      if (key.compare(0, prefix.size(), prefix) == 0) return &key;
    }
    return nullptr;
  };
  const std::string* key = scan(w.counter_deltas);
  if (key == nullptr) key = scan(w.gauges);
  if (key == nullptr) key = scan(w.histogram_deltas);
  return key == nullptr ? "" : key->substr(prefix.size());
}

}  // namespace adn::obs
