// Low-overhead metrics registry (the data-plane half of the paper's Figure 3
// telemetry plane: "Each processor ... periodically sends reports of
// logging, tracing, and runtime statistical information back to the
// controller").
//
// Design contract (documented for operators in docs/OBSERVABILITY.md):
//
//  - The hot path is lock-free: instruments are registered once (mutex held
//    only at registration) and return stable references; Inc()/Set()/
//    Observe() are single relaxed atomics. Node-based storage (std::deque)
//    guarantees instrument addresses never move after registration.
//  - Reads are snapshot-on-read: Snapshot() walks the registry under the
//    registration mutex and copies every atomic once, so exporters never
//    block writers.
//  - The whole subsystem sits behind one master kill switch (obs::Enabled());
//    instrumented call sites check it with a single relaxed load and skip
//    all work when off, which is what keeps fig5 throughput within noise of
//    the uninstrumented build. Compiling with -DADN_OBS_DISABLED turns the
//    switch into a constant false so the optimizer removes the sites
//    entirely.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace adn::obs {

// --- Master kill switch -------------------------------------------------------

#ifdef ADN_OBS_DISABLED
inline constexpr bool Enabled() { return false; }
inline void SetEnabled(bool) {}
#else
namespace internal {
inline std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> flag{false};
  return flag;
}
}  // namespace internal

// Default off: the data plane pays one relaxed load + branch per
// instrumented site and nothing else.
inline bool Enabled() {
  return internal::EnabledFlag().load(std::memory_order_relaxed);
}
inline void SetEnabled(bool on) {
  internal::EnabledFlag().store(on, std::memory_order_relaxed);
}
#endif

// --- Instruments --------------------------------------------------------------

// Monotonic event count. uint64_t with wraparound semantics: increments are
// relaxed fetch_adds, so the counter wraps mod 2^64 instead of saturating
// or trapping (consumers diff successive snapshots, which stays correct
// across one wrap).
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Last-written point-in-time value (utilization, queue depth, widths).
class Gauge {
 public:
  void Set(double v) {
    bits_.store(ToBits(v), std::memory_order_relaxed);
  }
  void Add(double delta) {
    // Relaxed CAS loop; gauges are low-frequency (per report window, not per
    // message), so contention is negligible.
    uint64_t cur = bits_.load(std::memory_order_relaxed);
    while (!bits_.compare_exchange_weak(cur, ToBits(FromBits(cur) + delta),
                                        std::memory_order_relaxed)) {
    }
  }
  double Value() const {
    return FromBits(bits_.load(std::memory_order_relaxed));
  }

 private:
  static uint64_t ToBits(double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    return bits;
  }
  static double FromBits(uint64_t bits) {
    double v;
    __builtin_memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::atomic<uint64_t> bits_{0};
};

// Fixed-bucket histogram with Prometheus "le" semantics: bucket i counts
// observations v <= upper_bounds[i]; one implicit +Inf bucket catches the
// rest. Bounds are fixed at registration, so Observe is a linear scan over
// a handful of cached doubles plus one relaxed increment — no allocation,
// no locks.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double v);

  // Batched observe: record `n` observations of value `v` with one bucket
  // scan and three relaxed atomics — the burst-mode delta (one call per
  // element per burst, v = the burst-amortized per-lane value, n = lanes).
  // Count/sum/bucket totals advance exactly as n Observe(v) calls would.
  void ObserveN(double v, uint64_t n);

  // Latency layout used by every *_ns histogram in the repo: exponential
  // 100ns .. 10ms, 16 finite buckets (+Inf implicit).
  static const std::vector<double>& DefaultLatencyBucketsNs();

  const std::vector<double>& upper_bounds() const { return upper_bounds_; }
  // Count in finite bucket i (i < upper_bounds().size()) or the +Inf
  // bucket (i == upper_bounds().size()).
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const;

  // Linear-interpolated quantile estimate from the bucket counts (q in
  // [0,1]); returns 0 when empty. Values beyond the last finite bound clamp
  // to it.
  double Quantile(double q) const;

 private:
  std::vector<double> upper_bounds_;
  // One slot per finite bucket plus the +Inf bucket.
  std::deque<std::atomic<uint64_t>> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_bits_{0};  // double bits, CAS-accumulated
};

// --- Registry -----------------------------------------------------------------

enum class MetricKind : uint8_t { kCounter, kGauge, kHistogram };
std::string_view MetricKindName(MetricKind kind);

// One metric read at snapshot time.
struct MetricSample {
  std::string name;
  std::string labels;  // canonical 'key="value",key2="value2"' or empty
  MetricKind kind = MetricKind::kCounter;
  double value = 0;  // counter value / gauge value / histogram sum
  // Histogram-only:
  uint64_t count = 0;
  std::vector<double> upper_bounds;
  std::vector<uint64_t> bucket_counts;  // size = upper_bounds.size() + 1
};

struct MetricsSnapshot {
  std::vector<MetricSample> samples;

  const MetricSample* Find(std::string_view name,
                           std::string_view labels = "") const;
};

// Names + label sets are registered once and the returned instrument
// reference stays valid for the registry's lifetime. Re-registering the
// same (name, labels) returns the same instrument, so call sites may cache
// the pointer or re-resolve freely.
class MetricsRegistry {
 public:
  Counter& GetCounter(std::string_view name, std::string_view labels = "");
  Gauge& GetGauge(std::string_view name, std::string_view labels = "");
  // `upper_bounds` is consulted only on first registration.
  Histogram& GetHistogram(std::string_view name, std::string_view labels = "",
                          const std::vector<double>& upper_bounds =
                              Histogram::DefaultLatencyBucketsNs());

  MetricsSnapshot Snapshot() const;

  // Distinct metric names currently registered (label sets collapsed) —
  // the set docs/OBSERVABILITY.md must enumerate (enforced by test_obs).
  std::vector<std::string> MetricNames() const;

  // Drop every instrument from the exported set. Outstanding references
  // stay *valid* — retired entries are parked (never freed) rather than
  // destroyed, so a data-plane thread still holding a Counter& may keep
  // incrementing it without UB; its writes simply stop being exported.
  // Each Reset leaks the retired generation by design (tests and benches
  // only); call sites that cached instrument pointers must re-resolve to
  // appear in new snapshots.
  void Reset();

  // The process-wide registry all built-in instrumentation writes to.
  static MetricsRegistry& Default();

 private:
  struct Entry {
    std::string name;
    std::string labels;
    MetricKind kind;
    Counter counter;
    Gauge gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* FindOrNull(std::string_view name, std::string_view labels,
                    MetricKind kind);

  mutable std::mutex mu_;
  std::deque<Entry> entries_;  // node-based: addresses stable forever
  // Generations retired by Reset(). Moving the deque moves only its control
  // block — every Entry keeps its address — so instrument references handed
  // out before the Reset stay writable for the registry's lifetime.
  std::vector<std::deque<Entry>> retired_;
};

// Linear-interpolated quantile over Prometheus "le" bucket counts — the one
// implementation behind Histogram::Quantile and SnapshotHistogram::Quantile
// (obs/window.h). `bucket_counts` holds one slot per finite bound plus the
// +Inf bucket; q is clamped to [0,1]. Returns 0 when count is 0; a quantile
// landing in the +Inf bucket clamps to the last finite bound.
double BucketQuantile(const std::vector<double>& upper_bounds,
                      const std::vector<uint64_t>& bucket_counts,
                      uint64_t count, double q);

// Monotonic wall-clock nanoseconds for span/latency timing (steady_clock).
int64_t NowNs();

}  // namespace adn::obs
