#include "obs/intern.h"

#include <array>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <unordered_map>

namespace adn::obs {

namespace {

// Storage layout mirrors rpc::FieldInterner: names is a fixed array of
// std::string slots so a concurrent InternName() never moves memory a
// lock-free NameOfId() is reading. A slot is fully written BEFORE count is
// released, so any id <= a count an observer has seen refers to an
// immutable, completed slot.
struct Interner {
  std::mutex mu;
  std::unordered_map<std::string, NameId> by_name;  // guarded by mu
  std::array<std::string, kMaxInternedNames> names;
  std::atomic<size_t> count{0};

  Interner() {
    // Id 0 is the empty name, so default-constructed records resolve to "".
    by_name.emplace("", 0);
    count.store(1, std::memory_order_release);
  }
};

Interner& Global() {
  static Interner interner;
  return interner;
}

}  // namespace

NameId InternName(std::string_view name) {
  Interner& in = Global();
  std::lock_guard<std::mutex> lock(in.mu);
  auto it = in.by_name.find(std::string(name));
  if (it != in.by_name.end()) return it->second;
  size_t id = in.count.load(std::memory_order_relaxed);
  if (id >= kMaxInternedNames) {
    std::fprintf(stderr,
                 "obs::InternName: exceeded %zu distinct names "
                 "(interning '%.*s')\n",
                 kMaxInternedNames, static_cast<int>(name.size()),
                 name.data());
    std::abort();
  }
  in.names[id] = std::string(name);
  in.by_name.emplace(in.names[id], static_cast<NameId>(id));
  in.count.store(id + 1, std::memory_order_release);
  return static_cast<NameId>(id);
}

std::string_view NameOfId(NameId id) {
  Interner& in = Global();
  if (id >= in.count.load(std::memory_order_acquire)) return "<unknown-name>";
  return in.names[id];
}

size_t InternedNameCount() {
  return Global().count.load(std::memory_order_acquire);
}

}  // namespace adn::obs
