#include "obs/trace.h"

namespace adn::obs {

namespace {

// Process-wide span id allocator; ids stay unique across processors so a
// multi-scope trace (the simulated path) never collides — and across the
// scope-flushed and ring-emitted (burst executor) span paths.
std::atomic<uint64_t> g_next_span_id{1};

thread_local TraceContext* tls_current_trace = nullptr;

}  // namespace

uint64_t NextSpanId() {
  return g_next_span_id.fetch_add(1, std::memory_order_relaxed);
}

std::string_view TierName(Tier tier) {
  switch (tier) {
    case Tier::kEngine: return "engine";
    case Tier::kMesh: return "mesh";
    case Tier::kSim: return "sim";
  }
  return "?";
}

TraceContext* CurrentTrace() { return tls_current_trace; }

size_t TraceContext::OpenSpan(NameId name_id, uint64_t parent_id) {
  Span s;
  s.trace_id = trace_id;
  s.span_id = NextSpanId();
  s.parent_id = parent_id == 0 ? root_span_id : parent_id;
  s.name_id = name_id;
  s.tier = tier;
  s.processor_id = processor_id;
  s.start_ns = NowNs();
  spans.push_back(s);
  return spans.size() - 1;
}

void Tracer::SetRingCapacity(size_t spans) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = spans == 0 ? 1 : spans;
  while (ring_.size() > capacity_) ring_.pop_front();
}

void Tracer::Flush(std::vector<Span>&& spans) {
  for (const Span& s : spans) {
    TraceEvent e;
    e.trace_id = s.trace_id;
    e.span_id = s.span_id;
    e.parent_id = s.parent_id;
    e.start_ns = s.start_ns;
    e.end_ns = s.end_ns;
    e.name_id = s.name_id;
    e.processor_id = s.processor_id;
    e.kind = EventKind::kSpan;
    e.tier = static_cast<uint8_t>(s.tier);
    EmitEvent(e);
  }
  MetricsRegistry::Default().GetCounter("adn_obs_spans_total")
      .Inc(spans.size());
  spans.clear();
}

void Tracer::Collect() const {
  std::vector<TraceEvent> drained;
  EventRingRegistry::Default().DrainAll(drained);
  if (drained.empty()) return;
  size_t spans_evicted = 0;
  size_t events_evicted = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const TraceEvent& e : drained) {
      if (e.kind == EventKind::kSpan) {
        if (ring_.size() >= capacity_) {
          ring_.pop_front();
          ++spans_evicted;
        }
        Span s;
        s.trace_id = e.trace_id;
        s.span_id = e.span_id;
        s.parent_id = e.parent_id;
        s.name_id = e.name_id;
        s.tier = static_cast<Tier>(e.tier);
        s.processor_id = e.processor_id;
        s.start_ns = e.start_ns;
        s.end_ns = e.end_ns;
        ring_.push_back(s);
      } else {
        if (events_.size() >= capacity_) {
          events_.pop_front();
          ++events_evicted;
        }
        events_.push_back(e);
      }
    }
  }
  MetricsRegistry& reg = MetricsRegistry::Default();
  if (spans_evicted > 0) {
    reg.GetCounter("adn_obs_spans_evicted_total").Inc(spans_evicted);
  }
  if (events_evicted > 0) {
    // A non-span event evicted before export is as lost as one dropped at
    // the ring: fold it into the same loss counter.
    reg.GetCounter("adn_obs_events_dropped_total").Inc(events_evicted);
  }
}

std::vector<Span> Tracer::SpansForTrace(uint64_t trace_id) const {
  Collect();
  std::vector<Span> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const Span& s : ring_) {
    if (s.trace_id == trace_id) out.push_back(s);
  }
  return out;
}

std::vector<Span> Tracer::AllSpans() const {
  Collect();
  std::lock_guard<std::mutex> lock(mu_);
  return {ring_.begin(), ring_.end()};
}

std::vector<uint64_t> Tracer::TraceIds() const {
  Collect();
  std::vector<uint64_t> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const Span& s : ring_) {
    bool seen = false;
    for (uint64_t id : out) {
      if (id == s.trace_id) {
        seen = true;
        break;
      }
    }
    if (!seen) out.push_back(s.trace_id);
  }
  return out;
}

std::vector<TraceEvent> Tracer::Events() const {
  Collect();
  std::lock_guard<std::mutex> lock(mu_);
  return {events_.begin(), events_.end()};
}

void Tracer::Clear() {
  // Discard anything still buffered in the per-thread rings, then the
  // central store, so the next test/report starts clean.
  std::vector<TraceEvent> discard;
  EventRingRegistry::Default().DrainAll(discard);
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  events_.clear();
}

Tracer& Tracer::Default() {
  static Tracer tracer;
  return tracer;
}

RpcTraceScope::RpcTraceScope(uint64_t trace_id, Tier tier, NameId processor_id,
                             NameId root_name_id, Tracer& tracer) {
  if (tls_current_trace != nullptr || !tracer.ShouldSample(trace_id)) {
    return;
  }
  tracer_ = &tracer;
  active_ = true;
  ctx_.trace_id = trace_id;
  ctx_.tier = tier;
  ctx_.processor_id = processor_id;
  const size_t root = ctx_.OpenSpan(root_name_id, /*parent_id=*/0);
  ctx_.root_span_id = ctx_.SpanId(root);
  tls_current_trace = &ctx_;
  MetricsRegistry::Default().GetCounter("adn_obs_traces_sampled_total").Inc();
}

RpcTraceScope::RpcTraceScope(uint64_t trace_id, Tier tier,
                             std::string_view processor,
                             std::string_view root_name, Tracer& tracer)
    : RpcTraceScope(trace_id, tier, InternName(processor),
                    InternName(root_name), tracer) {}

RpcTraceScope::~RpcTraceScope() {
  if (!active_) return;
  tls_current_trace = nullptr;
  // Close the root (index 0) and any span a drop left open.
  for (Span& s : ctx_.spans) {
    if (s.end_ns == 0) s.end_ns = NowNs();
  }
  tracer_->Flush(std::move(ctx_.spans));
}

}  // namespace adn::obs
