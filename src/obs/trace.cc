#include "obs/trace.h"

namespace adn::obs {

namespace {

// Process-wide span id allocator; ids stay unique across processors so a
// multi-scope trace (the simulated path) never collides.
std::atomic<uint64_t> g_next_span_id{1};

thread_local TraceContext* tls_current_trace = nullptr;

}  // namespace

std::string_view TierName(Tier tier) {
  switch (tier) {
    case Tier::kEngine: return "engine";
    case Tier::kMesh: return "mesh";
    case Tier::kSim: return "sim";
  }
  return "?";
}

TraceContext* CurrentTrace() { return tls_current_trace; }

size_t TraceContext::OpenSpan(std::string_view name, uint64_t parent_id) {
  Span s;
  s.trace_id = trace_id;
  s.span_id = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  s.parent_id = parent_id == 0 ? root_span_id : parent_id;
  s.name = std::string(name);
  s.tier = tier;
  s.processor = processor;
  s.start_ns = NowNs();
  spans.push_back(std::move(s));
  return spans.size() - 1;
}

void Tracer::SetRingCapacity(size_t spans) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = spans == 0 ? 1 : spans;
  while (ring_.size() > capacity_) ring_.pop_front();
}

void Tracer::Flush(std::vector<Span>&& spans) {
  MetricsRegistry& reg = MetricsRegistry::Default();
  size_t evicted = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (Span& s : spans) {
      if (ring_.size() >= capacity_) {
        ring_.pop_front();
        ++evicted;
      }
      ring_.push_back(std::move(s));
    }
  }
  reg.GetCounter("adn_obs_spans_total").Inc(spans.size());
  if (evicted > 0) {
    reg.GetCounter("adn_obs_spans_evicted_total").Inc(evicted);
  }
}

std::vector<Span> Tracer::SpansForTrace(uint64_t trace_id) const {
  std::vector<Span> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const Span& s : ring_) {
    if (s.trace_id == trace_id) out.push_back(s);
  }
  return out;
}

std::vector<Span> Tracer::AllSpans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {ring_.begin(), ring_.end()};
}

std::vector<uint64_t> Tracer::TraceIds() const {
  std::vector<uint64_t> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const Span& s : ring_) {
    bool seen = false;
    for (uint64_t id : out) {
      if (id == s.trace_id) {
        seen = true;
        break;
      }
    }
    if (!seen) out.push_back(s.trace_id);
  }
  return out;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
}

Tracer& Tracer::Default() {
  static Tracer tracer;
  return tracer;
}

RpcTraceScope::RpcTraceScope(uint64_t trace_id, Tier tier,
                             std::string_view processor,
                             std::string_view root_name, Tracer& tracer) {
  if (tls_current_trace != nullptr || !tracer.ShouldSample(trace_id)) {
    return;
  }
  tracer_ = &tracer;
  active_ = true;
  ctx_.trace_id = trace_id;
  ctx_.tier = tier;
  ctx_.processor = std::string(processor);
  const size_t root = ctx_.OpenSpan(root_name, /*parent_id=*/0);
  ctx_.root_span_id = ctx_.SpanId(root);
  tls_current_trace = &ctx_;
  MetricsRegistry::Default().GetCounter("adn_obs_traces_sampled_total").Inc();
}

RpcTraceScope::~RpcTraceScope() {
  if (!active_) return;
  tls_current_trace = nullptr;
  // Close the root (index 0) and any span a drop left open.
  for (Span& s : ctx_.spans) {
    if (s.end_ns == 0) s.end_ns = NowNs();
  }
  tracer_->Flush(std::move(ctx_.spans));
}

}  // namespace adn::obs
