// Per-worker binary event rings: the DPDK-trace-shaped transport that lets
// tracing stay on at burst speed.
//
// Every trace record is a fixed-size 64-byte POD (TraceEvent) — one cache
// line, no strings, no heap. Each producer thread owns one SPSC ring
// (EventRingRegistry::ThisThreadRing()); emitting is a bounds check, a
// struct copy and one release store. When a ring is full the event is
// dropped and counted (never blocks, never allocates) — the same contract
// DPDK's trace library and the span ring already follow: telemetry loss is
// visible, data-plane stalls are not.
//
// Consumers (Tracer::Collect, tools/adntrace, tools/adntop) drain all rings
// from one thread at a time; the drained stream is the input to the
// Chrome-trace/Perfetto exporter (obs/export.h). Reconfiguration
// state-machine transitions (docs/RECONFIG.md) ride the same rings as
// first-class events so blackout windows are visible in traces.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "obs/intern.h"

namespace adn::obs {

// What one TraceEvent records. kSpan carries a completed span (start/end);
// kBurst marks one executed burst wavefront (arg = lane count); kReconfig
// and kSwap are the live-reconfiguration transitions.
enum class EventKind : uint8_t {
  kSpan = 0,
  kBurst = 1,
  kReconfig = 2,
  kSwap = 3,
};
std::string_view EventKindName(EventKind kind);

// First-class reconfiguration event names (contract: docs/RECONFIG.md
// "Emitted events"; check_docs.py enforces src <-> docs agreement both
// directions). One per live-migration state-machine transition plus the
// program hot-swap.
inline constexpr std::string_view kEventReconfigSnapshot = "reconfig.snapshot";
inline constexpr std::string_view kEventReconfigBulkMerge =
    "reconfig.bulk_merge";
inline constexpr std::string_view kEventReconfigCutover = "reconfig.cutover";
inline constexpr std::string_view kEventReconfigReplay = "reconfig.replay";
inline constexpr std::string_view kEventReconfigSwapProgram =
    "reconfig.swap_program";
// All reconfig event names the runtime may emit (for tools and the
// contract test).
const std::vector<std::string_view>& ReconfigEventNames();

// One fixed-size trace record. Exactly one cache line; trivially copyable
// so rings are memcpy-clean and an exporter can write them out binary.
struct TraceEvent {
  uint64_t trace_id = 0;   // RPC id (0 for non-RPC events)
  uint64_t span_id = 0;    // unique per process (0 for instant events)
  uint64_t parent_id = 0;  // 0 = root of this processor's subtree
  int64_t start_ns = 0;    // obs::NowNs(); instant events set start only
  int64_t end_ns = 0;
  uint64_t arg = 0;        // kind-specific (lanes, slot, blackout_ns, version)
  NameId name_id = 0;      // interned span/event name
  NameId processor_id = 0; // interned processor name
  EventKind kind = EventKind::kSpan;
  uint8_t tier = 0;        // obs::Tier
  uint8_t pad[6] = {};
};
static_assert(sizeof(TraceEvent) == 64, "TraceEvent must stay one cache line");
static_assert(std::is_trivially_copyable_v<TraceEvent>,
              "TraceEvent must stay POD (binary ring/export format)");

// Fixed-capacity SPSC ring of TraceEvents (same head/tail discipline as
// mrpc::SpscRing). Producer: the owning thread's TryEmit. Consumer: one
// drainer at a time (the registry serializes DrainAll under its mutex).
// Observers may read size()/dropped()/emitted() from any thread.
class EventRing {
 public:
  // Capacity rounds up to a power of two (minimum 2).
  explicit EventRing(size_t capacity);

  size_t capacity() const { return slots_.size(); }
  // Cross-thread estimate; exact when the other side is quiescent.
  size_t size() const;

  // Producer only. False when full: the event is dropped and counted.
  bool TryEmit(const TraceEvent& e);

  // Consumer only. Pop up to `max` events into out[0..); returns the count.
  size_t Drain(TraceEvent* out, size_t max);

  // Events dropped at emit because the ring was full.
  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  // Events ever accepted.
  uint64_t emitted() const { return tail_.load(std::memory_order_acquire); }

  // Display label for tools (the owning worker/thread), set once at
  // registration via EventRingRegistry::SetThisThreadLabel.
  NameId label_id() const { return label_id_.load(std::memory_order_relaxed); }
  void set_label_id(NameId id) {
    label_id_.store(id, std::memory_order_relaxed);
  }

 private:
  std::vector<TraceEvent> slots_;
  size_t mask_ = 0;
  std::atomic<NameId> label_id_{0};
  std::atomic<uint64_t> dropped_{0};
  alignas(64) std::atomic<uint64_t> head_{0};
  alignas(64) std::atomic<uint64_t> tail_{0};
  // Consumer-side bookkeeping for DrainAll's metric sync (how much of
  // emitted()/dropped() was already accounted to the registry counters).
  friend class EventRingRegistry;
  uint64_t synced_emitted_ = 0;
  uint64_t synced_dropped_ = 0;
};

// Process-wide registry of per-thread event rings. Producers call
// ThisThreadRing()/EmitEvent() (first use creates and registers the calling
// thread's ring); consumers call DrainAll() — which also folds ring totals
// into the adn_obs_events_total / adn_obs_events_dropped_total counters —
// or Stats() for per-ring depth display (tools/adntop).
class EventRingRegistry {
 public:
  static EventRingRegistry& Default();

  // The calling thread's ring, created and registered on first use.
  EventRing& ThisThreadRing();

  // Label the calling thread's ring for tools (e.g. the pool worker name).
  void SetThisThreadLabel(std::string_view label);

  // Capacity (events) for rings created after this call. Default 65536
  // (4 MiB per worker at 64 B/event).
  void SetDefaultCapacity(size_t events);

  // Drain every registered ring into `out`, oldest-per-ring first, and sync
  // the event counters. One consumer at a time (serialized internally).
  size_t DrainAll(std::vector<TraceEvent>& out);

  struct RingStats {
    std::string_view label;
    size_t depth = 0;
    size_t capacity = 0;
    uint64_t emitted = 0;
    uint64_t dropped = 0;
  };
  std::vector<RingStats> Stats() const;
  uint64_t TotalDropped() const;

  // Tests/benches only: forget every ring. Producer threads re-register on
  // their next emit; outstanding EventRing references stay valid (rings are
  // shared_ptr-owned and parked, mirroring MetricsRegistry::Reset).
  void Reset();

 private:
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<EventRing>> rings_;        // guarded by mu_
  std::vector<std::shared_ptr<EventRing>> retired_;      // parked by Reset
  size_t default_capacity_ = 65536;
  uint64_t generation_ = 0;  // bumped by Reset so threads re-register
};

// Emit one event into the calling thread's ring (drop-counted when full).
// The fast path is one TLS load + the SPSC store; first use per thread
// registers the ring.
void EmitEvent(const TraceEvent& e);

// Allocate a process-unique span id (shared with the span tracer, so ids
// never collide between ring-emitted and scope-emitted spans).
uint64_t NextSpanId();

}  // namespace adn::obs
