#include "obs/metrics.h"

#include <algorithm>
#include <chrono>

namespace adn::obs {

// --- Histogram ----------------------------------------------------------------

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)) {
  // Bounds must be strictly increasing for the "le" semantics to be
  // well-defined; sort + dedup defensively rather than trusting callers.
  std::sort(upper_bounds_.begin(), upper_bounds_.end());
  upper_bounds_.erase(
      std::unique(upper_bounds_.begin(), upper_bounds_.end()),
      upper_bounds_.end());
  buckets_.resize(upper_bounds_.size() + 1);  // +Inf bucket at the end
}

void Histogram::Observe(double v) {
  size_t i = 0;
  const size_t n = upper_bounds_.size();
  while (i < n && v > upper_bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  uint64_t cur = sum_bits_.load(std::memory_order_relaxed);
  for (;;) {
    double sum;
    __builtin_memcpy(&sum, &cur, sizeof(sum));
    sum += v;
    uint64_t next;
    __builtin_memcpy(&next, &sum, sizeof(next));
    if (sum_bits_.compare_exchange_weak(cur, next,
                                        std::memory_order_relaxed)) {
      break;
    }
  }
}

void Histogram::ObserveN(double v, uint64_t n) {
  if (n == 0) return;
  size_t i = 0;
  const size_t nb = upper_bounds_.size();
  while (i < nb && v > upper_bounds_[i]) ++i;
  buckets_[i].fetch_add(n, std::memory_order_relaxed);
  count_.fetch_add(n, std::memory_order_relaxed);
  uint64_t cur = sum_bits_.load(std::memory_order_relaxed);
  for (;;) {
    double sum;
    __builtin_memcpy(&sum, &cur, sizeof(sum));
    sum += v * static_cast<double>(n);
    uint64_t next;
    __builtin_memcpy(&next, &sum, sizeof(next));
    if (sum_bits_.compare_exchange_weak(cur, next,
                                        std::memory_order_relaxed)) {
      break;
    }
  }
}

double Histogram::Sum() const {
  uint64_t bits = sum_bits_.load(std::memory_order_relaxed);
  double sum;
  __builtin_memcpy(&sum, &bits, sizeof(sum));
  return sum;
}

const std::vector<double>& Histogram::DefaultLatencyBucketsNs() {
  static const std::vector<double> kBuckets = {
      100,     250,     500,       1'000,     2'500,     5'000,
      10'000,  25'000,  50'000,    100'000,   250'000,   500'000,
      1'000'000, 2'500'000, 5'000'000, 10'000'000};
  return kBuckets;
}

double Histogram::Quantile(double q) const {
  std::vector<uint64_t> counts;
  counts.reserve(upper_bounds_.size() + 1);
  for (size_t i = 0; i <= upper_bounds_.size(); ++i) {
    counts.push_back(BucketCount(i));
  }
  return BucketQuantile(upper_bounds_, counts, Count(), q);
}

double BucketQuantile(const std::vector<double>& upper_bounds,
                      const std::vector<uint64_t>& bucket_counts,
                      uint64_t count, double q) {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  uint64_t seen = 0;
  double lower = 0.0;
  const size_t finite =
      std::min(upper_bounds.size(), bucket_counts.size());
  for (size_t i = 0; i < finite; ++i) {
    const uint64_t in_bucket = bucket_counts[i];
    if (static_cast<double>(seen + in_bucket) >= rank && in_bucket > 0) {
      const double fraction =
          (rank - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      return lower + fraction * (upper_bounds[i] - lower);
    }
    seen += in_bucket;
    lower = upper_bounds[i];
  }
  // Quantile lands in the +Inf bucket: clamp to the last finite bound.
  return upper_bounds.empty() ? 0.0 : upper_bounds.back();
}

// --- Registry -----------------------------------------------------------------

std::string_view MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

const MetricSample* MetricsSnapshot::Find(std::string_view name,
                                          std::string_view labels) const {
  for (const MetricSample& s : samples) {
    if (s.name == name && s.labels == labels) return &s;
  }
  return nullptr;
}

MetricsRegistry::Entry* MetricsRegistry::FindOrNull(std::string_view name,
                                                    std::string_view labels,
                                                    MetricKind kind) {
  for (Entry& e : entries_) {
    if (e.name == name && e.labels == labels) {
      // A name/label collision across kinds is a programming error; return
      // the existing entry so the caller at least gets a stable object.
      (void)kind;
      return &e;
    }
  }
  return nullptr;
}

Counter& MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view labels) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* e = FindOrNull(name, labels, MetricKind::kCounter)) {
    return e->counter;
  }
  Entry& e = entries_.emplace_back();
  e.name = std::string(name);
  e.labels = std::string(labels);
  e.kind = MetricKind::kCounter;
  return e.counter;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name,
                                 std::string_view labels) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* e = FindOrNull(name, labels, MetricKind::kGauge)) {
    return e->gauge;
  }
  Entry& e = entries_.emplace_back();
  e.name = std::string(name);
  e.labels = std::string(labels);
  e.kind = MetricKind::kGauge;
  return e.gauge;
}

Histogram& MetricsRegistry::GetHistogram(
    std::string_view name, std::string_view labels,
    const std::vector<double>& upper_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* e = FindOrNull(name, labels, MetricKind::kHistogram)) {
    return *e->histogram;
  }
  Entry& e = entries_.emplace_back();
  e.name = std::string(name);
  e.labels = std::string(labels);
  e.kind = MetricKind::kHistogram;
  e.histogram = std::make_unique<Histogram>(upper_bounds);
  return *e.histogram;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  snap.samples.reserve(entries_.size());
  for (const Entry& e : entries_) {
    MetricSample s;
    s.name = e.name;
    s.labels = e.labels;
    s.kind = e.kind;
    switch (e.kind) {
      case MetricKind::kCounter:
        s.value = static_cast<double>(e.counter.Value());
        break;
      case MetricKind::kGauge:
        s.value = e.gauge.Value();
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = *e.histogram;
        s.value = h.Sum();
        s.count = h.Count();
        s.upper_bounds = h.upper_bounds();
        s.bucket_counts.reserve(s.upper_bounds.size() + 1);
        for (size_t i = 0; i <= s.upper_bounds.size(); ++i) {
          s.bucket_counts.push_back(h.BucketCount(i));
        }
        break;
      }
    }
    snap.samples.push_back(std::move(s));
  }
  return snap;
}

std::vector<std::string> MetricsRegistry::MetricNames() const {
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Entry& e : entries_) names.push_back(e.name);
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  // Park the current generation instead of destroying it: concurrent
  // writers may still hold references into it (see header contract).
  if (!entries_.empty()) retired_.push_back(std::move(entries_));
  entries_.clear();
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry registry;
  return registry;
}

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace adn::obs
