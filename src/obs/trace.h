// Per-RPC tracing: one sampled RPC yields one causally-ordered span tree
// whichever execution layer carries it (mRPC engine, mesh sidecar,
// simulator path).
//
// A span is one stage enter/exit — an element segment in the ChainExecutor,
// an interpreted element, a proxy codec boundary — tagged with the element/
// stage name, the execution tier, and the processor that ran it. Spans
// share the RPC's id as trace_id, so a message that crosses several
// processors (the simulated path) still assembles into a single tree.
//
// Mechanics, tuned so tracing can stay ON at burst speed (the
// "Burst-mode telemetry" contract in docs/OBSERVABILITY.md):
//
//  - A span is a fixed-size POD: names and processors are interned ids
//    (obs/intern.h), never std::string — recording a span allocates
//    nothing.
//  - The tracer is off unless obs::Enabled() AND tracing enabled AND the
//    trace_id passes sampling (1-in-N by id). Instrumented layers open an
//    RpcTraceScope; when any gate fails the scope is inert and the per-span
//    call sites reduce to one thread-local load + null check.
//  - Open spans are staged in the thread-local TraceContext and flushed —
//    as 64-byte TraceEvent records into the calling thread's SPSC event
//    ring (obs/event_ring.h) — once when the scope closes. The burst
//    executor skips the scope entirely and writes span events straight
//    into its worker's ring.
//  - Consumers (Collect and the query APIs) drain the rings into a
//    fixed-capacity central store: recording never allocates on the data
//    plane and never blocks it — ring-full drops are counted by
//    adn_obs_events_dropped_total, central-store eviction by
//    adn_obs_spans_evicted_total.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "obs/event_ring.h"
#include "obs/intern.h"
#include "obs/metrics.h"

namespace adn::obs {

// Which execution layer emitted the span (DESIGN.md §5 tiers).
enum class Tier : uint8_t {
  kEngine,  // mRPC engine chain (compiled or interpreted stages)
  kMesh,    // sidecar proxy path (AdnChainFilter / Envoy model)
  kSim,     // simulated ADN path (per-site stations)
};
std::string_view TierName(Tier tier);

struct Span {
  uint64_t trace_id = 0;     // the RPC id
  uint64_t span_id = 0;      // unique per process
  uint64_t parent_id = 0;    // 0 = root of this processor's subtree
  NameId name_id = 0;        // interned element/stage name
  Tier tier = Tier::kEngine;
  NameId processor_id = 0;   // interned, e.g. "client-engine"
  int64_t start_ns = 0;      // steady-clock wall time (obs::NowNs)
  int64_t end_ns = 0;

  // Resolved views for display/export; lock-free, never dangle.
  std::string_view name() const { return NameOfId(name_id); }
  std::string_view processor() const { return NameOfId(processor_id); }
};

// Thread-local staging area for one in-flight sampled RPC on one processor.
// Span ids come from a process-wide counter so ids stay unique when one RPC
// opens scopes on several processors (the simulated path).
struct TraceContext {
  uint64_t trace_id = 0;
  Tier tier = Tier::kEngine;
  NameId processor_id = 0;
  std::vector<Span> spans;        // staged; flushed on scope close
  uint64_t root_span_id = 0;

  // Opens a child span under `parent` (0 = under the root span) and returns
  // its index into `spans`. Hot call sites pass a pre-interned id
  // (registration-time interning, satellite of the zero-alloc contract);
  // the string_view overload interns per call and is for setup/tests.
  size_t OpenSpan(NameId name_id, uint64_t parent_id = 0);
  size_t OpenSpan(std::string_view name, uint64_t parent_id = 0) {
    return OpenSpan(InternName(name), parent_id);
  }
  void CloseSpan(size_t idx) { spans[idx].end_ns = NowNs(); }
  uint64_t SpanId(size_t idx) const { return spans[idx].span_id; }
};

// The active context on this thread, or nullptr when the current RPC is not
// being traced. This is the only thing per-element call sites touch.
TraceContext* CurrentTrace();

class Tracer {
 public:
  // Tracing rides on the master obs switch AND its own flag, so metrics can
  // stay on while tracing is off.
  void SetTracingEnabled(bool on) {
    tracing_.store(on, std::memory_order_relaxed);
  }
  bool tracing_enabled() const {
    return Enabled() && tracing_.load(std::memory_order_relaxed);
  }

  // Sample 1 in `n` RPCs by trace id (id % n == 0). n == 1 traces all.
  void SetSampleEvery(uint64_t n) {
    sample_every_.store(n == 0 ? 1 : n, std::memory_order_relaxed);
  }
  uint64_t sample_every() const {
    return sample_every_.load(std::memory_order_relaxed);
  }
  bool ShouldSample(uint64_t trace_id) const {
    return tracing_enabled() &&
           trace_id % sample_every_.load(std::memory_order_relaxed) == 0;
  }

  // Central collected-store capacity in spans (default 4096). Shrinking
  // evicts oldest. (Per-worker ring capacity is set separately via
  // EventRingRegistry::SetDefaultCapacity.)
  void SetRingCapacity(size_t spans);

  // Flush a scope's staged spans: each becomes one 64-byte kSpan event in
  // the calling thread's ring. Counted by adn_obs_spans_total immediately.
  void Flush(std::vector<Span>&& spans);

  // Drain every per-thread event ring into the central store. Called
  // implicitly by every query API; call it explicitly before reading
  // event counters or exporting. Single consumer at a time.
  void Collect() const;

  // Spans of one trace, in causal (recording) order.
  std::vector<Span> SpansForTrace(uint64_t trace_id) const;
  // Every resident span, oldest first.
  std::vector<Span> AllSpans() const;
  // Trace ids currently resident, most recent last.
  std::vector<uint64_t> TraceIds() const;
  // Resident non-span events (burst markers, reconfig/swap transitions),
  // oldest first.
  std::vector<TraceEvent> Events() const;

  void Clear();

  static Tracer& Default();

 private:
  std::atomic<bool> tracing_{false};
  std::atomic<uint64_t> sample_every_{1};
  mutable std::mutex mu_;
  // The collected store (mutable: query APIs Collect() on read).
  mutable std::deque<Span> ring_;
  mutable std::deque<TraceEvent> events_;
  size_t capacity_ = 4096;
};

// RAII root scope for one RPC on one processor. If the tracer declines the
// trace (disabled / not sampled / a scope already active on this thread)
// the scope is inert and costs two loads. Otherwise it installs the
// thread-local context, opens the root span (named `root_name`), and on
// destruction closes it and flushes the staged spans to the ring.
// Production call sites use the id overload with names interned once at
// registration; the string_view overload interns per call (setup/tests).
class RpcTraceScope {
 public:
  RpcTraceScope(uint64_t trace_id, Tier tier, NameId processor_id,
                NameId root_name_id, Tracer& tracer = Tracer::Default());
  RpcTraceScope(uint64_t trace_id, Tier tier, std::string_view processor,
                std::string_view root_name, Tracer& tracer = Tracer::Default());
  ~RpcTraceScope();

  RpcTraceScope(const RpcTraceScope&) = delete;
  RpcTraceScope& operator=(const RpcTraceScope&) = delete;

  bool active() const { return active_; }

 private:
  Tracer* tracer_ = nullptr;
  bool active_ = false;
  TraceContext ctx_;
};

}  // namespace adn::obs
