// Per-RPC tracing: one sampled RPC yields one causally-ordered span tree
// whichever execution layer carries it (mRPC engine, mesh sidecar,
// simulator path).
//
// A span is one stage enter/exit — an element segment in the ChainExecutor,
// an interpreted element, a proxy codec boundary — tagged with the element/
// stage name, the execution tier, and the processor that ran it. Spans
// share the RPC's id as trace_id, so a message that crosses several
// processors (the simulated path) still assembles into a single tree.
//
// Mechanics, tuned for the <2%-overhead-when-off requirement:
//
//  - The tracer is off unless obs::Enabled() AND tracing enabled AND the
//    trace_id passes sampling (1-in-N by id). Instrumented layers open an
//    RpcTraceScope; when any gate fails the scope is inert and the per-span
//    call sites reduce to one thread-local load + null check.
//  - Open spans are staged in the thread-local TraceContext (a plain
//    vector, no synchronization) and flushed to the shared ring buffer once
//    when the scope closes.
//  - Storage is a fixed-capacity ring: recording never allocates without
//    bound and never blocks the data plane for long — old traces are
//    evicted, counted by adn_obs_spans_evicted_total.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace adn::obs {

// Which execution layer emitted the span (DESIGN.md §5 tiers).
enum class Tier : uint8_t {
  kEngine,  // mRPC engine chain (compiled or interpreted stages)
  kMesh,    // sidecar proxy path (AdnChainFilter / Envoy model)
  kSim,     // simulated ADN path (per-site stations)
};
std::string_view TierName(Tier tier);

struct Span {
  uint64_t trace_id = 0;   // the RPC id
  uint64_t span_id = 0;    // unique per process
  uint64_t parent_id = 0;  // 0 = root of this processor's subtree
  std::string name;        // element/stage name
  Tier tier = Tier::kEngine;
  std::string processor;   // e.g. "client-engine", "server-sidecar"
  int64_t start_ns = 0;    // steady-clock wall time (obs::NowNs)
  int64_t end_ns = 0;
};

// Thread-local staging area for one in-flight sampled RPC on one processor.
// Span ids come from a process-wide counter so ids stay unique when one RPC
// opens scopes on several processors (the simulated path).
struct TraceContext {
  uint64_t trace_id = 0;
  Tier tier = Tier::kEngine;
  std::string processor;
  std::vector<Span> spans;        // staged; flushed on scope close
  uint64_t root_span_id = 0;

  // Opens a child span under `parent` (0 = under the root span) and returns
  // its index into `spans`.
  size_t OpenSpan(std::string_view name, uint64_t parent_id = 0);
  void CloseSpan(size_t idx) { spans[idx].end_ns = NowNs(); }
  uint64_t SpanId(size_t idx) const { return spans[idx].span_id; }
};

// The active context on this thread, or nullptr when the current RPC is not
// being traced. This is the only thing per-element call sites touch.
TraceContext* CurrentTrace();

class Tracer {
 public:
  // Tracing rides on the master obs switch AND its own flag, so metrics can
  // stay on while tracing is off.
  void SetTracingEnabled(bool on) {
    tracing_.store(on, std::memory_order_relaxed);
  }
  bool tracing_enabled() const {
    return Enabled() && tracing_.load(std::memory_order_relaxed);
  }

  // Sample 1 in `n` RPCs by trace id (id % n == 0). n == 1 traces all.
  void SetSampleEvery(uint64_t n) {
    sample_every_.store(n == 0 ? 1 : n, std::memory_order_relaxed);
  }
  uint64_t sample_every() const {
    return sample_every_.load(std::memory_order_relaxed);
  }
  bool ShouldSample(uint64_t trace_id) const {
    return tracing_enabled() &&
           trace_id % sample_every_.load(std::memory_order_relaxed) == 0;
  }

  // Ring capacity in spans (default 4096). Shrinking evicts oldest.
  void SetRingCapacity(size_t spans);

  void Flush(std::vector<Span>&& spans);

  // Spans of one trace, in causal (recording) order.
  std::vector<Span> SpansForTrace(uint64_t trace_id) const;
  // Every resident span, oldest first.
  std::vector<Span> AllSpans() const;
  // Trace ids currently resident, most recent last.
  std::vector<uint64_t> TraceIds() const;

  void Clear();

  static Tracer& Default();

 private:
  std::atomic<bool> tracing_{false};
  std::atomic<uint64_t> sample_every_{1};
  mutable std::mutex mu_;
  std::deque<Span> ring_;
  size_t capacity_ = 4096;
};

// RAII root scope for one RPC on one processor. If the tracer declines the
// trace (disabled / not sampled / a scope already active on this thread)
// the scope is inert and costs two loads. Otherwise it installs the
// thread-local context, opens the root span (named `root_name`), and on
// destruction closes it and flushes the staged spans to the ring.
class RpcTraceScope {
 public:
  RpcTraceScope(uint64_t trace_id, Tier tier, std::string_view processor,
                std::string_view root_name, Tracer& tracer = Tracer::Default());
  ~RpcTraceScope();

  RpcTraceScope(const RpcTraceScope&) = delete;
  RpcTraceScope& operator=(const RpcTraceScope&) = delete;

  bool active() const { return active_; }

 private:
  Tracer* tracer_ = nullptr;
  bool active_ = false;
  TraceContext ctx_;
};

}  // namespace adn::obs
