#include "obs/export.h"

#include <cstdio>

namespace adn::obs {

namespace {

void AppendEscaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void AppendDouble(std::string& out, double v) {
  char buf[32];
  // %g keeps integers integral ("42") and trims trailing zeros.
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  out += buf;
}

void AppendSpanNode(std::string& out, const std::vector<Span>& spans,
                    size_t idx) {
  const Span& s = spans[idx];
  out += "{\"span_id\":" + std::to_string(s.span_id);
  out += ",\"name\":\"";
  AppendEscaped(out, s.name);
  out += "\",\"tier\":\"";
  out += TierName(s.tier);
  out += "\",\"processor\":\"";
  AppendEscaped(out, s.processor);
  out += "\",\"start_ns\":" + std::to_string(s.start_ns);
  out += ",\"end_ns\":" + std::to_string(s.end_ns);
  out += ",\"children\":[";
  bool first = true;
  // Causal order is recording order, so children enumerate in order.
  for (size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].parent_id != s.span_id) continue;
    if (!first) out += ",";
    first = false;
    AppendSpanNode(out, spans, i);
  }
  out += "]}";
}

}  // namespace

std::string ExportMetricsJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const MetricSample& s : snapshot.samples) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    AppendEscaped(out, s.name);
    out += "\",\"labels\":\"";
    AppendEscaped(out, s.labels);
    out += "\",\"kind\":\"";
    out += MetricKindName(s.kind);
    out += "\",\"value\":";
    AppendDouble(out, s.value);
    if (s.kind == MetricKind::kHistogram) {
      out += ",\"count\":" + std::to_string(s.count);
      out += ",\"upper_bounds\":[";
      for (size_t i = 0; i < s.upper_bounds.size(); ++i) {
        if (i > 0) out += ",";
        AppendDouble(out, s.upper_bounds[i]);
      }
      out += "],\"bucket_counts\":[";
      for (size_t i = 0; i < s.bucket_counts.size(); ++i) {
        if (i > 0) out += ",";
        out += std::to_string(s.bucket_counts[i]);
      }
      out += "]";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

std::string ExportTraceJson(uint64_t trace_id,
                            const std::vector<Span>& spans) {
  std::string out = "{\"trace_id\":" + std::to_string(trace_id);
  out += ",\"spans\":[";
  bool first = true;
  for (size_t i = 0; i < spans.size(); ++i) {
    // Roots: spans whose parent is not resident in this trace (each
    // processor scope contributes one).
    bool has_parent = false;
    for (const Span& other : spans) {
      if (other.span_id == spans[i].parent_id) {
        has_parent = true;
        break;
      }
    }
    if (has_parent) continue;
    if (!first) out += ",";
    first = false;
    AppendSpanNode(out, spans, i);
  }
  out += "]}";
  return out;
}

std::string ExportJson() {
  std::string metrics = ExportMetricsJson(MetricsRegistry::Default().Snapshot());
  std::string out = "{\"metrics\":";
  // Strip the wrapper object of ExportMetricsJson to embed the array.
  // ExportMetricsJson returns {"metrics":[...]}; reuse its array part.
  const size_t open = metrics.find('[');
  out += metrics.substr(open, metrics.size() - open - 1);
  out += ",\"traces\":[";
  Tracer& tracer = Tracer::Default();
  bool first = true;
  for (uint64_t id : tracer.TraceIds()) {
    if (!first) out += ",";
    first = false;
    out += ExportTraceJson(id, tracer.SpansForTrace(id));
  }
  out += "]}";
  return out;
}

}  // namespace adn::obs
