#include "obs/export.h"

#include <algorithm>
#include <cstdio>

namespace adn::obs {

namespace {

void AppendEscaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void AppendDouble(std::string& out, double v) {
  char buf[32];
  // %g keeps integers integral ("42") and trims trailing zeros.
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  out += buf;
}

void AppendSpanNode(std::string& out, const std::vector<Span>& spans,
                    size_t idx) {
  const Span& s = spans[idx];
  out += "{\"span_id\":" + std::to_string(s.span_id);
  out += ",\"name\":\"";
  AppendEscaped(out, s.name());
  out += "\",\"tier\":\"";
  out += TierName(s.tier);
  out += "\",\"processor\":\"";
  AppendEscaped(out, s.processor());
  out += "\",\"start_ns\":" + std::to_string(s.start_ns);
  out += ",\"end_ns\":" + std::to_string(s.end_ns);
  out += ",\"children\":[";
  bool first = true;
  // Causal order is recording order, so children enumerate in order.
  for (size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].parent_id != s.span_id) continue;
    if (!first) out += ",";
    first = false;
    AppendSpanNode(out, spans, i);
  }
  out += "]}";
}

}  // namespace

std::string ExportMetricsJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const MetricSample& s : snapshot.samples) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    AppendEscaped(out, s.name);
    out += "\",\"labels\":\"";
    AppendEscaped(out, s.labels);
    out += "\",\"kind\":\"";
    out += MetricKindName(s.kind);
    out += "\",\"value\":";
    AppendDouble(out, s.value);
    if (s.kind == MetricKind::kHistogram) {
      out += ",\"count\":" + std::to_string(s.count);
      out += ",\"upper_bounds\":[";
      for (size_t i = 0; i < s.upper_bounds.size(); ++i) {
        if (i > 0) out += ",";
        AppendDouble(out, s.upper_bounds[i]);
      }
      out += "],\"bucket_counts\":[";
      for (size_t i = 0; i < s.bucket_counts.size(); ++i) {
        if (i > 0) out += ",";
        out += std::to_string(s.bucket_counts[i]);
      }
      out += "]";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

std::string ExportTraceJson(uint64_t trace_id,
                            const std::vector<Span>& spans) {
  std::string out = "{\"trace_id\":" + std::to_string(trace_id);
  out += ",\"spans\":[";
  bool first = true;
  for (size_t i = 0; i < spans.size(); ++i) {
    // Roots: spans whose parent is not resident in this trace (each
    // processor scope contributes one).
    bool has_parent = false;
    for (const Span& other : spans) {
      if (other.span_id == spans[i].parent_id) {
        has_parent = true;
        break;
      }
    }
    if (has_parent) continue;
    if (!first) out += ",";
    first = false;
    AppendSpanNode(out, spans, i);
  }
  out += "]}";
  return out;
}

namespace {

// One Chrome-trace event object. `ph` X events carry dur; i events carry
// scope "g" (global) so Perfetto draws them across every row.
void AppendChromeEvent(std::string& out, bool& first, std::string_view name,
                       char ph, NameId processor_id, int64_t start_ns,
                       int64_t dur_ns, std::string_view extra_args) {
  if (!first) out += ",";
  first = false;
  out += "{\"name\":\"";
  AppendEscaped(out, name);
  out += "\",\"ph\":\"";
  out += ph;
  out += "\",\"pid\":1,\"tid\":" + std::to_string(processor_id);
  out += ",\"ts\":";
  AppendDouble(out, static_cast<double>(start_ns) / 1000.0);
  if (ph == 'X') {
    out += ",\"dur\":";
    AppendDouble(out, static_cast<double>(dur_ns) / 1000.0);
  } else {
    out += ",\"s\":\"g\"";
  }
  if (!extra_args.empty()) {
    out += ",\"args\":{";
    out += extra_args;
    out += "}";
  }
  out += "}";
}

}  // namespace

std::string ExportChromeTraceJson(const std::vector<Span>& spans,
                                  const std::vector<TraceEvent>& events) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  // Thread-name metadata rows: one per distinct processor id seen.
  std::vector<NameId> procs;
  for (const Span& s : spans) {
    if (std::find(procs.begin(), procs.end(), s.processor_id) == procs.end()) {
      procs.push_back(s.processor_id);
    }
  }
  for (const TraceEvent& e : events) {
    if (std::find(procs.begin(), procs.end(), e.processor_id) == procs.end()) {
      procs.push_back(e.processor_id);
    }
  }
  for (NameId p : procs) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
           std::to_string(p) + ",\"args\":{\"name\":\"";
    AppendEscaped(out, NameOfId(p));
    out += "\"}}";
  }
  for (const Span& s : spans) {
    std::string args = "\"trace_id\":" + std::to_string(s.trace_id) +
                       ",\"span_id\":" + std::to_string(s.span_id) +
                       ",\"tier\":\"" + std::string(TierName(s.tier)) + "\"";
    AppendChromeEvent(out, first, s.name(), 'X', s.processor_id, s.start_ns,
                      s.end_ns - s.start_ns, args);
  }
  for (const TraceEvent& e : events) {
    std::string args = "\"arg\":" + std::to_string(e.arg);
    switch (e.kind) {
      case EventKind::kSpan:
        break;  // spans arrive via the span store, not here
      case EventKind::kBurst:
        args = "\"lanes\":" + std::to_string(e.arg);
        AppendChromeEvent(out, first, NameOfId(e.name_id), 'X',
                          e.processor_id, e.start_ns, e.end_ns - e.start_ns,
                          args);
        break;
      case EventKind::kReconfig:
      case EventKind::kSwap:
        AppendChromeEvent(out, first, NameOfId(e.name_id), 'i',
                          e.processor_id, e.start_ns, 0, args);
        break;
    }
  }
  out += "]}";
  return out;
}

std::string ExportChromeTraceJson() {
  Tracer& tracer = Tracer::Default();
  tracer.Collect();
  return ExportChromeTraceJson(tracer.AllSpans(), tracer.Events());
}

std::string ExportJson() {
  std::string metrics = ExportMetricsJson(MetricsRegistry::Default().Snapshot());
  std::string out = "{\"metrics\":";
  // Strip the wrapper object of ExportMetricsJson to embed the array.
  // ExportMetricsJson returns {"metrics":[...]}; reuse its array part.
  const size_t open = metrics.find('[');
  out += metrics.substr(open, metrics.size() - open - 1);
  out += ",\"traces\":[";
  Tracer& tracer = Tracer::Default();
  bool first = true;
  for (uint64_t id : tracer.TraceIds()) {
    if (!first) out += ",";
    first = false;
    out += ExportTraceJson(id, tracer.SpansForTrace(id));
  }
  out += "]}";
  return out;
}

}  // namespace adn::obs
