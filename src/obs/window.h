// Windowed telemetry time-series (the streaming half of the Figure-3
// feedback plane).
//
// The registry's instruments are cumulative — counters count since process
// start, histograms accumulate forever. A *live* control loop needs
// per-window views: "how many RPCs this window", "what was p99 over the
// last 5 ms". WindowedSeries turns a stream of MetricsSnapshots into those
// views by diffing successive snapshots:
//
//   counters   -> window delta and rate/sec (unsigned diff, wrap-safe)
//   histograms -> bucket-count deltas (a SnapshotHistogram), from which
//                 window quantiles (p50/p99) derive
//   gauges     -> pass through (already instantaneous)
//
// Baseline seeding: the first observation of any (name, labels) key only
// seeds the baseline — it contributes a zero delta, never the cumulative
// value, so a processor that appears mid-run does not report its lifetime
// total as one window's rate.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace adn::obs {

// A histogram's bucket counts detached from the live instrument — either a
// snapshot of a cumulative histogram or the delta between two snapshots.
// This is the one shared home for bucket-quantile math: the telemetry hub,
// adntop and bench_breakdown all derive percentiles through it instead of
// reimplementing the interpolation.
struct SnapshotHistogram {
  std::vector<double> upper_bounds;      // finite bounds, ascending
  std::vector<uint64_t> bucket_counts;   // upper_bounds.size() + 1, +Inf last
  uint64_t count = 0;
  double sum = 0;

  static SnapshotHistogram FromSample(const MetricSample& sample);

  // Bucketwise this-minus-earlier. An empty/default `earlier` acts as a
  // zero baseline; mismatched bucket layouts return *this unchanged (the
  // instrument was re-registered with different bounds).
  SnapshotHistogram DeltaSince(const SnapshotHistogram& earlier) const;

  // Linear-interpolated quantile (q clamped to [0,1]); 0 when empty, values
  // beyond the last finite bound clamp to it (same math as
  // Histogram::Quantile — both call BucketQuantile).
  double Quantile(double q) const;

  bool empty() const { return count == 0; }
};

// One report window's worth of derived telemetry.
struct SeriesWindow {
  int64_t start = 0;
  int64_t end = 0;
  // key = 'name|labels' (the registry's snapshot identity).
  std::map<std::string, uint64_t> counter_deltas;
  std::map<std::string, double> gauges;
  std::map<std::string, SnapshotHistogram> histogram_deltas;
};

class WindowedSeries {
 public:
  // Keeps the most recent `keep_windows` windows for rendering/smoothing.
  explicit WindowedSeries(size_t keep_windows = 64)
      : keep_windows_(keep_windows == 0 ? 1 : keep_windows) {}

  // Diff `snapshot` against the previous one and append a window. Call once
  // per report interval with the window bounds.
  void Ingest(const MetricsSnapshot& snapshot, int64_t window_start,
              int64_t window_end);

  size_t windows() const { return windows_.size(); }
  // i = 0 is the most recent window; i < windows().
  const SeriesWindow& Window(size_t i = 0) const {
    return windows_[windows_.size() - 1 - i];
  }

  // --- Latest-window accessors (0 / empty when the key is unseen) -----------
  uint64_t CounterDelta(std::string_view name, std::string_view labels) const;
  // Delta scaled by the window span (events per second of window time).
  double CounterRatePerSec(std::string_view name,
                           std::string_view labels) const;
  double GaugeValue(std::string_view name, std::string_view labels) const;
  const SnapshotHistogram* HistogramDelta(std::string_view name,
                                          std::string_view labels) const;

  // First label set seen for `name` in the latest window ("" if none) —
  // lets a consumer find e.g. the one adn_rpc_latency_ns series without
  // knowing how the producer labeled it.
  std::string FirstLabels(std::string_view name) const;

 private:
  size_t keep_windows_;
  std::deque<SeriesWindow> windows_;
  // Baselines: last cumulative values, keyed by 'name|labels'.
  std::map<std::string, uint64_t> last_counter_;
  std::map<std::string, SnapshotHistogram> last_histogram_;
};

}  // namespace adn::obs
