#include "obs/event_ring.h"

#include "obs/metrics.h"

namespace adn::obs {

std::string_view EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kSpan: return "span";
    case EventKind::kBurst: return "burst";
    case EventKind::kReconfig: return "reconfig";
    case EventKind::kSwap: return "swap";
  }
  return "?";
}

const std::vector<std::string_view>& ReconfigEventNames() {
  static const std::vector<std::string_view> kNames = {
      kEventReconfigSnapshot, kEventReconfigBulkMerge, kEventReconfigCutover,
      kEventReconfigReplay, kEventReconfigSwapProgram,
  };
  return kNames;
}

// --- EventRing ----------------------------------------------------------------

EventRing::EventRing(size_t capacity) {
  size_t cap = 2;
  while (cap < capacity) cap <<= 1;
  slots_.resize(cap);
  mask_ = cap - 1;
}

size_t EventRing::size() const {
  const uint64_t tail = tail_.load(std::memory_order_acquire);
  const uint64_t head = head_.load(std::memory_order_acquire);
  return static_cast<size_t>(tail - head);
}

bool EventRing::TryEmit(const TraceEvent& e) {
  const uint64_t tail = tail_.load(std::memory_order_relaxed);
  if (tail - head_.load(std::memory_order_acquire) == capacity()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  slots_[tail & mask_] = e;
  tail_.store(tail + 1, std::memory_order_release);
  return true;
}

size_t EventRing::Drain(TraceEvent* out, size_t max) {
  const uint64_t head = head_.load(std::memory_order_relaxed);
  const uint64_t tail = tail_.load(std::memory_order_acquire);
  const size_t avail = static_cast<size_t>(tail - head);
  const size_t k = max < avail ? max : avail;
  for (size_t i = 0; i < k; ++i) {
    out[i] = slots_[(head + i) & mask_];
  }
  if (k > 0) head_.store(head + k, std::memory_order_release);
  return k;
}

// --- EventRingRegistry --------------------------------------------------------

namespace {

// The calling thread's cached ring + the registry generation it was created
// under; a Reset() bumps the generation so the thread re-registers.
struct TlsRing {
  std::shared_ptr<EventRing> ring;
  uint64_t generation = ~0ull;
};
thread_local TlsRing tls_ring;

std::atomic<uint64_t>& GenerationFlag() {
  static std::atomic<uint64_t> generation{0};
  return generation;
}

}  // namespace

EventRingRegistry& EventRingRegistry::Default() {
  static EventRingRegistry registry;
  return registry;
}

EventRing& EventRingRegistry::ThisThreadRing() {
  const uint64_t gen = GenerationFlag().load(std::memory_order_acquire);
  if (tls_ring.ring != nullptr && tls_ring.generation == gen) {
    return *tls_ring.ring;
  }
  std::lock_guard<std::mutex> lock(mu_);
  tls_ring.ring = std::make_shared<EventRing>(default_capacity_);
  tls_ring.generation = generation_;
  rings_.push_back(tls_ring.ring);
  return *tls_ring.ring;
}

void EventRingRegistry::SetThisThreadLabel(std::string_view label) {
  ThisThreadRing().set_label_id(InternName(label));
}

void EventRingRegistry::SetDefaultCapacity(size_t events) {
  std::lock_guard<std::mutex> lock(mu_);
  default_capacity_ = events == 0 ? 2 : events;
}

size_t EventRingRegistry::DrainAll(std::vector<TraceEvent>& out) {
  std::lock_guard<std::mutex> lock(mu_);
  // Counters are resolved lazily so an idle drain (no events ever emitted)
  // does not register them — keeps fresh registries clean for snapshots.
  MetricsRegistry& reg = MetricsRegistry::Default();
  size_t drained = 0;
  TraceEvent buf[256];
  for (const std::shared_ptr<EventRing>& ring : rings_) {
    size_t n;
    while ((n = ring->Drain(buf, 256)) > 0) {
      out.insert(out.end(), buf, buf + n);
      drained += n;
    }
    // Fold this ring's lifetime totals into the process counters exactly
    // once (delta since the previous drain).
    const uint64_t emitted = ring->emitted();
    if (emitted > ring->synced_emitted_) {
      reg.GetCounter("adn_obs_events_total")
          .Inc(emitted - ring->synced_emitted_);
      ring->synced_emitted_ = emitted;
    }
    const uint64_t drops = ring->dropped();
    if (drops > ring->synced_dropped_) {
      reg.GetCounter("adn_obs_events_dropped_total")
          .Inc(drops - ring->synced_dropped_);
      ring->synced_dropped_ = drops;
    }
  }
  return drained;
}

std::vector<EventRingRegistry::RingStats> EventRingRegistry::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<RingStats> out;
  out.reserve(rings_.size());
  for (const std::shared_ptr<EventRing>& ring : rings_) {
    RingStats s;
    s.label = NameOfId(ring->label_id());
    s.depth = ring->size();
    s.capacity = ring->capacity();
    s.emitted = ring->emitted();
    s.dropped = ring->dropped();
    out.push_back(s);
  }
  return out;
}

uint64_t EventRingRegistry::TotalDropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const std::shared_ptr<EventRing>& ring : rings_) {
    total += ring->dropped();
  }
  return total;
}

void EventRingRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  // Park rather than destroy: a producer thread mid-emit still holds a
  // reference (same contract as MetricsRegistry::Reset).
  for (std::shared_ptr<EventRing>& ring : rings_) {
    retired_.push_back(std::move(ring));
  }
  rings_.clear();
  ++generation_;
  GenerationFlag().store(generation_, std::memory_order_release);
}

void EmitEvent(const TraceEvent& e) {
  EventRingRegistry::Default().ThisThreadRing().TryEmit(e);
}

}  // namespace adn::obs
