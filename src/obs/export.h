// JSON export of the observability plane — the machine-readable form of
// everything the registry and tracer hold. Consumed by tools/adntop's dump
// mode, by bench_breakdown, and by tests; the schema is the documented
// telemetry contract (docs/OBSERVABILITY.md, "JSON export format").
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace adn::obs {

// {"metrics": [{name, labels, kind, value, count?, buckets?}, ...]}
std::string ExportMetricsJson(const MetricsSnapshot& snapshot);

// One trace's spans (causal order, as returned by Tracer::SpansForTrace)
// rendered as a nested tree:
// {"trace_id": N, "spans": [{span_id, name, tier, processor, start_ns,
//  end_ns, children: [...]}]}
std::string ExportTraceJson(uint64_t trace_id, const std::vector<Span>& spans);

// The whole plane: {"metrics": [...], "traces": [...]} from the default
// registry and tracer.
std::string ExportJson();

}  // namespace adn::obs
