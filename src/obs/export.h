// JSON export of the observability plane — the machine-readable form of
// everything the registry and tracer hold. Consumed by tools/adntop's dump
// mode, by bench_breakdown, and by tests; the schema is the documented
// telemetry contract (docs/OBSERVABILITY.md, "JSON export format").
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace adn::obs {

// {"metrics": [{name, labels, kind, value, count?, buckets?}, ...]}
std::string ExportMetricsJson(const MetricsSnapshot& snapshot);

// One trace's spans (causal order, as returned by Tracer::SpansForTrace)
// rendered as a nested tree:
// {"trace_id": N, "spans": [{span_id, name, tier, processor, start_ns,
//  end_ns, children: [...]}]}
std::string ExportTraceJson(uint64_t trace_id, const std::vector<Span>& spans);

// The whole plane: {"metrics": [...], "traces": [...]} from the default
// registry and tracer.
std::string ExportJson();

// Chrome-trace ("Trace Event Format") JSON, loadable by chrome://tracing
// and Perfetto. Each span becomes one complete ("ph":"X") event on a
// per-processor thread row; kBurst events become complete events named
// "burst" (args.lanes = lane count); kReconfig/kSwap transitions become
// global instant events ("ph":"i") so blackout windows line up against the
// data-plane spans. Timestamps are obs::NowNs() divided to microseconds.
std::string ExportChromeTraceJson(const std::vector<Span>& spans,
                                  const std::vector<TraceEvent>& events);

// Convenience: Collect() the default tracer and export everything it holds.
std::string ExportChromeTraceJson();

}  // namespace adn::obs
