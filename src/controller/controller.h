// The ADN runtime controller (paper Figure 3, §5.2, §6).
//
// Watches the cluster manager for ADNConfig and deployment changes,
// recompiles programs, solves placement, seeds element state (ACL rules,
// quota, the LB endpoints table derived from live replicas), and reacts to
// data-plane feedback (utilization reports) with scaling recommendations.
//
// Replica churn is handled *without redeploying code*: only the LB elements'
// endpoints tables are recomputed — the tabular-state design at work.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "compiler/compiler.h"
#include "controller/cluster.h"
#include "controller/placement.h"
#include "elements/library.h"
#include "mrpc/adn_path.h"

namespace adn::controller {

struct ControllerOptions {
  PlacementPolicy policy = PlacementPolicy::kNativeOnly;
  PathEnvironment environment;
  compiler::CompileOptions compile;
  // Static policy state injected into element tables at deployment:
  // table name -> rows (e.g. ac_tab rules, quota balances).
  std::vector<std::pair<std::string, std::vector<rpc::Row>>> state_seeds;
  // Scaling thresholds for the feedback loop.
  double scale_out_utilization = 0.80;
  double scale_in_utilization = 0.25;
  int max_engine_width = 8;
};

class AdnController {
 public:
  AdnController(ClusterState* cluster, ControllerOptions options);

  // --- Reconciliation -------------------------------------------------------
  // Deployment state after the last successful reconcile.
  struct Deployment {
    compiler::CompiledProgram program;
    std::vector<PlacementDecision> placements;  // parallel to program.chains
    int64_t generation = 0;
  };
  const Deployment* deployment() const {
    return has_deployment_ ? &deployment_ : nullptr;
  }
  const Status& last_status() const { return last_status_; }
  int reconcile_count() const { return reconcile_count_; }
  int endpoint_updates() const { return endpoint_updates_; }

  // --- Data-plane provisioning ----------------------------------------------
  // Build placed stage factories for a compiled chain: generated stages for
  // SQL elements (state seeded), host filter operators for FILTER elements.
  Result<std::vector<mrpc::PlacedStage>> BuildStages(
      std::string_view chain_name, uint64_t seed_base) const;

  // The LB routing rows for the callee service of a chain: shard -> endpoint
  // over elements::kLbShards shards, round-robin across live replicas.
  std::vector<rpc::Row> EndpointRows(std::string_view service) const;

  // --- Feedback loop ----------------------------------------------------------
  // Given an engine's utilization in the last window, recommend a width.
  int RecommendEngineWidth(double utilization, int current_width) const;

 private:
  void OnEvent(const ClusterEvent& event);
  void Reconcile();

  ClusterState* cluster_;
  ControllerOptions options_;
  compiler::Compiler compiler_;
  Deployment deployment_;
  bool has_deployment_ = false;
  Status last_status_;
  int reconcile_count_ = 0;
  int endpoint_updates_ = 0;
};

}  // namespace adn::controller
