#include "controller/controller.h"

#include "elements/filter_ops.h"

namespace adn::controller {

AdnController::AdnController(ClusterState* cluster, ControllerOptions options)
    : cluster_(cluster), options_(std::move(options)) {
  cluster_->Watch([this](const ClusterEvent& event) { OnEvent(event); });
}

void AdnController::OnEvent(const ClusterEvent& event) {
  switch (event.kind) {
    case ClusterEvent::Kind::kConfigApplied:
      Reconcile();
      break;
    case ClusterEvent::Kind::kReplicaAdded:
    case ClusterEvent::Kind::kReplicaRemoved:
      // Deployment churn: LB endpoints tables change, code does not. The
      // data plane picks fresh EndpointRows() on its next state sync.
      ++endpoint_updates_;
      break;
    default:
      break;
  }
}

void AdnController::Reconcile() {
  ++reconcile_count_;
  // Compile every applied config; the latest one wins per chain name. The
  // prototype scope matches the paper's: one ADNConfig at a time.
  const AdnConfigResource* latest = nullptr;
  for (const auto& service : cluster_->services()) {
    (void)service;
  }
  // ClusterState stores configs privately; reconcile over the most recent
  // generation via FindConfig requires the name — we track by re-walking all
  // configs through a friend accessor-free approach: ApplyConfig callers use
  // one well-known name.
  latest = cluster_->FindConfig("adn-program");
  if (latest == nullptr) {
    last_status_ = Status(ErrorCode::kNotFound,
                          "no ADNConfig named 'adn-program' applied");
    return;
  }
  compiler::CompileOptions compile_options = options_.compile;
  if (options_.policy == PlacementPolicy::kMinHostCpu ||
      options_.policy == PlacementPolicy::kMinLatency) {
    // Offload-seeking policies want hardware-feasible elements late in the
    // chain so they can sit on the switch/NIC side of the path.
    compile_options.passes.order_strategy =
        compiler::OrderStrategy::kOffloadSink;
  }
  auto compiled =
      compiler_.CompileSource(latest->program_source, compile_options);
  if (!compiled.ok()) {
    last_status_ = compiled.status();
    return;
  }
  Deployment next;
  next.program = std::move(compiled).value();
  next.generation = latest->generation;
  for (const auto& chain : next.program.chains) {
    auto placement =
        PlaceChain(chain, options_.environment, options_.policy);
    if (!placement.ok()) {
      last_status_ = placement.status();
      return;
    }
    next.placements.push_back(std::move(placement).value());
  }
  deployment_ = std::move(next);
  has_deployment_ = true;
  last_status_ = Status::Ok();
}

std::vector<rpc::Row> AdnController::EndpointRows(
    std::string_view service) const {
  std::vector<rpc::Row> rows;
  const ServiceSpec* spec = cluster_->FindService(service);
  if (spec == nullptr || spec->replicas.empty()) return rows;
  for (int shard = 0; shard < elements::kLbShards; ++shard) {
    const ReplicaSpec& replica =
        spec->replicas[static_cast<size_t>(shard) % spec->replicas.size()];
    rows.push_back(rpc::Row{
        rpc::Value(static_cast<int64_t>(shard)),
        rpc::Value(static_cast<int64_t>(replica.endpoint)),
    });
  }
  return rows;
}

Result<std::vector<mrpc::PlacedStage>> AdnController::BuildStages(
    std::string_view chain_name, uint64_t seed_base) const {
  if (!has_deployment_) {
    return Error(ErrorCode::kFailedPrecondition,
                 "no deployment yet (apply an ADNConfig first)");
  }
  const compiler::CompiledChain* chain = nullptr;
  const PlacementDecision* placement = nullptr;
  for (size_t i = 0; i < deployment_.program.chains.size(); ++i) {
    if (deployment_.program.chains[i].name == chain_name) {
      chain = &deployment_.program.chains[i];
      placement = &deployment_.placements[i];
      break;
    }
  }
  if (chain == nullptr) {
    return Error(ErrorCode::kNotFound,
                 "chain '" + std::string(chain_name) + "' not deployed");
  }

  // Assemble per-element seeds: static policy tables + live endpoints.
  std::vector<std::pair<std::string, std::vector<rpc::Row>>> seeds =
      options_.state_seeds;
  seeds.emplace_back("endpoints", EndpointRows(chain->callee_service));

  std::vector<mrpc::PlacedStage> out;
  for (size_t i = 0; i < chain->elements.size(); ++i) {
    const compiler::CompiledElement& element = chain->elements[i];
    mrpc::PlacedStage placed;
    placed.site = placement->sites[i];
    if (i < chain->parallel_groups.size()) {
      placed.parallel_group = chain->parallel_groups[i];
    }
    auto code = element.ir;
    uint64_t seed = seed_base + i * 7919;
    if (code->IsFilter()) {
      const ir::FilterIr filter = *code->filter_op;
      placed.factory = [filter]() -> std::unique_ptr<mrpc::EngineStage> {
        auto stage = elements::MakeFilterStage(filter);
        // Validated at compile time; factory failure means a programming
        // error in the op registry.
        return stage.ok() ? std::move(stage).value() : nullptr;
      };
    } else {
      placed.factory = [code, seed,
                        seeds]() -> std::unique_ptr<mrpc::EngineStage> {
        auto stage = std::make_unique<mrpc::GeneratedStage>(code, seed);
        for (const auto& [table, rows] : seeds) {
          rpc::Table* t = stage->instance().FindTable(table);
          if (t == nullptr) continue;
          for (const rpc::Row& row : rows) {
            Status s = t->Insert(row);
            (void)s;  // seed rows are schema-checked by tests
          }
        }
        return stage;
      };
    }
    out.push_back(std::move(placed));
  }
  return out;
}

int AdnController::RecommendEngineWidth(double utilization,
                                        int current_width) const {
  if (utilization > options_.scale_out_utilization) {
    return std::min(options_.max_engine_width, current_width * 2);
  }
  if (utilization < options_.scale_in_utilization && current_width > 1) {
    return current_width / 2;
  }
  return current_width;
}

}  // namespace adn::controller
