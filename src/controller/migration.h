// State migration: scale-out, scale-in and hot update of stateful element
// instances without losing state or messages (paper §5.2: "To migrate or
// scale out a load balancer, the controller can copy over its state and
// start running a new instance; while reducing the number of load balancer
// instances, it can merge their states and kill some instances. ... State
// decoupling also enables us to hot-update element processing logic.").
//
// The protocol modeled here is pause -> drain -> snapshot/shard -> resume:
// messages arriving during the pause are queued (never dropped), and the
// pause duration is proportional to the snapshot size. Tests assert that
// split+merge round-trips the exact table contents (content hashes equal).
#pragma once

#include <memory>
#include <vector>

#include "mrpc/engine.h"
#include "sim/simulator.h"

namespace adn::controller {

struct MigrationReport {
  size_t state_bytes = 0;
  sim::SimTime pause_ns = 0;  // data-plane pause while state moves
  uint64_t source_state_hash = 0;
  uint64_t result_state_hash = 0;  // XOR across result instances
  bool lossless() const { return source_state_hash == result_state_hash; }
};

// Pause model: fixed reconfiguration handshake + per-byte copy cost.
sim::SimTime EstimatePauseNs(size_t state_bytes);

// Shard one instance's state across `n` fresh instances of the same code.
struct ScaleOutResult {
  std::vector<std::unique_ptr<mrpc::GeneratedStage>> instances;
  MigrationReport report;
};
Result<ScaleOutResult> ScaleOutStage(const mrpc::GeneratedStage& source,
                                     size_t n, uint64_t seed_base);

// Merge several instances' state into one fresh instance.
struct ScaleInResult {
  std::unique_ptr<mrpc::GeneratedStage> instance;
  MigrationReport report;
};
Result<ScaleInResult> ScaleInStages(
    const std::vector<const mrpc::GeneratedStage*>& sources,
    uint64_t seed);

// Replace the element code while carrying the state over. Fails when the
// new code's state schema is incompatible.
Result<ScaleInResult> HotUpdateStage(
    const mrpc::GeneratedStage& running,
    std::shared_ptr<const ir::ElementIr> new_code, uint64_t seed);

}  // namespace adn::controller
