// State migration: scale-out, scale-in and hot update of stateful element
// instances without losing state or messages (paper §5.2: "To migrate or
// scale out a load balancer, the controller can copy over its state and
// start running a new instance; while reducing the number of load balancer
// instances, it can merge their states and kill some instances. ... State
// decoupling also enables us to hot-update element processing logic.").
//
// Two cutover policies share one shard/merge implementation
// (docs/RECONFIG.md):
//  - kPauseDrain: the classic pause -> drain -> snapshot/shard -> resume.
//    Messages arriving during the pause are queued (never dropped), and the
//    pause is proportional to the FULL snapshot size.
//  - kLive: snapshot-diff cutover. The bulk copy happens while the source
//    keeps serving; at cutover only the mutation delta (rows changed since
//    the baseline) replays, so the charged blackout is proportional to the
//    DELTA, not the state. The protocol legs (baseline -> bulk copy -> diff
//    -> apply) run for real via ir::StateBaseline / ir::StateDelta.
// Tests assert that either policy round-trips the exact table contents
// (content hashes equal).
#pragma once

#include <memory>
#include <vector>

#include "ir/state_delta.h"
#include "mrpc/engine.h"
#include "sim/simulator.h"

namespace adn::controller {

enum class CutoverPolicy {
  kPauseDrain,  // blackout ∝ full state size
  kLive,        // blackout ∝ mutation delta (handshake-dominated when quiet)
};

struct MigrationReport {
  size_t state_bytes = 0;
  sim::SimTime pause_ns = 0;  // data-plane pause while state moves
  uint64_t source_state_hash = 0;
  uint64_t result_state_hash = 0;  // XOR across result instances
  // kLive only: rows replayed at cutover and the delta's wire size.
  uint64_t delta_replayed = 0;
  size_t delta_bytes = 0;
  bool lossless() const { return source_state_hash == result_state_hash; }
};

// Pause model: fixed reconfiguration handshake + per-byte copy cost.
sim::SimTime EstimatePauseNs(size_t state_bytes);

// Shard one instance's state across `n` fresh instances of the same code.
struct ScaleOutResult {
  std::vector<std::unique_ptr<mrpc::GeneratedStage>> instances;
  MigrationReport report;
};
Result<ScaleOutResult> ScaleOutStage(const mrpc::GeneratedStage& source,
                                     size_t n, uint64_t seed_base);

// Merge several instances' state into one fresh instance.
struct ScaleInResult {
  std::unique_ptr<mrpc::GeneratedStage> instance;
  MigrationReport report;
};
Result<ScaleInResult> ScaleInStages(
    const std::vector<const mrpc::GeneratedStage*>& sources,
    uint64_t seed);

// The one width-migration implementation both policies (and the autoscaler)
// share: shard `source`'s state across `width` instances, merge back into
// the one logical instance the simulated chain executes, and charge the
// blackout per `policy` — kPauseDrain pays the full-state pause, kLive runs
// the baseline/diff/apply legs for real and pays only the delta.
Result<ScaleInResult> MigrateStageWidth(const mrpc::GeneratedStage& source,
                                        size_t width, uint64_t seed_base,
                                        CutoverPolicy policy);

// Replace the element code while carrying the state over. Fails when the
// new code's state schema is incompatible (ir::CheckStateCompatible).
Result<ScaleInResult> HotUpdateStage(
    const mrpc::GeneratedStage& running,
    std::shared_ptr<const ir::ElementIr> new_code, uint64_t seed);

}  // namespace adn::controller
