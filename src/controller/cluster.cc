#include "controller/cluster.h"

namespace adn::controller {

void ClusterState::Emit(const ClusterEvent& event) {
  for (const auto& w : watchers_) w(event);
}

Status ClusterState::AddMachine(MachineSpec machine) {
  if (FindMachine(machine.name) != nullptr) {
    return Status(ErrorCode::kAlreadyExists,
                  "machine '" + machine.name + "' already exists");
  }
  std::string name = machine.name;
  machines_.push_back(std::move(machine));
  Emit({ClusterEvent::Kind::kMachineAdded, name});
  return Status::Ok();
}

Status ClusterState::AddService(std::string name) {
  if (FindService(name) != nullptr) {
    return Status(ErrorCode::kAlreadyExists,
                  "service '" + name + "' already exists");
  }
  services_.push_back(ServiceSpec{name, {}});
  Emit({ClusterEvent::Kind::kServiceAdded, name});
  return Status::Ok();
}

Result<rpc::EndpointId> ClusterState::AddReplica(std::string_view service,
                                                 std::string_view machine) {
  if (FindMachine(machine) == nullptr) {
    return Error(ErrorCode::kNotFound,
                 "machine '" + std::string(machine) + "' not found");
  }
  for (ServiceSpec& s : services_) {
    if (s.name == service) {
      rpc::EndpointId endpoint = next_endpoint_++;
      s.replicas.push_back(ReplicaSpec{endpoint, std::string(machine)});
      ClusterEvent event{ClusterEvent::Kind::kReplicaAdded, s.name};
      event.endpoint = endpoint;
      Emit(event);
      return endpoint;
    }
  }
  return Error(ErrorCode::kNotFound,
               "service '" + std::string(service) + "' not found");
}

Status ClusterState::RemoveReplica(std::string_view service,
                                   rpc::EndpointId endpoint) {
  for (ServiceSpec& s : services_) {
    if (s.name != service) continue;
    for (auto it = s.replicas.begin(); it != s.replicas.end(); ++it) {
      if (it->endpoint == endpoint) {
        s.replicas.erase(it);
        ClusterEvent event{ClusterEvent::Kind::kReplicaRemoved, s.name};
        event.endpoint = endpoint;
        Emit(event);
        return Status::Ok();
      }
    }
    return Status(ErrorCode::kNotFound,
                  "endpoint " + std::to_string(endpoint) + " not in service " +
                      std::string(service));
  }
  return Status(ErrorCode::kNotFound,
                "service '" + std::string(service) + "' not found");
}

Status ClusterState::ApplyConfig(std::string name,
                                 std::string program_source) {
  for (AdnConfigResource& c : configs_) {
    if (c.name == name) {
      c.program_source = std::move(program_source);
      ++c.generation;
      Emit({ClusterEvent::Kind::kConfigApplied, name});
      return Status::Ok();
    }
  }
  configs_.push_back(AdnConfigResource{name, std::move(program_source), 1});
  Emit({ClusterEvent::Kind::kConfigApplied, std::move(name)});
  return Status::Ok();
}

const MachineSpec* ClusterState::FindMachine(std::string_view name) const {
  for (const auto& m : machines_) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

const ServiceSpec* ClusterState::FindService(std::string_view name) const {
  for (const auto& s : services_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const AdnConfigResource* ClusterState::FindConfig(
    std::string_view name) const {
  for (const auto& c : configs_) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

}  // namespace adn::controller
