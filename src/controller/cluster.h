// Simulated cluster manager — the Kubernetes stand-in the ADN controller
// watches (paper §5.2: "The ADN controller is a logically centralized
// component that has global knowledge (acquired via cluster managers such as
// Kubernetes) of the network topology, service locations, and available ADN
// processors"; §6: the prototype watches an ADNConfig custom resource).
//
// Machines expose their processor inventory (cores, SmartNIC, programmable
// switch on their network path); services own replica sets of endpoints;
// ADNConfig resources carry DSL programs. Every mutation emits a watch
// event, which is what drives the controller's reconcile loop.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "rpc/message.h"

namespace adn::controller {

struct MachineSpec {
  std::string name;
  int cores = 8;
  bool has_smartnic = false;
  // True when the ToR on this machine's path is programmable.
  bool p4_switch_on_path = false;
};

struct ReplicaSpec {
  rpc::EndpointId endpoint = rpc::kInvalidEndpoint;
  std::string machine;
};

struct ServiceSpec {
  std::string name;
  std::vector<ReplicaSpec> replicas;
};

// The ADNConfig custom resource (paper §6).
struct AdnConfigResource {
  std::string name;
  std::string program_source;  // DSL text
  int64_t generation = 0;      // bumped on every apply
};

struct ClusterEvent {
  enum class Kind {
    kMachineAdded,
    kServiceAdded,
    kReplicaAdded,
    kReplicaRemoved,
    kConfigApplied,
  };
  Kind kind;
  std::string subject;  // machine/service/config name
  rpc::EndpointId endpoint = rpc::kInvalidEndpoint;  // replica events
};

class ClusterState {
 public:
  using WatchCallback = std::function<void(const ClusterEvent&)>;

  // Watchers receive every event emitted after subscription.
  void Watch(WatchCallback callback) {
    watchers_.push_back(std::move(callback));
  }

  Status AddMachine(MachineSpec machine);
  Status AddService(std::string name);
  // Returns the assigned endpoint id.
  Result<rpc::EndpointId> AddReplica(std::string_view service,
                                     std::string_view machine);
  Status RemoveReplica(std::string_view service, rpc::EndpointId endpoint);
  Status ApplyConfig(std::string name, std::string program_source);

  const MachineSpec* FindMachine(std::string_view name) const;
  const ServiceSpec* FindService(std::string_view name) const;
  const AdnConfigResource* FindConfig(std::string_view name) const;

  const std::vector<MachineSpec>& machines() const { return machines_; }
  const std::vector<ServiceSpec>& services() const { return services_; }

 private:
  void Emit(const ClusterEvent& event);

  std::vector<MachineSpec> machines_;
  std::vector<ServiceSpec> services_;
  std::vector<AdnConfigResource> configs_;
  std::vector<WatchCallback> watchers_;
  rpc::EndpointId next_endpoint_ = 1;
};

}  // namespace adn::controller
