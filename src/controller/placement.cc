#include "controller/placement.h"

#include <array>
#include <limits>

namespace adn::controller {

using compiler::CompiledChain;
using compiler::CompiledElement;
using compiler::TargetPlatform;
using mrpc::Site;

namespace {

// Candidate sites in request-path order; placement must be monotone over
// this order.
constexpr std::array<Site, 8> kPathOrder = {
    Site::kClientApp,    Site::kClientEngine, Site::kClientKernel,
    Site::kSwitch,       Site::kServerNic,    Site::kServerKernel,
    Site::kServerEngine, Site::kServerApp,
};

TargetPlatform PlatformOf(Site site) {
  switch (site) {
    case Site::kClientKernel:
    case Site::kServerKernel:
      return TargetPlatform::kEbpf;
    case Site::kSwitch:
      return TargetPlatform::kP4Switch;
    case Site::kServerNic:
      return TargetPlatform::kSmartNic;
    default:
      return TargetPlatform::kNative;
  }
}

bool SiteAvailable(Site site, const PathEnvironment& env) {
  switch (site) {
    case Site::kClientApp:
    case Site::kServerApp:
      return env.allow_in_app;
    case Site::kClientEngine:
    case Site::kServerEngine:
      // Always available: even under kInApp the engines remain the fallback
      // for TRUSTED elements that must not run inside application binaries.
      return true;
    case Site::kClientKernel:
      return env.sender_kernel_offload;
    case Site::kServerKernel:
      return env.receiver_kernel_offload;
    case Site::kSwitch:
      return env.p4_switch_on_path;
    case Site::kServerNic:
      return env.receiver_smartnic;
  }
  return false;
}

bool SatisfiesConstraint(Site site, dsl::LocationConstraint constraint,
                         const PathEnvironment& env) {
  const bool is_app = site == Site::kClientApp || site == Site::kServerApp;
  const bool sender_side =
      site == Site::kClientApp || site == Site::kClientEngine ||
      site == Site::kClientKernel;
  const bool receiver_side =
      site == Site::kServerNic || site == Site::kServerKernel ||
      site == Site::kServerEngine || site == Site::kServerApp;
  switch (constraint) {
    case dsl::LocationConstraint::kAny:
      return true;
    case dsl::LocationConstraint::kSender:
      return sender_side;
    case dsl::LocationConstraint::kReceiver:
      return receiver_side;
    case dsl::LocationConstraint::kTrusted:
      return !is_app || env.trust_app_binaries;
  }
  return false;
}

bool DirectionAllows(const ir::ElementIr& element, Site site) {
  if (element.direction == dsl::Direction::kRequest) return true;
  // Response/BOTH elements must sit on sites the response path traverses
  // with processing capability: apps and engines.
  return site == Site::kClientApp || site == Site::kClientEngine ||
         site == Site::kServerEngine || site == Site::kServerApp;
}

bool PlatformFeasible(const CompiledElement& element, Site site) {
  switch (PlatformOf(site)) {
    case TargetPlatform::kNative:
    case TargetPlatform::kSmartNic:
      return true;
    case TargetPlatform::kEbpf:
      return element.ebpf.feasible;
    case TargetPlatform::kP4Switch:
      return element.p4.feasible;
  }
  return false;
}

// Expected round trip a cache hit at `site` never takes: the request would
// have continued to the server app and back. Each remaining path hop is
// roughly a kernel/PCIe crossing each way; crossing the wire adds
// propagation and transport both ways; the server app contributes its
// handler. Earlier sites save more of the path — this is the term that
// pulls caches toward the client.
double CacheHitSavingNs(Site site, const sim::CostModel& model) {
  size_t idx = 0;
  for (size_t j = 0; j < kPathOrder.size(); ++j) {
    if (kPathOrder[j] == site) idx = j;
  }
  const size_t last = kPathOrder.size() - 1;
  double saving = static_cast<double>(last - idx) * 2.0 *
                  static_cast<double>(model.kernel_crossing_ns);
  const bool client_side_of_wire = idx <= 2;  // before kSwitch in path order
  if (client_side_of_wire) {
    saving += 2.0 * static_cast<double>(model.wire_propagation_ns) +
              static_cast<double>(model.mrpc_tcp_tx_ns + model.mrpc_tcp_rx_ns);
  }
  saving += static_cast<double>(model.app_handler_ns);
  return saving;
}

// Per-element cost of running at a site, by policy. Lower is better.
double SiteCost(const CompiledElement& element, Site site,
                PlacementPolicy policy, const sim::CostModel& model) {
  double native_ns = compiler::EstimateCostNs(
      *element.ir, TargetPlatform::kNative, model, /*payload_bytes=*/64);
  double on_target_ns = compiler::EstimateCostNs(*element.ir, PlatformOf(site),
                                                 model, /*payload_bytes=*/64);
  const bool host = site != Site::kSwitch && site != Site::kServerNic;
  switch (policy) {
    case PlacementPolicy::kNativeOnly:
      // Strongly prefer engines; mild preference for the client side so the
      // whole chain lands on one runtime (fewer partial graphs).
      if (site == Site::kClientEngine) return 0;
      if (site == Site::kServerEngine) return 1;
      return 1e9;
    case PlacementPolicy::kInApp:
      if (site == Site::kClientApp) return 0;
      if (site == Site::kServerApp) return 1;
      return 1e9;
    case PlacementPolicy::kMinHostCpu:
      // Offloaded cycles are free host-wise; tiny tie-break toward earlier
      // (drop-early keeps working) and toward cheaper targets.
      return (host ? on_target_ns : 0.0) + on_target_ns * 1e-3;
    case PlacementPolicy::kMinLatency: {
      // Per-site latency contribution: the work itself plus the hop tax of
      // activating a detour site.
      double hop_tax = 0;
      switch (site) {
        case Site::kClientEngine:
        case Site::kServerEngine:
          hop_tax = static_cast<double>(2 * model.shm_hop_ns +
                                        model.mrpc_engine_dispatch_ns);
          break;
        case Site::kSwitch:
          hop_tax = static_cast<double>(model.p4_pipeline_ns);
          break;
        default:
          break;
      }
      if (element.ir->IsCache()) {
        // Hit-rate-aware: expected per-message cache work plus the hop tax,
        // minus the downstream round trip the expected hits never take. The
        // saving term shrinks as the site moves toward the server, so under
        // kMinLatency the cache lands as close to the client as constraints
        // allow (net-negative cost is fine — the DP only compares sums).
        double hit = model.cache_default_hit_rate;
        double work = static_cast<double>(model.cache_lookup_ns) +
                      (1.0 - hit) * static_cast<double>(model.cache_fill_ns);
        return work + hop_tax - hit * CacheHitSavingNs(site, model);
      }
      return on_target_ns + hop_tax;
    }
  }
  return native_ns;
}

}  // namespace

std::string_view PlacementPolicyName(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kNativeOnly: return "native-only";
    case PlacementPolicy::kInApp: return "in-app";
    case PlacementPolicy::kMinHostCpu: return "min-host-cpu";
    case PlacementPolicy::kMinLatency: return "min-latency";
  }
  return "?";
}

std::string PlacementDecision::DebugString(
    const CompiledChain& chain) const {
  std::string out;
  for (size_t i = 0; i < sites.size(); ++i) {
    out += chain.elements[i].ir->name;
    out += " @ ";
    out += SiteName(sites[i]);
    out += " (";
    out += compiler::TargetPlatformName(platforms[i]);
    out += ")";
    if (i + 1 < sites.size()) out += ", ";
  }
  return out;
}

Result<PlacementDecision> PlaceChain(const CompiledChain& chain,
                                     const PathEnvironment& environment,
                                     PlacementPolicy policy) {
  const size_t n = chain.elements.size();
  const size_t s = kPathOrder.size();
  const sim::CostModel& model = sim::CostModel::Default();
  constexpr double kInfeasible = std::numeric_limits<double>::infinity();

  // feasible[i][j]: element i may run at site j.
  std::vector<std::array<double, 8>> cost(n);
  for (size_t i = 0; i < n; ++i) {
    const CompiledElement& element = chain.elements[i];
    for (size_t j = 0; j < s; ++j) {
      Site site = kPathOrder[j];
      bool ok = SiteAvailable(site, environment) &&
                SatisfiesConstraint(site, chain.constraints[i], environment) &&
                DirectionAllows(*element.ir, site) &&
                PlatformFeasible(element, site);
      // kNativeOnly/kInApp still need a fallback when their preferred site
      // is unavailable; infeasible stays infeasible.
      cost[i][j] = ok ? SiteCost(element, site, policy, model) : kInfeasible;
    }
  }

  // DP: best[i][j] = min total cost placing elements 0..i with element i at
  // site j, sites non-decreasing.
  std::vector<std::array<double, 8>> best(n);
  std::vector<std::array<int, 8>> parent(n);
  for (size_t j = 0; j < s; ++j) {
    best[0][j] = cost[0][j];
    parent[0][j] = -1;
  }
  for (size_t i = 1; i < n; ++i) {
    for (size_t j = 0; j < s; ++j) {
      best[i][j] = kInfeasible;
      parent[i][j] = -1;
      if (cost[i][j] == kInfeasible) continue;
      for (size_t k = 0; k <= j; ++k) {
        if (best[i - 1][k] == kInfeasible) continue;
        double total = best[i - 1][k] + cost[i][j];
        if (total < best[i][j]) {
          best[i][j] = total;
          parent[i][j] = static_cast<int>(k);
        }
      }
    }
  }

  // Pick the best terminal site.
  size_t end = s;
  double best_total = kInfeasible;
  for (size_t j = 0; j < s; ++j) {
    if (best[n - 1][j] < best_total) {
      best_total = best[n - 1][j];
      end = j;
    }
  }
  if (end == s) {
    // Diagnose: find the first element with no feasible site at all.
    for (size_t i = 0; i < n; ++i) {
      bool any = false;
      for (size_t j = 0; j < s; ++j) {
        if (cost[i][j] != kInfeasible) any = true;
      }
      if (!any) {
        return Error(ErrorCode::kResourceExhausted,
                     "element '" + chain.elements[i].ir->name +
                         "' has no feasible processor in this environment "
                         "(constraint " +
                         std::string(dsl::LocationConstraintName(
                             chain.constraints[i])) +
                         ", policy " + std::string(PlacementPolicyName(policy)) +
                         ")");
      }
    }
    return Error(ErrorCode::kResourceExhausted,
                 "no monotone placement satisfies the chain's location "
                 "constraints in this environment");
  }

  PlacementDecision decision;
  decision.sites.resize(n);
  decision.platforms.resize(n);
  decision.rationale.resize(n);
  size_t j = end;
  for (size_t i = n; i-- > 0;) {
    decision.sites[i] = kPathOrder[j];
    decision.platforms[i] = PlatformOf(kPathOrder[j]);
    const bool host = kPathOrder[j] != Site::kSwitch &&
                      kPathOrder[j] != Site::kServerNic;
    double ns = compiler::EstimateCostNs(*chain.elements[i].ir,
                                         decision.platforms[i], model, 64);
    if (host) decision.estimated_host_cpu_ns += ns;
    decision.rationale[i] =
        std::string(SiteName(kPathOrder[j])) + " via " +
        std::string(compiler::TargetPlatformName(decision.platforms[i]));
    if (i > 0) j = static_cast<size_t>(parent[i][j]);
  }
  return decision;
}

}  // namespace adn::controller
