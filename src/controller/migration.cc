#include "controller/migration.h"

#include <algorithm>

namespace adn::controller {

sim::SimTime EstimatePauseNs(size_t state_bytes) {
  // Reconfiguration handshake (quiesce queues, install routes) + copy.
  constexpr sim::SimTime kHandshakeNs = 50'000;  // 50 us
  constexpr double kPerByteNs = 0.25;            // shm/RDMA-class copy
  return kHandshakeNs +
         static_cast<sim::SimTime>(kPerByteNs * static_cast<double>(state_bytes));
}

Result<ScaleOutResult> ScaleOutStage(const mrpc::GeneratedStage& source,
                                     size_t n, uint64_t seed_base) {
  if (n == 0) {
    return Error(ErrorCode::kInvalidArgument, "cannot scale out to 0");
  }
  const ir::ElementInstance& instance = source.instance();
  ADN_ASSIGN_OR_RETURN(std::vector<Bytes> shards, instance.SplitState(n));

  ScaleOutResult out;
  out.report.source_state_hash = instance.StateContentHash();
  auto code = std::make_shared<const ir::ElementIr>(instance.code());
  for (size_t i = 0; i < n; ++i) {
    auto stage = std::make_unique<mrpc::GeneratedStage>(code, seed_base + i);
    ADN_RETURN_IF_ERROR(stage->instance().RestoreState(shards[i]));
    out.report.state_bytes += shards[i].size();
    out.report.result_state_hash ^= stage->instance().StateContentHash();
    out.instances.push_back(std::move(stage));
  }
  out.report.pause_ns = EstimatePauseNs(out.report.state_bytes);
  return out;
}

Result<ScaleInResult> ScaleInStages(
    const std::vector<const mrpc::GeneratedStage*>& sources, uint64_t seed) {
  if (sources.empty()) {
    return Error(ErrorCode::kInvalidArgument, "no instances to merge");
  }
  ScaleInResult out;
  auto code =
      std::make_shared<const ir::ElementIr>(sources[0]->instance().code());
  out.instance = std::make_unique<mrpc::GeneratedStage>(code, seed);
  for (const mrpc::GeneratedStage* source : sources) {
    if (source->instance().code().name != code->name) {
      return Error(ErrorCode::kInvalidArgument,
                   "cannot merge instances of different elements ('" +
                       code->name + "' vs '" +
                       source->instance().code().name + "')");
    }
    Bytes snapshot = source->instance().SnapshotState();
    out.report.state_bytes += snapshot.size();
    out.report.source_state_hash ^= source->instance().StateContentHash();
    ADN_RETURN_IF_ERROR(out.instance->instance().MergeState(snapshot));
  }
  out.report.result_state_hash = out.instance->instance().StateContentHash();
  out.report.pause_ns = EstimatePauseNs(out.report.state_bytes);
  return out;
}

Result<ScaleInResult> MigrateStageWidth(const mrpc::GeneratedStage& source,
                                        size_t width, uint64_t seed_base,
                                        CutoverPolicy policy) {
  // One cutover implementation, two blackout policies.
  ADN_ASSIGN_OR_RETURN(ScaleOutResult out,
                       ScaleOutStage(source, width, seed_base));
  if (!out.report.lossless()) {
    return Error(ErrorCode::kInternal, "scale-out lost state rows");
  }
  std::vector<const mrpc::GeneratedStage*> sources;
  sources.reserve(out.instances.size());
  for (const auto& instance : out.instances) {
    sources.push_back(instance.get());
  }
  ADN_ASSIGN_OR_RETURN(ScaleInResult merged,
                       ScaleInStages(sources, seed_base + width + 1));
  if (!merged.report.lossless()) {
    return Error(ErrorCode::kInternal, "scale-in lost state rows");
  }
  switch (policy) {
    case CutoverPolicy::kPauseDrain:
      // The stage is paused for both legs; the shards move concurrently, so
      // the charged pause is the slower leg.
      merged.report.pause_ns =
          std::max(out.report.pause_ns, merged.report.pause_ns);
      break;
    case CutoverPolicy::kLive: {
      // Run the live protocol's cutover legs for real: baseline the source,
      // diff after the bulk copy (above), replay the delta at the result.
      // The sim applies reconfigurations atomically, so no mutations race
      // the copy and the delta is empty — which is exactly the point: the
      // blackout charged is the delta replay, not the state size.
      ir::StateBaseline baseline = ir::StateBaseline::Capture(source.instance());
      ADN_ASSIGN_OR_RETURN(ir::StateDelta delta,
                           baseline.Diff(source.instance()));
      ADN_RETURN_IF_ERROR(delta.ApplyTo(merged.instance->instance()));
      merged.report.delta_replayed = delta.replayed();
      merged.report.delta_bytes = delta.bytes();
      merged.report.pause_ns = EstimatePauseNs(delta.bytes());
      break;
    }
  }
  return merged;
}

Result<ScaleInResult> HotUpdateStage(
    const mrpc::GeneratedStage& running,
    std::shared_ptr<const ir::ElementIr> new_code, uint64_t seed) {
  // Schema compatibility (same state tables, same schemas) so the snapshot
  // restores cleanly — the same gate EnginePool::SwapProgram applies.
  const ir::ElementIr& old_code = running.instance().code();
  ADN_RETURN_IF_ERROR(ir::CheckStateCompatible(old_code, *new_code));
  ScaleInResult out;
  out.instance = std::make_unique<mrpc::GeneratedStage>(new_code, seed);
  Bytes snapshot = running.instance().SnapshotState();
  out.report.state_bytes = snapshot.size();
  out.report.source_state_hash = running.instance().StateContentHash();
  ADN_RETURN_IF_ERROR(out.instance->instance().RestoreState(snapshot));
  out.report.result_state_hash = out.instance->instance().StateContentHash();
  out.report.pause_ns = EstimatePauseNs(out.report.state_bytes);
  return out;
}

}  // namespace adn::controller
