#include "controller/migration.h"

namespace adn::controller {

sim::SimTime EstimatePauseNs(size_t state_bytes) {
  // Reconfiguration handshake (quiesce queues, install routes) + copy.
  constexpr sim::SimTime kHandshakeNs = 50'000;  // 50 us
  constexpr double kPerByteNs = 0.25;            // shm/RDMA-class copy
  return kHandshakeNs +
         static_cast<sim::SimTime>(kPerByteNs * static_cast<double>(state_bytes));
}

Result<ScaleOutResult> ScaleOutStage(const mrpc::GeneratedStage& source,
                                     size_t n, uint64_t seed_base) {
  if (n == 0) {
    return Error(ErrorCode::kInvalidArgument, "cannot scale out to 0");
  }
  const ir::ElementInstance& instance = source.instance();
  ADN_ASSIGN_OR_RETURN(std::vector<Bytes> shards, instance.SplitState(n));

  ScaleOutResult out;
  out.report.source_state_hash = instance.StateContentHash();
  auto code = std::make_shared<const ir::ElementIr>(instance.code());
  for (size_t i = 0; i < n; ++i) {
    auto stage = std::make_unique<mrpc::GeneratedStage>(code, seed_base + i);
    ADN_RETURN_IF_ERROR(stage->instance().RestoreState(shards[i]));
    out.report.state_bytes += shards[i].size();
    out.report.result_state_hash ^= stage->instance().StateContentHash();
    out.instances.push_back(std::move(stage));
  }
  out.report.pause_ns = EstimatePauseNs(out.report.state_bytes);
  return out;
}

Result<ScaleInResult> ScaleInStages(
    const std::vector<const mrpc::GeneratedStage*>& sources, uint64_t seed) {
  if (sources.empty()) {
    return Error(ErrorCode::kInvalidArgument, "no instances to merge");
  }
  ScaleInResult out;
  auto code =
      std::make_shared<const ir::ElementIr>(sources[0]->instance().code());
  out.instance = std::make_unique<mrpc::GeneratedStage>(code, seed);
  for (const mrpc::GeneratedStage* source : sources) {
    if (source->instance().code().name != code->name) {
      return Error(ErrorCode::kInvalidArgument,
                   "cannot merge instances of different elements ('" +
                       code->name + "' vs '" +
                       source->instance().code().name + "')");
    }
    Bytes snapshot = source->instance().SnapshotState();
    out.report.state_bytes += snapshot.size();
    out.report.source_state_hash ^= source->instance().StateContentHash();
    ADN_RETURN_IF_ERROR(out.instance->instance().MergeState(snapshot));
  }
  out.report.result_state_hash = out.instance->instance().StateContentHash();
  out.report.pause_ns = EstimatePauseNs(out.report.state_bytes);
  return out;
}

Result<ScaleInResult> HotUpdateStage(
    const mrpc::GeneratedStage& running,
    std::shared_ptr<const ir::ElementIr> new_code, uint64_t seed) {
  // Schema compatibility: the new code must declare the same state tables
  // (same names and schemas) so the snapshot restores cleanly.
  const ir::ElementIr& old_code = running.instance().code();
  if (new_code->state_tables.size() != old_code.state_tables.size()) {
    return Error(ErrorCode::kFailedPrecondition,
                 "hot update of '" + old_code.name +
                     "' changes the number of state tables; use a fresh "
                     "deployment instead");
  }
  for (size_t i = 0; i < new_code->state_tables.size(); ++i) {
    if (new_code->state_tables[i].first != old_code.state_tables[i].first ||
        !(new_code->state_tables[i].second ==
          old_code.state_tables[i].second)) {
      return Error(ErrorCode::kFailedPrecondition,
                   "hot update of '" + old_code.name +
                       "' changes the schema of state table '" +
                       old_code.state_tables[i].first + "'");
    }
  }
  ScaleInResult out;
  out.instance = std::make_unique<mrpc::GeneratedStage>(new_code, seed);
  Bytes snapshot = running.instance().SnapshotState();
  out.report.state_bytes = snapshot.size();
  out.report.source_state_hash = running.instance().StateContentHash();
  ADN_RETURN_IF_ERROR(out.instance->instance().RestoreState(snapshot));
  out.report.result_state_hash = out.instance->instance().StateContentHash();
  out.report.pause_ns = EstimatePauseNs(out.report.state_bytes);
  return out;
}

}  // namespace adn::controller
