// The acting half of the Figure-3 loop: turn the telemetry hub's sustained
// scaling advice into live reconfigurations of a running data path.
//
// Autoscaler::OnReport is shaped to be an AdnPathConfig::on_report hook.
// Each report tick it snapshots the obs registry, feeds the windowed series
// (rates + per-window latency quantiles), the telemetry hub (scaling
// advice) and the SLO monitor, then decides per engine site:
//
//   advice sustained for `sustain_windows` consecutive ticks
//     AND the site is past its per-site cooldown
//   -> emit a ReconfigCommand doubling (kScaleOut) or halving (kScaleIn)
//      the instance pool, bounded to [min_width, max_width]
//
// The command's migrate closure runs the *real* migration protocol on the
// chain's stateful stages — ScaleOutStage shards each GeneratedStage's
// state across the new pool, ScaleInStages merges it back into the one
// logical instance the simulated chain executes (the station width models
// the pool; see adn_path.h) — verifying hash losslessness and charging the
// protocol's pause estimate as the data-plane pause.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "controller/migration.h"
#include "controller/telemetry.h"
#include "mrpc/adn_path.h"
#include "obs/window.h"

namespace adn::controller {

struct AutoscaleOptions {
  TelemetryOptions telemetry;  // advice thresholds + smoothing window
  SloOptions slo;
  int sustain_windows = 2;   // consecutive same-advice ticks before acting
  int cooldown_windows = 2;  // ticks a site rests after a reconfiguration
  int min_width = 1;
  int max_width = 8;
  // How a width change cuts over (docs/RECONFIG.md): kLive replays only the
  // mutation delta at cutover (blackout ≈ handshake); kPauseDrain is the
  // classic full-state pause, kept as the fallback for incompatible edits.
  CutoverPolicy cutover = CutoverPolicy::kLive;
};

// One acted-on decision, for experiment timelines.
struct AutoscaleDecision {
  sim::SimTime at = 0;  // report window end that triggered it
  std::string processor;
  ScalingAdvice advice = ScalingAdvice::kSteady;
  int old_width = 1;
  int new_width = 1;
};

class Autoscaler {
 public:
  explicit Autoscaler(obs::MetricsRegistry* registry,
                      AutoscaleOptions options = {})
      : registry_(registry), options_(options), hub_(options.telemetry),
        slo_(options.slo) {}

  // The on_report hook. Engine sites only (the chain placements the
  // migration protocol covers); kernel/switch/NIC sites are reported on but
  // never reconfigured here.
  std::vector<mrpc::ReconfigCommand> OnReport(const mrpc::PathReport& report);

  const TelemetryHub& hub() const { return hub_; }
  const SloMonitor& slo() const { return slo_; }
  const obs::WindowedSeries& series() const { return series_; }
  const std::vector<AutoscaleDecision>& decisions() const {
    return decisions_;
  }

 private:
  // Round-trip shard/merge of every GeneratedStage on the chain (one
  // MigrateStageWidth call per stage, under options_.cutover); returns the
  // data-plane blackout and records it under `processor`'s reconfig
  // metrics. Exposed to OnReport's command closures.
  sim::SimTime MigrateChain(mrpc::EngineChain& chain, int new_width,
                            const std::string& processor);

  obs::MetricsRegistry* registry_;
  AutoscaleOptions options_;
  TelemetryHub hub_;
  SloMonitor slo_;
  obs::WindowedSeries series_;
  std::map<std::string, int> out_streak_;
  std::map<std::string, int> in_streak_;
  std::map<std::string, int> cooldown_;
  std::vector<AutoscaleDecision> decisions_;
  uint64_t seed_base_ = 7'000;  // fresh seeds for migrated instances
};

}  // namespace adn::controller
