#include "controller/telemetry.h"

namespace adn::controller {

std::string_view ScalingAdviceName(ScalingAdvice advice) {
  switch (advice) {
    case ScalingAdvice::kScaleOut: return "scale-out";
    case ScalingAdvice::kSteady: return "steady";
    case ScalingAdvice::kScaleIn: return "scale-in";
  }
  return "?";
}

Status TelemetryHub::Ingest(ProcessorReport report) {
  if (report.processor.empty()) {
    return Status(ErrorCode::kInvalidArgument, "report without processor id");
  }
  if (report.window_end < report.window_start) {
    return Status(ErrorCode::kInvalidArgument,
                  "report window ends before it starts");
  }
  if (report.utilization < 0.0 || report.utilization > 1.0) {
    return Status(ErrorCode::kInvalidArgument,
                  "utilization outside [0,1]");
  }
  PerProcessor& state = processors_[report.processor];
  for (const auto& [name, value] : report.counters) {
    state.counter_totals[name] += value;
  }
  state.window.push_back(std::move(report));
  if (state.window.size() > options_.window_reports) {
    state.window.pop_front();
  }
  ++ingested_;
  return Status::Ok();
}

double TelemetryHub::SmoothedUtilization(std::string_view processor) const {
  auto it = processors_.find(processor);
  if (it == processors_.end() || it->second.window.empty()) return 0.0;
  double total = 0.0;
  for (const ProcessorReport& r : it->second.window) {
    total += r.utilization;
  }
  return total / static_cast<double>(it->second.window.size());
}

ScalingAdvice TelemetryHub::Advise(std::string_view processor) const {
  double utilization = SmoothedUtilization(processor);
  if (utilization > options_.scale_out_utilization) {
    return ScalingAdvice::kScaleOut;
  }
  if (utilization < options_.scale_in_utilization) {
    return ScalingAdvice::kScaleIn;
  }
  return ScalingAdvice::kSteady;
}

std::vector<std::string> TelemetryHub::DropAlerts() const {
  std::vector<std::string> out;
  for (const auto& [name, state] : processors_) {
    uint64_t processed = 0, dropped = 0;
    for (const ProcessorReport& r : state.window) {
      processed += r.processed;
      dropped += r.dropped;
    }
    uint64_t total = processed + dropped;
    if (total == 0) continue;
    if (static_cast<double>(dropped) / static_cast<double>(total) >
        options_.drop_alert_fraction) {
      out.push_back(name);
    }
  }
  return out;
}

int64_t TelemetryHub::CounterTotal(std::string_view processor,
                                   std::string_view counter) const {
  auto it = processors_.find(processor);
  if (it == processors_.end()) return 0;
  auto counter_it = it->second.counter_totals.find(std::string(counter));
  return counter_it == it->second.counter_totals.end() ? 0
                                                       : counter_it->second;
}

}  // namespace adn::controller
