#include "controller/telemetry.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace adn::controller {

namespace {

// Fraction of the delta's observations at or below `bound`, linearly
// interpolated inside the containing bucket (the CDF counterpart of
// obs::BucketQuantile). Overflow-bucket observations count as above every
// finite bound.
double FractionAtOrBelow(const obs::SnapshotHistogram& h, double bound) {
  if (h.count == 0) return 1.0;
  double below = 0.0;
  double prev_bound = 0.0;
  for (size_t i = 0; i < h.bucket_counts.size(); ++i) {
    const bool overflow = i >= h.upper_bounds.size();
    const double ub = overflow ? std::numeric_limits<double>::infinity()
                               : h.upper_bounds[i];
    const double in_bucket = static_cast<double>(h.bucket_counts[i]);
    if (bound >= ub) {
      below += in_bucket;
      prev_bound = ub;
      continue;
    }
    if (!overflow && ub > prev_bound) {
      below += in_bucket * (bound - prev_bound) / (ub - prev_bound);
    }
    break;
  }
  return std::clamp(below / static_cast<double>(h.count), 0.0, 1.0);
}

// Pull the value of `key` out of a canonical 'key="value",...' label string.
std::string LabelValue(const std::string& labels, std::string_view key) {
  const std::string needle = std::string(key) + "=\"";
  const size_t at = labels.find(needle);
  if (at == std::string::npos) return "";
  const size_t begin = at + needle.size();
  const size_t end = labels.find('"', begin);
  if (end == std::string::npos) return "";
  return labels.substr(begin, end - begin);
}

}  // namespace

std::string_view ScalingAdviceName(ScalingAdvice advice) {
  switch (advice) {
    case ScalingAdvice::kScaleOut: return "scale-out";
    case ScalingAdvice::kSteady: return "steady";
    case ScalingAdvice::kScaleIn: return "scale-in";
  }
  return "?";
}

Status TelemetryHub::Ingest(ProcessorReport report) {
  if (report.processor.empty()) {
    return Status(ErrorCode::kInvalidArgument, "report without processor id");
  }
  if (report.window_end < report.window_start) {
    return Status(ErrorCode::kInvalidArgument,
                  "report window ends before it starts");
  }
  if (report.utilization < 0.0 || report.utilization > 1.0) {
    return Status(ErrorCode::kInvalidArgument,
                  "utilization outside [0,1]");
  }
  PerProcessor& state = processors_[report.processor];
  for (const auto& [name, value] : report.counters) {
    state.counter_totals[name] += value;
  }
  state.window.push_back(std::move(report));
  if (state.window.size() > options_.window_reports) {
    state.window.pop_front();
  }
  ++ingested_;
  return Status::Ok();
}

Status TelemetryHub::IngestSnapshot(const obs::MetricsSnapshot& snapshot,
                                    sim::SimTime window_start,
                                    sim::SimTime window_end) {
  std::map<std::string, ProcessorReport> reports;
  auto report_for = [&](const std::string& proc) -> ProcessorReport& {
    auto [it, fresh] = reports.try_emplace(proc);
    if (fresh) {
      it->second.processor = proc;
      it->second.window_start = window_start;
      it->second.window_end = window_end;
    }
    return it->second;
  };
  // Cumulative counter -> this window's delta (unsigned subtraction stays
  // correct across one 2^64 wrap, matching the Counter contract). The first
  // time a series key is seen it SEEDS the baseline and contributes a zero
  // delta: a processor label appearing mid-run (scale-out, late element
  // install) carries history from before the hub watched it, and crediting
  // that cumulative total to one window would fabricate a rate spike (and
  // spurious drop alerts). Its real rates start with the next snapshot.
  auto delta = [&](const obs::MetricSample& s) -> uint64_t {
    const uint64_t cur = static_cast<uint64_t>(s.value);
    auto [it, fresh] = last_counter_.try_emplace(s.name + "|" + s.labels, cur);
    if (fresh) return 0;
    const uint64_t d = cur - it->second;
    it->second = cur;
    return d;
  };
  for (const obs::MetricSample& s : snapshot.samples) {
    const std::string proc = LabelValue(s.labels, "processor");
    if (proc.empty()) continue;
    if (s.name == "adn_chain_rpcs_total") {
      report_for(proc).processed += delta(s);
    } else if (s.name == "adn_chain_drops_total") {
      report_for(proc).dropped += delta(s);
    } else if (s.name == "adn_engine_utilization") {
      report_for(proc).utilization = std::clamp(s.value, 0.0, 1.0);
    }
  }
  for (auto& [proc, report] : reports) {
    // adn_chain_rpcs_total counts every message entering the chain, drops
    // included; the hub's `processed` means successes.
    report.processed -= std::min(report.processed, report.dropped);
    if (Status s = Ingest(std::move(report)); !s.ok()) return s;
  }
  return Status::Ok();
}

double TelemetryHub::SmoothedUtilization(std::string_view processor) const {
  auto it = processors_.find(processor);
  if (it == processors_.end() || it->second.window.empty()) return 0.0;
  double total = 0.0;
  for (const ProcessorReport& r : it->second.window) {
    total += r.utilization;
  }
  return total / static_cast<double>(it->second.window.size());
}

ScalingAdvice TelemetryHub::Advise(std::string_view processor) const {
  double utilization = SmoothedUtilization(processor);
  if (utilization > options_.scale_out_utilization) {
    return ScalingAdvice::kScaleOut;
  }
  if (utilization < options_.scale_in_utilization) {
    return ScalingAdvice::kScaleIn;
  }
  return ScalingAdvice::kSteady;
}

std::vector<std::string> TelemetryHub::DropAlerts() const {
  std::vector<std::string> out;
  for (const auto& [name, state] : processors_) {
    uint64_t processed = 0, dropped = 0;
    for (const ProcessorReport& r : state.window) {
      processed += r.processed;
      dropped += r.dropped;
    }
    uint64_t total = processed + dropped;
    if (total == 0) continue;
    if (static_cast<double>(dropped) / static_cast<double>(total) >
        options_.drop_alert_fraction) {
      out.push_back(name);
    }
  }
  return out;
}

void SloMonitor::ObserveWindow(const obs::SnapshotHistogram& latency_delta,
                               uint64_t attempted, uint64_t lost) {
  ++windows_;
  const double budget = std::max(1e-9, 1.0 - options_.latency_quantile);
  bool latency_violation = false;
  if (latency_delta.count == 0) {
    last_quantile_ns_ = 0.0;
    last_burn_ = 0.0;
  } else {
    last_quantile_ns_ = latency_delta.Quantile(options_.latency_quantile);
    const double over =
        1.0 - FractionAtOrBelow(latency_delta, options_.latency_objective_ns);
    last_burn_ = over / budget;
    latency_violation = last_burn_ > 1.0;
  }
  last_drop_fraction_ =
      attempted > 0
          ? static_cast<double>(lost) / static_cast<double>(attempted)
          : 0.0;
  const bool drop_violation = last_drop_fraction_ > options_.drop_objective;

  auto advance = [this](bool violation, int& violations, int& healthy,
                        bool& alert) {
    if (violation) {
      healthy = 0;
      if (++violations >= options_.alert_after) alert = true;
    } else {
      violations = 0;
      if (++healthy >= options_.clear_after) alert = false;
    }
  };
  advance(latency_violation, latency_violations_, latency_healthy_,
          latency_alert_);
  advance(drop_violation, drop_violations_, drop_healthy_, drop_alert_);

  if (obs::Enabled()) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
    reg.GetGauge("adn_slo_p99_ns", "tier=\"sim\"").Set(last_quantile_ns_);
    reg.GetGauge("adn_slo_burn", "tier=\"sim\"").Set(last_burn_);
    reg.GetGauge("adn_slo_drop_fraction", "tier=\"sim\"")
        .Set(last_drop_fraction_);
  }
}

int64_t TelemetryHub::CounterTotal(std::string_view processor,
                                   std::string_view counter) const {
  auto it = processors_.find(processor);
  if (it == processors_.end()) return 0;
  auto counter_it = it->second.counter_totals.find(std::string(counter));
  return counter_it == it->second.counter_totals.end() ? 0
                                                       : counter_it->second;
}

}  // namespace adn::controller
