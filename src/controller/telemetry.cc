#include "controller/telemetry.h"

#include <algorithm>

namespace adn::controller {

namespace {

// Pull the value of `key` out of a canonical 'key="value",...' label string.
std::string LabelValue(const std::string& labels, std::string_view key) {
  const std::string needle = std::string(key) + "=\"";
  const size_t at = labels.find(needle);
  if (at == std::string::npos) return "";
  const size_t begin = at + needle.size();
  const size_t end = labels.find('"', begin);
  if (end == std::string::npos) return "";
  return labels.substr(begin, end - begin);
}

}  // namespace

std::string_view ScalingAdviceName(ScalingAdvice advice) {
  switch (advice) {
    case ScalingAdvice::kScaleOut: return "scale-out";
    case ScalingAdvice::kSteady: return "steady";
    case ScalingAdvice::kScaleIn: return "scale-in";
  }
  return "?";
}

Status TelemetryHub::Ingest(ProcessorReport report) {
  if (report.processor.empty()) {
    return Status(ErrorCode::kInvalidArgument, "report without processor id");
  }
  if (report.window_end < report.window_start) {
    return Status(ErrorCode::kInvalidArgument,
                  "report window ends before it starts");
  }
  if (report.utilization < 0.0 || report.utilization > 1.0) {
    return Status(ErrorCode::kInvalidArgument,
                  "utilization outside [0,1]");
  }
  PerProcessor& state = processors_[report.processor];
  for (const auto& [name, value] : report.counters) {
    state.counter_totals[name] += value;
  }
  state.window.push_back(std::move(report));
  if (state.window.size() > options_.window_reports) {
    state.window.pop_front();
  }
  ++ingested_;
  return Status::Ok();
}

Status TelemetryHub::IngestSnapshot(const obs::MetricsSnapshot& snapshot,
                                    sim::SimTime window_start,
                                    sim::SimTime window_end) {
  std::map<std::string, ProcessorReport> reports;
  auto report_for = [&](const std::string& proc) -> ProcessorReport& {
    auto [it, fresh] = reports.try_emplace(proc);
    if (fresh) {
      it->second.processor = proc;
      it->second.window_start = window_start;
      it->second.window_end = window_end;
    }
    return it->second;
  };
  // Cumulative counter -> this window's delta (unsigned subtraction stays
  // correct across one 2^64 wrap, matching the Counter contract).
  auto delta = [&](const obs::MetricSample& s) -> uint64_t {
    uint64_t cur = static_cast<uint64_t>(s.value);
    uint64_t& last = last_counter_[s.name + "|" + s.labels];
    uint64_t d = cur - last;
    last = cur;
    return d;
  };
  for (const obs::MetricSample& s : snapshot.samples) {
    const std::string proc = LabelValue(s.labels, "processor");
    if (proc.empty()) continue;
    if (s.name == "adn_chain_rpcs_total") {
      report_for(proc).processed += delta(s);
    } else if (s.name == "adn_chain_drops_total") {
      report_for(proc).dropped += delta(s);
    } else if (s.name == "adn_engine_utilization") {
      report_for(proc).utilization = std::clamp(s.value, 0.0, 1.0);
    }
  }
  for (auto& [proc, report] : reports) {
    // adn_chain_rpcs_total counts every message entering the chain, drops
    // included; the hub's `processed` means successes.
    report.processed -= std::min(report.processed, report.dropped);
    if (Status s = Ingest(std::move(report)); !s.ok()) return s;
  }
  return Status::Ok();
}

double TelemetryHub::SmoothedUtilization(std::string_view processor) const {
  auto it = processors_.find(processor);
  if (it == processors_.end() || it->second.window.empty()) return 0.0;
  double total = 0.0;
  for (const ProcessorReport& r : it->second.window) {
    total += r.utilization;
  }
  return total / static_cast<double>(it->second.window.size());
}

ScalingAdvice TelemetryHub::Advise(std::string_view processor) const {
  double utilization = SmoothedUtilization(processor);
  if (utilization > options_.scale_out_utilization) {
    return ScalingAdvice::kScaleOut;
  }
  if (utilization < options_.scale_in_utilization) {
    return ScalingAdvice::kScaleIn;
  }
  return ScalingAdvice::kSteady;
}

std::vector<std::string> TelemetryHub::DropAlerts() const {
  std::vector<std::string> out;
  for (const auto& [name, state] : processors_) {
    uint64_t processed = 0, dropped = 0;
    for (const ProcessorReport& r : state.window) {
      processed += r.processed;
      dropped += r.dropped;
    }
    uint64_t total = processed + dropped;
    if (total == 0) continue;
    if (static_cast<double>(dropped) / static_cast<double>(total) >
        options_.drop_alert_fraction) {
      out.push_back(name);
    }
  }
  return out;
}

int64_t TelemetryHub::CounterTotal(std::string_view processor,
                                   std::string_view counter) const {
  auto it = processors_.find(processor);
  if (it == processors_.end()) return 0;
  auto counter_it = it->second.counter_totals.find(std::string(counter));
  return counter_it == it->second.counter_totals.end() ? 0
                                                       : counter_it->second;
}

}  // namespace adn::controller
