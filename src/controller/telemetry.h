// Data-plane telemetry (paper §5.3: "Each processor ... periodically sends
// reports of logging, tracing, and runtime statistical information back to
// the controller", and Figure 3's Feedback arrow into the controller).
//
// Processors push ProcessorReports; the hub keeps per-processor sliding
// aggregates and turns them into the controller's scaling/rebalancing
// signals. Log records harvested from elements' log tables ride along the
// same channel.
#pragma once

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/window.h"
#include "sim/simulator.h"

namespace adn::controller {

struct ProcessorReport {
  std::string processor;       // e.g. "client-engine"
  sim::SimTime window_start = 0;
  sim::SimTime window_end = 0;
  uint64_t processed = 0;
  uint64_t dropped = 0;
  double utilization = 0.0;    // [0,1] over the window
  // Telemetry counters harvested from elements (e.g. per-method counts).
  std::vector<std::pair<std::string, int64_t>> counters;
};

// What the hub advises the controller to do with one processor.
enum class ScalingAdvice { kScaleOut, kSteady, kScaleIn };
std::string_view ScalingAdviceName(ScalingAdvice advice);

struct TelemetryOptions {
  size_t window_reports = 4;       // sliding window length
  double scale_out_utilization = 0.80;
  double scale_in_utilization = 0.25;
  double drop_alert_fraction = 0.10;  // alert when drops exceed this
};

class TelemetryHub {
 public:
  explicit TelemetryHub(TelemetryOptions options = {}) : options_(options) {}

  Status Ingest(ProcessorReport report);

  // Figure-3 feedback from the obs plane: derive one ProcessorReport per
  // processor label found in the snapshot's adn_chain_rpcs_total /
  // adn_chain_drops_total / adn_engine_utilization series and Ingest it.
  // Counters are cumulative, so the hub diffs against the previous snapshot
  // it saw; call once per report window with the window bounds.
  Status IngestSnapshot(const obs::MetricsSnapshot& snapshot,
                        sim::SimTime window_start, sim::SimTime window_end);

  // Smoothed utilization over the sliding window (0 if unknown processor).
  double SmoothedUtilization(std::string_view processor) const;

  // Advice derived from the smoothed utilization.
  ScalingAdvice Advise(std::string_view processor) const;

  // Processors whose drop fraction over the window exceeds the alert
  // threshold (the controller surfaces these to operators).
  std::vector<std::string> DropAlerts() const;

  // Aggregate counter across all reports of a processor (e.g. total
  // requests a Telemetry element counted per method).
  int64_t CounterTotal(std::string_view processor,
                       std::string_view counter) const;

  uint64_t reports_ingested() const { return ingested_; }

 private:
  struct PerProcessor {
    std::deque<ProcessorReport> window;
    std::map<std::string, int64_t> counter_totals;
  };

  TelemetryOptions options_;
  std::map<std::string, PerProcessor, std::less<>> processors_;
  // Last cumulative counter values seen by IngestSnapshot, keyed by
  // "name|labels", for window deltas.
  std::map<std::string, uint64_t> last_counter_;
  uint64_t ingested_ = 0;
};

// --- SLO monitor ------------------------------------------------------------
//
// Watches the end-to-end latency objective and the loss objective over the
// report-window stream. Latency health is expressed as a *burn rate*: the
// fraction of requests slower than the objective divided by the budget the
// quantile allows (1 - latency_quantile). burn <= 1 means within SLO; burn 3
// means three times the allowed tail missed the objective this window.
// Alerts have hysteresis: a state change needs `alert_after` consecutive
// violating windows (or `clear_after` healthy ones), so a single noisy
// window — or the pause bubble of one reconfiguration — does not flap.
//
// When the obs plane is on, each window publishes adn_slo_p99_ns,
// adn_slo_burn and adn_slo_drop_fraction gauges.
struct SloOptions {
  double latency_objective_ns = 2'000'000;  // tail objective (2 ms)
  double latency_quantile = 0.99;           // which tail the objective binds
  double drop_objective = 0.01;  // allowed lost/attempted per window
  int alert_after = 2;           // violating windows before alert raises
  int clear_after = 2;           // healthy windows before alert clears
};

class SloMonitor {
 public:
  explicit SloMonitor(SloOptions options = {}) : options_(options) {}

  // Feed one report window: the adn_rpc_latency_ns histogram delta for the
  // window plus attempted/lost message counts (lost = drops + rejects).
  // An empty latency delta (nothing completed) judges latency as healthy
  // and leaves the drop objective to catch the outage.
  void ObserveWindow(const obs::SnapshotHistogram& latency_delta,
                     uint64_t attempted, uint64_t lost);

  bool latency_alert() const { return latency_alert_; }
  bool drop_alert() const { return drop_alert_; }
  double last_quantile_ns() const { return last_quantile_ns_; }
  double last_burn() const { return last_burn_; }
  double last_drop_fraction() const { return last_drop_fraction_; }
  uint64_t windows_observed() const { return windows_; }

 private:
  SloOptions options_;
  bool latency_alert_ = false;
  bool drop_alert_ = false;
  int latency_violations_ = 0;  // consecutive
  int latency_healthy_ = 0;
  int drop_violations_ = 0;
  int drop_healthy_ = 0;
  double last_quantile_ns_ = 0.0;
  double last_burn_ = 0.0;
  double last_drop_fraction_ = 0.0;
  uint64_t windows_ = 0;
};

}  // namespace adn::controller
