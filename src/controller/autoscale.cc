#include "controller/autoscale.h"

#include <algorithm>
#include <cassert>

namespace adn::controller {

namespace {

bool IsEngineSite(mrpc::Site site) {
  return site == mrpc::Site::kClientEngine ||
         site == mrpc::Site::kServerEngine;
}

}  // namespace

std::vector<mrpc::ReconfigCommand> Autoscaler::OnReport(
    const mrpc::PathReport& report) {
  assert(registry_ != nullptr);
  const obs::MetricsSnapshot snapshot = registry_->Snapshot();
  series_.Ingest(snapshot, report.window_start, report.window_end);
  // The hub consumes the same snapshot stream (its own baselines seed the
  // same way), deriving per-processor reports and scaling advice.
  const Status ingest =
      hub_.IngestSnapshot(snapshot, report.window_start, report.window_end);
  assert(ingest.ok());
  (void)ingest;

  // SLO inputs: the window's end-to-end latency delta plus loss accounting.
  const std::string latency_labels = series_.FirstLabels("adn_rpc_latency_ns");
  const obs::SnapshotHistogram* latency =
      series_.HistogramDelta("adn_rpc_latency_ns", latency_labels);
  const uint64_t attempted =
      report.issued > 0 ? report.issued : report.completed + report.dropped;
  slo_.ObserveWindow(latency ? *latency : obs::SnapshotHistogram{}, attempted,
                     report.dropped + report.rejected);

  std::vector<mrpc::ReconfigCommand> commands;
  for (const mrpc::SiteWindow& site : report.sites) {
    if (!IsEngineSite(site.site) || site.paused) continue;
    int& rest = cooldown_[site.processor];
    if (rest > 0) {
      --rest;
      continue;
    }
    const ScalingAdvice advice = hub_.Advise(site.processor);
    int& out = out_streak_[site.processor];
    int& in = in_streak_[site.processor];
    out = advice == ScalingAdvice::kScaleOut ? out + 1 : 0;
    in = advice == ScalingAdvice::kScaleIn ? in + 1 : 0;

    int new_width = site.width;
    if (out >= options_.sustain_windows) {
      new_width = std::min(options_.max_width, site.width * 2);
    } else if (in >= options_.sustain_windows) {
      new_width = std::max(options_.min_width, site.width / 2);
    }
    if (new_width == site.width) continue;

    out = 0;
    in = 0;
    rest = options_.cooldown_windows;
    decisions_.push_back({report.window_end, site.processor, advice,
                          site.width, new_width});
    mrpc::ReconfigCommand cmd;
    cmd.site = site.site;
    cmd.new_width = new_width;
    cmd.migrate = [this, new_width,
                   processor = site.processor](mrpc::EngineChain& chain) {
      return MigrateChain(chain, new_width, processor);
    };
    commands.push_back(std::move(cmd));
  }
  return commands;
}

sim::SimTime Autoscaler::MigrateChain(mrpc::EngineChain& chain, int new_width,
                                      const std::string& processor) {
  // Even a stateless chain pays the reconfiguration handshake.
  sim::SimTime pause = EstimatePauseNs(0);
  uint64_t replayed = 0;
  for (size_t i = 0; i < chain.size(); ++i) {
    auto* stage = dynamic_cast<mrpc::GeneratedStage*>(&chain.stage(i));
    if (stage == nullptr) continue;  // not a compiler-generated stage
    // Shard the live state across the new pool, then merge back into the
    // one logical instance the simulated chain executes. MigrateStageWidth
    // verifies hash losslessness on both legs and charges the blackout per
    // the configured cutover policy — full-state pause (kPauseDrain) or
    // delta replay (kLive) — summed across stages since the chain migrates
    // them in order.
    auto merged = MigrateStageWidth(*stage, static_cast<size_t>(new_width),
                                    seed_base_ += 200, options_.cutover);
    if (!merged.ok()) continue;
    pause += merged.value().report.pause_ns;
    replayed += merged.value().report.delta_replayed;
    chain.ReplaceStage(i, std::move(merged.value().instance));
  }
  registry_
      ->GetHistogram("adn_reconfig_blackout_ns",
                     "processor=\"" + processor + "\"")
      .Observe(static_cast<double>(pause));
  registry_
      ->GetCounter("adn_reconfig_delta_replayed",
                   "processor=\"" + processor + "\"")
      .Inc(replayed);
  return pause;
}

}  // namespace adn::controller
