// Placement solver: decide, for every element of a compiled chain, which
// processor on the path executes it (paper §4 Q3 / §3: "Depending on
// available resources, RPC processing may happen in the RPC library,
// in-kernel, in a separate process, on a programmable hardware device, or in
// a mix of locations"; the four Figure 2 configurations are four placements
// of the same chain).
//
// Constraints honored:
//   - DSL location constraints (AT SENDER / RECEIVER / TRUSTED),
//   - platform feasibility (eBPF verifier model, P4 match-action + parse
//     depth) as precomputed by the compiler,
//   - path monotonicity: request-direction elements must land on
//     non-decreasing sites along client-app -> ... -> server-app,
//   - security: TRUSTED elements never run inside application binaries,
//   - response/BOTH-direction elements only on symmetric sites (app/engine).
//
// Objective is policy-driven: minimize host CPU (offload-greedy), minimize
// latency (avoid extra hops), or native-only (everything on mRPC engines,
// the paper's §6 prototype). Solved exactly by DP over (element, site) —
// chains are short.
#pragma once

#include <string>
#include <vector>

#include "compiler/compiler.h"
#include "mrpc/adn_path.h"

namespace adn::controller {

enum class PlacementPolicy {
  kNativeOnly,  // everything on the mRPC service engines (paper prototype)
  kInApp,       // everything in the RPC library where allowed (Fig 2 cfg 1)
  kMinHostCpu,  // offload-greedy (Fig 2 cfg 2/3)
  kMinLatency,  // fewest extra hops subject to constraints
};

std::string_view PlacementPolicyName(PlacementPolicy policy);

// What the deployment environment offers on this caller->callee path.
struct PathEnvironment {
  bool sender_kernel_offload = false;  // eBPF allowed on the sender machine
  bool receiver_kernel_offload = false;
  bool receiver_smartnic = false;
  bool p4_switch_on_path = false;
  bool allow_in_app = true;  // operators may forbid app-embedded processing
  // Operator override of the security model: allow TRUSTED elements inside
  // application binaries (the paper's Figure 2 config 1 draws the whole
  // chain in-app; the default keeps mandatory policies out of the app).
  bool trust_app_binaries = false;
};

struct PlacementDecision {
  // Parallel to chain.elements.
  std::vector<mrpc::Site> sites;
  std::vector<compiler::TargetPlatform> platforms;
  // Human-readable rationale per element.
  std::vector<std::string> rationale;
  double estimated_host_cpu_ns = 0.0;

  std::string DebugString(const compiler::CompiledChain& chain) const;
};

Result<PlacementDecision> PlaceChain(const compiler::CompiledChain& chain,
                                     const PathEnvironment& environment,
                                     PlacementPolicy policy);

}  // namespace adn::controller
