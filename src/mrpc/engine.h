// mRPC-style engines: the software ADN processors.
//
// An EngineChain is an ordered list of stages executing on one mRPC service
// runtime (or an app-embedded RPC library, a kernel eBPF hook, a SmartNIC —
// the stage interface is placement-agnostic; the site only changes the
// simulated cost scale). Stages see *typed* messages — no protocol parsing —
// which is the property that lets ADN skip the (de)marshalling the general
// stack pays at every hop.
//
// Not thread-safe: an EngineChain and its stages belong to one thread (the
// simulator's event loop, or one EnginePool worker — engine_pool.h spawns
// per-worker chains over per-worker state shards rather than locking one).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ir/exec.h"
#include "ir/program.h"
#include "obs/intern.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rpc/message.h"
#include "sim/cost_model.h"

namespace adn::mrpc {

class EngineStage {
 public:
  virtual ~EngineStage() = default;
  virtual std::string_view name() const = 0;
  // Does this stage run for this message kind (request/response)?
  virtual bool AppliesTo(rpc::MessageKind kind) const = 0;
  // Process in place.
  virtual ir::ProcessResult Process(rpc::Message& message, int64_t now_ns) = 0;
  // Process messages[0..n) in place, filling results[0..n) with exactly the
  // outcomes n sequential Process calls would produce. The default is that
  // scalar loop; compiled stages override with the SoA burst executor.
  virtual void ProcessBurst(rpc::Message* messages, size_t n, int64_t now_ns,
                            ir::ProcessResult* results) {
    for (size_t i = 0; i < n; ++i) results[i] = Process(messages[i], now_ns);
  }
  // Simulated CPU per message on a host core.
  virtual double CostNs(const sim::CostModel& model,
                        size_t payload_bytes) const = 0;
  // Observability identity for spans this stage's executor emits on the
  // burst path (interned processor name + tier). No-op for stages without
  // a compiled executor.
  virtual void set_trace_identity(obs::Tier /*tier*/,
                                  obs::NameId /*processor_id*/) {}
};

// A compiler-generated stage. The element is lowered to a flat ChainProgram
// at construction and executed by the register-based ChainExecutor; the
// StmtIr tree stays on the ElementInstance as reference semantics (and as
// the fallback for anything the lowering declines, e.g. filter elements).
// State lives in the ElementInstance either way, so controller-side
// seeding, snapshot and migration code is tier-agnostic.
class GeneratedStage : public EngineStage {
 public:
  explicit GeneratedStage(std::shared_ptr<const ir::ElementIr> code,
                          uint64_t seed);

  std::string_view name() const override { return instance_.name(); }
  bool AppliesTo(rpc::MessageKind kind) const override {
    return instance_.AppliesTo(kind);
  }
  ir::ProcessResult Process(rpc::Message& message, int64_t now_ns) override {
    if (executor_.has_value()) return executor_->Process(message, now_ns);
    return instance_.Process(message, now_ns);
  }
  void ProcessBurst(rpc::Message* messages, size_t n, int64_t now_ns,
                    ir::ProcessResult* results) override {
    if (executor_.has_value()) {
      executor_->ProcessBurst(messages, n, now_ns, results);
      return;
    }
    for (size_t i = 0; i < n; ++i) {
      results[i] = instance_.Process(messages[i], now_ns);
    }
  }
  double CostNs(const sim::CostModel& model,
                size_t payload_bytes) const override;
  void set_trace_identity(obs::Tier tier, obs::NameId processor_id) override {
    if (executor_.has_value()) executor_->set_trace_identity(tier, processor_id);
  }

  // True when this stage runs the compiled tier (vs the interpreter).
  bool compiled() const { return executor_.has_value(); }
  const ir::ChainProgram* program() const { return program_.get(); }

  ir::ElementInstance& instance() { return instance_; }
  const ir::ElementInstance& instance() const { return instance_; }

 private:
  ir::ElementInstance instance_;
  std::shared_ptr<const ir::ChainProgram> program_;
  std::optional<ir::ChainExecutor> executor_;  // bound to &instance_
};

// An engine chain bound to one processor site.
class EngineChain {
 public:
  // `parallel_group`: stages sharing a group id were proven independent by
  // the compiler's effect analysis (paper §5.2: "if two elements do not
  // operate on the same RPC fields, they can be executed in parallel") and
  // may execute concurrently on the processor's cores. Default: every stage
  // its own group (strictly sequential).
  void AddStage(std::unique_ptr<EngineStage> stage, int parallel_group = -1) {
    if (parallel_group < 0) parallel_group = next_unique_group_--;
    groups_.push_back(parallel_group);
    stage->set_trace_identity(trace_tier_, trace_processor_id());
    stages_.push_back(std::move(stage));
  }

  size_t size() const { return stages_.size(); }
  EngineStage& stage(size_t i) { return *stages_[i]; }
  const EngineStage& stage(size_t i) const { return *stages_[i]; }

  // Swap stage i for another instance of the same element (the migration
  // protocol's resume step: the merged/re-sharded instance replaces the
  // paused one). Group membership is unchanged.
  void ReplaceStage(size_t i, std::unique_ptr<EngineStage> stage) {
    stage->set_trace_identity(trace_tier_, trace_processor_id());
    stages_[i] = std::move(stage);
  }

  // Run all applicable stages; stops at the first drop.
  ir::ProcessResult Process(rpc::Message& message, int64_t now_ns);

  // Burst-process messages[0..n): stage-major — each stage runs across the
  // whole burst (compiled stages via the SoA burst executor) before the next
  // stage starts, with dropped lanes masked out. Outcomes, per-stage state
  // and counters match n sequential Process calls exactly: every stage owns
  // disjoint state and processes live lanes in lane order, which is the
  // order message-major execution would have visited them. Falls back to the
  // scalar loop when observability is on (per-RPC scopes are message-major).
  // The sim/mesh tiers deliberately stay on scalar Process: they charge
  // per-message simulated cost (ProcessWithCost) and model per-hop latency,
  // which burst coalescing would distort.
  void ProcessBurst(rpc::Message* messages, size_t n, int64_t now_ns,
                    ir::ProcessResult* results);

  // Run the chain AND account the simulated CPU actually consumed: stages
  // after a drop cost nothing (this is what makes drop-early reordering
  // measurable). `payload_bytes` is sampled before each stage so payload
  // transforms are charged for the size they actually see.
  struct Outcome {
    ir::ProcessResult result;
    double cost_ns = 0;           // total CPU consumed
    double critical_path_ns = 0;  // latency: parallel groups overlap
  };
  Outcome ProcessWithCost(rpc::Message& message, int64_t now_ns,
                          const sim::CostModel& model);

  // Upper bound: sum of applicable stages' cost + dispatch overhead.
  double CostNs(const sim::CostModel& model, rpc::MessageKind kind,
                size_t payload_bytes) const;

  uint64_t processed() const { return processed_; }
  uint64_t dropped() const { return dropped_; }

  // Observability identity for this chain: the tier and processor name
  // stamped on every span/metric it emits. Defaults to the engine tier; the
  // simulated path re-labels each site's chain (tier=sim, processor=site).
  // The name is interned once here; the hot path only ever touches the id.
  void set_trace_identity(obs::Tier tier, std::string_view processor) {
    trace_tier_ = tier;
    trace_processor_ = std::string(processor);
    trace_processor_id_ = obs::InternName(processor);
    rpcs_counter_ = nullptr;  // re-resolve under the new label
    drops_counter_ = nullptr;
    for (const auto& stage : stages_) {
      stage->set_trace_identity(tier, trace_processor_id_);
    }
  }
  obs::Tier trace_tier() const { return trace_tier_; }
  const std::string& trace_processor() const { return trace_processor_; }
  obs::NameId trace_processor_id() const {
    // Lazily interned so a default-identity chain pays nothing until the
    // first observability-on call.
    if (trace_processor_id_ == 0) {
      trace_processor_id_ = obs::InternName(trace_processor_);
    }
    return trace_processor_id_;
  }

 private:
  // Resolve (once per identity) the chain's adn_chain_*_total counters.
  void EnsureCounters();

  std::vector<std::unique_ptr<EngineStage>> stages_;
  std::vector<int> groups_;
  int next_unique_group_ = -2;  // descending ids never collide with real ones
  uint64_t processed_ = 0;
  uint64_t dropped_ = 0;
  obs::Tier trace_tier_ = obs::Tier::kEngine;
  std::string trace_processor_ = "engine";
  mutable obs::NameId trace_processor_id_ = 0;
  obs::Counter* rpcs_counter_ = nullptr;
  obs::Counter* drops_counter_ = nullptr;
};

}  // namespace adn::mrpc
