// Fixed-capacity SPSC ring buffer — the shared-memory queue pair between an
// application and its local mRPC service (mRPC, NSDI '23 [25]).
//
// In the real system this lives in shared memory between two processes; here
// both ends are in-process but the data structure is the real thing: no
// locks, atomic head/tail indexes with acquire/release ordering, power-of-two
// capacity, move-only slots. The simulator charges CostModel::shm_hop_ns per
// enqueue+dequeue pair.
//
// Concurrency contract (single-producer / single-consumer):
//  - TryPush/full/enqueued may be called by ONE producer thread;
//  - TryPop/empty may be called by ONE consumer thread;
//  - size() may be called from either side (or a third observer) and returns
//    a point-in-time estimate that is exact only when the other side is
//    quiescent.
// The producer publishes a slot with a release store on tail_ and the
// consumer acquires it before reading, so slot contents are always fully
// visible to the popper; head_ is released by the consumer and acquired by
// the producer so a slot is never overwritten before its value has been
// moved out. The indexes live on separate cache lines to keep the two sides
// from false-sharing.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <new>
#include <optional>
#include <utility>
#include <vector>

namespace adn::mrpc {

#ifdef __cpp_lib_hardware_interference_size
inline constexpr size_t kCacheLineBytes =
    std::hardware_destructive_interference_size;
#else
inline constexpr size_t kCacheLineBytes = 64;
#endif

template <typename T>
class SpscRing {
 public:
  // Capacity rounds up to a power of two (minimum 2).
  explicit SpscRing(size_t capacity) {
    size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  size_t capacity() const { return slots_.size(); }

  // Cross-thread estimate; exact when the other side is quiescent.
  size_t size() const {
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    const uint64_t head = head_.load(std::memory_order_acquire);
    return static_cast<size_t>(tail - head);
  }

  // Consumer side (also valid from an observer, as an estimate).
  bool empty() const { return size() == 0; }
  // Producer side (also valid from an observer, as an estimate).
  bool full() const { return size() == capacity(); }

  // Producer only. False when full, in which case `value` is left untouched
  // so the producer can retry the same object after backoff.
  template <typename U>
  bool TryPush(U&& value) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) == capacity()) {
      return false;
    }
    slots_[tail & mask_] = std::forward<U>(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Producer only. Push up to `n` values from `in[0..n)`; returns how many
  // were accepted (those slots are moved-from, the rest untouched so the
  // producer can retry them). One head acquire + one tail release for the
  // whole burst — the per-message synchronization cost of TryPush is paid
  // once per burst instead.
  size_t TryPushBurst(T* in, size_t n) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    const uint64_t head = head_.load(std::memory_order_acquire);
    const size_t free_slots = capacity() - static_cast<size_t>(tail - head);
    const size_t k = n < free_slots ? n : free_slots;
    for (size_t i = 0; i < k; ++i) {
      slots_[(tail + i) & mask_] = std::move(in[i]);
    }
    if (k > 0) tail_.store(tail + k, std::memory_order_release);
    return k;
  }

  // Consumer only.
  std::optional<T> TryPop() {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return std::nullopt;
    T out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return out;
  }

  // Consumer only. Out-parameter overload for the hot path: no optional
  // engage/move per message — `out` is move-assigned in place. Returns false
  // (and leaves `out` untouched) when the ring is empty.
  bool TryPop(T& out) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return false;
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  // Consumer only. Drain up to `max` values into `out[0..)`; returns the
  // count popped. The tail acquire and head release are each paid once per
  // burst, so a 32-message drain does 1/32nd of TryPop's synchronization —
  // the DPDK/NDN-DPDK rx_burst shape.
  size_t TryPopBurst(T* out, size_t max) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    const size_t avail = static_cast<size_t>(tail - head);
    const size_t k = max < avail ? max : avail;
    for (size_t i = 0; i < k; ++i) {
      out[i] = std::move(slots_[(head + i) & mask_]);
    }
    if (k > 0) head_.store(head + k, std::memory_order_release);
    return k;
  }

  // Total items ever enqueued (for stats). Producer-side exact; an estimate
  // elsewhere.
  uint64_t enqueued() const { return tail_.load(std::memory_order_acquire); }

 private:
  std::vector<T> slots_;
  size_t mask_ = 0;
  // Consumer index and producer index on separate cache lines so the two
  // sides' writes never contend for one line.
  alignas(kCacheLineBytes) std::atomic<uint64_t> head_{0};
  alignas(kCacheLineBytes) std::atomic<uint64_t> tail_{0};
};

}  // namespace adn::mrpc
