// Fixed-capacity SPSC ring buffer — the shared-memory queue pair between an
// application and its local mRPC service (mRPC, NSDI '23 [25]).
//
// In the real system this lives in shared memory between two processes; here
// both ends are in-process but the data structure is the real thing: no
// locks, head/tail indexes, power-of-two capacity, move-only slots. The
// simulator charges CostModel::shm_hop_ns per enqueue+dequeue pair.
#pragma once

#include <cassert>
#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

namespace adn::mrpc {

template <typename T>
class SpscRing {
 public:
  // Capacity rounds up to a power of two (minimum 2).
  explicit SpscRing(size_t capacity) {
    size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  size_t capacity() const { return slots_.size(); }
  size_t size() const { return tail_ - head_; }
  bool empty() const { return head_ == tail_; }
  bool full() const { return size() == capacity(); }

  // False when full.
  bool TryPush(T value) {
    if (full()) return false;
    slots_[tail_ & mask_] = std::move(value);
    ++tail_;
    return true;
  }

  std::optional<T> TryPop() {
    if (empty()) return std::nullopt;
    T out = std::move(slots_[head_ & mask_]);
    ++head_;
    return out;
  }

  // Total items ever enqueued (for stats).
  uint64_t enqueued() const { return tail_; }

 private:
  std::vector<T> slots_;
  size_t mask_ = 0;
  uint64_t head_ = 0;
  uint64_t tail_ = 0;
};

}  // namespace adn::mrpc
