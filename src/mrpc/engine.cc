#include "mrpc/engine.h"

#include <algorithm>

#include "compiler/backend.h"
#include "compiler/chain_compile.h"

namespace adn::mrpc {

namespace {
// Interned once per process: the root span name every chain scope opens.
obs::NameId RpcRootNameId() {
  static const obs::NameId id = obs::InternName("rpc");
  return id;
}
}  // namespace

GeneratedStage::GeneratedStage(std::shared_ptr<const ir::ElementIr> code,
                               uint64_t seed)
    : instance_(std::move(code), seed) {
  // Lower to the compiled tier; fall back to the tree-walking interpreter
  // when the element has no SQL body (filter ops).
  auto program = compiler::CompileElementProgram(instance_.code());
  if (program.ok()) {
    program_ = std::move(program).value();
    executor_.emplace(program_, std::vector<ir::ElementInstance*>{&instance_});
  }
}

double GeneratedStage::CostNs(const sim::CostModel& model,
                              size_t payload_bytes) const {
  if (instance_.code().IsCache()) {
    // Expected per-message cache work under the planner's hit-rate prior.
    // Simulated tiers charge this; bench_cache measures the real thing.
    return static_cast<double>(model.cache_lookup_ns) +
           (1.0 - model.cache_default_hit_rate) *
               static_cast<double>(model.cache_fill_ns);
  }
  if (program_ != nullptr) {
    const ir::ChainProgram::ElementSeg& seg = program_->elements[0];
    return model.CompiledElementCostNs(seg.instr_count, seg.per_byte_cost_ns,
                                       payload_bytes);
  }
  return compiler::EstimateCostNs(instance_.code(),
                                  compiler::TargetPlatform::kNative, model,
                                  payload_bytes);
}

void EngineChain::EnsureCounters() {
  if (rpcs_counter_ != nullptr) return;
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  const std::string label = "processor=\"" + trace_processor_ + "\"";
  rpcs_counter_ = &reg.GetCounter("adn_chain_rpcs_total", label);
  drops_counter_ = &reg.GetCounter("adn_chain_drops_total", label);
}

ir::ProcessResult EngineChain::Process(rpc::Message& message,
                                       int64_t now_ns) {
  ++processed_;
  const bool timing = obs::Enabled();
  std::optional<obs::RpcTraceScope> scope;
  if (timing) {
    EnsureCounters();
    rpcs_counter_->Inc();
    scope.emplace(message.id(), trace_tier_, trace_processor_id(),
                  RpcRootNameId());
  }
  for (const auto& stage : stages_) {
    if (!stage->AppliesTo(message.kind())) continue;
    ir::ProcessResult r = stage->Process(message, now_ns);
    if (r.outcome != ir::ProcessOutcome::kPass) {
      // kReply ends the chain as a success (the message is now the
      // response); only real drops count or bump the drop counter.
      if (r.outcome != ir::ProcessOutcome::kReply) {
        ++dropped_;
        if (timing) drops_counter_->Inc();
      }
      return r;
    }
  }
  return ir::ProcessResult::Pass();
}

void EngineChain::ProcessBurst(rpc::Message* messages, size_t n,
                               int64_t now_ns, ir::ProcessResult* results) {
  // Metrics are no longer a fallback condition: counters batch to one
  // Inc(n) per burst. Only *tracing* still routes through the scalar loop
  // here — this chain runs stage-major over independent per-stage
  // executors, so per-RPC span trees (one root, children across stages)
  // are inherently message-major. The single-executor whole-chain path
  // (ir::ChainExecutor::ProcessBurst, used by EnginePool workers) emits
  // burst-granular spans without any fallback.
  const bool timing = obs::Enabled();
  if (n < 2 || (timing && obs::Tracer::Default().tracing_enabled())) {
    for (size_t i = 0; i < n; ++i) results[i] = Process(messages[i], now_ns);
    return;
  }
  if (timing) {
    EnsureCounters();
    rpcs_counter_->Inc(n);
  }
  processed_ += n;
  for (size_t i = 0; i < n; ++i) results[i] = ir::ProcessResult::Pass();
  for (const auto& stage : stages_) {
    // Hand the stage maximal contiguous runs of lanes that are still live
    // and whose kind the stage applies to; dropped lanes stay masked out.
    size_t i = 0;
    while (i < n) {
      if (results[i].outcome != ir::ProcessOutcome::kPass ||
          !stage->AppliesTo(messages[i].kind())) {
        ++i;
        continue;
      }
      size_t j = i + 1;
      while (j < n && results[j].outcome == ir::ProcessOutcome::kPass &&
             stage->AppliesTo(messages[j].kind())) {
        ++j;
      }
      stage->ProcessBurst(messages + i, j - i, now_ns, results + i);
      i = j;
    }
  }
  uint64_t drops = 0;
  for (size_t i = 0; i < n; ++i) {
    if (results[i].outcome != ir::ProcessOutcome::kPass &&
        results[i].outcome != ir::ProcessOutcome::kReply) {
      ++drops;
    }
  }
  dropped_ += drops;
  if (timing && drops > 0) drops_counter_->Inc(drops);
}

EngineChain::Outcome EngineChain::ProcessWithCost(
    rpc::Message& message, int64_t now_ns, const sim::CostModel& model) {
  ++processed_;
  const bool timing = obs::Enabled();
  std::optional<obs::RpcTraceScope> scope;
  if (timing) {
    EnsureCounters();
    rpcs_counter_->Inc();
    scope.emplace(message.id(), trace_tier_, trace_processor_id(),
                  RpcRootNameId());
  }
  Outcome out;
  out.cost_ns = static_cast<double>(model.mrpc_engine_dispatch_ns);
  out.critical_path_ns = out.cost_ns;
  // Execution is sequential (the effect analysis guarantees the result is
  // identical); cost accounting overlaps stages within a parallel group:
  // CPU adds up, latency takes the group's maximum.
  double group_max = 0;
  int current_group = next_unique_group_ - 1;  // matches nothing
  auto close_group = [&] {
    out.critical_path_ns += group_max;
    group_max = 0;
  };
  for (size_t i = 0; i < stages_.size(); ++i) {
    const auto& stage = stages_[i];
    if (!stage->AppliesTo(message.kind())) continue;
    size_t payload_bytes = 0;
    for (const auto& f : message.fields()) {
      if (f.value.type() == rpc::ValueType::kBytes) {
        payload_bytes = f.value.AsBytes().size();
        break;
      }
    }
    if (groups_[i] != current_group) {
      close_group();
      current_group = groups_[i];
    }
    double stage_cost = stage->CostNs(model, payload_bytes);
    out.cost_ns += stage_cost;
    group_max = std::max(group_max, stage_cost);
    ir::ProcessResult r = stage->Process(message, now_ns);
    if (r.outcome != ir::ProcessOutcome::kPass) {
      if (r.outcome != ir::ProcessOutcome::kReply) {
        ++dropped_;
        if (timing) drops_counter_->Inc();
      }
      out.result = r;
      close_group();
      return out;
    }
  }
  close_group();
  return out;
}

double EngineChain::CostNs(const sim::CostModel& model, rpc::MessageKind kind,
                           size_t payload_bytes) const {
  double total = static_cast<double>(model.mrpc_engine_dispatch_ns);
  for (const auto& stage : stages_) {
    if (!stage->AppliesTo(kind)) continue;
    total += stage->CostNs(model, payload_bytes);
  }
  return total;
}

}  // namespace adn::mrpc
