// End-to-end simulated ADN data path (the paper's prototype architecture):
//
//   client app -(shm)-> client mRPC service -(TCP)-> kernel [eBPF] -> wire
//     -> [P4 switch] -> [SmartNIC] -> kernel -> server mRPC service
//     -(shm)-> server app
//
// Each bracketed site optionally hosts compiled ADN stages — that is how the
// Figure 2 configurations are expressed: config 1 places stages in the app
// processes, config 2 in kernel/SmartNIC, config 3 on the switch after
// reordering, config 4 widens the engine stations. The wire format between
// machines is the compiler-synthesized minimal header (rpc/wire.h), encoded
// and decoded for real on every crossing.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "mrpc/engine.h"
#include "rpc/wire.h"
#include "sim/cost_model.h"
#include "sim/stats.h"

namespace adn::mrpc {

enum class Site : uint8_t {
  kClientApp,
  kClientEngine,
  kClientKernel,   // eBPF hook point (tc egress / XDP)
  kSwitch,         // programmable switch on the path
  kServerNic,      // SmartNIC on the receiver
  kServerKernel,
  kServerEngine,
  kServerApp,
};

std::string_view SiteName(Site site);

using StageFactory = std::function<std::unique_ptr<EngineStage>()>;

struct PlacedStage {
  Site site;
  StageFactory factory;
  // Compiler-assigned parallel group (stages sharing an id on the same site
  // may overlap); -1 = strictly sequential.
  int parallel_group = -1;
};

struct AdnPathConfig {
  std::string label = "ADN+mRPC";
  int concurrency = 128;
  uint64_t measured_requests = 20'000;
  uint64_t warmup_requests = 2'000;
  uint64_t seed = 1;
  sim::CostModel model = sim::CostModel::Default();

  std::function<rpc::Message(uint64_t id, Rng& rng)> make_request;

  // Stages in chain order with their placement sites. Sites must be
  // non-decreasing in path order for request-direction processing.
  std::vector<PlacedStage> stages;

  // Wire header between the two machines (from the compiler's header
  // synthesis). Fields not listed are not carried.
  rpc::HeaderSpec header;

  // Station widths (config 4 scales these out).
  int client_engine_width = 1;
  int server_engine_width = 1;

  // True when the mRPC service runtime is on the path (false = config 1
  // "in-app" deployment where the RPC library does everything).
  bool client_engine_present = true;
  bool server_engine_present = true;
};

struct AdnPathResult {
  sim::RunStats stats;
  std::vector<std::pair<std::string, double>> stage_cpu_ns;
  double wire_bytes_per_request = 0.0;
  // CPU charged to host cores only (apps + engines + kernels), per RPC —
  // offloaded work (switch, NIC) excluded. Shows Figure 2's offload wins.
  double host_cpu_per_rpc_ns = 0.0;
  // Engine-station utilization over the measurement window — the signal the
  // controller's scaling feedback loop consumes.
  double client_engine_utilization = 0.0;
  double server_engine_utilization = 0.0;
};

AdnPathResult RunAdnPathExperiment(const AdnPathConfig& config);

}  // namespace adn::mrpc
