// End-to-end simulated ADN data path (the paper's prototype architecture):
//
//   client app -(shm)-> client mRPC service -(TCP)-> kernel [eBPF] -> wire
//     -> [P4 switch] -> [SmartNIC] -> kernel -> server mRPC service
//     -(shm)-> server app
//
// Each bracketed site optionally hosts compiled ADN stages — that is how the
// Figure 2 configurations are expressed: config 1 places stages in the app
// processes, config 2 in kernel/SmartNIC, config 3 on the switch after
// reordering, config 4 widens the engine stations. The wire format between
// machines is the compiler-synthesized minimal header (rpc/wire.h), encoded
// and decoded for real on every crossing.
//
// Threading: this whole path is single-threaded by design — it runs inside
// the discrete-event simulator, so "engine width" is a station parameter
// and the app<->service SpscRing carries a modeled shm_hop_ns cost, not
// real contention. The real-thread realization of the engine tier is
// EnginePool (engine_pool.h): N worker threads, shard-key routing, true
// SPSC handoff. See docs/ARCHITECTURE.md "Threading model".
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "mrpc/engine.h"
#include "rpc/wire.h"
#include "sim/cost_model.h"
#include "sim/stats.h"

namespace adn::mrpc {

enum class Site : uint8_t {
  kClientApp,
  kClientEngine,
  kClientKernel,   // eBPF hook point (tc egress / XDP)
  kSwitch,         // programmable switch on the path
  kServerNic,      // SmartNIC on the receiver
  kServerKernel,
  kServerEngine,
  kServerApp,
};

std::string_view SiteName(Site site);

using StageFactory = std::function<std::unique_ptr<EngineStage>()>;

struct PlacedStage {
  Site site;
  StageFactory factory;
  // Compiler-assigned parallel group (stages sharing an id on the same site
  // may overlap); -1 = strictly sequential.
  int parallel_group = -1;
};

// --- Live telemetry -> control loop (Figure 3 running *inside* the run) ------
//
// With AdnPathConfig::report_interval_ns > 0 the experiment schedules a
// recurring reporting event: every interval it publishes each active site's
// window telemetry into the obs registry (adn_engine_utilization gauges;
// the end-to-end adn_rpc_latency_ns histogram accumulates at completion
// time) and invokes on_report. The callback — the controller side, e.g.
// controller::Autoscaler — returns reconfiguration commands; each is
// applied with the pause-drain-resume migration protocol:
//
//   pause:  the site stops serving; messages arriving in either direction
//           are queued (never dropped), counted by adn_ctrl_queued_msgs_total
//   drain:  the command's `migrate` closure re-shards the chain's element
//           state for the new instance pool and returns the data-plane
//           pause it cost (EstimatePauseNs of the state moved)
//   resume: the station continues at new_width and replays the queue in
//           arrival order
//
// The station's width models the instance pool: the simulator charges
// capacity at the station, while the state split/merge runs for real on the
// chain's stages so the pause is proportional to true state size and
// losslessness is verifiable (hash round-trip).

// One active site's view over the last report window.
struct SiteWindow {
  Site site;
  std::string processor;  // SiteName(site) — the metric `processor` label
  int width = 1;
  double utilization = 0.0;  // busy fraction over the window
  bool paused = false;
};

struct PathReport {
  sim::SimTime window_start = 0;
  sim::SimTime window_end = 0;
  uint64_t issued = 0;     // arrivals this window (admitted + rejected)
  uint64_t completed = 0;  // completions this window (success)
  uint64_t dropped = 0;    // chain drops/aborts this window
  uint64_t rejected = 0;   // open-loop admission rejects this window
  std::vector<SiteWindow> sites;  // active sites only
};

struct ReconfigCommand {
  Site site;
  int new_width = 1;
  // Controller-supplied migration, run at pause start on the site's chain.
  // Returns the data-plane pause in ns; the site resumes (at new_width)
  // when it elapses. May be null (pure width change, minimal pause).
  std::function<sim::SimTime(EngineChain&)> migrate;
};

using ReportCallback =
    std::function<std::vector<ReconfigCommand>(const PathReport&)>;

struct AdnPathConfig {
  std::string label = "ADN+mRPC";
  int concurrency = 128;
  uint64_t measured_requests = 20'000;
  uint64_t warmup_requests = 2'000;
  uint64_t seed = 1;
  sim::CostModel model = sim::CostModel::Default();

  std::function<rpc::Message(uint64_t id, Rng& rng)> make_request;

  // Stages in chain order with their placement sites. Sites must be
  // non-decreasing in path order for request-direction processing.
  std::vector<PlacedStage> stages;

  // Wire header between the two machines (from the compiler's header
  // synthesis). Fields not listed are not carried.
  rpc::HeaderSpec header;

  // Station widths (config 4 scales these out).
  int client_engine_width = 1;
  int server_engine_width = 1;

  // True when the mRPC service runtime is on the path (false = config 1
  // "in-app" deployment where the RPC library does everything).
  bool client_engine_present = true;
  bool server_engine_present = true;

  // --- Live loop (all optional; defaults reproduce the closed-loop run) ----
  // > 0 enables the recurring in-run reporting event (Figure 3 cadence).
  sim::SimTime report_interval_ns = 0;
  // Controller hook invoked at each report; may return reconfigurations.
  ReportCallback on_report;
  // Open-loop arrivals: offered load (RPCs/sec) as a function of sim time.
  // When set, `concurrency` becomes an admission cap — arrivals beyond it
  // are rejected (counted, not simulated) — and the run lasts run_for_ns
  // instead of a fixed request count. Load generation starts at t=0 with no
  // warmup (the live loop is the experiment).
  std::function<double(sim::SimTime)> offered_rps;
  sim::SimTime run_for_ns = 0;
};

// One applied reconfiguration (for result timelines / bench_autoscale).
struct ReconfigEvent {
  sim::SimTime at = 0;  // pause start
  Site site;
  int old_width = 1;
  int new_width = 1;
  sim::SimTime pause_ns = 0;
  uint64_t queued_during_pause = 0;
};

struct AdnPathResult {
  sim::RunStats stats;
  std::vector<std::pair<std::string, double>> stage_cpu_ns;
  double wire_bytes_per_request = 0.0;
  // CPU charged to host cores only (apps + engines + kernels), per RPC —
  // offloaded work (switch, NIC) excluded. Shows Figure 2's offload wins.
  double host_cpu_per_rpc_ns = 0.0;
  // Engine-station utilization over the measurement window — the signal the
  // controller's scaling feedback loop consumes.
  double client_engine_utilization = 0.0;
  double server_engine_utilization = 0.0;
  // --- Live-loop accounting (empty unless report_interval_ns > 0) ----------
  std::vector<ReconfigEvent> reconfigs;
  std::vector<PathReport> reports;  // one per reporting tick, in order
  uint64_t issued = 0;              // open-loop arrivals admitted
  uint64_t rejected = 0;            // open-loop arrivals beyond the cap
  uint64_t queued_during_pause = 0;  // messages held (not lost) across pauses
};

AdnPathResult RunAdnPathExperiment(const AdnPathConfig& config);

}  // namespace adn::mrpc
