#include "mrpc/engine_pool.h"

#include <time.h>

#include <algorithm>
#include <array>
#include <chrono>

#include "compiler/chain_compile.h"
#include "obs/trace.h"
#include "rpc/table.h"

namespace adn::mrpc {

namespace {

// Thread CPU time (what this worker actually burned, preemption excluded) —
// the honest per-core cost basis for pool capacity on shared/overcommitted
// hosts where wall clock cannot attribute time to threads.
int64_t ThreadCpuNs() {
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

}  // namespace

// --- GroupRunner --------------------------------------------------------------

GroupRunner::GroupRunner(int helpers) {
  threads_.reserve(static_cast<size_t>(std::max(helpers, 0)));
  for (int i = 0; i < helpers; ++i) {
    threads_.emplace_back([this, i] { HelperLoop(i); });
  }
}

GroupRunner::~GroupRunner() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void GroupRunner::HelperLoop(int index) {
  uint64_t seen_epoch = 0;
  for (;;) {
    const std::vector<std::function<void()>>* tasks = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [&] { return stop_ || (epoch_ != seen_epoch &&
                                           tasks_ != nullptr); });
      if (stop_) return;
      seen_epoch = epoch_;
      tasks = tasks_;
    }
    // Helper i owns tasks[i + 1] (task 0 runs on the caller).
    const size_t mine = static_cast<size_t>(index) + 1;
    if (mine < tasks->size()) (*tasks)[mine]();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--remaining_ == 0) done_cv_.notify_one();
    }
  }
}

void GroupRunner::Run(const std::vector<std::function<void()>>& tasks) {
  if (tasks.empty()) return;
  // Tasks beyond the helper pool run inline after task 0.
  const size_t dispatched =
      std::min(tasks.size() - 1, threads_.size());
  if (dispatched > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_ = &tasks;
    remaining_ = static_cast<int>(threads_.size());
    ++epoch_;
    work_cv_.notify_all();
  }
  tasks[0]();
  for (size_t i = threads_.size() + 1; i < tasks.size(); ++i) tasks[i]();
  if (dispatched > 0) {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return remaining_ == 0; });
    tasks_ = nullptr;
  }
}

// --- EnginePool ---------------------------------------------------------------

EnginePool::EnginePool(
    std::vector<std::shared_ptr<const ir::ElementIr>> elements,
    std::vector<int> parallel_groups, Config config)
    : elements_(std::move(elements)),
      parallel_groups_(std::move(parallel_groups)),
      config_(std::move(config)) {
  if (config_.workers < 1) config_.workers = 1;
  if (!config_.shard_key_field.empty()) {
    shard_key_fid_ = rpc::InternFieldName(config_.shard_key_field);
    has_shard_key_ = true;
  }
  template_instances_.reserve(elements_.size());
  for (size_t i = 0; i < elements_.size(); ++i) {
    template_instances_.push_back(std::make_unique<ir::ElementInstance>(
        elements_[i], config_.seed + i + 1));
  }
  // Compiled forms. The whole-chain program is the sequential fast path; the
  // per-element programs serve concurrent segments and the fallback path.
  element_programs_.resize(elements_.size());
  bool all_compiled = true;
  for (size_t i = 0; i < elements_.size(); ++i) {
    auto program = compiler::CompileElementProgram(*elements_[i]);
    if (program.ok()) {
      element_programs_[i] = std::move(program).value();
    } else {
      all_compiled = false;
    }
  }
  if (all_compiled && config_.group_mode == GroupMode::kSequential) {
    auto chain = compiler::CompileChainProgram(elements_, {});
    if (chain.ok()) whole_chain_program_ = std::move(chain).value();
  }
  BuildSegments();
}

EnginePool::~EnginePool() { Stop(); }

void EnginePool::BuildSegments() {
  segments_.clear();
  max_fused_width_ = 1;
  size_t i = 0;
  while (i < elements_.size()) {
    Segment seg;
    seg.begin = i;
    seg.end = i + 1;
    if (i < parallel_groups_.size()) {
      const int group = parallel_groups_[i];
      while (seg.end < elements_.size() && seg.end < parallel_groups_.size() &&
             parallel_groups_[seg.end] == group) {
        ++seg.end;
      }
    }
    // A fused concurrent segment must be provably safe on one shared
    // Message: every member compiled, and no member reshapes the field
    // vector (projection) or steers routing mid-group. Written fields are
    // collected so RunFusedSegment can pre-create them — after that, every
    // kStoreField lands in an existing slot and never reallocates.
    if (seg.end - seg.begin > 1) {
      bool safe = true;
      for (size_t e = seg.begin; e < seg.end && safe; ++e) {
        const ir::ChainProgram* program = element_programs_[e].get();
        if (program == nullptr) {
          safe = false;
          break;
        }
        for (const ir::Instr& instr : program->code) {
          if (instr.op == ir::Instr::Op::kProject ||
              instr.op == ir::Instr::Op::kRouteDest) {
            safe = false;
            break;
          }
          if (instr.op == ir::Instr::Op::kStoreField) {
            seg.precreate_fields.push_back(
                rpc::InternFieldName(program->field_names[instr.b]));
          }
        }
      }
      seg.fused = safe;
      if (!safe) seg.precreate_fields.clear();
      std::sort(seg.precreate_fields.begin(), seg.precreate_fields.end());
      seg.precreate_fields.erase(
          std::unique(seg.precreate_fields.begin(), seg.precreate_fields.end()),
          seg.precreate_fields.end());
      if (seg.fused) {
        max_fused_width_ = std::max(max_fused_width_, seg.end - seg.begin);
      }
    }
    segments_.push_back(std::move(seg));
    i = segments_.back().end;
  }
}

ir::ElementInstance* EnginePool::TemplateInstance(size_t element) {
  if (element >= template_instances_.size()) return nullptr;
  return template_instances_[element].get();
}

ir::ElementInstance* EnginePool::FindTemplateInstance(std::string_view name) {
  for (auto& inst : template_instances_) {
    if (inst->name() == name) return inst.get();
  }
  return nullptr;
}

Status EnginePool::Start() {
  if (started_) {
    return Status(ErrorCode::kInvalidArgument, "EnginePool already started");
  }
  const int n = config_.workers;
  // Shard the template state: element e's tables split by key hash into one
  // snapshot per worker (Table::SplitByKeyHash under the hood).
  std::vector<std::vector<Bytes>> shards(elements_.size());
  for (size_t e = 0; e < elements_.size(); ++e) {
    auto split = template_instances_[e]->SplitState(static_cast<size_t>(n));
    if (!split.ok()) return split.status();
    shards[e] = std::move(split).value();
  }

  workers_.reserve(static_cast<size_t>(n));
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  for (int w = 0; w < n; ++w) {
    auto worker = std::make_unique<Worker>(config_.ring_capacity);
    worker->trace_processor =
        config_.processor + "-w" + std::to_string(w);
    const std::string label =
        "processor=\"" + worker->trace_processor + "\"";
    worker->rpcs_counter = &reg.GetCounter("adn_chain_rpcs_total", label);
    worker->drops_counter = &reg.GetCounter("adn_chain_drops_total", label);
    worker->instances.reserve(elements_.size());
    for (size_t e = 0; e < elements_.size(); ++e) {
      auto inst = std::make_unique<ir::ElementInstance>(
          elements_[e],
          config_.seed * 1'000'003 + static_cast<uint64_t>(w) * 131 + e);
      ADN_RETURN_IF_ERROR(inst->RestoreState(shards[e][w]));
      worker->instances.push_back(std::move(inst));
    }
    if (whole_chain_program_ != nullptr) {
      std::vector<ir::ElementInstance*> raw;
      for (auto& inst : worker->instances) raw.push_back(inst.get());
      worker->chain_exec = std::make_unique<ir::ChainExecutor>(
          whole_chain_program_, std::move(raw));
    } else {
      worker->element_exec.resize(elements_.size());
      for (size_t e = 0; e < elements_.size(); ++e) {
        if (element_programs_[e] == nullptr) continue;
        worker->element_exec[e] = std::make_unique<ir::ChainExecutor>(
            element_programs_[e],
            std::vector<ir::ElementInstance*>{worker->instances[e].get()});
      }
      if (config_.group_mode == GroupMode::kConcurrent &&
          max_fused_width_ > 1) {
        worker->group_runner = std::make_unique<GroupRunner>(
            static_cast<int>(max_fused_width_) - 1);
      }
    }
    workers_.push_back(std::move(worker));
  }
  stop_.store(false, std::memory_order_release);
  started_ = true;
  for (int w = 0; w < n; ++w) {
    workers_[static_cast<size_t>(w)]->thread =
        std::thread([this, w] { WorkerLoop(w); });
  }
  return Status::Ok();
}

int EnginePool::WorkerOfKey(const rpc::Value& key) const {
  return static_cast<int>(rpc::HashSingleKey(key) %
                          static_cast<uint64_t>(config_.workers));
}

int EnginePool::WorkerOfMessage(const rpc::Message& message) const {
  if (has_shard_key_) {
    if (const rpc::Value* v = message.FindField(shard_key_fid_)) {
      return WorkerOfKey(*v);
    }
  }
  // Connection/RPC-id fallback for messages without the shard key.
  return WorkerOfKey(rpc::Value(static_cast<int64_t>(message.id())));
}

int EnginePool::Submit(rpc::Message message) {
  const int w = WorkerOfMessage(message);
  Worker& worker = *workers_[static_cast<size_t>(w)];
  worker.submitted.fetch_add(1, std::memory_order_relaxed);
  while (!worker.ring.TryPush(std::move(message))) {
    // Backpressure: the SPSC contract means only this thread pushes, so
    // yielding until the worker frees a slot is safe (and on an
    // oversubscribed host it donates the timeslice to the worker).
    std::this_thread::yield();
  }
  if (worker.sleeping.load(std::memory_order_seq_cst)) {
    std::lock_guard<std::mutex> lock(worker.mu);
    worker.cv.notify_one();
  }
  return w;
}

void EnginePool::Drain() {
  if (!started_) return;
  for (auto& worker : workers_) {
    while (worker->done.load(std::memory_order_acquire) <
           worker->submitted.load(std::memory_order_relaxed)) {
      std::this_thread::yield();
    }
  }
}

void EnginePool::Stop() {
  if (!started_ || stopped_) return;
  Drain();
  stop_.store(true, std::memory_order_seq_cst);
  for (auto& worker : workers_) {
    std::lock_guard<std::mutex> lock(worker->mu);
    worker->cv.notify_one();
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
    worker->group_runner.reset();  // joins helper threads
  }
  stopped_ = true;
}

void EnginePool::WorkerLoop(int index) {
  Worker& w = *workers_[static_cast<size_t>(index)];
  const int64_t cpu_start = ThreadCpuNs();
  int64_t exec_acc = 0;
  // One unified burst drain for both the measuring and non-measuring modes:
  // TryPopBurst moves up to burst_size messages per head/tail round trip
  // into a fixed worker-local array (no per-batch heap traffic), then
  // ProcessBatch runs the burst executor (or the per-message path when the
  // chain is not burst-compiled / observability is on).
  //
  // measure_exec wraps only the ProcessBatch call in a
  // CLOCK_THREAD_CPUTIME_ID window: thread CPU time excludes preemption
  // (wall clocks lie on oversubscribed hosts) and the burst amortizes the
  // two clock syscalls to ~nothing per message. Dequeue, on_done, message
  // destruction, and parking stay outside the window, so exec_ns measures
  // the same thing bench_breakdown's timed loop does.
  const size_t burst_max =
      std::clamp<size_t>(config_.burst_size, 1, ir::ChainExecutor::kMaxBurstLanes);
  std::array<rpc::Message, ir::ChainExecutor::kMaxBurstLanes> burst;
  std::array<ir::ProcessResult, ir::ChainExecutor::kMaxBurstLanes> results;
  int spins = 0;
  for (;;) {
    const size_t got = w.ring.TryPopBurst(burst.data(), burst_max);
    if (got > 0) {
      spins = 0;
      const int64_t now_ns = config_.clock ? config_.clock() : 0;
      if (config_.measure_exec) {
        const int64_t exec_start = ThreadCpuNs();
        ProcessBatch(w, burst.data(), got, now_ns, results.data());
        exec_acc += ThreadCpuNs() - exec_start;
        // Publish exec before done: after Drain() observes done==submitted,
        // worker_exec_ns() is exact for everything processed so far.
        w.exec_ns.store(exec_acc, std::memory_order_release);
      } else {
        ProcessBatch(w, burst.data(), got, now_ns, results.data());
      }
      uint64_t drops = 0;
      for (size_t i = 0; i < got; ++i) {
        if (results[i].outcome != ir::ProcessOutcome::kPass) ++drops;
        if (config_.on_done) config_.on_done(index, burst[i], results[i]);
      }
      if (drops > 0) w.dropped.fetch_add(drops, std::memory_order_relaxed);
      w.done.fetch_add(got, std::memory_order_release);
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) break;
    if (++spins < 64) {
      std::this_thread::yield();
      continue;
    }
    // Park so idle workers burn no CPU (keeps worker_cpu_ns ≈ busy time).
    // seq_cst on the sleeping flag pairs with the producer's seq_cst load
    // after its push; the timed wait is a belt-and-braces fallback.
    std::unique_lock<std::mutex> lock(w.mu);
    w.sleeping.store(true, std::memory_order_seq_cst);
    if (w.ring.empty() && !stop_.load(std::memory_order_acquire)) {
      w.cv.wait_for(lock, std::chrono::milliseconds(1));
    }
    w.sleeping.store(false, std::memory_order_relaxed);
    spins = 0;
  }
  w.cpu_ns.store(ThreadCpuNs() - cpu_start, std::memory_order_release);
  w.exec_ns.store(exec_acc, std::memory_order_release);
}

void EnginePool::ProcessBatch(Worker& w, rpc::Message* msgs, size_t n,
                              int64_t now_ns, ir::ProcessResult* results) {
  // Burst path only when the whole chain compiled and observability is off:
  // per-RPC trace scopes and the rpcs/drops counters are message-major, so
  // an obs-on run takes ProcessMessage per lane (ProcessBurst would fall
  // back to scalar internally anyway, but would skip the pool counters).
  if (w.chain_exec != nullptr && !obs::Enabled()) {
    w.chain_exec->ProcessBurst(msgs, n, now_ns, results);
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    results[i] = ProcessMessage(w, msgs[i], now_ns);
  }
}

ir::ProcessResult EnginePool::ProcessMessage(Worker& w, rpc::Message& m,
                                             int64_t now_ns) {
  const bool timing = obs::Enabled();
  std::optional<obs::RpcTraceScope> scope;
  if (timing) {
    w.rpcs_counter->Inc();
    scope.emplace(m.id(), obs::Tier::kEngine, w.trace_processor, "rpc");
  }
  ir::ProcessResult result = ir::ProcessResult::Pass();
  if (w.chain_exec != nullptr) {
    result = w.chain_exec->Process(m, now_ns);
  } else {
    for (const Segment& seg : segments_) {
      if (seg.fused && w.group_runner != nullptr) {
        result = RunFusedSegment(w, seg, m, now_ns);
      } else {
        for (size_t e = seg.begin; e < seg.end; ++e) {
          result = RunElement(w, e, m, now_ns);
          if (result.outcome != ir::ProcessOutcome::kPass) break;
        }
      }
      if (result.outcome != ir::ProcessOutcome::kPass) break;
    }
  }
  if (timing && result.outcome != ir::ProcessOutcome::kPass) {
    w.drops_counter->Inc();
  }
  return result;
}

ir::ProcessResult EnginePool::RunElement(Worker& w, size_t element,
                                         rpc::Message& m, int64_t now_ns) {
  ir::ElementInstance& inst = *w.instances[element];
  if (!inst.AppliesTo(m.kind())) return ir::ProcessResult::Pass();
  if (w.element_exec[element] != nullptr) {
    return w.element_exec[element]->Process(m, now_ns);
  }
  return inst.Process(m, now_ns);
}

ir::ProcessResult EnginePool::RunFusedSegment(Worker& w, const Segment& seg,
                                              rpc::Message& m,
                                              int64_t now_ns) {
  // Collect applicable members; a group that degenerates to one member runs
  // inline with no fork-join cost.
  std::vector<size_t> members;
  members.reserve(seg.end - seg.begin);
  for (size_t e = seg.begin; e < seg.end; ++e) {
    if (w.instances[e]->AppliesTo(m.kind())) members.push_back(e);
  }
  if (members.empty()) return ir::ProcessResult::Pass();
  if (members.size() == 1) return RunElement(w, members[0], m, now_ns);

  // Pre-create every field the segment writes: after this, member stores
  // overwrite existing slots in place and the field vector never moves while
  // the helpers run. The effect analysis already guarantees the members'
  // read/write field sets are pairwise disjoint.
  for (const rpc::FieldId field : seg.precreate_fields) {
    if (!m.HasField(field)) m.SetField(field, rpc::Value());
  }

  std::vector<ir::ProcessResult> results(members.size());
  std::vector<std::function<void()>> tasks;
  tasks.reserve(members.size());
  for (size_t k = 0; k < members.size(); ++k) {
    tasks.push_back([this, &w, &m, &results, &members, k, now_ns] {
      results[k] = w.element_exec[members[k]]->Process(m, now_ns);
    });
  }
  w.group_runner->Run(tasks);
  // All members saw the same input snapshot; the first non-pass in chain
  // order decides the message's fate (CheckParallelizable admits at most
  // one dropper per group).
  for (const ir::ProcessResult& r : results) {
    if (r.outcome != ir::ProcessOutcome::kPass) return r;
  }
  return ir::ProcessResult::Pass();
}

uint64_t EnginePool::processed() const {
  uint64_t total = 0;
  for (const auto& worker : workers_) {
    total += worker->done.load(std::memory_order_acquire);
  }
  return total;
}

uint64_t EnginePool::dropped() const {
  uint64_t total = 0;
  for (const auto& worker : workers_) {
    total += worker->dropped.load(std::memory_order_acquire);
  }
  return total;
}

uint64_t EnginePool::processed_by(int worker) const {
  return workers_[static_cast<size_t>(worker)]->done.load(
      std::memory_order_acquire);
}

int64_t EnginePool::worker_cpu_ns(int worker) const {
  return workers_[static_cast<size_t>(worker)]->cpu_ns.load(
      std::memory_order_acquire);
}

int64_t EnginePool::worker_exec_ns(int worker) const {
  return workers_[static_cast<size_t>(worker)]->exec_ns.load(
      std::memory_order_acquire);
}

ir::ElementInstance& EnginePool::WorkerInstance(int worker, size_t element) {
  return *workers_[static_cast<size_t>(worker)]->instances[element];
}

Result<std::unique_ptr<ir::ElementInstance>> EnginePool::MergedInstance(
    size_t element) const {
  auto merged = std::make_unique<ir::ElementInstance>(elements_[element],
                                                      config_.seed);
  for (const auto& worker : workers_) {
    const Bytes snapshot = worker->instances[element]->SnapshotState();
    ADN_RETURN_IF_ERROR(merged->MergeState(snapshot));
  }
  return merged;
}

uint64_t EnginePool::MergedStateHash(size_t element) const {
  uint64_t h = 0;
  for (const auto& worker : workers_) {
    h ^= worker->instances[element]->StateContentHash();
  }
  return h;
}

}  // namespace adn::mrpc
