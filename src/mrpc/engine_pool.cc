#include "mrpc/engine_pool.h"

#include <time.h>

#include <algorithm>
#include <array>
#include <chrono>

#include "compiler/chain_compile.h"
#include "obs/trace.h"
#include "rpc/table.h"

namespace adn::mrpc {

namespace {

// Thread CPU time (what this worker actually burned, preemption excluded) —
// the honest per-core cost basis for pool capacity on shared/overcommitted
// hosts where wall clock cannot attribute time to threads.
int64_t ThreadCpuNs() {
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

// Interned once per process: the root span name the per-message path opens.
obs::NameId PoolRpcNameId() {
  static const obs::NameId id = obs::InternName("rpc");
  return id;
}

// Emit a reconfiguration state-machine transition (or program swap) as an
// instant event into the calling thread's ring. Names are the docs/RECONFIG.md
// "Emitted events" contract. Reconfigs are rare, so interning here is fine.
void EmitReconfigEvent(obs::EventKind kind, std::string_view name,
                       std::string_view processor, uint64_t arg) {
  if (!obs::Enabled() || !obs::Tracer::Default().tracing_enabled()) return;
  obs::TraceEvent ev;
  ev.kind = kind;
  ev.name_id = obs::InternName(name);
  ev.processor_id = obs::InternName(processor);
  ev.start_ns = obs::NowNs();
  ev.end_ns = ev.start_ns;
  ev.arg = arg;
  ev.tier = static_cast<uint8_t>(obs::Tier::kEngine);
  obs::EmitEvent(ev);
}

}  // namespace

// --- GroupRunner --------------------------------------------------------------

GroupRunner::GroupRunner(int helpers) {
  threads_.reserve(static_cast<size_t>(std::max(helpers, 0)));
  for (int i = 0; i < helpers; ++i) {
    threads_.emplace_back([this, i] { HelperLoop(i); });
  }
}

GroupRunner::~GroupRunner() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void GroupRunner::HelperLoop(int index) {
  uint64_t seen_epoch = 0;
  for (;;) {
    const std::vector<std::function<void()>>* tasks = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [&] { return stop_ || (epoch_ != seen_epoch &&
                                           tasks_ != nullptr); });
      if (stop_) return;
      seen_epoch = epoch_;
      tasks = tasks_;
    }
    // Helper i owns tasks[i + 1] (task 0 runs on the caller).
    const size_t mine = static_cast<size_t>(index) + 1;
    if (mine < tasks->size()) (*tasks)[mine]();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--remaining_ == 0) done_cv_.notify_one();
    }
  }
}

void GroupRunner::Run(const std::vector<std::function<void()>>& tasks) {
  if (tasks.empty()) return;
  // Tasks beyond the helper pool run inline after task 0.
  const size_t dispatched =
      std::min(tasks.size() - 1, threads_.size());
  if (dispatched > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_ = &tasks;
    remaining_ = static_cast<int>(threads_.size());
    ++epoch_;
    work_cv_.notify_all();
  }
  tasks[0]();
  for (size_t i = threads_.size() + 1; i < tasks.size(); ++i) tasks[i]();
  if (dispatched > 0) {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return remaining_ == 0; });
    tasks_ = nullptr;
  }
}

// --- EnginePool ---------------------------------------------------------------

EnginePool::EnginePool(
    std::vector<std::shared_ptr<const ir::ElementIr>> elements,
    std::vector<int> parallel_groups, Config config)
    : elements_(std::move(elements)),
      parallel_groups_(std::move(parallel_groups)),
      config_(std::move(config)) {
  if (config_.workers < 1) config_.workers = 1;
  if (!config_.shard_key_field.empty()) {
    shard_key_fid_ = rpc::InternFieldName(config_.shard_key_field);
    has_shard_key_ = true;
  }
  template_instances_.reserve(elements_.size());
  for (size_t i = 0; i < elements_.size(); ++i) {
    template_instances_.push_back(std::make_unique<ir::ElementInstance>(
        elements_[i], config_.seed + i + 1));
  }
  // Compiled forms. The whole-chain program is the sequential fast path; the
  // per-element programs serve concurrent segments and the fallback path.
  element_programs_.resize(elements_.size());
  bool all_compiled = true;
  for (size_t i = 0; i < elements_.size(); ++i) {
    auto program = compiler::CompileElementProgram(*elements_[i]);
    if (program.ok()) {
      element_programs_[i] = std::move(program).value();
    } else {
      all_compiled = false;
    }
  }
  if (all_compiled && config_.group_mode == GroupMode::kSequential) {
    auto chain = compiler::CompileChainProgram(elements_, {});
    if (chain.ok()) whole_chain_program_ = std::move(chain).value();
  }
  if (whole_chain_program_ != nullptr) {
    program_version_.store(whole_chain_program_->version,
                           std::memory_order_relaxed);
  }
  // Initial routing: slots dealt round-robin across workers. Start() shards
  // tables with the same (slot % workers) assignment, so routing and state
  // agree from the first message.
  for (size_t s = 0; s < kRouteSlots; ++s) {
    route_[s] = static_cast<int32_t>(s % static_cast<size_t>(config_.workers));
  }
  BuildSegments();
}

EnginePool::~EnginePool() { Stop(); }

void EnginePool::BuildSegments() {
  segments_.clear();
  max_fused_width_ = 1;
  size_t i = 0;
  while (i < elements_.size()) {
    Segment seg;
    seg.begin = i;
    seg.end = i + 1;
    if (i < parallel_groups_.size()) {
      const int group = parallel_groups_[i];
      while (seg.end < elements_.size() && seg.end < parallel_groups_.size() &&
             parallel_groups_[seg.end] == group) {
        ++seg.end;
      }
    }
    // A fused concurrent segment must be provably safe on one shared
    // Message: every member compiled, and no member reshapes the field
    // vector (projection) or steers routing mid-group. Written fields are
    // collected so RunFusedSegment can pre-create them — after that, every
    // kStoreField lands in an existing slot and never reallocates.
    if (seg.end - seg.begin > 1) {
      bool safe = true;
      for (size_t e = seg.begin; e < seg.end && safe; ++e) {
        const ir::ChainProgram* program = element_programs_[e].get();
        if (program == nullptr) {
          safe = false;
          break;
        }
        for (const ir::Instr& instr : program->code) {
          if (instr.op == ir::Instr::Op::kProject ||
              instr.op == ir::Instr::Op::kRouteDest) {
            safe = false;
            break;
          }
          if (instr.op == ir::Instr::Op::kStoreField) {
            seg.precreate_fields.push_back(
                rpc::InternFieldName(program->field_names[instr.b]));
          }
        }
      }
      seg.fused = safe;
      if (!safe) seg.precreate_fields.clear();
      std::sort(seg.precreate_fields.begin(), seg.precreate_fields.end());
      seg.precreate_fields.erase(
          std::unique(seg.precreate_fields.begin(), seg.precreate_fields.end()),
          seg.precreate_fields.end());
      if (seg.fused) {
        max_fused_width_ = std::max(max_fused_width_, seg.end - seg.begin);
      }
    }
    segments_.push_back(std::move(seg));
    i = segments_.back().end;
  }
}

ir::ElementInstance* EnginePool::TemplateInstance(size_t element) {
  if (element >= template_instances_.size()) return nullptr;
  return template_instances_[element].get();
}

ir::ElementInstance* EnginePool::FindTemplateInstance(std::string_view name) {
  for (auto& inst : template_instances_) {
    if (inst->name() == name) return inst.get();
  }
  return nullptr;
}

Status EnginePool::Start() {
  if (started_) {
    return Status(ErrorCode::kInvalidArgument, "EnginePool already started");
  }
  const int n = config_.workers;
  // Shard the template state under the two-level slot partition
  // ((key hash % kRouteSlots) % workers) so table placement matches the
  // route_ slot table for ANY worker count — the invariant live migration
  // preserves one slot at a time.
  std::vector<std::vector<Bytes>> shards(elements_.size());
  for (size_t e = 0; e < elements_.size(); ++e) {
    auto split = template_instances_[e]->SplitStateSlotted(
        static_cast<size_t>(n), kRouteSlots);
    if (!split.ok()) return split.status();
    shards[e] = std::move(split).value();
  }

  workers_.reserve(static_cast<size_t>(n));
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  for (int w = 0; w < n; ++w) {
    auto worker = std::make_unique<Worker>(config_.ring_capacity);
    worker->trace_processor =
        config_.processor + "-w" + std::to_string(w);
    const std::string label =
        "processor=\"" + worker->trace_processor + "\"";
    worker->rpcs_counter = &reg.GetCounter("adn_chain_rpcs_total", label);
    worker->drops_counter = &reg.GetCounter("adn_chain_drops_total", label);
    worker->trace_processor_id = obs::InternName(worker->trace_processor);
    worker->instances.reserve(elements_.size());
    for (size_t e = 0; e < elements_.size(); ++e) {
      auto inst = std::make_unique<ir::ElementInstance>(
          elements_[e],
          config_.seed * 1'000'003 + static_cast<uint64_t>(w) * 131 + e);
      ADN_RETURN_IF_ERROR(inst->RestoreState(shards[e][w]));
      worker->instances.push_back(std::move(inst));
    }
    if (whole_chain_program_ != nullptr) {
      std::vector<ir::ElementInstance*> raw;
      for (auto& inst : worker->instances) raw.push_back(inst.get());
      worker->chain_exec = std::make_unique<ir::ChainExecutor>(
          whole_chain_program_, std::move(raw));
      worker->chain_exec->set_trace_identity(obs::Tier::kEngine,
                                             worker->trace_processor_id);
    } else {
      worker->element_exec.resize(elements_.size());
      for (size_t e = 0; e < elements_.size(); ++e) {
        if (element_programs_[e] == nullptr) continue;
        worker->element_exec[e] = std::make_unique<ir::ChainExecutor>(
            element_programs_[e],
            std::vector<ir::ElementInstance*>{worker->instances[e].get()});
        worker->element_exec[e]->set_trace_identity(
            obs::Tier::kEngine, worker->trace_processor_id);
      }
      if (config_.group_mode == GroupMode::kConcurrent &&
          max_fused_width_ > 1) {
        worker->group_runner = std::make_unique<GroupRunner>(
            static_cast<int>(max_fused_width_) - 1);
      }
    }
    workers_.push_back(std::move(worker));
  }
  stop_.store(false, std::memory_order_release);
  started_ = true;
  for (int w = 0; w < n; ++w) {
    workers_[static_cast<size_t>(w)]->thread =
        std::thread([this, w] { WorkerLoop(w); });
  }
  return Status::Ok();
}

int EnginePool::SlotOfKey(const rpc::Value& key) {
  return static_cast<int>(rpc::HashSingleKey(key) %
                          static_cast<uint64_t>(kRouteSlots));
}

int EnginePool::SlotOfMessage(const rpc::Message& message) const {
  if (has_shard_key_) {
    if (const rpc::Value* v = message.FindField(shard_key_fid_)) {
      return SlotOfKey(*v);
    }
  }
  // Connection/RPC-id fallback for messages without the shard key.
  return SlotOfKey(rpc::Value(static_cast<int64_t>(message.id())));
}

int EnginePool::WorkerOfSlot(int slot) const {
  return static_cast<int>(route_[static_cast<size_t>(slot)]);
}

int EnginePool::WorkerOfKey(const rpc::Value& key) const {
  return WorkerOfSlot(SlotOfKey(key));
}

int EnginePool::WorkerOfMessage(const rpc::Message& message) const {
  return WorkerOfSlot(SlotOfMessage(message));
}

int EnginePool::Submit(rpc::Message message) {
  if (mig_ != nullptr && mig_->holding) {
    // Cutover window: the moving slot's messages wait producer-side (in
    // order) until the delta lands at the destination; everything else
    // flows. This — not a pool-wide pause — is the whole blackout.
    const int slot = SlotOfMessage(message);
    if (slot == mig_->slot) {
      mig_->held.push_back(std::move(message));
      PumpMigration();
      return mig_->to;
    }
  }
  const int w = WorkerOfMessage(message);
  Worker& worker = *workers_[static_cast<size_t>(w)];
  worker.submitted.fetch_add(1, std::memory_order_relaxed);
  while (!worker.ring.TryPush(std::move(message))) {
    // Backpressure: the SPSC contract means only this thread pushes, so
    // yielding until the worker frees a slot is safe (and on an
    // oversubscribed host it donates the timeslice to the worker).
    std::this_thread::yield();
  }
  if (worker.sleeping.load(std::memory_order_seq_cst)) {
    std::lock_guard<std::mutex> lock(worker.mu);
    worker.cv.notify_one();
  }
  return w;
}

void EnginePool::Drain() {
  if (!started_) return;
  for (auto& worker : workers_) {
    while (worker->done.load(std::memory_order_acquire) <
           worker->submitted.load(std::memory_order_relaxed)) {
      std::this_thread::yield();
    }
  }
}

void EnginePool::Stop() {
  if (!started_ || stopped_) return;
  Drain();
  stop_.store(true, std::memory_order_seq_cst);
  for (auto& worker : workers_) {
    std::lock_guard<std::mutex> lock(worker->mu);
    worker->cv.notify_one();
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
    worker->group_runner.reset();  // joins helper threads
  }
  stopped_ = true;
}

void EnginePool::WorkerLoop(int index) {
  Worker& w = *workers_[static_cast<size_t>(index)];
  // Register + label this worker's event ring up front so tools can show
  // per-worker ring depth even before the first emit.
  obs::EventRingRegistry::Default().SetThisThreadLabel(w.trace_processor);
  const int64_t cpu_start = ThreadCpuNs();
  int64_t exec_acc = 0;
  // One unified burst drain for both the measuring and non-measuring modes:
  // TryPopBurst moves up to burst_size messages per head/tail round trip
  // into a fixed worker-local array (no per-batch heap traffic), then
  // ProcessBatch runs the burst executor (or the per-message path when the
  // chain is not burst-compiled / observability is on).
  //
  // measure_exec wraps only the ProcessBatch call in a
  // CLOCK_THREAD_CPUTIME_ID window: thread CPU time excludes preemption
  // (wall clocks lie on oversubscribed hosts) and the burst amortizes the
  // two clock syscalls to ~nothing per message. Dequeue, on_done, message
  // destruction, and parking stay outside the window, so exec_ns measures
  // the same thing bench_breakdown's timed loop does.
  const size_t burst_max =
      std::clamp<size_t>(config_.burst_size, 1, ir::ChainExecutor::kMaxBurstLanes);
  std::array<rpc::Message, ir::ChainExecutor::kMaxBurstLanes> burst;
  std::array<ir::ProcessResult, ir::ChainExecutor::kMaxBurstLanes> results;
  int spins = 0;
  for (;;) {
    // Reconfiguration mailbox: one relaxed load per burst when idle. A
    // pending op whose barrier is ahead clamps the burst so no pop crosses
    // it — the "swap at burst boundaries" guarantee.
    size_t burst_limit = burst_max;
    if (w.ctrl_pending.load(std::memory_order_acquire)) {
      burst_limit = RunPendingControl(w, burst_max);
    }
    const size_t got = w.ring.TryPopBurst(burst.data(), burst_limit);
    if (got > 0) {
      spins = 0;
      const int64_t now_ns = config_.clock ? config_.clock() : 0;
      if (config_.measure_exec) {
        const int64_t exec_start = ThreadCpuNs();
        ProcessBatch(w, burst.data(), got, now_ns, results.data());
        exec_acc += ThreadCpuNs() - exec_start;
        // Publish exec before done: after Drain() observes done==submitted,
        // worker_exec_ns() is exact for everything processed so far.
        w.exec_ns.store(exec_acc, std::memory_order_release);
      } else {
        ProcessBatch(w, burst.data(), got, now_ns, results.data());
      }
      uint64_t drops = 0;
      for (size_t i = 0; i < got; ++i) {
        // kReply lanes completed successfully (cache short-circuit).
        if (results[i].outcome != ir::ProcessOutcome::kPass &&
            results[i].outcome != ir::ProcessOutcome::kReply) {
          ++drops;
        }
        if (config_.on_done) config_.on_done(index, burst[i], results[i]);
      }
      if (drops > 0) w.dropped.fetch_add(drops, std::memory_order_relaxed);
      w.done.fetch_add(got, std::memory_order_release);
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) break;
    // A short pre-park spin bridges back-to-back bursts; keep it SMALL.
    // Submit() notifies a sleeping worker, so parking promptly costs one
    // futex wake (~µs) — while a long yield loop on a host with fewer cores
    // than threads ping-pongs timeslices between spinning workers (tens of
    // thousands of context switches per second) and starves the control
    // ops whose latency is the live-migration blackout window.
    if (++spins < 4) {
      std::this_thread::yield();
      continue;
    }
    // Park so idle workers burn no CPU (keeps worker_cpu_ns ≈ busy time).
    // seq_cst on the sleeping flag pairs with the producer's seq_cst load
    // after its push (and after a control post); the timed wait is a
    // belt-and-braces fallback.
    std::unique_lock<std::mutex> lock(w.mu);
    w.sleeping.store(true, std::memory_order_seq_cst);
    if (w.ring.empty() && !stop_.load(std::memory_order_acquire) &&
        !w.ctrl_pending.load(std::memory_order_seq_cst)) {
      w.cv.wait_for(lock, std::chrono::milliseconds(1));
    }
    w.sleeping.store(false, std::memory_order_relaxed);
    spins = 0;
  }
  // Drain any control ops posted after the last mailbox check; the ring is
  // empty here, so every barrier has been reached.
  if (w.ctrl_pending.load(std::memory_order_acquire)) {
    RunPendingControl(w, burst_max);
  }
  w.cpu_ns.store(ThreadCpuNs() - cpu_start, std::memory_order_release);
  w.exec_ns.store(exec_acc, std::memory_order_release);
}

void EnginePool::PostControl(int worker, std::function<void()> fn) {
  Worker& w = *workers_[static_cast<size_t>(worker)];
  ControlOp op;
  // Barrier: everything submitted so far must be done before fn runs. The
  // ring is FIFO, so this equals "every message ahead of this post".
  op.after_submitted = w.submitted.load(std::memory_order_relaxed);
  op.fn = std::move(fn);
  {
    std::lock_guard<std::mutex> lock(w.ctrl_mu);
    w.ctrl_ops.push_back(std::move(op));
  }
  w.ctrl_pending.store(true, std::memory_order_seq_cst);
  if (w.sleeping.load(std::memory_order_seq_cst)) {
    std::lock_guard<std::mutex> lock(w.mu);
    w.cv.notify_one();
  }
}

size_t EnginePool::RunPendingControl(Worker& w, size_t burst_max) {
  const uint64_t done = w.done.load(std::memory_order_relaxed);
  std::vector<std::function<void()>> ready;
  uint64_t next_barrier = 0;
  bool have_barrier = false;
  {
    std::lock_guard<std::mutex> lock(w.ctrl_mu);
    while (!w.ctrl_ops.empty() && w.ctrl_ops.front().after_submitted <= done) {
      ready.push_back(std::move(w.ctrl_ops.front().fn));
      w.ctrl_ops.pop_front();
    }
    if (w.ctrl_ops.empty()) {
      w.ctrl_pending.store(false, std::memory_order_release);
    } else {
      have_barrier = true;
      next_barrier = w.ctrl_ops.front().after_submitted;
    }
  }
  for (auto& fn : ready) fn();
  if (!have_barrier) return burst_max;
  // next_barrier > done (a reached barrier was popped above), so the clamp
  // is never zero: progress toward the barrier is always possible.
  return static_cast<size_t>(
      std::min<uint64_t>(burst_max, next_barrier - done));
}

void EnginePool::ProcessBatch(Worker& w, rpc::Message* msgs, size_t n,
                              int64_t now_ns, ir::ProcessResult* results) {
  // Observability is NOT a fallback condition: a burst-vectorizable
  // whole-chain executor runs the SoA burst path with telemetry on — the
  // executor batches histograms/spans internally (burst-granular, written
  // to this worker's event ring) and the pool counters batch to one Inc(n)
  // here. Only a chain the analysis could not vectorize takes the
  // per-message path when obs is on, keeping its per-RPC trace scopes.
  if (w.chain_exec != nullptr &&
      (!obs::Enabled() || w.chain_exec->burst_vectorizable())) {
    const bool timing = obs::Enabled();
    w.chain_exec->ProcessBurst(msgs, n, now_ns, results);
    if (timing) {
      w.rpcs_counter->Inc(n);
      uint64_t drops = 0;
      for (size_t i = 0; i < n; ++i) {
        if (results[i].outcome != ir::ProcessOutcome::kPass &&
            results[i].outcome != ir::ProcessOutcome::kReply) {
          ++drops;
        }
      }
      if (drops > 0) w.drops_counter->Inc(drops);
    }
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    results[i] = ProcessMessage(w, msgs[i], now_ns);
  }
}

ir::ProcessResult EnginePool::ProcessMessage(Worker& w, rpc::Message& m,
                                             int64_t now_ns) {
  const bool timing = obs::Enabled();
  std::optional<obs::RpcTraceScope> scope;
  if (timing) {
    w.rpcs_counter->Inc();
    scope.emplace(m.id(), obs::Tier::kEngine, w.trace_processor_id,
                  PoolRpcNameId());
  }
  ir::ProcessResult result = ir::ProcessResult::Pass();
  if (w.chain_exec != nullptr) {
    result = w.chain_exec->Process(m, now_ns);
  } else {
    for (const Segment& seg : segments_) {
      if (seg.fused && w.group_runner != nullptr) {
        result = RunFusedSegment(w, seg, m, now_ns);
      } else {
        for (size_t e = seg.begin; e < seg.end; ++e) {
          result = RunElement(w, e, m, now_ns);
          if (result.outcome != ir::ProcessOutcome::kPass) break;
        }
      }
      if (result.outcome != ir::ProcessOutcome::kPass) break;
    }
  }
  if (timing && result.outcome != ir::ProcessOutcome::kPass &&
      result.outcome != ir::ProcessOutcome::kReply) {
    w.drops_counter->Inc();
  }
  return result;
}

ir::ProcessResult EnginePool::RunElement(Worker& w, size_t element,
                                         rpc::Message& m, int64_t now_ns) {
  ir::ElementInstance& inst = *w.instances[element];
  if (!inst.AppliesTo(m.kind())) return ir::ProcessResult::Pass();
  if (w.element_exec[element] != nullptr) {
    return w.element_exec[element]->Process(m, now_ns);
  }
  return inst.Process(m, now_ns);
}

ir::ProcessResult EnginePool::RunFusedSegment(Worker& w, const Segment& seg,
                                              rpc::Message& m,
                                              int64_t now_ns) {
  // Collect applicable members; a group that degenerates to one member runs
  // inline with no fork-join cost.
  std::vector<size_t> members;
  members.reserve(seg.end - seg.begin);
  for (size_t e = seg.begin; e < seg.end; ++e) {
    if (w.instances[e]->AppliesTo(m.kind())) members.push_back(e);
  }
  if (members.empty()) return ir::ProcessResult::Pass();
  if (members.size() == 1) return RunElement(w, members[0], m, now_ns);

  // Pre-create every field the segment writes: after this, member stores
  // overwrite existing slots in place and the field vector never moves while
  // the helpers run. The effect analysis already guarantees the members'
  // read/write field sets are pairwise disjoint.
  for (const rpc::FieldId field : seg.precreate_fields) {
    if (!m.HasField(field)) m.SetField(field, rpc::Value());
  }

  std::vector<ir::ProcessResult> results(members.size());
  std::vector<std::function<void()>> tasks;
  tasks.reserve(members.size());
  for (size_t k = 0; k < members.size(); ++k) {
    tasks.push_back([this, &w, &m, &results, &members, k, now_ns] {
      results[k] = w.element_exec[members[k]]->Process(m, now_ns);
    });
  }
  w.group_runner->Run(tasks);
  // All members saw the same input snapshot; the first non-pass in chain
  // order decides the message's fate (CheckParallelizable admits at most
  // one dropper per group).
  for (const ir::ProcessResult& r : results) {
    if (r.outcome != ir::ProcessOutcome::kPass) return r;
  }
  return ir::ProcessResult::Pass();
}

uint64_t EnginePool::processed() const {
  uint64_t total = 0;
  for (const auto& worker : workers_) {
    total += worker->done.load(std::memory_order_acquire);
  }
  return total;
}

uint64_t EnginePool::dropped() const {
  uint64_t total = 0;
  for (const auto& worker : workers_) {
    total += worker->dropped.load(std::memory_order_acquire);
  }
  return total;
}

uint64_t EnginePool::processed_by(int worker) const {
  return workers_[static_cast<size_t>(worker)]->done.load(
      std::memory_order_acquire);
}

int64_t EnginePool::worker_cpu_ns(int worker) const {
  return workers_[static_cast<size_t>(worker)]->cpu_ns.load(
      std::memory_order_acquire);
}

int64_t EnginePool::worker_exec_ns(int worker) const {
  return workers_[static_cast<size_t>(worker)]->exec_ns.load(
      std::memory_order_acquire);
}

ir::ElementInstance& EnginePool::WorkerInstance(int worker, size_t element) {
  return *workers_[static_cast<size_t>(worker)]->instances[element];
}

Result<std::unique_ptr<ir::ElementInstance>> EnginePool::MergedInstance(
    size_t element) const {
  auto merged = std::make_unique<ir::ElementInstance>(elements_[element],
                                                      config_.seed);
  for (const auto& worker : workers_) {
    const Bytes snapshot = worker->instances[element]->SnapshotState();
    ADN_RETURN_IF_ERROR(merged->MergeState(snapshot));
  }
  return merged;
}

uint64_t EnginePool::MergedStateHash(size_t element) const {
  uint64_t h = 0;
  for (const auto& worker : workers_) {
    h ^= worker->instances[element]->StateContentHash();
  }
  return h;
}

// --- Live reconfiguration (docs/RECONFIG.md) ----------------------------------

Status EnginePool::BeginSlotMigration(int slot, int to_worker) {
  if (!started_ || stopped_) {
    return Status(ErrorCode::kFailedPrecondition,
                  "BeginSlotMigration: pool is not running");
  }
  if (slot < 0 || static_cast<size_t>(slot) >= kRouteSlots) {
    return Status(ErrorCode::kInvalidArgument,
                  "BeginSlotMigration: slot out of range");
  }
  if (to_worker < 0 || to_worker >= config_.workers) {
    return Status(ErrorCode::kInvalidArgument,
                  "BeginSlotMigration: destination worker out of range");
  }
  if (mig_ != nullptr && mig_->phase != MigrationPhase::kIdle &&
      mig_->phase != MigrationPhase::kDone) {
    return Status(ErrorCode::kFailedPrecondition,
                  "BeginSlotMigration: a migration is already in flight");
  }
  const int from = WorkerOfSlot(slot);
  if (from == to_worker) {
    return Status(ErrorCode::kInvalidArgument,
                  "BeginSlotMigration: slot already lives on that worker");
  }
  auto mig = std::make_unique<LiveMigration>();
  mig->phase = MigrationPhase::kSnapshot;
  mig->slot = slot;
  mig->from = from;
  mig->to = to_worker;
  mig->stats.slot = slot;
  mig->stats.from = from;
  mig->stats.to = to_worker;
  LiveMigration* m = mig.get();
  mig_ = std::move(mig);
  EmitReconfigEvent(obs::EventKind::kReconfig, obs::kEventReconfigSnapshot,
                    config_.processor, static_cast<uint64_t>(slot));
  // Source worker, between bursts: capture the slice snapshot (the bulk
  // copy) and a mutation baseline of the slot's keyed rows. The slot keeps
  // serving at the source while the destination absorbs the bulk.
  PostControl(from, [this, m] {
    Worker& src = *workers_[static_cast<size_t>(m->from)];
    m->baselines.reserve(src.instances.size());
    m->bulk.reserve(src.instances.size());
    for (auto& inst : src.instances) {
      m->baselines.push_back(ir::StateBaseline::Capture(
          *inst, m->slot, kRouteSlots));
      m->bulk.push_back(inst->SnapshotSlice(
          static_cast<size_t>(m->slot), kRouteSlots));
    }
    m->snapshot_ready.store(true, std::memory_order_release);
  });
  return Status::Ok();
}

EnginePool::MigrationPhase EnginePool::PumpMigration() {
  if (mig_ == nullptr) return MigrationPhase::kIdle;
  LiveMigration* m = mig_.get();
  switch (m->phase) {
    case MigrationPhase::kIdle:
    case MigrationPhase::kDone:
      break;
    case MigrationPhase::kSnapshot: {
      if (!m->snapshot_ready.load(std::memory_order_acquire)) break;
      for (const Bytes& b : m->bulk) m->stats.bulk_bytes += b.size();
      // Destination absorbs the bulk slice while the source keeps serving —
      // the double-buffer window. Mutations racing this copy are caught by
      // the baseline diff at cutover.
      PostControl(m->to, [this, m] {
        Worker& dst = *workers_[static_cast<size_t>(m->to)];
        for (size_t e = 0; e < dst.instances.size(); ++e) {
          // Same element layout on both sides: cannot fail.
          (void)dst.instances[e]->MergeState(m->bulk[e]);
        }
        m->bulk_merged.store(true, std::memory_order_release);
      });
      m->phase = MigrationPhase::kBulkMerge;
      EmitReconfigEvent(obs::EventKind::kReconfig, obs::kEventReconfigBulkMerge,
                        config_.processor, m->stats.bulk_bytes);
      break;
    }
    case MigrationPhase::kBulkMerge: {
      if (!m->bulk_merged.load(std::memory_order_acquire)) break;
      // Cutover: hold the slot's traffic producer-side (everything else
      // flows) and ask the source — after it drains everything submitted
      // before this instant — for the mutation delta, then drop its slice.
      m->holding = true;
      m->hold_start = std::chrono::steady_clock::now();
      PostControl(m->from, [this, m] {
        Worker& src = *workers_[static_cast<size_t>(m->from)];
        m->deltas.reserve(src.instances.size());
        for (size_t e = 0; e < src.instances.size(); ++e) {
          auto delta = m->baselines[e].Diff(*src.instances[e]);
          // Diff only fails on layout drift, impossible mid-run.
          m->deltas.push_back(std::move(delta).value());
        }
        m->delta_ready.store(true, std::memory_order_release);
      });
      // Slice cleanup is a separate op so the hold window ends at
      // delta_ready, not after the erase: the source's slot state is final
      // once the diff ran (its barrier covers every pre-hold message, and
      // held traffic never reaches the source), so the erase can overlap
      // the flip. FIFO ctrl order keeps it behind the diff.
      PostControl(m->from, [this, m] {
        Worker& src = *workers_[static_cast<size_t>(m->from)];
        for (auto& inst : src.instances) {
          inst->EraseSlice(static_cast<size_t>(m->slot), kRouteSlots);
        }
        m->erase_done.store(true, std::memory_order_release);
      });
      m->phase = MigrationPhase::kCutover;
      EmitReconfigEvent(obs::EventKind::kReconfig, obs::kEventReconfigCutover,
                        config_.processor, static_cast<uint64_t>(m->slot));
      break;
    }
    case MigrationPhase::kCutover: {
      if (!m->delta_ready.load(std::memory_order_acquire)) break;
      for (const ir::StateDelta& d : m->deltas) {
        m->stats.delta_upserts += d.upserts;
        m->stats.delta_deletes += d.deletes;
      }
      // Replay the delta at the destination, ahead of the flipped traffic:
      // the ctrl op's barrier is the destination's submitted count NOW, so
      // it runs before any message flushed or routed after this point.
      PostControl(m->to, [this, m] {
        Worker& dst = *workers_[static_cast<size_t>(m->to)];
        for (size_t e = 0; e < dst.instances.size(); ++e) {
          (void)m->deltas[e].ApplyTo(*dst.instances[e]);
        }
        m->delta_applied.store(true, std::memory_order_release);
      });
      // Atomic flip + flush: the slot now routes to the destination and the
      // held messages re-enter in their original order, behind the replay.
      route_[static_cast<size_t>(m->slot)] = static_cast<int32_t>(m->to);
      m->holding = false;
      m->stats.held_messages = static_cast<uint64_t>(m->held.size());
      std::vector<rpc::Message> held = std::move(m->held);
      m->held.clear();
      for (rpc::Message& msg : held) Submit(std::move(msg));
      m->stats.blackout_ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - m->hold_start)
              .count();
      m->phase = MigrationPhase::kReplay;
      EmitReconfigEvent(obs::EventKind::kReconfig, obs::kEventReconfigReplay,
                        config_.processor,
                        static_cast<uint64_t>(m->stats.blackout_ns));
      break;
    }
    case MigrationPhase::kReplay: {
      if (!m->delta_applied.load(std::memory_order_acquire) ||
          !m->erase_done.load(std::memory_order_acquire)) {
        break;
      }
      if (obs::Enabled()) {
        obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
        const std::string label = "processor=\"" + config_.processor + "\"";
        reg.GetHistogram("adn_reconfig_blackout_ns", label)
            .Observe(static_cast<double>(m->stats.blackout_ns));
        reg.GetCounter("adn_reconfig_delta_replayed", label)
            .Inc(m->stats.delta_upserts + m->stats.delta_deletes);
      }
      m->phase = MigrationPhase::kDone;
      break;
    }
  }
  return m->phase;
}

bool EnginePool::MigrationActive() const {
  return mig_ != nullptr && mig_->phase != MigrationPhase::kIdle &&
         mig_->phase != MigrationPhase::kDone;
}

const EnginePool::LiveMigrationStats& EnginePool::migration_stats() const {
  static const LiveMigrationStats kNone;
  return mig_ != nullptr ? mig_->stats : kNone;
}

Status EnginePool::SwapProgram(
    std::vector<std::shared_ptr<const ir::ElementIr>> new_elements) {
  if (!started_ || stopped_) {
    return Status(ErrorCode::kFailedPrecondition,
                  "SwapProgram: pool is not running");
  }
  if (whole_chain_program_ == nullptr) {
    return Status(ErrorCode::kFailedPrecondition,
                  "SwapProgram: hot reload requires the whole-chain compiled "
                  "tier (sequential mode, SQL-only elements)");
  }
  if (swap_pending_.load(std::memory_order_acquire) != 0) {
    return Status(ErrorCode::kFailedPrecondition,
                  "SwapProgram: a swap is already in flight");
  }
  if (new_elements.size() != elements_.size()) {
    return Status(ErrorCode::kFailedPrecondition,
                  "SwapProgram: new chain has a different element count; "
                  "drain and redeploy instead");
  }
  // State compatibility first (same tables, same schemas per element), then
  // compile — an incompatible or non-compiling chain leaves the running
  // program untouched.
  for (size_t e = 0; e < new_elements.size(); ++e) {
    ADN_RETURN_IF_ERROR(
        ir::CheckStateCompatible(*elements_[e], *new_elements[e]));
  }
  auto chain = compiler::CompileChainProgram(new_elements, {});
  if (!chain.ok()) {
    return Status(chain.error().code(),
                  "SwapProgram: new chain does not compile: " +
                      chain.error().message());
  }
  std::shared_ptr<const ir::ChainProgram> program = std::move(chain).value();
  swap_pending_.store(config_.workers, std::memory_order_release);
  for (int w = 0; w < config_.workers; ++w) {
    // Each worker swaps between bursts, after draining what was already in
    // its ring: code pointer replaced in place (live tables kept), executor
    // rebuilt over the new program.
    PostControl(w, [this, w, program, new_elements] {
      Worker& wk = *workers_[static_cast<size_t>(w)];
      for (size_t e = 0; e < new_elements.size(); ++e) {
        (void)wk.instances[e]->ReplaceCode(new_elements[e]);  // pre-validated
      }
      std::vector<ir::ElementInstance*> raw;
      raw.reserve(wk.instances.size());
      for (auto& inst : wk.instances) raw.push_back(inst.get());
      wk.chain_exec =
          std::make_unique<ir::ChainExecutor>(program, std::move(raw));
      wk.chain_exec->set_trace_identity(obs::Tier::kEngine,
                                        wk.trace_processor_id);
      swap_pending_.fetch_sub(1, std::memory_order_release);
    });
  }
  // Producer-side bookkeeping so MergedInstance/TemplateInstance and any
  // later Start-style rebuild see the new chain.
  for (size_t e = 0; e < new_elements.size(); ++e) {
    (void)template_instances_[e]->ReplaceCode(new_elements[e]);
  }
  elements_ = new_elements;
  whole_chain_program_ = program;
  program_version_.store(program->version, std::memory_order_release);
  EmitReconfigEvent(obs::EventKind::kSwap, obs::kEventReconfigSwapProgram,
                    config_.processor, program->version);
  return Status::Ok();
}

bool EnginePool::SwapComplete() const {
  return swap_pending_.load(std::memory_order_acquire) == 0;
}

uint64_t EnginePool::program_version() const {
  return program_version_.load(std::memory_order_acquire);
}

}  // namespace adn::mrpc
