// EnginePool: the multi-worker mRPC engine runtime (mRPC, NSDI '23 is a
// multi-core shared-memory runtime; this is that shape for the ADN engine
// tier).
//
// An EnginePool owns N worker threads. Each worker runs the chain's compiled
// ChainProgram against its OWN ElementInstances, whose tables are the
// per-worker shards produced by Table::SplitByKeyHash (via
// ElementInstance::SplitState) at Start(). A single producer thread routes
// every RPC to a worker by hash of its shard-key field — the same
// HashSingleKey the table sharder uses, so the worker that receives a
// message is exactly the worker whose shard holds that key's rows — and
// hands it over on a true SPSC ring (ring.h). RPCs without the shard-key
// field fall back to a hash of the RPC/connection id.
//
// State stays per-worker and unsynchronized (shared-nothing); anything
// cross-worker is merge-on-read: processed()/dropped() sum worker counters,
// MergedInstance() materializes the union of the worker shards into a fresh
// instance, and MergedStateHash() XORs the shard hashes (ElementInstance::
// StateContentHash is XOR-decomposable, so the merged hash equals the
// unsharded hash exactly when the shards partition the rows — the PR 4
// migration invariant, now continuously checkable on a live pool).
//
// Parallel groups (paper §5.2): the compiler's effect analysis marks runs of
// elements that may execute concurrently on one message. GroupMode picks how
// a worker honors that:
//  - kSequential (default): group members run back-to-back on the worker.
//    Pool parallelism comes from sharding across workers — zero per-message
//    synchronization.
//  - kConcurrent: members of a size>1 group run as one fused concurrent
//    segment on per-worker helper threads (fork-join per message). Only
//    groups whose members are provably safe on a shared Message are fused
//    (no projection/routing, written fields pre-created so the field vector
//    never reallocates mid-flight); unsafe groups fall back to sequential.
// bench_scaling --threads measures both; see EXPERIMENTS.md for why
// sequential-within-worker wins for ns-scale elements.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "ir/exec.h"
#include "ir/program.h"
#include "mrpc/ring.h"
#include "obs/metrics.h"
#include "rpc/intern.h"
#include "rpc/message.h"

namespace adn::mrpc {

// Fork-join runner for one fused concurrent segment: `helpers` persistent
// threads wait for a task batch; Run() executes tasks[0] on the calling
// worker thread and tasks[1..] on helpers, returning when all finish.
class GroupRunner {
 public:
  explicit GroupRunner(int helpers);
  ~GroupRunner();

  GroupRunner(const GroupRunner&) = delete;
  GroupRunner& operator=(const GroupRunner&) = delete;

  // Blocks until every task has run. Tasks beyond the helper count run on
  // the calling thread.
  void Run(const std::vector<std::function<void()>>& tasks);

 private:
  void HelperLoop(int index);

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  uint64_t epoch_ = 0;
  const std::vector<std::function<void()>>* tasks_ = nullptr;
  int remaining_ = 0;
  bool stop_ = false;
};

class EnginePool {
 public:
  enum class GroupMode { kSequential, kConcurrent };

  struct Config {
    int workers = 1;
    // Message field whose value routes the RPC (the shard key — normally
    // the primary key of the chain's hottest table). Empty or absent on a
    // message: route by hash of the RPC/connection id instead.
    std::string shard_key_field;
    size_t ring_capacity = 1024;
    GroupMode group_mode = GroupMode::kSequential;
    // Base seed for per-worker instance RNG/nonce streams.
    uint64_t seed = 1;
    // Observability identity: workers count into
    // adn_chain_rpcs_total/adn_chain_drops_total{processor="<processor>-w<i>"}
    // and open per-RPC trace scopes under that name.
    std::string processor = "engine-pool";
    // Worker clock exposed to now(); null = constant 0 (deterministic).
    std::function<int64_t()> clock;
    // Measure chain-execution time per message (steady_clock around the
    // executor, excluding ring transport and dequeue): worker_exec_ns().
    // Costs ~2 clock reads per message; off by default.
    bool measure_exec = false;
    // Messages drained and processed per burst (1 = per-message drain).
    // Each burst pays the ring's acquire/release pair once and, when the
    // chain is burst-vectorizable, one instruction-dispatch pass for the
    // whole burst (ChainExecutor::ProcessBurst). Clamped to
    // [1, ir::ChainExecutor::kMaxBurstLanes]. The default is the measured
    // knee on the fig5 chain — see bench_burst / BENCH_burst.json.
    size_t burst_size = 32;
    // Invoked on the WORKER thread after each message (any mode). Must be
    // thread-safe across workers; keep it cheap.
    std::function<void(int worker, const rpc::Message&,
                       const ir::ProcessResult&)>
        on_done;
  };

  // `parallel_groups[i]` is element i's compiler-assigned group id
  // (compiler::CompiledChain::parallel_groups); empty = every element its
  // own group. Elements must be SQL elements for the compiled tier; filter
  // elements make that element fall back to the interpreter.
  EnginePool(std::vector<std::shared_ptr<const ir::ElementIr>> elements,
             std::vector<int> parallel_groups, Config config);
  ~EnginePool();

  EnginePool(const EnginePool&) = delete;
  EnginePool& operator=(const EnginePool&) = delete;

  // --- Seeding (before Start) ------------------------------------------------
  // Controller-style state seeding happens on the template instances; Start
  // shards whatever the templates hold at that point.
  ir::ElementInstance* TemplateInstance(size_t element);
  ir::ElementInstance* FindTemplateInstance(std::string_view name);

  // Shard the template state across `workers` instance sets and spawn the
  // worker threads. Error to call twice.
  Status Start();
  bool started() const { return started_; }

  // --- Data plane (single producer) -----------------------------------------
  // Routes and enqueues; spins (with backoff) while the target worker's ring
  // is full. Call from ONE thread. Returns the worker index it routed to.
  int Submit(rpc::Message message);
  // Deterministic routing preview (usable before Start and from tests).
  int WorkerOfKey(const rpc::Value& key) const;
  int WorkerOfMessage(const rpc::Message& message) const;

  // Blocks until every submitted message has been fully processed.
  void Drain();
  // Drain, then join every worker (and helper) thread. Idempotent; the
  // destructor calls it.
  void Stop();

  // --- Merge-on-read ---------------------------------------------------------
  int workers() const { return config_.workers; }
  size_t element_count() const { return elements_.size(); }
  uint64_t processed() const;  // summed over workers
  uint64_t dropped() const;
  uint64_t processed_by(int worker) const;
  // CPU nanoseconds worker `w` has consumed (CLOCK_THREAD_CPUTIME_ID),
  // final after Stop(). Idle workers park on a condvar, so this approximates
  // busy time — the per-core cost the pool pays per message.
  int64_t worker_cpu_ns(int worker) const;
  // Nanoseconds worker `w` spent inside the chain executor, by thread-CPU
  // clock (only populated when Config::measure_exec; exact for all processed
  // messages once Drain() returns). The pool-side analogue of
  // bench_breakdown's compiled_ns_per_msg — excludes ring transport.
  int64_t worker_exec_ns(int worker) const;

  // Worker w's live instance of element e (tests; the worker thread owns it
  // while running — read after Drain/Stop).
  ir::ElementInstance& WorkerInstance(int worker, size_t element);

  // Union of the worker shards of element e, materialized into a fresh
  // instance (MergeState over every worker snapshot).
  Result<std::unique_ptr<ir::ElementInstance>> MergedInstance(
      size_t element) const;
  // XOR of the worker shards' StateContentHash — equals the hash of the
  // equivalent unsharded instance when the shards partition the rows.
  uint64_t MergedStateHash(size_t element) const;

  // True when worker threads execute the whole chain as one compiled
  // ChainProgram (SQL-only chain, sequential mode); false = per-element
  // dispatch (concurrent mode or interpreter fallback).
  bool whole_chain_compiled() const { return whole_chain_program_ != nullptr; }

 private:
  struct Segment {
    size_t begin = 0;  // element index range [begin, end)
    size_t end = 0;
    bool fused = false;  // safe to run concurrently in kConcurrent mode
    // Interned ids of fields kStoreField writes anywhere in the segment:
    // pre-created on the message before forking so no member's store
    // reallocates the field buffer.
    std::vector<rpc::FieldId> precreate_fields;
  };

  struct Worker {
    explicit Worker(size_t ring_capacity) : ring(ring_capacity) {}

    SpscRing<rpc::Message> ring;
    std::vector<std::unique_ptr<ir::ElementInstance>> instances;
    // Sequential fast path: one executor over the whole chain.
    std::unique_ptr<ir::ChainExecutor> chain_exec;
    // Per-element executors (concurrent mode / fallback); null entry =
    // interpreter for that element.
    std::vector<std::unique_ptr<ir::ChainExecutor>> element_exec;
    std::unique_ptr<GroupRunner> group_runner;
    std::thread thread;

    std::atomic<uint64_t> submitted{0};  // producer-side
    std::atomic<uint64_t> done{0};       // worker-side
    std::atomic<uint64_t> dropped{0};
    std::atomic<int64_t> cpu_ns{0};
    std::atomic<int64_t> exec_ns{0};
    std::atomic<bool> sleeping{false};
    std::mutex mu;
    std::condition_variable cv;

    obs::Counter* rpcs_counter = nullptr;
    obs::Counter* drops_counter = nullptr;
    std::string trace_processor;
  };

  void WorkerLoop(int index);
  // Process msgs[0..n) on worker w, filling results[0..n). Takes the burst
  // executor when the whole chain is compiled and observability is off;
  // otherwise the per-message path (which owns trace scopes / counters).
  void ProcessBatch(Worker& w, rpc::Message* msgs, size_t n, int64_t now_ns,
                    ir::ProcessResult* results);
  ir::ProcessResult ProcessMessage(Worker& w, rpc::Message& m, int64_t now_ns);
  ir::ProcessResult RunElement(Worker& w, size_t element, rpc::Message& m,
                               int64_t now_ns);
  ir::ProcessResult RunFusedSegment(Worker& w, const Segment& seg,
                                    rpc::Message& m, int64_t now_ns);
  void BuildSegments();

  std::vector<std::shared_ptr<const ir::ElementIr>> elements_;
  std::vector<int> parallel_groups_;
  Config config_;
  // Interned once at construction so the Submit hot path routes by integer
  // field-id compare instead of a name scan. 0-and-false when no shard key.
  rpc::FieldId shard_key_fid_ = 0;
  bool has_shard_key_ = false;

  // Unsharded reference state (seeded pre-Start, sharded at Start).
  std::vector<std::unique_ptr<ir::ElementInstance>> template_instances_;

  std::shared_ptr<const ir::ChainProgram> whole_chain_program_;
  // Per-element programs, shared by every worker's executors; null entry =
  // no compiled form (filter element) -> interpreter.
  std::vector<std::shared_ptr<const ir::ChainProgram>> element_programs_;
  std::vector<Segment> segments_;
  size_t max_fused_width_ = 1;

  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace adn::mrpc
