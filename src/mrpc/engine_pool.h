// EnginePool: the multi-worker mRPC engine runtime (mRPC, NSDI '23 is a
// multi-core shared-memory runtime; this is that shape for the ADN engine
// tier).
//
// An EnginePool owns N worker threads. Each worker runs the chain's compiled
// ChainProgram against its OWN ElementInstances, whose tables are the
// per-worker shards produced at Start(). A single producer thread routes
// every RPC through a fixed table of kRouteSlots key slots: the shard-key
// field hashes (HashSingleKey) into a slot, and the slot maps to a worker.
// Start() shards the tables with the SAME two-level function
// ((key hash % kRouteSlots) % workers, ElementInstance::SplitStateSlotted),
// so the worker that receives a message is exactly the worker whose shard
// holds that key's rows — and the slot indirection is what makes live
// migration possible: moving one slot's rows and flipping one route_ entry
// re-homes that key range without touching the rest (docs/RECONFIG.md).
// Messages are handed over on a true SPSC ring (ring.h); RPCs without the
// shard-key field fall back to a hash of the RPC/connection id.
//
// State stays per-worker and unsynchronized (shared-nothing); anything
// cross-worker is merge-on-read: processed()/dropped() sum worker counters,
// MergedInstance() materializes the union of the worker shards into a fresh
// instance, and MergedStateHash() XORs the shard hashes (ElementInstance::
// StateContentHash is XOR-decomposable, so the merged hash equals the
// unsharded hash exactly when the shards partition the rows — the PR 4
// migration invariant, now continuously checkable on a live pool).
//
// Parallel groups (paper §5.2): the compiler's effect analysis marks runs of
// elements that may execute concurrently on one message. GroupMode picks how
// a worker honors that:
//  - kSequential (default): group members run back-to-back on the worker.
//    Pool parallelism comes from sharding across workers — zero per-message
//    synchronization.
//  - kConcurrent: members of a size>1 group run as one fused concurrent
//    segment on per-worker helper threads (fork-join per message). Only
//    groups whose members are provably safe on a shared Message are fused
//    (no projection/routing, written fields pre-created so the field vector
//    never reallocates mid-flight); unsafe groups fall back to sequential.
// bench_scaling --threads measures both; see EXPERIMENTS.md for why
// sequential-within-worker wins for ns-scale elements.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "ir/exec.h"
#include "ir/program.h"
#include "ir/state_delta.h"
#include "mrpc/ring.h"
#include "obs/intern.h"
#include "obs/metrics.h"
#include "rpc/intern.h"
#include "rpc/message.h"

namespace adn::mrpc {

// Fork-join runner for one fused concurrent segment: `helpers` persistent
// threads wait for a task batch; Run() executes tasks[0] on the calling
// worker thread and tasks[1..] on helpers, returning when all finish.
class GroupRunner {
 public:
  explicit GroupRunner(int helpers);
  ~GroupRunner();

  GroupRunner(const GroupRunner&) = delete;
  GroupRunner& operator=(const GroupRunner&) = delete;

  // Blocks until every task has run. Tasks beyond the helper count run on
  // the calling thread.
  void Run(const std::vector<std::function<void()>>& tasks);

 private:
  void HelperLoop(int index);

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  uint64_t epoch_ = 0;
  const std::vector<std::function<void()>>* tasks_ = nullptr;
  int remaining_ = 0;
  bool stop_ = false;
};

class EnginePool {
 public:
  enum class GroupMode { kSequential, kConcurrent };

  // Keys hash into this many fixed route slots; a slot maps to one worker
  // (route_). Live migration moves ownership of one slot at a time.
  static constexpr size_t kRouteSlots = 64;

  // Producer-driven live-migration state machine (docs/RECONFIG.md):
  //   kIdle -> kSnapshot (source captures slice + mutation baseline between
  //   bursts) -> kBulkMerge (destination absorbs the bulk copy while the
  //   source keeps serving the slot) -> kCutover (producer holds slot
  //   traffic; source diffs the baseline into a delta and drops the slice)
  //   -> kReplay (destination applies the delta; route flipped, held
  //   messages flushed behind it) -> kDone.
  enum class MigrationPhase : uint8_t {
    kIdle,
    kSnapshot,
    kBulkMerge,
    kCutover,
    kReplay,
    kDone,
  };

  struct LiveMigrationStats {
    int slot = -1;
    int from = -1;
    int to = -1;
    size_t bulk_bytes = 0;       // slice snapshot copied before the cutover
    uint64_t delta_upserts = 0;  // rows replayed at cutover
    uint64_t delta_deletes = 0;
    uint64_t held_messages = 0;  // producer-held during the cutover window
    int64_t blackout_ns = 0;     // cutover hold window (steady clock)
  };

  struct Config {
    int workers = 1;
    // Message field whose value routes the RPC (the shard key — normally
    // the primary key of the chain's hottest table). Empty or absent on a
    // message: route by hash of the RPC/connection id instead.
    std::string shard_key_field;
    size_t ring_capacity = 1024;
    GroupMode group_mode = GroupMode::kSequential;
    // Base seed for per-worker instance RNG/nonce streams.
    uint64_t seed = 1;
    // Observability identity: workers count into
    // adn_chain_rpcs_total/adn_chain_drops_total{processor="<processor>-w<i>"}
    // and open per-RPC trace scopes under that name.
    std::string processor = "engine-pool";
    // Worker clock exposed to now(); null = constant 0 (deterministic).
    std::function<int64_t()> clock;
    // Measure chain-execution time per message (steady_clock around the
    // executor, excluding ring transport and dequeue): worker_exec_ns().
    // Costs ~2 clock reads per message; off by default.
    bool measure_exec = false;
    // Messages drained and processed per burst (1 = per-message drain).
    // Each burst pays the ring's acquire/release pair once and, when the
    // chain is burst-vectorizable, one instruction-dispatch pass for the
    // whole burst (ChainExecutor::ProcessBurst). Clamped to
    // [1, ir::ChainExecutor::kMaxBurstLanes]. The default is the measured
    // knee on the fig5 chain — see bench_burst / BENCH_burst.json.
    size_t burst_size = 32;
    // Invoked on the WORKER thread after each message (any mode). Must be
    // thread-safe across workers; keep it cheap.
    std::function<void(int worker, const rpc::Message&,
                       const ir::ProcessResult&)>
        on_done;
  };

  // `parallel_groups[i]` is element i's compiler-assigned group id
  // (compiler::CompiledChain::parallel_groups); empty = every element its
  // own group. Elements must be SQL elements for the compiled tier; filter
  // elements make that element fall back to the interpreter.
  EnginePool(std::vector<std::shared_ptr<const ir::ElementIr>> elements,
             std::vector<int> parallel_groups, Config config);
  ~EnginePool();

  EnginePool(const EnginePool&) = delete;
  EnginePool& operator=(const EnginePool&) = delete;

  // --- Seeding (before Start) ------------------------------------------------
  // Controller-style state seeding happens on the template instances; Start
  // shards whatever the templates hold at that point.
  ir::ElementInstance* TemplateInstance(size_t element);
  ir::ElementInstance* FindTemplateInstance(std::string_view name);

  // Shard the template state across `workers` instance sets and spawn the
  // worker threads. Error to call twice.
  Status Start();
  bool started() const { return started_; }

  // --- Data plane (single producer) -----------------------------------------
  // Routes and enqueues; spins (with backoff) while the target worker's ring
  // is full. Call from ONE thread. Returns the worker index it routed to.
  int Submit(rpc::Message message);
  // Deterministic routing preview (usable before Start and from tests).
  int WorkerOfKey(const rpc::Value& key) const;
  int WorkerOfMessage(const rpc::Message& message) const;
  static int SlotOfKey(const rpc::Value& key);
  int SlotOfMessage(const rpc::Message& message) const;
  int WorkerOfSlot(int slot) const;

  // --- Live reconfiguration (producer thread; docs/RECONFIG.md) --------------
  // Start moving key slot `slot` from its current owner to `to_worker`.
  // Non-blocking: ingestion continues (including into the moving slot) while
  // the bulk copy proceeds; only the cutover holds slot traffic, for the
  // delta-sized blackout window. Drive with PumpMigration() until kDone.
  // One migration in flight at a time.
  Status BeginSlotMigration(int slot, int to_worker);
  // Advance the migration state machine (cheap; call from the submit loop).
  MigrationPhase PumpMigration();
  bool MigrationActive() const;
  // Stats of the last migration that reached kDone (producer thread).
  const LiveMigrationStats& migration_stats() const;

  // DSL hot-reload: recompile-and-swap the running chain without stopping
  // the workers. Requires the whole-chain compiled tier and state-compatible
  // elements (same table names/schemas per element — ir::CheckStateCompatible;
  // incompatible or non-compiling chains are rejected and the running
  // program is untouched). Each worker swaps at a burst boundary, keeping
  // its live tables; poll SwapComplete() for async completion.
  Status SwapProgram(
      std::vector<std::shared_ptr<const ir::ElementIr>> new_elements);
  bool SwapComplete() const;
  // Version of the chain program workers are (or will be, once SwapComplete)
  // running: ChainProgram::version, bumped by every compile.
  uint64_t program_version() const;

  // Blocks until every submitted message has been fully processed.
  void Drain();
  // Drain, then join every worker (and helper) thread. Idempotent; the
  // destructor calls it.
  void Stop();

  // --- Merge-on-read ---------------------------------------------------------
  int workers() const { return config_.workers; }
  size_t element_count() const { return elements_.size(); }
  uint64_t processed() const;  // summed over workers
  uint64_t dropped() const;
  uint64_t processed_by(int worker) const;
  // CPU nanoseconds worker `w` has consumed (CLOCK_THREAD_CPUTIME_ID),
  // final after Stop(). Idle workers park on a condvar, so this approximates
  // busy time — the per-core cost the pool pays per message.
  int64_t worker_cpu_ns(int worker) const;
  // Nanoseconds worker `w` spent inside the chain executor, by thread-CPU
  // clock (only populated when Config::measure_exec; exact for all processed
  // messages once Drain() returns). The pool-side analogue of
  // bench_breakdown's compiled_ns_per_msg — excludes ring transport.
  int64_t worker_exec_ns(int worker) const;

  // Worker w's live instance of element e (tests; the worker thread owns it
  // while running — read after Drain/Stop).
  ir::ElementInstance& WorkerInstance(int worker, size_t element);

  // Union of the worker shards of element e, materialized into a fresh
  // instance (MergeState over every worker snapshot).
  Result<std::unique_ptr<ir::ElementInstance>> MergedInstance(
      size_t element) const;
  // XOR of the worker shards' StateContentHash — equals the hash of the
  // equivalent unsharded instance when the shards partition the rows.
  uint64_t MergedStateHash(size_t element) const;

  // True when worker threads execute the whole chain as one compiled
  // ChainProgram (SQL-only chain, sequential mode); false = per-element
  // dispatch (concurrent mode or interpreter fallback).
  bool whole_chain_compiled() const { return whole_chain_program_ != nullptr; }

 private:
  struct Segment {
    size_t begin = 0;  // element index range [begin, end)
    size_t end = 0;
    bool fused = false;  // safe to run concurrently in kConcurrent mode
    // Interned ids of fields kStoreField writes anywhere in the segment:
    // pre-created on the message before forking so no member's store
    // reallocates the field buffer.
    std::vector<rpc::FieldId> precreate_fields;
  };

  // A reconfiguration step to run on the worker thread, between bursts,
  // only after the worker has finished every message that was submitted
  // before the op was posted (after_submitted). The ring's FIFO plus this
  // barrier is the whole ordering story: a control op can never observe a
  // half-processed burst, and messages submitted after the post can never
  // overtake it.
  struct ControlOp {
    uint64_t after_submitted = 0;
    std::function<void()> fn;
  };

  struct Worker {
    explicit Worker(size_t ring_capacity) : ring(ring_capacity) {}

    SpscRing<rpc::Message> ring;
    std::vector<std::unique_ptr<ir::ElementInstance>> instances;
    // Sequential fast path: one executor over the whole chain.
    std::unique_ptr<ir::ChainExecutor> chain_exec;
    // Per-element executors (concurrent mode / fallback); null entry =
    // interpreter for that element.
    std::vector<std::unique_ptr<ir::ChainExecutor>> element_exec;
    std::unique_ptr<GroupRunner> group_runner;
    std::thread thread;

    std::atomic<uint64_t> submitted{0};  // producer-side
    std::atomic<uint64_t> done{0};       // worker-side
    std::atomic<uint64_t> dropped{0};
    std::atomic<int64_t> cpu_ns{0};
    std::atomic<int64_t> exec_ns{0};
    std::atomic<bool> sleeping{false};
    std::mutex mu;
    std::condition_variable cv;

    // Control mailbox (reconfiguration only; never on the message path).
    // ctrl_pending is the hot-path gate: one relaxed load per burst when no
    // reconfiguration is in flight.
    std::mutex ctrl_mu;
    std::deque<ControlOp> ctrl_ops;
    std::atomic<bool> ctrl_pending{false};

    obs::Counter* rpcs_counter = nullptr;
    obs::Counter* drops_counter = nullptr;
    std::string trace_processor;
    obs::NameId trace_processor_id = 0;  // interned once in Start
  };

  // In-flight live migration. Producer-owned; the flags publish the vectors
  // across the producer/source/destination handoffs (release/acquire, then
  // the ctrl mailbox mutex carries them to the next worker).
  struct LiveMigration {
    MigrationPhase phase = MigrationPhase::kIdle;
    int slot = -1;
    int from = -1;
    int to = -1;
    std::vector<ir::StateBaseline> baselines;  // source-worker-owned
    std::vector<Bytes> bulk;                   // slice snapshots, per element
    std::vector<ir::StateDelta> deltas;        // cutover deltas, per element
    std::atomic<bool> snapshot_ready{false};
    std::atomic<bool> bulk_merged{false};
    std::atomic<bool> delta_ready{false};
    std::atomic<bool> delta_applied{false};
    // Source-side slice cleanup runs in its own ctrl op AFTER delta_ready:
    // the erase is O(slot) index work but still has no business inside the
    // hold window. kDone waits for it so MergedStateHash never double-counts.
    std::atomic<bool> erase_done{false};
    bool holding = false;                 // producer: slot traffic held?
    std::vector<rpc::Message> held;       // producer-held slot messages
    std::chrono::steady_clock::time_point hold_start;
    LiveMigrationStats stats;
  };

  void WorkerLoop(int index);
  // Post `fn` to run on worker `worker`'s thread once it has drained every
  // message submitted before this call. Wakes the worker if parked.
  void PostControl(int worker, std::function<void()> fn);
  // Run the control ops whose barrier has been reached; returns how many
  // messages the next burst may pop without crossing the next op's barrier.
  size_t RunPendingControl(Worker& w, size_t burst_max);
  // Process msgs[0..n) on worker w, filling results[0..n). Takes the burst
  // executor when the whole chain is compiled and observability is off;
  // otherwise the per-message path (which owns trace scopes / counters).
  void ProcessBatch(Worker& w, rpc::Message* msgs, size_t n, int64_t now_ns,
                    ir::ProcessResult* results);
  ir::ProcessResult ProcessMessage(Worker& w, rpc::Message& m, int64_t now_ns);
  ir::ProcessResult RunElement(Worker& w, size_t element, rpc::Message& m,
                               int64_t now_ns);
  ir::ProcessResult RunFusedSegment(Worker& w, const Segment& seg,
                                    rpc::Message& m, int64_t now_ns);
  void BuildSegments();

  std::vector<std::shared_ptr<const ir::ElementIr>> elements_;
  std::vector<int> parallel_groups_;
  Config config_;
  // Interned once at construction so the Submit hot path routes by integer
  // field-id compare instead of a name scan. 0-and-false when no shard key.
  rpc::FieldId shard_key_fid_ = 0;
  bool has_shard_key_ = false;

  // Unsharded reference state (seeded pre-Start, sharded at Start).
  std::vector<std::unique_ptr<ir::ElementInstance>> template_instances_;

  std::shared_ptr<const ir::ChainProgram> whole_chain_program_;
  // Per-element programs, shared by every worker's executors; null entry =
  // no compiled form (filter element) -> interpreter.
  std::vector<std::shared_ptr<const ir::ChainProgram>> element_programs_;
  std::vector<Segment> segments_;
  size_t max_fused_width_ = 1;

  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  bool stopped_ = false;

  // Slot -> worker routing table. Producer-thread-owned after Start (read by
  // Submit, written only at route flip in PumpMigration).
  std::array<int32_t, kRouteSlots> route_{};
  // Current (or last) live migration; kept alive until the next Begin so
  // worker-side ctrl lambdas holding the raw pointer stay valid.
  std::unique_ptr<LiveMigration> mig_;
  // Workers that have not yet switched to the swapped program; 0 = complete.
  std::atomic<int> swap_pending_{0};
  std::atomic<uint64_t> program_version_{0};
};

}  // namespace adn::mrpc
