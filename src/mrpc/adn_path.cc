#include "mrpc/adn_path.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <deque>

#include "sim/simulator.h"
#include "sim/station.h"

namespace adn::mrpc {

namespace {

using sim::CpuStation;
using sim::Link;
using sim::SimTime;
using sim::Simulator;

struct SiteRuntime {
  Site site;
  std::unique_ptr<CpuStation> station;
  EngineChain chain;  // may be empty
  double cost_scale = 1.0;
  bool fixed_pipeline = false;  // switch: fixed latency per message
  bool on_host = true;          // counts toward host CPU
  bool active = true;           // site participates in the path
  // --- Live-loop state ------------------------------------------------------
  // While paused (mid-reconfiguration) arriving messages are parked here in
  // arrival order and replayed at resume — paused, never lost. Work already
  // inside the station keeps draining during the pause.
  bool paused = false;
  std::deque<std::function<void()>> pending;
  uint64_t queued_total = 0;
  SimTime last_busy = 0;  // busy_time() at the previous report tick
};

struct Experiment {
  explicit Experiment(const AdnPathConfig& config)
      : cfg(config),
        rng(config.seed),
        codec(config.header, &methods),
        wire(&sim, "wire", config.model.wire_propagation_ns,
             config.model.wire_bandwidth_gbps) {
    BuildSites();
  }

  const AdnPathConfig& cfg;
  Simulator sim;
  Rng rng;
  rpc::MethodRegistry methods;
  rpc::AdnWireCodec codec;
  Link wire;
  std::array<SiteRuntime, 8> sites;

  uint64_t next_id = 0;
  uint64_t completed = 0;
  uint64_t dropped = 0;
  uint64_t measured_done = 0;
  int in_flight = 0;
  sim::LatencyRecorder latencies;
  std::vector<std::pair<std::string, double>> stage_cpu;
  double host_cpu_total = 0;
  uint64_t wire_requests = 0;
  SimTime measure_start_time = 0;
  SimTime measure_end_time = 0;
  bool warmed_up = false;

  // --- Live-loop state ------------------------------------------------------
  bool open_loop = false;  // offered_rps drives arrivals instead of MaybeIssue
  uint64_t arrivals = 0;   // open-loop arrivals (admitted + rejected)
  uint64_t rejected = 0;   // open-loop arrivals bounced off the admission cap
  uint64_t queued_total = 0;  // messages parked across all pauses
  SimTime last_report_time = 0;
  uint64_t last_arrivals = 0;
  uint64_t last_completed = 0;
  uint64_t last_dropped = 0;
  uint64_t last_rejected = 0;
  std::vector<PathReport> reports;
  std::vector<ReconfigEvent> reconfigs;
  obs::Histogram* latency_hist = nullptr;

  void BuildSites() {
    auto make = [&](size_t idx, Site site, const char* name, int width,
                    double scale, bool pipeline, bool host, bool active) {
      sites[idx].site = site;
      sites[idx].station = std::make_unique<CpuStation>(&sim, name, width);
      sites[idx].cost_scale = scale;
      sites[idx].fixed_pipeline = pipeline;
      sites[idx].on_host = host;
      sites[idx].active = active;
    };
    const sim::CostModel& m = cfg.model;
    make(0, Site::kClientApp, "client-app", 1, 1.0, false, true, true);
    make(1, Site::kClientEngine, "client-engine", cfg.client_engine_width,
         1.0, false, true, cfg.client_engine_present);
    make(2, Site::kClientKernel, "client-kernel", 2, m.ebpf_op_scale, false,
         true, true);
    make(3, Site::kSwitch, "switch", 64, 1.0, true, false, false);
    make(4, Site::kServerNic, "server-nic", m.smartnic_cores,
         m.smartnic_op_scale, false, false, false);
    make(5, Site::kServerKernel, "server-kernel", 2, m.ebpf_op_scale, false,
         true, true);
    make(6, Site::kServerEngine, "server-engine", cfg.server_engine_width,
         1.0, false, true, cfg.server_engine_present);
    make(7, Site::kServerApp, "server-app", 2, 1.0, false, true, true);

    // Install stages; a site with stages becomes active.
    for (const PlacedStage& placed : cfg.stages) {
      for (auto& site : sites) {
        if (site.site == placed.site) {
          site.chain.AddStage(placed.factory(), placed.parallel_group);
          site.active = true;
          break;
        }
      }
    }
    // Spans/metrics from a site's chain carry the simulated tier and the
    // site name, so one RPC crossing several sites still assembles into one
    // trace (shared trace_id = message id).
    for (auto& site : sites) {
      site.chain.set_trace_identity(obs::Tier::kSim, SiteName(site.site));
    }
  }

  SiteRuntime& SiteAt(size_t idx) { return sites[idx]; }

  void ChargeStage(const std::string& stage, double cost, bool on_host) {
    if (!warmed_up) return;
    for (auto& [name, total] : stage_cpu) {
      if (name == stage) {
        total += cost;
        if (on_host) host_cpu_total += cost;
        return;
      }
    }
    stage_cpu.emplace_back(stage, cost);
    if (on_host) host_cpu_total += cost;
  }

  bool AllIssued() const {
    return next_id >= cfg.warmup_requests + cfg.measured_requests;
  }

  void MaybeIssue() {
    if (open_loop) return;  // arrivals are paced by offered_rps, not slots
    while (!AllIssued() && in_flight < cfg.concurrency) IssueOne();
  }

  // Park `resume` on site `idx`'s pause queue if it is mid-reconfiguration.
  // Returns true when the message was parked (caller must not proceed).
  bool MaybeQueue(size_t idx, std::function<void()> resume) {
    SiteRuntime& site = SiteAt(idx);
    if (!site.paused) return false;
    site.pending.push_back(std::move(resume));
    ++site.queued_total;
    ++queued_total;
    if (obs::Enabled()) {
      obs::MetricsRegistry::Default()
          .GetCounter("adn_ctrl_queued_msgs_total",
                      "processor=\"" + std::string(SiteName(site.site)) + "\"")
          .Inc();
    }
    return true;
  }

  struct Rpc {
    uint64_t id;
    SimTime start;
    rpc::Message message;
    Bytes wire_bytes;  // encoded form while crossing the wire
  };

  // Run the site's chain on the message (mutating it now), returning the
  // simulated CPU actually consumed, honoring the site's platform cost
  // scale. Stages after a drop cost nothing — this is what makes drop-early
  // reordering measurable end to end.
  EngineChain::Outcome RunChain(SiteRuntime& site, rpc::Message& message) {
    EngineChain::Outcome out =
        site.chain.ProcessWithCost(message, sim.now(), cfg.model);
    if (site.fixed_pipeline) {
      // Switch pipelines have a fixed per-message latency regardless of the
      // match-action work performed.
      out.cost_ns = static_cast<double>(cfg.model.p4_pipeline_ns);
      out.critical_path_ns = out.cost_ns;
    } else {
      out.cost_ns *= site.cost_scale;
      out.critical_path_ns *= site.cost_scale;
    }
    // Parallel groups shorten the message's critical path; the CPU beyond
    // it still occupies the station (other cores), without delaying this
    // message.
    if (out.cost_ns > out.critical_path_ns + 1.0) {
      site.station->Submit(
          static_cast<SimTime>(out.cost_ns - out.critical_path_ns), nullptr);
    }
    return out;
  }

  void IssueOne() {
    uint64_t id = next_id++;
    ++in_flight;
    if (!warmed_up && id >= cfg.warmup_requests) {
      warmed_up = true;
      measure_start_time = sim.now();
      for (auto& site : sites) site.station->ResetStats();
    }
    auto rpc = std::make_shared<Rpc>();
    rpc->id = id;
    rpc->start = sim.now();
    rpc->message = cfg.make_request(id, rng);
    rpc->message.set_id(id);
    methods.Intern(rpc->message.method());

    // Client app: build the typed message, run any in-app stages (Figure 2
    // config 1), shm-enqueue toward the service when one is present.
    SiteRuntime& app = SiteAt(0);
    double cost = static_cast<double>(cfg.model.shm_hop_ns);
    bool drop = false;
    bool reply = false;
    if (app.chain.size() > 0) {
      EngineChain::Outcome out = RunChain(app, rpc->message);
      cost += out.cost_ns;
      if (out.result.outcome == ir::ProcessOutcome::kReply) {
        // An in-app cache answered locally; the message is already the
        // response and never leaves the client.
        reply = true;
      } else if (out.result.outcome != ir::ProcessOutcome::kPass) {
        rpc->message = rpc::Message::MakeNetworkError(
            rpc->message, out.result.abort_message);
        drop = true;
      }
    }
    ChargeStage("client-app", cost, true);
    app.station->Submit(static_cast<SimTime>(cost), [this, rpc, drop, reply] {
      if (reply) {
        CompleteRpc(rpc, /*success=*/true);
        return;
      }
      if (drop) {
        CompleteRpc(rpc, /*success=*/false);
        return;
      }
      Forward(rpc, 1);
    });
  }

  // Advance the request through site index `idx` (1..6); site 7 = server app.
  void Forward(std::shared_ptr<Rpc> rpc, size_t idx) {
    if (MaybeQueue(std::min<size_t>(idx, 7),
                   [this, rpc, idx] { Forward(rpc, idx); })) {
      return;
    }
    // First site past the wire (the switch position parses the packet):
    // materialize the message from the minimal wire format. Fields the
    // compiler did not put in the header are genuinely gone.
    if (idx == 3 && !rpc->wire_bytes.empty()) {
      auto decoded = codec.Decode(rpc->wire_bytes);
      assert(decoded.ok());
      rpc->message = std::move(decoded).value();
      rpc->wire_bytes.clear();
    }
    if (idx >= 7) {
      ServerAppHandle(rpc);
      return;
    }
    SiteRuntime& site = SiteAt(idx);
    if (!site.active) {
      StepTransport(rpc, idx);
      return;
    }
    double cost = 0;
    bool drop = false;
    bool silent = false;
    bool reply = false;
    if (site.chain.size() > 0 &&
        rpc->message.kind() != rpc::MessageKind::kError) {
      EngineChain::Outcome out = RunChain(site, rpc->message);
      ChargeStage(std::string(SiteName(site.site)),
                  out.cost_ns - out.critical_path_ns, site.on_host);
      cost = out.critical_path_ns;
      if (out.result.outcome == ir::ProcessOutcome::kDropAbort) {
        rpc->message = rpc::Message::MakeNetworkError(
            rpc->message, out.result.abort_message);
        drop = true;
      } else if (out.result.outcome == ir::ProcessOutcome::kDropSilent) {
        drop = true;
        silent = true;
      } else if (out.result.outcome == ir::ProcessOutcome::kReply) {
        // Cache hit at this site: the request became the response here; it
        // turns around as a success without ever reaching the server. The
        // sites between this one and the client now process it on their
        // response path — the closer to the client the cache sits, the more
        // of the round trip a hit saves.
        reply = true;
      }
    } else if (site.site == Site::kClientEngine ||
               site.site == Site::kServerEngine) {
      cost = static_cast<double>(cfg.model.mrpc_engine_dispatch_ns);
    }
    if (site.site == Site::kServerKernel) {
      // TCP receive + copy of the minimal wire format (the message was
      // materialized at the switch position; the kernel still pays the
      // receive-path costs).
      cost += static_cast<double>(cfg.model.mrpc_tcp_rx_ns +
                                  cfg.model.adn_codec_ns);
    }
    ChargeStage(std::string(SiteName(site.site)), cost, site.on_host);
    site.station->Submit(static_cast<SimTime>(cost),
                         [this, rpc, idx, drop, silent, reply] {
                           if (reply) {
                             Backward(rpc, idx, /*success=*/true);
                             return;
                           }
                           if (drop) {
                             if (silent) {
                               // The message vanishes; a real client would
                               // time out — we settle the slot immediately
                               // to keep the loop closed.
                               CompleteRpc(rpc, /*success=*/false);
                             } else {
                               Backward(rpc, idx, /*success=*/false);
                             }
                             return;
                           }
                           StepTransport(rpc, idx);
                         });
  }

  // Transport edge leaving site `idx` on the request path.
  void StepTransport(std::shared_ptr<Rpc> rpc, size_t idx) {
    const sim::CostModel& m = cfg.model;
    if (SiteAt(idx).site == Site::kClientKernel) {
      // Real wire encode at the last host point before the wire.
      rpc->wire_bytes.clear();
      Status s = codec.Encode(rpc->message, rpc->wire_bytes);
      assert(s.ok());
      (void)s;
      SimTime cost = m.mrpc_tcp_tx_ns + m.adn_codec_ns;
      ChargeStage("client-kernel", static_cast<double>(cost), true);
      SiteAt(2).station->Submit(cost, [this, rpc] {
        ++wire_requests;
        wire.Send(rpc->wire_bytes.size(), [this, rpc] { Forward(rpc, 3); });
      });
      return;
    }
    Forward(rpc, idx + 1);
  }

  void ServerAppHandle(std::shared_ptr<Rpc> rpc) {
    SiteRuntime& app = SiteAt(7);
    double cost = static_cast<double>(cfg.model.app_handler_ns +
                                      cfg.model.shm_hop_ns);
    bool drop = false;
    bool reply = false;
    if (app.chain.size() > 0) {
      EngineChain::Outcome out = RunChain(app, rpc->message);
      cost += out.cost_ns;
      if (out.result.outcome == ir::ProcessOutcome::kReply) {
        // The chain already rewrote the request into the response; skip the
        // application handler.
        reply = true;
      } else if (out.result.outcome != ir::ProcessOutcome::kPass) {
        rpc->message = rpc::Message::MakeNetworkError(
            rpc->message, out.result.abort_message);
        drop = true;
      }
    }
    ChargeStage("server-app", cost, true);
    app.station->Submit(static_cast<SimTime>(cost), [this, rpc, drop, reply] {
      if (drop) {
        Backward(rpc, 7, /*success=*/false);
        return;
      }
      if (!reply) {
        rpc->message = rpc::Message::MakeResponse(
            rpc->message,
            {{"payload", rpc->message.GetFieldOrNull("payload")}});
      }
      Backward(rpc, 7, /*success=*/true);
    });
  }

  // Walk the response (or error) back toward the client app from site idx.
  void Backward(std::shared_ptr<Rpc> rpc, size_t idx, bool success) {
    if (idx == 0) {
      CompleteRpc(rpc, success);
      return;
    }
    size_t next = idx - 1;
    if (idx == 3) {
      // Passing from the switch position back toward the client: wire hop.
      rpc->wire_bytes.clear();
      Status s = codec.Encode(rpc->message, rpc->wire_bytes);
      assert(s.ok());
      (void)s;
      wire.Send(rpc->wire_bytes.size(), [this, rpc, next, success] {
        BackwardArrive(rpc, next, success);
      });
      return;
    }
    BackwardArrive(rpc, next, success);
  }

  void BackwardArrive(std::shared_ptr<Rpc> rpc, size_t idx, bool success) {
    if (MaybeQueue(idx, [this, rpc, idx, success] {
          BackwardArrive(rpc, idx, success);
        })) {
      return;
    }
    SiteRuntime& site = SiteAt(idx);
    if (!site.active) {
      Backward(rpc, idx, success);
      return;
    }
    const sim::CostModel& m = cfg.model;
    double cost = 0;
    bool failed = false;
    switch (site.site) {
      case Site::kClientApp: {
        cost = static_cast<double>(m.shm_hop_ns);
        if (site.chain.size() > 0 &&
            rpc->message.kind() == rpc::MessageKind::kResponse) {
          EngineChain::Outcome out = RunChain(site, rpc->message);
          cost += out.cost_ns;
          if (out.result.outcome != ir::ProcessOutcome::kPass &&
              out.result.outcome != ir::ProcessOutcome::kReply) {
            failed = true;
          }
        }
        ChargeStage("client-app", cost, true);
        site.station->Submit(static_cast<SimTime>(cost),
                             [this, rpc, success, failed] {
                               CompleteRpc(rpc, success && !failed);
                             });
        return;
      }
      case Site::kClientKernel: {
        cost = static_cast<double>(m.mrpc_tcp_rx_ns + m.adn_codec_ns);
        if (!rpc->wire_bytes.empty()) {
          auto decoded = codec.Decode(rpc->wire_bytes);
          assert(decoded.ok());
          rpc->message = std::move(decoded).value();
          rpc->wire_bytes.clear();
        }
        break;
      }
      case Site::kServerKernel: {
        cost = static_cast<double>(m.mrpc_tcp_tx_ns + m.adn_codec_ns);
        break;
      }
      default: {
        if (site.chain.size() > 0 &&
            rpc->message.kind() == rpc::MessageKind::kResponse) {
          EngineChain::Outcome out = RunChain(site, rpc->message);
          cost = out.cost_ns;
          if (out.result.outcome != ir::ProcessOutcome::kPass &&
              out.result.outcome != ir::ProcessOutcome::kReply) {
            rpc->message = rpc::Message::MakeNetworkError(
                rpc->message, out.result.abort_message);
            failed = true;
          }
        } else if (site.site == Site::kClientEngine ||
                   site.site == Site::kServerEngine) {
          cost = static_cast<double>(m.mrpc_engine_dispatch_ns);
        }
        break;
      }
    }
    ChargeStage(std::string(SiteName(site.site)), cost, site.on_host);
    site.station->Submit(static_cast<SimTime>(cost),
                         [this, rpc, idx, success, failed] {
                           Backward(rpc, idx, success && !failed);
                         });
  }

  void CompleteRpc(std::shared_ptr<Rpc> rpc, bool success) {
    --in_flight;
    if (success) {
      ++completed;
    } else {
      ++dropped;
    }
    if (warmed_up) {
      ++measured_done;
      if (success) {
        latencies.Record(sim.now() - rpc->start);
        if (obs::Enabled()) {
          if (latency_hist == nullptr) {
            latency_hist = &obs::MetricsRegistry::Default().GetHistogram(
                "adn_rpc_latency_ns", "tier=\"sim\"");
          }
          latency_hist->Observe(static_cast<double>(sim.now() - rpc->start));
        }
      }
      measure_end_time = sim.now();
    }
    MaybeIssue();
  }

  // --- Live loop ------------------------------------------------------------

  // Open-loop load generation: one arrival event at a time, paced by the
  // instantaneous offered rate. Arrivals beyond the admission cap are
  // rejected (counted) rather than queued — the client gives up, which is
  // what lets an under-provisioned window show up as loss in the timeline.
  void ScheduleNextArrival() {
    double rate = cfg.offered_rps(sim.now());
    SimTime gap = rate > 0
                      ? std::max<SimTime>(1, static_cast<SimTime>(1e9 / rate))
                      : std::max<SimTime>(1, cfg.report_interval_ns > 0
                                                 ? cfg.report_interval_ns / 4
                                                 : 1'000'000);
    SimTime next = sim.now() + gap;
    if (next >= cfg.run_for_ns) return;  // load generation window is over
    sim.At(next, [this] {
      if (cfg.offered_rps(sim.now()) > 0) {
        ++arrivals;
        if (in_flight >= cfg.concurrency) {
          ++rejected;
        } else {
          IssueOne();
        }
      }
      ScheduleNextArrival();
    });
  }

  // The recurring Figure-3 reporting event: publish window telemetry, hand
  // the report to the controller callback, apply whatever it commands.
  void DoReport() {
    SimTime now = sim.now();
    SimTime span = now - last_report_time;
    PathReport report;
    report.window_start = last_report_time;
    report.window_end = now;
    report.issued = arrivals - last_arrivals;
    report.completed = completed - last_completed;
    report.dropped = dropped - last_dropped;
    report.rejected = rejected - last_rejected;
    last_arrivals = arrivals;
    last_completed = completed;
    last_dropped = dropped;
    last_rejected = rejected;
    last_report_time = now;
    for (auto& site : sites) {
      if (!site.active) continue;
      SimTime busy = site.station->busy_time();
      SimTime busy_delta = std::max<SimTime>(0, busy - site.last_busy);
      site.last_busy = busy;
      SiteWindow w;
      w.site = site.site;
      w.processor = std::string(SiteName(site.site));
      w.width = site.station->width();
      w.utilization =
          span > 0 ? std::min(1.0, static_cast<double>(busy_delta) /
                                       (static_cast<double>(span) * w.width))
                   : 0.0;
      w.paused = site.paused;
      if (obs::Enabled()) {
        obs::MetricsRegistry::Default()
            .GetGauge("adn_engine_utilization",
                      "processor=\"" + w.processor + "\"")
            .Set(w.utilization);
      }
      report.sites.push_back(std::move(w));
    }
    reports.push_back(report);
    if (cfg.on_report) {
      for (ReconfigCommand& cmd : cfg.on_report(report)) {
        ApplyReconfig(std::move(cmd));
      }
    }
    // Keep ticking while the run is still producing work; stop once load
    // generation ended and the path drained, so the event does not hold the
    // simulator open forever.
    bool finished = open_loop ? (now + cfg.report_interval_ns >=
                                     cfg.run_for_ns &&
                                 in_flight == 0)
                              : (AllIssued() && in_flight == 0);
    if (!finished) {
      sim.After(cfg.report_interval_ns, [this] { DoReport(); });
    }
  }

  // Pause-drain-resume: pause the site now, run the controller's migration
  // (the real state split/merge — its cost is the data-plane pause), resume
  // at the new width and replay everything that arrived meanwhile.
  void ApplyReconfig(ReconfigCommand cmd) {
    for (auto& site : sites) {
      if (site.site != cmd.site) continue;
      if (site.paused) return;  // one reconfiguration at a time per site
      int old_width = site.station->width();
      if (cmd.new_width == old_width && !cmd.migrate) return;
      site.paused = true;
      SimTime pause =
          cmd.migrate ? std::max<SimTime>(0, cmd.migrate(site.chain)) : 0;
      const std::string processor(SiteName(site.site));
      if (obs::Enabled()) {
        obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
        const std::string label = "processor=\"" + processor + "\"";
        reg.GetCounter("adn_ctrl_reconfigs_total", label).Inc();
        reg.GetHistogram("adn_ctrl_pause_ns", label)
            .Observe(static_cast<double>(pause));
      }
      ReconfigEvent event;
      event.at = sim.now();
      event.site = site.site;
      event.old_width = old_width;
      event.new_width = cmd.new_width;
      event.pause_ns = pause;
      size_t event_idx = reconfigs.size();
      reconfigs.push_back(event);
      uint64_t queued_before = site.queued_total;
      SiteRuntime* site_ptr = &site;
      int new_width = cmd.new_width;
      sim.After(pause, [this, site_ptr, event_idx, queued_before, new_width] {
        site_ptr->station->SetWidth(new_width);
        site_ptr->paused = false;
        reconfigs[event_idx].queued_during_pause =
            site_ptr->queued_total - queued_before;
        // Replay in arrival order; a nested pause (possible only via a
        // future report tick, not synchronously here) would re-park them.
        while (!site_ptr->pending.empty() && !site_ptr->paused) {
          auto fn = std::move(site_ptr->pending.front());
          site_ptr->pending.pop_front();
          fn();
        }
      });
      return;
    }
  }

  AdnPathResult Run() {
    open_loop = static_cast<bool>(cfg.offered_rps);
    if (open_loop) {
      assert(cfg.run_for_ns > 0);
      // The live loop *is* the experiment: measure from t=0, no warmup.
      warmed_up = true;
      measure_start_time = 0;
      // First arrival at t=0 if the profile offers load there.
      sim.At(0, [this] {
        if (cfg.offered_rps(sim.now()) > 0) {
          ++arrivals;
          if (in_flight >= cfg.concurrency) {
            ++rejected;
          } else {
            IssueOne();
          }
        }
        ScheduleNextArrival();
      });
    } else {
      MaybeIssue();
    }
    if (cfg.report_interval_ns > 0) {
      sim.After(cfg.report_interval_ns, [this] { DoReport(); });
    }
    sim.Run();

    AdnPathResult result;
    result.stats.label = cfg.label;
    result.stats.completed = completed;
    result.stats.dropped = dropped;
    SimTime span = measure_end_time - measure_start_time;
    result.stats.duration_us = sim::ToMicros(span);
    if (span > 0) {
      result.stats.throughput_krps =
          static_cast<double>(measured_done) /
          (static_cast<double>(span) / sim::kNanosPerSecond) / 1000.0;
    }
    result.stats.mean_latency_us = latencies.MeanMicros();
    result.stats.p50_latency_us = latencies.PercentileMicros(0.50);
    result.stats.p99_latency_us = latencies.PercentileMicros(0.99);
    double denom = std::max<double>(1.0, static_cast<double>(measured_done));
    for (auto& [stage, total] : stage_cpu) {
      result.stage_cpu_ns.emplace_back(stage, total / denom);
    }
    result.host_cpu_per_rpc_ns = host_cpu_total / denom;
    result.stats.host_cpu_per_rpc_ns = result.host_cpu_per_rpc_ns;
    result.wire_bytes_per_request =
        wire_requests > 0 ? static_cast<double>(wire.bytes_sent()) /
                                static_cast<double>(wire_requests)
                          : 0.0;
    if (span > 0) {
      result.client_engine_utilization =
          SiteAt(1).station->Utilization(span);
      result.server_engine_utilization =
          SiteAt(6).station->Utilization(span);
    }
    if (obs::Enabled()) {
      // Figure-3 feedback input: per-processor utilization gauges the
      // controller's TelemetryHub reads via IngestSnapshot.
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
      for (auto& site : sites) {
        if (!site.active || span <= 0) continue;
        reg.GetGauge("adn_engine_utilization",
                     "processor=\"" + std::string(SiteName(site.site)) + "\"")
            .Set(site.station->Utilization(span));
      }
    }
    result.reconfigs = std::move(reconfigs);
    result.reports = std::move(reports);
    result.issued = open_loop ? arrivals - rejected : next_id;
    result.rejected = rejected;
    result.queued_during_pause = queued_total;
    return result;
  }
};

}  // namespace

std::string_view SiteName(Site site) {
  switch (site) {
    case Site::kClientApp: return "client-app";
    case Site::kClientEngine: return "client-engine";
    case Site::kClientKernel: return "client-kernel";
    case Site::kSwitch: return "switch";
    case Site::kServerNic: return "server-nic";
    case Site::kServerKernel: return "server-kernel";
    case Site::kServerEngine: return "server-engine";
    case Site::kServerApp: return "server-app";
  }
  return "?";
}

AdnPathResult RunAdnPathExperiment(const AdnPathConfig& config) {
  Experiment experiment(config);
  return experiment.Run();
}

}  // namespace adn::mrpc
