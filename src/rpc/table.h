// Table: the internal state of an ADN element (paper §5.1, Figure 4).
//
// Element state is deliberately modeled as relational tables rather than
// arbitrary in-memory data structures. The paper's §5.2 observation — "the
// decoupling of code and state, and the tabular nature of state, enables us
// to reconfigure the network without disrupting applications" — is realized
// here: tables can be snapshotted to bytes, restored, split by key hash for
// scale-out, and merged for scale-in (see controller/migration.h).
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "rpc/schema.h"
#include "rpc/value.h"

namespace adn::rpc {

using Row = std::vector<Value>;

class Table {
 public:
  Table() = default;
  Table(std::string name, Schema schema);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t RowCount() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  // Rows are append-ordered; erased slots are compacted immediately.
  const std::vector<Row>& rows() const { return rows_; }

  // Insert semantics:
  //  - with a primary key: upsert (replace the row with the same key);
  //  - without: plain append.
  Status Insert(Row row);

  // Point lookup on the primary key (single- or multi-column). Returns all
  // matching rows (0 or 1 when a PK is declared).
  std::vector<const Row*> LookupByKey(const Row& key) const;

  // Allocation-free point lookup for single-column primary keys — the
  // data-plane hot path (one call per message for every keyed join).
  const Row* LookupSingleKey(const Value& key) const;

  // Burst-mode lookup+prefetch: resolves the row like LookupSingleKey and
  // additionally issues a read prefetch for the row's value storage, so that
  // by the time the burst executor's lookup instruction touches the row its
  // cache lines are warm (the NDN-DPDK PCCT pattern: resolve+prefetch every
  // entry for a burst before processing any of it). The returned pointer is
  // only stable until the next mutation of this table.
  const Row* PrefetchSingleKey(const Value& key) const;

  // Linear scan helpers.
  const Row* FindFirst(const std::function<bool(const Row&)>& pred) const;
  size_t EraseWhere(const std::function<bool(const Row&)>& pred);
  void Clear();

  // Row-capacity recycling (zero-allocation insert path). Rows displaced by
  // Clear() or an upsert are emptied (values destroyed) and parked; a later
  // TakeSpareRow() returns one with its vector capacity intact, so a
  // steady-state INSERT costs no heap allocation. Returns an empty fresh Row
  // when no spare is available.
  Row TakeSpareRow();
  size_t spare_rows() const { return spares_.size(); }

  // --- State migration support (paper §5.2) -------------------------------
  // Snapshot the full table (schema + rows) to a portable byte string.
  Bytes Snapshot() const;
  static Result<Table> Restore(std::span<const uint8_t> snapshot);

  // Partition rows into `shards` tables by hash of the primary key (or of
  // the whole row when no PK is declared). Used when scaling OUT a stateful
  // element: each new instance receives one shard.
  Result<std::vector<Table>> SplitByKeyHash(size_t shards) const;

  // Absorb all rows of `other` (same schema required). Used when scaling IN:
  // surviving instances merge the states of retired ones.
  Status MergeFrom(const Table& other);

  // Deterministic content hash (order-insensitive) — used by tests to prove
  // split+merge round-trips state exactly.
  uint64_t ContentHash() const;

  // --- Key-slot slices (live migration; see docs/RECONFIG.md) --------------
  // Keyed rows partition into `num_slots` slots by RowKeyHash % num_slots; a
  // slice is one slot's rows. Slices are the unit of shard ownership the
  // EnginePool router moves between workers without draining.
  bool HasPrimaryKey() const { return !pk_indexes_.empty(); }
  // Key hash of a row OF THIS TABLE (PK hash, whole-row hash when keyless) —
  // exactly the hash slices and shard splits partition by.
  uint64_t RowKeyHash(const Row& row) const { return KeyHashOf(row); }
  // The row's primary-key values in PK-column order (empty when keyless).
  Row KeyOf(const Row& row) const;
  // Erase the row carrying exactly this key (PK values in PK-column order).
  // Returns rows erased (0 or 1); keyless tables never match. O(1): the
  // last row swaps into the hole (append order is not preserved — only
  // keyless append logs rely on it, and they never match here).
  size_t EraseByKey(const Row& key);
  // Visit every keyed row whose key hash lands in slot `slot` — an index
  // walk over the cached hashes (one integer mod per row, no re-hashing),
  // the primitive that keeps live-cutover work off the full table scan.
  // Must not mutate the table from inside `fn`.
  void ForEachKeySlotRow(size_t slot, size_t num_slots,
                         const std::function<void(const Row&)>& fn) const;
  // Copy of this table holding only slot `slot`'s keyed rows. Keyless tables
  // yield an empty copy: append-log rows are location-independent (the
  // merged state hash XORs across shards), so they never move with a slice.
  Table SliceByKeySlot(size_t slot, size_t num_slots) const;
  // Drop slot `slot`'s keyed rows locally (post-handoff). Returns the count.
  size_t EraseKeySlot(size_t slot, size_t num_slots);
  // Two-level split: shard = (RowKeyHash % num_slots) % shards — the same
  // partition EnginePool's slot router applies to message keys, so shard s
  // holds precisely the keys whose messages route to worker s.
  Result<std::vector<Table>> SplitByKeySlot(size_t shards,
                                            size_t num_slots) const;

  std::string DebugString(size_t max_rows = 10) const;

 private:
  uint64_t KeyHashOf(const Row& row) const;
  bool KeysEqual(const Row& a, const Row& b) const;
  void ReindexAll();
  void StashSpare(Row&& row);

  std::string name_;
  Schema schema_;
  std::vector<size_t> pk_indexes_;
  std::vector<Row> rows_;
  // key hash -> row indexes (collision chains resolved by KeysEqual).
  // Maintained only for keyed tables: keyless tables (append-only logs)
  // never consult it, so they skip the per-insert index node entirely.
  std::unordered_multimap<uint64_t, size_t> key_index_;
  std::vector<Row> spares_;
};

uint64_t HashRow(const Row& row);

// Hash of one key value — exactly the hash KeyHashOf/LookupSingleKey use
// for a single-column primary key. Shard routers (mrpc::EnginePool) hash the
// message's shard-key field with this so that worker i's table shard from
// SplitByKeyHash(n) holds precisely the keys whose messages route to i.
uint64_t HashSingleKey(const Value& key);

}  // namespace adn::rpc
