#include "rpc/schema.h"

namespace adn::rpc {

std::optional<size_t> Schema::IndexOf(std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return std::nullopt;
}

const Column* Schema::FindColumn(std::string_view name) const {
  auto idx = IndexOf(name);
  return idx.has_value() ? &columns_[*idx] : nullptr;
}

Status Schema::AddColumn(Column column) {
  if (IndexOf(column.name).has_value()) {
    return Status(ErrorCode::kAlreadyExists,
                  "duplicate column '" + column.name + "'");
  }
  columns_.push_back(std::move(column));
  return Status::Ok();
}

std::vector<size_t> Schema::PrimaryKeyIndexes() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].primary_key) out.push_back(i);
  }
  return out;
}

std::string Schema::DebugString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += " ";
    out += ValueTypeName(columns_[i].type);
    if (columns_[i].primary_key) out += " PRIMARY KEY";
  }
  out += ")";
  return out;
}

}  // namespace adn::rpc
