#include "rpc/message.h"

namespace adn::rpc {

namespace {
const Value kNullValue;
}  // namespace

const Value* Message::Find(std::string_view name) const {
  for (const Field& f : fields_) {
    if (f.name == name) return &f.value;
  }
  return nullptr;
}

const Value& Message::GetFieldOrNull(std::string_view name) const {
  const Value* v = Find(name);
  return v != nullptr ? *v : kNullValue;
}

void Message::SetField(std::string_view name, Value value) {
  for (Field& f : fields_) {
    if (f.name == name) {
      f.value = std::move(value);
      return;
    }
  }
  fields_.push_back(Field{std::string(name), std::move(value)});
}

bool Message::RemoveField(std::string_view name) {
  for (auto it = fields_.begin(); it != fields_.end(); ++it) {
    if (it->name == name) {
      fields_.erase(it);
      return true;
    }
  }
  return false;
}

size_t Message::ApproximateSize() const {
  size_t total = sizeof(Message) + method_.size();
  for (const Field& f : fields_) {
    total += f.name.size() + f.value.EncodedSizeHint();
  }
  return total;
}

std::string Message::DebugString() const {
  std::string out;
  out += kind_ == MessageKind::kRequest
             ? "REQ"
             : (kind_ == MessageKind::kResponse ? "RSP" : "ERR");
  out += " #" + std::to_string(id_) + " " + method_ + " {";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name + "=" + fields_[i].value.ToDisplayString();
  }
  out += "}";
  if (kind_ == MessageKind::kError) out += " detail=" + error_detail_;
  return out;
}

Message Message::MakeRequest(uint64_t id, std::string method,
                             std::vector<Field> fields) {
  Message m;
  m.id_ = id;
  m.kind_ = MessageKind::kRequest;
  m.method_ = std::move(method);
  m.fields_ = std::move(fields);
  return m;
}

Message Message::MakeResponse(const Message& request,
                              std::vector<Field> fields) {
  Message m;
  m.id_ = request.id();
  m.kind_ = MessageKind::kResponse;
  m.method_ = request.method();
  m.source_ = request.destination();
  m.destination_ = request.source();
  m.fields_ = std::move(fields);
  return m;
}

Message Message::MakeNetworkError(const Message& request, std::string detail) {
  Message m;
  m.id_ = request.id();
  m.kind_ = MessageKind::kError;
  m.method_ = request.method();
  m.source_ = request.destination();
  m.destination_ = request.source();
  m.error_detail_ = std::move(detail);
  return m;
}

}  // namespace adn::rpc
