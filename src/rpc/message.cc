#include "rpc/message.h"

#include <new>
#include <utility>

namespace adn::rpc {

// --- Storage management -----------------------------------------------------

void Message::Reserve(uint32_t want) {
  if (want <= fcap_) return;
  uint32_t cap = fcap_ == 0 ? 4 : fcap_ * 2;
  if (cap < want) cap = want;
  void* raw = arena_ != nullptr
                  ? arena_->Allocate(cap * sizeof(Field), alignof(Field))
                  : ::operator new(cap * sizeof(Field));
  Field* next = static_cast<Field*>(raw);
  for (uint32_t i = 0; i < nfields_; ++i) {
    new (next + i) Field(std::move(fields_[i]));
    fields_[i].~Field();
  }
  if (arena_ == nullptr && fields_ != nullptr) {
    ::operator delete(fields_);
  }
  // Arena mode: the old buffer is abandoned in the arena until Reset().
  fields_ = next;
  fcap_ = cap;
}

void Message::EmplaceField(FieldId id, Value&& value) {
  Reserve(nfields_ + 1);
  new (fields_ + nfields_) Field(id, std::move(value));
  ++nfields_;
}

void Message::DestroyFields() {
  for (uint32_t i = 0; i < nfields_; ++i) fields_[i].~Field();
  if (arena_ == nullptr && fields_ != nullptr) {
    ::operator delete(fields_);
  }
  fields_ = nullptr;
  nfields_ = 0;
  fcap_ = 0;
}

void Message::ReleaseArena() {
  if (lease_pool_ != nullptr) {
    lease_pool_->Release(arena_);
    lease_pool_ = nullptr;
  }
  arena_ = nullptr;
}

void Message::CopyMetaFrom(const Message& other) {
  id_ = other.id_;
  kind_ = other.kind_;
  method_ = other.method_;
  source_ = other.source_;
  destination_ = other.destination_;
  error_detail_ = other.error_detail_;
}

void Message::StealFrom(Message&& other) noexcept {
  id_ = other.id_;
  kind_ = other.kind_;
  method_ = std::move(other.method_);
  source_ = other.source_;
  destination_ = other.destination_;
  error_detail_ = std::move(other.error_detail_);
  fields_ = other.fields_;
  nfields_ = other.nfields_;
  fcap_ = other.fcap_;
  arena_ = other.arena_;
  lease_pool_ = other.lease_pool_;
  other.fields_ = nullptr;
  other.nfields_ = 0;
  other.fcap_ = 0;
  other.arena_ = nullptr;
  other.lease_pool_ = nullptr;
}

Message::Message(const Message& other) {
  // Copies are always independent heap messages; Value's copy materializes
  // any arena slices.
  CopyMetaFrom(other);
  Reserve(other.nfields_);
  for (uint32_t i = 0; i < other.nfields_; ++i) {
    new (fields_ + i) Field(other.fields_[i]);
  }
  nfields_ = other.nfields_;
}

Message& Message::operator=(const Message& other) {
  if (this == &other) return *this;
  DestroyFields();
  ReleaseArena();
  CopyMetaFrom(other);
  Reserve(other.nfields_);
  for (uint32_t i = 0; i < other.nfields_; ++i) {
    new (fields_ + i) Field(other.fields_[i]);
  }
  nfields_ = other.nfields_;
  return *this;
}

Message::Message(Message&& other) noexcept { StealFrom(std::move(other)); }

Message& Message::operator=(Message&& other) noexcept {
  if (this == &other) return *this;
  DestroyFields();
  ReleaseArena();
  StealFrom(std::move(other));
  return *this;
}

Message::~Message() {
  DestroyFields();
  ReleaseArena();
}

Message Message::WithArena(common::ArenaPool& pool) {
  Message m;
  m.arena_ = pool.Acquire();
  m.lease_pool_ = &pool;
  return m;
}

void Message::BindArena(common::Arena* arena) {
  DestroyFields();
  ReleaseArena();
  arena_ = arena;
}

// --- Id-based field access --------------------------------------------------

const Value& Message::GetFieldOrNull(FieldId id) const {
  static const Value kNull;
  const Value* v = Find(id);
  return v != nullptr ? *v : kNull;
}

void Message::SetField(FieldId id, Value value) {
  if (Field* f = FindMutable(id)) {
    f->value = std::move(value);
    return;
  }
  EmplaceField(id, std::move(value));
}

void Message::AppendField(FieldId id, Value value) {
  EmplaceField(id, std::move(value));
}

void Message::SetText(FieldId id, std::string_view text) {
  if (arena_ != nullptr) {
    std::string_view copy = arena_->CopyString(text);
    SetField(id, Value::BorrowText(copy.data(), copy.size()));
  } else {
    SetField(id, Value(text));
  }
}

void Message::SetBytes(FieldId id, std::span<const uint8_t> bytes) {
  if (arena_ != nullptr) {
    const uint8_t* copy = arena_->CopyBytes(bytes.data(), bytes.size());
    SetField(id, Value::BorrowBytes(copy, bytes.size()));
  } else {
    SetField(id, Value(Bytes(bytes.begin(), bytes.end())));
  }
}

bool Message::RemoveField(FieldId id) {
  for (uint32_t i = 0; i < nfields_; ++i) {
    if (fields_[i].id != id) continue;
    for (uint32_t j = i + 1; j < nfields_; ++j) {
      fields_[j - 1] = std::move(fields_[j]);
    }
    fields_[nfields_ - 1].~Field();
    --nfields_;
    return true;
  }
  return false;
}

void Message::ProjectFields(std::span<const FieldId> keep) {
  uint32_t out = 0;
  for (uint32_t i = 0; i < nfields_; ++i) {
    bool kept = false;
    for (FieldId k : keep) {
      if (fields_[i].id == k) {
        kept = true;
        break;
      }
    }
    if (!kept) continue;
    if (out != i) fields_[out] = std::move(fields_[i]);
    ++out;
  }
  for (uint32_t i = out; i < nfields_; ++i) fields_[i].~Field();
  nfields_ = out;
}

// --- Name-based compat ------------------------------------------------------

bool Message::HasField(std::string_view name) const {
  return FindField(name) != nullptr;
}

const Value* Message::FindField(std::string_view name) const {
  auto id = FieldInterner::Global().Find(name);
  if (!id.has_value()) return nullptr;
  return Find(*id);
}

const Value& Message::GetFieldOrNull(std::string_view name) const {
  static const Value kNull;
  const Value* v = FindField(name);
  return v != nullptr ? *v : kNull;
}

void Message::SetField(std::string_view name, Value value) {
  SetField(InternFieldName(name), std::move(value));
}

bool Message::RemoveField(std::string_view name) {
  auto id = FieldInterner::Global().Find(name);
  if (!id.has_value()) return false;
  return RemoveField(*id);
}

// --- Misc -------------------------------------------------------------------

size_t Message::ApproximateSize() const {
  size_t total = sizeof(Message) + method_.size();
  for (const Field& f : fields()) {
    total += f.name().size() + f.value.EncodedSizeHint();
  }
  return total;
}

std::string Message::DebugString() const {
  std::string out;
  out += kind_ == MessageKind::kRequest
             ? "REQ"
             : (kind_ == MessageKind::kResponse ? "RSP" : "ERR");
  out += " #" + std::to_string(id_) + " " + method_ + " {";
  for (uint32_t i = 0; i < nfields_; ++i) {
    if (i > 0) out += ", ";
    out += std::string(fields_[i].name()) + "=" +
           fields_[i].value.ToDisplayString();
  }
  out += "}";
  if (kind_ == MessageKind::kError) out += " detail=" + error_detail_;
  return out;
}

Message Message::MakeRequest(uint64_t id, std::string method,
                             std::vector<Field> fields) {
  Message m;
  m.id_ = id;
  m.kind_ = MessageKind::kRequest;
  m.method_ = std::move(method);
  m.Reserve(static_cast<uint32_t>(fields.size()));
  for (Field& f : fields) m.EmplaceField(f.id, std::move(f.value));
  return m;
}

Message Message::MakeResponse(const Message& request,
                              std::vector<Field> fields) {
  Message m;
  m.id_ = request.id();
  m.kind_ = MessageKind::kResponse;
  m.method_ = request.method();
  m.source_ = request.destination();
  m.destination_ = request.source();
  m.Reserve(static_cast<uint32_t>(fields.size()));
  for (Field& f : fields) m.EmplaceField(f.id, std::move(f.value));
  return m;
}

Message Message::MakeNetworkError(const Message& request, std::string detail) {
  Message m;
  m.id_ = request.id();
  m.kind_ = MessageKind::kError;
  m.method_ = request.method();
  m.source_ = request.destination();
  m.destination_ = request.source();
  m.error_detail_ = std::move(detail);
  return m;
}

}  // namespace adn::rpc
