// Dynamically-typed field values for RPC-as-tuple messages (paper §5.1).
//
// ADN views each RPC as a tuple with one or more named fields; elements read
// and write those fields. Value is the cell type of that tuple: a compact
// tagged union over the types the DSL supports (BOOL, INT, FLOAT, TEXT,
// BYTES, plus NULL for absent results of outer operations).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "common/bytes.h"
#include "common/status.h"

namespace adn::rpc {

enum class ValueType : uint8_t {
  kNull = 0,
  kBool = 1,
  kInt = 2,    // 64-bit signed
  kFloat = 3,  // IEEE double
  kText = 4,   // UTF-8 string
  kBytes = 5,  // opaque payload
};

std::string_view ValueTypeName(ValueType t);

// Parse a DSL type name ("INT", "TEXT", ...; case-insensitive).
Result<ValueType> ParseValueType(std::string_view name);

class Value {
 public:
  Value() = default;  // null
  Value(bool b) : repr_(b) {}                        // NOLINT: implicit by design
  Value(int64_t i) : repr_(i) {}                     // NOLINT
  Value(int i) : repr_(static_cast<int64_t>(i)) {}   // NOLINT
  Value(double d) : repr_(d) {}                      // NOLINT
  Value(std::string s) : repr_(std::move(s)) {}      // NOLINT
  Value(std::string_view s) : repr_(std::string(s)) {}  // NOLINT
  Value(const char* s) : repr_(std::string(s)) {}    // NOLINT
  Value(Bytes b) : repr_(std::move(b)) {}            // NOLINT

  static Value Null() { return Value(); }

  ValueType type() const {
    return static_cast<ValueType>(repr_.index());
  }
  bool is_null() const { return type() == ValueType::kNull; }

  // Unchecked accessors; callers verify type() first (the DSL type checker
  // guarantees this on compiled paths).
  bool AsBool() const { return std::get<bool>(repr_); }
  int64_t AsInt() const { return std::get<int64_t>(repr_); }
  double AsFloat() const { return std::get<double>(repr_); }
  const std::string& AsText() const { return std::get<std::string>(repr_); }
  const Bytes& AsBytes() const { return std::get<Bytes>(repr_); }
  Bytes& MutableBytes() { return std::get<Bytes>(repr_); }
  std::string& MutableText() { return std::get<std::string>(repr_); }

  // Numeric coercion used by comparison operators: INT compares with FLOAT.
  bool IsNumeric() const {
    return type() == ValueType::kInt || type() == ValueType::kFloat;
  }
  double NumericAsDouble() const {
    return type() == ValueType::kInt ? static_cast<double>(AsInt())
                                     : AsFloat();
  }

  // SQL-style three-valued comparisons are flattened to two-valued here:
  // comparisons involving NULL are false; Equals(NULL, NULL) is false.
  bool EqualsValue(const Value& other) const;
  // Ordering for ORDER BY / MIN / MAX and b-tree state tables.
  // NULL sorts before everything; cross-type numeric compares allowed.
  int CompareTo(const Value& other) const;

  // Wire/debug helpers.
  std::string ToDisplayString() const;
  size_t EncodedSizeHint() const;

  bool operator==(const Value& other) const { return EqualsValue(other); }

 private:
  std::variant<std::monostate, bool, int64_t, double, std::string, Bytes>
      repr_;
};

// Hash compatible with EqualsValue (numeric INT/FLOAT with equal value hash
// alike only when exactly representable; our group-by keys are same-typed so
// this is sufficient and documented in the IR type checker).
uint64_t HashValue(const Value& v);

}  // namespace adn::rpc
