// Dynamically-typed field values for RPC-as-tuple messages (paper §5.1).
//
// ADN views each RPC as a tuple with one or more named fields; elements read
// and write those fields. Value is the cell type of that tuple: a compact
// tagged union over the types the DSL supports (BOOL, INT, FLOAT, TEXT,
// BYTES, plus NULL for absent results of outer operations).
//
// Zero-allocation path: in addition to OWNED text/bytes (std::string/Bytes),
// a Value can be a borrowed SLICE — a pointer+length into an arena the
// enclosing Message is bound to (common/arena.h). Slices report the same
// type() as their owned counterparts and read through the same AsText()/
// AsBytes() views, so consumers cannot tell them apart; the difference is
// purely ownership. Copying a Value MATERIALIZES slices into owned storage
// (a slice never escapes the lifetime of its arena via copy — this is the
// invariant that lets state tables store copies of message fields safely);
// moving preserves the slice, which is safe because slices only move
// together with the message/arena that backs them.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "common/bytes.h"
#include "common/status.h"

namespace adn::rpc {

enum class ValueType : uint8_t {
  kNull = 0,
  kBool = 1,
  kInt = 2,    // 64-bit signed
  kFloat = 3,  // IEEE double
  kText = 4,   // UTF-8 string
  kBytes = 5,  // opaque payload
};

std::string_view ValueTypeName(ValueType t);

// Parse a DSL type name ("INT", "TEXT", ...; case-insensitive).
Result<ValueType> ParseValueType(std::string_view name);

class Value {
 public:
  Value() = default;  // null
  Value(bool b) : repr_(b) {}                        // NOLINT: implicit by design
  Value(int64_t i) : repr_(i) {}                     // NOLINT
  Value(int i) : repr_(static_cast<int64_t>(i)) {}   // NOLINT
  Value(double d) : repr_(d) {}                      // NOLINT
  Value(std::string s) : repr_(std::move(s)) {}      // NOLINT
  Value(std::string_view s) : repr_(std::in_place_type<std::string>, s) {}  // NOLINT
  Value(const char* s) : repr_(std::in_place_type<std::string>, s) {}  // NOLINT
  Value(Bytes b) : repr_(std::move(b)) {}            // NOLINT

  // Copying materializes slices (see file comment); moving preserves them.
  Value(const Value& other) { CopyFrom(other); }
  Value& operator=(const Value& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  Value(Value&&) noexcept = default;
  Value& operator=(Value&&) noexcept = default;
  ~Value() = default;

  static Value Null() { return Value(); }

  // Borrowed slices into caller-managed storage (normally a message arena).
  // The caller guarantees the storage outlives every move of this Value.
  static Value BorrowText(const char* data, size_t size) {
    Value v;
    v.repr_.emplace<TextSlice>(TextSlice{data, static_cast<uint32_t>(size)});
    return v;
  }
  static Value BorrowBytes(const uint8_t* data, size_t size) {
    Value v;
    v.repr_.emplace<BytesSlice>(BytesSlice{data, static_cast<uint32_t>(size)});
    return v;
  }

  ValueType type() const {
    // Slice alternatives (indexes 6/7) report as TEXT/BYTES.
    static constexpr ValueType kTypeOfIndex[] = {
        ValueType::kNull,  ValueType::kBool,  ValueType::kInt,
        ValueType::kFloat, ValueType::kText,  ValueType::kBytes,
        ValueType::kText,  ValueType::kBytes,
    };
    return kTypeOfIndex[repr_.index()];
  }
  bool is_null() const { return type() == ValueType::kNull; }
  // True when this value borrows storage it does not own (arena slice).
  bool is_borrowed() const { return repr_.index() >= kTextSliceIndex; }

  // Unchecked accessors; callers verify type() first (the DSL type checker
  // guarantees this on compiled paths).
  bool AsBool() const { return std::get<bool>(repr_); }
  int64_t AsInt() const { return std::get<int64_t>(repr_); }
  double AsFloat() const { return std::get<double>(repr_); }
  std::string_view AsText() const {
    if (const auto* s = std::get_if<std::string>(&repr_)) return *s;
    const TextSlice& t = std::get<TextSlice>(repr_);
    return {t.data, t.size};
  }
  BytesView AsBytes() const {
    if (const auto* b = std::get_if<Bytes>(&repr_)) return BytesView(*b);
    const BytesSlice& s = std::get<BytesSlice>(repr_);
    return {s.data, s.size};
  }
  // Owned-storage mutation (throws on slices; compiled hot paths never
  // mutate in place).
  Bytes& MutableBytes() { return std::get<Bytes>(repr_); }
  std::string& MutableText() { return std::get<std::string>(repr_); }

  // Numeric coercion used by comparison operators: INT compares with FLOAT.
  bool IsNumeric() const {
    return type() == ValueType::kInt || type() == ValueType::kFloat;
  }
  double NumericAsDouble() const {
    return type() == ValueType::kInt ? static_cast<double>(AsInt())
                                     : AsFloat();
  }

  // SQL-style three-valued comparisons are flattened to two-valued here:
  // comparisons involving NULL are false; Equals(NULL, NULL) is false.
  bool EqualsValue(const Value& other) const;
  // Ordering for ORDER BY / MIN / MAX and b-tree state tables.
  // NULL sorts before everything; cross-type numeric compares allowed.
  int CompareTo(const Value& other) const;

  // Wire/debug helpers.
  std::string ToDisplayString() const;
  size_t EncodedSizeHint() const;

  bool operator==(const Value& other) const { return EqualsValue(other); }

 private:
  struct TextSlice {
    const char* data;
    uint32_t size;
  };
  struct BytesSlice {
    const uint8_t* data;
    uint32_t size;
  };
  static constexpr size_t kTextSliceIndex = 6;

  void CopyFrom(const Value& other);

  std::variant<std::monostate, bool, int64_t, double, std::string, Bytes,
               TextSlice, BytesSlice>
      repr_;
};

// Hash compatible with EqualsValue (numeric INT/FLOAT with equal value hash
// alike only when exactly representable; our group-by keys are same-typed so
// this is sufficient and documented in the IR type checker).
uint64_t HashValue(const Value& v);

}  // namespace adn::rpc
