#include "rpc/table.h"

#include <algorithm>

#include "rpc/wire.h"

namespace adn::rpc {

uint64_t HashRow(const Row& row) {
  uint64_t h = 0x243F6A8885A308D3ULL;
  for (const Value& v : row) {
    h ^= HashValue(v);
    h *= 0x100000001B3ULL;
  }
  return h;
}

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)) {
  pk_indexes_ = schema_.PrimaryKeyIndexes();
}

uint64_t HashSingleKey(const Value& key) {
  uint64_t h = 0x452821E638D01377ULL;
  h ^= HashValue(key);
  h *= 0x100000001B3ULL;
  return h;
}

uint64_t Table::KeyHashOf(const Row& row) const {
  if (pk_indexes_.empty()) return HashRow(row);
  if (pk_indexes_.size() == 1) return HashSingleKey(row[pk_indexes_[0]]);
  uint64_t h = 0x452821E638D01377ULL;
  for (size_t idx : pk_indexes_) {
    h ^= HashValue(row[idx]);
    h *= 0x100000001B3ULL;
  }
  return h;
}

bool Table::KeysEqual(const Row& a, const Row& b) const {
  if (pk_indexes_.empty()) {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i].CompareTo(b[i]) != 0) return false;
    }
    return true;
  }
  for (size_t idx : pk_indexes_) {
    if (a[idx].CompareTo(b[idx]) != 0) return false;
  }
  return true;
}

Status Table::Insert(Row row) {
  if (row.size() != schema_.size()) {
    return Status(ErrorCode::kInvalidArgument,
                  "row arity " + std::to_string(row.size()) +
                      " does not match schema arity " +
                      std::to_string(schema_.size()) + " of table " + name_);
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (!row[i].is_null() && row[i].type() != schema_.columns()[i].type) {
      return Status(ErrorCode::kTypeError,
                    "column '" + schema_.columns()[i].name + "' of table " +
                        name_ + " expects " +
                        std::string(ValueTypeName(schema_.columns()[i].type)) +
                        ", got " + std::string(ValueTypeName(row[i].type())));
    }
  }
  // Keyless tables are append-only logs: nothing ever consults the key
  // index, so skip both the key hash and the index node (the hot-path
  // allocation the zero-alloc gate measures).
  if (pk_indexes_.empty()) {
    rows_.push_back(std::move(row));
    return Status::Ok();
  }
  const uint64_t h = KeyHashOf(row);
  auto [begin, end] = key_index_.equal_range(h);
  for (auto it = begin; it != end; ++it) {
    if (KeysEqual(rows_[it->second], row)) {
      Row displaced = std::move(rows_[it->second]);
      rows_[it->second] = std::move(row);  // upsert
      StashSpare(std::move(displaced));
      return Status::Ok();
    }
  }
  rows_.push_back(std::move(row));
  key_index_.emplace(h, rows_.size() - 1);
  return Status::Ok();
}

std::vector<const Row*> Table::LookupByKey(const Row& key) const {
  std::vector<const Row*> out;
  if (pk_indexes_.empty()) return out;
  // Build a probe row with key values in PK positions.
  if (key.size() != pk_indexes_.size()) return out;
  uint64_t h = 0x452821E638D01377ULL;
  for (const Value& v : key) {
    h ^= HashValue(v);
    h *= 0x100000001B3ULL;
  }
  auto [begin, end] = key_index_.equal_range(h);
  for (auto it = begin; it != end; ++it) {
    const Row& row = rows_[it->second];
    bool match = true;
    for (size_t i = 0; i < pk_indexes_.size(); ++i) {
      if (row[pk_indexes_[i]].CompareTo(key[i]) != 0) {
        match = false;
        break;
      }
    }
    if (match) out.push_back(&row);
  }
  return out;
}

const Row* Table::LookupSingleKey(const Value& key) const {
  if (pk_indexes_.size() != 1) return nullptr;
  const uint64_t h = HashSingleKey(key);
  auto [begin, end] = key_index_.equal_range(h);
  for (auto it = begin; it != end; ++it) {
    const Row& row = rows_[it->second];
    if (row[pk_indexes_[0]].EqualsValue(key)) return &row;
  }
  return nullptr;
}

const Row* Table::PrefetchSingleKey(const Value& key) const {
  const Row* row = LookupSingleKey(key);
  if (row != nullptr && !row->empty()) {
#if defined(__GNUC__) || defined(__clang__)
    // Warm the row's Value storage (read, high temporal locality). The Row
    // header itself was just touched by the lookup; the payload Values are
    // what the executor reads next.
    __builtin_prefetch(static_cast<const void*>(row->data()), 0, 3);
#endif
  }
  return row;
}

const Row* Table::FindFirst(
    const std::function<bool(const Row&)>& pred) const {
  for (const Row& r : rows_) {
    if (pred(r)) return &r;
  }
  return nullptr;
}

size_t Table::EraseWhere(const std::function<bool(const Row&)>& pred) {
  size_t before = rows_.size();
  rows_.erase(std::remove_if(rows_.begin(), rows_.end(), pred), rows_.end());
  if (rows_.size() != before) ReindexAll();
  return before - rows_.size();
}

void Table::Clear() {
  for (Row& row : rows_) StashSpare(std::move(row));
  rows_.clear();
  key_index_.clear();
}

namespace {
// Upper bound on parked spare rows per table; beyond this, displaced rows
// are simply freed.
constexpr size_t kMaxSpareRows = 1 << 16;
}  // namespace

Row Table::TakeSpareRow() {
  if (spares_.empty()) return Row();
  Row row = std::move(spares_.back());
  spares_.pop_back();
  return row;
}

void Table::StashSpare(Row&& row) {
  if (spares_.size() >= kMaxSpareRows) return;
  row.clear();  // destroy values, keep capacity
  spares_.push_back(std::move(row));
}

void Table::ReindexAll() {
  key_index_.clear();
  if (pk_indexes_.empty()) return;
  for (size_t i = 0; i < rows_.size(); ++i) {
    key_index_.emplace(KeyHashOf(rows_[i]), i);
  }
}

Bytes Table::Snapshot() const {
  Bytes out;
  ByteWriter w(out);
  w.WriteString(name_);
  w.WriteVarint(schema_.size());
  for (const Column& c : schema_.columns()) {
    w.WriteString(c.name);
    w.WriteU8(static_cast<uint8_t>(c.type));
    w.WriteU8(c.primary_key ? 1 : 0);
  }
  w.WriteVarint(rows_.size());
  for (const Row& row : rows_) {
    for (const Value& v : row) EncodeValue(v, w);
  }
  return out;
}

Result<Table> Table::Restore(std::span<const uint8_t> snapshot) {
  ByteReader r(snapshot);
  ADN_ASSIGN_OR_RETURN(std::string name, r.ReadString());
  ADN_ASSIGN_OR_RETURN(uint64_t ncols, r.ReadVarint());
  Schema schema;
  for (uint64_t i = 0; i < ncols; ++i) {
    Column c;
    ADN_ASSIGN_OR_RETURN(c.name, r.ReadString());
    ADN_ASSIGN_OR_RETURN(uint8_t type, r.ReadU8());
    if (type > static_cast<uint8_t>(ValueType::kBytes)) {
      return Error(ErrorCode::kParseError, "bad column type in snapshot");
    }
    c.type = static_cast<ValueType>(type);
    ADN_ASSIGN_OR_RETURN(uint8_t pk, r.ReadU8());
    c.primary_key = pk != 0;
    ADN_RETURN_IF_ERROR(schema.AddColumn(std::move(c)));
  }
  Table table(std::move(name), std::move(schema));
  ADN_ASSIGN_OR_RETURN(uint64_t nrows, r.ReadVarint());
  for (uint64_t i = 0; i < nrows; ++i) {
    Row row;
    row.reserve(ncols);
    for (uint64_t j = 0; j < ncols; ++j) {
      ADN_ASSIGN_OR_RETURN(
          Value v, DecodeValue(table.schema().columns()[j].type, r));
      row.push_back(std::move(v));
    }
    ADN_RETURN_IF_ERROR(table.Insert(std::move(row)));
  }
  return table;
}

Result<std::vector<Table>> Table::SplitByKeyHash(size_t shards) const {
  if (shards == 0) {
    return Error(ErrorCode::kInvalidArgument, "cannot split into 0 shards");
  }
  std::vector<Table> out;
  out.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    out.emplace_back(name_, schema_);
  }
  for (const Row& row : rows_) {
    size_t shard = KeyHashOf(row) % shards;
    ADN_RETURN_IF_ERROR(out[shard].Insert(row));
  }
  return out;
}

Status Table::MergeFrom(const Table& other) {
  if (!(other.schema_ == schema_)) {
    return Status(ErrorCode::kInvalidArgument,
                  "cannot merge table '" + other.name_ + "' " +
                      other.schema_.DebugString() + " into '" + name_ + "' " +
                      schema_.DebugString());
  }
  for (const Row& row : other.rows_) {
    ADN_RETURN_IF_ERROR(Insert(row));
  }
  return Status::Ok();
}

Row Table::KeyOf(const Row& row) const {
  Row key;
  key.reserve(pk_indexes_.size());
  for (size_t idx : pk_indexes_) key.push_back(row[idx]);
  return key;
}

size_t Table::EraseByKey(const Row& key) {
  if (pk_indexes_.empty() || key.size() != pk_indexes_.size()) return 0;
  uint64_t h = 0x452821E638D01377ULL;
  for (const Value& v : key) {
    h ^= HashValue(v);
    h *= 0x100000001B3ULL;
  }
  auto [begin, end] = key_index_.equal_range(h);
  for (auto it = begin; it != end; ++it) {
    const Row& row = rows_[it->second];
    bool match = true;
    for (size_t i = 0; i < pk_indexes_.size(); ++i) {
      if (row[pk_indexes_[i]].CompareTo(key[i]) != 0) {
        match = false;
        break;
      }
    }
    if (!match) continue;
    // Swap-and-pop instead of erase+reindex: the live-migration delta
    // replay calls this per deleted key, and an O(n) reindex per call would
    // put a full re-hash of the table inside the reconfiguration window.
    const size_t hole = it->second;
    const size_t last = rows_.size() - 1;
    key_index_.erase(it);
    if (hole != last) {
      const uint64_t last_hash = KeyHashOf(rows_[last]);
      auto [lb, le] = key_index_.equal_range(last_hash);
      for (auto lit = lb; lit != le; ++lit) {
        if (lit->second == last) {
          lit->second = hole;
          break;
        }
      }
      StashSpare(std::move(rows_[hole]));
      rows_[hole] = std::move(rows_[last]);
    } else {
      StashSpare(std::move(rows_[hole]));
    }
    rows_.pop_back();
    return 1;
  }
  return 0;
}

void Table::ForEachKeySlotRow(
    size_t slot, size_t num_slots,
    const std::function<void(const Row&)>& fn) const {
  if (pk_indexes_.empty() || num_slots == 0) return;
  for (const auto& [hash, index] : key_index_) {
    if (hash % num_slots == slot) fn(rows_[index]);
  }
}

Table Table::SliceByKeySlot(size_t slot, size_t num_slots) const {
  Table out(name_, schema_);
  if (pk_indexes_.empty() || num_slots == 0) return out;
  ForEachKeySlotRow(slot, num_slots, [&](const Row& row) {
    const Status s = out.Insert(row);
    (void)s;  // same schema: cannot fail
  });
  return out;
}

size_t Table::EraseKeySlot(size_t slot, size_t num_slots) {
  if (pk_indexes_.empty() || num_slots == 0) return 0;
  // Membership and the rebuilt index both come from the cached hashes: one
  // integer pass plus row moves, never a re-hash of surviving keys. This
  // runs on a live worker right after cutover, so O(n) string hashing here
  // would stall the shards that did NOT move.
  std::vector<uint64_t> hash_of(rows_.size());
  std::vector<bool> erase(rows_.size(), false);
  size_t erased = 0;
  for (const auto& [hash, index] : key_index_) {
    hash_of[index] = hash;
    if (hash % num_slots == slot) {
      erase[index] = true;
      ++erased;
    }
  }
  if (erased == 0) return 0;
  key_index_.clear();
  size_t dst = 0;
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (erase[i]) {
      StashSpare(std::move(rows_[i]));
      continue;
    }
    if (dst != i) {
      rows_[dst] = std::move(rows_[i]);
      hash_of[dst] = hash_of[i];
    }
    key_index_.emplace(hash_of[dst], dst);
    ++dst;
  }
  rows_.resize(dst);
  return erased;
}

Result<std::vector<Table>> Table::SplitByKeySlot(size_t shards,
                                                 size_t num_slots) const {
  if (shards == 0 || num_slots == 0) {
    return Error(ErrorCode::kInvalidArgument,
                 "cannot split into 0 shards/slots");
  }
  std::vector<Table> out;
  out.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    out.emplace_back(name_, schema_);
  }
  for (const Row& row : rows_) {
    size_t shard = (KeyHashOf(row) % num_slots) % shards;
    ADN_RETURN_IF_ERROR(out[shard].Insert(row));
  }
  return out;
}

uint64_t Table::ContentHash() const {
  // XOR of per-row hashes: order-insensitive by construction.
  uint64_t h = 0;
  for (const Row& row : rows_) h ^= HashRow(row);
  return h;
}

std::string Table::DebugString(size_t max_rows) const {
  std::string out = name_ + schema_.DebugString() + " [" +
                    std::to_string(rows_.size()) + " rows]";
  size_t shown = 0;
  for (const Row& row : rows_) {
    if (shown++ >= max_rows) {
      out += "\n  ...";
      break;
    }
    out += "\n  (";
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ", ";
      out += row[i].ToDisplayString();
    }
    out += ")";
  }
  return out;
}

}  // namespace adn::rpc
