// Schemas describe the fields of an RPC tuple or a state table.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "rpc/value.h"

namespace adn::rpc {

struct Column {
  std::string name;
  ValueType type = ValueType::kNull;
  bool primary_key = false;

  bool operator==(const Column&) const = default;
};

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  const std::vector<Column>& columns() const { return columns_; }
  size_t size() const { return columns_.size(); }
  bool empty() const { return columns_.empty(); }

  // Index of the named column, or nullopt.
  std::optional<size_t> IndexOf(std::string_view name) const;
  const Column* FindColumn(std::string_view name) const;

  Status AddColumn(Column column);

  // Indexes of primary-key columns (possibly empty).
  std::vector<size_t> PrimaryKeyIndexes() const;

  std::string DebugString() const;

  bool operator==(const Schema&) const = default;

 private:
  std::vector<Column> columns_;
};

}  // namespace adn::rpc
