#include "rpc/intern.h"

#include <array>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <unordered_map>

namespace adn::rpc {

// Storage layout: names_ is a fixed array of std::string slots so that a
// concurrent Intern() never moves memory a lock-free NameOf() is reading.
// The slot is fully written BEFORE count_ is released, so any id <= a
// count_ an observer has seen refers to an immutable, completed slot.
struct FieldInterner::Impl {
  std::mutex mu;
  std::unordered_map<std::string, FieldId> by_name;  // guarded by mu
  std::array<std::string, kMaxInternedFields> names;
  std::atomic<size_t> count{0};
};

FieldInterner::Impl& FieldInterner::impl() const {
  static Impl instance;
  return instance;
}

FieldInterner& FieldInterner::Global() {
  static FieldInterner interner;
  return interner;
}

FieldId FieldInterner::Intern(std::string_view name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.by_name.find(std::string(name));
  if (it != im.by_name.end()) return it->second;
  size_t id = im.count.load(std::memory_order_relaxed);
  if (id >= kMaxInternedFields) {
    std::fprintf(stderr,
                 "FieldInterner: exceeded %zu distinct field names "
                 "(interning '%.*s')\n",
                 kMaxInternedFields, static_cast<int>(name.size()),
                 name.data());
    std::abort();
  }
  im.names[id] = std::string(name);
  im.by_name.emplace(im.names[id], static_cast<FieldId>(id));
  im.count.store(id + 1, std::memory_order_release);
  return static_cast<FieldId>(id);
}

std::optional<FieldId> FieldInterner::Find(std::string_view name) const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.by_name.find(std::string(name));
  if (it == im.by_name.end()) return std::nullopt;
  return it->second;
}

std::string_view FieldInterner::NameOf(FieldId id) const {
  Impl& im = impl();
  if (id >= im.count.load(std::memory_order_acquire)) return "<unknown-field>";
  return im.names[id];
}

size_t FieldInterner::size() const {
  return impl().count.load(std::memory_order_acquire);
}

}  // namespace adn::rpc
