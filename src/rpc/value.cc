#include "rpc/value.h"

#include <algorithm>

#include "common/strings.h"

namespace adn::rpc {

std::string_view ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull: return "NULL";
    case ValueType::kBool: return "BOOL";
    case ValueType::kInt: return "INT";
    case ValueType::kFloat: return "FLOAT";
    case ValueType::kText: return "TEXT";
    case ValueType::kBytes: return "BYTES";
  }
  return "?";
}

Result<ValueType> ParseValueType(std::string_view name) {
  std::string upper = ToUpperAscii(name);
  if (upper == "BOOL" || upper == "BOOLEAN") return ValueType::kBool;
  if (upper == "INT" || upper == "INTEGER" || upper == "BIGINT") {
    return ValueType::kInt;
  }
  if (upper == "FLOAT" || upper == "DOUBLE" || upper == "REAL") {
    return ValueType::kFloat;
  }
  if (upper == "TEXT" || upper == "STRING" || upper == "VARCHAR") {
    return ValueType::kText;
  }
  if (upper == "BYTES" || upper == "BLOB") return ValueType::kBytes;
  return Error(ErrorCode::kTypeError,
               "unknown type name '" + std::string(name) + "'");
}

void Value::CopyFrom(const Value& other) {
  // Materialize borrowed slices into owned storage; plain copy otherwise.
  if (const auto* t = std::get_if<TextSlice>(&other.repr_)) {
    repr_.emplace<std::string>(t->data, t->size);
  } else if (const auto* b = std::get_if<BytesSlice>(&other.repr_)) {
    repr_.emplace<Bytes>(b->data, b->data + b->size);
  } else {
    repr_ = other.repr_;
  }
}

bool Value::EqualsValue(const Value& other) const {
  if (is_null() || other.is_null()) return false;
  if (IsNumeric() && other.IsNumeric()) {
    if (type() == ValueType::kInt && other.type() == ValueType::kInt) {
      return AsInt() == other.AsInt();
    }
    return NumericAsDouble() == other.NumericAsDouble();
  }
  if (type() != other.type()) return false;
  // Compare through the type()-level views so owned values and arena slices
  // of equal content are equal regardless of representation.
  switch (type()) {
    case ValueType::kBool: return AsBool() == other.AsBool();
    case ValueType::kText: return AsText() == other.AsText();
    case ValueType::kBytes: return AsBytes() == other.AsBytes();
    default: return false;
  }
}

int Value::CompareTo(const Value& other) const {
  // NULL sorts first.
  if (is_null() && other.is_null()) return 0;
  if (is_null()) return -1;
  if (other.is_null()) return 1;
  if (IsNumeric() && other.IsNumeric()) {
    if (type() == ValueType::kInt && other.type() == ValueType::kInt) {
      int64_t a = AsInt();
      int64_t b = other.AsInt();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    double a = NumericAsDouble();
    double b = other.NumericAsDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (type() != other.type()) {
    // Heterogeneous non-numeric: order by type tag for a stable total order.
    return static_cast<int>(type()) < static_cast<int>(other.type()) ? -1 : 1;
  }
  switch (type()) {
    case ValueType::kBool:
      return static_cast<int>(AsBool()) - static_cast<int>(other.AsBool());
    case ValueType::kText: {
      int c = AsText().compare(other.AsText());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case ValueType::kBytes: {
      const BytesView a = AsBytes();
      const BytesView b = other.AsBytes();
      if (auto c = std::lexicographical_compare_three_way(
              a.begin(), a.end(), b.begin(), b.end());
          c != 0) {
        return c < 0 ? -1 : 1;
      }
      return 0;
    }
    default:
      return 0;
  }
}

std::string Value::ToDisplayString() const {
  switch (type()) {
    case ValueType::kNull: return "NULL";
    case ValueType::kBool: return AsBool() ? "true" : "false";
    case ValueType::kInt: return std::to_string(AsInt());
    case ValueType::kFloat: return std::to_string(AsFloat());
    case ValueType::kText: return "'" + std::string(AsText()) + "'";
    case ValueType::kBytes:
      return "<" + std::to_string(AsBytes().size()) + " bytes>";
  }
  return "?";
}

size_t Value::EncodedSizeHint() const {
  switch (type()) {
    case ValueType::kNull: return 1;
    case ValueType::kBool: return 2;
    case ValueType::kInt: return 10;
    case ValueType::kFloat: return 9;
    case ValueType::kText: return AsText().size() + 5;
    case ValueType::kBytes: return AsBytes().size() + 5;
  }
  return 1;
}

uint64_t HashValue(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return 0x9AE16A3B2F90404FULL;
    case ValueType::kBool:
      return v.AsBool() ? 0x5851F42D4C957F2DULL : 0x14057B7EF767814FULL;
    case ValueType::kInt: {
      uint64_t x = static_cast<uint64_t>(v.AsInt());
      // Mix (splitmix finalizer).
      x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
      x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
      return x ^ (x >> 31);
    }
    case ValueType::kFloat: {
      double d = v.AsFloat();
      // Hash the integer value identically when exactly representable so
      // INT/FLOAT equality implies equal hashes for integral doubles.
      if (d == static_cast<double>(static_cast<int64_t>(d))) {
        return HashValue(Value(static_cast<int64_t>(d)));
      }
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      std::memcpy(&bits, &d, sizeof(bits));
      return Fnv1a64(&bits, sizeof(bits));
    }
    case ValueType::kText:
      return Fnv1a64(v.AsText());
    case ValueType::kBytes:
      return Fnv1a64(v.AsBytes().data(), v.AsBytes().size());
  }
  return 0;
}

}  // namespace adn::rpc
