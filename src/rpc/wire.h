// ADN minimal wire format (paper §3/§5.2: "How the RPC message is packaged on
// the wire and what headers are needed are automatically determined").
//
// The compiler computes a HeaderSpec per link: the exact set of fields the
// downstream processors need, in a fixed order. On the wire a message is:
//
//   [u8  kind][u64 id][u32 method_id][u32 src][u32 dst]   <- 21-byte base
//   [field values, positional, in HeaderSpec order]
//
// No field names, no HTTP-style key:value headers, no nested protocol
// envelopes. Fields the downstream does not need are simply not sent
// (dead-field elimination) — or, for fields only the far application needs,
// carried as one opaque length-prefixed blob.
//
// Contrast with src/stack/ which implements the general-purpose layered
// encoding (protobuf-in-gRPC-in-HTTP/2-in-TCP) the paper argues against.
#pragma once

#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "rpc/message.h"
#include "rpc/schema.h"

namespace adn::rpc {

// Fields carried on a link and their order. Produced by the compiler's header
// synthesis pass (see compiler/header_gen.h); hand-writable for tests.
struct HeaderSpec {
  std::vector<Column> fields;
  // Interned id per column (parallel to `fields`), resolved once at
  // compile/spec-construction time so codecs access message fields by
  // integer id instead of scanning names. Filled by ResolveFieldIds();
  // header_gen calls it on every spec it emits.
  std::vector<FieldId> field_ids;

  // Intern every column name into `field_ids`. Idempotent; cheap.
  void ResolveFieldIds();

  // Fixed bytes before the field section.
  static constexpr size_t kBaseHeaderBytes = 1 + 8 + 4 + 4 + 4;

  // Upper bound on encoded size for a message (used for P4 parse-depth
  // feasibility checks; payload BYTES fields count their actual size).
  size_t MaxEncodedSize(const Message& m) const;

  std::string DebugString() const;
};

// Maps method names <-> compact ids so the wire carries 4 bytes, not text.
// Built by the controller from the application's service definitions.
class MethodRegistry {
 public:
  // Returns the id (registering if new).
  uint32_t Intern(std::string_view method);
  Result<uint32_t> Lookup(std::string_view method) const;
  Result<std::string> Reverse(uint32_t id) const;
  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
};

class AdnWireCodec {
 public:
  AdnWireCodec(HeaderSpec spec, const MethodRegistry* methods)
      : spec_(std::move(spec)), methods_(methods) {
    spec_.ResolveFieldIds();
  }

  const HeaderSpec& spec() const { return spec_; }

  // Encodes exactly the HeaderSpec fields; absent fields encode as NULL.
  // Fields on the message that are NOT in the spec are dropped (the compiler
  // guarantees no downstream element reads them).
  Status Encode(const Message& m, Bytes& out) const;

  Result<Message> Decode(std::span<const uint8_t> wire) const;

 private:
  HeaderSpec spec_;
  const MethodRegistry* methods_;  // not owned
};

// Encode/decode a single Value with a 1-byte presence/type tag. Exposed for
// the state-migration snapshot format, which reuses the same cell encoding.
void EncodeValue(const Value& v, ByteWriter& w);
Result<Value> DecodeValue(ValueType declared, ByteReader& r);

}  // namespace adn::rpc
