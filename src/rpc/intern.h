// Field-name interning: the compile-time half of the zero-allocation
// message path.
//
// The paper's minimal-header story (§5) assumes the compiler knows every
// field a chain reads or writes; there is no reason for the data plane to
// carry or compare field names as strings. FieldInterner maps each distinct
// field name to a small dense FieldId once — at compile/setup time — and the
// hot path (Message field access, ChainExecutor/ProcessBurst, the flat wire
// codec) works exclusively in integer ids.
//
// Lifetime and concurrency:
//  - The table is process-global and append-only; ids are stable for the
//    life of the process and never reused.
//  - Intern()/Find() take a mutex (setup-time paths only).
//  - NameOf() is lock-free: id -> name slots are written before the size
//    counter is released, so any id an observer legitimately holds resolves
//    without synchronization. Names live in fixed storage, so returned
//    views never dangle.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace adn::rpc {

using FieldId = uint16_t;

// Distinct field names a process may intern. Generous: real chains use a
// few dozen names; hitting this cap aborts with a diagnostic.
inline constexpr size_t kMaxInternedFields = 4096;

class FieldInterner {
 public:
  static FieldInterner& Global();

  // Id for `name`, interning it on first sight. Thread-safe.
  FieldId Intern(std::string_view name);

  // Id for `name` if already interned. Thread-safe.
  std::optional<FieldId> Find(std::string_view name) const;

  // Name for an id previously returned by Intern(). Lock-free.
  std::string_view NameOf(FieldId id) const;

  // Number of interned names. Lock-free (monotonic snapshot).
  size_t size() const;

 private:
  FieldInterner() = default;

  struct Impl;
  Impl& impl() const;
};

// Convenience wrappers for the common global-table calls.
inline FieldId InternFieldName(std::string_view name) {
  return FieldInterner::Global().Intern(name);
}
inline std::string_view FieldNameOf(FieldId id) {
  return FieldInterner::Global().NameOf(id);
}

}  // namespace adn::rpc
